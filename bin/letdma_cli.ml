(* Command-line interface: reproduce the paper's experiments and inspect
   the pipeline on the WATERS 2019 case study or random workloads.

   Failure discipline: every command returns a distinct exit code with a
   one-line structured error on stderr instead of a raw exception —
     0  success
     1  unexpected internal error
     3  invalid application model
     4  nothing to solve / unschedulable (no communications, or no gamma
        exists at the requested alpha)
     5  solving failed (no feasible plan, certification rejected the
        solution, or the degradation ladder was exhausted)
     7  solve interrupted with a resumable checkpoint on disk (rerun
        with the `resume` subcommand to continue the search)
     8  service failed to start (e.g. the --socket path cannot be
        bound); once serving, the daemon answers malformed requests
        with structured error responses and still exits 0
   Invalid flag values (e.g. --labels-per-edge 0) are rejected by the
   argument parser itself with Cmdliner's usage error code (124); --jobs
   is the exception — it is validated in the command body (through
   Parallel.Pool.validate_jobs, shared by solve/pipeline/serve) so an
   invalid count gets the structured one-line error and exit code 1. *)

open Cmdliner
open Rt_model
open Let_sem

let exit_internal = 1
let exit_invalid_model = 3
let exit_unschedulable = 4
let exit_no_solution = 5
let exit_interrupted = 7
let exit_service_startup = 8

let err fmt = Fmt.kstr (fun m -> Fmt.epr "letdma: error: %s@." m) fmt

(* Run [f], mapping any stray exception to a one-line error + exit 1. *)
let guard f =
  try f () with
  | Failure m | Invalid_argument m | App.Invalid m ->
    err "%s" m;
    exit_internal
  | Sys_error m ->
    err "%s" m;
    exit_internal

let exit_of_experiment_error = function
  | Letdma.Experiment.No_communications | Letdma.Experiment.Unschedulable _ ->
    exit_unschedulable
  | Letdma.Experiment.No_solution _ | Letdma.Experiment.Uncertified _ ->
    exit_no_solution

let setup_logs verbose =
  (* the format reporter is not domain-safe; portfolio workers and sweep
     items log concurrently *)
  let log_mutex = Mutex.create () in
  Logs.set_reporter_mutex
    ~lock:(fun () -> Mutex.lock log_mutex)
    ~unlock:(fun () -> Mutex.unlock log_mutex);
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log solver progress.")

(* validated argument converters: out-of-range values are rejected at
   parse time, before any work starts *)
let positive_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Fmt.str "%s must be positive, got %d" what n))
    | None -> Error (`Msg (Fmt.str "%s must be an integer, got %S" what s))
  in
  Arg.conv (parse, Fmt.int)

let nonneg_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some n -> Error (`Msg (Fmt.str "%s must be >= 0, got %d" what n))
    | None -> Error (`Msg (Fmt.str "%s must be an integer, got %S" what s))
  in
  Arg.conv (parse, Fmt.int)

let positive_float what =
  let parse s =
    match float_of_string_opt s with
    | Some x when x > 0.0 && Float.is_finite x -> Ok x
    | Some x -> Error (`Msg (Fmt.str "%s must be positive, got %g" what x))
    | None -> Error (`Msg (Fmt.str "%s must be a number, got %S" what s))
  in
  Arg.conv (parse, Fmt.float)

let nonneg_float what =
  let parse s =
    match float_of_string_opt s with
    | Some x when x >= 0.0 && Float.is_finite x -> Ok x
    | Some x -> Error (`Msg (Fmt.str "%s must be >= 0, got %g" what x))
    | None -> Error (`Msg (Fmt.str "%s must be a number, got %S" what s))
  in
  Arg.conv (parse, Fmt.float)

let time_limit_t =
  Arg.(
    value
    & opt (positive_float "time limit") 60.0
    & info [ "time-limit" ] ~docv:"SECONDS"
        ~doc:"Wall-clock limit for each MILP solve (the paper used 1 hour).")

let labels_per_edge_t =
  Arg.(
    value
    & opt (positive_int "labels per edge") 1
    & info [ "labels-per-edge" ] ~docv:"N"
        ~doc:"Split each WATERS data flow into N labels (scales the MILP).")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Deliberately a plain int: the value is validated in the command body
   (see [check_jobs]) so that an invalid count reports through the
   structured error path with exit code 1, like any other runtime
   failure, rather than Cmdliner's usage error. *)
let jobs_t =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel solving (default: what the runtime \
           recommends for this machine; 1 = sequential).")

let check_jobs jobs k =
  match Parallel.Pool.validate_jobs jobs with
  | Ok _ -> k ()
  | Error m ->
    err "%s" m;
    exit_internal

(* --- observability ---------------------------------------------------- *)

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured JSONL event trace of the run (solver nodes and \
           incumbents, pipeline rungs, portfolio workers, sweep carving, \
           simulator timeline) to $(docv). See README: Observability for the \
           event schema.")

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print an aggregated event summary (count and total span time per \
           event) after the run. Implies event collection even without \
           $(b,--trace).")

(* Run a command body under the event sink when --trace/--metrics ask for
   it; the sink is drained and closed even if the body fails. *)
let with_obs ~trace ~metrics f =
  if trace = None && not metrics then f ()
  else begin
    let code = Obs.with_trace ?file:trace f in
    (match trace with
     | Some file -> Fmt.pr "wrote %s (%d events)@." file (Obs.lines_written ())
     | None -> ());
    if metrics then Fmt.pr "%a@." Obs.pp_metrics ();
    code
  end

let waters ~labels_per_edge = Workload.Waters2019.make ~labels_per_edge ()

(* --- info ------------------------------------------------------------ *)

let info_cmd =
  let run verbose labels_per_edge =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let groups = Groups.compute app in
    Fmt.pr "%a@.@.%a@.@.Response-time analysis:@.%a@." App.pp app Groups.pp
      groups
      (Rt_analysis.Rta.pp_analysis app)
      ();
    List.iter
      (fun (alpha, s) ->
        match s with
        | Some s -> Fmt.pr "@.%a@." (Rt_analysis.Sensitivity.pp app) s
        | None -> Fmt.pr "@.alpha=%.1f: unschedulable@." alpha)
      (Rt_analysis.Sensitivity.sweep app);
    0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the WATERS 2019 case study and its analysis.")
    Term.(const run $ verbose_t $ labels_per_edge_t)

(* --- fig1 ------------------------------------------------------------ *)

let fig1_cmd =
  let vcd_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:
            "Additionally dump the proposed protocol's schedule as a VCD \
             waveform (viewable in GTKWave).")
  in
  let run verbose vcd trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    Fmt.pr "%s@." (Letdma.Fig1.render ());
    if vcd = None && not (Obs.enabled ()) then 0
    else
      let app = Letdma.Fig1.app () in
      let groups = Groups.compute app in
      let gamma = Letdma.Fig1.gamma app in
      match Letdma.Heuristic.solve app groups ~gamma with
      | Error e ->
        err "fig1: %s" e;
        exit_no_solution
      | Ok solution ->
        let m =
          Letdma.Baselines.run ~record_trace:true app groups
            Letdma.Baselines.Proposed ~solution:(Some solution)
        in
        Dma_sim.Obs_bridge.emit app m.Dma_sim.Sim.trace;
        (match vcd with
         | None -> ()
         | Some file ->
           let oc = open_out file in
           output_string oc (Dma_sim.Vcd.to_vcd app m.Dma_sim.Sim.trace);
           close_out oc;
           Fmt.pr "wrote %s@." file);
        0
  in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:
         "Reproduce the shape of the paper's Fig. 1: the protocol's schedule \
          vs the Giotto ordering on the 6-task example.")
    Term.(const run $ verbose_t $ vcd_t $ trace_t $ metrics_t)

(* --- fig2 ------------------------------------------------------------ *)

let fig2_cmd =
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Additionally write the per-task data as CSV for plotting.")
  in
  let run verbose time_limit labels_per_edge csv trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    let app = waters ~labels_per_edge in
    let results = Letdma.Experiment.fig2 ~time_limit_s:time_limit app in
    Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2 ppf app) results;
    (match csv with
     | None -> ()
     | Some file ->
       let oc = open_out file in
       let ppf = Format.formatter_of_out_channel oc in
       Letdma.Report.fig2_csv ppf app results;
       Format.pp_print_flush ppf ();
       close_out oc;
       Fmt.pr "wrote %s@." file);
    if List.exists (fun (_, r) -> Result.is_ok r) results then 0
    else begin
      err "every configuration failed";
      exit_no_solution
    end
  in
  Cmd.v
    (Cmd.info "fig2"
       ~doc:
         "Reproduce Fig. 2: latency ratios of the proposed approach vs the \
          three Giotto baselines for alpha in {0.2, 0.4} and the three \
          objectives.")
    Term.(
      const run $ verbose_t $ time_limit_t $ labels_per_edge_t $ csv_t
      $ trace_t $ metrics_t)

(* --- table1 ---------------------------------------------------------- *)

let table1_cmd =
  let run verbose time_limit labels_per_edge =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let rows = Letdma.Experiment.table1 ~time_limit_s:time_limit app in
    Fmt.pr "%a@." Letdma.Report.table1 rows;
    0
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table I: solver running times and DMA transfer counts.")
    Term.(const run $ verbose_t $ time_limit_t $ labels_per_edge_t)

(* --- alpha sweep ------------------------------------------------------ *)

let alpha_cmd =
  let run verbose time_limit labels_per_edge =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let results = Letdma.Experiment.alpha_sweep ~time_limit_s:time_limit app in
    Fmt.pr "%a@." Letdma.Report.alpha_sweep results;
    0
  in
  Cmd.v
    (Cmd.info "alpha-sweep"
       ~doc:
         "Reproduce the alpha sensitivity sweep of Section VII (alpha in \
          {0.1..0.5}).")
    Term.(const run $ verbose_t $ time_limit_t $ labels_per_edge_t)

(* --- solve ------------------------------------------------------------ *)

let objective_t =
  let obj_conv =
    Arg.enum
      [
        ("no-obj", Letdma.Formulation.No_obj);
        ("dmat", Letdma.Formulation.Min_transfers);
        ("del", Letdma.Formulation.Min_delay_ratio);
      ]
  in
  Arg.(
    value
    & opt obj_conv Letdma.Formulation.No_obj
    & info [ "objective" ] ~docv:"OBJ"
        ~doc:"Objective: $(b,no-obj), $(b,dmat) (Eq. 4) or $(b,del) (Eq. 5).")

let alpha_t =
  Arg.(
    value
    & opt (positive_float "alpha") 0.2
    & info [ "alpha" ] ~docv:"ALPHA"
        ~doc:"Sensitivity factor for data-acquisition deadlines.")

let heuristic_t =
  Arg.(
    value & flag
    & info [ "heuristic" ] ~doc:"Use the greedy heuristic instead of the MILP.")

let no_presolve_t =
  Arg.(
    value & flag
    & info [ "no-presolve" ]
        ~doc:
          "Disable the MILP root presolve (bound tightening + redundant-row \
           elimination), which is on by default.")

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print solver statistics (branch-and-bound nodes, simplex pivots, \
           pricing counters, presolve reductions, LP time).")

(* --- resilience flags (solve / resume / pipeline) --------------------- *)

let checkpoint_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Write periodic solver checkpoints to $(docv) (versioned JSON, \
           atomically replaced). An interrupted solve exits with code 7 and \
           leaves the file behind; continue it with the $(b,resume) \
           subcommand. Forces sequential solving (jobs = 1); removed \
           automatically when the solve finishes conclusively.")

let checkpoint_every_t =
  Arg.(
    value
    & opt (positive_int "checkpoint cadence") 64
    & info [ "checkpoint-every" ] ~docv:"NODES"
        ~doc:"Checkpoint cadence in branch-and-bound nodes (default 64).")

let interrupt_after_t =
  Arg.(
    value
    & opt (some (positive_int "interrupt threshold")) None
    & info [ "interrupt-after" ] ~docv:"NODES"
        ~doc:
          "Stop the solve after exploring $(docv) nodes (testing hook for the \
           checkpoint/resume chaos gate; combine with $(b,--checkpoint)).")

let retries_t =
  Arg.(
    value
    & opt (nonneg_int "retries") 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Supervise the solve with up to $(docv) escalating retries \
           (Dantzig pricing, warm pool off, presolve off, scaled LP \
           iteration budgets) after an inconclusive or uncertified attempt.")

let backoff_t =
  Arg.(
    value
    & opt (nonneg_float "backoff") 0.1
    & info [ "backoff" ] ~docv:"SECONDS"
        ~doc:
          "Initial retry backoff (doubles per attempt, capped, \
           deadline-aware). Only meaningful with $(b,--retries).")

(* The durable path accepts alternative workloads: the WATERS case study
   is too LP-heavy to explore many nodes sequentially, so the chaos gate
   interrupts a seeded small random instance instead. The resume run must
   rebuild the same workload (same flags); any mismatch is caught by the
   checkpoint's model fingerprint. *)
let workload_t =
  let kind =
    Arg.enum [ ("waters", `Waters); ("random", `Random); ("small", `Small) ]
  in
  Arg.(
    value
    & opt kind `Waters
    & info [ "workload" ] ~docv:"KIND"
        ~doc:
          "Workload for the durable solve path: $(b,waters) (default, the \
           case study), $(b,random) (seeded generator, default config) or \
           $(b,small) (seeded generator, small instances that solve to \
           optimality in seconds — used by the CI chaos gate).")

let make_workload ~labels_per_edge ~seed = function
  | `Waters -> waters ~labels_per_edge
  | `Random -> Workload.Generator.random ~seed ()
  | `Small ->
    Workload.Generator.random ~seed ~config:Workload.Generator.small_config ()

let status_name = function
  | Milp.Branch_bound.Optimal -> "optimal"
  | Milp.Branch_bound.Feasible -> "feasible"
  | Milp.Branch_bound.Infeasible -> "infeasible"
  | Milp.Branch_bound.Unbounded -> "unbounded"
  | Milp.Branch_bound.Unknown -> "unknown"

(* Durable solve path: direct [Solve.solve] (or [solve_supervised]) on the
   WATERS workload so the checkpoint/retry plumbing is reachable from the
   command line. Output is line-oriented and greppable — the CI chaos gate
   compares `objective:` and `nodes:` across interrupted-and-resumed vs
   uninterrupted runs. *)
let durable_solve ~time_limit ~objective ~alpha ~presolve ~checkpoint
    ~checkpoint_every ~interrupt_after ~retries ~backoff ~resume app =
  let groups = Groups.compute app in
  match Rt_analysis.Sensitivity.gammas app ~alpha with
  | None ->
    err "task set unschedulable at zero jitter";
    exit_unschedulable
  | Some s when not s.Rt_analysis.Sensitivity.schedulable ->
    err "task set unschedulable with alpha=%.2f jitter bound" alpha;
    exit_unschedulable
  | Some s ->
    let gamma = s.Rt_analysis.Sensitivity.gamma in
    let engine =
      match resume with
      | Some ck
        when List.assoc_opt "engine" ck.Resilience.Checkpoint.ck_meta
             = Some "dfs" -> Letdma.Solve.Dfs
      | _ -> Letdma.Solve.Best_first
    in
    let r =
      if retries > 0 then
        Letdma.Solve.solve_supervised
          ~policy:
            {
              Resilience.Retry.default_policy with
              Resilience.Retry.attempts = retries + 1;
              backoff_s = backoff;
            }
          ~time_limit_s:time_limit ~engine ~presolve ?checkpoint_file:checkpoint
          ~checkpoint_every ?resume objective app groups ~gamma
      else
        Letdma.Solve.solve ~time_limit_s:time_limit ~engine ~jobs:1 ~presolve
          ?checkpoint_file:checkpoint ~checkpoint_every ?resume
          ?interrupt_after_nodes:interrupt_after objective app groups ~gamma
    in
    let st = r.Letdma.Solve.stats in
    Fmt.pr "status: %s@." (status_name st.Letdma.Solve.status);
    (match r.Letdma.Solve.x with
     | Some x ->
       let _, e =
         Milp.Problem.objective r.Letdma.Solve.instance.Letdma.Formulation.problem
       in
       Fmt.pr "objective: %.17g@." (Milp.Linexpr.eval e x)
     | None -> ());
    Fmt.pr "nodes: %d@." st.Letdma.Solve.nodes;
    Fmt.pr "rounds: %d@." st.Letdma.Solve.rounds;
    let interrupted =
      match (checkpoint, st.Letdma.Solve.status) with
      | ( Some file,
          (Milp.Branch_bound.Feasible | Milp.Branch_bound.Unknown) ) ->
        Sys.file_exists file
      | _ -> false
    in
    if interrupted then begin
      Fmt.pr "checkpoint: %s@." (Option.get checkpoint);
      exit_interrupted
    end
    else
      (match (r.Letdma.Solve.solution, r.Letdma.Solve.certificate) with
       | Some _, Some (Ok c) ->
         Fmt.pr "certified: %d checks@." c.Letdma.Certify.checks;
         0
       | Some _, (Some (Error _) | None) ->
         err "solution failed certification";
         exit_no_solution
       | None, _ ->
         err "no solution (%s)" (status_name st.Letdma.Solve.status);
         exit_no_solution)

let solve_cmd =
  let run verbose time_limit labels_per_edge objective alpha heuristic jobs
      no_presolve stats workload seed checkpoint checkpoint_every
      interrupt_after retries backoff trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    check_jobs jobs @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    let durable =
      checkpoint <> None || interrupt_after <> None || retries > 0
      || workload <> `Waters
    in
    let app =
      if durable then make_workload ~labels_per_edge ~seed workload
      else waters ~labels_per_edge
    in
    if durable then
      durable_solve ~time_limit ~objective ~alpha ~presolve:(not no_presolve)
        ~checkpoint ~checkpoint_every ~interrupt_after ~retries ~backoff
        ~resume:None app
    else
      let solver =
        if heuristic then Letdma.Experiment.Heuristic
        else
          Letdma.Experiment.milp ~time_limit_s:time_limit ~jobs
            ~presolve:(not no_presolve) objective
      in
      match Letdma.Experiment.run_config ~solver app ~alpha with
      | Error e ->
        err "%s" (Letdma.Experiment.error_to_string e);
        exit_of_experiment_error e
      | Ok r ->
        Fmt.pr "%a@.@.%a@."
          (Letdma.Solution.pp app)
          r.Letdma.Experiment.solution
          (fun ppf -> Letdma.Report.fig2_subplot ppf app)
          r;
        if stats then
          (match r.Letdma.Experiment.solve_stats with
           | Some s -> Fmt.pr "@.solver stats: @[%a@]@." Letdma.Solve.pp_stats s
           | None -> Fmt.pr "@.solver stats: none (heuristic solve)@.");
        0
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Solve one configuration and report the resulting plan/latencies. \
          With $(b,--checkpoint), $(b,--interrupt-after) or $(b,--retries) \
          the solve runs the durable sequential path and reports greppable \
          status/objective/nodes lines.")
    Term.(
      const run $ verbose_t $ time_limit_t $ labels_per_edge_t $ objective_t
      $ alpha_t $ heuristic_t $ jobs_t $ no_presolve_t $ stats_t $ workload_t
      $ seed_t $ checkpoint_t $ checkpoint_every_t $ interrupt_after_t
      $ retries_t $ backoff_t $ trace_t $ metrics_t)

(* --- resume ------------------------------------------------------------ *)

let resume_cmd =
  let checkpoint_req_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Checkpoint file written by an interrupted $(b,solve).")
  in
  let run verbose time_limit labels_per_edge objective alpha no_presolve
      workload seed checkpoint checkpoint_every interrupt_after retries
      backoff trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    match Resilience.Checkpoint.load checkpoint with
    | Error m ->
      err "checkpoint %s: %s" checkpoint m;
      exit_internal
    | Ok ck ->
      let app = make_workload ~labels_per_edge ~seed workload in
      durable_solve ~time_limit ~objective ~alpha ~presolve:(not no_presolve)
        ~checkpoint:(Some checkpoint) ~checkpoint_every ~interrupt_after
        ~retries ~backoff ~resume:(Some ck) app
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume an interrupted solve from its checkpoint file. The workload \
          flags (--workload, --seed, --labels-per-edge, --objective, \
          --alpha) must match the original solve; a mismatch is rejected by \
          the checkpoint's model fingerprint. Keeps checkpointing to the \
          same file, so a resumed run can itself be interrupted and resumed \
          again.")
    Term.(
      const run $ verbose_t $ time_limit_t $ labels_per_edge_t $ objective_t
      $ alpha_t $ no_presolve_t $ workload_t $ seed_t $ checkpoint_req_t
      $ checkpoint_every_t $ interrupt_after_t $ retries_t $ backoff_t
      $ trace_t $ metrics_t)

(* --- pipeline --------------------------------------------------------- *)

let pipeline_cmd =
  let budget_t =
    Arg.(
      value
      & opt (positive_float "budget") 60.0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Total wall-clock budget shared by every rung of the ladder \
             (MILP rounds, perturbed retry, fallbacks).")
  in
  let run verbose labels_per_edge objective alpha budget jobs retries backoff
      trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    check_jobs jobs @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    let app = waters ~labels_per_edge in
    match
      Letdma.Pipeline.run ~objective ~budget_s:budget ~alpha ~jobs ~retries
        ~backoff_s:backoff app
    with
    | Ok o ->
      Fmt.pr "%a@." (Letdma.Pipeline.pp_outcome app) o;
      0
    | Error f ->
      err "%s" (Letdma.Pipeline.failure_to_string f);
      (match f with
       | Letdma.Pipeline.Invalid_model _ -> exit_invalid_model
       | Letdma.Pipeline.No_communications | Letdma.Pipeline.Unschedulable _ ->
         exit_unschedulable
       | Letdma.Pipeline.Exhausted _ -> exit_no_solution)
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Run the hardened solve pipeline (validation, certification, \
          degradation ladder) and report which rung produced the accepted \
          solution.")
    Term.(
      const run $ verbose_t $ labels_per_edge_t $ objective_t $ alpha_t
      $ budget_t $ jobs_t $ retries_t $ backoff_t $ trace_t $ metrics_t)

(* --- fault injection -------------------------------------------------- *)

let faults_cmd =
  let intensities_t =
    Arg.(
      value
      & opt (list (nonneg_float "intensity")) [ 0.0; 0.1; 0.5; 1.0; 2.0; 5.0 ]
      & info [ "intensities" ] ~docv:"X,Y,..."
          ~doc:"Fault intensities to sweep (see Faults.at_intensity).")
  in
  let run verbose labels_per_edge alpha seed intensities =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let groups = Groups.compute app in
    match Rt_analysis.Sensitivity.gammas app ~alpha with
    | None ->
      err "task set unschedulable at zero jitter";
      exit_unschedulable
    | Some s when not s.Rt_analysis.Sensitivity.schedulable ->
      err "task set unschedulable with alpha=%.2f jitter bound" alpha;
      exit_unschedulable
    | Some s -> (
      let gamma = s.Rt_analysis.Sensitivity.gamma in
      match Letdma.Heuristic.solve app groups ~gamma with
      | Error e ->
        err "heuristic: %s" e;
        exit_no_solution
      | Ok solution ->
        let schedule = Letdma.Solution.schedule app groups solution in
        let reports =
          Dma_sim.Robustness.sweep ~seed ~intensities app groups schedule
        in
        Fmt.pr "== FAULT INJECTION (seed %d) ==@." seed;
        List.iter
          (fun r -> Fmt.pr "%a@." Dma_sim.Robustness.pp_report r)
          reports;
        (match
           List.find_opt
             (fun r -> not (Dma_sim.Robustness.survives r))
             reports
         with
         | None -> Fmt.pr "all properties survive every swept intensity@."
         | Some r ->
           Fmt.pr "properties first break at intensity %g@." r.intensity);
        0)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Stress a certified schedule under the seeded DMA fault model and \
          report which LET properties survive at each intensity.")
    Term.(
      const run $ verbose_t $ labels_per_edge_t $ alpha_t $ seed_t
      $ intensities_t)

(* --- trace-check ------------------------------------------------------- *)

let trace_check_cmd =
  let files_t =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Files to validate: $(b,.jsonl) files are checked as event \
             traces (every line a schema-conforming JSON object, timestamps \
             monotone per domain), anything else as a single JSON document. \
             Both checks reject NaN/Infinity tokens, which are not JSON.")
  in
  let run verbose files =
    guard @@ fun () ->
    setup_logs verbose;
    let results =
      List.map
        (fun f ->
          if Filename.check_suffix f ".jsonl" then (
            match Obs.Check.trace_file f with
            | Ok n ->
              Fmt.pr "%s: OK (%d events)@." f n;
              true
            | Error m ->
              err "%s: %s" f m;
              false)
          else
            match Obs.Check.json_file f with
            | Ok () ->
              Fmt.pr "%s: OK@." f;
              true
            | Error m ->
              err "%s: %s" f m;
              false)
        files
    in
    if List.for_all Fun.id results then 0 else exit_internal
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate JSONL event traces and JSON bench reports (used by the CI \
          gate to reject malformed or NaN-carrying output).")
    Term.(const run $ verbose_t $ files_t)

(* --- serve ------------------------------------------------------------- *)

let serve_cmd =
  let socket_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Additionally listen on a Unix-domain socket at $(docv) (created \
             on startup, removed on shutdown). Requests on stdin are always \
             served; a bind failure exits with code 8 before any request is \
             read.")
  in
  let cache_t =
    Arg.(
      value
      & opt (positive_int "cache capacity") 64
      & info [ "cache" ] ~docv:"N"
          ~doc:
            "Capacity of the fingerprint-keyed warm cache (LRU entries, \
             each one solved model with its optimal basis).")
  in
  let max_batch_t =
    Arg.(
      value
      & opt (positive_int "max batch") 64
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Largest request batch carved through one shared deadline; \
             pipelined input beyond $(docv) starts the next batch.")
  in
  let retry_on_crash_t =
    Arg.(
      value
      & opt (nonneg_int "crash retries") 1
      & info [ "retry-on-crash" ] ~docv:"N"
          ~doc:
            "How many times a request whose worker domain died is retried \
             before it is answered with a structured error (the daemon \
             itself always survives worker crashes).")
  in
  let run verbose socket cache max_batch retry_on_crash jobs trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    check_jobs jobs @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    let engine =
      Service.Engine.create ~jobs ~cache_capacity:cache
        ~retry_on_crash ()
    in
    let r = Service.Daemon.run ?socket ~max_batch engine in
    Service.Engine.shutdown engine;
    match r with
    | Ok code -> code
    | Error m ->
      err "%s" m;
      exit_service_startup
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the solver as a persistent service: newline-delimited JSON \
          requests on stdin (and optionally a Unix-domain socket), one JSON \
          response per line. Batches compatible requests under a shared \
          fair deadline, caches solved models by fingerprint (exact repeats \
          replay instantly, perturbed repeats warm-start), and sheds \
          over-deadline work down the degradation ladder by QoS class. See \
          README: Running as a service for the protocol.")
    Term.(
      const run $ verbose_t $ socket_t $ cache_t $ max_batch_t
      $ retry_on_crash_t $ jobs_t $ trace_t $ metrics_t)

(* --- random workload --------------------------------------------------- *)

let random_cmd =
  let run verbose time_limit seed =
    guard @@ fun () ->
    setup_logs verbose;
    let app = Workload.Generator.random ~seed () in
    Fmt.pr "%a@." App.pp app;
    match
      Letdma.Experiment.run_config
        ~solver:
          (Letdma.Experiment.milp ~time_limit_s:time_limit
             Letdma.Formulation.No_obj)
        app ~alpha:0.3
    with
    | Error e ->
      err "%s" (Letdma.Experiment.error_to_string e);
      exit_of_experiment_error e
    | Ok r ->
      Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2_subplot ppf app) r;
      0
  in
  Cmd.v
    (Cmd.info "random"
       ~doc:"Generate a random workload and run the pipeline on it.")
    Term.(const run $ verbose_t $ time_limit_t $ seed_t)

let main =
  Cmd.group
    (Cmd.info "letdma" ~version:"1.0.0"
       ~doc:
         "Optimal memory allocation and scheduling for DMA data transfers \
          under the LET paradigm (DAC 2021 reproduction).")
    [
      info_cmd;
      fig1_cmd;
      fig2_cmd;
      table1_cmd;
      alpha_cmd;
      solve_cmd;
      resume_cmd;
      pipeline_cmd;
      serve_cmd;
      faults_cmd;
      random_cmd;
      trace_check_cmd;
    ]

let () = exit (Cmd.eval' main)
