(* Command-line interface: reproduce the paper's experiments and inspect
   the pipeline on the WATERS 2019 case study or random workloads.

   Failure discipline: every command returns a distinct exit code with a
   one-line structured error on stderr instead of a raw exception —
     0  success
     1  unexpected internal error
     3  invalid application model
     4  nothing to solve / unschedulable (no communications, or no gamma
        exists at the requested alpha)
     5  solving failed (no feasible plan, certification rejected the
        solution, or the degradation ladder was exhausted)
   Invalid flag values (e.g. --labels-per-edge 0) are rejected by the
   argument parser itself with Cmdliner's usage error code (124); --jobs
   is the exception — it is validated in the command body so an invalid
   count gets the structured one-line error and exit code 1. *)

open Cmdliner
open Rt_model
open Let_sem

let exit_internal = 1
let exit_invalid_model = 3
let exit_unschedulable = 4
let exit_no_solution = 5

let err fmt = Fmt.kstr (fun m -> Fmt.epr "letdma: error: %s@." m) fmt

(* Run [f], mapping any stray exception to a one-line error + exit 1. *)
let guard f =
  try f () with
  | Failure m | Invalid_argument m | App.Invalid m ->
    err "%s" m;
    exit_internal
  | Sys_error m ->
    err "%s" m;
    exit_internal

let exit_of_experiment_error = function
  | Letdma.Experiment.No_communications | Letdma.Experiment.Unschedulable _ ->
    exit_unschedulable
  | Letdma.Experiment.No_solution _ | Letdma.Experiment.Uncertified _ ->
    exit_no_solution

let setup_logs verbose =
  (* the format reporter is not domain-safe; portfolio workers and sweep
     items log concurrently *)
  let log_mutex = Mutex.create () in
  Logs.set_reporter_mutex
    ~lock:(fun () -> Mutex.lock log_mutex)
    ~unlock:(fun () -> Mutex.unlock log_mutex);
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log solver progress.")

(* validated argument converters: out-of-range values are rejected at
   parse time, before any work starts *)
let positive_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Fmt.str "%s must be positive, got %d" what n))
    | None -> Error (`Msg (Fmt.str "%s must be an integer, got %S" what s))
  in
  Arg.conv (parse, Fmt.int)

let positive_float what =
  let parse s =
    match float_of_string_opt s with
    | Some x when x > 0.0 && Float.is_finite x -> Ok x
    | Some x -> Error (`Msg (Fmt.str "%s must be positive, got %g" what x))
    | None -> Error (`Msg (Fmt.str "%s must be a number, got %S" what s))
  in
  Arg.conv (parse, Fmt.float)

let nonneg_float what =
  let parse s =
    match float_of_string_opt s with
    | Some x when x >= 0.0 && Float.is_finite x -> Ok x
    | Some x -> Error (`Msg (Fmt.str "%s must be >= 0, got %g" what x))
    | None -> Error (`Msg (Fmt.str "%s must be a number, got %S" what s))
  in
  Arg.conv (parse, Fmt.float)

let time_limit_t =
  Arg.(
    value
    & opt (positive_float "time limit") 60.0
    & info [ "time-limit" ] ~docv:"SECONDS"
        ~doc:"Wall-clock limit for each MILP solve (the paper used 1 hour).")

let labels_per_edge_t =
  Arg.(
    value
    & opt (positive_int "labels per edge") 1
    & info [ "labels-per-edge" ] ~docv:"N"
        ~doc:"Split each WATERS data flow into N labels (scales the MILP).")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Deliberately a plain int: the value is validated in the command body
   (see [check_jobs]) so that an invalid count reports through the
   structured error path with exit code 1, like any other runtime
   failure, rather than Cmdliner's usage error. *)
let jobs_t =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel solving (default: what the runtime \
           recommends for this machine; 1 = sequential).")

let check_jobs jobs k =
  if jobs < 1 then begin
    err "jobs must be >= 1, got %d" jobs;
    exit_internal
  end
  else k ()

(* --- observability ---------------------------------------------------- *)

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured JSONL event trace of the run (solver nodes and \
           incumbents, pipeline rungs, portfolio workers, sweep carving, \
           simulator timeline) to $(docv). See README: Observability for the \
           event schema.")

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print an aggregated event summary (count and total span time per \
           event) after the run. Implies event collection even without \
           $(b,--trace).")

(* Run a command body under the event sink when --trace/--metrics ask for
   it; the sink is drained and closed even if the body fails. *)
let with_obs ~trace ~metrics f =
  if trace = None && not metrics then f ()
  else begin
    let code = Obs.with_trace ?file:trace f in
    (match trace with
     | Some file -> Fmt.pr "wrote %s (%d events)@." file (Obs.lines_written ())
     | None -> ());
    if metrics then Fmt.pr "%a@." Obs.pp_metrics ();
    code
  end

let waters ~labels_per_edge = Workload.Waters2019.make ~labels_per_edge ()

(* --- info ------------------------------------------------------------ *)

let info_cmd =
  let run verbose labels_per_edge =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let groups = Groups.compute app in
    Fmt.pr "%a@.@.%a@.@.Response-time analysis:@.%a@." App.pp app Groups.pp
      groups
      (Rt_analysis.Rta.pp_analysis app)
      ();
    List.iter
      (fun (alpha, s) ->
        match s with
        | Some s -> Fmt.pr "@.%a@." (Rt_analysis.Sensitivity.pp app) s
        | None -> Fmt.pr "@.alpha=%.1f: unschedulable@." alpha)
      (Rt_analysis.Sensitivity.sweep app);
    0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the WATERS 2019 case study and its analysis.")
    Term.(const run $ verbose_t $ labels_per_edge_t)

(* --- fig1 ------------------------------------------------------------ *)

let fig1_cmd =
  let vcd_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:
            "Additionally dump the proposed protocol's schedule as a VCD \
             waveform (viewable in GTKWave).")
  in
  let run verbose vcd trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    Fmt.pr "%s@." (Letdma.Fig1.render ());
    if vcd = None && not (Obs.enabled ()) then 0
    else
      let app = Letdma.Fig1.app () in
      let groups = Groups.compute app in
      let gamma = Letdma.Fig1.gamma app in
      match Letdma.Heuristic.solve app groups ~gamma with
      | Error e ->
        err "fig1: %s" e;
        exit_no_solution
      | Ok solution ->
        let m =
          Letdma.Baselines.run ~record_trace:true app groups
            Letdma.Baselines.Proposed ~solution:(Some solution)
        in
        Dma_sim.Obs_bridge.emit app m.Dma_sim.Sim.trace;
        (match vcd with
         | None -> ()
         | Some file ->
           let oc = open_out file in
           output_string oc (Dma_sim.Vcd.to_vcd app m.Dma_sim.Sim.trace);
           close_out oc;
           Fmt.pr "wrote %s@." file);
        0
  in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:
         "Reproduce the shape of the paper's Fig. 1: the protocol's schedule \
          vs the Giotto ordering on the 6-task example.")
    Term.(const run $ verbose_t $ vcd_t $ trace_t $ metrics_t)

(* --- fig2 ------------------------------------------------------------ *)

let fig2_cmd =
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Additionally write the per-task data as CSV for plotting.")
  in
  let run verbose time_limit labels_per_edge csv trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    let app = waters ~labels_per_edge in
    let results = Letdma.Experiment.fig2 ~time_limit_s:time_limit app in
    Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2 ppf app) results;
    (match csv with
     | None -> ()
     | Some file ->
       let oc = open_out file in
       let ppf = Format.formatter_of_out_channel oc in
       Letdma.Report.fig2_csv ppf app results;
       Format.pp_print_flush ppf ();
       close_out oc;
       Fmt.pr "wrote %s@." file);
    if List.exists (fun (_, r) -> Result.is_ok r) results then 0
    else begin
      err "every configuration failed";
      exit_no_solution
    end
  in
  Cmd.v
    (Cmd.info "fig2"
       ~doc:
         "Reproduce Fig. 2: latency ratios of the proposed approach vs the \
          three Giotto baselines for alpha in {0.2, 0.4} and the three \
          objectives.")
    Term.(
      const run $ verbose_t $ time_limit_t $ labels_per_edge_t $ csv_t
      $ trace_t $ metrics_t)

(* --- table1 ---------------------------------------------------------- *)

let table1_cmd =
  let run verbose time_limit labels_per_edge =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let rows = Letdma.Experiment.table1 ~time_limit_s:time_limit app in
    Fmt.pr "%a@." Letdma.Report.table1 rows;
    0
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table I: solver running times and DMA transfer counts.")
    Term.(const run $ verbose_t $ time_limit_t $ labels_per_edge_t)

(* --- alpha sweep ------------------------------------------------------ *)

let alpha_cmd =
  let run verbose time_limit labels_per_edge =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let results = Letdma.Experiment.alpha_sweep ~time_limit_s:time_limit app in
    Fmt.pr "%a@." Letdma.Report.alpha_sweep results;
    0
  in
  Cmd.v
    (Cmd.info "alpha-sweep"
       ~doc:
         "Reproduce the alpha sensitivity sweep of Section VII (alpha in \
          {0.1..0.5}).")
    Term.(const run $ verbose_t $ time_limit_t $ labels_per_edge_t)

(* --- solve ------------------------------------------------------------ *)

let objective_t =
  let obj_conv =
    Arg.enum
      [
        ("no-obj", Letdma.Formulation.No_obj);
        ("dmat", Letdma.Formulation.Min_transfers);
        ("del", Letdma.Formulation.Min_delay_ratio);
      ]
  in
  Arg.(
    value
    & opt obj_conv Letdma.Formulation.No_obj
    & info [ "objective" ] ~docv:"OBJ"
        ~doc:"Objective: $(b,no-obj), $(b,dmat) (Eq. 4) or $(b,del) (Eq. 5).")

let alpha_t =
  Arg.(
    value
    & opt (positive_float "alpha") 0.2
    & info [ "alpha" ] ~docv:"ALPHA"
        ~doc:"Sensitivity factor for data-acquisition deadlines.")

let heuristic_t =
  Arg.(
    value & flag
    & info [ "heuristic" ] ~doc:"Use the greedy heuristic instead of the MILP.")

let no_presolve_t =
  Arg.(
    value & flag
    & info [ "no-presolve" ]
        ~doc:
          "Disable the MILP root presolve (bound tightening + redundant-row \
           elimination), which is on by default.")

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print solver statistics (branch-and-bound nodes, simplex pivots, \
           pricing counters, presolve reductions, LP time).")

let solve_cmd =
  let run verbose time_limit labels_per_edge objective alpha heuristic jobs
      no_presolve stats trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    check_jobs jobs @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    let app = waters ~labels_per_edge in
    let solver =
      if heuristic then Letdma.Experiment.Heuristic
      else
        Letdma.Experiment.milp ~time_limit_s:time_limit ~jobs
          ~presolve:(not no_presolve) objective
    in
    match Letdma.Experiment.run_config ~solver app ~alpha with
    | Error e ->
      err "%s" (Letdma.Experiment.error_to_string e);
      exit_of_experiment_error e
    | Ok r ->
      Fmt.pr "%a@.@.%a@."
        (Letdma.Solution.pp app)
        r.Letdma.Experiment.solution
        (fun ppf -> Letdma.Report.fig2_subplot ppf app)
        r;
      if stats then
        (match r.Letdma.Experiment.solve_stats with
         | Some s -> Fmt.pr "@.solver stats: @[%a@]@." Letdma.Solve.pp_stats s
         | None -> Fmt.pr "@.solver stats: none (heuristic solve)@.");
      0
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Solve one configuration and report the resulting plan/latencies.")
    Term.(
      const run $ verbose_t $ time_limit_t $ labels_per_edge_t $ objective_t
      $ alpha_t $ heuristic_t $ jobs_t $ no_presolve_t $ stats_t $ trace_t
      $ metrics_t)

(* --- pipeline --------------------------------------------------------- *)

let pipeline_cmd =
  let budget_t =
    Arg.(
      value
      & opt (positive_float "budget") 60.0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Total wall-clock budget shared by every rung of the ladder \
             (MILP rounds, perturbed retry, fallbacks).")
  in
  let run verbose labels_per_edge objective alpha budget jobs trace metrics =
    guard @@ fun () ->
    setup_logs verbose;
    check_jobs jobs @@ fun () ->
    with_obs ~trace ~metrics @@ fun () ->
    let app = waters ~labels_per_edge in
    match Letdma.Pipeline.run ~objective ~budget_s:budget ~alpha ~jobs app with
    | Ok o ->
      Fmt.pr "%a@." (Letdma.Pipeline.pp_outcome app) o;
      0
    | Error f ->
      err "%s" (Letdma.Pipeline.failure_to_string f);
      (match f with
       | Letdma.Pipeline.Invalid_model _ -> exit_invalid_model
       | Letdma.Pipeline.No_communications | Letdma.Pipeline.Unschedulable _ ->
         exit_unschedulable
       | Letdma.Pipeline.Exhausted _ -> exit_no_solution)
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Run the hardened solve pipeline (validation, certification, \
          degradation ladder) and report which rung produced the accepted \
          solution.")
    Term.(
      const run $ verbose_t $ labels_per_edge_t $ objective_t $ alpha_t
      $ budget_t $ jobs_t $ trace_t $ metrics_t)

(* --- fault injection -------------------------------------------------- *)

let faults_cmd =
  let intensities_t =
    Arg.(
      value
      & opt (list (nonneg_float "intensity")) [ 0.0; 0.1; 0.5; 1.0; 2.0; 5.0 ]
      & info [ "intensities" ] ~docv:"X,Y,..."
          ~doc:"Fault intensities to sweep (see Faults.at_intensity).")
  in
  let run verbose labels_per_edge alpha seed intensities =
    guard @@ fun () ->
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let groups = Groups.compute app in
    match Rt_analysis.Sensitivity.gammas app ~alpha with
    | None ->
      err "task set unschedulable at zero jitter";
      exit_unschedulable
    | Some s when not s.Rt_analysis.Sensitivity.schedulable ->
      err "task set unschedulable with alpha=%.2f jitter bound" alpha;
      exit_unschedulable
    | Some s -> (
      let gamma = s.Rt_analysis.Sensitivity.gamma in
      match Letdma.Heuristic.solve app groups ~gamma with
      | Error e ->
        err "heuristic: %s" e;
        exit_no_solution
      | Ok solution ->
        let schedule = Letdma.Solution.schedule app groups solution in
        let reports =
          Dma_sim.Robustness.sweep ~seed ~intensities app groups schedule
        in
        Fmt.pr "== FAULT INJECTION (seed %d) ==@." seed;
        List.iter
          (fun r -> Fmt.pr "%a@." Dma_sim.Robustness.pp_report r)
          reports;
        (match
           List.find_opt
             (fun r -> not (Dma_sim.Robustness.survives r))
             reports
         with
         | None -> Fmt.pr "all properties survive every swept intensity@."
         | Some r ->
           Fmt.pr "properties first break at intensity %g@." r.intensity);
        0)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Stress a certified schedule under the seeded DMA fault model and \
          report which LET properties survive at each intensity.")
    Term.(
      const run $ verbose_t $ labels_per_edge_t $ alpha_t $ seed_t
      $ intensities_t)

(* --- trace-check ------------------------------------------------------- *)

let trace_check_cmd =
  let files_t =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Files to validate: $(b,.jsonl) files are checked as event \
             traces (every line a schema-conforming JSON object, timestamps \
             monotone per domain), anything else as a single JSON document. \
             Both checks reject NaN/Infinity tokens, which are not JSON.")
  in
  let run verbose files =
    guard @@ fun () ->
    setup_logs verbose;
    let results =
      List.map
        (fun f ->
          if Filename.check_suffix f ".jsonl" then (
            match Obs.Check.trace_file f with
            | Ok n ->
              Fmt.pr "%s: OK (%d events)@." f n;
              true
            | Error m ->
              err "%s: %s" f m;
              false)
          else
            match Obs.Check.json_file f with
            | Ok () ->
              Fmt.pr "%s: OK@." f;
              true
            | Error m ->
              err "%s: %s" f m;
              false)
        files
    in
    if List.for_all Fun.id results then 0 else exit_internal
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate JSONL event traces and JSON bench reports (used by the CI \
          gate to reject malformed or NaN-carrying output).")
    Term.(const run $ verbose_t $ files_t)

(* --- random workload --------------------------------------------------- *)

let random_cmd =
  let run verbose time_limit seed =
    guard @@ fun () ->
    setup_logs verbose;
    let app = Workload.Generator.random ~seed () in
    Fmt.pr "%a@." App.pp app;
    match
      Letdma.Experiment.run_config
        ~solver:
          (Letdma.Experiment.milp ~time_limit_s:time_limit
             Letdma.Formulation.No_obj)
        app ~alpha:0.3
    with
    | Error e ->
      err "%s" (Letdma.Experiment.error_to_string e);
      exit_of_experiment_error e
    | Ok r ->
      Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2_subplot ppf app) r;
      0
  in
  Cmd.v
    (Cmd.info "random"
       ~doc:"Generate a random workload and run the pipeline on it.")
    Term.(const run $ verbose_t $ time_limit_t $ seed_t)

let main =
  Cmd.group
    (Cmd.info "letdma" ~version:"1.0.0"
       ~doc:
         "Optimal memory allocation and scheduling for DMA data transfers \
          under the LET paradigm (DAC 2021 reproduction).")
    [
      info_cmd;
      fig1_cmd;
      fig2_cmd;
      table1_cmd;
      alpha_cmd;
      solve_cmd;
      pipeline_cmd;
      faults_cmd;
      random_cmd;
      trace_check_cmd;
    ]

let () = exit (Cmd.eval' main)
