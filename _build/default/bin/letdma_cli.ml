(* Command-line interface: reproduce the paper's experiments and inspect
   the pipeline on the WATERS 2019 case study or random workloads. *)

open Cmdliner
open Rt_model
open Let_sem

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log solver progress.")

let time_limit_t =
  Arg.(
    value
    & opt float 60.0
    & info [ "time-limit" ] ~docv:"SECONDS"
        ~doc:"Wall-clock limit for each MILP solve (the paper used 1 hour).")

let labels_per_edge_t =
  Arg.(
    value
    & opt int 1
    & info [ "labels-per-edge" ] ~docv:"N"
        ~doc:"Split each WATERS data flow into N labels (scales the MILP).")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let waters ~labels_per_edge = Workload.Waters2019.make ~labels_per_edge ()

(* --- info ------------------------------------------------------------ *)

let info_cmd =
  let run verbose labels_per_edge =
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let groups = Groups.compute app in
    Fmt.pr "%a@.@.%a@.@.Response-time analysis:@.%a@." App.pp app Groups.pp
      groups
      (Rt_analysis.Rta.pp_analysis app)
      ();
    List.iter
      (fun (alpha, s) ->
        match s with
        | Some s -> Fmt.pr "@.%a@." (Rt_analysis.Sensitivity.pp app) s
        | None -> Fmt.pr "@.alpha=%.1f: unschedulable@." alpha)
      (Rt_analysis.Sensitivity.sweep app)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the WATERS 2019 case study and its analysis.")
    Term.(const run $ verbose_t $ labels_per_edge_t)

(* --- fig1 ------------------------------------------------------------ *)

let fig1_cmd =
  let vcd_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:
            "Additionally dump the proposed protocol's schedule as a VCD \
             waveform (viewable in GTKWave).")
  in
  let run verbose vcd =
    setup_logs verbose;
    Fmt.pr "%s@." (Letdma.Fig1.render ());
    match vcd with
    | None -> ()
    | Some file ->
      let app = Letdma.Fig1.app () in
      let groups = Groups.compute app in
      let gamma = Letdma.Fig1.gamma app in
      (match Letdma.Heuristic.solve app groups ~gamma with
       | Error e -> Fmt.epr "vcd: %s@." e
       | Ok solution ->
         let m =
           Letdma.Baselines.run ~record_trace:true app groups
             Letdma.Baselines.Proposed ~solution:(Some solution)
         in
         let oc = open_out file in
         output_string oc (Dma_sim.Vcd.to_vcd app m.Dma_sim.Sim.trace);
         close_out oc;
         Fmt.pr "wrote %s@." file)
  in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:
         "Reproduce the shape of the paper's Fig. 1: the protocol's schedule \
          vs the Giotto ordering on the 6-task example.")
    Term.(const run $ verbose_t $ vcd_t)

(* --- fig2 ------------------------------------------------------------ *)

let fig2_cmd =
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Additionally write the per-task data as CSV for plotting.")
  in
  let run verbose time_limit labels_per_edge csv =
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let results = Letdma.Experiment.fig2 ~time_limit_s:time_limit app in
    Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2 ppf app) results;
    match csv with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      let ppf = Format.formatter_of_out_channel oc in
      Letdma.Report.fig2_csv ppf app results;
      Format.pp_print_flush ppf ();
      close_out oc;
      Fmt.pr "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "fig2"
       ~doc:
         "Reproduce Fig. 2: latency ratios of the proposed approach vs the \
          three Giotto baselines for alpha in {0.2, 0.4} and the three \
          objectives.")
    Term.(const run $ verbose_t $ time_limit_t $ labels_per_edge_t $ csv_t)

(* --- table1 ---------------------------------------------------------- *)

let table1_cmd =
  let run verbose time_limit labels_per_edge =
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let rows = Letdma.Experiment.table1 ~time_limit_s:time_limit app in
    Fmt.pr "%a@." Letdma.Report.table1 rows
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table I: solver running times and DMA transfer counts.")
    Term.(const run $ verbose_t $ time_limit_t $ labels_per_edge_t)

(* --- alpha sweep ------------------------------------------------------ *)

let alpha_cmd =
  let run verbose time_limit labels_per_edge =
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let results = Letdma.Experiment.alpha_sweep ~time_limit_s:time_limit app in
    Fmt.pr "%a@." Letdma.Report.alpha_sweep results
  in
  Cmd.v
    (Cmd.info "alpha-sweep"
       ~doc:
         "Reproduce the alpha sensitivity sweep of Section VII (alpha in \
          {0.1..0.5}).")
    Term.(const run $ verbose_t $ time_limit_t $ labels_per_edge_t)

(* --- solve ------------------------------------------------------------ *)

let objective_t =
  let obj_conv =
    Arg.enum
      [
        ("no-obj", Letdma.Formulation.No_obj);
        ("dmat", Letdma.Formulation.Min_transfers);
        ("del", Letdma.Formulation.Min_delay_ratio);
      ]
  in
  Arg.(
    value
    & opt obj_conv Letdma.Formulation.No_obj
    & info [ "objective" ] ~docv:"OBJ"
        ~doc:"Objective: $(b,no-obj), $(b,dmat) (Eq. 4) or $(b,del) (Eq. 5).")

let alpha_t =
  Arg.(
    value & opt float 0.2
    & info [ "alpha" ] ~docv:"ALPHA"
        ~doc:"Sensitivity factor for data-acquisition deadlines.")

let heuristic_t =
  Arg.(
    value & flag
    & info [ "heuristic" ] ~doc:"Use the greedy heuristic instead of the MILP.")

let solve_cmd =
  let run verbose time_limit labels_per_edge objective alpha heuristic =
    setup_logs verbose;
    let app = waters ~labels_per_edge in
    let solver =
      if heuristic then Letdma.Experiment.Heuristic
      else Letdma.Experiment.milp ~time_limit_s:time_limit objective
    in
    match Letdma.Experiment.run_config ~solver app ~alpha with
    | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
    | Ok r ->
      Fmt.pr "%a@.@.%a@."
        (Letdma.Solution.pp app)
        r.Letdma.Experiment.solution
        (fun ppf -> Letdma.Report.fig2_subplot ppf app)
        r
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Solve one configuration and report the resulting plan/latencies.")
    Term.(
      const run $ verbose_t $ time_limit_t $ labels_per_edge_t $ objective_t
      $ alpha_t $ heuristic_t)

(* --- random workload --------------------------------------------------- *)

let random_cmd =
  let run verbose time_limit seed =
    setup_logs verbose;
    let app = Workload.Generator.random ~seed () in
    Fmt.pr "%a@." App.pp app;
    match
      Letdma.Experiment.run_config
        ~solver:
          (Letdma.Experiment.milp ~time_limit_s:time_limit
             Letdma.Formulation.No_obj)
        app ~alpha:0.3
    with
    | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
    | Ok r -> Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2_subplot ppf app) r
  in
  Cmd.v
    (Cmd.info "random"
       ~doc:"Generate a random workload and run the pipeline on it.")
    Term.(const run $ verbose_t $ time_limit_t $ seed_t)

let main =
  Cmd.group
    (Cmd.info "letdma" ~version:"1.0.0"
       ~doc:
         "Optimal memory allocation and scheduling for DMA data transfers \
          under the LET paradigm (DAC 2021 reproduction).")
    [ info_cmd; fig1_cmd; fig2_cmd; table1_cmd; alpha_cmd; solve_cmd; random_cmd ]

let () = exit (Cmd.eval main)
