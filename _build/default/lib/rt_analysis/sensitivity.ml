open Rt_model

(* The paper's procedure for deriving data-acquisition deadlines
   (Section VII): gamma_i = alpha * S_i where S_i = D_i - R_i is the
   zero-jitter slack, for alpha in {0.1, ..., 0.5}; the resulting gammas
   are then validated by re-running the analysis with gamma as jitter. *)

type t = {
  alpha : float;
  gamma : Time.t array;
  schedulable : bool; (* with gamma as release jitter *)
}

let gammas app ~alpha =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Sensitivity.gammas: alpha must be in [0,1]";
  let n = App.num_tasks app in
  let slacks = Rta.slacks app in
  let gamma = Array.make n Time.zero in
  let ok = ref true in
  for i = 0 to n - 1 do
    match slacks.(i) with
    | Some s -> gamma.(i) <- Time.of_ns (int_of_float (alpha *. float_of_int (Time.to_ns s)))
    | None -> ok := false
  done;
  if not !ok then None
  else Some { alpha; gamma; schedulable = Rta.schedulable app ~jitter:gamma }

(* The alpha sweep of Section VII. *)
let sweep ?(alphas = [ 0.1; 0.2; 0.3; 0.4; 0.5 ]) app =
  List.map (fun alpha -> (alpha, gammas app ~alpha)) alphas

let pp app ppf t =
  Fmt.pf ppf "@[<v>alpha=%.1f (%s)@,%a@]" t.alpha
    (if t.schedulable then "schedulable" else "NOT schedulable")
    Fmt.(
      list ~sep:cut (fun ppf (task : Task.t) ->
          pf ppf "  gamma(%s) = %a" task.Task.name Time.pp t.gamma.(task.Task.id)))
    (App.tasks app)
