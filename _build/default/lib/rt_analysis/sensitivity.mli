(** Data-acquisition deadline assignment by sensitivity analysis
    (Section VII): gamma_i = alpha * (D_i - R_i). *)

open Rt_model

type t = {
  alpha : float;
  gamma : Time.t array;  (** per-task data-acquisition deadline *)
  schedulable : bool;  (** task set schedulable with gamma as jitter *)
}

(** [None] when the task set is unschedulable even at zero jitter. *)
val gammas : App.t -> alpha:float -> t option

(** The paper's alpha in {0.1 .. 0.5} sweep. *)
val sweep : ?alphas:float list -> App.t -> (float * t option) list

val pp : App.t -> Format.formatter -> t -> unit
