(** Response-time analysis for fixed-priority preemptive partitioned
    scheduling with release jitter.

    Priorities are rate-monotonic (ties by task id). The jitter array
    models the data-acquisition latency: a job released at [t] becomes
    ready at most [jitter.(i)] later, and must still complete by its
    implicit deadline. *)

open Rt_model

(** [a] beats [b] under rate-monotonic priority with id tie-break. *)
val higher_priority : Task.t -> Task.t -> bool

val hp_tasks : App.t -> Task.t -> Task.t list

(** Worst-case response time measured from the ready instant, or [None]
    when the recurrence exceeds the deadline budget. *)
val response_time : App.t -> jitter:Time.t array -> int -> Time.t option

val no_jitter : App.t -> Time.t array

(** Every task satisfies [R_i + jitter_i <= D_i]. *)
val schedulable : App.t -> jitter:Time.t array -> bool

(** [S_i = D_i - R_i] at zero jitter — the paper's sensitivity baseline. *)
val slack : App.t -> int -> Time.t option

val slacks : App.t -> Time.t option array
val pp_analysis : App.t -> Format.formatter -> unit -> unit
