lib/rt_analysis/rta.mli: App Format Rt_model Task Time
