lib/rt_analysis/rt_analysis.ml: Rta Sensitivity
