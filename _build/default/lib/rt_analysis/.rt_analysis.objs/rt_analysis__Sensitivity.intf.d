lib/rt_analysis/sensitivity.mli: App Format Rt_model Time
