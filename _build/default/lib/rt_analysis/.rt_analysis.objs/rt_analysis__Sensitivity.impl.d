lib/rt_analysis/sensitivity.ml: App Array Fmt List Rt_model Rta Task Time
