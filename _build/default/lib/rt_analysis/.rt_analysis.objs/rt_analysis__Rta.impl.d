lib/rt_analysis/rta.ml: App Array Fmt List Rt_model Task Time
