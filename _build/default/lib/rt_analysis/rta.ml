open Rt_model

(* Response-time analysis for fixed-priority preemptive partitioned
   scheduling with release jitter (Section V.C points to the standard
   technique; see e.g. Audsley et al.). Priorities are rate-monotonic with
   task-id tie-breaking. *)

(* true when [a] has higher priority than [b] (same core assumed). *)
let higher_priority (a : Task.t) (b : Task.t) =
  let c = Time.compare a.Task.period b.Task.period in
  if c <> 0 then c < 0 else a.Task.id < b.Task.id

let hp_tasks app (t : Task.t) =
  List.filter
    (fun (o : Task.t) -> o.Task.id <> t.Task.id && higher_priority o t)
    (App.tasks_on_core app t.Task.core)

let ceil_div a b = (a + b - 1) / b

(* Smallest fixed point of
     R = C_i + sum_{j in hp(i)} ceil((R + J_j) / T_j) C_j
   bounded by the deadline minus the task's own jitter (beyond which the
   task is unschedulable anyway). Returns the response time measured from
   the instant the job becomes ready. *)
let response_time app ~jitter i =
  let t = App.task app i in
  let hp = hp_tasks app t in
  let deadline = Task.deadline t in
  let budget = Time.(deadline - jitter.(i)) in
  let rec fixpoint r =
    let demand =
      List.fold_left
        (fun acc (j : Task.t) ->
          Time.(
            acc
            + ceil_div Time.(r + jitter.(j.Task.id)) j.Task.period * j.Task.wcet))
        t.Task.wcet hp
    in
    if Time.compare demand r <= 0 then Some r
    else if Time.compare demand budget > 0 then None
    else fixpoint demand
  in
  if Time.compare t.Task.wcet budget > 0 then None else fixpoint t.Task.wcet

let no_jitter app = Array.make (App.num_tasks app) Time.zero

(* Schedulability: every job completes within its period, counting the
   release jitter (data-acquisition latency) before it becomes ready. *)
let schedulable app ~jitter =
  List.for_all
    (fun (t : Task.t) ->
      match response_time app ~jitter t.Task.id with
      | Some r -> Time.compare Time.(r + jitter.(t.Task.id)) (Task.deadline t) <= 0
      | None -> false)
    (App.tasks app)

(* S_i = D_i - R_i with zero jitter (the paper's sensitivity baseline). *)
let slack app i =
  let jitter = no_jitter app in
  match response_time app ~jitter i with
  | Some r -> Some Time.((App.task app i).Task.period - r)
  | None -> None

let slacks app =
  let n = App.num_tasks app in
  let out = Array.make n None in
  for i = 0 to n - 1 do
    out.(i) <- slack app i
  done;
  out

let pp_analysis app ppf () =
  let jitter = no_jitter app in
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (t : Task.t) ->
          match response_time app ~jitter t.Task.id with
          | Some r ->
            pf ppf "  %s: R=%a S=%a" t.Task.name Time.pp r Time.pp
              Time.(t.Task.period - r)
          | None -> pf ppf "  %s: unschedulable" t.Task.name))
    (App.tasks app)
