(** Schedulability machinery: jitter-aware response-time analysis and the
    paper's sensitivity procedure for data-acquisition deadlines. *)

module Rta = Rta
module Sensitivity = Sensitivity
