(** The four communication approaches compared in the paper's evaluation
    (Section VII), as simulator modes. *)

open Rt_model
open Let_sem
open Mem_layout
open Dma_sim

type approach = Proposed | Giotto_cpu | Giotto_dma_a | Giotto_dma_b

val approach_name : approach -> string
val all_approaches : approach list

(** (i) the paper's protocol: optimized transfers, per-task readiness. *)
val proposed_mode : App.t -> Groups.t -> Solution.t -> Sim.mode

(** (ii) Giotto with CPU copies (default contention model:
    {!Sim.Parallel_phases}). *)
val giotto_cpu_mode : ?model:Sim.cpu_model -> unit -> Sim.mode

(** (iii) Giotto with a DMA, one transfer per communication. *)
val giotto_dma_a_mode : App.t -> Groups.t -> Sim.mode

(** The transfers Giotto-DMA-B issues for one instant: Giotto order,
    grouped as much as the given allocation allows. *)
val giotto_dma_b_plan :
  App.t -> Allocation.t -> Comm.Set.t -> Properties.plan

(** (iv) Giotto order and barrier with the optimized memory layout. *)
val giotto_dma_b_mode : App.t -> Groups.t -> Allocation.t -> Sim.mode

(** Run one approach over a hyperperiod. [solution] is required for
    [Proposed] and [Giotto_dma_b] (raises [Invalid_argument] otherwise). *)
val run :
  ?record_trace:bool ->
  ?cpu_model:Sim.cpu_model ->
  App.t ->
  Groups.t ->
  approach ->
  solution:Solution.t option ->
  Sim.metrics
