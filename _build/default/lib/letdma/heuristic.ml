open Rt_model
open Let_sem
open Mem_layout

(* Greedy scheduler/allocator: a scalable alternative to the MILP, also
   used as its warm start and as an ablation baseline.

   Ideas:
   - Transfers are built at the granularity of (task, class, instant
     signature): all member communications are needed at exactly the same
     instants, so a transfer projects atomically onto every C(t) and
     Constraint 6 holds by construction once the allocation keeps each
     transfer contiguous.
   - The global memory order is built by concatenating transfer label
     blocks (reads-major or writes-major — both are tried and the better
     plan wins); local memories inherit the global relative order, so a
     block contiguous in global memory is contiguous everywhere it exists.
     Transfers whose labels still end up scattered are split into maximal
     contiguous runs.
   - Transfers are ordered by list scheduling driven by the consumers'
     data-acquisition deadlines (gamma ascending): each consumer's missing
     prerequisite writes are emitted right before its reads. *)

type transfer = {
  key : int * (int * Comm.direction) * int list; (* task, class, signature *)
  comms : Comm.t list;
}

(* Signature: the set of patterns containing the communication — two comms
   share it iff they are needed at exactly the same instants. *)
let signatures groups =
  let tbl = Hashtbl.create 64 in
  List.iteri
    (fun pi (pat : Groups.pattern) ->
      Comm.Set.iter
        (fun c ->
          let old = Option.value ~default:[] (Hashtbl.find_opt tbl c) in
          Hashtbl.replace tbl c (pi :: old))
        pat.Groups.comms)
    (Groups.patterns groups);
  fun c -> List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl c))

(* [`Per_task] keeps one transfer per (task, class, signature): per-task
   readiness stays fine-grained (good for latency). [`Grouped] merges
   across tasks, keyed by (class, signature) only: fewest transfers (the
   warm start for the OBJ-DMAT objective). *)
type granularity = Per_task | Grouped

let build_transfers ?(granularity = Per_task) app groups =
  let signature = signatures groups in
  let tbl = Hashtbl.create 64 in
  Comm.Set.iter
    (fun c ->
      let task_key =
        match granularity with Per_task -> c.Comm.task | Grouped -> -1
      in
      let key = (task_key, Comm.cls app c, signature c) in
      let old = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (c :: old))
    (Groups.s0 groups);
  Hashtbl.fold
    (fun key comms acc ->
      { key; comms = List.sort Comm.compare comms } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.key b.key)

let is_write t =
  match t.comms with
  | c :: _ -> c.Comm.kind = Comm.Write
  | [] -> false

let labels_of t =
  List.sort_uniq Int.compare (List.map (fun c -> c.Comm.label) t.comms)

(* Global-memory order: concatenate the blocks of the [major] transfers
   (first-placement wins), then append any label not yet placed. Local
   memories inherit the global relative order. *)
let build_allocation app transfers ~reads_major =
  let major, minor = List.partition (fun t -> is_write t <> reads_major) transfers in
  let placed = Hashtbl.create 64 in
  let order = ref [] in
  let place t =
    List.iter
      (fun l ->
        if not (Hashtbl.mem placed l) then begin
          Hashtbl.replace placed l ();
          order := l :: !order
        end)
      (labels_of t)
  in
  List.iter place major;
  List.iter place minor;
  let global_order = List.rev !order in
  let orders =
    List.filter_map
      (fun m ->
        match Layout.expected_labels app m with
        | [] -> None
        | expected ->
          let expected = List.sort_uniq Int.compare expected in
          Some (m, List.filter (fun l -> List.mem l expected) global_order))
      (Platform.memories (App.platform app))
  in
  Allocation.make app orders

(* Split a transfer into maximal runs contiguous in both its memories. *)
let split_transfer app alloc t =
  match t.comms with
  | [] -> []
  | c :: _ ->
    let src = Allocation.layout alloc (Comm.src_memory app c) in
    let dst = Allocation.layout alloc (Comm.dst_memory app c) in
    let sorted =
      List.sort
        (fun a b ->
          Int.compare
            (Layout.position src a.Comm.label)
            (Layout.position src b.Comm.label))
        t.comms
    in
    let runs = ref [] and current = ref [] in
    let flush () =
      if !current <> [] then runs := List.rev !current :: !runs;
      current := []
    in
    List.iter
      (fun c ->
        (match !current with
         | [] -> current := [ c ]
         | prev :: _ ->
           let candidate = List.map (fun x -> x.Comm.label) (c :: !current) in
           ignore prev;
           if Layout.transferable ~src ~dst candidate then current := c :: !current
           else begin
             flush ();
             current := [ c ]
           end))
      sorted;
    flush ();
    let task, cls, sig_ = t.key in
    (* runs were accumulated in reverse; re-key each run uniquely so the
       scheduler's key-based dedup keeps all of them *)
    List.rev !runs
    |> List.mapi (fun k comms -> { key = (task, cls, k :: sig_); comms })

(* Deadline-driven list scheduling: consumers in gamma-ascending order pull
   in their missing prerequisite writes, then their reads. *)
let order_transfers ~gamma transfers =
  let writes, reads = List.partition is_write transfers in
  let scheduled = Hashtbl.create 64 in
  let sequence = ref [] in
  let emit t =
    if not (Hashtbl.mem scheduled t.key) then begin
      Hashtbl.replace scheduled t.key ();
      sequence := t :: !sequence
    end
  in
  let writes_of_label l =
    List.filter (fun w -> List.mem l (labels_of w)) writes
  in
  let writes_of_task i =
    List.filter
      (fun w -> List.exists (fun c -> c.Comm.task = i) w.comms)
      writes
  in
  let consumers =
    List.concat_map (fun r -> List.map (fun c -> c.Comm.task) r.comms) reads
    |> List.sort_uniq Int.compare
    |> List.sort (fun a b -> Time.compare gamma.(a) gamma.(b))
  in
  List.iter
    (fun consumer ->
      let my_reads =
        List.filter
          (fun r -> List.exists (fun c -> c.Comm.task = consumer) r.comms)
          reads
      in
      (* Property 1: the consumer's own writes must precede its reads *)
      List.iter emit (writes_of_task consumer);
      (* Property 2: the writes feeding each read *)
      List.iter
        (fun r -> List.iter (fun l -> List.iter emit (writes_of_label l)) (labels_of r))
        my_reads;
      List.iter emit my_reads)
    consumers;
  (* safety net: anything not pulled in yet *)
  List.iter emit writes;
  List.iter emit reads;
  List.rev !sequence

let plan_of ?granularity app groups ~gamma ~reads_major =
  let transfers = build_transfers ?granularity app groups in
  let allocation = build_allocation app transfers ~reads_major in
  let transfers =
    List.concat_map (fun t -> split_transfer app allocation t) transfers
  in
  let ordered = order_transfers ~gamma transfers in
  let slots = Array.of_list (List.map (fun t -> t.comms) ordered) in
  Solution.make ~allocation ~slots

(* Worst task criticality of a solution: max lambda_i(s0) / gamma_i
   (<= 1 means every data-acquisition deadline holds at s0). *)
let criticality app ~gamma sol =
  let lambda = Solution.lambda_s0 app sol in
  let worst = ref 0.0 in
  Array.iteri
    (fun i l ->
      if l > Time.zero then begin
        let g = Float.max 1.0 (float_of_int (Time.to_ns gamma.(i))) in
        worst := Float.max !worst (float_of_int (Time.to_ns l) /. g)
      end)
    lambda;
  !worst

let best_of ?granularity app groups ~gamma =
  let a = plan_of ?granularity app groups ~gamma ~reads_major:true in
  let b = plan_of ?granularity app groups ~gamma ~reads_major:false in
  if criticality app ~gamma a <= criticality app ~gamma b then a else b

(* Try both allocation majors and keep the plan with the best (smallest)
   worst-case criticality. *)
let solve ?granularity app groups ~gamma =
  match Comm.Set.is_empty (Groups.s0 groups) with
  | true -> Error "heuristic: no inter-core communications"
  | false ->
    let pick = best_of ?granularity app groups ~gamma in
    (match Solution.validate app groups pick with
     | Ok () -> Ok pick
     | Error e ->
       (* Property 3 can legitimately fail on overloaded configurations;
          the caller decides whether a latency-infeasible plan is usable *)
       Error (Fmt.str "heuristic plan failed validation: %s" e))

(* Expose the raw (possibly invalid) plan for experiments that want to
   simulate it anyway. *)
let solve_unchecked ?granularity app groups ~gamma =
  if Comm.Set.is_empty (Groups.s0 groups) then None
  else Some (best_of ?granularity app groups ~gamma)
