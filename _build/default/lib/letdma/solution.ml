open Rt_model
open Let_sem
open Mem_layout

(* A solved configuration of the LET-DMA protocol: the memory allocation
   plus the ordered DMA transfer slots at the synchronous instant s0. The
   plan at any other instant is the projection of the s0 slots onto C(t)
   (Theorem 1 of the paper relies on every projection staying
   contiguous). *)

type t = {
  allocation : Allocation.t;
  slots : Comm.t list array; (* slot g -> its communications; may be empty *)
}

let make ~allocation ~slots = { allocation; slots }

let allocation t = t.allocation

(* Order a transfer's communications bottom-to-top in the local memory (the
   global memory order is identical for feasible solutions). *)
let sort_transfer app t g =
  match g with
  | [] -> []
  | c :: _ ->
    let layout = Allocation.layout t.allocation (Comm.src_memory app c) in
    let layout =
      if Layout.mem_label layout c.Comm.label then layout
      else Allocation.layout t.allocation (Comm.dst_memory app c)
    in
    List.sort
      (fun a b ->
        Int.compare
          (Layout.position layout a.Comm.label)
          (Layout.position layout b.Comm.label))
      g

(* The ordered plan at s0: non-empty slots in slot order. *)
let s0_plan app t =
  Array.to_list t.slots
  |> List.filter_map (function
       | [] -> None
       | g -> Some (sort_transfer app t g))

(* Number of DMA transfers at s0 — the paper's Table I metric. *)
let num_transfers t =
  Array.fold_left (fun acc g -> if g = [] then acc else acc + 1) 0 t.slots

(* D(t): the s0 slots projected onto C(t), empty projections dropped. *)
let plan_at app groups t time =
  let present = Groups.comms_at groups time in
  Array.to_list t.slots
  |> List.filter_map (fun g ->
         match List.filter (fun c -> Comm.Set.mem c present) g with
         | [] -> None
         | g' -> Some (sort_transfer app t g'))

let schedule app groups t = fun time -> plan_at app groups t time

(* Full validation: every pattern's projected plan is well-formed, LET-
   correct, contiguous under the allocation, and meets Property 3 against
   the pattern's tightest gap. *)
let validate app groups t =
  let rec go = function
    | [] -> Ok ()
    | (p : Groups.pattern) :: rest ->
      let time = List.hd p.Groups.occurrences in
      let plan = plan_at app groups t time in
      let ( let* ) = Result.bind in
      let* () =
        Properties.check_all app ~expected:p.Groups.comms ~gap:p.Groups.min_gap
          plan
      in
      let* () = Allocation.plan_feasible app t.allocation plan in
      go rest
  in
  go (Groups.patterns groups)

(* Analytic data-acquisition latency at s0 under the protocol's cost model
   (the expression bounded by Constraint 9): the completion time of the
   last transfer carrying a communication of the task. *)
let lambda_s0 app t =
  let plan = s0_plan app t in
  let p = App.platform app in
  let n = App.num_tasks app in
  let lambda = Array.make n Time.zero in
  let cursor = ref Time.zero in
  List.iter
    (fun g ->
      let bytes = Properties.transfer_bytes app g in
      cursor := Time.(!cursor + Platform.lambda_o p + Platform.dma_copy_time p bytes);
      List.iter (fun c -> lambda.(c.Comm.task) <- !cursor) g)
    plan;
  lambda

let pp app ppf t =
  Fmt.pf ppf "@[<v>%d DMA transfers at s0:@,%a@,%a@]" (num_transfers t)
    Fmt.(
      list ~sep:cut (fun ppf (i, g) ->
          pf ppf "  #%d: [%a]" i Fmt.(list ~sep:(any ", ") (Comm.pp app)) g))
    (List.mapi (fun i g -> (i, g)) (s0_plan app t))
    (Allocation.pp app) t.allocation
