(** Greedy scheduler/allocator: a scalable alternative to the MILP, its
    warm-start generator, and an ablation baseline.

    Transfers are built per (task, class, instant-signature) — or per
    (class, signature) with [Grouped] — so each transfer projects
    atomically onto every C(t) and Constraint 6 holds by construction;
    the allocation concatenates transfer blocks (reads-major and
    writes-major are both tried); transfers are ordered by deadline-driven
    list scheduling. *)

open Rt_model
open Let_sem

type granularity =
  | Per_task  (** finest readiness; best for latency objectives *)
  | Grouped  (** fewest transfers; the OBJ-DMAT warm start *)

(** [solve app groups ~gamma] returns a validated solution or the reason
    validation failed (e.g. a Property-3 overload). *)
val solve :
  ?granularity:granularity ->
  App.t ->
  Groups.t ->
  gamma:Time.t array ->
  (Solution.t, string) result

(** Like {!solve} but returns the best plan even when it fails validation
    ([None] only without inter-core communications). *)
val solve_unchecked :
  ?granularity:granularity ->
  App.t ->
  Groups.t ->
  gamma:Time.t array ->
  Solution.t option

(** Worst lambda_i(s0)/gamma_i over tasks (<= 1 means all data-acquisition
    deadlines hold at s0); the selection criterion between allocation
    majors. *)
val criticality : App.t -> gamma:Time.t array -> Solution.t -> float
