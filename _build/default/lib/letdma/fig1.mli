(** The worked example of the paper's Fig. 1: six tasks on two cores,
    three inter-core flows, rendered as ASCII Gantt charts comparing the
    proposed protocol's re-ordered schedule against the Giotto ordering. *)

open Rt_model

(** The 6-task, 2-core application of the figure. *)
val app : unit -> App.t

(** The example's data-acquisition deadlines (tau2 is latency-critical). *)
val gamma : App.t -> Time.t array

(** Both schedules at s0 plus the event log, as printable text. *)
val render : unit -> string
