(** A solved LET-DMA configuration: the memory allocation plus the ordered
    DMA transfer slots at the synchronous instant s0.

    The plan at any other instant t is the projection of the s0 slots onto
    C(t); Theorem 1 of the paper guarantees (via Constraint 6) that every
    projection stays contiguous, so the per-instant latency never exceeds
    the s0 latency. *)

open Rt_model
open Let_sem
open Mem_layout

type t

(** [make ~allocation ~slots] wraps raw slots (slot index = execution
    order; empty slots allowed). *)
val make : allocation:Allocation.t -> slots:Comm.t list array -> t

val allocation : t -> Allocation.t

(** Ordered plan at s0: non-empty slots, each sorted bottom-to-top in its
    memories. *)
val s0_plan : App.t -> t -> Properties.plan

(** Number of DMA transfers at s0 (Table I's metric). *)
val num_transfers : t -> int

(** D(t): the s0 slots projected onto C(t); empty projections dropped. *)
val plan_at : App.t -> Groups.t -> t -> Time.t -> Properties.plan

(** The schedule function consumed by {!Dma_sim.Sim}. *)
val schedule : App.t -> Groups.t -> t -> Time.t -> Properties.plan

(** Every pattern's projected plan is well-formed, LET-correct (Properties
    1-3 against the pattern's tightest gap) and contiguous under the
    allocation. *)
val validate : App.t -> Groups.t -> t -> (unit, string) result

(** Analytic per-task data-acquisition latency at s0 under the protocol's
    cost model (the quantity Constraint 9 bounds). *)
val lambda_s0 : App.t -> t -> Time.t array

val pp : App.t -> Format.formatter -> t -> unit
