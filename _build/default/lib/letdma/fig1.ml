open Rt_model
open Let_sem
open Dma_sim

(* The worked example of the paper's Fig. 1: two cores, six tasks
   (tau1, tau3, tau5 on P1; tau2, tau4, tau6 on P2), three inter-core
   flows tau1->tau2, tau3->tau4, tau5->tau6. Inset (b) shows the proposed
   protocol re-ordering the transfers so that the latency-sensitive tau2
   becomes ready early; inset (c) shows the Giotto ordering where every
   task waits for the whole burst. *)

let app () =
  let platform =
    (* small copies: shrink the ISR overhead so the figure's proportions
       stay readable *)
    Platform.make ~n_cores:2 ~o_isr:(Time.of_us 2) ()
  in
  let ms = Time.of_ms in
  let tasks =
    [
      Task.make ~id:0 ~name:"tau1" ~period:(ms 10) ~wcet:(Time.of_us 500) ~core:0;
      Task.make ~id:1 ~name:"tau2" ~period:(ms 10) ~wcet:(Time.of_us 500) ~core:1;
      Task.make ~id:2 ~name:"tau3" ~period:(ms 10) ~wcet:(Time.of_us 500) ~core:0;
      Task.make ~id:3 ~name:"tau4" ~period:(ms 10) ~wcet:(Time.of_us 500) ~core:1;
      Task.make ~id:4 ~name:"tau5" ~period:(ms 10) ~wcet:(Time.of_us 500) ~core:0;
      Task.make ~id:5 ~name:"tau6" ~period:(ms 10) ~wcet:(Time.of_us 500) ~core:1;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"l1" ~size:64 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"l2" ~size:128 ~writer:2 ~readers:[ 3 ];
      Label.make ~id:2 ~name:"l3" ~size:256 ~writer:4 ~readers:[ 5 ];
    ]
  in
  App.make ~platform ~tasks ~labels

(* tau2 is the latency-sensitive task of the example. *)
let gamma app =
  let g = Array.make (App.num_tasks app) (Time.of_ms 5) in
  g.(1) <- Time.of_us 100;
  g

let lambda_line app metrics =
  Fmt.str "%a"
    Fmt.(
      list ~sep:(any "  ") (fun ppf (t : Task.t) ->
          pf ppf "lambda(%s)=%.1fus" t.Task.name
            (Time.to_us_float metrics.Sim.lambda.(t.Task.id))))
    (App.tasks app)

let render () =
  let app = app () in
  let groups = Groups.compute app in
  let gamma = gamma app in
  match Heuristic.solve app groups ~gamma with
  | Error e -> Fmt.str "fig1: heuristic failed: %s" e
  | Ok solution ->
    let proposed =
      Baselines.run ~record_trace:true app groups Baselines.Proposed
        ~solution:(Some solution)
    in
    let giotto =
      Baselines.run ~record_trace:true app groups Baselines.Giotto_dma_a
        ~solution:None
    in
    let early t = Time.compare (Trace.start_of t) (Time.of_ms 1) < 0 in
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      "Fig. 1 — LET communications at s0 on the 6-task, 2-core example\n\n";
    Buffer.add_string buf
      "(b) proposed protocol: grouped, re-ordered transfers; tasks become\n\
      \    ready as soon as their own communications complete (R1/R3)\n";
    Buffer.add_string buf
      (Trace.render_gantt app (List.filter early proposed.Sim.trace));
    Buffer.add_string buf ("    " ^ lambda_line app proposed ^ "\n\n");
    Buffer.add_string buf
      "(c) Giotto ordering (one transfer per copy, all writes then all\n\
      \    reads, every task waits for the whole burst)\n";
    Buffer.add_string buf
      (Trace.render_gantt app (List.filter early giotto.Sim.trace));
    Buffer.add_string buf ("    " ^ lambda_line app giotto ^ "\n\n");
    Buffer.add_string buf "event log of the proposed schedule at s0:\n";
    Buffer.add_string buf
      (Fmt.str "%a\n" (Trace.pp_log app) (List.filter early proposed.Sim.trace));
    Buffer.contents buf
