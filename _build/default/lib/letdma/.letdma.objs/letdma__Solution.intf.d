lib/letdma/solution.mli: Allocation App Comm Format Groups Let_sem Mem_layout Properties Rt_model Time
