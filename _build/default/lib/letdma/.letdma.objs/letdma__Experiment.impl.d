lib/letdma/experiment.ml: Array Baselines Comm Dma_sim Float Fmt Formulation Groups Heuristic Let_sem List Milp Option Rt_analysis Rt_model Sim Solution Solve Time
