lib/letdma/baselines.ml: Allocation Comm Dma_sim Giotto Groups Layout Let_sem List Mem_layout Sim Solution
