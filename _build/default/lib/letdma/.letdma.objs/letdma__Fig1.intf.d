lib/letdma/fig1.mli: App Rt_model Time
