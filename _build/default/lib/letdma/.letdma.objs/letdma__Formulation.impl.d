lib/letdma/formulation.ml: App Array Comm Float Fmt Groups Hashtbl Int Label Let_sem List Mem_layout Milp Platform Properties Rt_model Solution Task Time
