lib/letdma/let_task.ml: App Array Comm Fmt Fun Groups Let_sem List Platform Rt_analysis Rt_model Solution Task Time
