lib/letdma/letdma.ml: Baselines Experiment Fig1 Formulation Heuristic Let_task Report Solution Solve
