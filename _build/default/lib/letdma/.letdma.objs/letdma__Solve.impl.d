lib/letdma/solve.ml: Allocation Comm Fmt Formulation Groups Layout Let_sem List Logs Mem_layout Milp Solution Unix
