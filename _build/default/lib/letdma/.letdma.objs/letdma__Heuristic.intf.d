lib/letdma/heuristic.mli: App Groups Let_sem Rt_model Solution Time
