lib/letdma/fig1.ml: App Array Baselines Buffer Dma_sim Fmt Groups Heuristic Label Let_sem List Platform Rt_model Sim Task Time Trace
