lib/letdma/solution.ml: Allocation App Array Comm Fmt Groups Int Layout Let_sem List Mem_layout Platform Properties Result Rt_model Time
