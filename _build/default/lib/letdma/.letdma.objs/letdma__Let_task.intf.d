lib/letdma/let_task.mli: App Format Groups Let_sem Rt_model Solution Time
