lib/letdma/baselines.mli: Allocation App Comm Dma_sim Groups Let_sem Mem_layout Properties Rt_model Sim Solution
