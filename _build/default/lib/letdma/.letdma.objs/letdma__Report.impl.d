lib/letdma/report.ml: App Array Baselines Dma_sim Experiment Float Fmt Formulation List Milp Rt_model Sim Solve String Task Time
