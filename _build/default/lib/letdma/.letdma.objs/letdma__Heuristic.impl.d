lib/letdma/heuristic.ml: Allocation App Array Comm Float Fmt Groups Hashtbl Int Layout Let_sem List Mem_layout Option Platform Rt_model Solution Time
