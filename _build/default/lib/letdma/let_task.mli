(** Schedulability analysis of the LET tasks (Section V.C).

    tau_LET,k runs at the highest priority of core k, self-suspending
    between programming a transfer (o_DP of CPU time) and its completion
    ISR (o_ISR): a generalized multiframe task with segmented
    self-suspension. As the paper suggests, each execution segment is
    modelled as an independent sporadic task when bounding the
    interference on the core's application tasks. *)

open Rt_model
open Let_sem

type segment = {
  slot : int;  (** transfer slot index at s0 *)
  core : int;
  wcet : Time.t;  (** CPU time per occurrence: o_DP + o_ISR *)
  min_interarrival : Time.t;  (** tightest inter-occurrence gap *)
}

(** One sporadic segment per transfer slot whose local memory belongs to
    [core]. *)
val segments : App.t -> Groups.t -> Solution.t -> core:int -> segment list

(** Response time of an application task including the LET segments'
    interference; [None] when the recurrence diverges past the deadline. *)
val response_time_with_let :
  App.t -> Groups.t -> Solution.t -> jitter:Time.t array -> int -> Time.t option

(** Every application task meets its implicit deadline with its
    data-acquisition latency as release jitter, LET overhead included. *)
val schedulable_with_let :
  App.t -> Groups.t -> Solution.t -> jitter:Time.t array -> bool

(** Extra response time attributable to the LET machinery. *)
val let_overhead :
  App.t -> Groups.t -> Solution.t -> jitter:Time.t array -> int -> Time.t option

val pp_segments : Format.formatter -> segment list -> unit
