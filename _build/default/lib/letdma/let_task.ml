open Rt_model
open Let_sem

(* Schedulability analysis of the LET tasks (Section V.C of the paper).

   For each core P_k, the LET task tau_LET,k runs at the highest priority
   and is released at every instant where a transfer touching M_k must be
   programmed. Between programming (o_DP of CPU time) and the completion
   ISR (o_ISR) the task self-suspends while the DMA copies — so, as the
   paper notes, tau_LET,k behaves like a generalized multiframe task with
   segmented self-suspension, and each execution segment can be modelled
   as an independent sporadic task when bounding the interference on the
   lower-priority application tasks of the same core. *)

type segment = {
  slot : int; (* transfer slot index at s0 *)
  core : int;
  wcet : Time.t; (* CPU time per occurrence: o_DP + o_ISR *)
  min_interarrival : Time.t; (* tightest observed inter-occurrence gap *)
}

(* Occurrence instants of each transfer slot within one hyperperiod: a
   slot occurs at t whenever at least one of its communications is
   necessary at t. *)
let slot_occurrences groups (solution : Solution.t) =
  let plan0 = Solution.s0_plan (Groups.app groups) solution in
  let slots = Array.of_list plan0 in
  let occurrences = Array.make (Array.length slots) [] in
  List.iter
    (fun t ->
      let present = Groups.comms_at groups t in
      Array.iteri
        (fun g comms ->
          if List.exists (fun c -> Comm.Set.mem c present) comms then
            occurrences.(g) <- t :: occurrences.(g))
        slots)
    (Groups.instants groups);
  (slots, Array.map List.rev occurrences)

let min_gap_cyclic h = function
  | [] | [ _ ] -> h
  | first :: _ as ts ->
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (Time.min acc Time.(b - a)) rest
      | [ last ] -> Time.min acc Time.(h - last + first)
      | [] -> acc
    in
    go max_int ts

(* One sporadic segment per transfer slot handled by [core]'s LET task. *)
let segments app groups solution ~core =
  let platform = App.platform app in
  let h = App.hyperperiod app in
  let slots, occurrences = slot_occurrences groups solution in
  Array.to_list
    (Array.mapi
       (fun g comms ->
         match comms with
         | c :: _ when Comm.local_core app c = core && occurrences.(g) <> [] ->
           Some
             {
               slot = g;
               core;
               wcet = Platform.lambda_o platform;
               min_interarrival = min_gap_cyclic h occurrences.(g);
             }
         | _ -> None)
       slots)
  |> List.filter_map Fun.id

let ceil_div a b = (a + b - 1) / b

(* Response time of application task [i], adding the interference of its
   core's LET-task segments (each treated as an independent sporadic task
   at the highest priority) on top of the usual higher-priority load. *)
let response_time_with_let app groups solution ~jitter i =
  let t = App.task app i in
  let hp = Rt_analysis.Rta.hp_tasks app t in
  let segs = segments app groups solution ~core:t.Task.core in
  let deadline = Task.deadline t in
  let budget = Time.(deadline - jitter.(i)) in
  let rec fixpoint r =
    let demand =
      List.fold_left
        (fun acc (j : Task.t) ->
          Time.(
            acc
            + ceil_div Time.(r + jitter.(j.Task.id)) j.Task.period * j.Task.wcet))
        t.Task.wcet hp
    in
    let demand =
      List.fold_left
        (fun acc s -> Time.(acc + (ceil_div r s.min_interarrival * s.wcet)))
        demand segs
    in
    if Time.compare demand r <= 0 then Some r
    else if Time.compare demand budget > 0 then None
    else fixpoint demand
  in
  if Time.compare t.Task.wcet budget > 0 then None else fixpoint t.Task.wcet

(* Whole-system schedulability including the LET-task overhead: every
   application task still meets its implicit deadline with its
   data-acquisition latency as release jitter. *)
let schedulable_with_let app groups solution ~jitter =
  List.for_all
    (fun (t : Task.t) ->
      match response_time_with_let app groups solution ~jitter t.Task.id with
      | Some r -> Time.compare Time.(r + jitter.(t.Task.id)) (Task.deadline t) <= 0
      | None -> false)
    (App.tasks app)

(* The extra response time each task pays for the LET machinery (None if
   either analysis diverges). *)
let let_overhead app groups solution ~jitter i =
  match
    ( Rt_analysis.Rta.response_time app ~jitter i,
      response_time_with_let app groups solution ~jitter i )
  with
  | Some base, Some full -> Some Time.(full - base)
  | _ -> None

let pp_segments ppf segs =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf s ->
          pf ppf "  slot #%d on P%d: C=%a, minIA=%a" s.slot (s.core + 1) Time.pp
            s.wcet Time.pp s.min_interarrival))
    segs
