open Let_sem
open Mem_layout
open Dma_sim

(* The four communication approaches compared in the paper's evaluation
   (Section VII), expressed as simulator modes. *)

type approach = Proposed | Giotto_cpu | Giotto_dma_a | Giotto_dma_b

let approach_name = function
  | Proposed -> "Proposed"
  | Giotto_cpu -> "Giotto-CPU"
  | Giotto_dma_a -> "Giotto-DMA-A"
  | Giotto_dma_b -> "Giotto-DMA-B"

let all_approaches = [ Proposed; Giotto_cpu; Giotto_dma_a; Giotto_dma_b ]

(* (i) the paper's protocol: optimized transfers, per-task readiness. *)
let proposed_mode app groups solution =
  Sim.Dma_protocol (Solution.schedule app groups solution)

(* (ii) Giotto with CPU copies. *)
let giotto_cpu_mode ?(model = Sim.Parallel_phases) () = Sim.Cpu_copy model

(* (iii) Giotto with a DMA, one transfer per communication (no memory
   layout knowledge), barrier readiness. *)
let giotto_dma_a_mode app groups =
  Sim.Dma_barrier
    (fun time -> Giotto.singleton_transfers app (Groups.comms_at groups time))

(* (iv) Giotto order and barrier, but transfers grouped as much as the
   optimized memory layout allows. *)
let giotto_dma_b_plan app allocation comms =
  let ordered = Giotto.order app comms in
  let groups = ref [] and current = ref [] in
  let flush () =
    if !current <> [] then groups := List.rev !current :: !groups;
    current := []
  in
  List.iter
    (fun c ->
      match !current with
      | [] -> current := [ c ]
      | prev :: _ ->
        let same_class = Comm.cls app c = Comm.cls app prev in
        let ok =
          same_class
          &&
          let src = Allocation.layout allocation (Comm.src_memory app c) in
          let dst = Allocation.layout allocation (Comm.dst_memory app c) in
          Layout.transferable ~src ~dst
            (List.map (fun x -> x.Comm.label) (c :: !current))
        in
        if ok then current := c :: !current else begin
          flush ();
          current := [ c ]
        end)
    ordered;
  flush ();
  List.rev !groups

let giotto_dma_b_mode app groups allocation =
  Sim.Dma_barrier
    (fun time -> giotto_dma_b_plan app allocation (Groups.comms_at groups time))

(* Run one approach; [solution] is required for Proposed and Giotto-DMA-B. *)
let run ?record_trace ?cpu_model app groups approach ~solution =
  let mode =
    match approach with
    | Proposed ->
      (match solution with
       | Some s -> proposed_mode app groups s
       | None -> invalid_arg "Baselines.run: Proposed requires a solution")
    | Giotto_cpu -> giotto_cpu_mode ?model:cpu_model ()
    | Giotto_dma_a -> giotto_dma_a_mode app groups
    | Giotto_dma_b ->
      (match solution with
       | Some s -> giotto_dma_b_mode app groups (Solution.allocation s)
       | None -> invalid_arg "Baselines.run: Giotto-DMA-B requires a solution")
  in
  Sim.run ?record_trace app groups mode
