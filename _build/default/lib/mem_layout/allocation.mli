(** A complete memory allocation: one {!Layout} per memory.

    Used to validate and execute DMA transfer plans: a plan is feasible
    under an allocation iff every transfer's labels are contiguous and
    identically ordered in both of its memories. *)

open Rt_model
open Let_sem

type t

(** [make app orders] builds layouts from explicit per-memory orders. *)
val make : App.t -> (Platform.memory * int list) list -> t

(** Label-id-ordered layouts for every populated memory (the naive
    allocation used as a starting point and in tests). *)
val identity : App.t -> t

(** Raises [Invalid_argument] if the memory has no layout. *)
val layout : t -> Platform.memory -> Layout.t

val layout_opt : t -> Platform.memory -> Layout.t option
val memories : t -> Platform.memory list

(** The label ids moved by one transfer. *)
val transfer_labels : Comm.t list -> int list

(** First failing transfer, or [Ok] when the whole plan is executable. *)
val plan_feasible : App.t -> t -> Properties.plan -> (unit, string) result

(** [(a_{g,s}, a_{g,d})]: source and destination start addresses of a
    transfer. Raises on empty transfers. *)
val transfer_addresses : App.t -> t -> Comm.t list -> int * int

val pp : App.t -> Format.formatter -> t -> unit
