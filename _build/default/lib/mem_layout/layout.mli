(** Memory layouts: the bottom-to-top placement of labels in one memory.

    Labels are packed back-to-back (no padding), so position-contiguity is
    byte-contiguity — precisely the requirement for grouping several
    labels into one DMA transfer (Section V.A). *)

open Rt_model

type t

(** The label ids the paper's mapping rules place in the given memory:
    every inter-core label for [Global]; the local copies touched by core
    [k]'s tasks for [Local k]. *)
val expected_labels : App.t -> Platform.memory -> int list

(** [of_order app memory order] builds the layout placing [order]'s labels
    bottom to top. Raises [Invalid_argument] unless [order] contains
    exactly {!expected_labels}. *)
val of_order : App.t -> Platform.memory -> int list -> t

val memory : t -> Platform.memory
val order : t -> int list
val num_labels : t -> int
val total_bytes : t -> int
val mem_label : t -> int -> bool

(** Position in the bottom-to-top order; raises on foreign labels. *)
val position : t -> int -> int

(** Byte offset of the label; raises on foreign labels. *)
val address : t -> int -> int

(** The paper's adjacency AD: [b] sits immediately below [a]. *)
val adjacent_below : t -> a:int -> b:int -> bool

(** The set occupies consecutive positions. *)
val contiguous : t -> int list -> bool

val sort_by_position : t -> int list -> int list

(** The set is contiguous in both memories with the same order — the
    condition for moving it in a single DMA transfer. *)
val transferable : src:t -> dst:t -> int list -> bool

val pp : App.t -> Format.formatter -> t -> unit
