open Rt_model
open Let_sem

(* A complete memory allocation: one layout per memory that holds labels. *)

module Mmap = Map.Make (struct
  type t = Platform.memory

  let compare = Platform.compare_memory
end)

type t = Layout.t Mmap.t

let make app orders =
  List.fold_left
    (fun acc (memory, order) -> Mmap.add memory (Layout.of_order app memory order) acc)
    Mmap.empty orders

(* Every memory that should hold labels, laid out in label-id order: the
   naive baseline allocation. *)
let identity app =
  let orders =
    List.filter_map
      (fun m ->
        match Layout.expected_labels app m with
        | [] -> None
        | labels -> Some (m, List.sort Int.compare labels))
      (Platform.memories (App.platform app))
  in
  make app orders

let layout t memory =
  match Mmap.find_opt memory t with
  | Some l -> l
  | None ->
    invalid_arg
      (Fmt.str "Allocation.layout: no layout for %a" Platform.pp_memory memory)

let layout_opt t memory = Mmap.find_opt memory t

let memories t = Mmap.bindings t |> List.map fst

let transfer_labels g = List.map (fun c -> c.Comm.label) g

(* Check that every transfer of a plan is executable under this
   allocation: its labels must be contiguous, in the same order, in both
   the source and the destination memory. *)
let plan_feasible app t (plan : Properties.plan) =
  let rec go i = function
    | [] -> Ok ()
    | [] :: rest -> go (i + 1) rest
    | (c :: _ as g) :: rest ->
      let src = layout t (Comm.src_memory app c) in
      let dst = layout t (Comm.dst_memory app c) in
      let labels = transfer_labels g in
      if Layout.transferable ~src ~dst labels then go (i + 1) rest
      else
        Error
          (Fmt.str "transfer %d: labels [%a] are not contiguous/same-order in %a and %a"
             i
             Fmt.(list ~sep:(any ";") int)
             labels Platform.pp_memory (Layout.memory src) Platform.pp_memory
             (Layout.memory dst))
  in
  go 0 plan

(* Source and destination start addresses of a transfer (the a_{g,s} and
   a_{g,d} of the paper's transfer tuples). *)
let transfer_addresses app t g =
  match g with
  | [] -> invalid_arg "Allocation.transfer_addresses: empty transfer"
  | c :: _ ->
    let src = layout t (Comm.src_memory app c) in
    let dst = layout t (Comm.dst_memory app c) in
    let labels = Layout.sort_by_position src (transfer_labels g) in
    let bottom = List.hd labels in
    (Layout.address src bottom, Layout.address dst bottom)

let pp app ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf (_, l) -> Layout.pp app ppf l))
    (Mmap.bindings t)
