(** Memory layouts and allocations for DMA-grouped LET communications:
    label placement, adjacency (the paper's AD variables), contiguity and
    same-order checks, and transfer feasibility under an allocation. *)

module Layout = Layout
module Allocation = Allocation
