lib/mem_layout/allocation.mli: App Comm Format Layout Let_sem Platform Properties Rt_model
