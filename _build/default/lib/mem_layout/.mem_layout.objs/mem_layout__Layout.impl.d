lib/mem_layout/layout.ml: App Array Fmt Hashtbl Int Label List Platform Rt_model
