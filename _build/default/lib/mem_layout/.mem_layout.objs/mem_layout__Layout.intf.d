lib/mem_layout/layout.mli: App Format Platform Rt_model
