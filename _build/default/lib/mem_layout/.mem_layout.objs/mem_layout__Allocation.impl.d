lib/mem_layout/allocation.ml: App Comm Fmt Int Layout Let_sem List Map Platform Properties Rt_model
