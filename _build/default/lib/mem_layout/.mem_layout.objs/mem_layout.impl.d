lib/mem_layout/mem_layout.ml: Allocation Layout
