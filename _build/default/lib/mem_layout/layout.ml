open Rt_model

(* A memory layout: the bottom-to-top order of the labels mapped in one
   memory. Labels are packed back-to-back, so position-contiguity equals
   byte-contiguity, which is what a DMA transfer requires. *)

type t = {
  memory : Platform.memory;
  order : int array; (* label ids, bottom to top *)
  position : (int, int) Hashtbl.t; (* label id -> index in [order] *)
  address : (int, int) Hashtbl.t; (* label id -> byte offset *)
  total_bytes : int;
}

(* The label ids that the paper's mapping rules place in [memory]: global
   memory holds every inter-core label; the scratchpad of core k holds the
   copies of the inter-core labels written or read by tasks of core k. *)
let expected_labels app (memory : Platform.memory) =
  let inter = App.inter_core_labels app in
  match memory with
  | Platform.Global -> List.map (fun (l : Label.t) -> l.Label.id) inter
  | Platform.Local k ->
    List.filter_map
      (fun (l : Label.t) ->
        let involved =
          App.core_of app l.Label.writer = k
          || List.exists (fun r -> App.core_of app r = k)
               (App.inter_core_readers app l)
        in
        if involved then Some l.Label.id else None)
      inter

let of_order app memory order =
  let expected = List.sort_uniq Int.compare (expected_labels app memory) in
  let given = List.sort_uniq Int.compare order in
  if expected <> given then
    invalid_arg
      (Fmt.str "Layout.of_order: %a must contain exactly labels [%a], got [%a]"
         Platform.pp_memory memory
         Fmt.(list ~sep:(any ";") int)
         expected
         Fmt.(list ~sep:(any ";") int)
         given);
  let order = Array.of_list order in
  let position = Hashtbl.create 16 and address = Hashtbl.create 16 in
  let total =
    Array.to_list order
    |> List.fold_left
         (fun (offset, idx) l ->
           Hashtbl.replace position l idx;
           Hashtbl.replace address l offset;
           (offset + (App.label app l).Label.size, idx + 1))
         (0, 0)
    |> fst
  in
  { memory; order; position; address; total_bytes = total }

let memory t = t.memory
let order t = Array.to_list t.order
let num_labels t = Array.length t.order
let total_bytes t = t.total_bytes

let mem_label t l = Hashtbl.mem t.position l

let position t l =
  match Hashtbl.find_opt t.position l with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "Layout.position: label %d not in this memory" l)

let address t l =
  match Hashtbl.find_opt t.address l with
  | Some a -> a
  | None -> invalid_arg (Fmt.str "Layout.address: label %d not in this memory" l)

(* AD_{k,a,b} of the paper: label [b] sits immediately below label [a]. *)
let adjacent_below t ~a ~b =
  mem_label t a && mem_label t b && position t b + 1 = position t a

(* A label set occupies consecutive positions (hence consecutive bytes). *)
let contiguous t labels =
  match labels with
  | [] -> true
  | _ ->
    let ps = List.map (position t) labels in
    let lo = List.fold_left min (List.hd ps) ps in
    let hi = List.fold_left max (List.hd ps) ps in
    hi - lo + 1 = List.length (List.sort_uniq Int.compare ps)

(* Labels of the set sorted bottom-to-top in this memory. *)
let sort_by_position t labels =
  List.sort (fun a b -> Int.compare (position t a) (position t b)) labels

(* A DMA transfer requires the label set to be contiguous in BOTH the
   source and destination memory, with the same bottom-to-top order. *)
let transferable ~src ~dst labels =
  contiguous src labels && contiguous dst labels
  && sort_by_position src labels = sort_by_position dst labels

let pp app ppf t =
  Fmt.pf ppf "@[<v>%a (%d labels, %d bytes):@,%a@]" Platform.pp_memory t.memory
    (num_labels t) t.total_bytes
    Fmt.(
      list ~sep:cut (fun ppf l ->
          let lbl = App.label app l in
          pf ppf "  0x%04x %s (%dB)" (address t l) lbl.Label.name
            lbl.Label.size))
    (order t)
