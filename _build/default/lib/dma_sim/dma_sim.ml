(** Discrete-event simulator of the DMA-based LET communication protocol
    (Section V.B) and of the Giotto baselines, with timeline traces and
    VCD waveform export. *)

module Sim = Sim
module Trace = Trace
module Vcd = Vcd
