lib/dma_sim/vcd.mli: App Rt_model Trace
