lib/dma_sim/sim.ml: App Array Comm Float Fmt Giotto Groups Hashtbl Let_sem List Platform Properties Rt_model Task Time Trace
