lib/dma_sim/trace.ml: App Array Buffer Bytes Comm Fmt Label Let_sem List Platform Rt_model Task Time
