lib/dma_sim/vcd.ml: App Buffer Bytes Char Fmt List Platform Printf Rt_model Task Time Trace
