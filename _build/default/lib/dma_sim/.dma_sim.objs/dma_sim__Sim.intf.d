lib/dma_sim/sim.mli: App Format Groups Let_sem Properties Rt_model Time Trace
