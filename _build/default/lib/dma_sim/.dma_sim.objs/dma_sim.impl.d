lib/dma_sim/dma_sim.ml: Sim Trace Vcd
