lib/dma_sim/trace.mli: App Comm Format Let_sem Rt_model Time
