(** Timeline events recorded by the simulator, with an event-log printer
    and a scaled ASCII Gantt renderer (used to reproduce the shape of the
    paper's Fig. 1). *)

open Rt_model
open Let_sem

type event =
  | Dma_program of { core : int; index : int; start : Time.t; finish : Time.t }
  | Dma_copy of {
      index : int;
      labels : int list;
      bytes : int;
      start : Time.t;
      finish : Time.t;
    }
  | Dma_isr of { core : int; index : int; start : Time.t; finish : Time.t }
  | Cpu_copy of { core : int; comm : Comm.t; start : Time.t; finish : Time.t }
  | Task_ready of { task : int; time : Time.t }

val start_of : event -> Time.t
val sort_events : event list -> event list
val pp_event : App.t -> Format.formatter -> event -> unit
val pp_log : App.t -> Format.formatter -> event list -> unit

(** One lane for the DMA plus one per core; [width] columns span the
    traced interval. *)
val render_gantt : ?width:int -> App.t -> event list -> string
