open Rt_model

(* Value-change-dump (IEEE 1364 VCD) export of simulator traces, viewable
   in GTKWave & co. Signals:

   - dma_prog / dma_copy / dma_isr : 1-bit wires, high while the DMA
     engine is being programmed / copying / raising the completion ISR;
   - dma_transfer [7:0]            : index of the transfer in flight;
   - coreK_copy                    : high while core K's LET task performs
     a CPU copy (Giotto-CPU mode);
   - ready_<task>                  : event fired when the task becomes
     ready (rule R3 / end of the Giotto barrier). *)

type change = { time : Time.t; id : string; value : string }

let header =
  "$version letdma dma_sim trace $end\n$timescale 1ns $end\n"

(* Stable printable VCD identifiers: '!' onwards. *)
let ident k = Printf.sprintf "%c" (Char.chr (33 + k))

let to_vcd app (events : Trace.event list) =
  let n_cores = (App.platform app).Platform.n_cores in
  let n_tasks = App.num_tasks app in
  let id_prog = ident 0 in
  let id_copy = ident 1 in
  let id_isr = ident 2 in
  let id_transfer = ident 3 in
  let id_core k = ident (4 + k) in
  let id_ready i = ident (4 + n_cores + i) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_string buf "$scope module letdma $end\n";
  Buffer.add_string buf (Fmt.str "$var wire 1 %s dma_prog $end\n" id_prog);
  Buffer.add_string buf (Fmt.str "$var wire 1 %s dma_copy $end\n" id_copy);
  Buffer.add_string buf (Fmt.str "$var wire 1 %s dma_isr $end\n" id_isr);
  Buffer.add_string buf
    (Fmt.str "$var wire 8 %s dma_transfer $end\n" id_transfer);
  for k = 0 to n_cores - 1 do
    Buffer.add_string buf
      (Fmt.str "$var wire 1 %s core%d_copy $end\n" (id_core k) (k + 1))
  done;
  for i = 0 to n_tasks - 1 do
    Buffer.add_string buf
      (Fmt.str "$var event 1 %s ready_%s $end\n" (id_ready i)
         (App.task app i).Task.name)
  done;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* initial values *)
  Buffer.add_string buf "$dumpvars\n";
  Buffer.add_string buf (Fmt.str "0%s\n0%s\n0%s\nb0 %s\n" id_prog id_copy id_isr id_transfer);
  for k = 0 to n_cores - 1 do
    Buffer.add_string buf (Fmt.str "0%s\n" (id_core k))
  done;
  Buffer.add_string buf "$end\n";
  (* collect changes *)
  let bits8 v =
    let b = Bytes.make 8 '0' in
    for i = 0 to 7 do
      if v land (1 lsl (7 - i)) <> 0 then Bytes.set b i '1'
    done;
    Bytes.to_string b
  in
  let changes = ref [] in
  let add time id value = changes := { time; id; value } :: !changes in
  List.iter
    (fun e ->
      match e with
      | Trace.Dma_program { index; start; finish; _ } ->
        add start id_prog "1";
        add start id_transfer (Fmt.str "b%s " (bits8 (index land 0xff)));
        add finish id_prog "0"
      | Trace.Dma_copy { start; finish; _ } ->
        add start id_copy "1";
        add finish id_copy "0"
      | Trace.Dma_isr { start; finish; _ } ->
        add start id_isr "1";
        add finish id_isr "0"
      | Trace.Cpu_copy { core; start; finish; _ } ->
        add start (id_core core) "1";
        add finish (id_core core) "0"
      | Trace.Task_ready { task; time } -> add time (id_ready task) "1")
    events;
  let changes =
    List.stable_sort (fun a b -> Time.compare a.time b.time) (List.rev !changes)
  in
  let current = ref (-1) in
  List.iter
    (fun c ->
      if Time.to_ns c.time <> !current then begin
        current := Time.to_ns c.time;
        Buffer.add_string buf (Fmt.str "#%d\n" !current)
      end;
      Buffer.add_string buf (c.value ^ c.id ^ "\n"))
    changes;
  Buffer.contents buf
