(** VCD (IEEE 1364 value change dump) export of simulator traces, for
    waveform viewers such as GTKWave.

    Exposes the DMA engine's programming/copy/ISR activity, the index of
    the transfer in flight, per-core CPU-copy activity, and one event
    signal per task marking the instants it becomes ready. *)

open Rt_model

val to_vcd : App.t -> Trace.event list -> string
