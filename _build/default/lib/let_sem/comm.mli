(** LET communications (Section III.B): a write [W(tau_p, l)] moves the
    producer's local copy of label [l] to global memory; a read
    [R(l, tau_c)] moves the global instance into the consumer's local
    copy. *)

open Rt_model

type kind = Write | Read

val equal_kind : kind -> kind -> bool

type t = {
  kind : kind;
  task : int;  (** producer for [Write], consumer for [Read] *)
  label : int;
}

val write : task:int -> label:int -> t
val read : task:int -> label:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool

(** The core whose scratchpad this communication touches. *)
val local_core : App.t -> t -> int

type direction = To_global | From_global

val direction : t -> direction
val src_memory : App.t -> t -> Platform.memory
val dst_memory : App.t -> t -> Platform.memory

(** [(local core, direction)] — communications can share a DMA transfer
    only within one class (a transfer has a single source and a single
    destination memory). *)
val cls : App.t -> t -> int * direction

(** Bytes moved. *)
val size : App.t -> t -> int

(** Pretty-print with task/label names, e.g. [W(SFM,sfm_out)]. *)
val pp : App.t -> Format.formatter -> t -> unit

(** Name-free form, e.g. [W(t3,l7)]. *)
val pp_plain : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
