(** Checkers for the LET correctness properties of Section IV.

    A {e plan} is the ordered list of DMA transfers issued at one
    communication instant; each transfer is the list of communications it
    carries. These checkers validate MILP solutions, heuristic schedules,
    the Giotto baselines, and serve as oracles in property-based tests. *)

open Rt_model

type plan = Comm.t list list

(** The plan partitions [expected]: every communication exactly once. *)
val well_formed : expected:Comm.Set.t -> plan -> (unit, string) result

(** Each transfer's communications share one (core, direction) class — a
    DMA transfer has a single source and destination memory. *)
val single_class : App.t -> plan -> (unit, string) result

(** Property 1: every LET write of a task is in a strictly earlier
    transfer than every LET read of the same task. *)
val property1 : plan -> (unit, string) result

(** Property 2: for every label, its write is in a strictly earlier
    transfer than each of its reads. *)
val property2 : plan -> (unit, string) result

(** Total bytes moved by one transfer. *)
val transfer_bytes : App.t -> Comm.t list -> int

(** Worst-case duration of the plan under the DMA protocol: per transfer,
    lambda_O = o_DP + o_ISR plus the linear copy cost. *)
val duration : App.t -> plan -> Time.t

(** Property 3: the plan completes within [gap] (distance to the next
    communication instant). *)
val property3 : App.t -> gap:Time.t -> plan -> (unit, string) result

(** All of the above in sequence; first failure wins. *)
val check_all :
  App.t -> expected:Comm.Set.t -> gap:Time.t -> plan -> (unit, string) result
