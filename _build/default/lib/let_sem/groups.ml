open Rt_model

(* Algorithm 1 of the paper: the sets of necessary LET communications
   G^W(t, tau_i) / G^R(t, tau_i), the per-instant unions C(t), and the
   distinct communication patterns over one hyperperiod (used to state
   Constraints 6 and 10 once per pattern instead of once per instant). *)

type edge = {
  producer : int;
  consumer : int;
  labels : Label.t list;
  pair_period : Time.t; (* lcm of the two periods *)
  w_set : Time.t list; (* necessary write instants within [0, pair_period) *)
  r_set : Time.t list; (* necessary read instants within [0, pair_period) *)
}

type pattern = {
  comms : Comm.Set.t;
  occurrences : Time.t list; (* within [0, H), sorted *)
  min_gap : Time.t; (* tightest distance to the next communication instant *)
}

type t = {
  app : App.t;
  edges : edge list;
  instants : Time.t list; (* instants with communications within [0, H) *)
  patterns : pattern list;
}

let app t = t.app
let edges t = t.edges
let instants t = t.instants
let patterns t = t.patterns

let make_edge app (producer, consumer) =
  let labels = App.shared_between app ~producer ~consumer in
  let tw = (App.task app producer).Task.period in
  let tc = (App.task app consumer).Task.period in
  {
    producer;
    consumer;
    labels;
    pair_period = Time.lcm tw tc;
    w_set = Eta.write_instants ~tw ~tc;
    r_set = Eta.read_instants ~tw ~tc;
  }

(* C(t): every necessary communication at absolute instant [t]. Writes of
   one label towards several consumers merge into a single W communication
   (the data is copied to global memory once). *)
let comms_at_edges edges t =
  List.fold_left
    (fun acc e ->
      let phase = t mod e.pair_period in
      let acc =
        if List.mem phase e.w_set then
          List.fold_left
            (fun acc (l : Label.t) ->
              Comm.Set.add (Comm.write ~task:e.producer ~label:l.Label.id) acc)
            acc e.labels
        else acc
      in
      if List.mem phase e.r_set then
        List.fold_left
          (fun acc (l : Label.t) ->
            Comm.Set.add (Comm.read ~task:e.consumer ~label:l.Label.id) acc)
          acc e.labels
      else acc)
    Comm.Set.empty edges

let comms_at t time = comms_at_edges t.edges time

(* G^W(t, tau_i): the LET writes task [i] must issue at [t]. *)
let g_write t ~time ~task =
  Comm.Set.filter
    (fun c -> Comm.equal_kind c.Comm.kind Comm.Write && c.Comm.task = task)
    (comms_at t time)

(* G^R(t, tau_i): the LET reads task [i] requires at [t]. *)
let g_read t ~time ~task =
  Comm.Set.filter
    (fun c -> Comm.equal_kind c.Comm.kind Comm.Read && c.Comm.task = task)
    (comms_at t time)

let s0 t = comms_at t Time.zero

let compute app =
  let edges = List.map (make_edge app) (App.communication_edges app) in
  let h = App.hyperperiod app in
  (* all candidate instants within [0, H) *)
  let module Tset = Set.Make (Int) in
  let candidates =
    List.fold_left
      (fun acc e ->
        let reps = if e.pair_period = 0 then 0 else h / e.pair_period in
        let add_set acc set =
          List.fold_left
            (fun acc s ->
              let rec go acc k =
                if k >= reps then acc
                else go (Tset.add Time.((k * e.pair_period) + s) acc) (k + 1)
              in
              go acc 0)
            acc set
        in
        add_set (add_set acc e.w_set) e.r_set)
      Tset.empty edges
  in
  let instants =
    Tset.elements candidates
    |> List.filter (fun time -> not (Comm.Set.is_empty (comms_at_edges edges time)))
  in
  (* group instants into patterns and compute the tightest gap to the next
     communication instant (cyclically: the schedule repeats with H) *)
  let next_gap =
    match instants with
    | [] -> fun _ -> Time.zero
    | first :: _ ->
      let arr = Array.of_list instants in
      let n = Array.length arr in
      fun i ->
        if i = n - 1 then Time.(h - arr.(i) + first) else Time.(arr.(i + 1) - arr.(i))
  in
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i time ->
      let comms = comms_at_edges edges time in
      let key =
        Fmt.str "%a" Fmt.(list ~sep:(any ";") Comm.pp_plain) (Comm.Set.elements comms)
      in
      let occurrences, gap =
        match Hashtbl.find_opt tbl key with
        | None -> ([], Time.of_s 1_000_000)
        | Some p -> (p.occurrences, p.min_gap)
      in
      Hashtbl.replace tbl key
        {
          comms;
          occurrences = time :: occurrences;
          min_gap = Time.min gap (next_gap i);
        })
    instants;
  let patterns =
    Hashtbl.fold
      (fun _ p acc -> { p with occurrences = List.rev p.occurrences } :: acc)
      tbl []
    |> List.sort (fun a b ->
           match (a.occurrences, b.occurrences) with
           | t1 :: _, t2 :: _ -> Time.compare t1 t2
           | [], _ | _, [] -> 0)
  in
  { app; edges; instants; patterns }

(* The paper's invariant below Algorithm 1: C(t) is a subset of C(s0) for
   every t (synchronous release). Exposed for tests and sanity checks. *)
let check_s0_superset t =
  let c0 = s0 t in
  List.for_all (fun p -> Comm.Set.subset p.comms c0) t.patterns

let pp ppf t =
  let c0 = s0 t in
  Fmt.pf ppf "@[<v>%d communication edges, %d instants/hyperperiod, %d patterns@,C(s0) = {%a}@]"
    (List.length t.edges) (List.length t.instants) (List.length t.patterns)
    Fmt.(list ~sep:(any ", ") (Comm.pp t.app))
    (Comm.Set.elements c0)
