lib/let_sem/giotto.ml: App Comm List Platform Rt_model
