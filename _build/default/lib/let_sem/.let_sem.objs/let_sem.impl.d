lib/let_sem/let_sem.ml: Comm Eta Giotto Groups Properties
