lib/let_sem/groups.ml: App Array Comm Eta Fmt Hashtbl Int Label List Rt_model Set Task Time
