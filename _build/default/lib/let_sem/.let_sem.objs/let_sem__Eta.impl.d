lib/let_sem/eta.ml: List Rt_model Time
