lib/let_sem/giotto.mli: App Comm Rt_model
