lib/let_sem/properties.mli: App Comm Rt_model Time
