lib/let_sem/groups.mli: App Comm Format Label Rt_model Time
