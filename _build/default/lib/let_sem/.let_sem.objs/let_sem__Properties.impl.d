lib/let_sem/properties.ml: App Comm Fmt Int List Platform Result Rt_model Time
