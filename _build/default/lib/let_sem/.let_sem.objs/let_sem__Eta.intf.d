lib/let_sem/eta.mli: Rt_model Time
