lib/let_sem/comm.ml: App Fmt Int Label Map Platform Rt_model Set Task
