lib/let_sem/comm.mli: App Format Map Platform Rt_model Set
