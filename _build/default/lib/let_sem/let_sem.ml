(** LET semantics (Sections IV and V.A of the paper): communications,
    necessary-communication instants, Algorithm 1 grouping, the Giotto
    canonical order, and checkers for Properties 1-3. *)

module Comm = Comm
module Eta = Eta
module Groups = Groups
module Giotto = Giotto
module Properties = Properties
