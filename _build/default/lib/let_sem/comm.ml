open Rt_model

type kind = Write | Read

let equal_kind a b =
  match (a, b) with
  | Write, Write | Read, Read -> true
  | Write, Read | Read, Write -> false

type t = {
  kind : kind;
  task : int; (* producer for Write, consumer for Read *)
  label : int;
}

let write ~task ~label = { kind = Write; task; label }
let read ~task ~label = { kind = Read; task; label }

let compare a b =
  match (a.kind, b.kind) with
  | Write, Read -> -1
  | Read, Write -> 1
  | Write, Write | Read, Read ->
    let c = Int.compare a.task b.task in
    if c <> 0 then c else Int.compare a.label b.label

let equal a b = compare a b = 0

(* The core whose local memory the communication touches. *)
let local_core (app : App.t) c = App.core_of app c.task

type direction = To_global | From_global

let direction c = match c.kind with Write -> To_global | Read -> From_global

let src_memory app c =
  match c.kind with
  | Write -> Platform.Local (local_core app c)
  | Read -> Platform.Global

let dst_memory app c =
  match c.kind with
  | Write -> Platform.Global
  | Read -> Platform.Local (local_core app c)

(* The (local memory, direction) class of a communication: a DMA transfer
   can only group communications of the same class. *)
let cls app c = (local_core app c, direction c)

let size app c = (App.label app c.label).Label.size

let pp app ppf c =
  let tname = (App.task app c.task).Task.name in
  let lname = (App.label app c.label).Label.name in
  match c.kind with
  | Write -> Fmt.pf ppf "W(%s,%s)" tname lname
  | Read -> Fmt.pf ppf "R(%s,%s)" lname tname

let pp_plain ppf c =
  match c.kind with
  | Write -> Fmt.pf ppf "W(t%d,l%d)" c.task c.label
  | Read -> Fmt.pf ppf "R(l%d,t%d)" c.label c.task

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
