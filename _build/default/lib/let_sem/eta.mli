(** Necessary LET communication instants, Eqs. (1)-(2) of the paper
    (following Biondi & Di Natale, RTAS 2018).

    When a producer is oversampled w.r.t. a consumer, writes whose data
    would be overwritten before being read can be skipped; when a consumer
    is oversampled, reads of unchanged data can be skipped. Both patterns
    repeat with period [lcm tw tc]. *)

open Rt_model

(** [eta_w ~tw ~tc v] is the index of the writer job that performs the
    necessary write serving the [v]-th consumer read. *)
val eta_w : tw:Time.t -> tc:Time.t -> int -> int

(** [eta_r ~tw ~tc v] is the index of the consumer job that performs the
    necessary read of the [v]-th write. *)
val eta_r : tw:Time.t -> tc:Time.t -> int -> int

(** Sorted distinct instants in [0, lcm tw tc) at which the writer must
    perform a LET write towards this consumer. *)
val write_instants : tw:Time.t -> tc:Time.t -> Time.t list

(** Sorted distinct instants in [0, lcm tw tc) at which the consumer must
    perform a LET read from this producer. *)
val read_instants : tw:Time.t -> tc:Time.t -> Time.t list

(** Membership tests for absolute times (folded modulo [lcm tw tc]). *)
val write_needed_at : tw:Time.t -> tc:Time.t -> Time.t -> bool

val read_needed_at : tw:Time.t -> tc:Time.t -> Time.t -> bool
