(** Necessary LET communication sets (Algorithm 1 of the paper).

    [compute] derives, for an application, every instant within one
    hyperperiod at which LET communications are necessary, the set C(t) of
    communications at each such instant, and the distinct communication
    {e patterns}. Because all tasks are released synchronously, C(t) is
    always a subset of C(s0); the optimization problem is built at s0 and
    its constraints are replicated once per distinct pattern. *)

open Rt_model

type edge = private {
  producer : int;
  consumer : int;
  labels : Label.t list;
  pair_period : Time.t;
  w_set : Time.t list;
  r_set : Time.t list;
}

type pattern = private {
  comms : Comm.Set.t;
  occurrences : Time.t list;  (** within [0, H), sorted *)
  min_gap : Time.t;
      (** tightest distance from an occurrence to the next communication
          instant, cyclically — the bound Property 3 must meet *)
}

type t

val compute : App.t -> t
val app : t -> App.t
val edges : t -> edge list

(** All instants with communications within [0, H), sorted. *)
val instants : t -> Time.t list

(** Distinct communication patterns, ordered by first occurrence; the
    first pattern is C(s0). *)
val patterns : t -> pattern list

(** C(t) for an arbitrary absolute instant (folds each pair modulo its
    repetition period). *)
val comms_at : t -> Time.t -> Comm.Set.t

(** G^W(t, tau): the LET writes [task] must issue at [time]. *)
val g_write : t -> time:Time.t -> task:int -> Comm.Set.t

(** G^R(t, tau): the LET reads [task] requires at [time]. *)
val g_read : t -> time:Time.t -> task:int -> Comm.Set.t

(** C(s0), the largest communication set. *)
val s0 : t -> Comm.Set.t

(** Checks the paper's invariant that C(t) is a subset of C(s0) for all t. *)
val check_s0_superset : t -> bool

val pp : Format.formatter -> t -> unit
