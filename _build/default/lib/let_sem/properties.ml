open Rt_model

(* Checkers for the LET correctness properties of Section IV, stated over
   an ordered list of DMA transfers (each a list of communications). They
   are used to validate MILP solutions, heuristic schedules and the
   baselines, and in property-based tests. *)

type plan = Comm.t list list

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun s -> Error s) fmt

let index_of plan pred =
  let rec go i = function
    | [] -> None
    | g :: rest -> if List.exists pred g then Some i else go (i + 1) rest
  in
  go 0 plan

let all_comms plan = List.concat plan

(* The plan must partition [expected]: cover every communication exactly
   once and contain nothing else. *)
let well_formed ~expected (plan : plan) =
  let listed = all_comms plan in
  let listed_set = Comm.Set.of_list listed in
  if List.length listed <> Comm.Set.cardinal listed_set then
    err "plan contains duplicate communications"
  else if not (Comm.Set.equal listed_set expected) then
    let missing = Comm.Set.diff expected listed_set in
    let extra = Comm.Set.diff listed_set expected in
    err "plan mismatch: %d missing, %d extraneous communications"
      (Comm.Set.cardinal missing) (Comm.Set.cardinal extra)
  else Ok ()

(* Every transfer moves data between one source and one destination
   memory, i.e. all its communications share a (core, direction) class. *)
let single_class app (plan : plan) =
  let rec go i = function
    | [] -> Ok ()
    | [] :: _ -> err "transfer %d is empty" i
    | (c :: rest) :: more ->
      let cl = Comm.cls app c in
      if List.for_all (fun c' -> Comm.cls app c' = cl) rest then go (i + 1) more
      else err "transfer %d mixes source/destination memories" i
  in
  go 0 plan

(* Property 1: every LET write of a task precedes every LET read of the
   same task (strictly earlier transfer). *)
let property1 (plan : plan) =
  let tasks_with pred =
    List.fold_left
      (fun acc c -> if pred c then c.Comm.task :: acc else acc)
      [] (all_comms plan)
    |> List.sort_uniq Int.compare
  in
  let writers = tasks_with (fun c -> c.Comm.kind = Comm.Write) in
  let rec check = function
    | [] -> Ok ()
    | task :: rest ->
      let last_write =
        List.fold_left
          (fun acc (i, g) ->
            if
              List.exists
                (fun c -> c.Comm.kind = Comm.Write && c.Comm.task = task)
                g
            then max acc i
            else acc)
          (-1)
          (List.mapi (fun i g -> (i, g)) plan)
      in
      let first_read =
        index_of plan (fun c -> c.Comm.kind = Comm.Read && c.Comm.task = task)
      in
      (match first_read with
       | Some r when r <= last_write ->
         err "Property 1 violated for task %d: write in transfer %d, read in %d"
           task last_write r
       | Some _ | None -> check rest)
  in
  check writers

(* Property 2: for each label communicated at this instant, the write
   precedes every read (strictly earlier transfer). *)
let property2 (plan : plan) =
  let labels_written =
    List.filter_map
      (fun c -> if c.Comm.kind = Comm.Write then Some c.Comm.label else None)
      (all_comms plan)
    |> List.sort_uniq Int.compare
  in
  let rec check = function
    | [] -> Ok ()
    | label :: rest ->
      let w =
        index_of plan (fun c -> c.Comm.kind = Comm.Write && c.Comm.label = label)
      in
      let r =
        index_of plan (fun c -> c.Comm.kind = Comm.Read && c.Comm.label = label)
      in
      (match (w, r) with
       | Some w, Some r when r <= w ->
         err "Property 2 violated for label %d: write in transfer %d, read in %d"
           label w r
       | _ -> check rest)
  in
  check labels_written

let transfer_bytes app g =
  List.fold_left (fun acc c -> acc + Comm.size app c) 0 g

(* Worst-case duration of executing the whole plan with the DMA protocol:
   each transfer pays lambda_O = o_DP + o_ISR plus the linear copy time. *)
let duration app (plan : plan) =
  let p = App.platform app in
  List.fold_left
    (fun acc g ->
      Time.(acc + Platform.lambda_o p + Platform.dma_copy_time p (transfer_bytes app g)))
    Time.zero plan

(* Property 3: the whole burst completes within [gap], the distance to the
   next communication instant. *)
let property3 app ~gap (plan : plan) =
  let d = duration app plan in
  if Time.compare d gap <= 0 then Ok ()
  else
    err "Property 3 violated: burst takes %a but the next instant is %a away"
      Time.pp d Time.pp gap

(* Full validation of a plan for pattern occurring [gap] before the next
   instant; [expected] is the communication set of that instant. *)
let check_all app ~expected ~gap plan =
  let* () = well_formed ~expected plan in
  let* () = single_class app plan in
  let* () = property1 plan in
  let* () = property2 plan in
  property3 app ~gap plan
