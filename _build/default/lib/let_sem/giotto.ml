open Rt_model

(* The original Giotto/LET ordering (Section IV): at each communication
   instant, first every LET write of the released task instances, then
   every LET read, and only then do the released tasks become ready. *)

(* Deterministic canonical order: writes before reads; within a kind, by
   (core, task id, label id), so per-core sequences are contiguous. *)
let order app comms =
  let key (c : Comm.t) =
    let kind_rank = match c.Comm.kind with Comm.Write -> 0 | Comm.Read -> 1 in
    (kind_rank, Comm.local_core app c, c.Comm.task, c.Comm.label)
  in
  List.sort (fun a b -> compare (key a) (key b)) (Comm.Set.elements comms)

(* One singleton DMA transfer per communication, in Giotto order: the
   paper's Giotto-DMA-A baseline (no knowledge of the memory layout, so no
   grouping is possible). *)
let singleton_transfers app comms = List.map (fun c -> [ c ]) (order app comms)

(* The per-core copy sequences executed by the LET tasks in the Giotto-CPU
   baseline: writes of the core first, then its reads, preserving the
   global write-before-read barrier checked by the simulator. *)
let per_core_sequences app comms =
  let ordered = order app comms in
  List.init (App.platform app).Platform.n_cores (fun k ->
      List.filter (fun c -> Comm.local_core app c = k) ordered)
