(** The original Giotto ordering of LET communications (Section IV): all
    writes of the instant first, then all reads, then every released task
    becomes ready simultaneously. Used by the three baselines of the
    paper's evaluation. *)

open Rt_model

(** Canonical Giotto order of a communication set: writes before reads,
    deterministic within each kind. *)
val order : App.t -> Comm.Set.t -> Comm.t list

(** Giotto-DMA-A: one singleton transfer per communication, ordered. *)
val singleton_transfers : App.t -> Comm.Set.t -> Comm.t list list

(** Giotto-CPU: the copy sequence each core's LET task executes (index =
    core). *)
val per_core_sequences : App.t -> Comm.Set.t -> Comm.t list list
