open Rt_model

(* Necessary-communication instants for a producer/consumer pair, after
   Biondi & Di Natale (RTAS 2018), Eqs. (1)-(2) of the paper.

   The paper's subscript conventions in Eqs. (1)-(2) are internally
   inconsistent with Algorithm 1 (see DESIGN.md); the unambiguous semantics
   implemented here is:
   - a LET write is necessary only if it is the last write at or before
     some consumer read ("skip writes that get overwritten unread");
   - a LET read is necessary only if it is the first read at or after some
     write ("skip reads of unchanged data").
   Both instant sets repeat with period lcm(T_w, T_c). When the writer is
   not oversampled (T_w >= T_c) every writer release is necessary, and
   symmetrically for reads, which the closed forms below reproduce. *)

(* eta^W: index of the writer job performing the necessary write for the
   v-th consumer read. *)
let eta_w ~tw ~tc v =
  if tw < tc then v * tc / tw (* floor division on non-negative ints *)
  else v

(* eta^R: index of the consumer job performing the necessary read of the
   v-th write. *)
let eta_r ~tw ~tc v =
  if tc < tw then (v * tw + tc - 1) / tc (* ceiling division *)
  else v

let sort_uniq_times l = List.sort_uniq Time.compare l

(* Instants in [0, lcm tw tc) at which the writer must perform a LET write
   towards this consumer. When the writer is oversampled (tw < tc), only
   the last write at/before each consumer read is necessary (enumerated
   over consumer jobs); otherwise every writer release is. *)
let write_instants ~tw ~tc =
  if tw <= 0 || tc <= 0 then invalid_arg "Eta.write_instants: periods must be positive";
  let h = Time.lcm tw tc in
  if tw < tc then
    sort_uniq_times (List.init (h / tc) (fun v -> eta_w ~tw ~tc v * tw))
  else List.init (h / tw) (fun v -> v * tw)

(* Instants in [0, lcm tw tc) at which the consumer must perform a LET read
   from this producer. When the consumer is oversampled (tc < tw), only the
   first read at/after each write is necessary (enumerated over writer
   jobs; the ceiling can land exactly on the period boundary, which folds
   onto instant 0 of the next cycle); otherwise every consumer release
   is. *)
let read_instants ~tw ~tc =
  if tw <= 0 || tc <= 0 then invalid_arg "Eta.read_instants: periods must be positive";
  let h = Time.lcm tw tc in
  if tc < tw then
    sort_uniq_times (List.init (h / tw) (fun v -> eta_r ~tw ~tc v * tc mod h))
  else List.init (h / tc) (fun v -> v * tc)

(* Membership tests for absolute times (folded modulo the pair period). *)
let write_needed_at ~tw ~tc t =
  let h = Time.lcm tw tc in
  t mod tw = 0 && List.mem (t mod h) (write_instants ~tw ~tc)

let read_needed_at ~tw ~tc t =
  let h = Time.lcm tw tc in
  t mod tc = 0 && List.mem (t mod h) (read_instants ~tw ~tc)
