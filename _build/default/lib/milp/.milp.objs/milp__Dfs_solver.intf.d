lib/milp/dfs_solver.mli: Branch_bound Problem
