lib/milp/presolve.ml: Array Float Linexpr Logs Problem
