lib/milp/linexpr.ml: Array Float Fmt Int List Map Printf
