lib/milp/milp.ml: Branch_bound Dfs_solver Linexpr Lp_file Presolve Problem Simplex Simplex_core Vec
