lib/milp/simplex.mli: Problem
