lib/milp/vec.mli:
