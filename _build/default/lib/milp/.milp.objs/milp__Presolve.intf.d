lib/milp/presolve.mli: Problem
