lib/milp/dfs_solver.ml: Array Branch_bound Float Fmt Linexpr List Logs Option Problem Simplex_core Unix
