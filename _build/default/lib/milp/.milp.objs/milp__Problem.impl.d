lib/milp/problem.ml: Array Buffer Float Fmt Linexpr List Printf Vec
