lib/milp/vec.ml: Array
