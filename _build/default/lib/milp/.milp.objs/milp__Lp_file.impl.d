lib/milp/lp_file.ml: Buffer Fmt Hashtbl Linexpr List Problem Result String
