lib/milp/branch_bound.ml: Array Float Linexpr List Logs Option Problem Simplex Unix
