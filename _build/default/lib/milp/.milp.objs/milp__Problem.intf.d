lib/milp/problem.mli: Format Linexpr
