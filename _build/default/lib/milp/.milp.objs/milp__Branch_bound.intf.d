lib/milp/branch_bound.mli: Problem
