lib/milp/lp_file.mli: Problem
