lib/milp/simplex_core.ml: Array Float Linexpr List Logs Problem Unix
