lib/milp/simplex.ml: Problem Simplex_core
