(** Sparse linear expressions [sum c_j * x_j + const] over integer variable
    ids. Values are immutable; all operations are purely functional. *)

type t

val zero : t

(** [const c] is the constant expression [c]. *)
val const : float -> t

(** [var ?coeff v] is [coeff * x_v] (default coefficient 1). *)
val var : ?coeff:float -> int -> t

(** [add_term e c v] is [e + c * x_v]; terms cancelling to 0 are dropped. *)
val add_term : t -> float -> int -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_const : t -> float -> t

(** [of_list ?const [(c1, v1); ...]] builds [c1*x_v1 + ... + const]. *)
val of_list : ?const:float -> (float * int) list -> t

val sum : t list -> t

(** Non-zero terms as [(coeff, var)] pairs in increasing variable order. *)
val terms : t -> (float * int) list

val constant : t -> float
val is_constant : t -> bool
val num_terms : t -> int
val coeff_of : t -> int -> float
val iter_terms : (float -> int -> unit) -> t -> unit

(** [eval e x] evaluates [e] under the assignment [x.(v)]. *)
val eval : t -> float array -> float

(** [map_vars f e] renames every variable through [f] (merging collisions). *)
val map_vars : (int -> int) -> t -> t

val pp : ?var_name:(int -> string) -> Format.formatter -> t -> unit
