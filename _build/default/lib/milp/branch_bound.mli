(** Best-first branch-and-bound MILP solver on top of {!Simplex}.

    This is the substrate standing in for IBM CPLEX, which the paper uses
    to solve its formulation (see DESIGN.md, substitution 1). It supports
    warm incumbents, node/time limits with incumbent reporting (the
    behaviour the paper relies on for its OBJ-DMAT timeout results), and
    reports proof bounds and relative gaps. *)

type status =
  | Optimal     (** incumbent proven optimal *)
  | Feasible    (** limit hit with an incumbent (paper's timeout case) *)
  | Infeasible
  | Unbounded
  | Unknown     (** limit hit before any incumbent was found *)

type stats = {
  nodes : int;
  simplex_solves : int;
  time_s : float;
  best_bound : float;  (** proven bound on the optimum, in the problem's own sense *)
  gap : float option;  (** relative incumbent/bound gap; [Some 0.] when optimal *)
}

type solution = {
  status : status;
  obj : float option;
  x : float array option;
  stats : stats;
}

(** Pure feasibility problems (constant objective) with a feasible
    incumbent need no search: returns the incumbent as [Optimal].
    Shared with {!Dfs_solver}. *)
val feasibility_shortcut : Problem.t -> float array option -> solution option

(** [solve ?time_limit_s ?node_limit ?int_eps ?incumbent ?log_every p]
    solves the MILP [p].

    - [time_limit_s] (default 60): wall-clock limit; on expiry the best
      incumbent is returned with status [Feasible].
    - [incumbent]: a feasible assignment used as the initial cutoff.
    - [int_eps] (default 1e-6): integrality tolerance.
    - [log_every]: if positive, log progress every that many nodes. *)
val solve :
  ?time_limit_s:float ->
  ?node_limit:int ->
  ?int_eps:float ->
  ?incumbent:float array ->
  ?log_every:int ->
  Problem.t ->
  solution
