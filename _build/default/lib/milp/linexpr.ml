(* Sparse linear expressions over integer variable ids. *)

module Imap = Map.Make (Int)

type t = {
  terms : float Imap.t;
  const : float;
}

let zero = { terms = Imap.empty; const = 0.0 }

let const c = { terms = Imap.empty; const = c }

let var ?(coeff = 1.0) v =
  if coeff = 0.0 then zero else { terms = Imap.singleton v coeff; const = 0.0 }

let add_term e coeff v =
  if coeff = 0.0 then e
  else
    let terms =
      Imap.update v
        (function
          | None -> Some coeff
          | Some c ->
            let c = c +. coeff in
            if c = 0.0 then None else Some c)
        e.terms
    in
    { e with terms }

let add a b =
  let terms =
    Imap.union
      (fun _ ca cb ->
        let c = ca +. cb in
        if c = 0.0 then None else Some c)
      a.terms b.terms
  in
  { terms; const = a.const +. b.const }

let neg a =
  { terms = Imap.map (fun c -> -.c) a.terms; const = -.a.const }

let sub a b = add a (neg b)

let scale k a =
  if k = 0.0 then zero
  else { terms = Imap.map (fun c -> k *. c) a.terms; const = k *. a.const }

let add_const a c = { a with const = a.const +. c }

let of_list ?(const = 0.0) l =
  List.fold_left (fun acc (c, v) -> add_term acc c v) { zero with const } l

let sum es = List.fold_left add zero es

let terms e = Imap.bindings e.terms |> List.map (fun (v, c) -> (c, v))

let constant e = e.const

let is_constant e = Imap.is_empty e.terms

let num_terms e = Imap.cardinal e.terms

let coeff_of e v = match Imap.find_opt v e.terms with None -> 0.0 | Some c -> c

let iter_terms f e = Imap.iter (fun v c -> f c v) e.terms

let eval e x =
  Imap.fold (fun v c acc -> acc +. (c *. x.(v))) e.terms e.const

let map_vars f e =
  Imap.fold (fun v c acc -> add_term acc c (f v)) e.terms { zero with const = e.const }

let pp ?(var_name = fun v -> Printf.sprintf "x%d" v) ppf e =
  let first = ref true in
  let emit_sign c =
    if !first then begin
      first := false;
      if c < 0.0 then Fmt.string ppf "- "
    end
    else if c < 0.0 then Fmt.string ppf " - "
    else Fmt.string ppf " + "
  in
  Imap.iter
    (fun v c ->
      emit_sign c;
      let a = Float.abs c in
      if a = 1.0 then Fmt.string ppf (var_name v)
      else Fmt.pf ppf "%g %s" a (var_name v))
    e.terms;
  if e.const <> 0.0 || !first then begin
    emit_sign e.const;
    Fmt.pf ppf "%g" (Float.abs e.const)
  end
