(** Presolve: activity-based bound tightening, redundant-row elimination
    and early infeasibility detection, iterated to a fixpoint.

    The reduced problem keeps every variable (same ids, possibly tighter
    bounds) and drops provably redundant rows, so feasible solutions and
    optima transfer verbatim between the two problems (property-tested). *)

type result =
  | Reduced of Problem.t
  | Infeasible of string  (** name of the witnessing row *)

type stats = { rounds : int; rows_dropped : int; bounds_tightened : int }

val run : ?max_rounds:int -> Problem.t -> result * stats
