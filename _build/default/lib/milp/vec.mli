(** Minimal growable array (the stdlib gains [Dynarray] only in OCaml 5.2).

    A [dummy] element is required at creation to back the unused capacity. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int

(** [push t x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val of_array : dummy:'a -> 'a array -> 'a t
