(* Growable array used by the model builder (the stdlib gains Dynarray only
   in OCaml 5.2). *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let data = Array.make cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array ~dummy a =
  let t = create ~dummy in
  Array.iter (fun x -> ignore (push t x)) a;
  t
