(** Reader/writer for the CPLEX LP text format (the subset emitted by
    {!Problem.to_lp_string}): objective, named constraints, bounds,
    integrality sections. Round-trips with the writer, enabling external
    cross-checking of models. *)

(** Parse an LP-format model. Variables keep the default LP-format domain
    [0, +inf) unless the Bounds section says otherwise. *)
val of_string : string -> (Problem.t, string) result

(** Alias of {!Problem.to_lp_string}. *)
val to_string : Problem.t -> string
