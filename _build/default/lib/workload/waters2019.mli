(** The WATERS 2019 Industrial Challenge case study used in the paper's
    evaluation (Section VII): nine tasks of Bosch's autonomous-driving
    prototype on a four-core platform, with the challenge's periods and a
    representative communication-label table (see DESIGN.md on how this
    substitutes for the non-redistributable Amalthea model). *)

open Rt_model

(** Task ids, in the order of the paper's Fig. 2 X axis. *)

val lid : int
val dasm : int
val can : int
val ekf : int
val plan : int
val sfm : int
val loc : int
val ldet : int
val det : int

val task_names : string array

(** [make ()] builds the default case study. [labels_per_edge] splits each
    data flow into that many labels (scaling the allocation problem);
    [scale] multiplies payload sizes; [platform] overrides the default
    4-core platform with the paper's o_DP/o_ISR. *)
val make :
  ?labels_per_edge:int -> ?scale:float -> ?platform:Platform.t -> unit -> App.t

(** Task ids in the paper's Fig. 2 plotting order. *)
val fig2_order : int list
