open Rt_model

(* The WATERS 2019 Industrial Challenge case study (Bosch) used in the
   paper's evaluation: the nine application tasks of the autonomous-driving
   prototype, with the challenge's published periods, representative WCETs,
   a four-core partitioning in the spirit of the challenge solution of
   Casini et al. [16], and inter-core communication labels spanning the
   challenge's signal-size range.

   The original Amalthea model is not redistributable here, so WCETs and
   the label table are hand-encoded approximations (see DESIGN.md,
   substitution 3). The [labels_per_edge] parameter splits each edge's
   payload into that many labels, scaling the allocation problem; [scale]
   multiplies every label size. *)

(* Task indices, in the order of the paper's Fig. 2 X axis. *)
let lid = 0
let dasm = 1
let can = 2
let ekf = 3
let plan = 4
let sfm = 5
let loc = 6
let ldet = 7
let det = 8

let task_names =
  [| "LID"; "DASM"; "CAN"; "EKF"; "PLAN"; "SFM"; "LOC"; "LDET"; "DET" |]

(* (id, period ms, wcet us, core) *)
let task_table =
  [
    (lid, 33, 6600, 2);
    (dasm, 5, 1000, 0);
    (can, 10, 1500, 0);
    (ekf, 15, 2250, 1);
    (plan, 15, 3000, 1);
    (sfm, 33, 8250, 3);
    (loc, 400, 80000, 3);
    (ldet, 66, 13200, 2);
    (det, 200, 40000, 2);
  ]

(* Directed data flows of the challenge, (writer, reader, payload bytes).
   Edges between tasks mapped on the same core (EKF -> PLAN, DASM <-> CAN)
   use double buffering rather than the DMA and are included to exercise
   that path. *)
let flow_table =
  [
    (can, ekf, 64); (* vehicle status from the CAN bus *)
    (lid, loc, 131072); (* preprocessed point-cloud features (128 KiB) *)
    (loc, ekf, 512); (* pose estimate *)
    (loc, plan, 512); (* pose for planning *)
    (sfm, plan, 32768); (* occupancy grid (32 KiB) *)
    (sfm, ldet, 16384); (* image features (16 KiB) *)
    (ldet, plan, 2048); (* lane boundaries *)
    (det, plan, 8192); (* detected object list *)
    (plan, dasm, 256); (* trajectory / actuation commands *)
    (ekf, plan, 256); (* state estimate (same core: double buffer) *)
    (dasm, can, 32); (* actuation echo (same core: double buffer) *)
  ]

let make ?(labels_per_edge = 1) ?(scale = 1.0) ?platform () =
  if labels_per_edge < 1 then
    invalid_arg "Waters2019.make: labels_per_edge must be >= 1";
  if scale <= 0.0 then invalid_arg "Waters2019.make: scale must be positive";
  let platform =
    (* TC39x-class scratchpads: 256 KiB per core, comfortably holding the
       local copies of the camera/lidar-derived payloads *)
    match platform with
    | Some p -> p
    | None -> Platform.make ~n_cores:4 ~local_mem_bytes:(256 * 1024) ()
  in
  let tasks =
    List.map
      (fun (id, period_ms, wcet_us, core) ->
        Task.make ~id ~name:task_names.(id) ~period:(Time.of_ms period_ms)
          ~wcet:(Time.of_us wcet_us) ~core)
      task_table
  in
  let labels =
    List.concat_map
      (fun (w, r, bytes) ->
        let total = max labels_per_edge (int_of_float (float_of_int bytes *. scale)) in
        let base = total / labels_per_edge in
        let rem = total mod labels_per_edge in
        List.init labels_per_edge (fun k ->
            let size = base + (if k < rem then 1 else 0) in
            (w, r, size, k)))
      flow_table
    |> List.mapi (fun id (w, r, size, k) ->
           let name =
             if labels_per_edge = 1 then
               Fmt.str "%s_%s" task_names.(w) task_names.(r)
             else Fmt.str "%s_%s_%d" task_names.(w) task_names.(r) k
           in
           Label.make ~id ~name ~size ~writer:w ~readers:[ r ])
  in
  App.make ~platform ~tasks ~labels

(* Task name in Fig. 2's X-axis order. *)
let fig2_order = [ lid; dasm; can; ekf; plan; sfm; loc; ldet; det ]
