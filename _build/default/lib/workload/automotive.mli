(** Automotive benchmark generator after Kramer, Ziegenbein & Hamann,
    "Real world automotive benchmarks for free" (WATERS 2015): periods
    drawn from the published engine-control distribution (1-1000 ms grid,
    10/20/100 ms dominating), WCETs by per-core UUniFast, and
    communication via many small signals (1-64 B, small sizes dominating).

    Deterministic for a given seed. *)

open Rt_model

type config = {
  n_cores : int;
  n_tasks : int;
  utilization_per_core : float;
  comm_probability : float;
      (** probability that an ordered cross-core task pair communicates *)
  max_labels_per_edge : int;
}

val default_config : config

(** The published (period, share) grid, exposed for tests. *)
val period_distribution : (int * float) list

val generate : ?seed:int -> ?config:config -> unit -> App.t

(** Fraction of task pairs with harmonic periods (high by construction of
    the period grid). *)
val harmonic_ratio : App.t -> float
