open Rt_model

(* Automotive benchmark generator following the statistics published by
   Kramer, Ziegenbein and Hamann, "Real world automotive benchmarks for
   free" (WATERS 2015): engine-control task sets draw their periods from
   a fixed grid with empirically-measured shares, and inter-task
   communication uses many small signals (labels of a few bytes, with a
   tail of larger composite messages).

   This complements {!Generator} (uniform periods, few large labels) with
   realistically-skewed workloads: many harmonic pairs, 1/2/5/10/20ms
   periods dominating, and label sizes concentrated at 1-8 bytes. *)

(* (period ms, share) — Table III of the WATERS 2015 paper, angle-
   synchronous tasks folded into the 5ms bin. *)
let period_distribution =
  [
    (1, 0.03);
    (2, 0.02);
    (5, 0.07);
    (10, 0.25);
    (20, 0.25);
    (50, 0.03);
    (100, 0.20);
    (200, 0.01);
    (1000, 0.14);
  ]

(* label size distribution: overwhelmingly small signals with a coarse
   tail of composite messages (Section IV of the paper reports 1-byte
   signals dominating) *)
let size_distribution =
  [ (1, 0.35); (2, 0.25); (4, 0.20); (8, 0.10); (16, 0.05); (32, 0.03); (64, 0.02) ]

let pick_weighted st dist =
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 dist in
  let r = Random.State.float st total in
  let rec go acc = function
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if acc +. w >= r then v else go (acc +. w) rest
    | [] -> invalid_arg "pick_weighted: empty distribution"
  in
  go 0.0 dist

type config = {
  n_cores : int;
  n_tasks : int;
  utilization_per_core : float;
  comm_probability : float;
      (* probability that an (ordered) cross-core task pair communicates *)
  max_labels_per_edge : int;
}

let default_config =
  {
    n_cores = 4;
    n_tasks = 12;
    utilization_per_core = 0.5;
    comm_probability = 0.3;
    max_labels_per_edge = 4;
  }

let generate ?(seed = 2015) ?(config = default_config) () =
  if config.n_tasks < 2 then invalid_arg "Automotive.generate: need >= 2 tasks";
  if config.n_cores < 2 then invalid_arg "Automotive.generate: need >= 2 cores";
  let st = Random.State.make [| seed |] in
  (* periods from the published distribution; WCETs by per-core UUniFast *)
  let cores = List.init config.n_tasks (fun i -> i mod config.n_cores) in
  let per_core = Array.make config.n_cores 0 in
  List.iter (fun k -> per_core.(k) <- per_core.(k) + 1) cores;
  let utils_by_core =
    Array.map
      (fun n -> ref (Generator.uunifast st n config.utilization_per_core))
      per_core
  in
  let tasks =
    List.mapi
      (fun i core ->
        let u =
          match !(utils_by_core.(core)) with
          | u :: rest ->
            utils_by_core.(core) := rest;
            u
          | [] -> 0.02
        in
        let period = Time.of_ms (pick_weighted st period_distribution) in
        let wcet =
          Time.of_ns
            (max 1_000 (int_of_float (u *. float_of_int (Time.to_ns period))))
        in
        Task.make ~id:i
          ~name:(Fmt.str "ecu%d_t%d" core i)
          ~period
          ~wcet:(Time.min wcet period)
          ~core)
      cores
  in
  let task_arr = Array.of_list tasks in
  (* communication: each ordered cross-core pair gets labels with the
     configured probability; label sizes from the signal distribution *)
  let labels = ref [] in
  let next = ref 0 in
  for w = 0 to config.n_tasks - 1 do
    for r = 0 to config.n_tasks - 1 do
      if
        w <> r
        && task_arr.(w).Task.core <> task_arr.(r).Task.core
        && Random.State.float st 1.0 < config.comm_probability
      then begin
        let k = 1 + Random.State.int st config.max_labels_per_edge in
        for _ = 1 to k do
          let size = pick_weighted st size_distribution in
          labels :=
            Label.make ~id:!next
              ~name:(Fmt.str "sig%d" !next)
              ~size ~writer:w ~readers:[ r ]
            :: !labels;
          incr next
        done
      end
    done
  done;
  let platform = Platform.make ~n_cores:config.n_cores () in
  App.make ~platform ~tasks ~labels:(List.rev !labels)

(* Share of task pairs with harmonic periods — high for this generator by
   construction of the period grid; exposed for tests and reporting. *)
let harmonic_ratio app =
  let tasks = App.tasks app in
  let pairs = ref 0 and harmonic = ref 0 in
  List.iter
    (fun (a : Task.t) ->
      List.iter
        (fun (b : Task.t) ->
          if a.Task.id < b.Task.id then begin
            incr pairs;
            let lo = Time.min a.Task.period b.Task.period in
            let hi = Time.max a.Task.period b.Task.period in
            if hi mod lo = 0 then incr harmonic
          end)
        tasks)
    tasks;
  if !pairs = 0 then 1.0 else float_of_int !harmonic /. float_of_int !pairs
