lib/workload/automotive.ml: App Array Fmt Generator Label List Platform Random Rt_model Task Time
