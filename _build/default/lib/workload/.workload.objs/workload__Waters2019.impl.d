lib/workload/waters2019.ml: App Array Fmt Label List Platform Rt_model Task Time
