lib/workload/workload.ml: Automotive Generator Waters2019
