lib/workload/generator.mli: App Random Rt_model
