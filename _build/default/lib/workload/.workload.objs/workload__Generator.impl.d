lib/workload/generator.ml: App Array Fmt Int Label List Platform Random Rt_model Task Time
