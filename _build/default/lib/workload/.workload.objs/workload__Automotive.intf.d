lib/workload/automotive.mli: App Rt_model
