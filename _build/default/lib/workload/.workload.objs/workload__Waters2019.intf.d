lib/workload/waters2019.mli: App Platform Rt_model
