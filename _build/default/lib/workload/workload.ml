(** Workloads for the evaluation: the WATERS 2019 industrial case study, a
    seeded uniform random generator, and an automotive benchmark generator
    following the WATERS 2015 "real world benchmarks" statistics. *)

module Waters2019 = Waters2019
module Generator = Generator
module Automotive = Automotive
