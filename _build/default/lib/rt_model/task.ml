type t = {
  id : int;
  name : string;
  period : Time.t;
  wcet : Time.t;
  core : int;
}

let make ~id ~name ~period ~wcet ~core =
  if period <= 0 then invalid_arg "Task.make: period must be positive";
  if wcet < 0 then invalid_arg "Task.make: wcet must be non-negative";
  if wcet > period then invalid_arg "Task.make: wcet exceeds period";
  if core < 0 then invalid_arg "Task.make: negative core";
  { id; name; period; wcet; core }

(* Implicit deadlines (D_i = T_i), as in the paper's model. *)
let deadline t = t.period

let utilization t = Time.to_s_float t.wcet /. Time.to_s_float t.period

let compare a b = Int.compare a.id b.id
let equal a b = Int.equal a.id b.id

let pp ppf t =
  Fmt.pf ppf "%s(T=%a,C=%a,P%d)" t.name Time.pp t.period Time.pp t.wcet t.core
