(** Multicore platform model (Section III.A): N identical cores each with a
    dual-ported local scratchpad, one shared global memory, and a single
    DMA engine moving data between a local memory and the global one.

    Default cost parameters follow the paper's evaluation: DMA programming
    overhead o_DP = 3.36 us (measured in Tabish et al. [8]) and completion
    ISR overhead o_ISR = 10 us. Copy costs are linear per byte; the CPU
    per-byte cost is higher than the DMA's, and CPU copies additionally
    suffer cross-core contention in the simulator. *)

type memory = Local of int  (** core-local scratchpad of core [i] *)
            | Global

val equal_memory : memory -> memory -> bool
val compare_memory : memory -> memory -> int
val pp_memory : Format.formatter -> memory -> unit

type t = private {
  n_cores : int;
  o_dp : Time.t;  (** DMA programming overhead per transfer *)
  o_isr : Time.t;  (** DMA completion interrupt service time *)
  dma_ns_per_byte : float;
  cpu_ns_per_byte : float;
  local_mem_bytes : int;
  global_mem_bytes : int;
}

val make :
  ?o_dp:Time.t ->
  ?o_isr:Time.t ->
  ?dma_ns_per_byte:float ->
  ?cpu_ns_per_byte:float ->
  ?local_mem_bytes:int ->
  ?global_mem_bytes:int ->
  n_cores:int ->
  unit ->
  t

(** Pure copy duration of a DMA transfer of [bytes] (overheads excluded). *)
val dma_copy_time : t -> int -> Time.t

(** Contention-free CPU copy duration of [bytes]. *)
val cpu_copy_time : t -> int -> Time.t

(** The paper's per-transfer overhead lambda_O = o_DP + o_ISR. *)
val lambda_o : t -> Time.t

(** All memories: local scratchpads in core order, then [Global]. *)
val memories : t -> memory list

val pp : Format.formatter -> t -> unit
