(** Periodic real-time tasks (Section III.A of the paper).

    Tasks have implicit deadlines ([deadline t = t.period]), are released
    synchronously at time 0, and are statically partitioned onto cores. *)

type t = private {
  id : int;
  name : string;
  period : Time.t;
  wcet : Time.t;
  core : int;
}

(** Raises [Invalid_argument] on non-positive period, negative WCET,
    WCET > period, or negative core index. *)
val make : id:int -> name:string -> period:Time.t -> wcet:Time.t -> core:int -> t

val deadline : t -> Time.t
val utilization : t -> float
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
