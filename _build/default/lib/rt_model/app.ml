type t = {
  tasks : Task.t array; (* indexed by task id *)
  labels : Label.t array; (* indexed by label id *)
  platform : Platform.t;
}

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let make ~platform ~tasks ~labels =
  let tasks = Array.of_list tasks in
  let labels = Array.of_list labels in
  Array.iteri
    (fun i (t : Task.t) ->
      if t.Task.id <> i then invalid "task %s: id %d at position %d" t.Task.name t.Task.id i;
      if t.Task.core >= platform.Platform.n_cores then
        invalid "task %s mapped to core %d but platform has %d cores"
          t.Task.name t.Task.core platform.Platform.n_cores)
    tasks;
  let n = Array.length tasks in
  let names = Hashtbl.create 16 in
  Array.iter
    (fun (t : Task.t) ->
      if Hashtbl.mem names t.Task.name then
        invalid "duplicate task name %s" t.Task.name;
      Hashtbl.add names t.Task.name ())
    tasks;
  Array.iteri
    (fun i (l : Label.t) ->
      if l.Label.id <> i then
        invalid "label %s: id %d at position %d" l.Label.name l.Label.id i;
      if l.Label.writer < 0 || l.Label.writer >= n then
        invalid "label %s: unknown writer %d" l.Label.name l.Label.writer;
      List.iter
        (fun r ->
          if r < 0 || r >= n then
            invalid "label %s: unknown reader %d" l.Label.name r)
        l.Label.readers)
    labels;
  { tasks; labels; platform }

let platform a = a.platform
let num_tasks a = Array.length a.tasks
let num_labels a = Array.length a.labels
let task a i = a.tasks.(i)
let label a i = a.labels.(i)
let tasks a = Array.to_list a.tasks
let labels a = Array.to_list a.labels

let task_by_name a name =
  let found = ref None in
  Array.iter
    (fun (t : Task.t) -> if String.equal t.Task.name name then found := Some t)
    a.tasks;
  match !found with
  | Some t -> t
  | None -> raise Not_found

let core_of a i = (task a i).Task.core

let tasks_on_core a k =
  List.filter (fun (t : Task.t) -> t.Task.core = k) (tasks a)

let hyperperiod a =
  match tasks a with
  | [] -> Time.zero
  | ts -> Time.lcm_list (List.map (fun (t : Task.t) -> t.Task.period) ts)

(* Readers of [l] running on a core other than the writer's. *)
let inter_core_readers a (l : Label.t) =
  let wc = core_of a l.Label.writer in
  List.filter (fun r -> core_of a r <> wc) l.Label.readers

let is_inter_core a l = inter_core_readers a l <> []

let inter_core_labels a =
  List.filter (fun l -> is_inter_core a l) (labels a)

(* L^S(p, c): labels written by [producer] and read by [consumer], with the
   two tasks on different cores. *)
let shared_between a ~producer ~consumer =
  if core_of a producer = core_of a consumer then []
  else
    List.filter
      (fun (l : Label.t) ->
        l.Label.writer = producer && List.mem consumer l.Label.readers)
      (labels a)

(* Task pairs (p, c) with L^S(p, c) non-empty. *)
let communication_edges a =
  let edges = ref [] in
  List.iter
    (fun (l : Label.t) ->
      List.iter
        (fun c ->
          if core_of a c <> core_of a l.Label.writer then begin
            let e = (l.Label.writer, c) in
            if not (List.mem e !edges) then edges := e :: !edges
          end)
        l.Label.readers)
    (labels a);
  List.sort compare !edges

(* H_i* of Eq. (3): the repetition period of task i's LET communications. *)
let comm_hyperperiod a i =
  let ti = (task a i).Task.period in
  let partners =
    List.filter_map
      (fun (p, c) ->
        if p = i then Some (task a c).Task.period
        else if c = i then Some (task a p).Task.period
        else None)
      (communication_edges a)
  in
  Time.lcm_list (ti :: partners)

(* Total bytes of inter-core labels, to validate memory capacities. A local
   memory holds the copies of every inter-core label its tasks write or
   read; the global memory holds every inter-core label. *)
let memory_demand a (m : Platform.memory) =
  match m with
  | Platform.Global ->
    List.fold_left (fun acc (l : Label.t) -> acc + l.Label.size) 0
      (inter_core_labels a)
  | Platform.Local k ->
    List.fold_left
      (fun acc (l : Label.t) ->
        let involved =
          core_of a l.Label.writer = k
          || List.exists (fun r -> core_of a r = k) (inter_core_readers a l)
        in
        if involved && is_inter_core a l then acc + l.Label.size else acc)
      0 (labels a)

let check_memory_fit a =
  let p = a.platform in
  let problems = ref [] in
  List.iter
    (fun m ->
      let demand = memory_demand a m in
      let cap =
        match m with
        | Platform.Global -> p.Platform.global_mem_bytes
        | Platform.Local _ -> p.Platform.local_mem_bytes
      in
      if demand > cap then
        problems :=
          Fmt.str "%a: demand %dB exceeds capacity %dB" Platform.pp_memory m
            demand cap
          :: !problems)
    (Platform.memories p);
  List.rev !problems

let total_utilization_per_core a =
  Array.init a.platform.Platform.n_cores (fun k ->
      List.fold_left
        (fun acc t -> acc +. Task.utilization t)
        0.0 (tasks_on_core a k))

let pp ppf a =
  Fmt.pf ppf "@[<v>%a@,%d tasks, %d labels, H=%a@,%a@]" Platform.pp a.platform
    (num_tasks a) (num_labels a) Time.pp (hyperperiod a)
    Fmt.(list ~sep:cut Task.pp)
    (tasks a)
