type memory = Local of int | Global

let equal_memory a b =
  match (a, b) with
  | Local i, Local j -> Int.equal i j
  | Global, Global -> true
  | Local _, Global | Global, Local _ -> false

let compare_memory a b =
  match (a, b) with
  | Local i, Local j -> Int.compare i j
  | Local _, Global -> -1
  | Global, Local _ -> 1
  | Global, Global -> 0

let pp_memory ppf = function
  | Local i -> Fmt.pf ppf "M%d" (i + 1)
  | Global -> Fmt.string ppf "MG"

type t = {
  n_cores : int;
  o_dp : Time.t;
  o_isr : Time.t;
  dma_ns_per_byte : float;
  cpu_ns_per_byte : float;
  local_mem_bytes : int;
  global_mem_bytes : int;
}

let make ?(o_dp = Time.of_ns 3360) ?(o_isr = Time.of_us 10)
    ?(dma_ns_per_byte = 1.0) ?(cpu_ns_per_byte = 4.0)
    ?(local_mem_bytes = 128 * 1024) ?(global_mem_bytes = 8 * 1024 * 1024)
    ~n_cores () =
  if n_cores <= 0 then invalid_arg "Platform.make: need at least one core";
  if o_dp < 0 || o_isr < 0 then invalid_arg "Platform.make: negative overhead";
  if dma_ns_per_byte <= 0.0 || cpu_ns_per_byte <= 0.0 then
    invalid_arg "Platform.make: copy costs must be positive";
  {
    n_cores;
    o_dp;
    o_isr;
    dma_ns_per_byte;
    cpu_ns_per_byte;
    local_mem_bytes;
    global_mem_bytes;
  }

(* Worst-case duration of a DMA copy of [bytes] bytes (excluding
   programming and ISR overheads). *)
let dma_copy_time t bytes =
  Time.of_ns (int_of_float (ceil (float_of_int bytes *. t.dma_ns_per_byte)))

(* Worst-case duration of a CPU-driven copy without contention. *)
let cpu_copy_time t bytes =
  Time.of_ns (int_of_float (ceil (float_of_int bytes *. t.cpu_ns_per_byte)))

(* lambda_O in the paper: per-transfer overhead o_DP + o_ISR. *)
let lambda_o t = Time.( + ) t.o_dp t.o_isr

let memories t =
  List.init t.n_cores (fun i -> Local i) @ [ Global ]

let pp ppf t =
  Fmt.pf ppf
    "platform: %d cores, o_DP=%a, o_ISR=%a, DMA %.2f ns/B, CPU %.2f ns/B"
    t.n_cores Time.pp t.o_dp Time.pp t.o_isr t.dma_ns_per_byte
    t.cpu_ns_per_byte
