(** Application and platform model of the DAC 2021 paper (Section III):
    periodic tasks under partitioned scheduling, single-writer labels,
    scratchpad-based multicore with one DMA engine. *)

module Time = Time
module Task = Task
module Label = Label
module Platform = Platform
module App = App
