(** Time values as integer nanoseconds.

    All model quantities (periods, overheads, latencies) are kept in exact
    integer nanoseconds so hyperperiod arithmetic (LCM/GCD) never loses
    precision; conversion to floating-point microseconds happens only at
    the MILP boundary and in reports. *)

type t = int

val zero : t
val of_ns : int -> t
val of_us : int -> t
val of_ms : int -> t
val of_s : int -> t
val to_ns : t -> int
val to_us_float : t -> float
val to_ms_float : t -> float
val to_s_float : t -> float

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

(** [k * t] scales a duration by an integer factor. *)
val ( * ) : int -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val gcd : t -> t -> t
val lcm : t -> t -> t
val lcm_list : t list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
