type t = {
  id : int;
  name : string;
  size : int; (* bytes *)
  writer : int; (* task id *)
  readers : int list; (* task ids, distinct, not containing the writer *)
}

let make ~id ~name ~size ~writer ~readers =
  if size <= 0 then invalid_arg "Label.make: size must be positive";
  if List.mem writer readers then
    invalid_arg "Label.make: writer cannot also be a reader";
  let sorted = List.sort_uniq Int.compare readers in
  if List.length sorted <> List.length readers then
    invalid_arg "Label.make: duplicate readers";
  { id; name; size; writer; readers = sorted }

let compare a b = Int.compare a.id b.id
let equal a b = Int.equal a.id b.id

let pp ppf l =
  Fmt.pf ppf "%s(%dB,w=%d,r=[%a])" l.name l.size l.writer
    Fmt.(list ~sep:(any ",") int)
    l.readers
