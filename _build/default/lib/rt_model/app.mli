(** A validated application: a task set partitioned on a platform plus its
    communication labels (Section III).

    Task and label ids are required to be dense indices (id [i] at position
    [i]); {!make} enforces this along with referential integrity, giving
    O(1) lookups everywhere else. *)

type t

exception Invalid of string

(** Raises {!Invalid} when ids are not dense, a task is mapped outside the
    platform, task names collide, or a label references unknown tasks. *)
val make : platform:Platform.t -> tasks:Task.t list -> labels:Label.t list -> t

val platform : t -> Platform.t
val num_tasks : t -> int
val num_labels : t -> int
val task : t -> int -> Task.t
val label : t -> int -> Label.t
val tasks : t -> Task.t list
val labels : t -> Label.t list

(** Raises [Not_found] for unknown names. *)
val task_by_name : t -> string -> Task.t

val core_of : t -> int -> int
val tasks_on_core : t -> int -> Task.t list

(** LCM of all task periods. *)
val hyperperiod : t -> Time.t

(** Readers of a label that run on a different core than its writer. *)
val inter_core_readers : t -> Label.t -> int list

val is_inter_core : t -> Label.t -> bool

(** Labels with at least one inter-core reader; exactly these are mapped in
    global memory and handled by the DMA. *)
val inter_core_labels : t -> Label.t list

(** [shared_between a ~producer ~consumer] is the paper's
    L^S(producer, consumer): empty when the two tasks share a core. *)
val shared_between : t -> producer:int -> consumer:int -> Label.t list

(** Distinct (producer, consumer) pairs with non-empty L^S, sorted. *)
val communication_edges : t -> (int * int) list

(** H_i* of Eq. (3): LCM of task [i]'s period with the periods of all its
    communication partners. *)
val comm_hyperperiod : t -> int -> Time.t

(** Bytes that must fit in the given memory under the paper's mapping
    rules. *)
val memory_demand : t -> Platform.memory -> int

(** Human-readable capacity violations (empty list = everything fits). *)
val check_memory_fit : t -> string list

val total_utilization_per_core : t -> float array
val pp : Format.formatter -> t -> unit
