(** Communication labels (Section III.B).

    A label is a memory slot of [size] bytes written by exactly one task
    and read by any number of other tasks. Labels shared across cores are
    mapped in global memory with per-core local copies; the DMA moves data
    between the copies and the shared instance. *)

type t = private {
  id : int;
  name : string;
  size : int;  (** bytes *)
  writer : int;  (** writer task id (single-writer model) *)
  readers : int list;  (** reader task ids, sorted, writer excluded *)
}

(** Raises [Invalid_argument] on non-positive size, duplicate readers, or a
    writer listed among the readers. *)
val make :
  id:int -> name:string -> size:int -> writer:int -> readers:int list -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
