lib/rt_model/task.mli: Format Time
