lib/rt_model/platform.mli: Format Time
