lib/rt_model/app.mli: Format Label Platform Task Time
