lib/rt_model/label.ml: Fmt Int List
