lib/rt_model/time.mli: Format
