lib/rt_model/time.ml: Fmt Int List Stdlib
