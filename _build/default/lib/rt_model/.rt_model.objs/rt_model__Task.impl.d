lib/rt_model/task.ml: Fmt Int Time
