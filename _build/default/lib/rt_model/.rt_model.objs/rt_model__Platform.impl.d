lib/rt_model/platform.ml: Fmt Int List Time
