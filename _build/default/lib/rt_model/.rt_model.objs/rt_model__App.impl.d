lib/rt_model/app.ml: Array Fmt Hashtbl Label List Platform String Task Time
