lib/rt_model/rt_model.ml: App Label Platform Task Time
