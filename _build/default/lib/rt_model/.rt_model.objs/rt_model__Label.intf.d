lib/rt_model/label.mli: Format
