(* Time as integer nanoseconds. 63-bit ints hold ~292 years, far beyond any
   hyperperiod of interest; integer arithmetic keeps LCM/GCD exact. *)

type t = int

let zero = 0
let of_ns n = n
let of_us n = n * 1_000
let of_ms n = n * 1_000_000
let of_s n = n * 1_000_000_000
let to_ns t = t
let to_us_float t = float_of_int t /. 1.0e3
let to_ms_float t = float_of_int t /. 1.0e6
let to_s_float t = float_of_int t /. 1.0e9

let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let ( * ) (k : int) (t : t) : t = Stdlib.( * ) k t

let compare = Int.compare
let equal = Int.equal
let min = Stdlib.min
let max = Stdlib.max

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let gcd a b = gcd (abs a) (abs b)

let lcm a b =
  if a = 0 || b = 0 then 0
  else
    let g = gcd a b in
    abs (Stdlib.( * ) (a / g) b)

let lcm_list = function
  | [] -> invalid_arg "Time.lcm_list: empty list"
  | x :: rest -> List.fold_left lcm x rest

let pp ppf t =
  if t = 0 then Fmt.string ppf "0"
  else if t mod 1_000_000_000 = 0 then Fmt.pf ppf "%ds" (t / 1_000_000_000)
  else if t mod 1_000_000 = 0 then Fmt.pf ppf "%dms" (t / 1_000_000)
  else if t mod 1_000 = 0 then Fmt.pf ppf "%dus" (t / 1_000)
  else Fmt.pf ppf "%dns" t

let to_string t = Fmt.str "%a" pp t
