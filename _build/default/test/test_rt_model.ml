(* Tests for the application/platform model library. *)

open Rt_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let test_time_units () =
  check_int "us" 1_000 (Time.of_us 1);
  check_int "ms" 1_000_000 (Time.of_ms 1);
  check_int "s" 1_000_000_000 (Time.of_s 1);
  Alcotest.(check (float 1e-9)) "to ms" 2.5 (Time.to_ms_float 2_500_000)

let test_time_lcm_gcd () =
  check_int "gcd" 5 (Time.gcd 15 10);
  check_int "lcm" 30 (Time.lcm 15 10);
  check_int "lcm_list" 60 (Time.lcm_list [ 12; 20; 15 ]);
  check_int "lcm with zero" 0 (Time.lcm 0 5)

let test_time_pp () =
  Alcotest.(check string) "ms" "5ms" (Time.to_string (Time.of_ms 5));
  Alcotest.(check string) "us" "3us" (Time.to_string (Time.of_us 3));
  Alcotest.(check string) "ns" "42ns" (Time.to_string 42);
  Alcotest.(check string) "s" "2s" (Time.to_string (Time.of_s 2));
  Alcotest.(check string) "zero" "0" (Time.to_string Time.zero)

(* ------------------------------------------------------------------ *)
(* Task / Label validation                                             *)
(* ------------------------------------------------------------------ *)

let test_task_validation () =
  let ok =
    Task.make ~id:0 ~name:"t" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 2)
      ~core:0
  in
  check_int "deadline = period" (Time.of_ms 10) (Task.deadline ok);
  Alcotest.(check (float 1e-9)) "utilization" 0.2 (Task.utilization ok);
  Alcotest.check_raises "wcet > period"
    (Invalid_argument "Task.make: wcet exceeds period") (fun () ->
      ignore
        (Task.make ~id:1 ~name:"bad" ~period:(Time.of_ms 1)
           ~wcet:(Time.of_ms 2) ~core:0));
  Alcotest.check_raises "zero period"
    (Invalid_argument "Task.make: period must be positive") (fun () ->
      ignore (Task.make ~id:1 ~name:"bad" ~period:0 ~wcet:0 ~core:0))

let test_label_validation () =
  let l = Label.make ~id:0 ~name:"l" ~size:64 ~writer:0 ~readers:[ 2; 1 ] in
  Alcotest.(check (list int)) "readers sorted" [ 1; 2 ] l.Label.readers;
  Alcotest.check_raises "writer reads"
    (Invalid_argument "Label.make: writer cannot also be a reader") (fun () ->
      ignore (Label.make ~id:0 ~name:"l" ~size:64 ~writer:0 ~readers:[ 0 ]));
  Alcotest.check_raises "zero size"
    (Invalid_argument "Label.make: size must be positive") (fun () ->
      ignore (Label.make ~id:0 ~name:"l" ~size:0 ~writer:0 ~readers:[]));
  Alcotest.check_raises "duplicate readers"
    (Invalid_argument "Label.make: duplicate readers") (fun () ->
      ignore (Label.make ~id:0 ~name:"l" ~size:4 ~writer:0 ~readers:[ 1; 1 ]))

(* ------------------------------------------------------------------ *)
(* Platform                                                            *)
(* ------------------------------------------------------------------ *)

let test_platform_memory_order () =
  (* locals order by core index and precede the global memory *)
  check_bool "local < global" true
    (Platform.compare_memory (Platform.Local 3) Platform.Global < 0);
  check_bool "locals by index" true
    (Platform.compare_memory (Platform.Local 0) (Platform.Local 1) < 0);
  check_bool "global equal" true
    (Platform.equal_memory Platform.Global Platform.Global);
  check_bool "distinct locals differ" false
    (Platform.equal_memory (Platform.Local 0) (Platform.Local 1));
  Alcotest.(check string) "pp local" "M2"
    (Fmt.str "%a" Platform.pp_memory (Platform.Local 1));
  Alcotest.(check string) "pp global" "MG"
    (Fmt.str "%a" Platform.pp_memory Platform.Global)

let test_platform_validation () =
  check_bool "zero cores rejected" true
    (try
       ignore (Platform.make ~n_cores:0 ());
       false
     with Invalid_argument _ -> true);
  check_bool "negative overhead rejected" true
    (try
       ignore (Platform.make ~o_dp:(-1) ~n_cores:1 ());
       false
     with Invalid_argument _ -> true);
  check_bool "zero copy cost rejected" true
    (try
       ignore (Platform.make ~dma_ns_per_byte:0.0 ~n_cores:1 ());
       false
     with Invalid_argument _ -> true)

let test_platform_defaults () =
  let p = Platform.make ~n_cores:2 () in
  check_int "o_DP" 3360 p.Platform.o_dp;
  check_int "o_ISR" (Time.of_us 10) p.Platform.o_isr;
  check_int "lambda_O" (3360 + 10_000) (Platform.lambda_o p);
  check_int "memories" 3 (List.length (Platform.memories p))

let test_platform_copy_costs () =
  let p = Platform.make ~dma_ns_per_byte:2.0 ~cpu_ns_per_byte:8.0 ~n_cores:1 () in
  check_int "dma copy" 128 (Platform.dma_copy_time p 64);
  check_int "cpu copy" 512 (Platform.cpu_copy_time p 64);
  (* ceil on fractional costs *)
  let p2 = Platform.make ~dma_ns_per_byte:0.3 ~n_cores:1 () in
  check_int "ceil" 2 (Platform.dma_copy_time p2 5)

(* ------------------------------------------------------------------ *)
(* App                                                                 *)
(* ------------------------------------------------------------------ *)

(* Two cores; t0,t1 on core 0, t2 on core 1. l0: t0 -> t2 (inter-core),
   l1: t0 -> t1 (same core), l2: t2 -> t0 (inter-core), l3: t1 -> t0,t2
   (one same-core reader, one inter-core reader). *)
let fixture () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"t0" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:0;
      Task.make ~id:1 ~name:"t1" ~period:(Time.of_ms 20) ~wcet:(Time.of_ms 2) ~core:0;
      Task.make ~id:2 ~name:"t2" ~period:(Time.of_ms 40) ~wcet:(Time.of_ms 4) ~core:1;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"l0" ~size:64 ~writer:0 ~readers:[ 2 ];
      Label.make ~id:1 ~name:"l1" ~size:32 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:2 ~name:"l2" ~size:128 ~writer:2 ~readers:[ 0 ];
      Label.make ~id:3 ~name:"l3" ~size:16 ~writer:1 ~readers:[ 0; 2 ];
    ]
  in
  App.make ~platform ~tasks ~labels

let test_app_basics () =
  let app = fixture () in
  check_int "tasks" 3 (App.num_tasks app);
  check_int "labels" 4 (App.num_labels app);
  check_int "hyperperiod" (Time.of_ms 40) (App.hyperperiod app);
  check_int "core of t2" 1 (App.core_of app 2);
  check_int "tasks on core 0" 2 (List.length (App.tasks_on_core app 0));
  let t = App.task_by_name app "t1" in
  check_int "by name" 1 t.Task.id

let test_app_inter_core () =
  let app = fixture () in
  let ic = App.inter_core_labels app in
  Alcotest.(check (list int)) "inter-core labels" [ 0; 2; 3 ]
    (List.map (fun (l : Label.t) -> l.Label.id) ic);
  check_bool "l1 is intra-core" false (App.is_inter_core app (App.label app 1));
  Alcotest.(check (list int)) "inter-core readers of l3" [ 2 ]
    (App.inter_core_readers app (App.label app 3))

let test_app_shared_between () =
  let app = fixture () in
  let l = App.shared_between app ~producer:0 ~consumer:2 in
  Alcotest.(check (list int)) "L^S(0,2)" [ 0 ]
    (List.map (fun (l : Label.t) -> l.Label.id) l);
  Alcotest.(check (list int)) "same-core pair is empty" []
    (List.map
       (fun (l : Label.t) -> l.Label.id)
       (App.shared_between app ~producer:0 ~consumer:1))

let test_app_edges () =
  let app = fixture () in
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 2); (1, 2); (2, 0) ]
    (App.communication_edges app)

let test_app_comm_hyperperiod () =
  let app = fixture () in
  (* t0 communicates with t2 (40ms): lcm(10,40) = 40 *)
  check_int "H*_0" (Time.of_ms 40) (App.comm_hyperperiod app 0);
  (* t1 communicates with t2: lcm(20,40) = 40 *)
  check_int "H*_1" (Time.of_ms 40) (App.comm_hyperperiod app 1)

let test_app_memory_demand () =
  let app = fixture () in
  (* global memory holds inter-core labels: 64 + 128 + 16 *)
  check_int "global demand" 208 (App.memory_demand app Platform.Global);
  (* core 0 copies: l0 (written by t0), l2 (read by t0), l3 (written by t1) *)
  check_int "local 0 demand" 208 (App.memory_demand app (Platform.Local 0));
  (* core 1 copies: l0 (read), l2 (written), l3 (read) *)
  check_int "local 1 demand" 208 (App.memory_demand app (Platform.Local 1));
  Alcotest.(check (list string)) "fits" [] (App.check_memory_fit app)

let test_app_validation_errors () =
  let platform = Platform.make ~n_cores:1 () in
  let t0 =
    Task.make ~id:0 ~name:"a" ~period:(Time.of_ms 1) ~wcet:Time.zero ~core:0
  in
  (* non-dense ids *)
  let t_bad =
    Task.make ~id:5 ~name:"b" ~period:(Time.of_ms 1) ~wcet:Time.zero ~core:0
  in
  check_bool "non-dense ids rejected" true
    (try
       ignore (App.make ~platform ~tasks:[ t0; t_bad ] ~labels:[]);
       false
     with App.Invalid _ -> true);
  (* core out of range *)
  let t_core =
    Task.make ~id:0 ~name:"c" ~period:(Time.of_ms 1) ~wcet:Time.zero ~core:3
  in
  check_bool "core out of range rejected" true
    (try
       ignore (App.make ~platform ~tasks:[ t_core ] ~labels:[]);
       false
     with App.Invalid _ -> true);
  (* label references unknown task *)
  let l = Label.make ~id:0 ~name:"l" ~size:1 ~writer:9 ~readers:[] in
  check_bool "unknown writer rejected" true
    (try
       ignore (App.make ~platform ~tasks:[ t0 ] ~labels:[ l ]);
       false
     with App.Invalid _ -> true)

let test_app_utilization () =
  let app = fixture () in
  let u = App.total_utilization_per_core app in
  Alcotest.(check (float 1e-9)) "core 0" 0.2 u.(0);
  Alcotest.(check (float 1e-9)) "core 1" 0.1 u.(1)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_lcm_divisible =
  QCheck.Test.make ~name:"lcm divisible by both operands" ~count:200
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let l = Time.lcm a b in
      l mod a = 0 && l mod b = 0 && l >= max a b)

let prop_hyperperiod_multiple_of_periods =
  QCheck.Test.make ~name:"hyperperiod is a multiple of every period" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 6) (int_range 1 50))
    (fun periods ->
      let platform = Platform.make ~n_cores:1 () in
      let tasks =
        List.mapi
          (fun i p ->
            Task.make ~id:i ~name:(Printf.sprintf "t%d" i)
              ~period:(Time.of_ms p) ~wcet:Time.zero ~core:0)
          periods
      in
      let app = App.make ~platform ~tasks ~labels:[] in
      let h = App.hyperperiod app in
      List.for_all (fun p -> h mod Time.of_ms p = 0) periods)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_lcm_divisible; prop_hyperperiod_multiple_of_periods ]
  in
  Alcotest.run "rt_model"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "lcm/gcd" `Quick test_time_lcm_gcd;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "task-label",
        [
          Alcotest.test_case "task validation" `Quick test_task_validation;
          Alcotest.test_case "label validation" `Quick test_label_validation;
        ] );
      ( "platform",
        [
          Alcotest.test_case "defaults" `Quick test_platform_defaults;
          Alcotest.test_case "copy costs" `Quick test_platform_copy_costs;
          Alcotest.test_case "memory ordering" `Quick test_platform_memory_order;
          Alcotest.test_case "validation" `Quick test_platform_validation;
        ] );
      ( "app",
        [
          Alcotest.test_case "basics" `Quick test_app_basics;
          Alcotest.test_case "inter-core labels" `Quick test_app_inter_core;
          Alcotest.test_case "shared_between" `Quick test_app_shared_between;
          Alcotest.test_case "communication edges" `Quick test_app_edges;
          Alcotest.test_case "comm hyperperiod" `Quick test_app_comm_hyperperiod;
          Alcotest.test_case "memory demand" `Quick test_app_memory_demand;
          Alcotest.test_case "validation errors" `Quick test_app_validation_errors;
          Alcotest.test_case "utilization" `Quick test_app_utilization;
        ] );
      ("properties", qsuite);
    ]
