(* Tests for memory layouts and allocations: addresses, adjacency,
   contiguity, transferability, and plan feasibility. *)

open Rt_model
open Let_sem
open Mem_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* 2 cores; t0 on core 0 writes l0 (64B) and l1 (32B) to t1 on core 1;
   t1 writes l2 (16B) back to t0. *)
let fixture () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"t0" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:0;
      Task.make ~id:1 ~name:"t1" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:1;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"l0" ~size:64 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"l1" ~size:32 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:2 ~name:"l2" ~size:16 ~writer:1 ~readers:[ 0 ];
    ]
  in
  App.make ~platform ~tasks ~labels

let test_expected_labels () =
  let app = fixture () in
  Alcotest.(check (list int)) "global holds all inter-core" [ 0; 1; 2 ]
    (List.sort Int.compare (Layout.expected_labels app Platform.Global));
  Alcotest.(check (list int)) "core 0 copies" [ 0; 1; 2 ]
    (List.sort Int.compare (Layout.expected_labels app (Platform.Local 0)));
  Alcotest.(check (list int)) "core 1 copies" [ 0; 1; 2 ]
    (List.sort Int.compare (Layout.expected_labels app (Platform.Local 1)))

let test_layout_addresses () =
  let app = fixture () in
  let l = Layout.of_order app Platform.Global [ 1; 0; 2 ] in
  check_int "l1 at 0" 0 (Layout.address l 1);
  check_int "l0 after l1" 32 (Layout.address l 0);
  check_int "l2 after l0" 96 (Layout.address l 2);
  check_int "total" 112 (Layout.total_bytes l);
  check_int "position of l0" 1 (Layout.position l 0);
  check_int "labels" 3 (Layout.num_labels l)

let test_layout_validation () =
  let app = fixture () in
  check_bool "missing label rejected" true
    (try
       ignore (Layout.of_order app Platform.Global [ 0; 1 ]);
       false
     with Invalid_argument _ -> true);
  check_bool "duplicate label rejected" true
    (try
       ignore (Layout.of_order app Platform.Global [ 0; 1; 1 ]);
       false
     with Invalid_argument _ -> true);
  check_bool "foreign label position raises" true
    (try
       let l = Layout.of_order app Platform.Global [ 0; 1; 2 ] in
       ignore (Layout.position l 99);
       false
     with Invalid_argument _ -> true)

let test_adjacency () =
  let app = fixture () in
  let l = Layout.of_order app Platform.Global [ 1; 0; 2 ] in
  (* AD(a, b): b immediately below a *)
  check_bool "l1 below l0" true (Layout.adjacent_below l ~a:0 ~b:1);
  check_bool "l0 below l2" true (Layout.adjacent_below l ~a:2 ~b:0);
  check_bool "not l0 below l1" false (Layout.adjacent_below l ~a:1 ~b:0);
  check_bool "not adjacent" false (Layout.adjacent_below l ~a:2 ~b:1)

let test_contiguity () =
  let app = fixture () in
  let l = Layout.of_order app Platform.Global [ 1; 0; 2 ] in
  check_bool "singleton" true (Layout.contiguous l [ 0 ]);
  check_bool "empty" true (Layout.contiguous l []);
  check_bool "adjacent pair" true (Layout.contiguous l [ 1; 0 ]);
  check_bool "whole memory" true (Layout.contiguous l [ 2; 0; 1 ]);
  check_bool "gap" false (Layout.contiguous l [ 1; 2 ])

let test_transferable () =
  let app = fixture () in
  let src = Layout.of_order app (Platform.Local 0) [ 0; 1; 2 ] in
  let dst_same = Layout.of_order app Platform.Global [ 0; 1; 2 ] in
  let dst_swapped = Layout.of_order app Platform.Global [ 1; 0; 2 ] in
  check_bool "same order contiguous" true
    (Layout.transferable ~src ~dst:dst_same [ 0; 1 ]);
  check_bool "different order rejected" false
    (Layout.transferable ~src ~dst:dst_swapped [ 0; 1 ]);
  (* singletons always transfer *)
  check_bool "singleton" true (Layout.transferable ~src ~dst:dst_swapped [ 2 ])

let test_allocation_identity () =
  let app = fixture () in
  let alloc = Allocation.identity app in
  check_int "three memories" 3 (List.length (Allocation.memories alloc));
  let g = Allocation.layout alloc Platform.Global in
  Alcotest.(check (list int)) "identity order" [ 0; 1; 2 ] (Layout.order g)

let test_allocation_missing_memory () =
  let app = fixture () in
  let alloc = Allocation.identity app in
  check_bool "missing memory raises" true
    (try
       ignore (Allocation.layout alloc (Platform.Local 7));
       false
     with Invalid_argument _ -> true);
  check_bool "layout_opt is None" true
    (Allocation.layout_opt alloc (Platform.Local 7) = None)

let test_plan_feasible () =
  let app = fixture () in
  let alloc = Allocation.identity app in
  (* l0 and l1 are adjacent everywhere under identity order *)
  let w01 = [ Comm.write ~task:0 ~label:0; Comm.write ~task:0 ~label:1 ] in
  check_bool "grouped write feasible" true
    (Result.is_ok (Allocation.plan_feasible app alloc [ w01 ]));
  (* l0 and l2 are not adjacent (l1 in between) *)
  let w02 = [ Comm.write ~task:0 ~label:0; Comm.write ~task:1 ~label:2 ] in
  check_bool "gapped transfer infeasible" true
    (Result.is_error (Allocation.plan_feasible app alloc [ w02 ]))

let test_transfer_addresses () =
  let app = fixture () in
  let alloc = Allocation.identity app in
  let w01 = [ Comm.write ~task:0 ~label:0; Comm.write ~task:0 ~label:1 ] in
  let src_addr, dst_addr = Allocation.transfer_addresses app alloc w01 in
  (* bottom label is l0 at offset 0 in both the local and global layout *)
  check_int "source address" 0 src_addr;
  check_int "destination address" 0 dst_addr;
  let r2 = [ Comm.read ~task:0 ~label:2 ] in
  let src_addr, _ = Allocation.transfer_addresses app alloc r2 in
  check_int "l2 offset in global" 96 src_addr;
  check_bool "empty transfer raises" true
    (try
       ignore (Allocation.transfer_addresses app alloc []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

(* contiguity equals "positions form an integer interval" *)
let prop_contiguous_iff_interval =
  QCheck.Test.make ~name:"contiguous iff positions form an interval" ~count:200
    QCheck.(pair (int_range 0 5) (list_of_size (Gen.int_range 1 3) (int_range 0 2)))
    (fun (rot, subset) ->
      let app = fixture () in
      let order =
        match rot mod 3 with
        | 0 -> [ 0; 1; 2 ]
        | 1 -> [ 1; 2; 0 ]
        | _ -> [ 2; 0; 1 ]
      in
      let l = Layout.of_order app Platform.Global order in
      let subset = List.sort_uniq Int.compare subset in
      let ps = List.sort Int.compare (List.map (Layout.position l) subset) in
      let is_interval =
        match ps with
        | [] -> true
        | first :: _ ->
          List.for_all2 ( = ) ps (List.init (List.length ps) (fun i -> first + i))
      in
      Layout.contiguous l subset = is_interval)

let prop_addresses_pack_back_to_back =
  QCheck.Test.make ~name:"addresses are prefix sums of sizes" ~count:100
    QCheck.(int_range 0 5)
    (fun rot ->
      let app = fixture () in
      let order =
        match rot mod 3 with
        | 0 -> [ 0; 1; 2 ]
        | 1 -> [ 1; 2; 0 ]
        | _ -> [ 2; 0; 1 ]
      in
      let l = Layout.of_order app Platform.Global order in
      let ok = ref true in
      let offset = ref 0 in
      List.iter
        (fun lbl ->
          if Layout.address l lbl <> !offset then ok := false;
          offset := !offset + (App.label app lbl).Label.size)
        order;
      !ok && Layout.total_bytes l = !offset)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_contiguous_iff_interval; prop_addresses_pack_back_to_back ]
  in
  Alcotest.run "mem_layout"
    [
      ( "layout",
        [
          Alcotest.test_case "expected labels" `Quick test_expected_labels;
          Alcotest.test_case "addresses" `Quick test_layout_addresses;
          Alcotest.test_case "validation" `Quick test_layout_validation;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "contiguity" `Quick test_contiguity;
          Alcotest.test_case "transferable" `Quick test_transferable;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "identity" `Quick test_allocation_identity;
          Alcotest.test_case "missing memory" `Quick test_allocation_missing_memory;
          Alcotest.test_case "plan feasibility" `Quick test_plan_feasible;
          Alcotest.test_case "transfer addresses" `Quick test_transfer_addresses;
        ] );
      ("properties", qsuite);
    ]
