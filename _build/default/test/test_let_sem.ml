(* Tests for the LET semantics library: skip functions (Eqs. (1)-(2)),
   Algorithm 1 grouping, Giotto ordering, Properties 1-3 checkers. *)

open Rt_model
open Let_sem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let times = Alcotest.(list int)

let ms = Time.of_ms

(* ------------------------------------------------------------------ *)
(* Eta: necessary communication instants                               *)
(* ------------------------------------------------------------------ *)

let test_eta_equal_periods () =
  Alcotest.check times "writes" [ 0 ] (Eta.write_instants ~tw:(ms 10) ~tc:(ms 10));
  Alcotest.check times "reads" [ 0 ] (Eta.read_instants ~tw:(ms 10) ~tc:(ms 10))

(* writer oversampled: T_w = 5, T_c = 10. Writes at 5, 15, ... are
   overwritten unread and skipped. *)
let test_eta_oversampled_writer () =
  Alcotest.check times "writes" [ 0 ] (Eta.write_instants ~tw:(ms 5) ~tc:(ms 10));
  (* every read is needed *)
  Alcotest.check times "reads" [ 0 ] (Eta.read_instants ~tw:(ms 5) ~tc:(ms 10))

(* consumer oversampled: T_w = 10, T_c = 5. Reads at 5, 15, ... see
   unchanged data and are skipped. *)
let test_eta_oversampled_reader () =
  Alcotest.check times "writes" [ 0 ] (Eta.write_instants ~tw:(ms 10) ~tc:(ms 5));
  Alcotest.check times "reads" [ 0 ] (Eta.read_instants ~tw:(ms 10) ~tc:(ms 5))

(* non-harmonic pair: T_w = 15, T_c = 10, lcm = 30.
   Reads at 0, 10, 20; writes at 0, 15.
   Necessary writes: last write at/before each read: 0 (for 0 and 10), 15
   (for 20) -> both.
   Necessary reads: first read at/after each write: 0, 20 (read at 10 sees
   the same data as the read at 0). *)
let test_eta_non_harmonic () =
  Alcotest.check times "writes" [ 0; ms 15 ]
    (Eta.write_instants ~tw:(ms 15) ~tc:(ms 10));
  Alcotest.check times "reads" [ 0; ms 20 ]
    (Eta.read_instants ~tw:(ms 15) ~tc:(ms 10))

(* the symmetric non-harmonic case: T_w = 10, T_c = 15, lcm = 30.
   Writes at 0, 10, 20; reads at 0, 15.
   Necessary writes: last at/before 0 -> 0; last at/before 15 -> 10; (and
   for the read at 30 of the next cycle -> write 30 = 0). Write at 20 is
   skipped.
   Necessary reads: all (consumer slower): 0, 15. *)
let test_eta_non_harmonic_sym () =
  Alcotest.check times "writes" [ 0; ms 10 ]
    (Eta.write_instants ~tw:(ms 10) ~tc:(ms 15));
  Alcotest.check times "reads" [ 0; ms 15 ]
    (Eta.read_instants ~tw:(ms 10) ~tc:(ms 15))

let test_eta_membership () =
  check_bool "write at 0" true (Eta.write_needed_at ~tw:(ms 10) ~tc:(ms 15) 0);
  check_bool "write at 10" true
    (Eta.write_needed_at ~tw:(ms 10) ~tc:(ms 15) (ms 10));
  check_bool "write at 20 skipped" false
    (Eta.write_needed_at ~tw:(ms 10) ~tc:(ms 15) (ms 20));
  check_bool "write repeats at 30" true
    (Eta.write_needed_at ~tw:(ms 10) ~tc:(ms 15) (ms 30));
  check_bool "not a release" false
    (Eta.write_needed_at ~tw:(ms 10) ~tc:(ms 15) (ms 5));
  check_bool "read at 15" true
    (Eta.read_needed_at ~tw:(ms 10) ~tc:(ms 15) (ms 15))

let test_eta_invalid () =
  Alcotest.check_raises "zero period"
    (Invalid_argument "Eta.write_instants: periods must be positive")
    (fun () -> ignore (Eta.write_instants ~tw:0 ~tc:(ms 1)))

(* ------------------------------------------------------------------ *)
(* Groups: Algorithm 1                                                 *)
(* ------------------------------------------------------------------ *)

(* Fig. 1-like fixture: 2 cores, 6 tasks (t0,t2,t4 on core 0; t1,t3,t5 on
   core 1), inter-core labels l0: t0->t1, l1: t2->t3, l2: t4->t5,
   l3: t1->t4 (back edge). Harmonic periods 10/20/40. *)
let fixture () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"t0" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"t1" ~period:(ms 10) ~wcet:(ms 1) ~core:1;
      Task.make ~id:2 ~name:"t2" ~period:(ms 20) ~wcet:(ms 2) ~core:0;
      Task.make ~id:3 ~name:"t3" ~period:(ms 20) ~wcet:(ms 2) ~core:1;
      Task.make ~id:4 ~name:"t4" ~period:(ms 40) ~wcet:(ms 4) ~core:0;
      Task.make ~id:5 ~name:"t5" ~period:(ms 40) ~wcet:(ms 4) ~core:1;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"l0" ~size:64 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"l1" ~size:128 ~writer:2 ~readers:[ 3 ];
      Label.make ~id:2 ~name:"l2" ~size:256 ~writer:4 ~readers:[ 5 ];
      Label.make ~id:3 ~name:"l3" ~size:32 ~writer:1 ~readers:[ 4 ];
    ]
  in
  App.make ~platform ~tasks ~labels

let test_groups_s0 () =
  let app = fixture () in
  let g = Groups.compute app in
  let c0 = Groups.s0 g in
  (* at s0 every edge communicates: 4 writes + 4 reads *)
  check_int "C(s0) size" 8 (Comm.Set.cardinal c0);
  check_bool "contains W(t0,l0)" true
    (Comm.Set.mem (Comm.write ~task:0 ~label:0) c0);
  check_bool "contains R(l3,t4)" true
    (Comm.Set.mem (Comm.read ~task:4 ~label:3) c0)

let test_groups_subsets () =
  let app = fixture () in
  let g = Groups.compute app in
  check_bool "C(t) subset of C(s0) for all t" true (Groups.check_s0_superset g)

let test_groups_at_10ms () =
  let app = fixture () in
  let g = Groups.compute app in
  (* at t = 10ms only the 10ms pair (t0 -> t1) and the 10/40 edge
     (t1 -> t4) can require communications. t1->t4: writer 10ms,
     consumer 40ms: writes needed at last-before-reads: reads at 0,40,...;
     necessary writes at 0 and 30 (floor(40/10)*10=40==0 mod 40; v=1:
     floor(1*40/10)*10 = 40 == 0... careful) *)
  let c10 = Groups.comms_at g (ms 10) in
  check_bool "W(t0,l0) at 10ms" true
    (Comm.Set.mem (Comm.write ~task:0 ~label:0) c10);
  check_bool "R(l0,t1) at 10ms" true
    (Comm.Set.mem (Comm.read ~task:1 ~label:0) c10);
  (* t2 (20ms) does not communicate at 10ms *)
  check_bool "no W(t2,l1)" false
    (Comm.Set.mem (Comm.write ~task:2 ~label:1) c10)

let test_groups_g_write_read () =
  let app = fixture () in
  let g = Groups.compute app in
  let gw = Groups.g_write g ~time:Time.zero ~task:1 in
  let gr = Groups.g_read g ~time:Time.zero ~task:1 in
  check_int "t1 writes l3" 1 (Comm.Set.cardinal gw);
  check_int "t1 reads l0" 1 (Comm.Set.cardinal gr);
  check_bool "write is l3" true (Comm.Set.mem (Comm.write ~task:1 ~label:3) gw);
  check_bool "read is l0" true (Comm.Set.mem (Comm.read ~task:1 ~label:0) gr)

let test_groups_instants () =
  let app = fixture () in
  let g = Groups.compute app in
  let inst = Groups.instants g in
  (* hyperperiod is 40ms; the fastest pair communicates every 10ms *)
  check_bool "instants within hyperperiod" true
    (List.for_all (fun t -> t >= 0 && t < ms 40) inst);
  check_bool "s0 included" true (List.mem 0 inst);
  check_bool "10ms included" true (List.mem (ms 10) inst)

let test_groups_patterns () =
  let app = fixture () in
  let g = Groups.compute app in
  let pats = Groups.patterns g in
  check_bool "at least 2 distinct patterns" true (List.length pats >= 2);
  (* first pattern is C(s0) by construction *)
  (match pats with
   | p :: _ ->
     check_bool "first pattern is s0" true
       (Comm.Set.equal p.Groups.comms (Groups.s0 g));
     check_bool "s0 occurs at 0" true (List.mem 0 p.Groups.occurrences)
   | [] -> Alcotest.fail "no patterns");
  (* every pattern's min gap is positive and at most the hyperperiod *)
  List.iter
    (fun p ->
      check_bool "gap positive" true (p.Groups.min_gap > 0);
      check_bool "gap within hyperperiod" true (p.Groups.min_gap <= ms 40))
    pats

(* a task whose only reader shares its core produces no LET communications *)
let test_groups_intra_core_only () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"a" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"b" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
    ]
  in
  let labels = [ Label.make ~id:0 ~name:"l" ~size:8 ~writer:0 ~readers:[ 1 ] ] in
  let app = App.make ~platform ~tasks ~labels in
  let g = Groups.compute app in
  check_int "no instants" 0 (List.length (Groups.instants g));
  check_int "empty C(s0)" 0 (Comm.Set.cardinal (Groups.s0 g))

(* ------------------------------------------------------------------ *)
(* Communication records                                               *)
(* ------------------------------------------------------------------ *)

let test_comm_memories () =
  let app = fixture () in
  (* W(t0, l0): core 0's scratchpad -> global *)
  let w = Comm.write ~task:0 ~label:0 in
  check_bool "write src" true
    (Platform.equal_memory (Comm.src_memory app w) (Platform.Local 0));
  check_bool "write dst" true
    (Platform.equal_memory (Comm.dst_memory app w) Platform.Global);
  check_bool "write direction" true (Comm.direction w = Comm.To_global);
  (* R(l0, t1): global -> core 1's scratchpad *)
  let r = Comm.read ~task:1 ~label:0 in
  check_bool "read src" true
    (Platform.equal_memory (Comm.src_memory app r) Platform.Global);
  check_bool "read dst" true
    (Platform.equal_memory (Comm.dst_memory app r) (Platform.Local 1));
  check_int "write size" 64 (Comm.size app w);
  (* classes: same core, opposite directions differ *)
  check_bool "classes differ" true (Comm.cls app w <> Comm.cls app r);
  (* writes order before reads *)
  check_bool "write < read" true (Comm.compare w r < 0)

let test_comms_at_periodicity () =
  let app = fixture () in
  let g = Groups.compute app in
  let h = App.hyperperiod app in
  List.iter
    (fun t ->
      check_bool
        (Fmt.str "C(%a) repeats at t+H" Time.pp t)
        true
        (Comm.Set.equal (Groups.comms_at g t) (Groups.comms_at g Time.(t + h))))
    (Groups.instants g)

let test_pattern_gap_hand_checked () =
  (* two tasks, both 10ms, single flow: instants every 10ms, so every
     pattern's min gap is exactly 10ms *)
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"w" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"r" ~period:(ms 10) ~wcet:(ms 1) ~core:1;
    ]
  in
  let labels = [ Label.make ~id:0 ~name:"l" ~size:8 ~writer:0 ~readers:[ 1 ] ] in
  let app = App.make ~platform ~tasks ~labels in
  let g = Groups.compute app in
  (match Groups.patterns g with
   | [ p ] ->
     check_int "single pattern gap" (ms 10) p.Groups.min_gap;
     check_int "one occurrence" 1 (List.length p.Groups.occurrences)
   | ps -> Alcotest.fail (Fmt.str "expected 1 pattern, got %d" (List.length ps)))

(* ------------------------------------------------------------------ *)
(* Giotto ordering                                                     *)
(* ------------------------------------------------------------------ *)

let test_giotto_order () =
  let app = fixture () in
  let g = Groups.compute app in
  let ordered = Giotto.order app (Groups.s0 g) in
  check_int "all comms" 8 (List.length ordered);
  (* all writes strictly before all reads *)
  let kinds = List.map (fun c -> c.Comm.kind) ordered in
  let rec writes_then_reads seen_read = function
    | [] -> true
    | Comm.Write :: _ when seen_read -> false
    | Comm.Write :: rest -> writes_then_reads false rest
    | Comm.Read :: rest -> writes_then_reads true rest
  in
  check_bool "writes before reads" true (writes_then_reads false kinds)

let test_giotto_singletons () =
  let app = fixture () in
  let g = Groups.compute app in
  let plan = Giotto.singleton_transfers app (Groups.s0 g) in
  check_int "one transfer per comm" 8 (List.length plan);
  check_bool "all singleton" true (List.for_all (fun t -> List.length t = 1) plan)

let test_giotto_per_core () =
  let app = fixture () in
  let g = Groups.compute app in
  let seqs = Giotto.per_core_sequences app (Groups.s0 g) in
  check_int "one sequence per core" 2 (List.length seqs);
  let total = List.fold_left (fun a s -> a + List.length s) 0 seqs in
  check_int "cover all comms" 8 total;
  List.iteri
    (fun k seq ->
      check_bool "comms touch own core" true
        (List.for_all (fun c -> Comm.local_core app c = k) seq))
    seqs

(* ------------------------------------------------------------------ *)
(* Properties 1-3                                                      *)
(* ------------------------------------------------------------------ *)

let is_ok = function Ok () -> true | Error _ -> false

let test_properties_giotto_plan_valid () =
  let app = fixture () in
  let g = Groups.compute app in
  let c0 = Groups.s0 g in
  let plan = Giotto.singleton_transfers app c0 in
  check_bool "well formed" true (is_ok (Properties.well_formed ~expected:c0 plan));
  check_bool "single class" true (is_ok (Properties.single_class app plan));
  check_bool "property 1" true (is_ok (Properties.property1 plan));
  check_bool "property 2" true (is_ok (Properties.property2 plan))

let test_property1_violation () =
  (* read of task 1 before its write *)
  let plan = [ [ Comm.read ~task:1 ~label:0 ]; [ Comm.write ~task:1 ~label:3 ] ] in
  check_bool "violated" false (is_ok (Properties.property1 plan))

let test_property1_same_transfer_index () =
  (* write and read of the same task in the same position index across two
     groups is still a violation: strict order required *)
  let plan = [ [ Comm.write ~task:1 ~label:3; Comm.read ~task:1 ~label:0 ] ] in
  check_bool "same transfer violates" false (is_ok (Properties.property1 plan))

let test_property2_violation () =
  let plan = [ [ Comm.read ~task:1 ~label:0 ]; [ Comm.write ~task:0 ~label:0 ] ] in
  check_bool "violated" false (is_ok (Properties.property2 plan))

let test_property2_cross_instant_ok () =
  (* a read whose write is not part of this instant is fine (the write
     happened at an earlier instant) *)
  let plan = [ [ Comm.read ~task:1 ~label:0 ] ] in
  check_bool "ok" true (is_ok (Properties.property2 plan))

let test_well_formed_violations () =
  let app = fixture () in
  let g = Groups.compute app in
  let c0 = Groups.s0 g in
  (* missing comms *)
  check_bool "missing detected" false
    (is_ok (Properties.well_formed ~expected:c0 [ [ Comm.write ~task:0 ~label:0 ] ]));
  (* duplicates *)
  let dup = [ [ Comm.write ~task:0 ~label:0 ]; [ Comm.write ~task:0 ~label:0 ] ] in
  check_bool "duplicate detected" false (is_ok (Properties.well_formed ~expected:c0 dup))

let test_single_class_violation () =
  let app = fixture () in
  (* W(t0,l0) is core0 -> global; R(l0,t1) is global -> core1 *)
  let plan = [ [ Comm.write ~task:0 ~label:0; Comm.read ~task:1 ~label:0 ] ] in
  check_bool "mixed class detected" false (is_ok (Properties.single_class app plan))

let test_duration_and_property3 () =
  let app = fixture () in
  let plan = [ [ Comm.write ~task:0 ~label:0 ]; [ Comm.write ~task:2 ~label:1 ] ] in
  let p = App.platform app in
  let expected =
    Time.(
      (2 * Platform.lambda_o p)
      + Platform.dma_copy_time p 64
      + Platform.dma_copy_time p 128)
  in
  check_int "duration" expected (Properties.duration app plan);
  check_bool "property 3 holds with slack" true
    (is_ok (Properties.property3 app ~gap:(ms 10) plan));
  check_bool "property 3 violated when gap too small" false
    (is_ok (Properties.property3 app ~gap:(Time.of_us 10) plan))

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

(* For random period pairs, the necessary-instant sets respect their
   defining semantics. *)
let prop_eta_writes_serve_all_reads =
  QCheck.Test.make ~name:"every read is served by a necessary write" ~count:200
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (twu, tcu) ->
      let tw = ms twu and tc = ms tcu in
      let h = Time.lcm tw tc in
      let writes = Eta.write_instants ~tw ~tc in
      (* for every read instant v*tc in [0, 2h), the last write at/before it
         must be in the necessary set (mod h) *)
      let ok = ref true in
      for v = 0 to (2 * h / tc) - 1 do
        let r = v * tc in
        let last_write = r / tw * tw in
        if not (List.mem (last_write mod h) writes) then ok := false
      done;
      !ok)

let prop_eta_reads_cover_all_writes =
  QCheck.Test.make ~name:"every write is consumed by a necessary read" ~count:200
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (twu, tcu) ->
      let tw = ms twu and tc = ms tcu in
      let h = Time.lcm tw tc in
      let reads = Eta.read_instants ~tw ~tc in
      let ok = ref true in
      for v = 0 to (h / tw) - 1 do
        let w = v * tw in
        let first_read = (w + tc - 1) / tc * tc in
        if not (List.mem (first_read mod h) reads) then ok := false
      done;
      !ok)

(* failure injection: structured corruptions of a valid plan must be
   caught by the corresponding checker *)
let prop_checkers_catch_corruption =
  QCheck.Test.make ~name:"property checkers catch injected corruption"
    ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, kind) ->
      let st = Random.State.make [| seed |] in
      let app = fixture () in
      let g = Groups.compute app in
      let c0 = Groups.s0 g in
      let plan = Giotto.singleton_transfers app c0 in
      let arr = Array.of_list plan in
      let n = Array.length arr in
      match kind with
      | 0 ->
        (* drop a random transfer: well-formedness must fail *)
        let k = Random.State.int st n in
        let mutilated =
          Array.to_list (Array.of_list plan) |> List.filteri (fun i _ -> i <> k)
        in
        Result.is_error (Properties.well_formed ~expected:c0 mutilated)
      | 1 ->
        (* duplicate a random transfer: well-formedness must fail *)
        let k = Random.State.int st n in
        Result.is_error
          (Properties.well_formed ~expected:c0 (arr.(k) :: plan))
      | _ ->
        (* move a random read before every write: Property 1 or 2 fails
           whenever the read's counterpart write is in the plan *)
        let reads =
          List.filter
            (fun grp -> List.exists (fun c -> c.Comm.kind = Comm.Read) grp)
            plan
        in
        (match reads with
         | [] -> true
         | _ ->
           let k = Random.State.int st (List.length reads) in
           let victim = List.nth reads k in
           let rest = List.filter (fun grp -> grp != victim) plan in
           let corrupted = victim :: rest in
           Result.is_error (Properties.property1 corrupted)
           || Result.is_error (Properties.property2 corrupted)))

let prop_giotto_satisfies_properties =
  QCheck.Test.make ~name:"giotto singleton plans satisfy Properties 1-2"
    ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      (* random small app: 4 tasks on 2 cores, random edges *)
      let st = Random.State.make [| seed |] in
      let periods = [| 10; 20; 40; 80 |] in
      let tasks =
        List.init 4 (fun i ->
            Task.make ~id:i ~name:(Printf.sprintf "t%d" i)
              ~period:(ms periods.(Random.State.int st 4))
              ~wcet:Time.zero ~core:(i mod 2))
      in
      let labels = ref [] in
      let next = ref 0 in
      for w = 0 to 3 do
        for r = 0 to 3 do
          if w <> r && w mod 2 <> r mod 2 && Random.State.bool st then begin
            labels :=
              Label.make ~id:!next ~name:(Printf.sprintf "l%d" !next)
                ~size:(8 * (1 + Random.State.int st 16))
                ~writer:w ~readers:[ r ]
              :: !labels;
            incr next
          end
        done
      done;
      let app =
        App.make
          ~platform:(Platform.make ~n_cores:2 ())
          ~tasks
          ~labels:(List.rev !labels)
      in
      let g = Groups.compute app in
      Groups.check_s0_superset g
      && List.for_all
           (fun (p : Groups.pattern) ->
             let plan = Giotto.singleton_transfers app p.Groups.comms in
             is_ok (Properties.well_formed ~expected:p.Groups.comms plan)
             && is_ok (Properties.single_class app plan)
             && is_ok (Properties.property1 plan)
             && is_ok (Properties.property2 plan))
           (Groups.patterns g))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_eta_writes_serve_all_reads;
        prop_eta_reads_cover_all_writes;
        prop_giotto_satisfies_properties;
        prop_checkers_catch_corruption;
      ]
  in
  Alcotest.run "let_sem"
    [
      ( "eta",
        [
          Alcotest.test_case "equal periods" `Quick test_eta_equal_periods;
          Alcotest.test_case "oversampled writer" `Quick test_eta_oversampled_writer;
          Alcotest.test_case "oversampled reader" `Quick test_eta_oversampled_reader;
          Alcotest.test_case "non-harmonic" `Quick test_eta_non_harmonic;
          Alcotest.test_case "non-harmonic symmetric" `Quick test_eta_non_harmonic_sym;
          Alcotest.test_case "membership" `Quick test_eta_membership;
          Alcotest.test_case "invalid periods" `Quick test_eta_invalid;
        ] );
      ( "groups",
        [
          Alcotest.test_case "C(s0)" `Quick test_groups_s0;
          Alcotest.test_case "C(t) subset of C(s0)" `Quick test_groups_subsets;
          Alcotest.test_case "C(10ms)" `Quick test_groups_at_10ms;
          Alcotest.test_case "G^W / G^R" `Quick test_groups_g_write_read;
          Alcotest.test_case "instants" `Quick test_groups_instants;
          Alcotest.test_case "patterns" `Quick test_groups_patterns;
          Alcotest.test_case "intra-core only" `Quick test_groups_intra_core_only;
        ] );
      ( "comm",
        [
          Alcotest.test_case "memories and classes" `Quick test_comm_memories;
          Alcotest.test_case "periodicity over H" `Quick test_comms_at_periodicity;
          Alcotest.test_case "pattern gap hand-checked" `Quick
            test_pattern_gap_hand_checked;
        ] );
      ( "giotto",
        [
          Alcotest.test_case "order" `Quick test_giotto_order;
          Alcotest.test_case "singleton transfers" `Quick test_giotto_singletons;
          Alcotest.test_case "per-core sequences" `Quick test_giotto_per_core;
        ] );
      ( "properties",
        [
          Alcotest.test_case "giotto plan valid" `Quick test_properties_giotto_plan_valid;
          Alcotest.test_case "property 1 violation" `Quick test_property1_violation;
          Alcotest.test_case "property 1 same transfer" `Quick
            test_property1_same_transfer_index;
          Alcotest.test_case "property 2 violation" `Quick test_property2_violation;
          Alcotest.test_case "property 2 cross-instant" `Quick
            test_property2_cross_instant_ok;
          Alcotest.test_case "well-formedness" `Quick test_well_formed_violations;
          Alcotest.test_case "single class" `Quick test_single_class_violation;
          Alcotest.test_case "duration and property 3" `Quick
            test_duration_and_property3;
        ] );
      ("qcheck", qsuite);
    ]
