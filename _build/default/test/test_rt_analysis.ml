(* Tests for response-time analysis and the sensitivity procedure. *)

open Rt_model
open Rt_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ms = Time.of_ms

(* classic example: C = (1, 2, 3), T = (4, 8, 16) on one core.
   R1 = 1; R2 = 2 + 1*ceil(3/4)... fixpoint: R2 = 3 (2 + 1); R3: 3 + ... *)
let classic () =
  let platform = Platform.make ~n_cores:1 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"a" ~period:(ms 4) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"b" ~period:(ms 8) ~wcet:(ms 2) ~core:0;
      Task.make ~id:2 ~name:"c" ~period:(ms 16) ~wcet:(ms 3) ~core:0;
    ]
  in
  App.make ~platform ~tasks ~labels:[]

let test_rta_classic () =
  let app = classic () in
  let jitter = Rta.no_jitter app in
  check_int "R(a)" (ms 1) (Option.get (Rta.response_time app ~jitter 0));
  check_int "R(b)" (ms 3) (Option.get (Rta.response_time app ~jitter 1));
  (* R(c) = 3 + ceil(R/4)*1 + ceil(R/8)*2: R=6 -> 3+2+2=7 -> 3+2+2=7:
     check 7: ceil(7/4)=2, ceil(7/8)=1 -> 3+2+2 = 7. *)
  check_int "R(c)" (ms 7) (Option.get (Rta.response_time app ~jitter 2))

let test_rta_priority_order () =
  let app = classic () in
  let a = App.task app 0 and b = App.task app 1 in
  check_bool "shorter period wins" true (Rta.higher_priority a b);
  check_bool "tie broken by id" true
    (Rta.higher_priority a
       (Task.make ~id:5 ~name:"x" ~period:(ms 4) ~wcet:(ms 1) ~core:0))

let test_rta_jitter_effect () =
  let app = classic () in
  let jitter = Rta.no_jitter app in
  jitter.(0) <- ms 1;
  (* task b now sees up to ceil((R + 1)/4) interfering jobs of a *)
  let r_b = Option.get (Rta.response_time app ~jitter 1) in
  check_bool "jitter increases interference" true (r_b >= ms 3)

let test_rta_unschedulable () =
  let platform = Platform.make ~n_cores:1 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"hog" ~period:(ms 4) ~wcet:(ms 3) ~core:0;
      Task.make ~id:1 ~name:"late" ~period:(ms 8) ~wcet:(ms 4) ~core:0;
    ]
  in
  let app = App.make ~platform ~tasks ~labels:[] in
  let jitter = Rta.no_jitter app in
  check_bool "hog fits" true (Rta.response_time app ~jitter 0 <> None);
  check_bool "late does not" true (Rta.response_time app ~jitter 1 = None);
  check_bool "system unschedulable" false (Rta.schedulable app ~jitter)

let test_rta_partitioned_isolation () =
  (* tasks on different cores do not interfere *)
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"a" ~period:(ms 4) ~wcet:(ms 3) ~core:0;
      Task.make ~id:1 ~name:"b" ~period:(ms 4) ~wcet:(ms 3) ~core:1;
    ]
  in
  let app = App.make ~platform ~tasks ~labels:[] in
  let jitter = Rta.no_jitter app in
  check_int "R(b) without cross-core interference" (ms 3)
    (Option.get (Rta.response_time app ~jitter 1));
  check_bool "schedulable" true (Rta.schedulable app ~jitter)

let test_slack () =
  let app = classic () in
  check_int "S(a)" (ms 3) (Option.get (Rta.slack app 0));
  check_int "S(c)" (ms 9) (Option.get (Rta.slack app 2))

let test_sensitivity_gamma () =
  let app = classic () in
  match Sensitivity.gammas app ~alpha:0.5 with
  | None -> Alcotest.fail "expected schedulable"
  | Some s ->
    check_int "gamma(a) = 0.5 * 3ms" (Time.of_us 1500) s.Sensitivity.gamma.(0);
    check_bool "still schedulable with jitter" true s.Sensitivity.schedulable

let test_sensitivity_sweep () =
  let app = classic () in
  let sweep = Sensitivity.sweep app in
  check_int "five alphas" 5 (List.length sweep);
  List.iter
    (fun (_, s) -> check_bool "all defined" true (s <> None))
    sweep

let test_sensitivity_invalid_alpha () =
  let app = classic () in
  check_bool "alpha > 1 rejected" true
    (try
       ignore (Sensitivity.gammas app ~alpha:1.5);
       false
     with Invalid_argument _ -> true)

let test_waters_schedulable () =
  let app = Workload.Waters2019.make () in
  check_bool "waters schedulable at zero jitter" true
    (Rta.schedulable app ~jitter:(Rta.no_jitter app));
  (* every alpha in the paper's sweep yields schedulable gammas *)
  List.iter
    (fun (alpha, s) ->
      match s with
      | Some s ->
        check_bool
          (Printf.sprintf "schedulable at alpha=%.1f" alpha)
          true s.Sensitivity.schedulable
      | None -> Alcotest.fail "gamma undefined")
    (Sensitivity.sweep app)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* response times grow monotonically with higher-priority jitter *)
let prop_rta_monotone_in_jitter =
  QCheck.Test.make ~name:"response time monotone in jitter" ~count:100
    QCheck.(pair (int_range 0 3) (int_range 0 2))
    (fun (jit_ms, task) ->
      let app = classic () in
      let j0 = Rta.no_jitter app in
      let j1 = Rta.no_jitter app in
      Array.iteri (fun i _ -> j1.(i) <- ms jit_ms) j1;
      match (Rta.response_time app ~jitter:j0 task, Rta.response_time app ~jitter:j1 task) with
      | Some r0, Some r1 -> r1 >= r0
      | Some _, None -> true (* jitter can break schedulability *)
      | None, _ -> false)

(* gamma scales linearly with alpha *)
let prop_gamma_linear_in_alpha =
  QCheck.Test.make ~name:"gamma proportional to alpha" ~count:50
    QCheck.(int_range 1 10)
    (fun tenths ->
      let alpha = float_of_int tenths /. 10.0 in
      let app = classic () in
      match (Sensitivity.gammas app ~alpha, Sensitivity.gammas app ~alpha:0.1) with
      | Some s, Some base ->
        Array.for_all2
          (fun g b ->
            (* g = alpha * S and b = 0.1 * S, so g ~ tenths * b *)
            abs (g - (tenths * b)) <= tenths)
          s.Sensitivity.gamma base.Sensitivity.gamma
      | _ -> false)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_rta_monotone_in_jitter; prop_gamma_linear_in_alpha ]
  in
  Alcotest.run "rt_analysis"
    [
      ( "rta",
        [
          Alcotest.test_case "classic response times" `Quick test_rta_classic;
          Alcotest.test_case "priority order" `Quick test_rta_priority_order;
          Alcotest.test_case "jitter effect" `Quick test_rta_jitter_effect;
          Alcotest.test_case "unschedulable" `Quick test_rta_unschedulable;
          Alcotest.test_case "partitioned isolation" `Quick
            test_rta_partitioned_isolation;
          Alcotest.test_case "slack" `Quick test_slack;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "gamma derivation" `Quick test_sensitivity_gamma;
          Alcotest.test_case "alpha sweep" `Quick test_sensitivity_sweep;
          Alcotest.test_case "invalid alpha" `Quick test_sensitivity_invalid_alpha;
          Alcotest.test_case "waters schedulability" `Quick test_waters_schedulable;
        ] );
      ("properties", qsuite);
    ]
