(* Tests for the WATERS 2019 case-study encoding and the random workload
   generator. *)

open Rt_model
open Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_waters_structure () =
  let app = Waters2019.make () in
  check_int "nine tasks" 9 (App.num_tasks app);
  check_int "four cores" 4 (App.platform app).Platform.n_cores;
  check_int "hyperperiod 13.2s" (Time.of_ms 13200) (App.hyperperiod app);
  (* periods from the challenge *)
  let period name = (App.task_by_name app name).Task.period in
  check_int "DASM 5ms" (Time.of_ms 5) (period "DASM");
  check_int "CAN 10ms" (Time.of_ms 10) (period "CAN");
  check_int "EKF 15ms" (Time.of_ms 15) (period "EKF");
  check_int "LID 33ms" (Time.of_ms 33) (period "LID");
  check_int "LDET 66ms" (Time.of_ms 66) (period "LDET");
  check_int "DET 200ms" (Time.of_ms 200) (period "DET");
  check_int "LOC 400ms" (Time.of_ms 400) (period "LOC")

let test_waters_fig2_order () =
  check_int "nine entries" 9 (List.length Waters2019.fig2_order);
  Alcotest.(check (list string)) "order"
    [ "LID"; "DASM"; "CAN"; "EKF"; "PLAN"; "SFM"; "LOC"; "LDET"; "DET" ]
    (List.map (fun i -> Waters2019.task_names.(i)) Waters2019.fig2_order)

let test_waters_flows () =
  let app = Waters2019.make () in
  check_int "eleven labels" 11 (App.num_labels app);
  (* two flows are intra-core (EKF->PLAN and DASM->CAN) *)
  check_int "nine inter-core labels" 9 (List.length (App.inter_core_labels app));
  (* single-writer and at most one reader per core (MILP requirement) *)
  List.iter
    (fun (l : Label.t) ->
      let cores = List.map (App.core_of app) (App.inter_core_readers app l) in
      check_bool "one reader per core" true
        (List.length cores = List.length (List.sort_uniq Int.compare cores)))
    (App.labels app)

let test_waters_memory_fit () =
  let app = Waters2019.make () in
  Alcotest.(check (list string)) "fits in scratchpads" []
    (App.check_memory_fit app)

let test_waters_labels_per_edge () =
  let app1 = Waters2019.make () in
  let app4 = Waters2019.make ~labels_per_edge:4 () in
  check_int "4x labels" (4 * App.num_labels app1) (App.num_labels app4);
  (* splitting preserves total bytes per flow *)
  let total app =
    List.fold_left (fun acc (l : Label.t) -> acc + l.Label.size) 0 (App.labels app)
  in
  check_int "same total bytes" (total app1) (total app4)

let test_waters_scale () =
  let app1 = Waters2019.make () in
  let app2 = Waters2019.make ~scale:2.0 () in
  let size app name =
    (List.find (fun (l : Label.t) -> l.Label.name = name) (App.labels app))
      .Label.size
  in
  check_int "scaled lidar payload" (2 * size app1 "LID_LOC") (size app2 "LID_LOC")

let test_waters_invalid_args () =
  check_bool "labels_per_edge >= 1" true
    (try
       ignore (Waters2019.make ~labels_per_edge:0 ());
       false
     with Invalid_argument _ -> true);
  check_bool "scale > 0" true
    (try
       ignore (Waters2019.make ~scale:0.0 ());
       false
     with Invalid_argument _ -> true)

let test_generator_deterministic () =
  let a = Generator.random ~seed:7 () in
  let b = Generator.random ~seed:7 () in
  check_int "same tasks" (App.num_tasks a) (App.num_tasks b);
  check_int "same labels" (App.num_labels a) (App.num_labels b);
  List.iter2
    (fun (x : Label.t) (y : Label.t) ->
      check_int "same sizes" x.Label.size y.Label.size)
    (App.labels a) (App.labels b)

let test_generator_structure () =
  let config = { Generator.default_config with Generator.n_tasks = 8; n_cores = 3 } in
  let app = Generator.random ~seed:3 ~config () in
  check_int "eight tasks" 8 (App.num_tasks app);
  (* all labels cross cores *)
  List.iter
    (fun (l : Label.t) ->
      check_bool "inter-core" true (App.is_inter_core app l))
    (App.labels app);
  (* utilization within the configured budget per core *)
  Array.iter
    (fun u -> check_bool "utilization bounded" true (u <= 0.55))
    (App.total_utilization_per_core app)

let test_generator_invalid () =
  check_bool "needs 2 tasks" true
    (try
       ignore
         (Generator.random
            ~config:{ Generator.default_config with Generator.n_tasks = 1 }
            ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Automotive generator (WATERS 2015 statistics)                       *)
(* ------------------------------------------------------------------ *)

let test_automotive_structure () =
  let app = Automotive.generate () in
  check_int "twelve tasks" 12 (App.num_tasks app);
  check_int "four cores" 4 (App.platform app).Platform.n_cores;
  (* every period is from the published grid *)
  let grid = List.map (fun (p, _) -> Time.of_ms p) Automotive.period_distribution in
  List.iter
    (fun (t : Task.t) ->
      check_bool "period from grid" true (List.mem t.Task.period grid))
    (App.tasks app);
  (* label sizes stay in the signal range *)
  List.iter
    (fun (l : Label.t) ->
      check_bool "signal size" true (l.Label.size >= 1 && l.Label.size <= 64))
    (App.labels app)

let test_automotive_deterministic () =
  let a = Automotive.generate ~seed:7 () in
  let b = Automotive.generate ~seed:7 () in
  check_int "same labels" (App.num_labels a) (App.num_labels b);
  let c = Automotive.generate ~seed:8 () in
  (* different seed: extremely unlikely to coincide on everything *)
  check_bool "different seeds differ" true
    (App.num_labels a <> App.num_labels c
    || List.exists2
         (fun (x : Task.t) (y : Task.t) -> x.Task.period <> y.Task.period)
         (App.tasks a) (App.tasks c))

let test_automotive_harmonic_bias () =
  (* the 1/2/10/20/100/200/1000 grid makes most pairs harmonic *)
  let app = Automotive.generate ~seed:3 () in
  check_bool "mostly harmonic" true (Automotive.harmonic_ratio app > 0.5)

let test_automotive_schedulable_and_usable () =
  let app = Automotive.generate ~seed:11 () in
  check_bool "schedulable" true
    (Rt_analysis.Rta.schedulable app ~jitter:(Rt_analysis.Rta.no_jitter app));
  let groups = Let_sem.Groups.compute app in
  check_bool "s0 superset invariant" true (Let_sem.Groups.check_s0_superset groups);
  (* the whole pipeline runs end to end on the generated workload *)
  match Rt_analysis.Sensitivity.gammas app ~alpha:0.5 with
  | None -> Alcotest.fail "gammas undefined"
  | Some s ->
    (match
       Letdma.Heuristic.solve app groups ~gamma:s.Rt_analysis.Sensitivity.gamma
     with
     | Ok sol ->
       check_bool "plan transfers" true (Letdma.Solution.num_transfers sol > 0)
     | Error e -> Alcotest.fail e)

let test_automotive_invalid () =
  check_bool "needs 2 cores" true
    (try
       ignore
         (Automotive.generate
            ~config:{ Automotive.default_config with Automotive.n_cores = 1 }
            ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_uunifast_sums_to_u =
  QCheck.Test.make ~name:"uunifast shares sum to the target" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let shares = Generator.uunifast st n 0.7 in
      List.length shares = n
      && List.for_all (fun u -> u >= 0.0 && u <= 0.7 +. 1e-9) shares
      && Float.abs (List.fold_left ( +. ) 0.0 shares -. 0.7) < 1e-9)

let prop_generated_apps_valid =
  QCheck.Test.make ~name:"generated apps pass validation and analysis"
    ~count:50
    QCheck.(int_range 0 5000)
    (fun seed ->
      let app = Generator.random ~seed () in
      (* App.make already validated; additionally run the analyses *)
      let groups = Let_sem.Groups.compute app in
      Let_sem.Groups.check_s0_superset groups
      && App.check_memory_fit app = []
      && Rt_analysis.Rta.schedulable app ~jitter:(Rt_analysis.Rta.no_jitter app))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_uunifast_sums_to_u; prop_generated_apps_valid ]
  in
  Alcotest.run "workload"
    [
      ( "waters2019",
        [
          Alcotest.test_case "structure" `Quick test_waters_structure;
          Alcotest.test_case "fig2 order" `Quick test_waters_fig2_order;
          Alcotest.test_case "flows" `Quick test_waters_flows;
          Alcotest.test_case "memory fit" `Quick test_waters_memory_fit;
          Alcotest.test_case "labels per edge" `Quick test_waters_labels_per_edge;
          Alcotest.test_case "payload scale" `Quick test_waters_scale;
          Alcotest.test_case "invalid arguments" `Quick test_waters_invalid_args;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "structure" `Quick test_generator_structure;
          Alcotest.test_case "invalid config" `Quick test_generator_invalid;
        ] );
      ( "automotive",
        [
          Alcotest.test_case "structure" `Quick test_automotive_structure;
          Alcotest.test_case "deterministic" `Quick test_automotive_deterministic;
          Alcotest.test_case "harmonic bias" `Quick test_automotive_harmonic_bias;
          Alcotest.test_case "end-to-end usable" `Quick
            test_automotive_schedulable_and_usable;
          Alcotest.test_case "invalid config" `Quick test_automotive_invalid;
        ] );
      ("properties", qsuite);
    ]
