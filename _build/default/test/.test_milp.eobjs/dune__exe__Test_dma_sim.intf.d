test/test_dma_sim.mli:
