test/test_mem_layout.mli:
