test/test_rt_analysis.ml: Alcotest App Array List Option Platform Printf QCheck QCheck_alcotest Rt_analysis Rt_model Rta Sensitivity Task Time Workload
