test/test_dma_sim.ml: Alcotest App Comm Dma_sim Giotto Groups Label Let_sem List Platform Properties QCheck QCheck_alcotest Rt_model Sim String Task Time Trace Vcd Workload
