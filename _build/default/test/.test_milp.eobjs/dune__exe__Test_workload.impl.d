test/test_workload.ml: Alcotest App Array Automotive Float Generator Int Label Let_sem Letdma List Platform QCheck QCheck_alcotest Random Rt_analysis Rt_model Task Time Waters2019 Workload
