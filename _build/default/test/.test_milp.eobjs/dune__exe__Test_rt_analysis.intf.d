test/test_rt_analysis.mli:
