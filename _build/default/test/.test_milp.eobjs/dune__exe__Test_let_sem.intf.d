test/test_let_sem.mli:
