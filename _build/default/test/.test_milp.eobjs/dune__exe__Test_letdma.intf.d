test/test_letdma.mli:
