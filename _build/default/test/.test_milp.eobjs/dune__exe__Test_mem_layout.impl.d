test/test_mem_layout.ml: Alcotest Allocation App Comm Gen Int Label Layout Let_sem List Mem_layout Platform QCheck QCheck_alcotest Result Rt_model Task Time
