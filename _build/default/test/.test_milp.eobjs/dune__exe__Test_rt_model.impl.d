test/test_rt_model.ml: Alcotest App Array Fmt Gen Label List Platform Printf QCheck QCheck_alcotest Rt_model Task Time
