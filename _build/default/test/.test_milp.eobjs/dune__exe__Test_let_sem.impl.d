test/test_let_sem.ml: Alcotest App Array Comm Eta Fmt Giotto Groups Label Let_sem List Platform Printf Properties QCheck QCheck_alcotest Random Result Rt_model Task Time
