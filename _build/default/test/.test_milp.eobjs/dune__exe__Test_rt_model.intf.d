test/test_rt_model.mli:
