test/test_milp.ml: Alcotest Array Float Gen List Milp Option Printf QCheck QCheck_alcotest Random Result String
