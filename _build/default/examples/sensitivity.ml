(* The sensitivity procedure of Section VII: derive per-task
   data-acquisition deadlines gamma_i = alpha * S_i from the response-time
   slack, sweep alpha in {0.1 .. 0.5}, and report which configurations
   admit a feasible transfer plan.

   Run with: dune exec examples/sensitivity.exe *)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let app = Workload.Waters2019.make () in
  Fmt.pr "Response-time analysis at zero jitter:@.%a@.@."
    (Rt_analysis.Rta.pp_analysis app)
    ();
  let results = Letdma.Experiment.alpha_sweep ~time_limit_s:15.0 app in
  Fmt.pr "%a@." Letdma.Report.alpha_sweep results
