examples/random_workload.mli:
