examples/quickstart.ml: App Array Dma_sim Fmt Groups Label Let_sem Letdma List Platform Rt_analysis Rt_model Task Time
