examples/multi_dma.ml: App Array Dma_sim Fmt Groups Let_sem Letdma List Rt_analysis Rt_model Task Time Workload
