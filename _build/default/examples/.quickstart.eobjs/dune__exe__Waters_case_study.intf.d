examples/waters_case_study.mli:
