examples/fig1_schedule.mli:
