examples/waters_case_study.ml: App Fmt Letdma Logs Rt_model Workload
