examples/multi_dma.mli:
