examples/random_workload.ml: App Array Comm Dma_sim Float Fmt Groups Let_sem Letdma List Logs Rt_model Task Time Workload
