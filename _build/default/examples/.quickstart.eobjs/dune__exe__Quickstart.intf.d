examples/quickstart.mli:
