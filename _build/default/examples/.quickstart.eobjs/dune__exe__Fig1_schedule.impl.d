examples/fig1_schedule.ml: Letdma
