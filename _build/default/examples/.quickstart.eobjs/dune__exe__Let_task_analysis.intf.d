examples/let_task_analysis.mli:
