examples/let_task_analysis.ml: App Fmt Groups Let_sem Letdma List Platform Rt_analysis Rt_model Task Time Workload
