examples/sensitivity.mli:
