examples/sensitivity.ml: Fmt Letdma Logs Rt_analysis Workload
