(* Quickstart: model a small two-core application, derive its necessary
   LET communications, plan DMA transfers with the greedy heuristic, and
   measure data-acquisition latencies in the simulator.

   Run with: dune exec examples/quickstart.exe *)

open Rt_model
open Let_sem

let () =
  (* 1. Platform: two cores with scratchpads, one DMA (paper defaults:
        o_DP = 3.36us, o_ISR = 10us). *)
  let platform = Platform.make ~n_cores:2 () in

  (* 2. Tasks: a 10ms sensor producer on core 0, a 10ms controller and a
        40ms logger on core 1. *)
  let tasks =
    [
      Task.make ~id:0 ~name:"sensor" ~period:(Time.of_ms 10)
        ~wcet:(Time.of_ms 2) ~core:0;
      Task.make ~id:1 ~name:"control" ~period:(Time.of_ms 10)
        ~wcet:(Time.of_ms 3) ~core:1;
      Task.make ~id:2 ~name:"logger" ~period:(Time.of_ms 40)
        ~wcet:(Time.of_ms 5) ~core:1;
    ]
  in

  (* 3. Labels: the sensor sample crosses cores (DMA-managed); the
        controller's setpoint goes back to core 0 and is also read by the
        logger on the controller's own core (that pair uses double
        buffering, not the DMA). *)
  let labels =
    [
      Label.make ~id:0 ~name:"sample" ~size:65536 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"setpoint" ~size:64 ~writer:1 ~readers:[ 0; 2 ];
    ]
  in
  let app = App.make ~platform ~tasks ~labels in
  Fmt.pr "%a@.@." App.pp app;

  (* 4. Necessary LET communications (Algorithm 1): note how the logger's
        oversampled reads are skipped. *)
  let groups = Groups.compute app in
  Fmt.pr "%a@.@." Groups.pp groups;

  (* 5. Data-acquisition deadlines from the sensitivity analysis. *)
  let gamma =
    match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
    | Some s -> s.Rt_analysis.Sensitivity.gamma
    | None -> failwith "task set unschedulable"
  in

  (* 6. Plan transfers and allocate memory with the heuristic. *)
  let solution =
    match Letdma.Heuristic.solve app groups ~gamma with
    | Ok s -> s
    | Error e -> failwith e
  in
  Fmt.pr "%a@.@." (Letdma.Solution.pp app) solution;

  (* 7. Simulate one hyperperiod under the DMA protocol and under the
        Giotto-CPU baseline, and compare latencies. *)
  let proposed =
    Letdma.Baselines.run app groups Letdma.Baselines.Proposed
      ~solution:(Some solution)
  in
  let giotto =
    Letdma.Baselines.run app groups Letdma.Baselines.Giotto_cpu ~solution:None
  in
  List.iter
    (fun (t : Task.t) ->
      let l m = Time.to_us_float m.Dma_sim.Sim.lambda.(t.Task.id) in
      Fmt.pr "%-8s lambda: %8.1fus (proposed)  %8.1fus (Giotto-CPU)@."
        t.Task.name (l proposed) (l giotto))
    (App.tasks app)
