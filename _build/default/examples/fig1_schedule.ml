(* The paper's Fig. 1: the proposed DMA protocol vs the original Giotto
   ordering on the 6-task, 2-core example, rendered as ASCII Gantt charts.

   Run with: dune exec examples/fig1_schedule.exe *)

let () = print_endline (Letdma.Fig1.render ())
