(* Extension beyond the paper: the protocol on platforms with several DMA
   channels. Transfers without LET-ordering dependencies (Properties 1-2)
   run in parallel; dependent chains stay serialized.

   Run with: dune exec examples/multi_dma.exe *)

open Rt_model
open Let_sem

let () =
  let app = Workload.Waters2019.make () in
  let groups = Groups.compute app in
  let gamma =
    match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
    | Some s -> s.Rt_analysis.Sensitivity.gamma
    | None -> failwith "unschedulable"
  in
  let solution =
    match Letdma.Heuristic.solve app groups ~gamma with
    | Ok s -> s
    | Error e -> failwith e
  in
  let schedule = Letdma.Solution.schedule app groups solution in
  let channels = [ 1; 2; 4; 8 ] in
  let metrics =
    List.map
      (fun c -> Dma_sim.Sim.run app groups (Dma_sim.Sim.Dma_multi (c, schedule)))
      channels
  in
  Fmt.pr "data-acquisition latency (us) with 1/2/4/8 DMA channels:@.";
  Fmt.pr "%-6s" "task";
  List.iter (fun c -> Fmt.pr " %9d-ch" c) channels;
  Fmt.pr "@.";
  List.iter
    (fun (t : Task.t) ->
      Fmt.pr "%-6s" t.Task.name;
      List.iter
        (fun m -> Fmt.pr " %12.1f" (Time.to_us_float m.Dma_sim.Sim.lambda.(t.Task.id)))
        metrics;
      Fmt.pr "@.")
    (App.tasks app);
  (* tasks whose transfers form a dependency chain cannot improve; verify
     the monotonicity invariant while we are here *)
  List.iter
    (fun (t : Task.t) ->
      let lams =
        List.map (fun m -> m.Dma_sim.Sim.lambda.(t.Task.id)) metrics
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> Time.compare b a <= 0 && mono rest
        | _ -> true
      in
      assert (mono lams))
    (App.tasks app);
  Fmt.pr "@.(latencies are monotonically non-increasing in the channel count)@."
