(* Section V.C of the paper: schedulability of the application tasks when
   the LET tasks' DMA-programming segments (generalized multiframe,
   self-suspending) are modelled as sporadic interference at the highest
   priority.

   Run with: dune exec examples/let_task_analysis.exe *)

open Rt_model
open Let_sem

let () =
  let app = Workload.Waters2019.make () in
  let groups = Groups.compute app in
  let gamma =
    match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
    | Some s -> s.Rt_analysis.Sensitivity.gamma
    | None -> failwith "unschedulable"
  in
  let solution =
    match Letdma.Heuristic.solve app groups ~gamma with
    | Ok s -> s
    | Error e -> failwith e
  in
  let platform = App.platform app in
  Fmt.pr "LET-task segments per core (C = o_DP + o_ISR = %a each):@."
    Time.pp (Platform.lambda_o platform);
  for core = 0 to platform.Platform.n_cores - 1 do
    let segs = Letdma.Let_task.segments app groups solution ~core in
    Fmt.pr "core P%d: %d segments@.%a@." (core + 1) (List.length segs)
      Letdma.Let_task.pp_segments segs
  done;
  let jitter = gamma in
  Fmt.pr "@.response times with vs without LET-task interference (jitter = gamma):@.";
  List.iter
    (fun (t : Task.t) ->
      let base = Rt_analysis.Rta.response_time app ~jitter t.Task.id in
      let full =
        Letdma.Let_task.response_time_with_let app groups solution ~jitter
          t.Task.id
      in
      match (base, full) with
      | Some b, Some f ->
        Fmt.pr "  %-6s R = %8.1fus -> %8.1fus (+%.1fus)@." t.Task.name
          (Time.to_us_float b) (Time.to_us_float f)
          (Time.to_us_float Time.(f - b))
      | _ -> Fmt.pr "  %-6s diverged@." t.Task.name)
    (App.tasks app);
  Fmt.pr "@.system schedulable including the LET machinery: %b@."
    (Letdma.Let_task.schedulable_with_let app groups solution ~jitter)
