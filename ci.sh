#!/bin/sh
# Tier-1 gate: full build + test suite, then a short bench smoke that
# exercises the parallel paths (domain pool, portfolio racing, sweep).
#
# OCAMLRUNPARAM s=8M (minor heap, in words) matters for the smoke: with
# the default minor heap, multi-domain runs spend most of their time in
# minor-GC stop-the-world synchronisation on small machines (measured
# ~4x on a 1-core container), which would push the smoke solves past
# their per-instance deadlines. See EXPERIMENTS.md (PARALLEL).
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (parallel paths) =="
dune build bench/main.exe
OCAMLRUNPARAM="s=8M${OCAMLRUNPARAM:+,$OCAMLRUNPARAM}" \
  timeout 300 ./_build/default/bench/main.exe --smoke --json BENCH

echo "== perf smoke guard (FIG1 wall clock) =="
# The smoke writes machine-readable per-section timings (BENCH_FIG1.json,
# BENCH_PARALLEL.json). Guard against gross LP hot-path regressions: the
# FIG1 smoke solves in well under a second on the CI container, so a 60 s
# ceiling only trips on gross slowdowns, never on machine jitter.
fig1_time=$(sed -n 's/.*"time_s": *\([0-9.eE+-]*\).*/\1/p' BENCH_FIG1.json)
echo "FIG1 smoke time: ${fig1_time}s (ceiling 60s)"
awk -v t="$fig1_time" 'BEGIN { exit !(t > 0 && t < 60.0) }' || {
  echo "FAIL: FIG1 smoke took ${fig1_time}s (ceiling 60s)"; exit 1; }

echo "== warm-start guard (WARMSTART pivots) =="
# BENCH_WARMSTART.json (written by the smoke above) records cold vs warm
# best-first B&B on the WATERS OBJ-DMAT instance. The warm run must land
# on the same objective with at least 25% fewer total simplex pivots.
ws_field() { # $1 = mode, $2 = field name
  tr '{' '\n' < BENCH_WARMSTART.json \
    | grep '"instance":"waters-x1/OBJ-DMAT"' \
    | grep "\"mode\":\"$1\"" \
    | sed -n "s/.*\"$2\":\([0-9.eE+-]*\).*/\1/p"
}
cold_p=$(ws_field cold pivots); warm_p=$(ws_field warm pivots)
cold_o=$(ws_field cold obj);    warm_o=$(ws_field warm obj)
echo "warm-start: cold ${cold_p} pivots (obj ${cold_o}), warm ${warm_p} pivots (obj ${warm_o})"
[ -n "$cold_o" ] && [ "$cold_o" = "$warm_o" ] || {
  echo "FAIL: warm objective '${warm_o}' != cold objective '${cold_o}'"; exit 1; }
awk -v c="$cold_p" -v w="$warm_p" 'BEGIN { exit !(c > 0 && w <= 0.75 * c) }' || {
  echo "FAIL: warm pivots ${warm_p} not <= 75% of cold ${cold_p}"; exit 1; }

echo "== trace smoke (structured JSONL events) =="
# A tiny traced solve end-to-end, then validate every machine-readable
# artifact: the solve trace, the bench FIG1 trace, and all BENCH_*.json
# files. trace-check parses each line/document with a strict JSON reader
# (NaN/Infinity are not JSON and are rejected) and checks per-domain
# timestamp monotonicity on .jsonl traces.
timeout 120 ./_build/default/bin/letdma_cli.exe solve \
  --time-limit 5 --jobs 1 --trace ci_trace.jsonl >/dev/null
./_build/default/bin/letdma_cli.exe trace-check \
  ci_trace.jsonl BENCH_FIG1_TRACE.jsonl BENCH_*.json
rm -f ci_trace.jsonl

echo "== chaos gate (checkpoint / interrupt / resume) =="
# Durable-solve round trip through the CLI: an uninterrupted baseline, a
# run killed mid-tree (exit 7, checkpoint left on disk), and a resume
# that must land on the exact same objective and cumulative node count.
# The instance (small generator workload, seed 5, OBJ-DMAT) certifies at
# the 1e-6 residual boundary, so `solve` exits 5 (certification) rather
# than 0 — the gate tolerates exactly that and compares the greppable
# solver lines instead.
CLI=./_build/default/bin/letdma_cli.exe
CK=ci_chaos_ck.json
CHAOS="--workload small --seed 5 --objective dmat --time-limit 120"
rm -f "$CK"
$CLI solve $CHAOS --checkpoint "$CK" > ci_chaos_base.out || [ $? -eq 5 ]
grep -q '^status: optimal$' ci_chaos_base.out || {
  echo "FAIL: baseline durable solve not optimal"; exit 1; }
[ ! -f "$CK" ] || {
  echo "FAIL: conclusive solve left its checkpoint behind"; exit 1; }
$CLI solve $CHAOS --checkpoint "$CK" --interrupt-after 300 \
  > ci_chaos_int.out && rc=0 || rc=$?
[ "$rc" -eq 7 ] || {
  echo "FAIL: interrupted solve exited $rc, want 7"; exit 1; }
[ -f "$CK" ] || { echo "FAIL: interrupt left no checkpoint"; exit 1; }
$CLI resume $CHAOS --checkpoint "$CK" > ci_chaos_res.out || [ $? -eq 5 ]
grep -q '^status: optimal$' ci_chaos_res.out || {
  echo "FAIL: resumed solve not optimal"; exit 1; }
base_obj=$(sed -n 's/^objective: //p' ci_chaos_base.out)
res_obj=$(sed -n 's/^objective: //p' ci_chaos_res.out)
base_nodes=$(sed -n 's/^nodes: //p' ci_chaos_base.out)
res_nodes=$(sed -n 's/^nodes: //p' ci_chaos_res.out)
echo "chaos gate: baseline obj ${base_obj} (${base_nodes} nodes), resumed obj ${res_obj} (${res_nodes} nodes)"
[ -n "$base_obj" ] && [ "$base_obj" = "$res_obj" ] || {
  echo "FAIL: resumed objective '${res_obj}' != baseline '${base_obj}'"; exit 1; }
[ -n "$base_nodes" ] && [ "$base_nodes" = "$res_nodes" ] || {
  echo "FAIL: resumed node count '${res_nodes}' != baseline '${base_nodes}'"; exit 1; }
[ ! -f "$CK" ] || {
  echo "FAIL: conclusive resume left its checkpoint behind"; exit 1; }
rm -f ci_chaos_base.out ci_chaos_int.out ci_chaos_res.out

echo "== service smoke (daemon, cache hit, malformed request) =="
# One daemon session over stdin/stdout: the same solve twice, one
# malformed request, then EOF. The daemon must answer all three lines
# (malformed -> structured error, not a crash), the second solve must be
# answered from the cache with a byte-identical %.17g objective, and the
# drained EOF shutdown must exit 0.
printf '%s\n' \
  '{"id":"s1","op":"solve","workload":"small","seed":7,"deadline_s":120,"class":"gold"}' \
  '{"id":"s2","op":"solve","workload":"small","seed":7,"deadline_s":120,"class":"gold"}' \
  '{"id":"s3","op":"solve","oops":true}' \
  | timeout 200 $CLI serve --jobs 1 > ci_service.out || {
    echo "FAIL: serve exited $? (want 0 after EOF drain)"; exit 1; }
[ "$(wc -l < ci_service.out)" -eq 3 ] || {
  echo "FAIL: expected 3 responses, got:"; cat ci_service.out; exit 1; }
grep -q '"id":"s2".*"cache":"hit"' ci_service.out || {
  echo "FAIL: repeated solve was not a cache hit"; cat ci_service.out; exit 1; }
s1_core=$(sed -n 's/.*"id":"s1".*\("tier".*\)/\1/p' ci_service.out)
s2_core=$(sed -n 's/.*"id":"s2".*\("tier".*\)/\1/p' ci_service.out)
echo "service smoke: cached core ${s2_core}"
[ -n "$s1_core" ] && [ "$s1_core" = "$s2_core" ] || {
  echo "FAIL: cache hit not byte-identical:"; cat ci_service.out; exit 1; }
grep -q '"id":"s3","status":"error"' ci_service.out || {
  echo "FAIL: malformed request did not get a structured error"; cat ci_service.out; exit 1; }
rm -f ci_service.out

echo "== ci.sh: all green =="
