#!/bin/sh
# Tier-1 gate: full build + test suite, then a short bench smoke that
# exercises the parallel paths (domain pool, portfolio racing, sweep).
#
# OCAMLRUNPARAM s=8M (minor heap, in words) matters for the smoke: with
# the default minor heap, multi-domain runs spend most of their time in
# minor-GC stop-the-world synchronisation on small machines (measured
# ~4x on a 1-core container), which would push the smoke solves past
# their per-instance deadlines. See EXPERIMENTS.md (PARALLEL).
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (parallel paths) =="
dune build bench/main.exe
OCAMLRUNPARAM="s=8M${OCAMLRUNPARAM:+,$OCAMLRUNPARAM}" \
  timeout 300 ./_build/default/bench/main.exe --smoke

echo "== ci.sh: all green =="
