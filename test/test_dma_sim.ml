(* Tests for the discrete-event simulator: burst timing arithmetic,
   per-task vs barrier readiness, CPU models, overrun queueing, traces. *)

open Rt_model
open Let_sem
open Dma_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* 2 cores, 2 tasks, single flow t0 -> t1 of one 1000-byte label, both at
   10ms. Platform tuned for easy arithmetic: o_DP = 1us, o_ISR = 2us,
   DMA 1 ns/B, CPU 4 ns/B. *)
let platform () =
  Platform.make ~o_dp:(Time.of_us 1) ~o_isr:(Time.of_us 2) ~dma_ns_per_byte:1.0
    ~cpu_ns_per_byte:4.0 ~n_cores:2 ()

let fixture () =
  let tasks =
    [
      Task.make ~id:0 ~name:"prod" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1)
        ~core:0;
      Task.make ~id:1 ~name:"cons" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1)
        ~core:1;
    ]
  in
  let labels =
    [ Label.make ~id:0 ~name:"data" ~size:1000 ~writer:0 ~readers:[ 1 ] ]
  in
  App.make ~platform:(platform ()) ~tasks ~labels

let singleton_schedule app groups time =
  Giotto.singleton_transfers app (Groups.comms_at groups time)

(* per transfer: 1us programming + 1us copy (1000B at 1ns/B) + 2us ISR *)
let test_dma_protocol_latency () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run app groups (Sim.Dma_protocol (singleton_schedule app groups)) in
  (* W then R: producer ready after transfer 0 (4us); consumer after
     transfer 1 (8us) *)
  check_int "producer lambda" (Time.of_us 4) (Sim.lambda_of m 0);
  check_int "consumer lambda" (Time.of_us 8) (Sim.lambda_of m 1);
  check_int "transfers per instant x instants" 2 m.Sim.transfers_issued;
  check_int "bytes" 2000 m.Sim.bytes_moved

let test_dma_barrier_latency () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run app groups (Sim.Dma_barrier (singleton_schedule app groups)) in
  (* both tasks wait for the full burst *)
  check_int "producer lambda" (Time.of_us 8) (Sim.lambda_of m 0);
  check_int "consumer lambda" (Time.of_us 8) (Sim.lambda_of m 1)

let test_cpu_serialized () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run app groups (Sim.Cpu_copy Sim.Serialized) in
  (* two copies of 1000B at 4ns/B, serialized: 8us for everyone *)
  check_int "producer lambda" (Time.of_us 8) (Sim.lambda_of m 0);
  check_int "consumer lambda" (Time.of_us 8) (Sim.lambda_of m 1);
  check_int "busy" (Time.of_us 8) m.Sim.busy

let test_cpu_parallel_phases () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run app groups (Sim.Cpu_copy Sim.Parallel_phases) in
  (* write phase 4us on core 0, barrier, read phase 4us on core 1 *)
  check_int "producer lambda" (Time.of_us 8) (Sim.lambda_of m 0);
  check_int "consumer lambda" (Time.of_us 8) (Sim.lambda_of m 1)

(* grouping reduces latency: a single transfer carrying both comms is not
   possible (different directions), but a task with two labels grouped in
   one transfer pays the overhead once *)
let test_grouping_pays_overhead_once () =
  let platform = platform () in
  let tasks =
    [
      Task.make ~id:0 ~name:"w" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1)
        ~core:0;
      Task.make ~id:1 ~name:"r" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1)
        ~core:1;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"a" ~size:500 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"b" ~size:500 ~writer:0 ~readers:[ 1 ];
    ]
  in
  let app = App.make ~platform ~tasks ~labels in
  let groups = Groups.compute app in
  let grouped time =
    let comms = Comm.Set.elements (Groups.comms_at groups time) in
    let writes, reads =
      List.partition (fun c -> c.Comm.kind = Comm.Write) comms
    in
    List.filter (fun g -> g <> []) [ writes; reads ]
  in
  let singles time =
    Giotto.singleton_transfers app (Groups.comms_at groups time)
  in
  let mg = Sim.run app groups (Sim.Dma_protocol grouped) in
  let ms_ = Sim.run app groups (Sim.Dma_protocol singles) in
  (* grouped: 2 transfers x (1 + 1 + 2)us = 8us; singleton: 4 x 3.5us = 14us *)
  check_int "grouped consumer" (Time.of_us 8) (Sim.lambda_of mg 1);
  check_int "singleton consumer" (Time.of_us 14) (Sim.lambda_of ms_ 1);
  check_bool "grouping wins" true
    (Time.compare (Sim.lambda_of mg 1) (Sim.lambda_of ms_ 1) < 0)

(* a task with no communications is ready immediately under the protocol,
   but waits under the Giotto barrier *)
let test_unrelated_task_readiness () =
  let platform = platform () in
  let tasks =
    [
      Task.make ~id:0 ~name:"w" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:0;
      Task.make ~id:1 ~name:"r" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:1;
      Task.make ~id:2 ~name:"idle" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:1;
    ]
  in
  let labels =
    [ Label.make ~id:0 ~name:"d" ~size:1000 ~writer:0 ~readers:[ 1 ] ]
  in
  let app = App.make ~platform ~tasks ~labels in
  let groups = Groups.compute app in
  let mp = Sim.run app groups (Sim.Dma_protocol (singleton_schedule app groups)) in
  let mb = Sim.run app groups (Sim.Dma_barrier (singleton_schedule app groups)) in
  check_int "protocol: unrelated task immediate" 0 (Sim.lambda_of mp 2);
  check_bool "barrier: unrelated task delayed" true
    (Time.compare (Sim.lambda_of mb 2) Time.zero > 0)

(* when a burst overruns the next instant, the DMA queues: latencies at
   the next instant grow *)
let test_overrun_queues () =
  let platform =
    Platform.make ~o_dp:(Time.of_ms 3) ~o_isr:(Time.of_ms 3) ~n_cores:2 ()
  in
  let tasks =
    [
      Task.make ~id:0 ~name:"w" ~period:(Time.of_ms 10) ~wcet:Time.zero ~core:0;
      Task.make ~id:1 ~name:"r" ~period:(Time.of_ms 5) ~wcet:Time.zero ~core:1;
    ]
  in
  let labels =
    [ Label.make ~id:0 ~name:"d" ~size:100 ~writer:0 ~readers:[ 1 ] ]
  in
  let app = App.make ~platform ~tasks ~labels in
  let groups = Groups.compute app in
  (* each transfer takes >= 6ms; at t=0 both W and R occur (12ms+), so the
     burst overruns the 5ms consumer instants *)
  let m = Sim.run app groups (Sim.Dma_protocol (singleton_schedule app groups)) in
  check_bool "consumer latency exceeds one period" true
    (Time.compare (Sim.lambda_of m 1) (Time.of_ms 5) > 0)

(* two independent producer/consumer pairs: a second DMA channel halves
   the critical path, while a single channel matches the base protocol
   exactly *)
let multi_fixture () =
  let platform = platform () in
  let tasks =
    [
      Task.make ~id:0 ~name:"w1" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:0;
      Task.make ~id:1 ~name:"r1" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:1;
      Task.make ~id:2 ~name:"w2" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:0;
      Task.make ~id:3 ~name:"r2" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1) ~core:1;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"d1" ~size:1000 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"d2" ~size:1000 ~writer:2 ~readers:[ 3 ];
    ]
  in
  App.make ~platform ~tasks ~labels

let test_multi_channel_single_equals_protocol () =
  let app = multi_fixture () in
  let groups = Groups.compute app in
  let schedule = singleton_schedule app groups in
  let m1 = Sim.run app groups (Sim.Dma_protocol schedule) in
  let mm = Sim.run app groups (Sim.Dma_multi (1, schedule)) in
  List.iter
    (fun (t : Task.t) ->
      check_int t.Task.name
        (Sim.lambda_of m1 t.Task.id)
        (Sim.lambda_of mm t.Task.id))
    (App.tasks app)

let test_multi_channel_parallelism () =
  let app = multi_fixture () in
  let groups = Groups.compute app in
  let schedule = singleton_schedule app groups in
  let m1 = Sim.run app groups (Sim.Dma_multi (1, schedule)) in
  let m2 = Sim.run app groups (Sim.Dma_multi (2, schedule)) in
  (* single channel: 4 transfers back to back of 4us each; r2's read is
     last at 16us. two channels: the two independent chains overlap:
     each chain = W then R = 8us *)
  check_int "one channel, last consumer" (Time.of_us 16) (Sim.lambda_of m1 3);
  check_int "two channels, last consumer" (Time.of_us 8) (Sim.lambda_of m2 3);
  (* no task is ever worse with more channels *)
  List.iter
    (fun (t : Task.t) ->
      check_bool "monotone" true
        (Time.compare (Sim.lambda_of m2 t.Task.id) (Sim.lambda_of m1 t.Task.id)
        <= 0))
    (App.tasks app)

let test_multi_channel_respects_dependencies () =
  (* a single chain (W then R on the same label) cannot be parallelized *)
  let app = fixture () in
  let groups = Groups.compute app in
  let schedule = singleton_schedule app groups in
  let m1 = Sim.run app groups (Sim.Dma_multi (1, schedule)) in
  let m4 = Sim.run app groups (Sim.Dma_multi (4, schedule)) in
  check_int "consumer unchanged" (Sim.lambda_of m1 1) (Sim.lambda_of m4 1)

let test_multi_channel_invalid () =
  let app = fixture () in
  let groups = Groups.compute app in
  check_bool "zero channels rejected" true
    (try
       ignore (Sim.run app groups (Sim.Dma_multi (0, singleton_schedule app groups)));
       false
     with Invalid_argument _ -> true)

let test_trace_recording () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m =
    Sim.run ~record_trace:true app groups
      (Sim.Dma_protocol (singleton_schedule app groups))
  in
  check_bool "trace non-empty" true (m.Sim.trace <> []);
  (* events are time-sorted *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      Time.compare (Trace.start_of a) (Trace.start_of b) <= 0 && sorted rest
    | [ _ ] | [] -> true
  in
  check_bool "trace sorted" true (sorted m.Sim.trace);
  (* programming, copy, ISR and readiness all appear *)
  let has pred = List.exists pred m.Sim.trace in
  check_bool "has program" true
    (has (function Trace.Dma_program _ -> true | _ -> false));
  check_bool "has copy" true
    (has (function Trace.Dma_copy _ -> true | _ -> false));
  check_bool "has isr" true
    (has (function Trace.Dma_isr _ -> true | _ -> false));
  check_bool "has ready" true
    (has (function Trace.Task_ready _ -> true | _ -> false));
  (* the Gantt renderer produces one lane per core plus the DMA *)
  let gantt = Trace.render_gantt app m.Sim.trace in
  check_int "gantt lines" 4
    (List.length (String.split_on_char '\n' (String.trim gantt)))

(* Regression (PR 4): the Gantt renderer clamped every span to at least
   one cell ([max c0 c1]), so zero-duration events were painted one cell
   wide — an instantaneous DMA program looked like real bus occupancy.
   Zero-width spans must paint nothing; instantaneous [Task_ready] marks
   keep their one-cell [^]; and each lane must have its own backing
   buffer (the init was once duplicated, aliasing rows). *)
let test_gantt_zero_width () =
  let app = fixture () in
  let t = Time.of_us 10 in
  (* zero-duration program on the DMA lane + a ready mark on core 1 *)
  let events =
    [
      Trace.Dma_program { core = 0; index = 0; start = t; finish = t };
      Trace.Task_ready { task = 1; time = Time.of_us 20 };
    ]
  in
  let gantt = Trace.render_gantt ~width:40 app events in
  let lines = String.split_on_char '\n' (String.trim gantt) in
  (* header + DMA lane + one lane per core *)
  check_int "gantt lines" 4 (List.length lines);
  let lane prefix =
    match List.find_opt (fun l -> String.length l >= 3 && String.sub l 0 3 = prefix) lines with
    | Some l -> l
    | None -> Alcotest.fail ("missing lane " ^ prefix)
  in
  check_bool "zero-width program paints nothing" false
    (String.contains (lane "DMA") 'p');
  check_bool "ready mark still painted" true (String.contains (lane "P2 ") '^');
  check_bool "lanes do not alias" false (String.contains (lane "P1 ") '^');
  (* a span shorter than one cell still shows its cell *)
  let events =
    [
      Trace.Dma_program
        { core = 0; index = 0; start = t; finish = Time.(t + of_ns 1) };
      Trace.Task_ready { task = 1; time = Time.of_us 20 };
    ]
  in
  let gantt = Trace.render_gantt ~width:40 app events in
  check_bool "sub-cell span shows one cell" true (String.contains gantt 'p')

let test_vcd_export () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m =
    Sim.run ~record_trace:true app groups
      (Sim.Dma_protocol (singleton_schedule app groups))
  in
  let vcd = Vcd.to_vcd app m.Sim.trace in
  let has sub =
    let n = String.length vcd and k = String.length sub in
    let rec go i = i + k <= n && (String.sub vcd i k = sub || go (i + 1)) in
    go 0
  in
  check_bool "has header" true (has "$timescale 1ns $end");
  check_bool "declares dma_prog" true (has "dma_prog");
  check_bool "declares per-task ready events" true (has "ready_prod");
  check_bool "has dumpvars" true (has "$dumpvars");
  (* timestamps present and the first one is #0 *)
  check_bool "starts at time 0" true (has "#0\n");
  (* a transfer index change is dumped as an 8-bit vector *)
  check_bool "vector change" true (has "b00000000");
  (* deterministic: same trace, same dump *)
  Alcotest.(check string) "deterministic" vcd (Vcd.to_vcd app m.Sim.trace)

let test_vcd_cpu_mode () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run ~record_trace:true app groups (Sim.Cpu_copy Sim.Serialized) in
  let vcd = Vcd.to_vcd app m.Sim.trace in
  let has sub =
    let n = String.length vcd and k = String.length sub in
    let rec go i = i + k <= n && (String.sub vcd i k = sub || go (i + 1)) in
    go 0
  in
  check_bool "core copy activity dumped" true (has "core1_copy")

let test_no_trace_by_default () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run app groups (Sim.Dma_protocol (singleton_schedule app groups)) in
  check_bool "no trace" true (m.Sim.trace = [])

let test_jobs_enumeration () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run app groups (Sim.Dma_protocol (singleton_schedule app groups)) in
  (* hyperperiod 10ms: one job per task *)
  check_int "jobs" 2 (List.length m.Sim.jobs);
  List.iter
    (fun j ->
      check_bool "ready after release" true
        (Time.compare j.Sim.ready j.Sim.release >= 0))
    m.Sim.jobs

let test_horizon_override () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m =
    Sim.run ~horizon:(Time.of_ms 30) app groups
      (Sim.Dma_protocol (singleton_schedule app groups))
  in
  check_int "3 jobs per task" 6 (List.length m.Sim.jobs)

let test_max_lambda_ratio () =
  let app = fixture () in
  let groups = Groups.compute app in
  let m = Sim.run app groups (Sim.Dma_protocol (singleton_schedule app groups)) in
  (* consumer: 8us / 10ms = 8e-4 *)
  Alcotest.(check (float 1e-9)) "ratio" 8.0e-4 (Sim.max_lambda_ratio app m)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_faults_make_validation () =
  let raises name f =
    check_bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  raises "negative stretch" (fun () ->
      Faults.make ~latency_stretch:(-0.1) ~seed:1 ());
  raises "fail rate of 1" (fun () ->
      Faults.make ~transient_fail_rate:1.0 ~seed:1 ());
  raises "negative fail rate" (fun () ->
      Faults.make ~transient_fail_rate:(-0.5) ~seed:1 ());
  raises "drop rate of 1.5" (fun () ->
      Faults.make ~drop_isr_rate:1.5 ~seed:1 ());
  raises "negative retries" (fun () -> Faults.make ~max_retries:(-1) ~seed:1 ());
  raises "negative intensity" (fun () -> Faults.at_intensity (-1.0));
  check_bool "none is zero" true (Faults.is_zero Faults.none);
  check_bool "intensity 0 is zero" true (Faults.is_zero (Faults.at_intensity 0.0));
  check_bool "intensity 1 is not zero" false
    (Faults.is_zero (Faults.at_intensity 1.0))

(* The acceptance bar for the fault model: injecting a zero-rate model
   must reproduce the fault-free simulation byte for byte — same events,
   same timestamps, same rendered VCD. *)
let test_zero_intensity_trace_identical () =
  let app = fixture () in
  let groups = Groups.compute app in
  let mode = Sim.Dma_protocol (singleton_schedule app groups) in
  let plain = Sim.run ~record_trace:true app groups mode in
  List.iter
    (fun faults ->
      let faulted = Sim.run ~record_trace:true ~faults app groups mode in
      check_bool "trace byte-identical" true (plain.Sim.trace = faulted.Sim.trace);
      Alcotest.(check string) "rendered VCD byte-identical"
        (Vcd.to_vcd app plain.Sim.trace)
        (Vcd.to_vcd app faulted.Sim.trace);
      Alcotest.(check string) "rendered Gantt byte-identical"
        (Trace.render_gantt app plain.Sim.trace)
        (Trace.render_gantt app faulted.Sim.trace);
      Array.iteri
        (fun i l -> check_int "lambda identical" l faulted.Sim.lambda.(i))
        plain.Sim.lambda;
      check_int "busy identical" plain.Sim.busy faulted.Sim.busy;
      (* the injector ran but recorded no faults *)
      match faulted.Sim.fault_stats with
      | None -> Alcotest.fail "fault stats missing"
      | Some s ->
        check_int "no retries" 0 s.Faults.retries;
        check_int "no dropped isrs" 0 s.Faults.dropped_isrs;
        check_int "no stretch" 0 (Time.to_ns s.Faults.stretch_total))
    [ Faults.none; Faults.at_intensity 0.0; Faults.at_intensity ~seed:7 0.0 ];
  check_bool "no stats without injection" true (plain.Sim.fault_stats = None)

let test_fault_injection_deterministic () =
  let app = fixture () in
  let groups = Groups.compute app in
  let mode = Sim.Dma_protocol (singleton_schedule app groups) in
  let faults = Faults.at_intensity ~seed:42 2.0 in
  let a = Sim.run ~record_trace:true ~faults app groups mode in
  let b = Sim.run ~record_trace:true ~faults app groups mode in
  check_bool "same seed, same trace" true (a.Sim.trace = b.Sim.trace);
  Array.iteri
    (fun i l -> check_int "same seed, same lambda" l b.Sim.lambda.(i))
    a.Sim.lambda

let test_faults_only_delay () =
  let app = fixture () in
  let groups = Groups.compute app in
  let mode = Sim.Dma_protocol (singleton_schedule app groups) in
  let plain = Sim.run app groups mode in
  let faults = Faults.at_intensity ~seed:42 5.0 in
  let faulted = Sim.run ~faults app groups mode in
  (* faults add time to transfers; no task can become ready earlier *)
  Array.iteri
    (fun i l ->
      check_bool "latency never shrinks under faults" true
        (Time.compare faulted.Sim.lambda.(i) l >= 0))
    plain.Sim.lambda;
  (* at this intensity the injector must actually have fired *)
  match faulted.Sim.fault_stats with
  | None -> Alcotest.fail "fault stats missing"
  | Some s ->
    check_bool "some fault recorded" true
      (s.Faults.retries > 0 || s.Faults.dropped_isrs > 0
      || Time.compare s.Faults.stretch_total Time.zero > 0)

let test_robustness_sweep () =
  let app = fixture () in
  let groups = Groups.compute app in
  let schedule = singleton_schedule app groups in
  let intensities = [ 0.0; 0.5; 2.0 ] in
  let reports = Robustness.sweep ~seed:42 ~intensities app groups schedule in
  check_int "one report per intensity" 3 (List.length reports);
  List.iter2
    (fun want (r : Robustness.report) ->
      Alcotest.(check (float 0.0)) "intensity echoed" want r.Robustness.intensity;
      check_bool "worst ratio nonnegative" true (r.Robustness.worst_ratio >= 0.0);
      (* consistency: a zero overrun iff Property 3 held *)
      check_bool "overrun consistent with P3" true
        (r.Robustness.property3_ok
         = (Time.compare r.Robustness.max_overrun Time.zero <= 0)))
    intensities reports;
  (* this fixture has milliseconds of slack per 10ms period: everything
     survives modest fault intensity *)
  let r0 = List.hd reports in
  check_bool "fault-free run survives" true (Robustness.survives r0);
  check_bool "ordering at zero" true r0.Robustness.ordering_ok;
  check_bool "no break at these intensities" true
    (Robustness.first_break ~seed:42 ~intensities app groups schedule = None);
  (* determinism of the whole sweep under a fixed seed *)
  let again = Robustness.sweep ~seed:42 ~intensities app groups schedule in
  List.iter2
    (fun (a : Robustness.report) (b : Robustness.report) ->
      check_bool "sweep deterministic" true (a = b))
    reports again

(* a workload whose nominal burst already fills most of the gap breaks
   once copies stretch: first_break pinpoints the intensity *)
let test_robustness_first_break () =
  let platform =
    Platform.make ~o_dp:(Time.of_us 1) ~o_isr:(Time.of_us 2)
      ~dma_ns_per_byte:1.0 ~cpu_ns_per_byte:4.0 ~n_cores:2 ()
  in
  let tasks =
    [
      Task.make ~id:0 ~name:"w" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1)
        ~core:0;
      Task.make ~id:1 ~name:"r" ~period:(Time.of_ms 10) ~wcet:(Time.of_ms 1)
        ~core:1;
    ]
  in
  (* 4 MB at 1 ns/B: each copy is 4ms, the nominal burst ~8ms of a 10ms
     gap — any meaningful stretch overruns *)
  let labels =
    [ Label.make ~id:0 ~name:"big" ~size:4_000_000 ~writer:0 ~readers:[ 1 ] ]
  in
  let app = App.make ~platform ~tasks ~labels in
  let groups = Groups.compute app in
  let schedule = singleton_schedule app groups in
  let intensities = [ 0.0; 5.0 ] in
  (match Robustness.first_break ~seed:42 ~intensities app groups schedule with
   | None -> Alcotest.fail "expected a break at intensity 5"
   | Some (x, r) ->
     Alcotest.(check (float 0.0)) "breaks at 5" 5.0 x;
     check_bool "report fails survives" false (Robustness.survives r);
     check_bool "a timing property broke" true
       (not r.Robustness.property3_ok || not r.Robustness.deadlines_ok);
     (* ordering is structural: it survives any intensity *)
     check_bool "ordering survives" true r.Robustness.ordering_ok);
  (* the report renders *)
  let reports = Robustness.sweep ~seed:42 ~intensities app groups schedule in
  List.iter
    (fun r -> check_bool "pp_report non-empty" true
        (String.length (Fmt.str "%a" Robustness.pp_report r) > 0))
    reports

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* zero-intensity injection is invisible on arbitrary workloads too *)
let prop_zero_intensity_invisible =
  QCheck.Test.make ~name:"zero-intensity faults reproduce fault-free run"
    ~count:20
    QCheck.(int_range 0 500)
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      let groups = Groups.compute app in
      let schedule time =
        Giotto.singleton_transfers app (Groups.comms_at groups time)
      in
      let mode = Sim.Dma_protocol schedule in
      let plain = Sim.run ~record_trace:true app groups mode in
      let faulted =
        Sim.run ~record_trace:true ~faults:(Faults.at_intensity ~seed 0.0) app
          groups mode
      in
      plain.Sim.trace = faulted.Sim.trace
      && plain.Sim.lambda = faulted.Sim.lambda)

(* barrier readiness dominates protocol readiness for every task *)
let prop_barrier_dominates_protocol =
  QCheck.Test.make ~name:"barrier latency >= protocol latency" ~count:25
    QCheck.(int_range 0 500)
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      let groups = Groups.compute app in
      if Comm.Set.is_empty (Groups.s0 groups) then true
      else begin
        let schedule time =
          Giotto.singleton_transfers app (Groups.comms_at groups time)
        in
        let mp = Sim.run app groups (Sim.Dma_protocol schedule) in
        let mb = Sim.run app groups (Sim.Dma_barrier schedule) in
        List.for_all
          (fun (t : Task.t) ->
            Time.compare
              (Sim.lambda_of mp t.Task.id)
              (Sim.lambda_of mb t.Task.id)
            <= 0)
          (App.tasks app)
      end)

(* more channels never hurt any task, on arbitrary workloads *)
let prop_multi_channel_monotone =
  QCheck.Test.make ~name:"latency monotone in DMA channel count" ~count:20
    QCheck.(pair (int_range 0 500) (int_range 2 4))
    (fun (seed, channels) ->
      let app = Workload.Generator.random ~seed () in
      let groups = Groups.compute app in
      let schedule time =
        Giotto.singleton_transfers app (Groups.comms_at groups time)
      in
      let m1 = Sim.run app groups (Sim.Dma_multi (1, schedule)) in
      let mk = Sim.run app groups (Sim.Dma_multi (channels, schedule)) in
      List.for_all
        (fun (t : Task.t) ->
          Time.compare
            (Sim.lambda_of mk t.Task.id)
            (Sim.lambda_of m1 t.Task.id)
          <= 0)
        (App.tasks app))

(* simulated busy time equals the analytic plan duration summed over
   instants *)
let prop_busy_matches_analytic_duration =
  QCheck.Test.make ~name:"busy time matches Properties.duration" ~count:25
    QCheck.(int_range 0 500)
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      let groups = Groups.compute app in
      let schedule time =
        Giotto.singleton_transfers app (Groups.comms_at groups time)
      in
      let m = Sim.run app groups (Sim.Dma_protocol schedule) in
      let expected =
        List.fold_left
          (fun acc t -> Time.(acc + Properties.duration app (schedule t)))
          Time.zero (Groups.instants groups)
      in
      Time.equal m.Sim.busy expected)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_barrier_dominates_protocol;
        prop_multi_channel_monotone;
        prop_busy_matches_analytic_duration;
        prop_zero_intensity_invisible;
      ]
  in
  Alcotest.run "dma_sim"
    [
      ( "timing",
        [
          Alcotest.test_case "protocol latency" `Quick test_dma_protocol_latency;
          Alcotest.test_case "barrier latency" `Quick test_dma_barrier_latency;
          Alcotest.test_case "cpu serialized" `Quick test_cpu_serialized;
          Alcotest.test_case "cpu parallel phases" `Quick test_cpu_parallel_phases;
          Alcotest.test_case "grouping pays overhead once" `Quick
            test_grouping_pays_overhead_once;
          Alcotest.test_case "unrelated task readiness" `Quick
            test_unrelated_task_readiness;
          Alcotest.test_case "overrun queues on the DMA" `Quick test_overrun_queues;
        ] );
      ( "multi-channel",
        [
          Alcotest.test_case "1 channel equals protocol" `Quick
            test_multi_channel_single_equals_protocol;
          Alcotest.test_case "independent chains overlap" `Quick
            test_multi_channel_parallelism;
          Alcotest.test_case "dependencies respected" `Quick
            test_multi_channel_respects_dependencies;
          Alcotest.test_case "invalid channel count" `Quick
            test_multi_channel_invalid;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "jobs enumeration" `Quick test_jobs_enumeration;
          Alcotest.test_case "horizon override" `Quick test_horizon_override;
          Alcotest.test_case "max lambda ratio" `Quick test_max_lambda_ratio;
        ] );
      ( "faults",
        [
          Alcotest.test_case "model validation" `Quick test_faults_make_validation;
          Alcotest.test_case "zero intensity is byte-identical" `Quick
            test_zero_intensity_trace_identical;
          Alcotest.test_case "deterministic under a seed" `Quick
            test_fault_injection_deterministic;
          Alcotest.test_case "faults only delay" `Quick test_faults_only_delay;
          Alcotest.test_case "robustness sweep" `Quick test_robustness_sweep;
          Alcotest.test_case "first break" `Quick test_robustness_first_break;
        ] );
      ( "trace",
        [
          Alcotest.test_case "recording" `Quick test_trace_recording;
          Alcotest.test_case "off by default" `Quick test_no_trace_by_default;
          Alcotest.test_case "zero-width spans paint nothing" `Quick
            test_gantt_zero_width;
          Alcotest.test_case "vcd export" `Quick test_vcd_export;
          Alcotest.test_case "vcd cpu mode" `Quick test_vcd_cpu_mode;
        ] );
      ("properties", qsuite);
    ]
