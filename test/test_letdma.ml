(* Tests for the core contribution: the MILP formulation (Constraints
   1-10), the lazy solver, solution decoding/encoding, the greedy
   heuristic, the baselines and the experiment pipeline. *)

open Rt_model
open Let_sem
open Letdma

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ms = Time.of_ms

(* 2 cores: t0 -> t1 (two labels), t1 -> t2 (one label), t2 on core 0.
   Mixed periods exercise the skip machinery. *)
let fixture () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"t0" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"t1" ~period:(ms 20) ~wcet:(ms 2) ~core:1;
      Task.make ~id:2 ~name:"t2" ~period:(ms 20) ~wcet:(ms 2) ~core:0;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"a" ~size:256 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"b" ~size:128 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:2 ~name:"c" ~size:512 ~writer:1 ~readers:[ 2 ];
    ]
  in
  App.make ~platform ~tasks ~labels

let gamma_for app alpha =
  match Rt_analysis.Sensitivity.gammas app ~alpha with
  | Some s -> s.Rt_analysis.Sensitivity.gamma
  | None -> Alcotest.fail "fixture unschedulable"

let solve_fixture ?options ?warm objective =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let warm =
    match warm with
    | Some true | None -> Heuristic.solve_unchecked app groups ~gamma
    | Some false -> None
  in
  (app, groups, gamma, Solve.solve ?options ~time_limit_s:20.0 ?warm objective app groups ~gamma)

(* ------------------------------------------------------------------ *)
(* Formulation                                                         *)
(* ------------------------------------------------------------------ *)

let test_formulation_build () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let inst = Formulation.make Formulation.No_obj app groups ~gamma in
  check_bool "has variables" true
    (Milp.Problem.num_vars inst.Formulation.problem > 0);
  check_bool "has constraints" true
    (Milp.Problem.num_constrs inst.Formulation.problem > 0);
  (* C(s0) = 3 writes + 3 reads *)
  check_int "comms" 6 (Array.length inst.Formulation.comms);
  (* classes: W core0, W core1, R core0, R core1 *)
  check_int "classes" 4 (Array.length inst.Formulation.classes);
  check_int "slots default to |C|" 6 inst.Formulation.g_max;
  (* the model passes its own validation *)
  Alcotest.(check (list string)) "no model issues" []
    (List.map
       (Fmt.str "%a" Milp.Problem.pp_issue)
       (Milp.Problem.validate inst.Formulation.problem))

(* Regression (PR 4): the MTZ position-linking rows (C5a/C5b) were
   emitted in [Hashtbl.iter] order, so the constraint sequence — and with
   it the simplex pivot trajectory and branch-and-bound node count — was
   hash-layout-dependent. The formulation now iterates sorted bindings:
   within each memory the C5a rows must appear in ascending
   (mem, pred, succ) key order, two builds of the same instance must
   produce identical constraint-name sequences, and two cold solves must
   explore identical node counts. *)
let test_formulation_deterministic_order () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let build () = Formulation.make Formulation.No_obj app groups ~gamma in
  let inst = build () in
  (* recover each C5a row's (mem, pred, succ) key from its variable id *)
  let rev = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace rev v k)
    inst.Formulation.next_var;
  let prefix = "C5a_" in
  let plen = String.length prefix in
  let keys = ref [] in
  Milp.Problem.iter_constrs
    (fun c ->
      let n = c.Milp.Problem.c_name in
      if String.length n > plen && String.sub n 0 plen = prefix then
        match int_of_string_opt (String.sub n plen (String.length n - plen)) with
        | Some v -> (
          match Hashtbl.find_opt rev v with
          | Some k -> keys := k :: !keys
          | None -> ())
        | None -> ())
    inst.Formulation.problem;
  let keys = List.rev !keys in
  check_bool "fixture has MTZ rows" true (keys <> []);
  let by_mem = Hashtbl.create 4 in
  List.iter
    (fun ((mi, _, _) as k) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_mem mi) in
      Hashtbl.replace by_mem mi (k :: prev))
    keys;
  Hashtbl.iter
    (fun _ ks ->
      let ks = List.rev ks in
      check_bool "C5a keys ascending per memory" true
        (ks = List.sort compare ks))
    by_mem;
  let names inst =
    let acc = ref [] in
    Milp.Problem.iter_constrs
      (fun c -> acc := c.Milp.Problem.c_name :: !acc)
      inst.Formulation.problem;
    List.rev !acc
  in
  Alcotest.(check (list string))
    "same constraint sequence across builds" (names inst) (names (build ()));
  (* cold solves: a warm incumbent would shortcut NO-OBJ with 0 nodes *)
  let solve () =
    (Solve.solve ~time_limit_s:20.0 Formulation.No_obj app groups ~gamma)
      .Solve.stats
      .Solve.nodes
  in
  check_int "same node count across solves" (solve ()) (solve ())

let test_formulation_gmax_too_small () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  check_bool "g_max below class count rejected" true
    (try
       ignore
         (Formulation.make
            ~options:{ Formulation.default_options with Formulation.g_max = Some 2 }
            Formulation.No_obj app groups ~gamma);
       false
     with Invalid_argument _ -> true)

let test_formulation_rejects_same_core_readers () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"w" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"r1" ~period:(ms 10) ~wcet:(ms 1) ~core:1;
      Task.make ~id:2 ~name:"r2" ~period:(ms 10) ~wcet:(ms 1) ~core:1;
    ]
  in
  let labels =
    [ Label.make ~id:0 ~name:"l" ~size:8 ~writer:0 ~readers:[ 1; 2 ] ]
  in
  let app = App.make ~platform ~tasks ~labels in
  let groups = Groups.compute app in
  let gamma = Array.make 3 (ms 1) in
  check_bool "two same-core readers rejected" true
    (try
       ignore (Formulation.make Formulation.No_obj app groups ~gamma);
       false
     with Invalid_argument _ -> true)

let test_encode_heuristic_feasible () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let inst = Formulation.make Formulation.No_obj app groups ~gamma in
  match Heuristic.solve_unchecked app groups ~gamma with
  | None -> Alcotest.fail "no heuristic plan"
  | Some sol ->
    (match Formulation.encode inst sol with
     | None -> Alcotest.fail "encode failed"
     | Some x ->
       Alcotest.(check (list string)) "heuristic point feasible" []
         (Milp.Problem.check_solution inst.Formulation.problem x))

let test_encode_feasible_with_full_c6 () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let inst =
    Formulation.make
      ~options:{ Formulation.default_options with Formulation.full_c6 = true }
      Formulation.No_obj app groups ~gamma
  in
  match Heuristic.solve_unchecked app groups ~gamma with
  | None -> Alcotest.fail "no heuristic plan"
  | Some sol ->
    (match Formulation.encode inst sol with
     | None -> Alcotest.fail "encode failed"
     | Some x ->
       Alcotest.(check (list string)) "feasible under full Constraint 6" []
         (Milp.Problem.check_solution inst.Formulation.problem x))

(* corrupting the heuristic plan must be caught by the model: swapping the
   last read before the writes violates Constraints 7/8 *)
let test_model_rejects_bad_order () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let inst = Formulation.make Formulation.No_obj app groups ~gamma in
  match Heuristic.solve_unchecked app groups ~gamma with
  | None -> Alcotest.fail "no heuristic plan"
  | Some sol ->
    let plan = Solution.s0_plan app sol in
    let reversed = List.rev plan in
    let slots = Array.of_list reversed in
    let bad = Solution.make ~allocation:(Solution.allocation sol) ~slots in
    (match Formulation.encode inst bad with
     | None -> () (* also acceptable: encode refuses *)
     | Some x ->
       check_bool "violations found" true
         (Milp.Problem.check_solution inst.Formulation.problem x <> []))

(* ------------------------------------------------------------------ *)
(* Solve                                                               *)
(* ------------------------------------------------------------------ *)

let test_solve_no_obj () =
  let app, groups, _gamma, r = solve_fixture Formulation.No_obj in
  (match r.Solve.solution with
   | Some sol ->
     Alcotest.(check (result unit string)) "validates" (Ok ())
       (Solution.validate app groups sol)
   | None -> Alcotest.fail "expected a solution");
  check_bool "status optimal" true (r.Solve.stats.Solve.status = Milp.Branch_bound.Optimal)

let test_solve_min_delay () =
  let app, groups, gamma, r = solve_fixture Formulation.Min_delay_ratio in
  match r.Solve.solution with
  | None -> Alcotest.fail "expected a solution"
  | Some sol ->
    Alcotest.(check (result unit string)) "validates" (Ok ())
      (Solution.validate app groups sol);
    (* the optimized max lambda/T never exceeds the heuristic's *)
    let ratio s =
      let lam = Solution.lambda_s0 app s in
      let worst = ref 0.0 in
      Array.iteri
        (fun i l ->
          let t = (App.task app i).Task.period in
          worst := Float.max !worst (float_of_int l /. float_of_int t))
        lam;
      !worst
    in
    (match Heuristic.solve_unchecked app groups ~gamma with
     | Some h -> check_bool "no worse than heuristic" true (ratio sol <= ratio h +. 1e-9)
     | None -> ())

let test_solve_min_transfers () =
  let app, groups, gamma, r = solve_fixture Formulation.Min_transfers in
  match r.Solve.solution with
  | None -> Alcotest.fail "expected a solution"
  | Some sol ->
    Alcotest.(check (result unit string)) "validates" (Ok ())
      (Solution.validate app groups sol);
    (match Heuristic.solve_unchecked ~granularity:Heuristic.Grouped app groups ~gamma with
     | Some h ->
       check_bool "at most the grouped heuristic's transfers" true
         (Solution.num_transfers sol <= Solution.num_transfers h)
     | None -> ())

let test_solve_without_warm () =
  let app, groups, _gamma, r = solve_fixture ~warm:false Formulation.No_obj in
  match r.Solve.solution with
  | None -> Alcotest.fail "expected a solution even without warm start"
  | Some sol ->
    Alcotest.(check (result unit string)) "validates" (Ok ())
      (Solution.validate app groups sol)

let test_solve_dfs_engine () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let warm = Heuristic.solve_unchecked app groups ~gamma in
  let r =
    Solve.solve ~engine:Solve.Dfs ~time_limit_s:20.0 ?warm Formulation.No_obj
      app groups ~gamma
  in
  match r.Solve.solution with
  | None -> Alcotest.fail "dfs engine found no solution"
  | Some sol ->
    Alcotest.(check (result unit string)) "validates" (Ok ())
      (Solution.validate app groups sol);
    check_bool "optimal (feasibility shortcut)" true
      (r.Solve.stats.Solve.status = Milp.Branch_bound.Optimal)

(* presolve is on by default; the reduction must not change what the
   solver returns on the seed example — the perturbation is keyed on
   stable row ids precisely so reduced and original models solve along
   identical trajectories (same node count, same assignment) *)
let test_solve_presolve_default_unchanged () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  (* no warm start: a warm incumbent triggers the feasibility shortcut on
     NO-OBJ and no search (hence no presolve) would run at all.
     [basis_pool:0] keeps both solves on the cold per-node path: a warm
     restore may land on a different (equally optimal) degenerate vertex
     of the reduced model, which legitimately changes the branching
     trajectory — warm-vs-cold agreement has its own tests. *)
  let solve presolve =
    Solve.solve ~presolve ~basis_pool:0 ~time_limit_s:20.0 Formulation.No_obj
      app groups ~gamma
  in
  let on = solve true and off = solve false in
  check_bool "both solved" true
    (on.Solve.solution <> None && off.Solve.solution <> None);
  check_bool "same status" true
    (on.Solve.stats.Solve.status = off.Solve.stats.Solve.status);
  check_int "same node count" off.Solve.stats.Solve.nodes
    on.Solve.stats.Solve.nodes;
  (match (on.Solve.x, off.Solve.x) with
   | Some a, Some b ->
     check_bool "same assignment" true
       (Array.length a = Array.length b
        && Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-9) a b)
   | _ -> Alcotest.fail "expected raw assignments");
  check_bool "presolve reduced something" true
    (on.Solve.stats.Solve.lp.Milp.Branch_bound.presolve_rounds > 0)

let test_pipeline_presolve_default_unchanged () =
  let app = fixture () in
  let run presolve =
    match Pipeline.run ~presolve ~budget_s:30.0 ~alpha:0.3 app with
    | Ok o -> o
    | Error f -> Alcotest.fail (Pipeline.failure_to_string f)
  in
  let on = run true and off = run false in
  check_bool "same rung" true (on.Pipeline.rung = off.Pipeline.rung);
  check_bool "same solution" true
    (Solution.allocation on.Pipeline.solution
     = Solution.allocation off.Pipeline.solution)

let test_solve_infeasible_gamma () =
  let app = fixture () in
  let groups = Groups.compute app in
  (* gamma far below one transfer's overhead: infeasible *)
  let gamma = Array.make (App.num_tasks app) (Time.of_us 1) in
  let r = Solve.solve ~time_limit_s:10.0 Formulation.No_obj app groups ~gamma in
  check_bool "no solution" true (r.Solve.solution = None);
  check_bool "infeasible status" true
    (r.Solve.stats.Solve.status = Milp.Branch_bound.Infeasible)

(* ------------------------------------------------------------------ *)
(* Solution                                                            *)
(* ------------------------------------------------------------------ *)

let test_solution_projection () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  match Heuristic.solve_unchecked app groups ~gamma with
  | None -> Alcotest.fail "no plan"
  | Some sol ->
    let c0 = Groups.s0 groups in
    List.iter
      (fun (p : Groups.pattern) ->
        let time = List.hd p.Groups.occurrences in
        let plan = Solution.plan_at app groups sol time in
        let comms = Comm.Set.of_list (List.concat plan) in
        check_bool "projection equals C(t)" true (Comm.Set.equal comms p.Groups.comms);
        check_bool "subset of s0" true (Comm.Set.subset comms c0))
      (Groups.patterns groups)

(* Theorem 1: under the protocol, the latency measured over the whole
   hyperperiod equals the latency at the synchronous instant s0. *)
let test_theorem1_lambda_peaks_at_s0 () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  match Heuristic.solve_unchecked app groups ~gamma with
  | None -> Alcotest.fail "no plan"
  | Some sol ->
    let analytic = Solution.lambda_s0 app sol in
    let m =
      Baselines.run app groups Baselines.Proposed ~solution:(Some sol)
    in
    Array.iteri
      (fun i l ->
        check_int
          (Printf.sprintf "lambda(%s)" (App.task app i).Task.name)
          l
          m.Dma_sim.Sim.lambda.(i))
      analytic

(* ------------------------------------------------------------------ *)
(* Heuristic                                                           *)
(* ------------------------------------------------------------------ *)

let test_heuristic_validates () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  match Heuristic.solve app groups ~gamma with
  | Ok sol ->
    Alcotest.(check (result unit string)) "validates" (Ok ())
      (Solution.validate app groups sol)
  | Error e -> Alcotest.fail e

let test_heuristic_grouped_fewer_transfers () =
  let app = Workload.Waters2019.make () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.2 in
  let per_task = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let grouped =
    Option.get
      (Heuristic.solve_unchecked ~granularity:Heuristic.Grouped app groups ~gamma)
  in
  check_bool "grouped not worse" true
    (Solution.num_transfers grouped <= Solution.num_transfers per_task);
  Alcotest.(check (result unit string)) "grouped still validates" (Ok ())
    (Solution.validate app groups grouped)

let test_heuristic_no_comms () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [ Task.make ~id:0 ~name:"t" ~period:(ms 10) ~wcet:(ms 1) ~core:0 ]
  in
  let app = App.make ~platform ~tasks ~labels:[] in
  let groups = Groups.compute app in
  check_bool "error on empty comms" true
    (Result.is_error (Heuristic.solve app groups ~gamma:[| ms 1 |]));
  check_bool "none on empty comms" true
    (Heuristic.solve_unchecked app groups ~gamma:[| ms 1 |] = None)

(* ------------------------------------------------------------------ *)
(* LET task analysis (Section V.C)                                     *)
(* ------------------------------------------------------------------ *)

let test_let_task_segments () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let p = App.platform app in
  List.iter
    (fun core ->
      let segs = Let_task.segments app groups sol ~core in
      (* every segment costs lambda_O of CPU time and recurs no faster
         than the fastest communicating period *)
      List.iter
        (fun s ->
          check_int "segment wcet = lambda_O" (Platform.lambda_o p)
            s.Let_task.wcet;
          check_bool "positive inter-arrival" true
            (s.Let_task.min_interarrival > 0))
        segs)
    [ 0; 1 ];
  (* all slots are accounted for across the cores *)
  let total =
    List.length (Let_task.segments app groups sol ~core:0)
    + List.length (Let_task.segments app groups sol ~core:1)
  in
  check_int "segments cover all transfers" (Solution.num_transfers sol) total

let test_let_task_interference_monotone () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let jitter = Rt_analysis.Rta.no_jitter app in
  List.iter
    (fun (t : Task.t) ->
      match
        ( Rt_analysis.Rta.response_time app ~jitter t.Task.id,
          Let_task.response_time_with_let app groups sol ~jitter t.Task.id )
      with
      | Some base, Some full ->
        check_bool "LET overhead non-negative" true (Time.compare full base >= 0)
      | _ -> Alcotest.fail "analysis diverged")
    (App.tasks app)

let test_let_task_schedulable () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  check_bool "schedulable with gamma jitter" true
    (Let_task.schedulable_with_let app groups sol ~jitter:gamma)

let test_let_task_overhead_waters () =
  let app = Workload.Waters2019.make () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.2 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let jitter = Rt_analysis.Rta.no_jitter app in
  (* on WATERS the LET machinery must not break schedulability *)
  check_bool "waters schedulable with LET overhead" true
    (Let_task.schedulable_with_let app groups sol ~jitter:gamma);
  (* and the per-task overhead is bounded by the worst burst *)
  List.iter
    (fun (t : Task.t) ->
      match Let_task.let_overhead app groups sol ~jitter t.Task.id with
      | Some d -> check_bool "overhead bounded by 2ms" true (d <= Time.of_ms 2)
      | None -> Alcotest.fail "diverged")
    (App.tasks app)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_baseline_names () =
  Alcotest.(check (list string)) "names"
    [ "Proposed"; "Giotto-CPU"; "Giotto-DMA-A"; "Giotto-DMA-B" ]
    (List.map Baselines.approach_name Baselines.all_approaches)

let test_giotto_dma_b_grouping () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let alloc = Solution.allocation sol in
  let c0 = Groups.s0 groups in
  let plan_b = Baselines.giotto_dma_b_plan app alloc c0 in
  (* covers everything, keeps single classes, feasible under allocation *)
  check_bool "well formed" true
    (Result.is_ok (Properties.well_formed ~expected:c0 plan_b));
  check_bool "single class" true
    (Result.is_ok (Properties.single_class app plan_b));
  check_bool "feasible" true
    (Result.is_ok (Mem_layout.Allocation.plan_feasible app alloc plan_b));
  (* grouping means no more transfers than singletons *)
  check_bool "at most one transfer per comm" true
    (List.length plan_b <= Comm.Set.cardinal c0)

let test_proposed_beats_barrier_per_task () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let mp = Baselines.run app groups Baselines.Proposed ~solution:(Some sol) in
  let mb = Baselines.run app groups Baselines.Giotto_dma_b ~solution:(Some sol) in
  ignore mb;
  (* at minimum, no task does worse than the singleton barrier baseline *)
  let ma = Baselines.run app groups Baselines.Giotto_dma_a ~solution:None in
  List.iter
    (fun (t : Task.t) ->
      check_bool "protocol <= Giotto-DMA-A" true
        (Time.compare
           mp.Dma_sim.Sim.lambda.(t.Task.id)
           ma.Dma_sim.Sim.lambda.(t.Task.id)
        <= 0))
    (App.tasks app)

let test_baseline_requires_solution () =
  let app = fixture () in
  let groups = Groups.compute app in
  check_bool "proposed without solution raises" true
    (try
       ignore (Baselines.run app groups Baselines.Proposed ~solution:None);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Experiment                                                          *)
(* ------------------------------------------------------------------ *)

let test_experiment_heuristic_config () =
  let app = fixture () in
  match Experiment.run_config ~solver:Experiment.Heuristic app ~alpha:0.3 with
  | Error e -> Alcotest.fail (Experiment.error_to_string e)
  | Ok r ->
    check_int "four approaches" 4 (List.length r.Experiment.metrics);
    check_bool "ratio vs self is 1" true
      (List.for_all
         (fun (t : Task.t) ->
           let rho = Experiment.ratio r Baselines.Proposed t.Task.id in
           rho = 1.0 || Float.is_nan rho = false)
         (App.tasks app));
    check_bool "transfers positive" true (r.Experiment.num_transfers > 0)

let test_experiment_unschedulable () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"hog" ~period:(ms 10) ~wcet:(ms 6) ~core:0;
      Task.make ~id:1 ~name:"hog2" ~period:(ms 10) ~wcet:(ms 6) ~core:0;
      Task.make ~id:2 ~name:"r" ~period:(ms 10) ~wcet:(ms 1) ~core:1;
    ]
  in
  let labels = [ Label.make ~id:0 ~name:"l" ~size:8 ~writer:0 ~readers:[ 2 ] ] in
  let app = App.make ~platform ~tasks ~labels in
  check_bool "unschedulable reported" true
    (Result.is_error (Experiment.run_config ~solver:Experiment.Heuristic app ~alpha:0.2))

let test_experiment_no_comms () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [ Task.make ~id:0 ~name:"t" ~period:(ms 10) ~wcet:(ms 1) ~core:0 ]
  in
  let app = App.make ~platform ~tasks ~labels:[] in
  check_bool "no-comms reported" true
    (Result.is_error (Experiment.run_config ~solver:Experiment.Heuristic app ~alpha:0.2))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_rendering () =
  let app = fixture () in
  match Experiment.run_config ~solver:Experiment.Heuristic app ~alpha:0.3 with
  | Error e -> Alcotest.fail (Experiment.error_to_string e)
  | Ok r ->
    let subplot = Fmt.str "%a" (fun ppf -> Report.fig2_subplot ppf app) r in
    check_bool "mentions every task" true
      (List.for_all
         (fun (t : Task.t) -> contains subplot t.Task.name)
         (App.tasks app));
    check_bool "has ratio columns" true (contains subplot "vs CPU");
    let results = [ ((0.3, Formulation.No_obj), Ok r) ] in
    let csv = Fmt.str "%a" (fun ppf -> Report.fig2_csv ppf app) results in
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' csv)
    in
    (* header + one row per task *)
    check_int "csv rows" (1 + App.num_tasks app) (List.length lines);
    check_bool "csv header" true
      (contains (List.hd lines) "lambda_proposed_us");
    let table = Fmt.str "%a" Report.table1 (Experiment.table1_of_results results) in
    check_bool "table has status" true (contains table "heuristic")

(* Regression (PR 4): [fig2_csv] silently dropped Error configurations,
   so a failed solve left no trace in the exported CSV. A failed config
   now emits an auditable "# FAILED ..." comment line. *)
let test_fig2_csv_failed_line () =
  let app = fixture () in
  let results =
    [
      ( (0.4, Formulation.Min_transfers),
        Error (Experiment.No_solution { alpha = 0.4; solver_name = "milp" }) );
    ]
  in
  let csv = Fmt.str "%a" (fun ppf -> Report.fig2_csv ppf app) results in
  check_bool "has a FAILED comment" true (contains csv "# FAILED alpha=0.4");
  check_bool "names the objective" true (contains csv "objective=OBJ-DMAT");
  check_bool "carries the reason" true
    (contains csv "solver found no feasible plan")

let test_experiment_table1_rows () =
  let app = fixture () in
  let results =
    [
      ( (0.2, Formulation.No_obj),
        Experiment.run_config
          ~solver:(Experiment.milp ~time_limit_s:10.0 Formulation.No_obj)
          app ~alpha:0.2 );
    ]
  in
  let rows = Experiment.table1_of_results results in
  check_int "one row" 1 (List.length rows);
  let row = List.hd rows in
  check_bool "has time" true (row.Experiment.time_s <> None);
  check_bool "has transfers" true (row.Experiment.transfers <> None)

(* ------------------------------------------------------------------ *)
(* Certifier                                                           *)
(* ------------------------------------------------------------------ *)

let test_certify_heuristic () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  match Certify.certify ~source:Certify.Heuristic app groups ~gamma sol with
  | Error vs ->
    Alcotest.failf "heuristic solution uncertified: %a"
      Fmt.(list ~sep:comma (Certify.pp_violation app))
      vs
  | Ok cert ->
    check_bool "checks counted" true (cert.Certify.checks > 0);
    check_bool "renders" true
      (String.length (Fmt.str "%a" (Certify.pp app) cert) > 0)

let test_certify_milp_solve () =
  let app, groups, _gamma, r = solve_fixture Formulation.No_obj in
  ignore groups;
  check_bool "solver found a plan" true (r.Solve.solution <> None);
  match r.Solve.certificate with
  | None -> Alcotest.fail "no certificate on the MILP path"
  | Some (Error vs) ->
    Alcotest.failf "MILP solution uncertified: %a"
      Fmt.(list ~sep:comma (Certify.pp_violation app))
      vs
  | Some (Ok cert) ->
    check_bool "MILP source" true
      (cert.Certify.source = Certify.Milp_optimal
      || cert.Certify.source = Certify.Milp_incumbent);
    (* the residual pass over the raw assignment ran *)
    check_bool "raw assignment kept" true (r.Solve.x <> None)

(* an intentionally corrupted solution — transfer slots reversed, so
   reads are scheduled before the writes they depend on — must be
   rejected for EVERY source: ordering violations are structural *)
let corrupted_fixture () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let plan = Solution.s0_plan app sol in
  let reversed = Array.of_list (List.rev plan) in
  let corrupted =
    Solution.make ~allocation:(Solution.allocation sol) ~slots:reversed
  in
  (app, groups, gamma, sol, corrupted)

let test_certify_rejects_corrupted () =
  let app, groups, gamma, sol, corrupted = corrupted_fixture () in
  (* sanity: the honest solution certifies, the corrupted one cannot *)
  check_bool "honest solution passes" true
    (Result.is_ok (Certify.certify ~source:Certify.Heuristic app groups ~gamma sol));
  List.iter
    (fun source ->
      match Certify.certify ~source app groups ~gamma corrupted with
      | Ok _ ->
        Alcotest.failf "corrupted solution certified as %s"
          (Certify.source_name source)
      | Error vs -> check_bool "violations reported" true (vs <> []))
    [ Certify.Milp_optimal; Certify.Milp_incumbent; Certify.Heuristic;
      Certify.Baseline ]

let test_certify_rejects_bad_milp_assignment () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let sol = Option.get (Heuristic.solve_unchecked app groups ~gamma) in
  let inst = Formulation.make Formulation.No_obj app groups ~gamma in
  (* an all-zero vector claims "no comm is assigned anywhere": the
     residual checker must flag the raw model violations *)
  let x = Array.make (Milp.Problem.num_vars inst.Formulation.problem) 0.0 in
  match
    Certify.certify ~milp:(inst, x) ~source:Certify.Milp_optimal app groups
      ~gamma sol
  with
  | Ok _ -> Alcotest.fail "bogus MILP assignment certified"
  | Error vs ->
    check_bool "MILP residuals among violations" true
      (List.exists
         (function Certify.Milp_residual _ -> true | _ -> false)
         vs)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_validate_app () =
  Alcotest.(check (list string)) "fixture is valid" [] (Pipeline.validate_app (fixture ()));
  (* duplicate logical label (same name, two writers) *)
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"w1" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"w2" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:2 ~name:"r" ~period:(ms 10) ~wcet:(ms 1) ~core:1;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"dup" ~size:8 ~writer:0 ~readers:[ 2 ];
      Label.make ~id:1 ~name:"dup" ~size:8 ~writer:1 ~readers:[ 2 ];
    ]
  in
  let app = App.make ~platform ~tasks ~labels in
  let problems = Pipeline.validate_app app in
  check_bool "two writers flagged" true
    (List.exists (fun m -> contains m "written by two tasks") problems);
  (match Pipeline.run app with
   | Error (Pipeline.Invalid_model _) -> ()
   | _ -> Alcotest.fail "pipeline accepted an invalid model");
  (* the model constructors reject degenerate components outright *)
  check_bool "zero-size label rejected" true
    (try
       ignore (Label.make ~id:0 ~name:"z" ~size:0 ~writer:0 ~readers:[ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_pipeline_accepts_fixture () =
  let app = fixture () in
  match Pipeline.run ~budget_s:30.0 app with
  | Error f -> Alcotest.fail (Pipeline.failure_to_string f)
  | Ok o ->
    check_bool "MILP rung wins on the fixture" true (o.Pipeline.rung = Pipeline.Milp);
    check_bool "certified" true (o.Pipeline.certificate.Certify.checks > 0);
    check_bool "attempts recorded" true (o.Pipeline.attempts <> []);
    check_bool "last attempt accepted" true
      (let last = List.nth o.Pipeline.attempts
           (List.length o.Pipeline.attempts - 1) in
       last.Pipeline.accepted);
    check_bool "renders" true
      (String.length (Fmt.str "%a" (Pipeline.pp_outcome app) o) > 0)

(* a solver that lies: returns a corrupted solution carrying a forged
   certificate. The pipeline must re-certify, reject both MILP rungs and
   degrade to the heuristic. *)
let test_pipeline_lying_solver_falls_back () =
  let app, _groups, _gamma, _sol, corrupted = corrupted_fixture () in
  let forged =
    { Certify.source = Certify.Milp_optimal; checks = 9999; warnings = [];
      time_s = 0.0 }
  in
  let lying ~deadline_s:_ ~engine:_ ~jobs:_ ~presolve:_ ~cancel:_ ~warm:_
      ~chain:_ ~options
      objective app groups ~gamma:g =
    let inst = Formulation.make ~options objective app groups ~gamma:g in
    {
      Solve.solution = Some corrupted;
      x = None;
      certificate = Some (Ok forged);
      stats =
        {
          Solve.rounds = 1; c6_constraints = 0; nodes = 0; time_s = 0.0;
          status = Milp.Branch_bound.Optimal; gap = None;
          milp_vars = Milp.Problem.num_vars inst.Formulation.problem;
          milp_constraints = Milp.Problem.num_constrs inst.Formulation.problem;
          lp = Milp.Branch_bound.lp_zero;
        };
      instance = inst;
    }
  in
  match Pipeline.run ~milp_solve:lying ~budget_s:30.0 app with
  | Error f -> Alcotest.fail (Pipeline.failure_to_string f)
  | Ok o ->
    check_bool "fell back to the heuristic" true
      (o.Pipeline.rung = Pipeline.Heuristic);
    let rejected r =
      List.exists
        (fun (a : Pipeline.attempt) ->
          a.Pipeline.rung = r && not a.Pipeline.accepted
          && contains a.Pipeline.reason "certification failed")
        o.Pipeline.attempts
    in
    check_bool "milp rung rejected by the certifier" true
      (rejected Pipeline.Milp);
    check_bool "perturbed retry also rejected" true
      (rejected Pipeline.Milp_perturbed);
    (* the accepted solution really is certified *)
    check_bool "own certificate, not the forged one" true
      (o.Pipeline.certificate.Certify.source = Certify.Heuristic)

let test_pipeline_no_comms () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [ Task.make ~id:0 ~name:"t" ~period:(ms 10) ~wcet:(ms 1) ~core:0 ]
  in
  let app = App.make ~platform ~tasks ~labels:[] in
  match Pipeline.run app with
  | Error Pipeline.No_communications -> ()
  | _ -> Alcotest.fail "expected No_communications"

(* regression for the shared-deadline refactor: an already-expired
   absolute deadline (a monotonic Clock instant) stops the lazy loop
   before the first round *)
let test_solve_expired_deadline () =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  let t0 = Milp.Clock.now () in
  let r =
    Solve.solve ~deadline_s:(t0 -. 1.0) Formulation.No_obj app groups ~gamma
  in
  check_bool "returns promptly" true (Milp.Clock.now () -. t0 < 2.0);
  check_bool "no solution" true (r.Solve.solution = None);
  check_bool "no certificate" true (r.Solve.certificate = None);
  check_int "no rounds ran" 0 r.Solve.stats.Solve.rounds;
  check_bool "status unknown" true
    (r.Solve.stats.Solve.status = Milp.Branch_bound.Unknown)

let test_experiment_certificate_present () =
  let app = fixture () in
  match Experiment.run_config ~solver:Experiment.Heuristic app ~alpha:0.3 with
  | Error e -> Alcotest.fail (Experiment.error_to_string e)
  | Ok r ->
    check_bool "certificate attached" true
      (r.Experiment.certificate.Certify.checks > 0);
    check_bool "heuristic source" true
      (r.Experiment.certificate.Certify.source = Certify.Heuristic)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_heuristic_plans_validate =
  QCheck.Test.make ~name:"heuristic plans validate on random workloads"
    ~count:30
    QCheck.(int_range 0 2000)
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      let groups = Groups.compute app in
      if Comm.Set.is_empty (Groups.s0 groups) then true
      else
        match Rt_analysis.Sensitivity.gammas app ~alpha:0.5 with
        | None -> true
        | Some s ->
          (match
             Heuristic.solve app groups ~gamma:s.Rt_analysis.Sensitivity.gamma
           with
           | Ok sol -> Solution.validate app groups sol = Ok ()
           | Error _ ->
             (* validation failures are allowed only for Property-3
                overloads, which solve reports as an error *)
             true))

let prop_theorem1_on_random_workloads =
  QCheck.Test.make ~name:"Theorem 1: hyperperiod latency equals s0 latency"
    ~count:20
    QCheck.(int_range 0 2000)
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      let groups = Groups.compute app in
      if Comm.Set.is_empty (Groups.s0 groups) then true
      else
        match Rt_analysis.Sensitivity.gammas app ~alpha:0.5 with
        | None -> true
        | Some s ->
          (match
             Heuristic.solve app groups ~gamma:s.Rt_analysis.Sensitivity.gamma
           with
           | Error _ -> true
           | Ok sol ->
             let analytic = Solution.lambda_s0 app sol in
             let m = Baselines.run app groups Baselines.Proposed ~solution:(Some sol) in
             let ok = ref true in
             Array.iteri
               (fun i l ->
                 if not (Time.equal l m.Dma_sim.Sim.lambda.(i)) then ok := false)
               analytic;
             !ok))

let prop_milp_solutions_validate =
  QCheck.Test.make ~name:"MILP solutions validate on random workloads" ~count:10
    QCheck.(int_range 0 500)
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      let groups = Groups.compute app in
      if Comm.Set.is_empty (Groups.s0 groups) then true
      else
        match Rt_analysis.Sensitivity.gammas app ~alpha:0.5 with
        | None -> true
        | Some s ->
          let gamma = s.Rt_analysis.Sensitivity.gamma in
          let warm = Heuristic.solve_unchecked app groups ~gamma in
          let r =
            Solve.solve ~time_limit_s:15.0 ?warm Formulation.No_obj app groups
              ~gamma
          in
          (match r.Solve.solution with
           | Some sol -> Solution.validate app groups sol = Ok ()
           | None ->
             (* only acceptable when genuinely infeasible or out of time *)
             r.Solve.stats.Solve.status = Milp.Branch_bound.Infeasible
             || r.Solve.stats.Solve.status = Milp.Branch_bound.Unknown))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_heuristic_plans_validate;
        prop_theorem1_on_random_workloads;
        prop_milp_solutions_validate;
      ]
  in
  Alcotest.run "letdma"
    [
      ( "formulation",
        [
          Alcotest.test_case "build" `Quick test_formulation_build;
          Alcotest.test_case "deterministic constraint order" `Slow
            test_formulation_deterministic_order;
          Alcotest.test_case "g_max too small" `Quick test_formulation_gmax_too_small;
          Alcotest.test_case "same-core readers rejected" `Quick
            test_formulation_rejects_same_core_readers;
          Alcotest.test_case "heuristic point feasible" `Quick
            test_encode_heuristic_feasible;
          Alcotest.test_case "feasible under full C6" `Quick
            test_encode_feasible_with_full_c6;
          Alcotest.test_case "bad order rejected" `Quick test_model_rejects_bad_order;
        ] );
      ( "solve",
        [
          Alcotest.test_case "NO-OBJ" `Quick test_solve_no_obj;
          Alcotest.test_case "OBJ-DEL" `Slow test_solve_min_delay;
          Alcotest.test_case "OBJ-DMAT" `Slow test_solve_min_transfers;
          Alcotest.test_case "without warm start" `Slow test_solve_without_warm;
          Alcotest.test_case "dfs engine" `Quick test_solve_dfs_engine;
          Alcotest.test_case "presolve default unchanged" `Slow
            test_solve_presolve_default_unchanged;
          Alcotest.test_case "infeasible gamma" `Quick test_solve_infeasible_gamma;
        ] );
      ( "solution",
        [
          Alcotest.test_case "projection" `Quick test_solution_projection;
          Alcotest.test_case "Theorem 1 (lambda peaks at s0)" `Quick
            test_theorem1_lambda_peaks_at_s0;
        ] );
      ( "heuristic",
        [
          Alcotest.test_case "validates" `Quick test_heuristic_validates;
          Alcotest.test_case "grouped granularity" `Quick
            test_heuristic_grouped_fewer_transfers;
          Alcotest.test_case "no communications" `Quick test_heuristic_no_comms;
        ] );
      ( "let-task",
        [
          Alcotest.test_case "segments" `Quick test_let_task_segments;
          Alcotest.test_case "interference monotone" `Quick
            test_let_task_interference_monotone;
          Alcotest.test_case "schedulable" `Quick test_let_task_schedulable;
          Alcotest.test_case "waters overhead" `Quick test_let_task_overhead_waters;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "names" `Quick test_baseline_names;
          Alcotest.test_case "Giotto-DMA-B grouping" `Quick test_giotto_dma_b_grouping;
          Alcotest.test_case "protocol beats DMA-A" `Quick
            test_proposed_beats_barrier_per_task;
          Alcotest.test_case "missing solution" `Quick test_baseline_requires_solution;
        ] );
      ( "certify",
        [
          Alcotest.test_case "heuristic path" `Quick test_certify_heuristic;
          Alcotest.test_case "MILP path" `Quick test_certify_milp_solve;
          Alcotest.test_case "corrupted solution rejected" `Quick
            test_certify_rejects_corrupted;
          Alcotest.test_case "bogus MILP assignment rejected" `Quick
            test_certify_rejects_bad_milp_assignment;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "model validation" `Quick test_pipeline_validate_app;
          Alcotest.test_case "accepts the fixture" `Quick
            test_pipeline_accepts_fixture;
          Alcotest.test_case "lying solver falls back" `Quick
            test_pipeline_lying_solver_falls_back;
          Alcotest.test_case "no communications" `Quick test_pipeline_no_comms;
          Alcotest.test_case "presolve default unchanged" `Slow
            test_pipeline_presolve_default_unchanged;
          Alcotest.test_case "expired deadline" `Quick test_solve_expired_deadline;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "heuristic config" `Quick test_experiment_heuristic_config;
          Alcotest.test_case "certificate attached" `Quick
            test_experiment_certificate_present;
          Alcotest.test_case "unschedulable" `Quick test_experiment_unschedulable;
          Alcotest.test_case "no communications" `Quick test_experiment_no_comms;
          Alcotest.test_case "table1 rows" `Quick test_experiment_table1_rows;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
          Alcotest.test_case "fig2 csv keeps failed configs" `Quick
            test_fig2_csv_failed_line;
        ] );
      ("properties", qsuite);
    ]
