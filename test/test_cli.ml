(* Black-box tests for bin/letdma_cli: structured rejection of invalid
   --jobs values (exit code 1 + one-line error on stderr), as opposed to
   cmdliner's own parse failures (exit 124). Runs the built executable;
   cwd during [dune runtest] is [_build/default/test]. *)

let exe = Filename.concat (Filename.concat ".." "bin") "letdma_cli.exe"

let run args =
  let out = Filename.temp_file "letdma_cli" ".err" in
  let cmd =
    Printf.sprintf "%s %s >%s 2>&1" (Filename.quote exe) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let n = in_channel_length ic in
  let captured = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, captured)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_rejects cmd_line =
  let code, out = run cmd_line in
  Alcotest.(check int) ("exit code of: " ^ cmd_line) 1 code;
  Alcotest.(check bool)
    ("structured error on stderr of: " ^ cmd_line)
    true
    (contains ~needle:"jobs must be >= 1" out)

let test_jobs_zero () = check_rejects "solve --jobs 0"
(* [=] syntax: a bare [-3] would parse as an unknown option flag *)
let test_jobs_negative () = check_rejects "pipeline --jobs=-3"

let test_jobs_ok () =
  (* a valid --jobs must get past validation: a tiny solve succeeds *)
  let code, out = run "solve --jobs 2 --time-limit 30" in
  Alcotest.(check int) "solve --jobs 2 exits 0" 0 code;
  Alcotest.(check bool)
    "no jobs complaint" false
    (contains ~needle:"jobs must be" out)

let () =
  Alcotest.run "cli"
    [
      ( "jobs-validation",
        [
          Alcotest.test_case "--jobs 0 rejected" `Quick test_jobs_zero;
          Alcotest.test_case "--jobs -3 rejected" `Quick test_jobs_negative;
          Alcotest.test_case "--jobs 2 accepted" `Slow test_jobs_ok;
        ] );
    ]
