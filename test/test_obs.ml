(* Tests for the lib/obs observability spine: JSONL schema validity,
   non-finite float handling, metrics aggregation, the strict trace
   validator, and the end-to-end properties the CI gate relies on —
   every traced solve emits a parseable trace, and jobs=1 traces are
   deterministic modulo timestamps. *)

open Rt_model
open Let_sem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ms = Time.of_ms

let fixture () =
  let platform = Platform.make ~n_cores:2 () in
  let tasks =
    [
      Task.make ~id:0 ~name:"t0" ~period:(ms 10) ~wcet:(ms 1) ~core:0;
      Task.make ~id:1 ~name:"t1" ~period:(ms 20) ~wcet:(ms 2) ~core:1;
      Task.make ~id:2 ~name:"t2" ~period:(ms 20) ~wcet:(ms 2) ~core:0;
    ]
  in
  let labels =
    [
      Label.make ~id:0 ~name:"a" ~size:256 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:1 ~name:"b" ~size:128 ~writer:0 ~readers:[ 1 ];
      Label.make ~id:2 ~name:"c" ~size:512 ~writer:1 ~readers:[ 2 ];
    ]
  in
  App.make ~platform ~tasks ~labels

let gamma_for app alpha =
  match Rt_analysis.Sensitivity.gammas app ~alpha with
  | Some s -> s.Rt_analysis.Sensitivity.gamma
  | None -> Alcotest.fail "fixture unschedulable"

let with_temp f =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_noop () =
  check_bool "disabled by default" false (Obs.enabled ());
  (* all emitters are inert and [span] is transparent *)
  Obs.point ~cat:"x" "p" [];
  Obs.counter ~cat:"x" "c" 1;
  check_int "span passes through" 41 (Obs.span ~cat:"x" "s" (fun () -> 41))

let test_trace_file_schema () =
  with_temp @@ fun path ->
  Obs.with_trace ~file:path (fun () ->
      Obs.point ~cat:"t" "start" [ ("k", Obs.Int 1); ("s", Obs.Str "a\"b") ];
      Obs.counter ~cat:"t" "gauge" 7;
      ignore
        (Obs.span ~cat:"t" "work"
           ~fields:[ ("f", Obs.Float 0.5); ("b", Obs.Bool true) ]
           (fun () -> 0));
      (* non-finite floats must never leak NaN/Infinity tokens *)
      Obs.point ~cat:"t" "bad"
        [ ("nan", Obs.Float Float.nan); ("inf", Obs.Float Float.infinity) ]);
  (match Obs.Check.trace_file path with
   | Ok n -> check_int "five events" 5 n
   | Error e -> Alcotest.fail e);
  let lines = read_lines path in
  List.iter
    (fun l ->
      check_bool "line is an object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}');
      check_bool "no NaN token" false (contains l "NaN");
      check_bool "no Infinity token" false (contains l "Infinity"))
    lines;
  check_bool "non-finite serialized as null" true
    (List.exists (fun l -> contains l "\"nan\":null") lines)

let test_metrics_aggregation () =
  with_temp @@ fun path ->
  Obs.with_trace ~file:path (fun () ->
      ignore (Obs.span ~cat:"m" "phase" (fun () -> ()));
      Obs.point ~cat:"m" "tick" [];
      Obs.point ~cat:"m" "tick" [];
      Obs.counter ~cat:"m" "depth" 3);
  let row name =
    match List.find_opt (fun r -> r.Obs.name = name) (Obs.metrics ()) with
    | Some r -> r
    | None -> Alcotest.fail ("missing metrics row " ^ name)
  in
  (* a span is one event (begin/end pair), not two *)
  check_int "span counted once" 1 (row "phase").Obs.count;
  check_bool "span accumulates duration" true ((row "phase").Obs.total_s >= 0.0);
  check_int "points counted" 2 (row "tick").Obs.count;
  check_int "counter keeps last value" 3 (row "depth").Obs.last

(* ------------------------------------------------------------------ *)
(* Validator                                                           *)
(* ------------------------------------------------------------------ *)

let test_check_rejects_bad_traces () =
  let bad lines expect =
    with_temp @@ fun path ->
    write_lines path lines;
    match Obs.Check.trace_file path with
    | Ok _ -> Alcotest.fail ("accepted " ^ expect)
    | Error _ -> ()
  in
  bad [ {|{"ts":0.1,"dom":0,"kind":"point","cat":"c","name":"n","args":{"v":NaN}}|} ]
    "a NaN token";
  bad [ {|{"ts":0.1,"dom":0,"kind":"point","cat":"c"}|} ] "a missing name field";
  bad [ {|{"ts":0.1,"dom":0,"kind":"warp","cat":"c","name":"n"}|} ]
    "an unknown kind";
  bad
    [
      {|{"ts":0.2,"dom":0,"kind":"point","cat":"c","name":"n"}|};
      {|{"ts":0.1,"dom":0,"kind":"point","cat":"c","name":"n"}|};
    ]
    "non-monotone timestamps";
  bad [ "not json at all" ] "garbage";
  (* interleaved domains are fine: monotonicity is per domain *)
  with_temp @@ fun path ->
  write_lines path
    [
      {|{"ts":0.2,"dom":0,"kind":"point","cat":"c","name":"n"}|};
      {|{"ts":0.1,"dom":1,"kind":"point","cat":"c","name":"n"}|};
      {|{"ts":0.3,"dom":0,"kind":"end","cat":"c","name":"n","dur":0.1}|};
    ];
  match Obs.Check.trace_file path with
  | Ok n -> check_int "per-domain monotone accepted" 3 n
  | Error e -> Alcotest.fail e

let test_check_json_file () =
  with_temp @@ fun path ->
  write_lines path [ {|{"time_s": 0.5, "sections": [1, 2, 3]}|} ];
  (match Obs.Check.json_file path with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  write_lines path [ {|{"time_s": Infinity}|} ];
  match Obs.Check.json_file path with
  | Ok () -> Alcotest.fail "accepted an Infinity token"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* End to end: traced solves                                           *)
(* ------------------------------------------------------------------ *)

let traced_solve path =
  let app = fixture () in
  let groups = Groups.compute app in
  let gamma = gamma_for app 0.3 in
  Obs.with_trace ~file:path (fun () ->
      ignore
        (Letdma.Solve.solve ~time_limit_s:20.0 Letdma.Formulation.No_obj app
           groups ~gamma))

(* Every traced solve yields a valid JSONL trace with solver events —
   the property ci.sh enforces on the smoke solve. *)
let test_traced_solve_valid () =
  with_temp @@ fun path ->
  traced_solve path;
  (match Obs.Check.trace_file path with
   | Ok n -> check_bool "trace non-empty" true (n > 0)
   | Error e -> Alcotest.fail e);
  let lines = read_lines path in
  check_bool "has solver round events" true
    (List.exists (fun l -> contains l {|"cat":"solver"|}) lines);
  check_bool "has node events" true
    (List.exists (fun l -> contains l {|"name":"node"|}) lines)

(* strip the wall-clock-valued keys so runs are comparable *)
let strip_times line =
  let buf = Buffer.create (String.length line) in
  let n = String.length line in
  (* ts/dur values are plain numbers: skip to the ',' or '}' ending them *)
  let rec skip_value i =
    if i >= n || line.[i] = ',' || line.[i] = '}' then i else skip_value (i + 1)
  in
  let keys = [ {|"ts":|}; {|"dur":|} ] in
  let rec go i =
    if i >= n then Buffer.contents buf
    else
      match
        List.find_opt
          (fun k -> i + String.length k <= n && String.sub line i (String.length k) = k)
          keys
      with
      | Some k ->
        Buffer.add_string buf k;
        Buffer.add_char buf '_';
        go (skip_value (i + String.length k))
      | None ->
        Buffer.add_char buf line.[i];
        go (i + 1)
  in
  go 0

(* jobs=1 traces are byte-stable across runs once timestamps are
   masked: same events, same order, same payloads (satellite of the
   deterministic-constraint-order fix). *)
let test_jobs1_trace_deterministic () =
  with_temp @@ fun p1 ->
  with_temp @@ fun p2 ->
  traced_solve p1;
  traced_solve p2;
  let a = List.map strip_times (read_lines p1) in
  let b = List.map strip_times (read_lines p2) in
  Alcotest.(check (list string)) "identical event streams" a b

(* basis-pool lifecycle events ride the sampled node stream: a warm
   best-first solve with a tiny pool must leave warm_hit and evict
   points in the trace, and the trace must still validate. *)
let test_basis_events_traced () =
  with_temp @@ fun path ->
  let module P = Milp.Problem in
  let module L = Milp.Linexpr in
  (* knapsack-flavoured MILP whose LP relaxation is fractional, so the
     search branches and children restore parent bases (same shape as
     test_milp's pinned warm-start trajectory) *)
  let st = Random.State.make [| 42 |] in
  let n = 4 + Random.State.int st 7 in
  let p = P.create () in
  let xs = Array.init n (fun i -> P.binary ~name:(Printf.sprintf "w%d" i) p) in
  let y = P.integer ~name:"wy" ~lo:0.0 ~hi:6.0 p in
  for r = 0 to 2 do
    let expr =
      Array.fold_left
        (fun acc x -> L.add_term acc (float_of_int (1 + Random.State.int st 9)) x)
        (L.var ~coeff:2.0 y) xs
    in
    ignore
      (P.add_constr ~name:(Printf.sprintf "wr%d" r) p expr P.Le
         (float_of_int (8 + Random.State.int st (3 * n))))
  done;
  ignore (P.add_constr p (L.add (L.var xs.(0)) (L.var y)) P.Ge 1.0);
  P.set_objective p P.Maximize
    (Array.fold_left
       (fun acc x -> L.add_term acc (float_of_int (1 + Random.State.int st 9)) x)
       (L.var ~coeff:3.0 y) xs);
  Obs.with_trace ~file:path (fun () ->
      let hooks = Obs.Solver_hooks.wrap Milp.Branch_bound.no_hooks in
      ignore (Milp.Branch_bound.solve ~time_limit_s:30.0 ~basis_pool:2 ~hooks p));
  (match Obs.Check.trace_file path with
   | Ok n -> check_bool "trace non-empty" true (n > 0)
   | Error e -> Alcotest.fail e);
  let lines = read_lines path in
  check_bool "has basis events" true
    (List.exists (fun l -> contains l {|"cat":"basis"|}) lines);
  check_bool "has warm_hit points" true
    (List.exists (fun l -> contains l {|"name":"warm_hit"|}) lines);
  check_bool "has evict points" true
    (List.exists (fun l -> contains l {|"name":"evict"|}) lines)

let () =
  Alcotest.run "obs"
    [
      ( "emission",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "JSONL schema" `Quick test_trace_file_schema;
          Alcotest.test_case "metrics aggregation" `Quick test_metrics_aggregation;
        ] );
      ( "validator",
        [
          Alcotest.test_case "rejects bad traces" `Quick
            test_check_rejects_bad_traces;
          Alcotest.test_case "whole-file JSON" `Quick test_check_json_file;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "traced solve is valid JSONL" `Slow
            test_traced_solve_valid;
          Alcotest.test_case "jobs=1 trace deterministic" `Slow
            test_jobs1_trace_deterministic;
          Alcotest.test_case "basis events traced" `Quick
            test_basis_events_traced;
        ] );
    ]
