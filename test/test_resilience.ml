(* Tests for lib/resilience and the solver-side crash-resilience
   features it packages: byte-identical checkpoint round trips, strict
   load-time validation, kill-and-resume trajectory identity for the
   best-first engine (deterministic and property-based), coarse DFS
   resume, the retry/backoff ladder, and LP iteration-limit recovery. *)

module P = Milp.Problem
module L = Milp.Linexpr
module B = Milp.Branch_bound
module Ck = Resilience.Checkpoint
module Retry = Resilience.Retry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Same deterministic knapsack family as test_parallel: fractional LP
   roots, so every instance explores a real tree. *)
let knapsack seed =
  let n = 8 in
  let rand =
    let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
    fun bound ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      1 + (!state mod bound)
  in
  let weights = Array.init n (fun _ -> rand 20) in
  let values = Array.init n (fun _ -> rand 20) in
  let cap = float_of_int (3 + rand 40) +. 0.5 in
  let p = P.create () in
  let xs = Array.init n (fun i -> P.binary ~name:(Printf.sprintf "k%d" i) p) in
  ignore
    (P.add_constr p
       (L.of_list
          (Array.to_list
             (Array.mapi (fun i x -> (float_of_int weights.(i), x)) xs)))
       P.Le cap);
  P.set_objective p P.Maximize
    (L.of_list
       (Array.to_list (Array.mapi (fun i x -> (float_of_int values.(i), x)) xs)));
  p

(* Interrupt a best-first solve after [k] explored nodes and hand back
   the final checkpoint the solver emits on its way out. *)
let interrupt_after ?(engine = `Best_first) p k =
  let seen = ref 0 in
  let hooks =
    {
      B.no_hooks with
      B.should_stop = (fun () -> !seen >= k);
      on_node = (fun ~node:_ ~depth:_ ~bound:_ ~pivots:_ -> incr seen);
    }
  in
  match engine with
  | `Best_first ->
    let captured = ref None in
    let s =
      B.solve ~time_limit_s:60.0 ~hooks
        ~on_checkpoint:(fun ck -> captured := Some ck)
        p
    in
    (s, `Best_first !captured)
  | `Dfs ->
    let captured = ref None in
    let s =
      Milp.Dfs_solver.solve ~time_limit_s:60.0 ~hooks
        ~on_checkpoint:(fun ck -> captured := Some ck)
        p
    in
    (s, `Dfs !captured)

(* ------------------------------------------------------------------ *)
(* Checkpoint serialization                                            *)
(* ------------------------------------------------------------------ *)

(* A mid-tree snapshot with a live frontier, an incumbent and a
   non-empty basis pool — the checkpoint writer's full surface. *)
let rich_checkpoint () =
  let p = knapsack 3 in
  let full = B.solve ~time_limit_s:60.0 p in
  check_bool "reference solve is optimal" true (full.B.status = B.Optimal);
  let k = max 2 (full.B.stats.B.nodes / 2) in
  match interrupt_after p k with
  | _, `Best_first (Some ck) ->
    Ck.make
      ~meta:[ ("objective", "knapsack-3"); ("engine", "best_first") ]
      ~fingerprint:(Ck.fingerprint p) (Ck.Best_first ck)
  | _ -> Alcotest.fail "interrupted solve emitted no checkpoint"

let test_roundtrip_byte_identity () =
  let ck = rich_checkpoint () in
  (match ck.Ck.ck_state with
   | Ck.Best_first bf ->
     check_bool "snapshot has open nodes" true
       (bf.B.ck_frontier <> []);
     check_bool "snapshot has pooled bases" true (bf.B.ck_pool <> [])
   | Ck.Dfs _ -> Alcotest.fail "expected a best-first snapshot");
  let s1 = Ck.to_string ck in
  match Ck.of_string s1 with
  | Error m -> Alcotest.fail ("reload rejected own output: " ^ m)
  | Ok ck' ->
    check_string "write -> load -> write is byte-identical" s1
      (Ck.to_string ck');
    check_string "fingerprint survives" ck.Ck.ck_fingerprint
      ck'.Ck.ck_fingerprint;
    check_bool "meta survives in order" true (ck.Ck.ck_meta = ck'.Ck.ck_meta)

(* Basis fingerprints span the full 63-bit range; a JSON number would
   round them through a float and lose low bits past 2^53, making every
   restored basis fail its signature check on resume. Pin the string
   encoding with the extreme values a real pool can contain. *)
let test_large_bsig_roundtrip () =
  let basis bsig =
    let open Milp.Simplex_core.Basis in
    {
      rows = [| Bvar 0; Bslack 1; Bnone |];
      at_upper = [| 2; 5 |];
      bm = 3;
      bn = 7;
      bsig;
    }
  in
  let bf =
    {
      B.ck_nodes = 1;
      ck_tie = 2;
      ck_simplex_solves = 3;
      ck_best = Some (1.5, [| 0.0; 1.0 |]);
      ck_cutoff_foreign = false;
      ck_foreign_prunes = 0;
      ck_cold_ref_pivots = None;
      ck_counters = Milp.Simplex_core.fresh_counters ();
      ck_lp_time_s = 0.0;
      ck_frontier =
        [
          {
            B.ck_prio = neg_infinity;
            ck_node_tie = 0;
            ck_depth = 0;
            ck_parent = -1;
            ck_overrides = [ (0, neg_infinity, 0.0); (1, 1.0, infinity) ];
          };
        ];
      ck_pool =
        [
          (0, basis max_int, 2, 1);
          (1, basis min_int, 1, 2);
          (2, basis ((1 lsl 53) + 1), 1, 3);
        ];
      ck_pool_tick = 3;
    }
  in
  let ck = Ck.make ~fingerprint:"fnv1a64:0000000000000000" (Ck.Best_first bf) in
  let s = Ck.to_string ck in
  match Ck.of_string s with
  | Error m -> Alcotest.fail ("reload rejected: " ^ m)
  | Ok ck' ->
    check_string "byte-identical" s (Ck.to_string ck');
    (match ck'.Ck.ck_state with
     | Ck.Best_first bf' ->
       Alcotest.(check (list int))
         "fingerprints survive exactly"
         [ max_int; min_int; (1 lsl 53) + 1 ]
         (List.map
            (fun (_, (b : Milp.Simplex_core.Basis.t), _, _) ->
              b.Milp.Simplex_core.Basis.bsig)
            bf'.B.ck_pool)
     | Ck.Dfs _ -> Alcotest.fail "kind changed")

let test_save_load_files () =
  let ck = rich_checkpoint () in
  let file = Filename.temp_file "resilience_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      (match Ck.save file ck with
       | Ok () -> ()
       | Error m -> Alcotest.fail ("save failed: " ^ m));
      check_bool "no .tmp litter after an atomic save" false
        (Sys.file_exists (file ^ ".tmp"));
      match Ck.load file with
      | Error m -> Alcotest.fail ("load failed: " ^ m)
      | Ok ck' ->
        check_string "file round trip is byte-identical" (Ck.to_string ck)
          (Ck.to_string ck'));
  match Ck.load "/nonexistent/checkpoint.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file must be an Error"

(* Corrupt one occurrence of [needle] in the serialized form and expect
   the strict loader to refuse the result. *)
let expect_reject what s =
  match Ck.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (what ^ ": corrupted checkpoint was accepted")

let replace_once ~needle ~by s =
  match
    let nl = String.length needle in
    let rec find i =
      if i + nl > String.length s then None
      else if String.sub s i nl = needle then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> Alcotest.fail (Printf.sprintf "marker %S not found" needle)
  | Some i ->
    String.sub s 0 i ^ by
    ^ String.sub s (i + String.length needle)
        (String.length s - i - String.length needle)

let test_validator_rejections () =
  let s = Ck.to_string (rich_checkpoint ()) in
  expect_reject "garbage" "hello world";
  expect_reject "empty" "";
  expect_reject "truncated" (String.sub s 0 (String.length s - 5));
  expect_reject "unknown version"
    (replace_once ~needle:"{\"version\":1," ~by:"{\"version\":99," s);
  expect_reject "unknown kind"
    (replace_once ~needle:"\"kind\":\"best_first\"" ~by:"\"kind\":\"mystery\"" s);
  expect_reject "NaN token"
    (replace_once ~needle:"\"lp_time_s\":" ~by:"\"lp_time_s\":NaN,\"x\":" s);
  expect_reject "Infinity token"
    (replace_once ~needle:"\"lp_time_s\":" ~by:"\"lp_time_s\":Infinity,\"x\":" s);
  expect_reject "type mismatch (string where int expected)"
    (replace_once ~needle:"\"pool_tick\":" ~by:"\"pool_tick\":\"many\",\"x\":" s);
  expect_reject "non-numeric bsig string"
    (replace_once ~needle:"\"bsig\":\"" ~by:"\"bsig\":\"x" s);
  (* a numeric (non-string) bsig is exactly the float-precision trap the
     format forbids — the loader must refuse it, not silently round *)
  expect_reject "bsig as a bare JSON number"
    (replace_once ~needle:"\"bsig\":\"" ~by:"\"bsig\":9007199254740993,\"y\":\""
       s);
  (* sanity: the uncorrupted document still loads *)
  match Ck.of_string s with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("control load failed: " ^ m)

(* ------------------------------------------------------------------ *)
(* Kill and resume: best-first trajectory identity                     *)
(* ------------------------------------------------------------------ *)

let check_resume_identical ~name p (full : B.solution) k =
  match interrupt_after p k with
  | _, `Best_first None ->
    Alcotest.fail (name ^ ": interrupted solve emitted no checkpoint")
  | interrupted, `Best_first (Some ck) ->
    check_bool
      (name ^ ": interrupt is inconclusive")
      true
      (interrupted.B.status = B.Feasible || interrupted.B.status = B.Unknown);
    let resumed = B.solve ~time_limit_s:60.0 ~resume:ck p in
    check_bool (name ^ ": resumed to optimality") true
      (resumed.B.status = B.Optimal);
    (* bit-identical, not approximately equal: same objective, same
       assignment, same cumulative trajectory counters *)
    check_bool (name ^ ": identical objective") true
      (resumed.B.obj = full.B.obj);
    check_bool (name ^ ": identical assignment") true (resumed.B.x = full.B.x);
    check_int (name ^ ": identical node count") full.B.stats.B.nodes
      resumed.B.stats.B.nodes;
    check_int
      (name ^ ": identical simplex solves")
      full.B.stats.B.simplex_solves resumed.B.stats.B.simplex_solves;
    check_int
      (name ^ ": identical LP pivots")
      full.B.stats.B.lp.B.lp_pivots resumed.B.stats.B.lp.B.lp_pivots
  | _ -> assert false

let test_resume_trajectory_identity () =
  let p = knapsack 3 in
  let full = B.solve ~time_limit_s:60.0 p in
  check_bool "baseline optimal" true (full.B.status = B.Optimal);
  let nodes = full.B.stats.B.nodes in
  check_bool "instance explores a tree" true (nodes >= 4);
  (* first node, mid-tree, and last-possible interrupt points *)
  List.iter
    (fun k ->
      check_resume_identical ~name:(Printf.sprintf "k=%d" k) p full k)
    [ 1; nodes / 2; nodes - 1 ]

(* The same claim, property-based: any instance, any interrupt point. *)
let prop_kill_resume =
  QCheck.Test.make
    ~name:"kill-and-resume reproduces the uninterrupted solve bit-for-bit"
    ~count:40
    QCheck.(pair (int_range 1 500) (int_range 1 99))
    (fun (seed, pct) ->
      let p = knapsack seed in
      let full = B.solve ~time_limit_s:60.0 p in
      QCheck.assume (full.B.status = B.Optimal);
      let nodes = full.B.stats.B.nodes in
      QCheck.assume (nodes >= 2);
      let k = max 1 (min (nodes - 1) (nodes * pct / 100)) in
      match interrupt_after p k with
      | _, `Best_first None -> false
      | _, `Best_first (Some ck) ->
        (* serialize through the on-disk format, as a real resume does *)
        let wrapped =
          Ck.make ~fingerprint:(Ck.fingerprint p) (Ck.Best_first ck)
        in
        let ck =
          match Ck.of_string (Ck.to_string wrapped) with
          | Ok { Ck.ck_state = Ck.Best_first bf; _ } -> bf
          | Ok _ -> QCheck.Test.fail_reportf "seed %d: kind changed" seed
          | Error m ->
            QCheck.Test.fail_reportf "seed %d: reload failed: %s" seed m
        in
        let resumed = B.solve ~time_limit_s:60.0 ~resume:ck p in
        if resumed.B.status <> B.Optimal then
          QCheck.Test.fail_reportf "seed %d k=%d: resume not optimal" seed k;
        resumed.B.obj = full.B.obj
        && resumed.B.x = full.B.x
        && resumed.B.stats.B.nodes = full.B.stats.B.nodes
        && resumed.B.stats.B.simplex_solves = full.B.stats.B.simplex_solves
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* DFS coarse resume: same certified objective, not same trajectory    *)
(* ------------------------------------------------------------------ *)

let test_dfs_coarse_resume () =
  let p = knapsack 5 in
  let full = Milp.Dfs_solver.solve ~time_limit_s:60.0 p in
  check_bool "dfs baseline optimal" true (full.B.status = B.Optimal);
  let nodes = full.B.stats.B.nodes in
  check_bool "dfs explores a tree" true (nodes >= 2);
  match interrupt_after ~engine:`Dfs p (max 1 (nodes / 2)) with
  | _, `Dfs None -> Alcotest.fail "dfs interrupt emitted no checkpoint"
  | _, `Dfs (Some ck) ->
    let resumed = Milp.Dfs_solver.solve ~time_limit_s:60.0 ~resume:ck p in
    check_bool "dfs resumed to optimality" true
      (resumed.B.status = B.Optimal);
    check_bool "dfs resume certifies the same objective" true
      (resumed.B.obj = full.B.obj)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Retry ladder                                                        *)
(* ------------------------------------------------------------------ *)

let test_escalation_ladder () =
  let e0 = Retry.escalate 0 in
  check_bool "attempt 0 is the identity" true
    ((not e0.Retry.loosen_pricing)
    && (not e0.Retry.disable_warm)
    && (not e0.Retry.disable_presolve)
    && e0.Retry.iter_factor = 1);
  let e1 = Retry.escalate 1 in
  check_bool "attempt 1 loosens pricing only" true
    (e1.Retry.loosen_pricing
    && (not e1.Retry.disable_warm)
    && (not e1.Retry.disable_presolve)
    && e1.Retry.iter_factor = 4);
  let e2 = Retry.escalate 2 in
  check_bool "attempt 2 is the maximal rung" true
    (e2.Retry.loosen_pricing && e2.Retry.disable_warm
    && e2.Retry.disable_presolve
    && e2.Retry.iter_factor = 16);
  check_bool "the ladder is clamped" true (Retry.escalate 7 = { e2 with Retry.attempt = 7 })

let test_retry_backoff_schedule () =
  let sleeps = ref [] in
  let policy =
    { Retry.attempts = 4; backoff_s = 1.0; backoff_factor = 2.0;
      max_backoff_s = 3.0 }
  in
  let r =
    Retry.run ~policy
      ~sleep:(fun s -> sleeps := s :: !sleeps)
      ~classify:(fun (esc : Retry.escalation) ->
        if esc.Retry.attempt >= 3 then `Ok else `Retry "not yet")
      (fun esc -> esc)
  in
  check_int "succeeded on the final attempt" 3 r.Retry.attempt;
  (* exponential, capped at max_backoff_s *)
  Alcotest.(check (list (float 1e-9)))
    "backoff doubles then clamps" [ 1.0; 2.0; 3.0 ] (List.rev !sleeps)

let test_retry_exception_funnel () =
  let calls = ref 0 in
  let r =
    Retry.run
      ~policy:{ Retry.default_policy with Retry.backoff_s = 0.0 }
      ~sleep:(fun _ -> ())
      ~classify:(fun _ -> `Ok)
      (fun esc ->
        incr calls;
        if esc.Retry.attempt < 2 then failwith "flaky" else esc.Retry.attempt)
  in
  check_int "exceptions consumed attempts" 3 !calls;
  check_int "recovered on the last rung" 2 r;
  (* an exception on the final attempt propagates to the caller *)
  match
    Retry.run
      ~policy:{ Retry.default_policy with Retry.attempts = 2; backoff_s = 0.0 }
      ~sleep:(fun _ -> ())
      ~classify:(fun _ -> `Ok)
      (fun _ -> failwith "always")
  with
  | exception Failure m -> check_string "last exception re-raised" "always" m
  | _ -> Alcotest.fail "exhausted retries must re-raise"

let test_retry_deadline () =
  let calls = ref 0 in
  let r =
    Retry.run
      ~policy:{ Retry.default_policy with Retry.attempts = 5 }
      ~sleep:(fun _ -> Alcotest.fail "no backoff past the deadline")
      ~deadline:(Milp.Clock.now () -. 1.0)
      ~classify:(fun _ -> `Retry "never good enough")
      (fun _ ->
        incr calls;
        !calls)
  in
  check_int "an expired deadline stops after one attempt" 1 r

(* ------------------------------------------------------------------ *)
(* LP iteration limit: a cap is a limit, never a crash                 *)
(* ------------------------------------------------------------------ *)

let test_iteration_limit_is_graceful () =
  let p = knapsack 3 in
  (* per-node cap of 1 pivot: the root LP cannot finish *)
  let captured = ref None in
  let s =
    B.solve ~time_limit_s:60.0 ~max_lp_iters:1
      ~on_checkpoint:(fun ck -> captured := Some ck)
      p
  in
  check_bool "capped solve ends as a limit, not an exception" true
    (s.B.status = B.Unknown || s.B.status = B.Feasible);
  check_bool "a final checkpoint was emitted" true (Option.is_some !captured);
  let d = Milp.Dfs_solver.solve ~time_limit_s:60.0 ~max_lp_iters:1 p in
  check_bool "dfs capped solve is graceful too" true
    (d.B.status = B.Unknown || d.B.status = B.Feasible)

let test_supervised_recovers_from_iteration_limit () =
  let p = knapsack 3 in
  let attempts = ref 0 in
  let r =
    Retry.run
      ~policy:{ Retry.default_policy with Retry.backoff_s = 0.0 }
      ~sleep:(fun _ -> ())
      ~classify:(fun (s : B.solution) ->
        if s.B.status = B.Optimal then `Ok else `Retry "iteration limit")
      (fun esc ->
        incr attempts;
        (* the ladder's iter_factor scales an undersized cap back into a
           workable one — the wiring Solve.solve_supervised relies on *)
        B.solve ~time_limit_s:60.0
          ~max_lp_iters:(1 * esc.Retry.iter_factor)
          p)
  in
  check_bool "escalation recovered the solve" true (r.B.status = B.Optimal);
  check_bool "at least one retry was needed" true (!attempts >= 2)

(* ------------------------------------------------------------------ *)
(* End to end: Letdma.Solve durable interrupt + resume                 *)
(* ------------------------------------------------------------------ *)

(* Find a small generator instance that is schedulable and explores a
   real tree, then check the ISSUE's acceptance criterion at the driver
   level: interrupt -> checkpoint on disk -> resume -> same certified
   objective and identical cumulative node count. *)
let test_solve_durable_interrupt_resume () =
  let open Let_sem in
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= 60 do
    let app =
      Workload.Generator.random ~seed:!seed
        ~config:Workload.Generator.small_config ()
    in
    let groups = Groups.compute app in
    (if not (Comm.Set.is_empty (Groups.s0 groups)) then
       match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
       | Some s when s.Rt_analysis.Sensitivity.schedulable ->
         let gamma = s.Rt_analysis.Sensitivity.gamma in
         let r =
           Letdma.Solve.solve ~time_limit_s:30.0 Letdma.Formulation.No_obj app
             groups ~gamma
         in
         let n = r.Letdma.Solve.stats.Letdma.Solve.nodes in
         if
           r.Letdma.Solve.stats.Letdma.Solve.status = B.Optimal
           && n >= 10 && n <= 500
         then found := Some (app, groups, gamma, r)
       | _ -> ());
    incr seed
  done;
  match !found with
  | None -> Alcotest.fail "no suitable generator instance in 60 seeds"
  | Some (app, groups, gamma, baseline) ->
    let file = Filename.temp_file "resilience_solve" ".json" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
      (fun () ->
        let k = baseline.Letdma.Solve.stats.Letdma.Solve.nodes / 2 in
        let interrupted =
          Letdma.Solve.solve ~time_limit_s:30.0 ~checkpoint_file:file
            ~interrupt_after_nodes:k Letdma.Formulation.No_obj app groups
            ~gamma
        in
        check_bool "interrupted run is inconclusive" true
          (interrupted.Letdma.Solve.stats.Letdma.Solve.status <> B.Optimal);
        check_bool "checkpoint file left on disk" true (Sys.file_exists file);
        let ck =
          match Ck.load file with
          | Ok ck -> ck
          | Error m -> Alcotest.fail ("checkpoint unreadable: " ^ m)
        in
        let resumed =
          Letdma.Solve.solve ~time_limit_s:30.0 ~checkpoint_file:file
            ~resume:ck Letdma.Formulation.No_obj app groups ~gamma
        in
        let stats r = r.Letdma.Solve.stats in
        check_bool "resumed to optimality" true
          ((stats resumed).Letdma.Solve.status = B.Optimal);
        check_int "identical cumulative node count"
          (stats baseline).Letdma.Solve.nodes
          (stats resumed).Letdma.Solve.nodes;
        check_bool "identical raw assignment" true
          (resumed.Letdma.Solve.x = baseline.Letdma.Solve.x);
        check_bool "conclusive resume removed the checkpoint" false
          (Sys.file_exists file);
        (* a fingerprint from a different model must be refused *)
        let other =
          Workload.Generator.random ~seed:(!seed + 1000)
            ~config:Workload.Generator.small_config ()
        in
        let ogroups = Groups.compute other in
        match Rt_analysis.Sensitivity.gammas other ~alpha:0.3 with
        | None -> ()
        | Some s ->
          (match
             Letdma.Solve.solve ~time_limit_s:5.0 ~resume:ck
               Letdma.Formulation.No_obj other ogroups
               ~gamma:s.Rt_analysis.Sensitivity.gamma
           with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "foreign checkpoint must be refused"))

let () =
  Alcotest.run "resilience"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "byte-identical round trip" `Quick
            test_roundtrip_byte_identity;
          Alcotest.test_case "63-bit basis fingerprints survive" `Quick
            test_large_bsig_roundtrip;
          Alcotest.test_case "atomic save / load" `Quick test_save_load_files;
          Alcotest.test_case "strict validator rejections" `Quick
            test_validator_rejections;
        ] );
      ( "kill-and-resume",
        [
          Alcotest.test_case "trajectory identity at fixed points" `Quick
            test_resume_trajectory_identity;
          Alcotest.test_case "dfs coarse resume" `Quick test_dfs_coarse_resume;
          QCheck_alcotest.to_alcotest prop_kill_resume;
        ] );
      ( "retry",
        [
          Alcotest.test_case "escalation ladder" `Quick test_escalation_ladder;
          Alcotest.test_case "backoff schedule" `Quick
            test_retry_backoff_schedule;
          Alcotest.test_case "exception funnel" `Quick
            test_retry_exception_funnel;
          Alcotest.test_case "expired deadline" `Quick test_retry_deadline;
        ] );
      ( "iteration-limit",
        [
          Alcotest.test_case "cap is a limit, not a crash" `Quick
            test_iteration_limit_is_graceful;
          Alcotest.test_case "supervised escalation recovers" `Quick
            test_supervised_recovers_from_iteration_limit;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "durable interrupt + resume (Letdma.Solve)" `Slow
            test_solve_durable_interrupt_resume;
        ] );
    ]
