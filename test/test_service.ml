(* Tests for lib/service: the strict wire protocol, the QoS shedding
   table, the fingerprint-keyed LRU cache (unit + model-based QCheck),
   the batch engine (byte-identical hits, warm seeding, crash
   supervision, stats), and an end-to-end daemon session over pipes
   with the full request mix the acceptance gate demands. *)

module J = Resilience.Json
module P = Service.Protocol
module C = Service.Cache
module Q = Service.Qos
module E = Service.Engine
module D = Service.Daemon

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------- response-side helpers ---------- *)

let parse_obj line =
  match J.parse (String.trim line) with
  | Ok (J.O ms) -> ms
  | Ok _ -> Alcotest.failf "response is not an object: %s" line
  | Error m -> Alcotest.failf "unparsable response %S: %s" line m

let sfield ms k =
  try J.as_string k (J.field "response" ms k)
  with J.Invalid m -> Alcotest.failf "field %s: %s" k m

let ifield ms k =
  try J.as_int k (J.field "response" ms k)
  with J.Invalid m -> Alcotest.failf "field %s: %s" k m

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* The byte-stable solution fields of an ok response: everything from
   the "tier" member on. A cache hit must replay this suffix exactly. *)
let core_suffix line =
  match find_sub line "\"tier\"" with
  | Some i -> String.sub line i (String.length line - i)
  | None -> Alcotest.failf "response has no tier member: %s" line

(* ---------- protocol ---------- *)

let req_ok line =
  match P.parse_request line with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S failed: %s" line e.P.message

let req_err line =
  match P.parse_request line with
  | Error e -> e
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" line

let test_parse_defaults () =
  let r = req_ok {|{"id":"r1","op":"solve"}|} in
  check_string "id" "r1" r.P.id;
  match r.P.op with
  | P.Solve s ->
    check_string "workload" "waters" (P.workload_name s.P.workload);
    check_int "seed" 42 s.P.seed;
    check_int "labels" 1 s.P.labels_per_edge;
    check_string "objective" "NO-OBJ"
      (Letdma.Formulation.objective_name s.P.objective);
    Alcotest.(check (float 1e-9)) "alpha" 0.2 s.P.alpha;
    Alcotest.(check (float 1e-9)) "deadline" 60.0 s.P.deadline_s;
    check_string "class" "silver" (Q.klass_name s.P.klass)
  | _ -> Alcotest.fail "expected solve op"

let test_parse_full () =
  let r =
    req_ok
      {|{"id":"r2","op":"solve","workload":"small","seed":7,"labels_per_edge":2,"objective":"dmat","alpha":0.3,"deadline_s":5,"class":"gold"}|}
  in
  match r.P.op with
  | P.Solve s ->
    check_string "workload" "small" (P.workload_name s.P.workload);
    check_int "seed" 7 s.P.seed;
    check_int "labels" 2 s.P.labels_per_edge;
    check_string "objective" "OBJ-DMAT"
      (Letdma.Formulation.objective_name s.P.objective);
    check_string "class" "gold" (Q.klass_name s.P.klass)
  | _ -> Alcotest.fail "expected solve op"

let test_parse_rejects_unknown_member () =
  (* a misspelled member must fail loudly, not silently solve defaults *)
  let e = req_err {|{"id":"r3","op":"solve","objectve":"dmat"}|} in
  check_string "recovered id" "r3" e.P.err_id;
  check_bool "mentions member" true
    (find_sub e.P.message "objectve" <> None)

let test_parse_rejects_bad_values () =
  List.iter
    (fun line -> ignore (req_err line))
    [
      {|{"op":"solve"}|} (* missing id *);
      {|{"id":"","op":"solve"}|} (* empty id *);
      {|{"id":"x"}|} (* missing op *);
      {|{"id":"x","op":"nope"}|};
      {|{"id":"x","op":"solve","workload":"huge"}|};
      {|{"id":"x","op":"solve","alpha":0}|};
      {|{"id":"x","op":"solve","alpha":NaN}|} (* NaN is not JSON *);
      {|{"id":"x","op":"solve","deadline_s":-1}|};
      {|{"id":"x","op":"crash","times":0}|};
      {|{"id":"x","op":"stats","extra":1}|};
      "not json at all";
      "" (* empty line *);
    ]

let test_parse_ops () =
  (match (req_ok {|{"id":"s","op":"stats"}|}).P.op with
  | P.Stats -> ()
  | _ -> Alcotest.fail "expected stats");
  match (req_ok {|{"id":"c","op":"crash","times":3}|}).P.op with
  | P.Crash { times } -> check_int "times" 3 times
  | _ -> Alcotest.fail "expected crash"

let test_render_deterministic () =
  check_string "float is %.17g"
    "{\"id\":\"x\",\"status\":\"ok\",\"f\":0.10000000000000001}\n"
    (P.render ~id:"x" ~status:"ok" [ ("f", P.F 0.1) ]);
  check_string "non-finite floats become null"
    "{\"id\":\"x\",\"status\":\"ok\",\"f\":null}\n"
    (P.render ~id:"x" ~status:"ok" [ ("f", P.F Float.nan) ]);
  check_string "error line"
    "{\"id\":\"e\",\"status\":\"error\",\"error\":\"boom \\\"q\\\"\"}\n"
    (P.error_line ~id:"e" {|boom "q"|});
  (* every rendered line is itself strict JSON *)
  let line =
    P.render ~id:"y" ~status:"ok"
      [ ("i", P.I 3); ("b", P.B true); ("s", P.S "v") ]
  in
  check_bool "round-trips" true (Result.is_ok (J.parse (String.trim line)))

(* ---------- qos ---------- *)

let tier = Alcotest.testable (Fmt.of_to_string Q.tier_name) ( = )

let test_qos_table () =
  let check what k ~load ~budget_s expect =
    Alcotest.check tier what expect (Q.plan k ~load ~budget_s)
  in
  (* gold never sheds *)
  check "gold idle" Q.Gold ~load:0.0 ~budget_s:100.0 Q.Milp;
  check "gold overload" Q.Gold ~load:1000.0 ~budget_s:0.001 Q.Milp;
  (* silver: milp until load 2, heuristic until 8, then baseline *)
  check "silver idle" Q.Silver ~load:1.0 ~budget_s:10.0 Q.Milp;
  check "silver loaded" Q.Silver ~load:4.0 ~budget_s:10.0 Q.Heuristic;
  check "silver swamped" Q.Silver ~load:16.0 ~budget_s:10.0 Q.Baseline;
  check "silver tiny budget" Q.Silver ~load:1.0 ~budget_s:0.5 Q.Heuristic;
  check "silver no budget" Q.Silver ~load:1.0 ~budget_s:0.01 Q.Baseline;
  (* bronze sheds earlier *)
  check "bronze idle" Q.Bronze ~load:0.5 ~budget_s:10.0 Q.Milp;
  check "bronze loaded" Q.Bronze ~load:2.0 ~budget_s:10.0 Q.Heuristic;
  check "bronze swamped" Q.Bronze ~load:8.0 ~budget_s:10.0 Q.Baseline

let test_qos_names () =
  List.iter
    (fun k ->
      match Q.klass_of_string (Q.klass_name k) with
      | Some k' -> check_bool "round-trip" true (k = k')
      | None -> Alcotest.fail "klass name does not round-trip")
    [ Q.Gold; Q.Silver; Q.Bronze ];
  check_bool "unknown class" true (Q.klass_of_string "platinum" = None)

(* ---------- cache ---------- *)

let test_cache_hit_miss () =
  let c = C.create ~capacity:4 in
  check_bool "cold miss" true (C.find c "f1" = None);
  C.add c ~fingerprint:"f1" ~family:"fam" 41;
  check_bool "hit" true (C.find c "f1" = Some 41);
  (* a different fingerprint never sees another entry's payload *)
  check_bool "mismatch" true (C.find c "f2" = None);
  C.add c ~fingerprint:"f1" ~family:"fam" 42;
  check_bool "replace" true (C.find c "f1" = Some 42);
  let s = C.stats c in
  check_int "hits" 2 s.C.hits;
  check_int "misses" 2 s.C.misses;
  check_int "size" 1 s.C.size;
  check_int "no evictions" 0 s.C.evictions

let test_cache_lru_eviction () =
  let c = C.create ~capacity:2 in
  C.add c ~fingerprint:"a" ~family:"fa" 1;
  C.add c ~fingerprint:"b" ~family:"fb" 2;
  ignore (C.find c "a");
  (* a is now more recent than b: adding c must evict b *)
  C.add c ~fingerprint:"c" ~family:"fc" 3;
  check_bool "a survives" true (C.find c "a" = Some 1);
  check_bool "b evicted" true (C.find c "b" = None);
  check_bool "c present" true (C.find c "c" = Some 3);
  check_int "one eviction" 1 (C.stats c).C.evictions

let test_cache_family () =
  let c = C.create ~capacity:4 in
  check_bool "no sibling" true (C.find_family c ~family:"fam" = None);
  C.add c ~fingerprint:"f1" ~family:"fam" 1;
  C.add c ~fingerprint:"f2" ~family:"fam" 2;
  C.add c ~fingerprint:"g1" ~family:"other" 3;
  (* most recently used sibling wins *)
  check_bool "latest sibling" true
    (C.find_family c ~family:"fam" = Some ("f2", 2));
  ignore (C.find c "f1");
  check_bool "recency moves" true
    (C.find_family c ~family:"fam" = Some ("f1", 1));
  (* only successful sibling lookups count as warm seeds *)
  check_int "warm seeds counted" 2 (C.stats c).C.warm_seeds

(* Model-based property: the cache behaves exactly like a reference
   LRU map, op for op — in particular a [find] can only ever return
   the payload last [add]ed under that exact fingerprint (never a
   stale or sibling value), and eviction order is deterministic. *)
let prop_cache_model =
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:300
    QCheck.(list (pair bool (int_range 0 7)))
    (fun ops ->
      let capacity = 3 in
      let c = C.create ~capacity in
      let model : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
      let tick = ref 0 in
      let payload = ref 100 in
      List.for_all
        (fun (is_add, key) ->
          let fp = Printf.sprintf "fp%d" key in
          if is_add then begin
            incr payload;
            C.add c ~fingerprint:fp ~family:"fam" !payload;
            incr tick;
            if not (Hashtbl.mem model fp)
               && Hashtbl.length model >= capacity then begin
              let victim =
                Hashtbl.fold
                  (fun k (_, t) acc ->
                    match acc with
                    | Some (_, t') when t' <= t -> acc
                    | _ -> Some (k, t))
                  model None
              in
              match victim with
              | Some (k, _) -> Hashtbl.remove model k
              | None -> ()
            end;
            Hashtbl.replace model fp (!payload, !tick);
            true
          end
          else
            let got = C.find c fp in
            let expect =
              match Hashtbl.find_opt model fp with
              | Some (v, _) ->
                incr tick;
                Hashtbl.replace model fp (v, !tick);
                Some v
              | None -> None
            in
            got = expect)
        ops
      && C.size c = Hashtbl.length model)

(* ---------- engine ---------- *)

let with_engine ?(jobs = 1) ?(retry_on_crash = 1) ?cache_capacity f =
  let e = E.create ~jobs ?cache_capacity ~retry_on_crash () in
  Fun.protect ~finally:(fun () -> E.shutdown e) (fun () -> f e)

let run_batch e lines = E.process e (List.map P.parse_request lines)

let small ?(alpha = 0.2) ?(klass = "gold") ?(deadline = 60.0) ~id seed =
  Printf.sprintf
    {|{"id":"%s","op":"solve","workload":"small","seed":%d,"alpha":%g,"deadline_s":%g,"class":"%s"}|}
    id seed alpha deadline klass

let test_engine_hit_and_warm () =
  with_engine @@ fun e ->
  match
    run_batch e
      [
        small ~id:"a" 7; small ~id:"b" 7; small ~id:"c" ~alpha:0.25 7;
      ]
  with
  | [ la; lb; lc ] ->
    let a = parse_obj la and b = parse_obj lb and c = parse_obj lc in
    check_string "a status" "ok" (sfield a "status");
    check_string "a cold" "miss" (sfield a "cache");
    check_string "b hit" "hit" (sfield b "cache");
    check_int "hit does no work" 0 (ifield b "pivots");
    check_int "hit explores no nodes" 0 (ifield b "nodes");
    (* the solution fields of the hit are byte-identical to the miss *)
    check_string "byte-identical core" (core_suffix la) (core_suffix lb);
    check_string "perturbed repeat warm-starts" "warm" (sfield c "cache");
    let cs = E.cache_stats e in
    check_int "one hit" 1 cs.C.hits;
    check_int "one warm seed" 1 cs.C.warm_seeds
  | ls -> Alcotest.failf "expected 3 responses, got %d" (List.length ls)

let test_engine_crash_supervision () =
  with_engine @@ fun e ->
  (* one crash is absorbed by the retry budget; two exhaust it *)
  (match run_batch e [ {|{"id":"c1","op":"crash","times":1}|} ] with
  | [ l ] ->
    let ms = parse_obj l in
    check_string "recovered" "ok" (sfield ms "status");
    check_bool "marked recovered" true
      (J.as_bool "recovered" (J.field "r" ms "recovered"))
  | _ -> Alcotest.fail "expected one response");
  match run_batch e [ {|{"id":"c2","op":"crash","times":2}|} ] with
  | [ l ] ->
    let ms = parse_obj l in
    check_string "budget exhausted" "error" (sfield ms "status");
    check_bool "names the crash" true
      (find_sub (sfield ms "error") "crash" <> None)
  | _ -> Alcotest.fail "expected one response"

let test_engine_daemon_survives_crash () =
  (* the request after a worker death is answered normally *)
  with_engine @@ fun e ->
  match
    run_batch e
      [ {|{"id":"k","op":"crash","times":1}|}; {|{"id":"s","op":"stats"}|} ]
  with
  | [ _; l ] ->
    let ms = parse_obj l in
    check_string "stats ok" "ok" (sfield ms "status");
    check_bool "crash was supervised" true (ifield ms "pool_crashes" >= 1)
  | _ -> Alcotest.fail "expected two responses"

let test_engine_errors () =
  with_engine @@ fun e ->
  match
    run_batch e
      [
        {|{"id":"m","op":"solve","objectve":"dmat"}|};
        small ~id:"d" ~deadline:0.0 7;
        "garbage";
      ]
  with
  | [ lm; ld; lg ] ->
    let m = parse_obj lm and d = parse_obj ld and g = parse_obj lg in
    check_string "malformed id recovered" "m" (sfield m "id");
    check_string "malformed is error" "error" (sfield m "status");
    check_string "expired is error" "error" (sfield d "status");
    check_bool "says expired" true
      (find_sub (sfield d "error") "deadline expired" <> None);
    check_string "garbage still answered" "error" (sfield g "status")
  | _ -> Alcotest.fail "expected three responses"

let test_engine_shedding () =
  with_engine @@ fun e ->
  (* bronze with a sub-second budget cannot afford the MILP *)
  match run_batch e [ small ~id:"s" ~klass:"bronze" ~deadline:0.8 7 ] with
  | [ l ] ->
    let ms = parse_obj l in
    check_string "answered" "ok" (sfield ms "status");
    check_bool "shed off the MILP" true (sfield ms "tier" <> "milp");
    check_string "shed tiers bypass the cache" "none" (sfield ms "cache")
  | _ -> Alcotest.fail "expected one response"

let test_engine_stats_sees_batch () =
  with_engine @@ fun e ->
  match run_batch e [ small ~id:"a" 7; {|{"id":"s","op":"stats"}|} ] with
  | [ _; l ] ->
    let ms = parse_obj l in
    check_int "requests" 2 (ifield ms "requests");
    check_int "solved" 1 (ifield ms "solved");
    check_int "batches" 1 (ifield ms "batches");
    check_int "max batch" 2 (ifield ms "max_batch");
    check_int "cached model" 1 (ifield ms "cache_size")
  | _ -> Alcotest.fail "expected two responses"

(* ---------- daemon end-to-end ---------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let read_to_eof fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ()

(* The acceptance-gate session: >= 20 scripted requests covering cold
   solves, exact repeats, perturbed repeats, shedding, both crash
   outcomes, a malformed line, an over-deadline request and a final
   stats probe — all answered in order through one daemon over pipes,
   with the worker crash not dropping anything. *)
let test_daemon_e2e () =
  let script =
    [
      small ~id:"q01" ~klass:"bronze" ~deadline:0.9 2;
      small ~id:"q02" 2;
      small ~id:"q03" 4;
      small ~id:"q04" 7;
      small ~id:"q05" 11;
      small ~id:"q06" 2;
      small ~id:"q07" 4;
      small ~id:"q08" 7;
      small ~id:"q09" 11;
      small ~id:"q10" 7;
      small ~id:"q11" ~alpha:0.25 2;
      small ~id:"q12" ~alpha:0.25 4;
      small ~id:"q13" ~alpha:0.25 7;
      small ~id:"q14" ~alpha:0.3 2;
      small ~id:"q15" ~alpha:0.3 7;
      small ~id:"q16" ~klass:"silver" 11;
      {|{"id":"q17","op":"crash","times":1}|};
      {|{"id":"q18","op":"crash","times":2}|};
      {|{"id":"q19","op":"solve","objectve":"dmat"}|};
      small ~id:"q20" ~deadline:0.0 4;
      {|{"id":"q21","op":"stats"}|};
    ]
  in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  write_all req_w (String.concat "\n" script ^ "\n");
  Unix.close req_w;
  let engine = E.create ~jobs:1 ~retry_on_crash:1 () in
  let outcome = D.run ~input:req_r ~output:resp_w engine in
  E.shutdown engine;
  Unix.close resp_w;
  Unix.close req_r;
  let out = read_to_eof resp_r in
  Unix.close resp_r;
  check_bool "drained shutdown" true (outcome = Ok 0);
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  check_int "every request answered" (List.length script)
    (List.length lines);
  let by_id = List.map (fun l -> (sfield (parse_obj l) "id", l)) lines in
  (* responses come back in request order *)
  List.iteri
    (fun i (id, _) ->
      let expect = if i = 18 then "q19" else Printf.sprintf "q%02d" (i + 1) in
      check_string "response order" expect id)
    by_id;
  let resp id = List.assoc id by_id in
  let field id k = sfield (parse_obj (resp id)) k in
  (* shed, cold, hit, warm *)
  check_bool "bronze shed off the MILP" true (field "q01" "tier" <> "milp");
  List.iter
    (fun id -> check_string (id ^ " cold") "miss" (field id "cache"))
    [ "q02"; "q03"; "q04"; "q05" ];
  List.iter
    (fun (r, m) ->
      check_string (r ^ " hit") "hit" (field r "cache");
      check_string (r ^ " byte-identical") (core_suffix (resp m))
        (core_suffix (resp r)))
    [ ("q06", "q02"); ("q07", "q03"); ("q08", "q04"); ("q09", "q05");
      ("q10", "q04") ];
  List.iter
    (fun id -> check_string (id ^ " warm") "warm" (field id "cache"))
    [ "q11"; "q12"; "q13"; "q14"; "q15" ];
  (* crash outcomes *)
  check_string "crash recovered" "ok" (field "q17" "status");
  check_string "crash budget exhausted" "error" (field "q18" "status");
  (* failure modes *)
  check_string "malformed answered" "error" (field "q19" "status");
  check_string "expired answered" "error" (field "q20" "status");
  (* the stats probe proves the cache and the supervisor did their jobs *)
  let stats = parse_obj (resp "q21") in
  check_int "all requests counted" 21 (ifield stats "requests");
  check_bool "cache hits observed" true (ifield stats "cache_hits" >= 5);
  check_bool "warm seeds observed" true
    (ifield stats "cache_warm_seeds" >= 5);
  (* q17's crash and q18's first crash have happened by the time the
     stats probe runs; q18's re-enqueued retry sits behind it in the
     queue, so its second crash may land after the snapshot *)
  check_bool "worker crashes supervised" true
    (ifield stats "pool_crashes" >= 2)

(* A second session against the same daemon code path via the
   Unix-domain socket listener: connect, probe stats, disconnect, then
   EOF on the primary input shuts the daemon down. *)
let test_daemon_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "letdma-test-%d.sock" (Unix.getpid ()))
  in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let engine = E.create ~jobs:1 ~retry_on_crash:1 () in
  let daemon =
    Domain.spawn (fun () ->
        D.run ~socket:path ~input:req_r ~output:resp_w engine)
  in
  let client = Unix.socket PF_UNIX SOCK_STREAM 0 in
  let rec connect tries =
    match Unix.connect client (ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when tries > 0 ->
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  connect 100;
  write_all client "{\"id\":\"s\",\"op\":\"stats\"}\n";
  let buf = Bytes.create 4096 in
  let n = Unix.read client buf 0 (Bytes.length buf) in
  let ms = parse_obj (Bytes.sub_string buf 0 n) in
  check_string "socket answered" "ok" (sfield ms "status");
  check_string "stats op" "stats" (sfield ms "op");
  Unix.close client;
  Unix.close req_w (* EOF on the primary input: drained shutdown *);
  let outcome = Domain.join daemon in
  E.shutdown engine;
  Unix.close resp_w;
  Unix.close resp_r;
  Unix.close req_r;
  check_bool "clean exit" true (outcome = Ok 0);
  check_bool "socket unlinked" true (not (Sys.file_exists path))

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "solve defaults" `Quick test_parse_defaults;
          Alcotest.test_case "solve full form" `Quick test_parse_full;
          Alcotest.test_case "unknown member rejected" `Quick
            test_parse_rejects_unknown_member;
          Alcotest.test_case "bad values rejected" `Quick
            test_parse_rejects_bad_values;
          Alcotest.test_case "stats and crash ops" `Quick test_parse_ops;
          Alcotest.test_case "deterministic rendering" `Quick
            test_render_deterministic;
        ] );
      ( "qos",
        [
          Alcotest.test_case "shedding table" `Quick test_qos_table;
          Alcotest.test_case "class names" `Quick test_qos_names;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit, miss, replace" `Quick test_cache_hit_miss;
          Alcotest.test_case "deterministic LRU eviction" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "family lookup for warm seeding" `Quick
            test_cache_family;
          QCheck_alcotest.to_alcotest prop_cache_model;
        ] );
      ( "engine",
        [
          Alcotest.test_case "byte-identical hit + warm seed" `Quick
            test_engine_hit_and_warm;
          Alcotest.test_case "crash supervision" `Quick
            test_engine_crash_supervision;
          Alcotest.test_case "daemon survives worker crash" `Quick
            test_engine_daemon_survives_crash;
          Alcotest.test_case "malformed, expired, garbage" `Quick
            test_engine_errors;
          Alcotest.test_case "bronze shedding" `Quick test_engine_shedding;
          Alcotest.test_case "stats sees its batch" `Quick
            test_engine_stats_sees_batch;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "scripted e2e session" `Slow test_daemon_e2e;
          Alcotest.test_case "unix socket listener" `Quick
            test_daemon_socket;
        ] );
    ]
