(* Tests for the MILP substrate: simplex correctness on hand-checked LPs,
   branch-and-bound vs. exhaustive enumeration, model-builder helpers. *)

module P = Milp.Problem
module L = Milp.Linexpr
module S = Milp.Simplex
module B = Milp.Branch_bound

let check_float = Alcotest.(check (float 1e-6))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let lp_opt ?bounds p =
  match S.solve ?bounds p with
  | S.Optimal { obj; x } -> (obj, x)
  | S.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | S.Iteration_limit -> Alcotest.fail "unexpected: iteration limit"

(* ------------------------------------------------------------------ *)
(* Linexpr                                                             *)
(* ------------------------------------------------------------------ *)

let test_linexpr_basic () =
  let e = L.of_list ~const:3.0 [ (2.0, 0); (-1.0, 1) ] in
  check_float "eval" 6.0 (L.eval e [| 2.0; 1.0 |]);
  let e2 = L.add e (L.var 1) in
  check_float "cancelled coeff" 0.0 (L.coeff_of e2 1);
  Alcotest.(check int) "terms after cancel" 1 (L.num_terms e2);
  let e3 = L.scale 2.0 e in
  check_float "scaled const" 6.0 (L.constant e3);
  check_float "scaled coeff" 4.0 (L.coeff_of e3 0)

let test_linexpr_sub_neg () =
  let a = L.of_list [ (1.0, 0); (2.0, 1) ] in
  let b = L.of_list [ (1.0, 0); (-3.0, 2) ] in
  let d = L.sub a b in
  check_float "x0 cancels" 0.0 (L.coeff_of d 0);
  check_float "x1 kept" 2.0 (L.coeff_of d 1);
  check_float "x2 negated" 3.0 (L.coeff_of d 2)

let test_linexpr_map_vars () =
  let e = L.of_list [ (1.0, 0); (2.0, 1) ] in
  (* merge both variables onto id 5 *)
  let m = L.map_vars (fun _ -> 5) e in
  check_float "merged" 3.0 (L.coeff_of m 5);
  Alcotest.(check int) "single term" 1 (L.num_terms m)

(* ------------------------------------------------------------------ *)
(* Simplex on hand-checked LPs                                         *)
(* ------------------------------------------------------------------ *)

(* max 3x + 2y  s.t. x + y <= 4, x <= 2, x,y >= 0  ->  (2,2), obj 10 *)
let test_lp_max_basic () =
  let p = P.create () in
  let x = P.continuous ~name:"x" ~lo:0.0 p in
  let y = P.continuous ~name:"y" ~lo:0.0 p in
  ignore (P.add_constr p (L.of_list [ (1.0, x); (1.0, y) ]) P.Le 4.0);
  ignore (P.add_constr p (L.var x) P.Le 2.0);
  P.set_objective p P.Maximize (L.of_list [ (3.0, x); (2.0, y) ]);
  let obj, sol = lp_opt p in
  check_float "objective" 10.0 obj;
  check_float "x" 2.0 sol.(x);
  check_float "y" 2.0 sol.(y)

(* min x + y  s.t. x + 2y >= 6, 3x + y >= 8  -> intersection (2,2), obj 4 *)
let test_lp_min_ge () =
  let p = P.create () in
  let x = P.continuous ~name:"x" ~lo:0.0 p in
  let y = P.continuous ~name:"y" ~lo:0.0 p in
  ignore (P.add_constr p (L.of_list [ (1.0, x); (2.0, y) ]) P.Ge 6.0);
  ignore (P.add_constr p (L.of_list [ (3.0, x); (1.0, y) ]) P.Ge 8.0);
  P.set_objective p P.Minimize (L.of_list [ (1.0, x); (1.0, y) ]);
  let obj, sol = lp_opt p in
  check_float "objective" 4.0 obj;
  check_float "x" 2.0 sol.(x);
  check_float "y" 2.0 sol.(y)

(* equality constraints: min 2x + 3y s.t. x + y = 10, x - y = 2 -> (6,4) *)
let test_lp_eq () =
  let p = P.create () in
  let x = P.continuous ~name:"x" ~lo:0.0 p in
  let y = P.continuous ~name:"y" ~lo:0.0 p in
  ignore (P.add_constr p (L.of_list [ (1.0, x); (1.0, y) ]) P.Eq 10.0);
  ignore (P.add_constr p (L.of_list [ (1.0, x); (-1.0, y) ]) P.Eq 2.0);
  P.set_objective p P.Minimize (L.of_list [ (2.0, x); (3.0, y) ]);
  let obj, sol = lp_opt p in
  check_float "objective" 24.0 obj;
  check_float "x" 6.0 sol.(x);
  check_float "y" 4.0 sol.(y)

let test_lp_infeasible () =
  let p = P.create () in
  let x = P.continuous ~lo:0.0 p in
  ignore (P.add_constr p (L.var x) P.Ge 5.0);
  ignore (P.add_constr p (L.var x) P.Le 3.0);
  P.set_objective p P.Minimize (L.var x);
  (match S.solve p with
   | S.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible")

let test_lp_unbounded () =
  let p = P.create () in
  let x = P.continuous ~lo:0.0 p in
  let y = P.continuous ~lo:0.0 p in
  ignore (P.add_constr p (L.of_list [ (1.0, x); (-1.0, y) ]) P.Le 1.0);
  P.set_objective p P.Maximize (L.of_list [ (1.0, x); (1.0, y) ]);
  (match S.solve p with
   | S.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded")

(* upper-bounded variables must not need extra rows: max x + y with
   x <= 1.5, y <= 2.5 and a single coupling row *)
let test_lp_upper_bounds () =
  let p = P.create () in
  let x = P.continuous ~lo:0.0 ~hi:1.5 p in
  let y = P.continuous ~lo:0.0 ~hi:2.5 p in
  ignore (P.add_constr p (L.of_list [ (1.0, x); (1.0, y) ]) P.Le 10.0);
  P.set_objective p P.Maximize (L.of_list [ (1.0, x); (1.0, y) ]);
  let obj, sol = lp_opt p in
  check_float "objective" 4.0 obj;
  check_float "x at ub" 1.5 sol.(x);
  check_float "y at ub" 2.5 sol.(y)

(* negative lower bounds and a free variable *)
let test_lp_shifted_and_free () =
  let p = P.create () in
  let x = P.continuous ~lo:(-5.0) ~hi:5.0 p in
  let y = P.continuous p (* free *) in
  ignore (P.add_constr p (L.of_list [ (1.0, x); (1.0, y) ]) P.Eq 1.0);
  ignore (P.add_constr p (L.of_list [ (1.0, y) ]) P.Le 4.0);
  (* min x  => push x down; x = 1 - y >= 1 - 4 = -3 *)
  P.set_objective p P.Minimize (L.var x);
  let obj, sol = lp_opt p in
  check_float "objective" (-3.0) obj;
  check_float "x" (-3.0) sol.(x);
  check_float "y" 4.0 sol.(y)

(* lower bound of -inf with finite upper bound (the Flipped mapping) *)
let test_lp_flipped_var () =
  let p = P.create () in
  let x = P.continuous ~hi:7.0 p in
  ignore (P.add_constr p (L.var x) P.Ge 2.0);
  P.set_objective p P.Maximize (L.var x);
  let obj, _ = lp_opt p in
  check_float "objective" 7.0 obj

(* degenerate LP that loops without anti-cycling care (Beale-like) *)
let test_lp_degenerate () =
  let p = P.create () in
  let x1 = P.continuous ~lo:0.0 p in
  let x2 = P.continuous ~lo:0.0 p in
  let x3 = P.continuous ~lo:0.0 p in
  let x4 = P.continuous ~lo:0.0 p in
  ignore
    (P.add_constr p
       (L.of_list [ (0.25, x1); (-8.0, x2); (-1.0, x3); (9.0, x4) ])
       P.Le 0.0);
  ignore
    (P.add_constr p
       (L.of_list [ (0.5, x1); (-12.0, x2); (-0.5, x3); (3.0, x4) ])
       P.Le 0.0);
  ignore (P.add_constr p (L.var x3) P.Le 1.0);
  P.set_objective p P.Maximize
    (L.of_list [ (0.75, x1); (-20.0, x2); (0.5, x3); (-6.0, x4) ]);
  let obj, _ = lp_opt p in
  check_float "objective" 1.25 obj

(* solve with per-node bound overrides, as branch-and-bound does *)
let test_lp_bounds_override () =
  let p = P.create () in
  let x = P.continuous ~lo:0.0 ~hi:10.0 p in
  P.set_objective p P.Maximize (L.var x);
  let lo = [| 0.0 |] and hi = [| 3.0 |] in
  let obj, _ = lp_opt ~bounds:(lo, hi) p in
  check_float "tightened ub" 3.0 obj;
  (* contradictory overrides are infeasible *)
  (match S.solve ~bounds:([| 5.0 |], [| 3.0 |]) p with
   | S.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible bounds")

(* ------------------------------------------------------------------ *)
(* Branch and bound                                                    *)
(* ------------------------------------------------------------------ *)

let milp_opt ?incumbent p =
  let s = B.solve ?incumbent ~time_limit_s:30.0 p in
  match (s.B.status, s.B.obj, s.B.x) with
  | B.Optimal, Some obj, Some x -> (obj, x, s.B.stats)
  | _ -> Alcotest.fail "expected optimal MILP solution"

(* knapsack: values 10,13,7; weights 5,6,4; cap 10 -> items 2+3 = 20 *)
let test_milp_knapsack () =
  let p = P.create () in
  let xs = List.init 3 (fun i -> P.binary ~name:(Printf.sprintf "b%d" i) p) in
  let weights = [ 5.0; 6.0; 4.0 ] and values = [ 10.0; 13.0; 7.0 ] in
  ignore
    (P.add_constr p
       (L.of_list (List.map2 (fun w x -> (w, x)) weights xs))
       P.Le 10.0);
  P.set_objective p P.Maximize
    (L.of_list (List.map2 (fun v x -> (v, x)) values xs));
  let obj, x, _ = milp_opt p in
  check_float "objective" 20.0 obj;
  check_float "item0" 0.0 x.(List.nth xs 0);
  check_float "item1" 1.0 x.(List.nth xs 1);
  check_float "item2" 1.0 x.(List.nth xs 2)

(* integer rounding matters: max y st y <= 2.5 -> 2 *)
let test_milp_integer_var () =
  let p = P.create () in
  let y = P.integer ~lo:0.0 ~hi:100.0 p in
  ignore (P.add_constr p (L.var y) P.Le 2.5);
  P.set_objective p P.Maximize (L.var y);
  let obj, _, _ = milp_opt p in
  check_float "objective" 2.0 obj

let test_milp_infeasible_integrality () =
  let p = P.create () in
  let x = P.integer ~lo:0.0 ~hi:10.0 p in
  let y = P.integer ~lo:0.0 ~hi:10.0 p in
  (* 2x + 2y = 3 has no integer solution *)
  ignore (P.add_constr p (L.of_list [ (2.0, x); (2.0, y) ]) P.Eq 3.0);
  P.set_objective p P.Minimize (L.var x);
  let s = B.solve p in
  Alcotest.(check bool) "infeasible" true (s.B.status = B.Infeasible)

let test_milp_warm_incumbent () =
  let p = P.create () in
  let xs = Array.init 6 (fun i -> P.binary ~name:(Printf.sprintf "w%d" i) p) in
  ignore
    (P.add_constr p
       (L.of_list (Array.to_list (Array.map (fun x -> (3.0, x)) xs)))
       P.Le 8.0);
  P.set_objective p P.Maximize
    (L.of_list (Array.to_list (Array.map (fun x -> (1.0, x)) xs)));
  (* warm start with a feasible 1-item solution *)
  let warm = Array.make (P.num_vars p) 0.0 in
  warm.(xs.(0)) <- 1.0;
  let obj, _, _ = milp_opt ~incumbent:warm p in
  check_float "objective" 2.0 obj

(* assignment problem: LP relaxation is integral, B&B should finish at the
   root. cost matrix 3x3, minimize. *)
let test_milp_assignment () =
  let cost = [| [| 4.0; 2.0; 8.0 |]; [| 4.0; 3.0; 7.0 |]; [| 3.0; 1.0; 6.0 |] |] in
  let p = P.create () in
  let v = Array.init 3 (fun i -> Array.init 3 (fun j ->
      P.binary ~name:(Printf.sprintf "a%d%d" i j) p))
  in
  for i = 0 to 2 do
    ignore
      (P.add_constr p
         (L.of_list (List.init 3 (fun j -> (1.0, v.(i).(j)))))
         P.Eq 1.0);
    ignore
      (P.add_constr p
         (L.of_list (List.init 3 (fun j -> (1.0, v.(j).(i)))))
         P.Eq 1.0)
  done;
  let obj_expr =
    L.sum
      (List.concat_map
         (fun i -> List.init 3 (fun j -> L.var ~coeff:cost.(i).(j) v.(i).(j)))
         [ 0; 1; 2 ])
  in
  P.set_objective p P.Minimize obj_expr;
  let obj, _, _ = milp_opt p in
  (* optimal: 0->1? enumerate: best is (0,1)=2,(1,0)=4,(2,2)=6 => 12;
     or (0,0)=4,(1,2)=7,(2,1)=1 => 12; min is 11? check (0,1)=2,(1,2)=7,(2,0)=3 = 12;
     (0,0)=4,(1,1)=3,(2,2)=6 = 13; (0,2)=8.. best = 12 *)
  check_float "objective" 12.0 obj

(* ------------------------------------------------------------------ *)
(* Helpers (big-M, and, max)                                           *)
(* ------------------------------------------------------------------ *)

let test_implies_le () =
  let p = P.create ~big_m:1000.0 () in
  let b = P.binary ~name:"b" p in
  let x = P.continuous ~lo:0.0 ~hi:100.0 p in
  (* b = 1 => x <= 5 ; maximize x + 6 b *)
  P.add_implies_le p b (L.var x) 5.0;
  P.set_objective p P.Maximize (L.of_list [ (1.0, x); (6.0, b) ]);
  let obj, sol, _ = milp_opt p in
  (* without b: x = 100 -> 100. with b: x <= 5 -> 11. *)
  check_float "objective" 100.0 obj;
  check_float "b off" 0.0 sol.(b)

let test_implies_ge () =
  let p = P.create ~big_m:1000.0 () in
  let b = P.binary ~name:"b" p in
  let x = P.continuous ~lo:0.0 ~hi:100.0 p in
  (* b = 1 => x >= 40; force b = 1; minimize x *)
  P.add_implies_ge p b (L.var x) 40.0;
  ignore (P.add_constr p (L.var b) P.Eq 1.0);
  P.set_objective p P.Minimize (L.var x);
  let obj, _, _ = milp_opt p in
  check_float "objective" 40.0 obj

let test_and_exact () =
  let p = P.create () in
  let x = P.binary ~name:"x" p in
  let y = P.binary ~name:"y" p in
  let z = P.binary ~name:"z" p in
  P.add_and_exact p z [ x; y ];
  (* force x = y = 1; then z must be 1. minimize z. *)
  ignore (P.add_constr p (L.var x) P.Eq 1.0);
  ignore (P.add_constr p (L.var y) P.Eq 1.0);
  P.set_objective p P.Minimize (L.var z);
  let obj, _, _ = milp_opt p in
  check_float "z forced to 1" 1.0 obj

let test_and_upper_blocks () =
  let p = P.create () in
  let x = P.binary ~name:"x" p in
  let z = P.binary ~name:"z" p in
  P.add_and_upper p z [ x ];
  ignore (P.add_constr p (L.var x) P.Eq 0.0);
  P.set_objective p P.Maximize (L.var z);
  let obj, _, _ = milp_opt p in
  check_float "z blocked by x=0" 0.0 obj

let test_max_lower () =
  let p = P.create () in
  let a = P.continuous ~lo:3.0 ~hi:3.0 p in
  let b = P.continuous ~lo:7.0 ~hi:7.0 p in
  let y = P.continuous ~lo:0.0 ~hi:100.0 p in
  P.add_max_lower p y [ L.var a; L.var b ];
  P.set_objective p P.Minimize (L.var y);
  let obj, _, _ = milp_opt p in
  check_float "max" 7.0 obj

(* ------------------------------------------------------------------ *)
(* Model utilities                                                     *)
(* ------------------------------------------------------------------ *)

let test_validate () =
  let p = P.create () in
  let _x = P.continuous ~lo:0.0 p in
  ignore (P.add_constr p (L.const 1.0) P.Le 2.0);
  let _y = P.integer p (* unbounded integer *) in
  let issues = P.validate p in
  Alcotest.(check int) "two issues" 2 (List.length issues)

let test_check_solution () =
  let p = P.create () in
  let x = P.binary ~name:"x" p in
  let y = P.continuous ~lo:0.0 ~hi:4.0 p in
  ignore (P.add_constr ~name:"cap" p (L.of_list [ (2.0, x); (1.0, y) ]) P.Le 3.0);
  Alcotest.(check (list string)) "feasible" [] (P.check_solution p [| 1.0; 1.0 |]);
  Alcotest.(check bool) "constraint violated" true
    (List.mem "cap" (P.check_solution p [| 1.0; 2.0 |]));
  Alcotest.(check bool) "integrality violated" true
    (P.check_solution p [| 0.5; 0.0 |] <> [])

let test_residuals () =
  let p = P.create () in
  let x = P.binary ~name:"x" p in
  let y = P.continuous ~name:"y" ~lo:0.0 ~hi:4.0 p in
  ignore (P.add_constr ~name:"cap" p (L.of_list [ (2.0, x); (1.0, y) ]) P.Le 3.0);
  Alcotest.(check int) "feasible point has no residuals" 0
    (List.length (P.residuals p [| 1.0; 1.0 |]));
  (* violated row: 2*1 + 2 = 4 > 3 by 1 *)
  (match P.residuals p [| 1.0; 2.0 |] with
   | [ { P.res_kind = P.Row; res_name = "cap"; res_amount } ] ->
     check_float "row magnitude" 1.0 res_amount
   | rs ->
     Alcotest.failf "expected one row residual, got %d: %a" (List.length rs)
       Fmt.(list ~sep:comma P.pp_residual) rs);
  (* fractional binary: integrality residual of 0.5 *)
  (match P.residuals p [| 0.5; 0.0 |] with
   | [ { P.res_kind = P.Integrality; res_name = "x"; res_amount } ] ->
     check_float "integrality magnitude" 0.5 res_amount
   | _ -> Alcotest.fail "expected one integrality residual");
  (* bound violation: y = 5 exceeds hi = 4 by 1 *)
  Alcotest.(check bool) "bound residual reported" true
    (List.exists
       (fun r -> r.P.res_kind = P.Bound && r.P.res_name = "y")
       (P.residuals p [| 0.0; 5.0 |]));
  (* eps is respected *)
  Alcotest.(check int) "within eps is feasible" 0
    (List.length (P.residuals ~eps:0.1 p [| 1.0; 1.05 |]))

let test_residuals_wrong_length () =
  let p = P.create () in
  let _x = P.continuous ~name:"x" ~lo:0.0 p in
  (* residuals never raises: wrong length is a single Bad_length finding *)
  (match P.residuals p [||] with
   | [ { P.res_kind = P.Bad_length; _ } ] -> ()
   | _ -> Alcotest.fail "expected a single Bad_length residual");
  (match P.residuals p [| 1.0; 2.0 |] with
   | [ { P.res_kind = P.Bad_length; _ } ] -> ()
   | _ -> Alcotest.fail "expected a single Bad_length residual");
  (* the historical string API still raises on wrong length *)
  Alcotest.(check bool) "check_solution raises" true
    (try
       ignore (P.check_solution p [||]);
       false
     with Invalid_argument _ -> true)

let test_lp_export () =
  let p = P.create () in
  let x = P.binary ~name:"x" p in
  let y = P.integer ~name:"y" ~lo:0.0 ~hi:9.0 p in
  ignore (P.add_constr ~name:"row" p (L.of_list [ (1.0, x); (2.0, y) ]) P.Le 5.0);
  P.set_objective p P.Maximize (L.of_list [ (1.0, x); (1.0, y) ]);
  let s = P.to_lp_string p in
  Alcotest.(check bool) "has Maximize" true
    (contains s "Maximize");
  Alcotest.(check bool) "has row" true (contains s "row:");
  Alcotest.(check bool) "has Binaries" true
    (contains s "Binaries");
  Alcotest.(check bool) "has Generals" true
    (contains s "Generals")

(* ------------------------------------------------------------------ *)
(* Simplex core: persistent state, bound moves, dual repair            *)
(* ------------------------------------------------------------------ *)

module C = Milp.Simplex_core

(* max x + y st x + y <= 6, x <= 4, y <= 4 -> (4, 2) or (2, 4), obj 6 *)
let core_problem () =
  let p = P.create () in
  let x = P.continuous ~name:"x" ~lo:0.0 ~hi:4.0 p in
  let y = P.continuous ~name:"y" ~lo:0.0 ~hi:4.0 p in
  ignore (P.add_constr p (L.of_list [ (1.0, x); (1.0, y) ]) P.Le 6.0);
  P.set_objective p P.Maximize (L.of_list [ (2.0, x); (1.0, y) ]);
  (p, x, y)

let solved_core p =
  match C.build p with
  | None -> Alcotest.fail "build failed"
  | Some tb ->
    (match C.phase1 tb ~max_iters:10_000 ~deadline:infinity with
     | `Feasible ->
       C.install_objective tb;
       (match C.phase2 tb ~max_iters:10_000 ~deadline:infinity with
        | `Optimal -> tb
        | _ -> Alcotest.fail "phase2 failed")
     | _ -> Alcotest.fail "phase1 failed")

let test_core_solve_and_extract () =
  let p, x, y = core_problem () in
  let tb = solved_core p in
  (* max 2x + y: x = 4, y = 2, obj = 10 *)
  check_float "objective" 10.0 (C.objective_value tb);
  let sol = C.solution tb in
  check_float "x" 4.0 sol.(x);
  check_float "y" 2.0 sol.(y)

let test_core_bound_move_and_dual_repair () =
  let p, x, y = core_problem () in
  let tb = solved_core p in
  (* tighten x <= 1: new optimum x = 1, y = 4, obj = 6 *)
  C.set_var_bounds tb x ~lo:0.0 ~hi:1.0;
  (match C.dual_restore tb ~max_iters:1_000 ~deadline:infinity with
   | `Feasible -> ()
   | `Infeasible -> Alcotest.fail "unexpected infeasible"
   | `Limit -> Alcotest.fail "unexpected limit");
  check_float "objective after repair" 6.0 (C.objective_value tb);
  let sol = C.solution tb in
  check_float "x after repair" 1.0 sol.(x);
  check_float "y after repair" 4.0 sol.(y);
  (* relax it back: original optimum returns *)
  C.set_var_bounds tb x ~lo:0.0 ~hi:4.0;
  (match C.dual_restore tb ~max_iters:1_000 ~deadline:infinity with
   | `Feasible -> ()
   | _ -> Alcotest.fail "repair after relaxation failed");
  (* relaxing restores primal feasibility but the entering prices may now
     be improvable: bound moves keep dual feasibility, so the solution is
     optimal again *)
  check_float "objective restored" 10.0 (C.objective_value tb)

let test_core_bound_move_infeasible () =
  let p = P.create () in
  let x = P.continuous ~name:"cx" ~lo:0.0 ~hi:10.0 p in
  ignore (P.add_constr p (L.var x) P.Ge 5.0);
  P.set_objective p P.Minimize (L.var x);
  let tb = solved_core p in
  check_float "base optimum" 5.0 (C.objective_value tb);
  (* force x <= 2: conflicts with x >= 5 *)
  C.set_var_bounds tb x ~lo:0.0 ~hi:2.0;
  (match C.dual_restore tb ~max_iters:1_000 ~deadline:infinity with
   | `Infeasible -> ()
   | `Feasible -> Alcotest.fail "expected infeasible"
   | `Limit -> Alcotest.fail "unexpected limit")

let test_core_var_bounds_of () =
  let p, x, _ = core_problem () in
  let tb = solved_core p in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "initial" (0.0, 4.0)
    (C.var_bounds_of tb x);
  C.set_var_bounds tb x ~lo:1.0 ~hi:3.0;
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "moved" (1.0, 3.0)
    (C.var_bounds_of tb x)

let test_feasibility_shortcut () =
  let p = P.create () in
  let x = P.binary ~name:"fs" p in
  ignore (P.add_constr p (L.var x) P.Le 1.0);
  (* constant objective + feasible incumbent -> immediate optimal *)
  let s = Option.get (B.feasibility_shortcut p (Some [| 1.0 |])) in
  Alcotest.(check bool) "optimal" true (s.B.status = B.Optimal);
  (* infeasible incumbent -> no shortcut *)
  Alcotest.(check bool) "no shortcut for bad incumbent" true
    (B.feasibility_shortcut p (Some [| 2.0 |]) = None);
  (* non-constant objective -> no shortcut *)
  P.set_objective p P.Maximize (L.var x);
  Alcotest.(check bool) "no shortcut with objective" true
    (B.feasibility_shortcut p (Some [| 1.0 |]) = None)

(* ------------------------------------------------------------------ *)
(* LP file round trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_lp_parse_simple () =
  let text =
    "Minimize\n obj: 2 x + 3 y\nSubject To\n c1: x + y >= 4\n c2: x - y <= 2\n\
     Bounds\n 0 <= x <= 10\n 0 <= y <= 10\nEnd\n"
  in
  match Milp.Lp_file.of_string text with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "two vars" 2 (P.num_vars p);
    Alcotest.(check int) "two constraints" 2 (P.num_constrs p);
    (match S.solve p with
     | S.Optimal { obj; _ } ->
       (* optimum of min 2x+3y st x+y>=4, x-y<=2: at (3,1): 9; at (4,0)? 8
          but x-y=4 > 2 violates; at (3,1): 6+3=9 *)
       check_float "objective" 9.0 obj
     | _ -> Alcotest.fail "expected optimal")

let test_lp_parse_binaries_and_free () =
  let text =
    "Maximize\n obj: z + w\nSubject To\n c: z + 0.5 w <= 1.2\nBounds\n\
     w free\nBinaries\n z\nEnd\n"
  in
  match Milp.Lp_file.of_string text with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check bool) "z is binary" true
      (let found = ref false in
       P.iter_vars
         (fun v kind _ -> if P.var_name p v = "z" && kind = P.Binary then found := true)
         p;
       !found);
    (* max z + w st z + 0.5 w <= 1.2: w <= 2.4 - 2z, so obj <= 2.4 - z,
       best at z = 0 with w = 2.4 *)
    (match S.solve p with
     | S.Optimal { obj; _ } -> check_float "objective" 2.4 obj
     | _ -> Alcotest.fail "expected optimal")

let test_lp_parse_errors () =
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Milp.Lp_file.of_string "Minimize\n obj: ~~~\nEnd\n"));
  Alcotest.(check bool) "missing relation rejected" true
    (Result.is_error
       (Milp.Lp_file.of_string "Minimize\n obj: x\nSubject To\n c: x 5\nEnd\n"))

(* Malformed input must come back as [Error _] — never an exception and
   never a silently-empty problem. *)
let test_lp_parse_malformed () =
  let rejects name text =
    Alcotest.(check bool) name true
      (try Result.is_error (Milp.Lp_file.of_string text)
       with _ -> Alcotest.failf "%s: parser raised" name)
  in
  rejects "empty string" "";
  rejects "whitespace only" "  \n\t\n";
  rejects "binary garbage" "\x00\x01\xfe\xff random bytes";
  rejects "stray text before sections" "hello world\nMinimize\n obj: x\nEnd\n";
  rejects "truncated mid-constraint" "Minimize\n obj: x\nSubject To\n c1: x +";
  rejects "truncated bounds" "Minimize\n obj: x\nBounds\n 0 <=";
  rejects "relation without rhs" "Minimize\n obj: x\nSubject To\n c: x <=\nEnd\n";
  rejects "unknown token in bounds"
    "Minimize\n obj: x\nBounds\n x banana 3\nEnd\n"

let test_lp_roundtrip_hand () =
  let p = P.create () in
  let x = P.binary ~name:"x" p in
  let y = P.integer ~name:"y" ~lo:0.0 ~hi:9.0 p in
  let z = P.continuous ~name:"z" ~lo:(-2.5) ~hi:4.0 p in
  ignore (P.add_constr ~name:"r1" p (L.of_list [ (1.0, x); (2.0, y); (-1.0, z) ]) P.Le 7.0);
  ignore (P.add_constr ~name:"r2" p (L.of_list [ (3.0, y); (1.0, z) ]) P.Ge 1.0);
  P.set_objective p P.Maximize (L.of_list [ (5.0, x); (1.0, y); (0.5, z) ]);
  let text = Milp.Lp_file.to_string p in
  match Milp.Lp_file.of_string text with
  | Error e -> Alcotest.fail e
  | Ok q ->
    Alcotest.(check int) "vars" (P.num_vars p) (P.num_vars q);
    Alcotest.(check int) "constraints" (P.num_constrs p) (P.num_constrs q);
    (match (B.solve ~time_limit_s:10.0 p, B.solve ~time_limit_s:10.0 q) with
     | { B.obj = Some a; _ }, { B.obj = Some b; _ } ->
       check_float "same optimum" a b
     | _ -> Alcotest.fail "expected both optimal")

(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

module Pre = Milp.Presolve

let test_presolve_tightens_and_drops () =
  let p = P.create () in
  let x = P.continuous ~name:"x" ~lo:0.0 ~hi:100.0 p in
  let y = P.integer ~name:"y" ~lo:0.0 ~hi:100.0 p in
  (* x <= 7.5 is a singleton row: absorbed into the bound *)
  ignore (P.add_constr ~name:"sx" p (L.var x) P.Le 7.5);
  (* 2y <= 9 -> y <= 4.5 -> integral: y <= 4 *)
  ignore (P.add_constr ~name:"sy" p (L.var ~coeff:2.0 y) P.Le 9.0);
  (* x + y <= 1000 is redundant once bounds are tight *)
  ignore (P.add_constr ~name:"red" p (L.of_list [ (1.0, x); (1.0, y) ]) P.Le 1000.0);
  P.set_objective p P.Maximize (L.of_list [ (1.0, x); (1.0, y) ]);
  match Pre.run p with
  | Pre.Infeasible _, _ -> Alcotest.fail "unexpected infeasible"
  | Pre.Reduced q, stats ->
    Alcotest.(check bool) "rows dropped" true (stats.Pre.rows_dropped >= 1);
    let _, hi_x = P.var_bounds q x in
    let _, hi_y = P.var_bounds q y in
    check_float "x tightened" 7.5 hi_x;
    check_float "y tightened and rounded" 4.0 hi_y;
    (* same optimum on both problems *)
    (match (B.solve ~time_limit_s:10.0 p, B.solve ~time_limit_s:10.0 q) with
     | { B.obj = Some a; _ }, { B.obj = Some b; _ } -> check_float "optimum" a b
     | _ -> Alcotest.fail "expected optimal")

let test_presolve_detects_infeasible () =
  let p = P.create () in
  let x = P.continuous ~name:"x" ~lo:0.0 ~hi:1.0 p in
  let y = P.continuous ~name:"y" ~lo:0.0 ~hi:1.0 p in
  ignore (P.add_constr ~name:"imposs" p (L.of_list [ (1.0, x); (1.0, y) ]) P.Ge 5.0);
  P.set_objective p P.Minimize (L.var x);
  (match Pre.run p with
   | Pre.Infeasible name, _ -> Alcotest.(check string) "witness" "imposs" name
   | Pre.Reduced _, _ -> Alcotest.fail "expected infeasible")

let test_presolve_fixes_binaries () =
  let p = P.create () in
  let a = P.binary ~name:"a" p in
  let b = P.binary ~name:"b" p in
  (* a + b >= 2 forces both to 1 *)
  ignore (P.add_constr p (L.of_list [ (1.0, a); (1.0, b) ]) P.Ge 2.0);
  P.set_objective p P.Minimize (L.of_list [ (1.0, a); (1.0, b) ]);
  match Pre.run p with
  | Pre.Infeasible _, _ -> Alcotest.fail "unexpected infeasible"
  | Pre.Reduced q, _ ->
    let lo_a, _ = P.var_bounds q a in
    let lo_b, _ = P.var_bounds q b in
    check_float "a fixed to 1" 1.0 lo_a;
    check_float "b fixed to 1" 1.0 lo_b

let prop_presolve_preserves_optimum =
  QCheck.Test.make ~name:"presolve preserves the optimum" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 3 + Random.State.int st 5 in
      let p = P.create () in
      let xs =
        Array.init n (fun i ->
            if Random.State.bool st then P.binary ~name:(Printf.sprintf "pb%d" i) p
            else
              P.integer ~name:(Printf.sprintf "pi%d" i) ~lo:0.0
                ~hi:(float_of_int (1 + Random.State.int st 9))
                p)
      in
      for r = 0 to 2 do
        let expr =
          Array.fold_left
            (fun acc x ->
              L.add_term acc (float_of_int (Random.State.int st 9 - 3)) x)
            L.zero xs
        in
        if not (L.is_constant expr) then
          ignore
            (P.add_constr ~name:(Printf.sprintf "pr%d" r) p expr
               (if Random.State.bool st then P.Le else P.Ge)
               (float_of_int (Random.State.int st 20 - 5)))
      done;
      P.set_objective p P.Maximize
        (L.of_list
           (Array.to_list
              (Array.map (fun x -> (float_of_int (1 + Random.State.int st 5), x)) xs)));
      let a = B.solve ~time_limit_s:10.0 p in
      match Pre.run p with
      | Pre.Infeasible _, _ ->
        (* presolve infeasibility must agree with the solver *)
        a.B.status = B.Infeasible
      | Pre.Reduced q, _ ->
        let b = B.solve ~time_limit_s:10.0 q in
        (match (a.B.obj, b.B.obj) with
         | Some oa, Some ob -> Float.abs (oa -. ob) < 1.0e-6
         | None, None -> true
         | _ -> false))

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

(* Exhaustive 0/1 enumeration oracle for small binary MILPs. *)
let enumerate_best ~n ~feasible ~value =
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
    if feasible x then begin
      let v = value x in
      match !best with
      | None -> best := Some v
      | Some b -> if v > b then best := Some v
    end
  done;
  !best

let prop_knapsack_matches_bruteforce =
  QCheck.Test.make ~name:"bb matches brute force on random knapsacks" ~count:60
    QCheck.(
      pair (int_range 1 8)
        (pair (list_of_size (Gen.return 8) (int_range 1 20))
           (list_of_size (Gen.return 8) (int_range 1 20))))
    (fun (cap_scale, (weights, values)) ->
      let n = min (List.length weights) (List.length values) in
      QCheck.assume (n > 0);
      let weights = Array.of_list (List.filteri (fun i _ -> i < n) weights) in
      let values = Array.of_list (List.filteri (fun i _ -> i < n) values) in
      let cap = float_of_int (cap_scale * 8) in
      let p = P.create () in
      let xs = Array.init n (fun i -> P.binary ~name:(Printf.sprintf "k%d" i) p) in
      ignore
        (P.add_constr p
           (L.of_list
              (Array.to_list
                 (Array.mapi (fun i x -> (float_of_int weights.(i), x)) xs)))
           P.Le cap);
      P.set_objective p P.Maximize
        (L.of_list
           (Array.to_list
              (Array.mapi (fun i x -> (float_of_int values.(i), x)) xs)));
      let s = B.solve ~time_limit_s:10.0 p in
      let expected =
        enumerate_best ~n
          ~feasible:(fun x ->
            let w = ref 0.0 in
            Array.iteri (fun i v -> w := !w +. (v *. float_of_int weights.(i))) x;
            !w <= cap +. 1e-9)
          ~value:(fun x ->
            let v = ref 0.0 in
            Array.iteri (fun i b -> v := !v +. (b *. float_of_int values.(i))) x;
            !v)
      in
      match (s.B.status, s.B.obj, expected) with
      | B.Optimal, Some obj, Some e -> Float.abs (obj -. e) < 1e-6
      | B.Infeasible, _, None -> true
      | _ -> false)

let prop_random_lp_solution_feasible =
  QCheck.Test.make ~name:"simplex optimum satisfies all constraints" ~count:80
    QCheck.(
      list_of_size (Gen.int_range 1 6)
        (list_of_size (Gen.return 4) (int_range (-5) 5)))
    (fun rows ->
      QCheck.assume (rows <> []);
      let p = P.create () in
      let xs = Array.init 4 (fun i -> P.continuous ~name:(Printf.sprintf "v%d" i) ~lo:0.0 ~hi:10.0 p) in
      List.iteri
        (fun r coeffs ->
          let coeffs = Array.of_list coeffs in
          let expr =
            L.of_list
              (Array.to_list
                 (Array.mapi (fun i c -> (float_of_int c, xs.(i))) coeffs))
          in
          ignore
            (P.add_constr ~name:(Printf.sprintf "r%d" r) p expr P.Le
               (float_of_int (10 + r))))
        rows;
      P.set_objective p P.Maximize
        (L.of_list (Array.to_list (Array.map (fun x -> (1.0, x)) xs)));
      match S.solve p with
      | S.Optimal { x; _ } -> P.check_solution ~eps:1e-5 p x = []
      | S.Infeasible -> false (* box-bounded with x = 0 feasible: rows rhs > 0 *)
      | S.Unbounded -> false (* impossible: box-bounded *)
      | S.Iteration_limit -> false)

(* all pricing rules optimize the same LP to the same objective: devex
   and Dantzig may walk different vertex paths (and devex prices only a
   candidate list), but optimality is only declared after a full scan
   comes up empty, so the optimum itself must agree with Bland's rule *)
let prop_cross_pricing_same_objective =
  QCheck.Test.make ~name:"pricing rules agree on the LP optimum" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 6)
        (list_of_size (Gen.return 4) (int_range (-5) 5)))
    (fun rows ->
      QCheck.assume (rows <> []);
      let build () =
        let p = P.create () in
        let xs =
          Array.init 4 (fun i ->
              P.continuous ~name:(Printf.sprintf "cp%d" i) ~lo:0.0 ~hi:10.0 p)
        in
        List.iteri
          (fun r coeffs ->
            let coeffs = Array.of_list coeffs in
            let expr =
              L.of_list
                (Array.to_list
                   (Array.mapi (fun i c -> (float_of_int c, xs.(i))) coeffs))
            in
            ignore
              (P.add_constr ~name:(Printf.sprintf "cr%d" r) p expr P.Le
                 (float_of_int (10 + r))))
          rows;
        P.set_objective p P.Maximize
          (L.of_list (Array.to_list (Array.map (fun x -> (1.0, x)) xs)));
        p
      in
      let objs =
        List.map
          (fun pricing ->
            match S.solve ~pricing (build ()) with
            | S.Optimal { obj; _ } -> obj
            | _ -> QCheck.assume_fail ())
          [ S.Dantzig; S.Devex; S.Bland ]
      in
      match objs with
      | [ a; b; c ] ->
        Float.abs (a -. b) < 1.0e-5 && Float.abs (a -. c) < 1.0e-5
      | _ -> false)

(* presolve round trip: an optimal assignment of the reduced model must
   be feasible (and equally good) in the original model — the reduction
   keeps variable ids, so solutions transfer verbatim *)
let prop_presolve_solution_roundtrip =
  QCheck.Test.make ~name:"presolved optimum is feasible in the original"
    ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 3 + Random.State.int st 5 in
      let p = P.create () in
      let xs =
        Array.init n (fun i ->
            if Random.State.bool st then
              P.binary ~name:(Printf.sprintf "qb%d" i) p
            else
              P.integer ~name:(Printf.sprintf "qi%d" i) ~lo:0.0
                ~hi:(float_of_int (1 + Random.State.int st 9))
                p)
      in
      for r = 0 to 2 do
        let expr =
          Array.fold_left
            (fun acc x ->
              L.add_term acc (float_of_int (Random.State.int st 9 - 3)) x)
            L.zero xs
        in
        if not (L.is_constant expr) then
          ignore
            (P.add_constr ~name:(Printf.sprintf "qr%d" r) p expr
               (if Random.State.bool st then P.Le else P.Ge)
               (float_of_int (Random.State.int st 20 - 5)))
      done;
      P.set_objective p P.Maximize
        (L.of_list
           (Array.to_list
              (Array.map
                 (fun x -> (float_of_int (1 + Random.State.int st 5), x))
                 xs)));
      match Pre.run p with
      | Pre.Infeasible _, _ ->
        (B.solve ~time_limit_s:10.0 p).B.status = B.Infeasible
      | Pre.Reduced q, _ ->
        (match (B.solve ~time_limit_s:10.0 q).B.x with
         | None -> true
         | Some x -> P.check_solution ~eps:1e-5 p x = []))

(* the DFS diving solver and the best-first reference must agree *)
let prop_dfs_matches_best_first =
  QCheck.Test.make ~name:"dfs solver matches best-first on random MILPs"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 4 + Random.State.int st 7 in
      let p = P.create () in
      let xs =
        Array.init n (fun i -> P.binary ~name:(Printf.sprintf "d%d" i) p)
      in
      let y = P.integer ~name:"y" ~lo:0.0 ~hi:6.0 p in
      for r = 0 to 2 do
        let expr =
          Array.fold_left
            (fun acc x ->
              L.add_term acc (float_of_int (1 + Random.State.int st 9)) x)
            (L.var ~coeff:2.0 y) xs
        in
        ignore
          (P.add_constr ~name:(Printf.sprintf "dr%d" r) p expr P.Le
             (float_of_int (8 + Random.State.int st (3 * n))))
      done;
      ignore (P.add_constr p (L.add (L.var xs.(0)) (L.var y)) P.Ge 1.0);
      let obj =
        Array.fold_left
          (fun acc x ->
            L.add_term acc (float_of_int (1 + Random.State.int st 9)) x)
          (L.var ~coeff:3.0 y) xs
      in
      P.set_objective p P.Maximize obj;
      let a = B.solve ~time_limit_s:15.0 p in
      let b = Milp.Dfs_solver.solve ~time_limit_s:15.0 p in
      match (a.B.obj, b.B.obj) with
      | Some oa, Some ob -> Float.abs (oa -. ob) < 1.0e-6
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let test_dfs_warm_incumbent () =
  let p = P.create () in
  let xs = Array.init 5 (fun i -> P.binary ~name:(Printf.sprintf "wd%d" i) p) in
  ignore
    (P.add_constr p
       (L.of_list (Array.to_list (Array.map (fun x -> (2.0, x)) xs)))
       P.Le 5.0);
  P.set_objective p P.Maximize
    (L.of_list (Array.to_list (Array.map (fun x -> (1.0, x)) xs)));
  let warm = Array.make (P.num_vars p) 0.0 in
  warm.(xs.(0)) <- 1.0;
  let s = Milp.Dfs_solver.solve ~time_limit_s:10.0 ~incumbent:warm p in
  Alcotest.(check bool) "optimal" true (s.B.status = B.Optimal);
  check_float "objective" 2.0 (Option.get s.B.obj)

let test_dfs_infeasible () =
  let p = P.create () in
  let x = P.integer ~lo:0.0 ~hi:10.0 p in
  let y = P.integer ~lo:0.0 ~hi:10.0 p in
  ignore (P.add_constr p (L.of_list [ (2.0, x); (2.0, y) ]) P.Eq 3.0);
  P.set_objective p P.Minimize (L.var x);
  let s = Milp.Dfs_solver.solve ~time_limit_s:10.0 p in
  Alcotest.(check bool) "infeasible" true (s.B.status = B.Infeasible)

let test_dfs_fallback_on_unbounded_integer () =
  let p = P.create () in
  let x = P.integer ~lo:0.0 p (* unbounded above *) in
  ignore (P.add_constr p (L.var x) P.Le 4.5);
  P.set_objective p P.Maximize (L.var x);
  let s = Milp.Dfs_solver.solve ~time_limit_s:10.0 p in
  check_float "falls back and solves" 4.0 (Option.get s.B.obj)

let prop_lp_roundtrip =
  QCheck.Test.make ~name:"LP write/parse round trip preserves the optimum"
    ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 3 + Random.State.int st 4 in
      let p = P.create () in
      let xs =
        Array.init n (fun i ->
            match Random.State.int st 3 with
            | 0 -> P.binary ~name:(Printf.sprintf "rb%d" i) p
            | 1 ->
              P.integer ~name:(Printf.sprintf "ri%d" i) ~lo:0.0
                ~hi:(float_of_int (1 + Random.State.int st 8))
                p
            | _ ->
              P.continuous ~name:(Printf.sprintf "rc%d" i) ~lo:0.0
                ~hi:(float_of_int (1 + Random.State.int st 20))
                p)
      in
      for r = 0 to 1 + Random.State.int st 2 do
        let expr =
          Array.fold_left
            (fun acc x ->
              L.add_term acc (float_of_int (Random.State.int st 9 - 4)) x)
            L.zero xs
        in
        if not (L.is_constant expr) then
          ignore
            (P.add_constr ~name:(Printf.sprintf "rr%d" r) p expr P.Le
               (float_of_int (Random.State.int st 30)))
      done;
      P.set_objective p P.Maximize
        (L.of_list
           (Array.to_list
              (Array.map (fun x -> (float_of_int (1 + Random.State.int st 5), x)) xs)));
      match Milp.Lp_file.of_string (Milp.Lp_file.to_string p) with
      | Error _ -> false
      | Ok q ->
        P.num_vars q = P.num_vars p
        && P.num_constrs q = P.num_constrs p
        &&
        let a = B.solve ~time_limit_s:10.0 p in
        let b = B.solve ~time_limit_s:10.0 q in
        (match (a.B.obj, b.B.obj) with
         | Some oa, Some ob -> Float.abs (oa -. ob) < 1.0e-6
         | None, None -> true
         | _ -> false))

let prop_bb_obj_never_beats_lp_bound =
  QCheck.Test.make ~name:"MILP optimum never beats its LP relaxation" ~count:40
    QCheck.(list_of_size (Gen.return 6) (pair (int_range 1 15) (int_range 1 15)))
    (fun items ->
      QCheck.assume (items <> []);
      let n = List.length items in
      let p = P.create () in
      let xs = Array.init n (fun i -> P.binary ~name:(Printf.sprintf "z%d" i) p) in
      let weights = Array.of_list (List.map (fun (w, _) -> float_of_int w) items) in
      let values = Array.of_list (List.map (fun (_, v) -> float_of_int v) items) in
      ignore
        (P.add_constr p
           (L.of_list
              (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs)))
           P.Le 30.0);
      P.set_objective p P.Maximize
        (L.of_list (Array.to_list (Array.mapi (fun i x -> (values.(i), x)) xs)));
      let lp =
        match S.solve p with
        | S.Optimal { obj; _ } -> obj
        | _ -> QCheck.assume_fail ()
      in
      let s = B.solve ~time_limit_s:10.0 p in
      match (s.B.status, s.B.obj) with
      | B.Optimal, Some obj -> obj <= lp +. 1e-6
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Warm-basis reuse                                                    *)
(* ------------------------------------------------------------------ *)

(* shared random MILP generator for the warm-vs-cold cross-checks: a
   knapsack-ish model whose LP relaxation is fractional, so the search
   branches and children actually exercise the basis pool *)
let warm_test_problem st =
  let n = 4 + Random.State.int st 7 in
  let p = P.create () in
  let xs =
    Array.init n (fun i -> P.binary ~name:(Printf.sprintf "w%d" i) p)
  in
  let y = P.integer ~name:"wy" ~lo:0.0 ~hi:6.0 p in
  for r = 0 to 2 do
    let expr =
      Array.fold_left
        (fun acc x -> L.add_term acc (float_of_int (1 + Random.State.int st 9)) x)
        (L.var ~coeff:2.0 y) xs
    in
    ignore
      (P.add_constr ~name:(Printf.sprintf "wr%d" r) p expr P.Le
         (float_of_int (8 + Random.State.int st (3 * n))))
  done;
  ignore (P.add_constr p (L.add (L.var xs.(0)) (L.var y)) P.Ge 1.0);
  P.set_objective p P.Maximize
    (Array.fold_left
       (fun acc x -> L.add_term acc (float_of_int (1 + Random.State.int st 9)) x)
       (L.var ~coeff:3.0 y) xs);
  p

(* a restored basis reoptimized under branched bounds must be
   interchangeable with a cold solve: same status, same objective (the
   vertex may differ among degenerate optima) *)
let prop_warm_simplex_matches_cold =
  QCheck.Test.make ~name:"warm simplex restore matches cold under new bounds"
    ~count:80
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let p = warm_test_problem st in
      let w0 = S.solve_warm p in
      match (w0.S.wr_result, w0.S.wr_basis) with
      | S.Optimal { x; _ }, Some basis ->
        let nvars = P.num_vars p in
        let lo = Array.make nvars 0.0 and hi = Array.make nvars 0.0 in
        P.iter_vars (fun j _ (l, h) -> lo.(j) <- l; hi.(j) <- h) p;
        (* branch-style bound move on a variable with slack to move *)
        let j = Random.State.int st nvars in
        if Random.State.bool st then hi.(j) <- Float.max lo.(j) (Float.floor x.(j))
        else lo.(j) <- Float.min hi.(j) (Float.ceil x.(j));
        let cold = S.solve ~bounds:(lo, hi) p in
        let warm = S.solve_warm ~bounds:(lo, hi) ~basis p in
        (match (cold, warm.S.wr_result) with
         | S.Optimal { obj = oa; _ }, S.Optimal { obj = ob; _ } ->
           Float.abs (oa -. ob) <= 1e-6 *. (1.0 +. Float.abs oa)
         | S.Infeasible, S.Infeasible -> true
         | S.Unbounded, S.Unbounded -> true
         | _ -> false)
      | _ -> QCheck.assume_fail ())

(* the warm-basis engine (pool on) and the cold engine (pool 0) must
   agree on status and objective over whole searches — the warm-vs-cold
   companion of the dfs-vs-best-first cross-engine property *)
let prop_warm_bb_matches_cold =
  QCheck.Test.make ~name:"warm-basis B&B matches cold B&B on random MILPs"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let p = warm_test_problem st in
      let cold = B.solve ~time_limit_s:15.0 ~basis_pool:0 p in
      (* a tiny pool also exercises LRU eviction and the orphan fallback *)
      let warm = B.solve ~time_limit_s:15.0 ~basis_pool:4 p in
      cold.B.status = warm.B.status
      &&
      match (cold.B.obj, warm.B.obj) with
      | Some oa, Some ob -> Float.abs (oa -. ob) < 1.0e-6
      | None, None -> true
      | Some _, None | None, Some _ -> false)

(* jobs=1 determinism: two identical warm runs walk the identical search
   — node counts, warm accounting and the full incumbent trajectory.
   The pool's LRU eviction picks its victim by a (recency, node-id)
   total order precisely so this holds; a Hashtbl-iteration-order
   dependence would show up here as runs (or the pinned expectations
   below) diverging. *)
let test_warm_determinism_two_runs () =
  let run () =
    let trail = ref [] in
    let hooks =
      {
        B.no_hooks with
        B.on_incumbent = (fun ~obj _ -> trail := obj :: !trail);
      }
    in
    let st = Random.State.make [| 42 |] in
    let p = warm_test_problem st in
    let r = B.solve ~time_limit_s:30.0 ~basis_pool:2 ~hooks p in
    let lp = r.B.stats.B.lp in
    ( r.B.status,
      r.B.obj,
      r.B.stats.B.nodes,
      lp.B.lp_warm_hits,
      lp.B.lp_warm_misses,
      lp.B.lp_basis_evictions,
      List.rev !trail )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two runs identical" true (a = b);
  let status, obj, nodes, hits, misses, evictions, trail = a in
  Alcotest.(check bool) "solved to optimality" true (status = B.Optimal);
  (* pinned trajectory for the fixed seed: guards regressions that
     change the search (e.g. pool bookkeeping becoming order-dependent)
     without breaking two-run equality within one process *)
  check_float "pinned objective" 16.0 (Option.get obj);
  Alcotest.(check int) "pinned node count" 5 nodes;
  Alcotest.(check int) "pinned warm hits" 4 hits;
  Alcotest.(check int) "pinned warm misses" 0 misses;
  Alcotest.(check int) "pinned evictions" 1 evictions;
  Alcotest.(check int) "pinned incumbent count" 3 (List.length trail)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_knapsack_matches_bruteforce;
        prop_random_lp_solution_feasible;
        prop_bb_obj_never_beats_lp_bound;
        prop_dfs_matches_best_first;
        prop_warm_simplex_matches_cold;
        prop_warm_bb_matches_cold;
        prop_lp_roundtrip;
        prop_presolve_preserves_optimum;
        prop_cross_pricing_same_objective;
        prop_presolve_solution_roundtrip;
      ]
  in
  Alcotest.run "milp"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basic ops" `Quick test_linexpr_basic;
          Alcotest.test_case "sub/neg" `Quick test_linexpr_sub_neg;
          Alcotest.test_case "map_vars" `Quick test_linexpr_map_vars;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "max basic" `Quick test_lp_max_basic;
          Alcotest.test_case "min with >=" `Quick test_lp_min_ge;
          Alcotest.test_case "equalities" `Quick test_lp_eq;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "upper bounds" `Quick test_lp_upper_bounds;
          Alcotest.test_case "shifted and free vars" `Quick test_lp_shifted_and_free;
          Alcotest.test_case "flipped var" `Quick test_lp_flipped_var;
          Alcotest.test_case "degenerate (Beale)" `Quick test_lp_degenerate;
          Alcotest.test_case "bound overrides" `Quick test_lp_bounds_override;
        ] );
      ( "branch-and-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "integer var" `Quick test_milp_integer_var;
          Alcotest.test_case "integrality infeasible" `Quick
            test_milp_infeasible_integrality;
          Alcotest.test_case "warm incumbent" `Quick test_milp_warm_incumbent;
          Alcotest.test_case "assignment" `Quick test_milp_assignment;
        ] );
      ( "warmstart",
        [
          Alcotest.test_case "jobs=1 determinism + pinned trajectory" `Quick
            test_warm_determinism_two_runs;
        ] );
      ( "dfs-solver",
        [
          Alcotest.test_case "warm incumbent" `Quick test_dfs_warm_incumbent;
          Alcotest.test_case "infeasible" `Quick test_dfs_infeasible;
          Alcotest.test_case "fallback on unbounded integer" `Quick
            test_dfs_fallback_on_unbounded_integer;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "implies <=" `Quick test_implies_le;
          Alcotest.test_case "implies >=" `Quick test_implies_ge;
          Alcotest.test_case "and exact" `Quick test_and_exact;
          Alcotest.test_case "and upper blocks" `Quick test_and_upper_blocks;
          Alcotest.test_case "max lower" `Quick test_max_lower;
        ] );
      ( "model",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "check_solution" `Quick test_check_solution;
          Alcotest.test_case "residuals" `Quick test_residuals;
          Alcotest.test_case "residuals wrong length" `Quick
            test_residuals_wrong_length;
          Alcotest.test_case "LP export" `Quick test_lp_export;
        ] );
      ( "simplex-core",
        [
          Alcotest.test_case "solve and extract" `Quick test_core_solve_and_extract;
          Alcotest.test_case "bound move + dual repair" `Quick
            test_core_bound_move_and_dual_repair;
          Alcotest.test_case "bound move to infeasible" `Quick
            test_core_bound_move_infeasible;
          Alcotest.test_case "var bounds tracking" `Quick test_core_var_bounds_of;
          Alcotest.test_case "feasibility shortcut" `Quick test_feasibility_shortcut;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "tighten and drop" `Quick test_presolve_tightens_and_drops;
          Alcotest.test_case "detect infeasible" `Quick test_presolve_detects_infeasible;
          Alcotest.test_case "fix binaries" `Quick test_presolve_fixes_binaries;
        ] );
      ( "lp-file",
        [
          Alcotest.test_case "parse simple" `Quick test_lp_parse_simple;
          Alcotest.test_case "binaries and free vars" `Quick
            test_lp_parse_binaries_and_free;
          Alcotest.test_case "parse errors" `Quick test_lp_parse_errors;
          Alcotest.test_case "malformed input" `Quick test_lp_parse_malformed;
          Alcotest.test_case "round trip" `Quick test_lp_roundtrip_hand;
        ] );
      ("properties", qsuite);
    ]
