(* Tests for the lib/parallel subsystem: domain pool, portfolio racing,
   batch sweeps — plus the cross-engine equivalence property over MILPs
   built from random Workload.Generator instances. *)

open Let_sem

module P = Milp.Problem
module L = Milp.Linexpr
module B = Milp.Branch_bound
module Pool = Parallel.Pool
module Portfolio = Parallel.Portfolio
module Sweep = Parallel.Sweep

exception Boom

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 (fun pl ->
      check_int "pool size" 4 (Pool.jobs pl);
      let rs = Pool.map pl (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
      Alcotest.(check (list int))
        "squares in input order"
        [ 1; 4; 9; 16; 25; 36; 49; 64 ]
        (List.map (function Ok v -> v | Error e -> raise e) rs))

let test_pool_exception_funnel () =
  Pool.with_pool ~jobs:2 (fun pl ->
      let bad = Pool.async pl (fun () -> raise Boom) in
      let good = Pool.async pl (fun () -> 41 + 1) in
      (match Pool.await bad with
       | Error Boom -> ()
       | Error e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e)
       | Ok _ -> Alcotest.fail "crashing task reported Ok");
      (* the worker that ran the crashing task must still be alive *)
      check_int "pool survives a crash" 42 (Pool.await_exn good))

let test_pool_shutdown () =
  let pl = Pool.create ~jobs:1 () in
  let f = Pool.async pl (fun () -> 7) in
  Pool.shutdown pl;
  Pool.shutdown pl (* idempotent *);
  check_int "queued task still ran" 7 (Pool.await_exn f);
  (match Pool.async pl (fun () -> 0) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "async after shutdown must raise");
  match Pool.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | pl ->
    Pool.shutdown pl;
    Alcotest.fail "jobs=0 must be rejected"

let test_token () =
  let t = Pool.Token.create () in
  check_bool "fresh token not cancelled" false (Pool.Token.cancelled t);
  Pool.Token.cancel t;
  check_bool "cancelled after cancel" true (Pool.Token.cancelled t)

(* ------------------------------------------------------------------ *)
(* Worker-death supervision                                            *)
(* ------------------------------------------------------------------ *)

(* A task whose exception escapes the funnel (Poison) kills its worker
   domain. Await must surface Worker_crashed — never hang — and the
   supervisor must respawn the domain so capacity is preserved. *)
let test_pool_worker_death_no_hang () =
  Pool.with_pool ~jobs:1 (fun pl ->
      let doomed = Pool.async pl (fun () -> raise (Pool.Poison "chaos")) in
      (match Pool.await doomed with
       | Error (Pool.Worker_crashed { worker; cause }) ->
         check_bool "slot index in range" true (worker >= 0 && worker < 1);
         check_bool "cause names the poison" true
           (String.length cause > 0)
       | Error e ->
         Alcotest.fail ("expected Worker_crashed, got " ^ Printexc.to_string e)
       | Ok _ -> Alcotest.fail "poisoned task reported Ok");
      check_int "supervisor counted the death" 1 (Pool.crashes pl);
      (* jobs=1: if the dead domain were not replaced, this would hang *)
      let after = Pool.async pl (fun () -> 41 + 1) in
      check_int "respawned worker serves new tasks" 42 (Pool.await_exn after))

let test_pool_retry_on_crash () =
  Pool.with_pool ~jobs:1 (fun pl ->
      (* poison exactly once: the re-enqueued run must succeed *)
      let armed = Atomic.make true in
      let f =
        Pool.async ~retry_on_crash:1 pl (fun () ->
            if Atomic.exchange armed false then raise (Pool.Poison "once");
            7)
      in
      check_int "task survived one worker death" 7 (Pool.await_exn f);
      check_int "the death was still counted" 1 (Pool.crashes pl);
      (* budget exhausted: a persistent crasher ends as Worker_crashed *)
      let f = Pool.async ~retry_on_crash:2 pl (fun () -> raise (Pool.Poison "always")) in
      (match Pool.await f with
       | Error (Pool.Worker_crashed _) -> ()
       | Error e -> Alcotest.fail ("unexpected " ^ Printexc.to_string e)
       | Ok _ -> Alcotest.fail "persistent crasher reported Ok");
      check_int "every death counted" 4 (Pool.crashes pl))

let test_pool_shutdown_after_crash () =
  (* shutdown's joins must not raise on a pool that lost (and respawned)
     workers mid-flight *)
  let pl = Pool.create ~jobs:2 () in
  let doomed = Pool.async pl (fun () -> raise (Pool.Poison "boom")) in
  (match Pool.await doomed with
   | Error (Pool.Worker_crashed _) -> ()
   | _ -> Alcotest.fail "expected Worker_crashed");
  Pool.shutdown pl;
  Pool.shutdown pl (* still idempotent *)

(* ------------------------------------------------------------------ *)
(* Foreign-incumbent pruning through the hooks, deterministically      *)
(* ------------------------------------------------------------------ *)

(* minimize x, x integer in [0, 10], x >= 2.5. The LP relaxation is
   2.5; a foreign incumbent of 3.0 delivered through get_incumbent
   makes the x>=3 branch (bound exactly 3.0) prunable only thanks to
   that import — which must be counted in foreign_prunes. *)
let foreign_prune_problem () =
  let p = P.create () in
  let x = P.integer ~name:"x" ~lo:0.0 ~hi:10.0 p in
  ignore (P.add_constr p (L.of_list [ (1.0, x) ]) P.Ge 2.5);
  P.set_objective p P.Minimize (L.of_list [ (1.0, x) ]);
  p

let foreign_hooks () =
  let delivered = ref false in
  {
    B.no_hooks with
    B.get_incumbent =
      (fun () ->
        if !delivered then None
        else begin
          delivered := true;
          Some (3.0, [| 3.0 |])
        end);
  }

let check_foreign_prune name (s : B.solution) =
  check_bool (name ^ ": optimal") true (s.B.status = B.Optimal);
  (match s.B.obj with
   | Some o -> Alcotest.(check (float 1e-9)) (name ^ ": obj") 3.0 o
   | None -> Alcotest.fail (name ^ ": no objective"));
  check_bool
    (name ^ ": pruned on the foreign incumbent")
    true
    (s.B.stats.B.foreign_prunes >= 1)

let test_foreign_prune_best_first () =
  let s = B.solve ~hooks:(foreign_hooks ()) (foreign_prune_problem ()) in
  check_foreign_prune "best-first" s

let test_foreign_prune_dfs () =
  let s =
    Milp.Dfs_solver.solve ~hooks:(foreign_hooks ()) (foreign_prune_problem ())
  in
  check_foreign_prune "dfs" s

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

(* A deterministic knapsack family with fractional LP roots, so every
   engine has to branch. *)
let knapsack seed =
  let n = 8 in
  let rand =
    let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
    fun bound ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      1 + (!state mod bound)
  in
  let weights = Array.init n (fun _ -> rand 20) in
  let values = Array.init n (fun _ -> rand 20) in
  let cap = float_of_int (3 + rand 40) +. 0.5 in
  let p = P.create () in
  let xs = Array.init n (fun i -> P.binary ~name:(Printf.sprintf "k%d" i) p) in
  ignore
    (P.add_constr p
       (L.of_list
          (Array.to_list
             (Array.mapi (fun i x -> (float_of_int weights.(i), x)) xs)))
       P.Le cap);
  P.set_objective p P.Maximize
    (L.of_list
       (Array.to_list (Array.mapi (fun i x -> (float_of_int values.(i), x)) xs)));
  p

let test_portfolio_deterministic_bit_identical () =
  for seed = 1 to 8 do
    let r1 =
      Portfolio.solve ~jobs:1 ~deterministic:true ~time_limit_s:30.0
        (knapsack seed)
    in
    let r4 =
      Portfolio.solve ~jobs:4 ~deterministic:true ~time_limit_s:30.0
        (knapsack seed)
    in
    let name what = Printf.sprintf "seed %d: %s" seed what in
    check_bool (name "jobs=1 optimal") true
      (r1.Portfolio.solution.B.status = B.Optimal);
    check_bool (name "jobs=4 optimal") true
      (r4.Portfolio.solution.B.status = B.Optimal);
    check_bool (name "same winner") true
      (r1.Portfolio.stats.Portfolio.winner = r4.Portfolio.stats.Portfolio.winner);
    (* bit-identical, not approximately equal *)
    check_bool (name "identical objective") true
      (r1.Portfolio.solution.B.obj = r4.Portfolio.solution.B.obj);
    check_bool (name "identical assignment") true
      (r1.Portfolio.solution.B.x = r4.Portfolio.solution.B.x)
  done

let test_portfolio_incumbent_exchange () =
  (* the all-zero vector is feasible for any knapsack: pre-seeding it
     into the shared cell guarantees at least one publish, and every
     worker that reaches its first poll imports it *)
  let p = knapsack 3 in
  let r =
    Portfolio.solve ~jobs:4 ~time_limit_s:30.0
      ~incumbent:(Array.make (P.num_vars p) 0.0)
      p
  in
  let st = r.Portfolio.stats in
  check_bool "solved" true (r.Portfolio.solution.B.status = B.Optimal);
  check_int "raced with 4 workers" 4 (List.length st.Portfolio.reports);
  check_bool "incumbents were published" true
    (st.Portfolio.incumbents_published >= 1);
  check_bool "incumbents were imported" true
    (st.Portfolio.incumbents_imported >= 1)

(* Chaos injection: kill one worker's domain at task start. The pool
   respawns it and the one crash retry re-runs the config, so the race
   still completes with a solution. *)
let test_portfolio_chaos_crash_recovery () =
  let armed = Atomic.make true in
  let chaos idx =
    if idx = 0 && Atomic.exchange armed false then
      raise (Pool.Poison "injected worker death")
  in
  let r = Portfolio.solve ~jobs:2 ~chaos ~time_limit_s:30.0 (knapsack 3) in
  check_bool "race completed despite the crash" true
    (r.Portfolio.solution.B.status = B.Optimal);
  check_bool "supervisor handled at least one death" true
    (r.Portfolio.stats.Portfolio.worker_crashes >= 1);
  (* the retried config recovered, so no report is marked crashed *)
  check_bool "no config ended crashed" true
    (List.for_all
       (fun (rep : Portfolio.report) -> not rep.Portfolio.crashed)
       r.Portfolio.stats.Portfolio.reports)

(* Out-of-retries crash: the config is reported crashed, the race still
   returns the surviving workers' solution instead of hanging. *)
let test_portfolio_crashed_config_reported () =
  let chaos idx =
    if idx = 1 then raise (Pool.Poison "persistent death")
  in
  let r = Portfolio.solve ~jobs:2 ~chaos ~time_limit_s:30.0 (knapsack 5) in
  check_bool "survivors completed the race" true
    (r.Portfolio.solution.B.status = B.Optimal);
  let reps = Array.of_list r.Portfolio.stats.Portfolio.reports in
  check_bool "the poisoned config is marked crashed" true
    reps.(1).Portfolio.crashed;
  check_bool "crashed config has no status" true
    (reps.(1).Portfolio.status = B.Unknown);
  check_bool "the winner is a survivor" true
    (match r.Portfolio.stats.Portfolio.winner with
     | Some w -> w <> 1
     | None -> false)

let test_portfolio_external_cancel () =
  let cancel = Pool.Token.create () in
  Pool.Token.cancel cancel;
  let r = Portfolio.solve ~jobs:2 ~cancel ~time_limit_s:30.0 (knapsack 5) in
  (* every worker observed the cancelled token at its first node *)
  check_bool "no worker ran to optimality" true
    (List.for_all
       (fun (rep : Portfolio.report) -> rep.Portfolio.status <> B.Optimal)
       r.Portfolio.stats.Portfolio.reports)

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_sweep_map_and_funnel () =
  let outs =
    Sweep.map ~jobs:3
      (fun ~deadline:_ x -> if x = 3 then raise Boom else x * 2)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int))
    "items in input order" [ 1; 2; 3; 4 ]
    (List.map (fun (o : _ Sweep.outcome) -> o.Sweep.item) outs);
  List.iter
    (fun (o : _ Sweep.outcome) ->
      match (o.Sweep.item, o.Sweep.result) with
      | 3, Error Boom -> ()
      | 3, _ -> Alcotest.fail "item 3 must funnel Boom"
      | i, Ok v -> check_int "doubled" (2 * i) v
      | _, Error e -> raise e)
    outs

let test_sweep_deadline_carving () =
  let global = Milp.Clock.deadline_of ~limit_s:60.0 in
  let outs =
    Sweep.map ~jobs:2 ~deadline:global
      (fun ~deadline x -> (deadline, x))
      [ 1; 2; 3; 4; 5 ]
  in
  List.iter
    (fun (o : _ Sweep.outcome) ->
      match o.Sweep.result with
      | Ok (d, _) ->
        check_bool "per-item deadline is finite" true (Float.is_finite d);
        check_bool "never beyond the global deadline" true (d <= global +. 1e-9);
        check_bool "matches the recorded deadline" true (d = o.Sweep.deadline)
      | Error e -> raise e)
    outs;
  (* without a global deadline, items run unbounded *)
  let outs = Sweep.map ~jobs:2 (fun ~deadline x -> (deadline, x)) [ 1; 2 ] in
  List.iter
    (fun (o : _ Sweep.outcome) ->
      match o.Sweep.result with
      | Ok (d, _) -> check_bool "unbounded" true (d = infinity)
      | Error e -> raise e)
    outs

(* A sweep item whose worker domain dies is transparently re-enqueued
   (default retry budget 1); a persistent crasher ends as a crashed
   outcome without aborting the sweep. *)
let test_sweep_worker_crash () =
  let armed = Atomic.make true in
  let outs =
    Sweep.map ~jobs:2
      (fun ~deadline:_ x ->
        if x = 2 && Atomic.exchange armed false then
          raise (Pool.Poison "sweep chaos");
        x * 10)
      [ 1; 2; 3 ]
  in
  List.iter
    (fun (o : _ Sweep.outcome) ->
      check_bool "retried item recovered" false (Sweep.crashed o);
      match o.Sweep.result with
      | Ok v -> check_int "result intact" (10 * o.Sweep.item) v
      | Error e -> raise e)
    outs;
  (* with the retry budget at 0, the crash surfaces as an outcome *)
  let outs =
    Sweep.map ~jobs:2 ~retry_on_crash:0
      (fun ~deadline:_ x ->
        if x = 2 then raise (Pool.Poison "sweep chaos");
        x * 10)
      [ 1; 2; 3 ]
  in
  check_int "every item has an outcome" 3 (List.length outs);
  List.iter
    (fun (o : _ Sweep.outcome) ->
      if o.Sweep.item = 2 then
        check_bool "poisoned item marked crashed" true (Sweep.crashed o)
      else begin
        check_bool "other items unaffected" false (Sweep.crashed o);
        match o.Sweep.result with
        | Ok v -> check_int "result intact" (10 * o.Sweep.item) v
        | Error e -> raise e
      end)
    outs

(* Regression (PR 4): the pool-failure branch stamped [deadline = nan]
   into the outcome (global -. now misapplied), poisoning any downstream
   arithmetic. A submission failure must record the carved/global
   deadline instead — always well-defined, never NaN. *)
let test_sweep_dead_pool_deadline () =
  let dead = Pool.create ~jobs:1 () in
  Pool.shutdown dead;
  let global = Milp.Clock.deadline_of ~limit_s:60.0 in
  let outs =
    Sweep.map ~pool:dead ~deadline:global (fun ~deadline:_ x -> x) [ 1; 2; 3 ]
  in
  check_int "every item has an outcome" 3 (List.length outs);
  List.iter
    (fun (o : _ Sweep.outcome) ->
      check_bool "submission failure funneled" true
        (Result.is_error o.Sweep.result);
      check_bool "deadline is not NaN" false (Float.is_nan o.Sweep.deadline);
      check_bool "records the global deadline" true
        (o.Sweep.deadline = global))
    outs;
  (* without a global deadline the fallback is [infinity], still not NaN *)
  let dead = Pool.create ~jobs:1 () in
  Pool.shutdown dead;
  let outs = Sweep.map ~pool:dead (fun ~deadline:_ x -> x) [ 1 ] in
  List.iter
    (fun (o : _ Sweep.outcome) ->
      check_bool "unbounded fallback" true (o.Sweep.deadline = infinity))
    outs

(* ------------------------------------------------------------------ *)
(* End to end: Solve.solve ?jobs on WATERS, certified both ways        *)
(* ------------------------------------------------------------------ *)

let test_solve_jobs_certified () =
  let app = Workload.Waters2019.make () in
  let groups = Groups.compute app in
  match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
  | None -> Alcotest.fail "WATERS unschedulable"
  | Some s ->
    let gamma = s.Rt_analysis.Sensitivity.gamma in
    let warm = Letdma.Heuristic.solve_unchecked app groups ~gamma in
    let solve jobs =
      Letdma.Solve.solve ~jobs ~time_limit_s:30.0 ?warm
        Letdma.Formulation.No_obj app groups ~gamma
    in
    let r1 = solve 1 and r4 = solve 4 in
    let certified name (r : Letdma.Solve.result) =
      check_bool (name ^ ": has a solution") true
        (Option.is_some r.Letdma.Solve.solution);
      match r.Letdma.Solve.certificate with
      | Some (Ok _) -> ()
      | Some (Error _) -> Alcotest.fail (name ^ ": certification rejected")
      | None -> Alcotest.fail (name ^ ": no certificate")
    in
    certified "sequential" r1;
    certified "portfolio jobs=4" r4

(* ------------------------------------------------------------------ *)
(* Property: engines and portfolio agree on Workload.Generator MILPs   *)
(* ------------------------------------------------------------------ *)

let small_config =
  {
    Workload.Generator.default_config with
    Workload.Generator.n_tasks = 3;
    n_edges = 1;
    max_labels_per_edge = 1;
  }

let prop_engines_agree =
  QCheck.Test.make ~name:"engines and portfolio agree on random instances"
    ~count:50
    QCheck.(int_range 1 5_000)
    (fun seed ->
      let app = Workload.Generator.random ~seed ~config:small_config () in
      let groups = Groups.compute app in
      QCheck.assume (not (Comm.Set.is_empty (Groups.s0 groups)));
      match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
      | None -> QCheck.assume_fail ()
      | Some s when not s.Rt_analysis.Sensitivity.schedulable ->
        QCheck.assume_fail ()
      | Some s ->
        let gamma = s.Rt_analysis.Sensitivity.gamma in
        let inst =
          Letdma.Formulation.make Letdma.Formulation.No_obj app groups ~gamma
        in
        let p = inst.Letdma.Formulation.problem in
        let budget = 5.0 and nodes = 50_000 in
        let bb = B.solve ~time_limit_s:budget ~node_limit:nodes p in
        (* instances the sequential engine cannot close quickly are
           outside this property's scope *)
        QCheck.assume (bb.B.status = B.Optimal);
        (* so are tolerance-edge instances whose optimum only satisfies
           the constraints to worse than 1e-6: the engines legitimately
           disagree on whether such a vertex is acceptable *)
        QCheck.assume
          (match bb.B.x with
          | Some x -> P.check_solution ~eps:1.0e-6 p x = []
          | None -> false);
        let dfs =
          Milp.Dfs_solver.solve ~time_limit_s:budget ~node_limit:nodes p
        in
        let pf jobs =
          Portfolio.solve ~jobs ~deterministic:true ~time_limit_s:budget
            ~node_limit:nodes p
        in
        let p1 = pf 1 and p4 = pf 4 in
        let obj_of name (s : B.solution) =
          if s.B.status <> B.Optimal then
            QCheck.Test.fail_reportf "seed %d: %s not optimal" seed name;
          match s.B.obj with
          | Some o -> o
          | None -> QCheck.Test.fail_reportf "seed %d: %s no obj" seed name
        in
        let reference = obj_of "best-first" bb in
        List.for_all
          (fun (name, s) -> Float.abs (obj_of name s -. reference) < 1e-6)
          [
            ("dfs", dfs);
            ("portfolio jobs=1", p1.Portfolio.solution);
            ("portfolio jobs=4", p4.Portfolio.solution);
          ]
        && p1.Portfolio.solution.B.obj = p4.Portfolio.solution.B.obj)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "exception funneling" `Quick
            test_pool_exception_funnel;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "token" `Quick test_token;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "worker death surfaces, never hangs" `Quick
            test_pool_worker_death_no_hang;
          Alcotest.test_case "crash retries re-enqueue the task" `Quick
            test_pool_retry_on_crash;
          Alcotest.test_case "shutdown after a crash" `Quick
            test_pool_shutdown_after_crash;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "foreign prune (best-first)" `Quick
            test_foreign_prune_best_first;
          Alcotest.test_case "foreign prune (dfs)" `Quick
            test_foreign_prune_dfs;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "deterministic mode is bit-identical" `Quick
            test_portfolio_deterministic_bit_identical;
          Alcotest.test_case "incumbent exchange counters" `Quick
            test_portfolio_incumbent_exchange;
          Alcotest.test_case "external cancel" `Quick
            test_portfolio_external_cancel;
          Alcotest.test_case "chaos crash recovery" `Quick
            test_portfolio_chaos_crash_recovery;
          Alcotest.test_case "crashed config reported" `Quick
            test_portfolio_crashed_config_reported;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "map order and funneling" `Quick
            test_sweep_map_and_funnel;
          Alcotest.test_case "deadline carving" `Quick
            test_sweep_deadline_carving;
          Alcotest.test_case "dead pool keeps deadline finite" `Quick
            test_sweep_dead_pool_deadline;
          Alcotest.test_case "worker crash retried then surfaced" `Quick
            test_sweep_worker_crash;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "Solve ?jobs certified on WATERS" `Slow
            test_solve_jobs_certified;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:true prop_engines_agree ] );
    ]
