(* Random workloads: generate seeded random applications and compare the
   MILP against the greedy heuristic on each (plan quality measured as the
   worst simulated lambda_i / gamma_i).

   Run with: dune exec examples/random_workload.exe *)

open Rt_model
open Let_sem

let worst_criticality app r =
  let m = Letdma.Experiment.metrics_of r Letdma.Baselines.Proposed in
  let worst = ref 0.0 in
  List.iter
    (fun (t : Task.t) ->
      let g = r.Letdma.Experiment.gamma.(t.Task.id) in
      if Time.compare g Time.zero > 0 then
        worst :=
          Float.max !worst
            (float_of_int (Time.to_ns m.Dma_sim.Sim.lambda.(t.Task.id))
            /. float_of_int (Time.to_ns g)))
    (App.tasks app);
  !worst

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  List.iter
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      let n_comms = Comm.Set.cardinal (Groups.s0 (Groups.compute app)) in
      Fmt.pr "seed %3d: %d tasks, %d labels, %d communications at s0@." seed
        (App.num_tasks app) (App.num_labels app) n_comms;
      List.iter
        (fun (name, solver) ->
          match Letdma.Experiment.run_config ~solver app ~alpha:0.3 with
          | Ok r ->
            Fmt.pr "  %-10s %2d transfers, worst lambda/gamma = %.4f@." name
              r.Letdma.Experiment.num_transfers (worst_criticality app r)
          | Error e ->
            Fmt.pr "  %-10s failed: %s@." name
              (Letdma.Experiment.error_to_string e))
        [
          ("heuristic", Letdma.Experiment.Heuristic);
          ( "milp",
            Letdma.Experiment.milp ~time_limit_s:10.0 Letdma.Formulation.No_obj
          );
        ])
    [ 1; 7; 42 ]
