(* The WATERS 2019 autonomous-driving case study, solved with the MILP
   under the OBJ-DEL objective (Eq. (5): minimize max lambda_i / T_i) and
   compared against the three Giotto baselines — one subplot of the
   paper's Fig. 2.

   Run with: dune exec examples/waters_case_study.exe *)

open Rt_model

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  let app = Workload.Waters2019.make () in
  Fmt.pr "%a@.@." App.pp app;
  let solver =
    Letdma.Experiment.milp ~time_limit_s:20.0 Letdma.Formulation.Min_delay_ratio
  in
  match Letdma.Experiment.run_config ~solver app ~alpha:0.2 with
  | Error e -> Fmt.epr "failed: %s@." (Letdma.Experiment.error_to_string e)
  | Ok r ->
    Fmt.pr "%a@.@." (Letdma.Solution.pp app) r.Letdma.Experiment.solution;
    Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2_subplot ppf app) r
