(* Structured observability spine: typed spans, point events and counters
   timestamped on the monotonic Milp.Clock, buffered per domain
   (Domain.DLS — a domain only ever appends to its own buffer, so the hot
   path takes no lock) and drained to a JSONL sink. Disabled, every emit
   is one atomic load and a branch.

   Concurrency contract: buffers are flushed by their owning domain when
   full and by [stop] for every buffer ever registered. [stop] must not
   race live emitters — in this codebase worker domains only exist inside
   Pool.with_pool, which joins them before returning, so stopping from
   the main domain after a solve is safe. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type fields = (string * value) list

type kind = Begin | End | Point | Counter

let kind_name = function
  | Begin -> "begin"
  | End -> "end"
  | Point -> "point"
  | Counter -> "counter"

type event = {
  ev_ts : float; (* absolute Milp.Clock.now, rebased on the sink's t0 *)
  ev_dom : int;
  ev_kind : kind;
  ev_cat : string;
  ev_name : string;
  ev_dur : float option; (* End events: span wall-clock duration *)
  ev_fields : fields;
}

(* --- JSON rendering --------------------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Finite floats only ever reach the sink as JSON numbers; a non-finite
   value (which would not parse as JSON) is written as null. *)
let add_float b f =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
  else Buffer.add_string b "null"

let add_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'

let render ~t0 b e =
  Buffer.add_string b "{\"ts\":";
  add_float b (e.ev_ts -. t0);
  Buffer.add_string b ",\"dom\":";
  Buffer.add_string b (string_of_int e.ev_dom);
  Buffer.add_string b ",\"kind\":\"";
  Buffer.add_string b (kind_name e.ev_kind);
  Buffer.add_string b "\",\"cat\":\"";
  escape b e.ev_cat;
  Buffer.add_string b "\",\"name\":\"";
  escape b e.ev_name;
  Buffer.add_char b '"';
  (match e.ev_dur with
   | Some d ->
     Buffer.add_string b ",\"dur\":";
     add_float b d
   | None -> ());
  (match e.ev_fields with
   | [] -> ()
   | fs ->
     Buffer.add_string b ",\"args\":{";
     List.iteri
       (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_char b '"';
         escape b k;
         Buffer.add_string b "\":";
         add_value b v)
       fs;
     Buffer.add_char b '}');
  Buffer.add_string b "}\n"

(* --- metrics aggregation ---------------------------------------------- *)

type metric = {
  mutable m_count : int; (* events seen for this (cat, name) *)
  mutable m_total_s : float; (* summed span durations (End events) *)
  mutable m_last : int; (* last Counter value *)
}

type row = {
  cat : string;
  name : string;
  count : int;
  total_s : float;
  last : int;
}

(* --- sink ------------------------------------------------------------- *)

type sink = {
  s_out : out_channel option; (* None: metrics-only collection *)
  s_t0 : float;
  s_mutex : Mutex.t; (* serialises flushes and metric updates *)
  s_metrics : (string * string, metric) Hashtbl.t;
  mutable s_lines : int;
  mutable s_dropped : int; (* events lost to buffer-epoch mismatches *)
}

(* [on] is the single hot-path check; [sink] is only read under it. *)
let on = Atomic.make false

let sink : sink option ref = ref None

(* epoch: bumped by every [start] so a buffer filled under a previous
   sink can never leak stale events into the current one *)
let epoch = Atomic.make 0

(* --- per-domain buffers ----------------------------------------------- *)

let buffer_capacity = 4096

type buffer = {
  b_dom : int;
  mutable b_epoch : int;
  events : event array;
  mutable len : int;
}

let dummy_event =
  {
    ev_ts = 0.0;
    ev_dom = 0;
    ev_kind = Point;
    ev_cat = "";
    ev_name = "";
    ev_dur = None;
    ev_fields = [];
  }

(* registry of every buffer ever created, so [stop] can drain buffers of
   pool domains that have already been joined *)
let registry_mutex = Mutex.create ()

let registry : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          b_dom = (Domain.self () :> int);
          b_epoch = Atomic.get epoch;
          events = Array.make buffer_capacity dummy_event;
          len = 0;
        }
      in
      Mutex.protect registry_mutex (fun () -> registry := b :: !registry);
      b)

let tally s e =
  let k = (e.ev_cat, e.ev_name) in
  let m =
    match Hashtbl.find_opt s.s_metrics k with
    | Some m -> m
    | None ->
      let m = { m_count = 0; m_total_s = 0.0; m_last = 0 } in
      Hashtbl.replace s.s_metrics k m;
      m
  in
  (* spans appear once in the counts (their Begin); the End contributes
     the duration *)
  (match e.ev_kind with
   | End -> (
     match e.ev_dur with Some d -> m.m_total_s <- m.m_total_s +. d | None -> ())
   | Begin | Point | Counter -> m.m_count <- m.m_count + 1);
  match (e.ev_kind, e.ev_fields) with
  | Counter, ("value", Int v) :: _ -> m.m_last <- v
  | _ -> ()

(* Drain [b] into the sink. Called by the owning domain (buffer full) or
   by [stop]/[start] from the draining domain. *)
let flush_buffer b =
  match !sink with
  | None -> b.len <- 0
  | Some s ->
    Mutex.protect s.s_mutex (fun () ->
        if b.b_epoch <> Atomic.get epoch then s.s_dropped <- s.s_dropped + b.len
        else begin
          let buf = Buffer.create 4096 in
          for i = 0 to b.len - 1 do
            let e = b.events.(i) in
            tally s e;
            render ~t0:s.s_t0 buf e
          done;
          (match s.s_out with
           | Some oc -> output_string oc (Buffer.contents buf)
           | None -> ());
          s.s_lines <- s.s_lines + b.len
        end);
    b.len <- 0

let emit kind ~cat ~name ?dur fields =
  if Atomic.get on then begin
    let b = Domain.DLS.get key in
    if b.b_epoch <> Atomic.get epoch then begin
      (* first event of this buffer under the current sink *)
      b.len <- 0;
      b.b_epoch <- Atomic.get epoch
    end;
    if b.len >= buffer_capacity then flush_buffer b;
    b.events.(b.len) <-
      {
        ev_ts = Milp.Clock.now ();
        ev_dom = b.b_dom;
        ev_kind = kind;
        ev_cat = cat;
        ev_name = name;
        ev_dur = dur;
        ev_fields = fields;
      };
    b.len <- b.len + 1
  end

(* --- public API ------------------------------------------------------- *)

let enabled () = Atomic.get on

let point ~cat name fields = emit Point ~cat ~name fields

let counter ~cat name v = emit Counter ~cat ~name [ ("value", Int v) ]

let span ~cat name ?(fields = []) f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Milp.Clock.now () in
    emit Begin ~cat ~name fields;
    Fun.protect f ~finally:(fun () ->
        emit End ~cat ~name ~dur:(Milp.Clock.now () -. t0) fields)
  end

let start ?file () =
  if Atomic.get on then invalid_arg "Obs.start: already started";
  let out =
    match file with Some f -> Some (open_out f) | None -> None
  in
  Atomic.incr epoch;
  sink :=
    Some
      {
        s_out = out;
        s_t0 = Milp.Clock.now ();
        s_mutex = Mutex.create ();
        s_metrics = Hashtbl.create 64;
        s_lines = 0;
        s_dropped = 0;
      };
  Atomic.set on true

let stop () =
  if Atomic.get on then begin
    Atomic.set on false;
    let buffers = Mutex.protect registry_mutex (fun () -> !registry) in
    (* drain in ascending domain order so jobs=1 runs are byte-stable *)
    List.iter flush_buffer
      (List.sort (fun a b -> compare a.b_dom b.b_dom) buffers);
    match !sink with
    | None -> ()
    | Some s -> (
      match s.s_out with Some oc -> close_out oc | None -> ())
  end

let with_trace ?file f =
  start ?file ();
  Fun.protect f ~finally:stop

let lines_written () = match !sink with Some s -> s.s_lines | None -> 0

(* metrics remain readable after [stop] (until the next [start]) *)
let metrics () =
  match !sink with
  | None -> []
  | Some s ->
    Hashtbl.fold
      (fun (cat, name) m acc ->
        { cat; name; count = m.m_count; total_s = m.m_total_s; last = m.m_last }
        :: acc)
      s.s_metrics []
    |> List.sort (fun a b ->
           match compare a.cat b.cat with 0 -> compare a.name b.name | c -> c)

let pp_metrics ppf () =
  let rows = metrics () in
  let hr () = Fmt.pf ppf "%s@," (String.make 56 '-') in
  Fmt.pf ppf "@[<v>== EVENT METRICS ==@,";
  hr ();
  Fmt.pf ppf "%-12s %-20s %10s %10s@," "category" "event" "count" "time(s)";
  hr ();
  List.iter
    (fun r ->
      Fmt.pf ppf "%-12s %-20s %10d %10s@," r.cat r.name r.count
        (if r.total_s > 0.0 then Fmt.str "%.3f" r.total_s else "-"))
    rows;
  hr ();
  Fmt.pf ppf "@]"

(* --- solver hook taps ------------------------------------------------- *)

(* Observability taps over the MILP engines' cooperation hooks. Node
   events are sampled past the first [node_sample] nodes (DFS dives
   explore millions); the sampling is deterministic, so jobs=1 traces
   stay byte-stable. *)
module Solver_hooks = struct
  let node_sample = 64

  let node_sample_mask = 255 (* past the prefix, keep every 256th node *)

  let wrap ?(worker = "main") (base : Milp.Branch_bound.hooks) =
    if not (Atomic.get on) then base
    else
      {
        base with
        Milp.Branch_bound.on_node =
          (fun ~node ~depth ~bound ~pivots ->
            base.Milp.Branch_bound.on_node ~node ~depth ~bound ~pivots;
            if node <= node_sample || node land node_sample_mask = 0 then
              point ~cat:"solver" "node"
                (("worker", Str worker) :: ("node", Int node)
                :: ("depth", Int depth) :: ("pivots", Int pivots)
                ::
                (match bound with
                 | Some b -> [ ("bound", Float b) ]
                 | None -> [])));
        on_incumbent =
          (fun ~obj x ->
            base.Milp.Branch_bound.on_incumbent ~obj x;
            point ~cat:"solver" "incumbent"
              [ ("worker", Str worker); ("obj", Float obj) ]);
        on_basis =
          (fun ~node ev ->
            base.Milp.Branch_bound.on_basis ~node ev;
            (* same deterministic sampling as node events: basis traffic
               is one-to-one with nodes on a warm search *)
            if node <= node_sample || node land node_sample_mask = 0 then
              point ~cat:"basis"
                (match ev with
                 | Milp.Branch_bound.Warm_hit -> "warm_hit"
                 | Milp.Branch_bound.Warm_miss -> "warm_miss"
                 | Milp.Branch_bound.Evict -> "evict")
                [ ("worker", Str worker); ("node", Int node) ]);
      }
end

(* --- JSONL validation ------------------------------------------------- *)

(* Minimal JSON parser, sufficient to validate the sink's own output and
   any other JSON value: the ci gate runs it over trace files and the
   bench's BENCH_*.json. Rejects NaN/Infinity tokens by construction
   (they are not JSON). *)
module Check = struct
  exception Bad of string

  let fail fmt = Fmt.kstr (fun m -> raise (Bad m)) fmt

  type cursor = { s : string; mutable pos : int }

  let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

  let advance c = c.pos <- c.pos + 1

  let rec skip_ws c =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
    | _ -> ()

  let expect c ch =
    match peek c with
    | Some x when x = ch -> advance c
    | Some x -> fail "expected %c at %d, got %c" ch c.pos x
    | None -> fail "expected %c at %d, got end of input" ch c.pos

  let literal c word =
    String.iter (fun ch -> expect c ch) word

  let parse_string c =
    expect c '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek c with
      | None -> fail "unterminated string"
      | Some '"' -> advance c
      | Some '\\' ->
        advance c;
        (match peek c with
         | Some (('"' | '\\' | '/') as ch) ->
           Buffer.add_char b ch;
           advance c
         | Some 'n' -> Buffer.add_char b '\n'; advance c
         | Some 't' -> Buffer.add_char b '\t'; advance c
         | Some 'r' -> Buffer.add_char b '\r'; advance c
         | Some 'b' -> Buffer.add_char b '\b'; advance c
         | Some 'f' -> Buffer.add_char b '\012'; advance c
         | Some 'u' ->
           advance c;
           for _ = 1 to 4 do
             (match peek c with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance c
              | _ -> fail "bad unicode escape at %d" c.pos)
           done;
           Buffer.add_char b '?'
         | _ -> fail "bad escape at %d" c.pos);
        go ()
      | Some ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
    in
    go ();
    Buffer.contents b

  let parse_number c =
    let start = c.pos in
    let consume () = advance c in
    (match peek c with Some '-' -> consume () | _ -> ());
    let digits () =
      let n0 = c.pos in
      let rec go () =
        match peek c with Some '0' .. '9' -> consume (); go () | _ -> ()
      in
      go ();
      if c.pos = n0 then fail "expected digit at %d" c.pos
    in
    digits ();
    (match peek c with
     | Some '.' ->
       consume ();
       digits ()
     | _ -> ());
    (match peek c with
     | Some ('e' | 'E') ->
       consume ();
       (match peek c with Some ('+' | '-') -> consume () | _ -> ());
       digits ()
     | _ -> ());
    match float_of_string_opt (String.sub c.s start (c.pos - start)) with
    | Some f when Float.is_finite f -> f
    | _ -> fail "bad number at %d" start

  type json =
    | Null
    | B of bool
    | N of float
    | S of string
    | A of json list
    | O of (string * json) list

  let rec parse_value c =
    skip_ws c;
    match peek c with
    | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; O [] end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((k, v) :: acc)
          | Some '}' -> advance c; O (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } at %d" c.pos
        in
        members []
      end
    | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; A [] end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elements (v :: acc)
          | Some ']' -> advance c; A (List.rev (v :: acc))
          | _ -> fail "expected , or ] at %d" c.pos
        in
        elements []
      end
    | Some '"' -> S (parse_string c)
    | Some 't' -> literal c "true"; B true
    | Some 'f' -> literal c "false"; B false
    | Some 'n' -> literal c "null"; Null
    | Some _ -> N (parse_number c)
    | None -> fail "empty value"

  let parse_document s =
    let c = { s; pos = 0 } in
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail "trailing garbage at %d" c.pos;
    v

  let kinds = [ "begin"; "end"; "point"; "counter" ]

  (* Validate one trace line: a JSON object carrying the required schema
     fields, with a numeric (hence finite) timestamp. *)
  let check_line line =
    match parse_document line with
    | exception Bad m -> Error m
    | O members ->
      let field k = List.assoc_opt k members in
      let ts =
        match field "ts" with
        | Some (N f) -> f
        | _ -> fail "missing numeric \"ts\""
      in
      let dom =
        match field "dom" with
        | Some (N f) when Float.is_integer f -> int_of_float f
        | _ -> fail "missing integer \"dom\""
      in
      (match field "kind" with
       | Some (S k) when List.mem k kinds -> ()
       | _ -> fail "missing or unknown \"kind\"");
      (match (field "cat", field "name") with
       | Some (S _), Some (S _) -> ()
       | _ -> fail "missing \"cat\"/\"name\"");
      Ok (ts, dom)
    | _ -> Error "trace line is not a JSON object"

  (* Validate a whole JSONL trace: every line parses, carries the schema
     fields, and timestamps are monotone per domain. Returns the number
     of lines. *)
  let trace_file path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let last_ts = Hashtbl.create 8 in
    let rec go n =
      match input_line ic with
      | exception End_of_file -> Ok n
      | line -> (
        match check_line line with
        | exception Bad m -> Error (Fmt.str "line %d: %s" (n + 1) m)
        | Error m -> Error (Fmt.str "line %d: %s" (n + 1) m)
        | Ok (ts, dom) ->
          let prev =
            match Hashtbl.find_opt last_ts dom with
            | Some t -> t
            | None -> neg_infinity
          in
          if ts < prev then
            Error
              (Fmt.str "line %d: timestamp %g < %g for domain %d" (n + 1) ts
                 prev dom)
          else begin
            Hashtbl.replace last_ts dom ts;
            go (n + 1)
          end)
    in
    go 0

  (* Validate that a file holds one well-formed JSON document (the bench's
     BENCH_*.json): parseable, hence free of NaN/Infinity tokens. *)
  let json_file path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    match parse_document s with
    | exception Bad m -> Error m
    | _ -> Ok ()

  (* The strict parser as a library entry point (checkpoint loading in
     [Resilience] rides the same NaN/Infinity-rejecting discipline). *)
  let parse_json s =
    match parse_document s with v -> Ok v | exception Bad m -> Error m
end
