(** Structured observability spine.

    Typed spans, point events and counters, timestamped on the monotonic
    {!Milp.Clock}, buffered per domain (the hot path takes no lock) and
    drained to a JSONL sink — one line per event:

    {v
    {"ts":0.0012,"dom":0,"kind":"begin","cat":"solver","name":"node",
     "args":{"node":17,"depth":3}}
    v}

    Fields: ["ts"] seconds since {!start} (monotonic, per-domain ordered),
    ["dom"] emitting domain id, ["kind"] one of
    ["begin"]/["end"]/["point"]/["counter"], ["cat"] subsystem category,
    ["name"] event name, ["dur"] span duration on [end] events, ["args"]
    optional event payload. Non-finite floats serialize as [null], so a
    sink file never contains NaN/Infinity tokens.

    When disabled (the default), every emit is a single atomic load and a
    branch. [stop] must only be called when no other domain is emitting;
    in this codebase worker domains live inside [Pool.with_pool], which
    joins them before returning. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type fields = (string * value) list

(** {1 Lifecycle} *)

val enabled : unit -> bool
(** [enabled ()] is [true] between {!start} and {!stop}. Cheap: one
    atomic load. *)

val start : ?file:string -> unit -> unit
(** [start ?file ()] enables event collection. With [file], events are
    appended to it as JSONL; without, only in-memory {!metrics} are
    aggregated. Raises [Invalid_argument] if already started. *)

val stop : unit -> unit
(** Disable collection, drain every per-domain buffer to the sink and
    close it. Metrics remain readable until the next {!start}. No-op if
    not started. *)

val with_trace : ?file:string -> (unit -> 'a) -> 'a
(** [with_trace ?file f] runs [f] between {!start} and {!stop}. *)

val lines_written : unit -> int
(** Events drained to the current sink so far. *)

(** {1 Emission} *)

val point : cat:string -> string -> fields -> unit
(** [point ~cat name fields] records an instantaneous event. *)

val counter : cat:string -> string -> int -> unit
(** [counter ~cat name v] records a counter sample [v]. *)

val span : cat:string -> string -> ?fields:fields -> (unit -> 'a) -> 'a
(** [span ~cat name ?fields f] wraps [f] in a [begin]/[end] event pair;
    the [end] event carries the wall-clock duration (and is emitted even
    if [f] raises). When disabled this is exactly [f ()]. *)

(** {1 Metrics} *)

type row = {
  cat : string;
  name : string;
  count : int;  (** events for this (cat, name); spans counted once *)
  total_s : float;  (** summed span durations from [end] events *)
  last : int;  (** last [counter] value *)
}

val metrics : unit -> row list
(** Aggregated per-(cat, name) rows, sorted; includes only events already
    drained to the sink (call after {!stop} for complete totals). *)

val pp_metrics : Format.formatter -> unit -> unit
(** Render {!metrics} as an aligned summary table. *)

(** {1 Solver taps} *)

module Solver_hooks : sig
  val wrap :
    ?worker:string -> Milp.Branch_bound.hooks -> Milp.Branch_bound.hooks
  (** [wrap ?worker hooks] layers observability over cooperation hooks:
      each explored node emits a (deterministically sampled — first 64,
      then every 256th) ["solver"/"node"] point with depth, LP bound and
      pivot cost; each incumbent improvement emits
      ["solver"/"incumbent"]; warm-start bookkeeping emits
      ["basis"/"warm_hit"], ["basis"/"warm_miss"] and ["basis"/"evict"]
      points under the same node sampling. The underlying callbacks
      still run first. Identity when tracing is disabled. *)
end

(** {1 Validation} *)

module Check : sig
  (** Parsed strict-JSON value: exactly the JSON data model — numbers
      are finite floats (the parser rejects NaN/Infinity tokens, which
      are not JSON). *)
  type json =
    | Null
    | B of bool
    | N of float
    | S of string
    | A of json list
    | O of (string * json) list

  val parse_json : string -> (json, string) result
  (** [parse_json s] parses [s] as one strict JSON document (no trailing
      garbage, no NaN/Infinity, objects keep member order). This is the
      same parser behind {!trace_file}/{!json_file}, exposed for
      checkpoint loading in [Resilience]. *)

  val trace_file : string -> (int, string) result
  (** [trace_file path] validates a JSONL trace: every line is a JSON
      object with numeric ["ts"], integer ["dom"], a known ["kind"] and
      string ["cat"]/["name"]; timestamps are monotone per domain; no
      NaN/Infinity tokens (they are not JSON). Returns the line count. *)

  val json_file : string -> (unit, string) result
  (** [json_file path] checks that [path] holds one well-formed JSON
      document (hence free of NaN/Infinity tokens). *)
end
