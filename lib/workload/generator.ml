open Rt_model

(* Seeded random workload generator, used by the ablation benches and by
   property-based tests. Periods are drawn from an automotive-style grid,
   WCETs from a bounded per-core utilization budget (UUniFast), and the
   communication graph from random cross-core writer/reader pairs. *)

type config = {
  n_cores : int;
  n_tasks : int;
  n_edges : int;
  periods_ms : int list; (* candidate periods *)
  min_label_bytes : int;
  max_label_bytes : int;
  max_labels_per_edge : int;
  utilization_per_core : float;
}

let default_config =
  {
    n_cores = 2;
    n_tasks = 6;
    n_edges = 5;
    periods_ms = [ 5; 10; 20; 50; 100 ];
    min_label_bytes = 8;
    max_label_bytes = 2048;
    max_labels_per_edge = 2;
    utilization_per_core = 0.5;
  }

(* A deliberately small instance class: sequential branch-and-bound
   finishes in seconds, with enough open nodes to interrupt mid-tree —
   sized for the checkpoint/resume chaos gate and property tests. *)
let small_config =
  {
    default_config with
    n_tasks = 4;
    n_edges = 3;
    periods_ms = [ 5; 10; 20 ];
    max_labels_per_edge = 1;
  }

(* UUniFast (Bini & Buttazzo): n utilization shares summing to [u]. *)
let uunifast st n u =
  let rec go i sum acc =
    if i = n then List.rev (sum :: acc)
    else begin
      let next = sum *. (Random.State.float st 1.0 ** (1.0 /. float_of_int (n - i))) in
      go (i + 1) next ((sum -. next) :: acc)
    end
  in
  if n <= 0 then [] else go 1 u []

let random ?(seed = 42) ?(config = default_config) () =
  if config.n_tasks < 2 then invalid_arg "Generator.random: need >= 2 tasks";
  if config.n_cores < 2 then invalid_arg "Generator.random: need >= 2 cores";
  let st = Random.State.make [| seed |] in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  (* tasks round-robin over cores so every core is populated *)
  let cores = List.init config.n_tasks (fun i -> i mod config.n_cores) in
  let per_core =
    List.init config.n_cores (fun k ->
        List.length (List.filter (Int.equal k) cores))
  in
  let utils =
    List.concat
      (List.mapi
         (fun k n -> List.map (fun u -> (k, u)) (uunifast st n config.utilization_per_core))
         per_core)
  in
  let utils_by_core = Array.make config.n_cores [] in
  List.iter (fun (k, u) -> utils_by_core.(k) <- u :: utils_by_core.(k)) utils;
  let tasks =
    List.mapi
      (fun i core ->
        let u =
          match utils_by_core.(core) with
          | u :: rest ->
            utils_by_core.(core) <- rest;
            u
          | [] -> 0.05
        in
        let period = Time.of_ms (pick config.periods_ms) in
        let wcet =
          Time.of_ns
            (max 1000 (int_of_float (u *. float_of_int (Time.to_ns period))))
        in
        let wcet = Time.min wcet period in
        Task.make ~id:i ~name:(Fmt.str "task%d" i) ~period ~wcet ~core)
      cores
  in
  let task_arr = Array.of_list tasks in
  (* random cross-core edges; each edge gets 1..max_labels_per_edge labels *)
  let labels = ref [] in
  let next_label = ref 0 in
  let edges_made = ref 0 in
  let attempts = ref 0 in
  while !edges_made < config.n_edges && !attempts < 100 * config.n_edges do
    incr attempts;
    let w = Random.State.int st config.n_tasks in
    let r = Random.State.int st config.n_tasks in
    if
      w <> r
      && task_arr.(w).Task.core <> task_arr.(r).Task.core
    then begin
      let k = 1 + Random.State.int st config.max_labels_per_edge in
      for _ = 1 to k do
        let size =
          config.min_label_bytes
          + Random.State.int st (config.max_label_bytes - config.min_label_bytes + 1)
        in
        labels :=
          Label.make ~id:!next_label ~name:(Fmt.str "lbl%d" !next_label) ~size
            ~writer:w ~readers:[ r ]
          :: !labels;
        incr next_label
      done;
      incr edges_made
    end
  done;
  let platform = Platform.make ~n_cores:config.n_cores () in
  App.make ~platform ~tasks ~labels:(List.rev !labels)
