(** Seeded random workload generator for ablations, scaling sweeps and
    property-based tests. Deterministic for a given seed. *)

open Rt_model

type config = {
  n_cores : int;
  n_tasks : int;
  n_edges : int;  (** cross-core producer/consumer pairs *)
  periods_ms : int list;
  min_label_bytes : int;
  max_label_bytes : int;
  max_labels_per_edge : int;
  utilization_per_core : float;
}

val default_config : config

(** Small instances (4 tasks, 3 edges, single-label flows): sequential
    branch-and-bound solves them to optimality in seconds while still
    exploring enough nodes to interrupt mid-tree — used by the
    checkpoint/resume chaos gate and property-based tests. *)
val small_config : config

(** UUniFast utilization shares (exposed for tests). *)
val uunifast : Random.State.t -> int -> float -> float list

val random : ?seed:int -> ?config:config -> unit -> App.t
