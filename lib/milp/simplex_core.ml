(* Persistent simplex state shared by the one-shot LP solver ({!Simplex})
   and the diving MILP solver ({!Dfs_solver}).

   The tableau survives across bound changes: {!set_var_bounds} adjusts
   the basic values for a variable's new domain, and {!dual_restore} runs
   the bounded dual simplex to re-establish primal feasibility while the
   (unchanged) reduced costs keep the basis dual feasible — the standard
   warm-start mechanism of branch-and-bound diving.

   Hot-path engineering (measured in the PRICING bench section):
   - every tableau row carries its nonzero support (a superset compacted
     whenever the row pivots), so Gaussian eliminations, reduced-cost
     updates and the dual entering scan skip structurally-zero entries;
   - the primal entering choice is devex reference-weight pricing over a
     bounded candidate list refreshed by a rotating partial scan, with
     classic Dantzig and Bland selectable per solve ({!pricing});
     optimality is only ever declared after a full refresh scan comes up
     empty, so partial pricing never weakens the optimality claim;
   - [row_of_col] inverts the basis so {!col_value} and bound moves on
     basic columns are O(1) instead of an O(m) basis scan.

   Conventions: every structural column has lower bound 0 after a per-
   variable shift; nonbasic columns rest at a bound; [beta] holds the
   basic values. See {!Simplex} for the one-shot API. *)

let src = Logs.Src.create "milp.simplex" ~doc:"LP simplex solver"

module Log = (val Logs.src_log src : Logs.LOG)

type status = At_lower | At_upper | Basic

(* Primal entering-variable rule. Devex (the default) prices a bounded
   candidate list against reference weights approximating steepest-edge
   norms; Dantzig is the classic most-negative full scan; Bland is the
   smallest-index full scan (terminating, slow). All three fall back to
   Bland's rule automatically after a degenerate stall. *)
type pricing = Dantzig | Devex | Bland

let pricing_name = function
  | Dantzig -> "dantzig"
  | Devex -> "devex"
  | Bland -> "bland"

(* Work counters, accumulated across every phase (and, via [?counters] on
   {!build}, across all tableaus of a branch-and-bound search). The warm
   fields account for {!Basis} reuse: a hit is a solve answered by a
   restored basis, a miss is a solve that wanted one but fell back to the
   cold path (basis evicted, structurally incompatible, or the dual
   repair failed); [dual_pivots_saved] is the caller's estimate of pivots
   the reuse avoided, and [basis_evictions] counts pool entries dropped
   under memory pressure. *)
type counters = {
  mutable pivots : int;             (* primal basis changes (phases I+II) *)
  mutable dual_pivots : int;        (* dual-simplex repair pivots *)
  mutable pricing_scanned : int;    (* candidate columns priced *)
  mutable pricing_refreshes : int;  (* candidate-list rebuild scans *)
  mutable warm_hits : int;          (* solves answered from a restored basis *)
  mutable warm_misses : int;        (* wanted a basis, fell back cold *)
  mutable dual_pivots_saved : int;  (* estimated pivots avoided by reuse *)
  mutable basis_evictions : int;    (* basis-pool LRU evictions *)
}

let fresh_counters () =
  {
    pivots = 0;
    dual_pivots = 0;
    pricing_scanned = 0;
    pricing_refreshes = 0;
    warm_hits = 0;
    warm_misses = 0;
    dual_pivots_saved = 0;
    basis_evictions = 0;
  }

let add_counters ~into c =
  into.pivots <- into.pivots + c.pivots;
  into.dual_pivots <- into.dual_pivots + c.dual_pivots;
  into.pricing_scanned <- into.pricing_scanned + c.pricing_scanned;
  into.pricing_refreshes <- into.pricing_refreshes + c.pricing_refreshes;
  into.warm_hits <- into.warm_hits + c.warm_hits;
  into.warm_misses <- into.warm_misses + c.warm_misses;
  into.dual_pivots_saved <- into.dual_pivots_saved + c.dual_pivots_saved;
  into.basis_evictions <- into.basis_evictions + c.basis_evictions

(* Immutable snapshot of a counters record (checkpointing). *)
let copy_counters c = { c with pivots = c.pivots }

(* Overwrite [into] with [c]'s values (checkpoint rehydration). *)
let set_counters ~into c =
  into.pivots <- c.pivots;
  into.dual_pivots <- c.dual_pivots;
  into.pricing_scanned <- c.pricing_scanned;
  into.pricing_refreshes <- c.pricing_refreshes;
  into.warm_hits <- c.warm_hits;
  into.warm_misses <- c.warm_misses;
  into.dual_pivots_saved <- c.dual_pivots_saved;
  into.basis_evictions <- c.basis_evictions

(* How an original variable maps to solver columns. The shift of Shifted /
   Flipped columns lives in the mutable [shift] array so branching can
   move bounds without rebuilding. *)
type var_map =
  | Fixed                          (* lo = hi; value = shift *)
  | Shifted of int                 (* x = shift + y_col *)
  | Flipped of int                 (* x = shift - y_col  (lo = -inf) *)
  | Split of int * int             (* x = y_pos - y_neg  (free) *)

type t = {
  problem : Problem.t;
  n : int;
  m : int;
  ncols : int;
  nstruct : int;
  mutable act : int;               (* active column width *)
  tab : float array array;         (* m x ncols: B^-1 A *)
  beta : float array;              (* basic values *)
  basis : int array;
  row_of_col : int array;          (* ncols: basis row of a Basic column, -1 otherwise *)
  stat : status array;
  upper : float array;             (* column upper bounds (lower is 0) *)
  enterable : bool array;
  vmap : var_map array;
  shift : float array;             (* per original variable *)
  col_of_var : int array;          (* structural column of Shifted vars, -1 otherwise *)
  artificials : int list;
  row_slack : int array;           (* m: slack column of each row, -1 if none *)
  sense_sig : int;                 (* order-sensitive hash of the problem's
                                      original row senses — independent of the
                                      RHS-sign normalization, so it is stable
                                      across bound changes (branching) *)
  mutable cost : float array;      (* phase-2 reduced costs (minimization) *)
  mutable obj_sign : float;        (* +1 minimize, -1 maximize *)
  mutable iters : int;
  pricing : pricing;
  cnt : counters;
  (* sparse row supports: [rsup.(i).(0 .. rsup_len.(i)-1)] is a superset
     of the nonzero columns of row i (below [act]); [rmem.(i)] is the
     membership byte per column. Fill-in is appended on elimination; the
     pivot row's support is rebuilt exactly at every pivot. *)
  rsup : int array array;
  rsup_len : int array;
  rmem : Bytes.t array;
  (* devex reference weights (primal pricing) *)
  dw : float array;
  (* partial-pricing candidate list (kept with its devex scores) *)
  cands : int array;
  cscore : float array;
  mutable ncands : int;
  mutable since_refresh : int;
}

let feas_eps = 1.0e-7
let pivot_eps = 1.0e-8
let cost_eps = 1.0e-7

(* candidate-list partial pricing: list width and forced-refresh period *)
let max_cands = 64
let refresh_period = 25

(* reset the devex reference framework when weights blow past this *)
let devex_weight_cap = 1.0e10

let iterations t = t.iters
let counters t = t.cnt

(* Current value of column [j]: O(1) via the inverse basis map. *)
let col_value tb j =
  match tb.stat.(j) with
  | At_lower -> 0.0
  | At_upper -> tb.upper.(j)
  | Basic ->
    let r = tb.row_of_col.(j) in
    if r >= 0 then tb.beta.(r) else 0.0

(* Append column [k] to row [i]'s support if not already present. *)
let sup_add tb i k =
  if Bytes.unsafe_get tb.rmem.(i) k = '\000' then begin
    Bytes.unsafe_set tb.rmem.(i) k '\001';
    let len = tb.rsup_len.(i) in
    let arr = tb.rsup.(i) in
    let arr =
      if len = Array.length arr then begin
        let bigger = Array.make (max 8 (2 * len)) 0 in
        Array.blit arr 0 bigger 0 len;
        tb.rsup.(i) <- bigger;
        bigger
      end
      else arr
    in
    arr.(len) <- k;
    tb.rsup_len.(i) <- len + 1
  end

(* Gaussian elimination pivot on (row r, column j); [costs] rows are
   eliminated alongside. [beta] is NOT touched: callers maintain it
   explicitly (needed for nonbasic-at-upper bookkeeping). The pivot
   row's support is rebuilt exactly (stale and deactivated entries are
   dropped); other rows gain fill-in entries, so their supports stay
   supersets of the true nonzero patterns. *)
let pivot tb costs r j =
  let trow = tb.tab.(r) in
  let p = trow.(j) in
  if Float.abs p < pivot_eps then invalid_arg "simplex: zero pivot";
  let act = tb.act in
  let inv = 1.0 /. p in
  let sup = tb.rsup.(r) in
  let len = tb.rsup_len.(r) in
  let mem = tb.rmem.(r) in
  let w = ref 0 in
  for ki = 0 to len - 1 do
    let k = Array.unsafe_get sup ki in
    if k < act then begin
      let v = Array.unsafe_get trow k *. inv in
      if v <> 0.0 then begin
        Array.unsafe_set trow k v;
        Array.unsafe_set sup !w k;
        incr w
      end
      else Bytes.unsafe_set mem k '\000'
    end
    else Bytes.unsafe_set mem k '\000'
  done;
  let n_nnz = !w in
  tb.rsup_len.(r) <- n_nnz;
  let eliminate_dense row f =
    for ki = 0 to n_nnz - 1 do
      let k = Array.unsafe_get sup ki in
      Array.unsafe_set row k
        (Array.unsafe_get row k -. (f *. Array.unsafe_get trow k))
    done;
    row.(j) <- 0.0
  in
  for i = 0 to tb.m - 1 do
    if i <> r then begin
      let row = tb.tab.(i) in
      let f = row.(j) in
      if f <> 0.0 then begin
        let memi = tb.rmem.(i) in
        for ki = 0 to n_nnz - 1 do
          let k = Array.unsafe_get sup ki in
          Array.unsafe_set row k
            (Array.unsafe_get row k -. (f *. Array.unsafe_get trow k));
          if Bytes.unsafe_get memi k = '\000' then sup_add tb i k
        done;
        row.(j) <- 0.0
      end
    end
  done;
  List.iter
    (fun cost ->
      let f = cost.(j) in
      if f <> 0.0 then eliminate_dense cost f)
    costs

(* ------------------------------------------------------------------ *)
(* Primal pricing                                                      *)
(* ------------------------------------------------------------------ *)

(* Improvement magnitude |d_j| of column [j], 0.0 when it may not enter. *)
let favorable tb cost j =
  if not tb.enterable.(j) then 0.0
  else
    match tb.stat.(j) with
    | Basic -> 0.0
    | At_lower -> if cost.(j) < -.cost_eps then -.cost.(j) else 0.0
    | At_upper -> if cost.(j) > cost_eps then cost.(j) else 0.0

(* Bland: smallest favorable index, full scan. *)
let select_bland tb cost =
  let entering = ref (-1) in
  (try
     for j = 0 to tb.act - 1 do
       if favorable tb cost j > 0.0 then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  tb.cnt.pricing_scanned <-
    tb.cnt.pricing_scanned + (if !entering < 0 then tb.act else !entering + 1);
  !entering

(* Dantzig: most favorable reduced cost, full scan (ties to the first). *)
let select_dantzig tb cost =
  let entering = ref (-1) in
  let best = ref 0.0 in
  for j = 0 to tb.act - 1 do
    let d = favorable tb cost j in
    if d > !best then begin
      best := d;
      entering := j
    end
  done;
  tb.cnt.pricing_scanned <- tb.cnt.pricing_scanned + tb.act;
  !entering

(* Rebuild the candidate list: full scan of the active range, keeping the
   [max_cands] columns with the best devex scores d_j^2 / w_j (min-tracked
   replacement into a fixed-width list). The scan always covers every
   active column, so an empty refresh proves optimality. *)
let refresh_cands tb cost =
  tb.cnt.pricing_refreshes <- tb.cnt.pricing_refreshes + 1;
  tb.since_refresh <- 0;
  let act = tb.act in
  let cap = Array.length tb.cands in
  let n = ref 0 in
  let min_i = ref 0 in
  for j = 0 to act - 1 do
    let d = favorable tb cost j in
    if d > 0.0 then begin
      let score = d *. d /. tb.dw.(j) in
      if !n < cap then begin
        tb.cands.(!n) <- j;
        tb.cscore.(!n) <- score;
        if !n = 0 || score < tb.cscore.(!min_i) then min_i := !n;
        incr n
      end
      else if score > tb.cscore.(!min_i) then begin
        tb.cands.(!min_i) <- j;
        tb.cscore.(!min_i) <- score;
        let m = ref 0 in
        for k = 1 to cap - 1 do
          if tb.cscore.(k) < tb.cscore.(!m) then m := k
        done;
        min_i := !m
      end
    end
  done;
  tb.cnt.pricing_scanned <- tb.cnt.pricing_scanned + act;
  tb.ncands <- !n

(* Devex over the candidate list: maximize d_j^2 / w_j among candidates,
   dropping entries that are no longer favorable. Refreshes when the list
   runs dry (and periodically, to pick up newly-favorable columns); a
   refresh that finds nothing is a proof of optimality. *)
let select_devex tb cost =
  let pick () =
    let entering = ref (-1) in
    let best = ref 0.0 in
    let w = ref 0 in
    for ci = 0 to tb.ncands - 1 do
      let j = tb.cands.(ci) in
      let d = favorable tb cost j in
      if d > 0.0 then begin
        tb.cands.(!w) <- j;
        incr w;
        let score = d *. d /. tb.dw.(j) in
        if score > !best then begin
          best := score;
          entering := j
        end
      end
    done;
    tb.cnt.pricing_scanned <- tb.cnt.pricing_scanned + tb.ncands;
    tb.ncands <- !w;
    !entering
  in
  tb.since_refresh <- tb.since_refresh + 1;
  if tb.since_refresh >= refresh_period then refresh_cands tb cost;
  let e = pick () in
  if e >= 0 then e
  else begin
    refresh_cands tb cost;
    pick ()
  end

(* Devex reference-weight update after pivoting column [q] into row [r]:
   for every column of the (already scaled) pivot row,
   w_k := max(w_k, trow_k^2 * w_q); the leaving variable gets
   max(w_q / p^2, 1) where p is the pre-scale pivot element. Weights are
   reset to the unit framework when they blow up. *)
let devex_update tb r q ~wq ~pval ~leaving =
  let trow = tb.tab.(r) in
  let sup = tb.rsup.(r) in
  let len = tb.rsup_len.(r) in
  let dw = tb.dw in
  let maxw = ref 0.0 in
  for ki = 0 to len - 1 do
    let k = Array.unsafe_get sup ki in
    if k <> q then begin
      let a = Array.unsafe_get trow k in
      let w = a *. a *. wq in
      if w > Array.unsafe_get dw k then begin
        Array.unsafe_set dw k w;
        if w > !maxw then maxw := w
      end
    end
  done;
  let wl = Float.max 1.0 (wq /. (pval *. pval)) in
  dw.(leaving) <- wl;
  dw.(q) <- 1.0;
  if !maxw > devex_weight_cap || wl > devex_weight_cap then
    Array.fill dw 0 tb.ncols 1.0

(* One primal iteration on the given reduced-cost row. *)
let step tb cost ~rule =
  let entering =
    match rule with
    | Bland -> select_bland tb cost
    | Dantzig -> select_dantzig tb cost
    | Devex -> select_devex tb cost
  in
  if entering < 0 then `Optimal
  else begin
    let j = entering in
    let sigma = match tb.stat.(j) with At_lower -> 1.0 | _ -> -1.0 in
    let t_best = ref tb.upper.(j) in
    let leave_row = ref (-1) in
    let leave_to_upper = ref false in
    for i = 0 to tb.m - 1 do
      let d = sigma *. tb.tab.(i).(j) in
      if d > pivot_eps then begin
        let t = Float.max 0.0 (tb.beta.(i) /. d) in
        if t < !t_best -. 1.0e-12 || (!leave_row < 0 && t <= !t_best) then begin
          t_best := t;
          leave_row := i;
          leave_to_upper := false
        end
      end
      else if d < -.pivot_eps then begin
        let u = tb.upper.(tb.basis.(i)) in
        if u < infinity then begin
          let t = Float.max 0.0 ((u -. tb.beta.(i)) /. -.d) in
          if t < !t_best -. 1.0e-12 || (!leave_row < 0 && t <= !t_best) then begin
            t_best := t;
            leave_row := i;
            leave_to_upper := true
          end
        end
      end
    done;
    if !t_best = infinity then `Unbounded
    else begin
      let t = !t_best in
      tb.iters <- tb.iters + 1;
      if !leave_row < 0 then begin
        for i = 0 to tb.m - 1 do
          tb.beta.(i) <- tb.beta.(i) -. (sigma *. tb.tab.(i).(j) *. t)
        done;
        tb.stat.(j) <-
          (match tb.stat.(j) with At_lower -> At_upper | _ -> At_lower);
        `Step
      end
      else begin
        let r = !leave_row in
        for i = 0 to tb.m - 1 do
          if i <> r then
            tb.beta.(i) <- tb.beta.(i) -. (sigma *. tb.tab.(i).(j) *. t)
        done;
        let entering_value =
          match tb.stat.(j) with
          | At_lower -> t
          | At_upper -> tb.upper.(j) -. t
          | Basic -> assert false
        in
        let old_basic = tb.basis.(r) in
        tb.stat.(old_basic) <- (if !leave_to_upper then At_upper else At_lower);
        tb.stat.(j) <- Basic;
        tb.basis.(r) <- j;
        tb.row_of_col.(old_basic) <- -1;
        tb.row_of_col.(j) <- r;
        tb.beta.(r) <- entering_value;
        `Pivot (r, j, old_basic)
      end
    end
  end

(* Degenerate-stall escalation ladder. Level 0 is the phase's configured
   pricing rule. A stall longer than the threshold first demotes devex
   partial pricing to a full Dantzig scan (level 1) with a fresh
   reference framework — a stale candidate list is the usual culprit,
   and full pricing escapes most stalls that partial pricing walks in
   circles on. Only a second full stall window engages Bland's rule
   (level 2, gated on the live stall counter exactly as before, so it
   disengages after a progress pivot). Dantzig/Bland runs skip straight
   to level 2. *)
let run_phase tb cost ~pricing ~extra_costs ~max_iters ~deadline =
  let stall = ref 0 in
  let fallback = ref (match pricing with Devex -> 0 | _ -> 2) in
  let bland_threshold = 2 * (tb.m + tb.ncols) in
  let rec loop () =
    if
      tb.iters > max_iters
      || (tb.iters land 127 = 0 && Clock.now () > deadline)
    then `Iteration_limit
    else begin
      if !stall > bland_threshold && !fallback < 2 then begin
        if !fallback = 0 then begin
          tb.ncands <- 0;
          Array.fill tb.dw 0 tb.ncols 1.0
        end;
        incr fallback;
        stall := 0
      end;
      let rule =
        if !fallback = 2 && !stall > bland_threshold then Bland
        else
          match !fallback with
          | 0 -> pricing
          | _ -> ( match pricing with Bland -> Bland | _ -> Dantzig)
      in
      match step tb cost ~rule with
      | `Optimal -> `Optimal
      | `Unbounded -> `Unbounded
      | `Step ->
        incr stall;
        loop ()
      | `Pivot (r, j, leaving) ->
        let wq = tb.dw.(j) in
        let pval = tb.tab.(r).(j) in
        pivot tb (cost :: extra_costs) r j;
        tb.cnt.pivots <- tb.cnt.pivots + 1;
        if rule = Devex then devex_update tb r j ~wq ~pval ~leaving;
        if tb.beta.(r) > feas_eps then stall := 0 else incr stall;
        loop ()
    end
  in
  loop ()

(* Reduced costs of [c] w.r.t. the current basis, using the row supports
   (entries outside a support are structurally zero). *)
let reduced_costs tb c =
  let cost = Array.copy c in
  let act = tb.act in
  for i = 0 to tb.m - 1 do
    let cb = c.(tb.basis.(i)) in
    if Float.abs cb > 0.0 then begin
      let row = tb.tab.(i) in
      let sup = tb.rsup.(i) in
      for ki = 0 to tb.rsup_len.(i) - 1 do
        let k = Array.unsafe_get sup ki in
        if k < act then
          Array.unsafe_set cost k
            (Array.unsafe_get cost k -. (cb *. Array.unsafe_get row k))
      done
    end
  done;
  for i = 0 to tb.m - 1 do
    cost.(tb.basis.(i)) <- 0.0
  done;
  cost

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let build ?(pricing = Devex) ?counters ?bounds (p : Problem.t) =
  let n = Problem.num_vars p in
  let get_bounds j =
    match bounds with
    | Some (lo, hi) -> (lo.(j), hi.(j))
    | None -> Problem.var_bounds p j
  in
  let vmap = Array.make n Fixed in
  let shift = Array.make n 0.0 in
  let col_of_var = Array.make n (-1) in
  let ncols_struct = ref 0 in
  let col_upper = ref [] in
  let infeasible_bounds = ref false in
  for j = 0 to n - 1 do
    let lo, hi = get_bounds j in
    if lo > hi +. 1.0e-12 then infeasible_bounds := true
    else if Float.abs (hi -. lo) <= 1.0e-12 && lo > neg_infinity then begin
      vmap.(j) <- Fixed;
      shift.(j) <- lo
    end
    else if lo > neg_infinity then begin
      let c = !ncols_struct in
      incr ncols_struct;
      col_upper := (hi -. lo) :: !col_upper;
      vmap.(j) <- Shifted c;
      shift.(j) <- lo;
      col_of_var.(j) <- c
    end
    else if hi < infinity then begin
      let c = !ncols_struct in
      incr ncols_struct;
      col_upper := infinity :: !col_upper;
      vmap.(j) <- Flipped c;
      shift.(j) <- hi
    end
    else begin
      let c1 = !ncols_struct in
      let c2 = !ncols_struct + 1 in
      ncols_struct := !ncols_struct + 2;
      col_upper := infinity :: infinity :: !col_upper;
      vmap.(j) <- Split (c1, c2)
    end
  done;
  if !infeasible_bounds then None
  else begin
    let nstruct = !ncols_struct in
    let struct_upper = Array.of_list (List.rev !col_upper) in
    let substitute expr =
      let row = Array.make nstruct 0.0 in
      let const = ref (Linexpr.constant expr) in
      Linexpr.iter_terms
        (fun c j ->
          match vmap.(j) with
          | Fixed -> const := !const +. (c *. shift.(j))
          | Shifted col ->
            row.(col) <- row.(col) +. c;
            const := !const +. (c *. shift.(j))
          | Flipped col ->
            row.(col) <- row.(col) -. c;
            const := !const +. (c *. shift.(j))
          | Split (cp, cn) ->
            row.(cp) <- row.(cp) +. c;
            row.(cn) <- row.(cn) -. c)
        expr;
      (row, !const)
    in
    let m = Problem.num_constrs p in
    let rows = Array.make m [||] in
    let rhs = Array.make m 0.0 in
    let senses = Array.make m Problem.Eq in
    let osenses = Array.make m Problem.Eq in
    let row_ids = Array.make m 0 in
    let k = ref 0 in
    Problem.iter_constrs
      (fun c ->
        row_ids.(!k) <- c.Problem.c_id;
        osenses.(!k) <- c.Problem.c_sense;
        let row, const = substitute c.Problem.c_expr in
        let b = c.Problem.c_rhs -. const in
        (* normalize to b >= 0; ">= 0" rows become "<= 0" so they start
           feasible with a plain slack and need no artificial *)
        let row, b, sense =
          if b < 0.0 || (b = 0.0 && c.Problem.c_sense = Problem.Ge) then begin
            for i = 0 to nstruct - 1 do
              row.(i) <- -.row.(i)
            done;
            ( row,
              -.b,
              match c.Problem.c_sense with
              | Problem.Le -> Problem.Ge
              | Problem.Ge -> Problem.Le
              | Problem.Eq -> Problem.Eq )
          end
          else (row, b, c.Problem.c_sense)
        in
        rows.(!k) <- row;
        rhs.(!k) <- b;
        senses.(!k) <- sense;
        incr k)
      p;
    let n_slack =
      Array.fold_left
        (fun acc s ->
          match s with Problem.Le | Problem.Ge -> acc + 1 | Problem.Eq -> acc)
        0 senses
    in
    let n_artif =
      Array.fold_left
        (fun acc s ->
          match s with Problem.Ge | Problem.Eq -> acc + 1 | Problem.Le -> acc)
        0 senses
    in
    let ncols = nstruct + n_slack + n_artif in
    let tab =
      Array.init m (fun i ->
          let row = Array.make ncols 0.0 in
          Array.blit rows.(i) 0 row 0 nstruct;
          row)
    in
    let upper = Array.make ncols infinity in
    Array.blit struct_upper 0 upper 0 nstruct;
    let stat = Array.make ncols At_lower in
    let basis = Array.make m (-1) in
    let beta = Array.make m 0.0 in
    let enterable = Array.make ncols true in
    let slack_idx = ref nstruct in
    let artif_idx = ref (nstruct + n_slack) in
    let artificials = ref [] in
    let row_slack = Array.make m (-1) in
    for i = 0 to m - 1 do
      beta.(i) <- rhs.(i);
      match senses.(i) with
      | Problem.Le ->
        let s = !slack_idx in
        incr slack_idx;
        tab.(i).(s) <- 1.0;
        basis.(i) <- s;
        stat.(s) <- Basic;
        row_slack.(i) <- s
      | Problem.Ge ->
        let s = !slack_idx in
        incr slack_idx;
        tab.(i).(s) <- -1.0;
        row_slack.(i) <- s;
        let a = !artif_idx in
        incr artif_idx;
        tab.(i).(a) <- 1.0;
        basis.(i) <- a;
        stat.(a) <- Basic;
        enterable.(a) <- false;
        artificials := a :: !artificials
      | Problem.Eq ->
        let a = !artif_idx in
        incr artif_idx;
        tab.(i).(a) <- 1.0;
        basis.(i) <- a;
        stat.(a) <- Basic;
        enterable.(a) <- false;
        artificials := a :: !artificials
    done;
    let row_of_col = Array.make ncols (-1) in
    for i = 0 to m - 1 do
      row_of_col.(basis.(i)) <- i
    done;
    (* initial row supports: exact nonzero patterns of the start tableau *)
    let rsup = Array.make m [||] in
    let rsup_len = Array.make m 0 in
    let rmem = Array.init m (fun _ -> Bytes.make ncols '\000') in
    for i = 0 to m - 1 do
      let row = tab.(i) in
      let nnz = ref 0 in
      for k = 0 to ncols - 1 do
        if row.(k) <> 0.0 then incr nnz
      done;
      let sup = Array.make (max 8 !nnz) 0 in
      let w = ref 0 in
      let mem = rmem.(i) in
      for k = 0 to ncols - 1 do
        if row.(k) <> 0.0 then begin
          sup.(!w) <- k;
          incr w;
          Bytes.set mem k '\001'
        end
      done;
      rsup.(i) <- sup;
      rsup_len.(i) <- !w
    done;
    (* hash the ORIGINAL senses, not the normalized ones: normalization
       flips with the sign of the (bound-shifted) RHS, so a hash of the
       normalized senses would change under branching bounds and defeat
       warm starts (see [Basis]) *)
    let sense_sig =
      Array.fold_left
        (fun h s ->
          (h * 31)
          + (match s with Problem.Le -> 1 | Problem.Ge -> 2 | Problem.Eq -> 3))
        17 osenses
    in
    let tb =
      {
        problem = p;
        n;
        m;
        ncols;
        nstruct;
        act = ncols;
        tab;
        beta;
        basis;
        row_of_col;
        stat;
        upper;
        enterable;
        vmap;
        shift;
        col_of_var;
        artificials = !artificials;
        row_slack;
        sense_sig;
        cost = [||];
        obj_sign = 1.0;
        iters = 0;
        pricing;
        cnt = (match counters with Some c -> c | None -> fresh_counters ());
        rsup;
        rsup_len;
        rmem;
        dw = Array.make ncols 1.0;
        cands = Array.make (max 1 (min ncols max_cands)) 0;
        cscore = Array.make (max 1 (min ncols max_cands)) 0.0;
        ncands = 0;
        since_refresh = 0;
      }
    in
    (* tiny deterministic rhs perturbation against degenerate stalling,
       inequality rows only (each has its own slack, so no dependency
       between equalities can be broken). Keyed on the row's stable origin
       id [Problem.c_id], not its current index: presolve drops redundant
       rows, and an index-keyed perturbation would re-key every surviving
       row — the reduced and original problems would then solve to
       different vertices and branch-and-bound would explore genuinely
       different trees. Origin ids survive presolve verbatim, so the
       perturbed geometries agree (and without presolve, id = index, so
       this is exactly the historical perturbation). *)
    for i = 0 to m - 1 do
      match senses.(i) with
      | Problem.Le | Problem.Ge ->
        tb.beta.(i) <-
          tb.beta.(i)
          +. (2.0e-8 *. float_of_int (1 + (row_ids.(i) mod 89)))
      | Problem.Eq -> ()
    done;
    Some tb
  end

(* ------------------------------------------------------------------ *)
(* Phases                                                              *)
(* ------------------------------------------------------------------ *)

(* Phase I: drive artificials to zero, fix them there, try to pivot the
   degenerate ones out of the basis, shrink the active width. *)
let phase1 tb ~max_iters ~deadline =
  if tb.artificials = [] then begin
    tb.act <- tb.ncols - 0;
    (* no artificial columns were created at all *)
    `Feasible
  end
  else begin
    let c1 = Array.make tb.ncols 0.0 in
    List.iter (fun a -> c1.(a) <- 1.0) tb.artificials;
    let cost = reduced_costs tb c1 in
    (* Phase I prices the artificial objective with a full Dantzig scan
       even under devex: the auxiliary cost row is ephemeral and heavily
       degenerate, and reference weights learned on it are worthless (and
       measurably unstable) — the devex framework starts fresh on the
       real objective in phase II. A configured Bland run stays Bland. *)
    let ph1_pricing = match tb.pricing with Devex -> Dantzig | r -> r in
    match
      run_phase tb cost ~pricing:ph1_pricing ~extra_costs:[] ~max_iters
        ~deadline
    with
    | `Optimal ->
      let infeas =
        List.fold_left (fun acc a -> acc +. col_value tb a) 0.0 tb.artificials
      in
      if infeas > 1.0e-5 then `Infeasible
      else begin
        List.iter (fun a -> tb.upper.(a) <- 0.0) tb.artificials;
        let first_artif =
          List.fold_left min tb.ncols tb.artificials
        in
        for r = 0 to tb.m - 1 do
          if tb.basis.(r) >= first_artif && Float.abs tb.beta.(r) <= feas_eps
          then begin
            (* smallest-index nonbasic column of the row's support with a
               usable coefficient *)
            let j = ref (-1) in
            let sup = tb.rsup.(r) in
            for ki = 0 to tb.rsup_len.(r) - 1 do
              let k = sup.(ki) in
              if
                k < first_artif
                && (!j < 0 || k < !j)
                && Float.abs tb.tab.(r).(k) > 100.0 *. pivot_eps
                && tb.stat.(k) <> Basic
              then j := k
            done;
            if !j >= 0 then begin
              let entering = !j in
              let entering_value =
                match tb.stat.(entering) with
                | At_lower -> 0.0
                | At_upper -> tb.upper.(entering)
                | Basic -> assert false
              in
              let leaving = tb.basis.(r) in
              tb.stat.(leaving) <- At_lower;
              tb.stat.(entering) <- Basic;
              tb.basis.(r) <- entering;
              tb.row_of_col.(leaving) <- -1;
              tb.row_of_col.(entering) <- r;
              pivot tb [ cost ] r entering;
              tb.cnt.pivots <- tb.cnt.pivots + 1;
              tb.beta.(r) <- entering_value
            end
          end
        done;
        let any_basic_artif = ref false in
        for r = 0 to tb.m - 1 do
          if tb.basis.(r) >= first_artif then any_basic_artif := true
        done;
        if not !any_basic_artif then tb.act <- first_artif;
        `Feasible
      end
    | `Unbounded -> `Infeasible (* phase-I objective is bounded below *)
    | `Iteration_limit -> `Limit
  end

(* Tiny deterministic perturbation of the nonbasic reduced costs, in the
   dual-feasible direction for each column's current status. Breaks the
   massive ratio-degeneracy (many exactly-zero reduced costs) that makes
   the bounded dual simplex cycle on assignment-like models; magnitudes
   stay below [cost_eps] so primal pricing is unaffected, and objective
   values are always re-evaluated from the original expression. *)
let perturb_costs tb =
  for j = 0 to tb.ncols - 1 do
    match tb.stat.(j) with
    | Basic -> ()
    | At_lower ->
      tb.cost.(j) <- tb.cost.(j) +. (1.0e-9 *. float_of_int (1 + (j * 31 mod 127)))
    | At_upper ->
      tb.cost.(j) <- tb.cost.(j) -. (1.0e-9 *. float_of_int (1 + (j * 31 mod 127)))
  done

(* Install the problem's objective as the phase-2 reduced-cost row. *)
let install_objective tb =
  let dir, obj_expr = Problem.objective tb.problem in
  tb.obj_sign <-
    (match dir with Problem.Minimize -> 1.0 | Problem.Maximize -> -1.0);
  let c2 = Array.make tb.ncols 0.0 in
  Linexpr.iter_terms
    (fun c j ->
      match tb.vmap.(j) with
      | Fixed -> ()
      | Shifted col -> c2.(col) <- c2.(col) +. (tb.obj_sign *. c)
      | Flipped col -> c2.(col) <- c2.(col) -. (tb.obj_sign *. c)
      | Split (cp, cn) ->
        c2.(cp) <- c2.(cp) +. (tb.obj_sign *. c);
        c2.(cn) <- c2.(cn) -. (tb.obj_sign *. c))
    obj_expr;
  tb.cost <- reduced_costs tb c2;
  perturb_costs tb;
  (* phase change: restart the pricing state. The candidate list belongs
     to the previous cost row, and the devex reference framework starts
     fresh on the real objective (phase I priced with Dantzig, so the
     weights are still the unit framework unless a caller re-installs an
     objective mid-run — reset keeps that path honest too). *)
  tb.ncands <- 0;
  tb.since_refresh <- 0;
  Array.fill tb.dw 0 tb.ncols 1.0

(* Phase II on the installed objective. *)
let phase2 tb ~max_iters ~deadline =
  run_phase tb tb.cost ~pricing:tb.pricing ~extra_costs:[] ~max_iters
    ~deadline

(* Extract the solution in original-variable space. *)
let solution tb =
  let yval = Array.make tb.ncols 0.0 in
  for j = 0 to tb.ncols - 1 do
    yval.(j) <-
      (match tb.stat.(j) with
       | At_lower -> 0.0
       | At_upper -> tb.upper.(j)
       | Basic -> 0.0)
  done;
  for i = 0 to tb.m - 1 do
    yval.(tb.basis.(i)) <- tb.beta.(i)
  done;
  let x = Array.make tb.n 0.0 in
  for j = 0 to tb.n - 1 do
    x.(j) <-
      (match tb.vmap.(j) with
       | Fixed -> tb.shift.(j)
       | Shifted col -> tb.shift.(j) +. yval.(col)
       | Flipped col -> tb.shift.(j) -. yval.(col)
       | Split (cp, cn) -> yval.(cp) -. yval.(cn))
  done;
  x

let objective_value tb =
  let _, obj_expr = Problem.objective tb.problem in
  Linexpr.eval obj_expr (solution tb)

(* ------------------------------------------------------------------ *)
(* Warm restarts: bound changes + bounded dual simplex                 *)
(* ------------------------------------------------------------------ *)

(* Move variable [j]'s domain to [lo, hi]. Only supported for variables
   built as [Shifted] (every finitely-bounded variable — in particular
   all integers branch-and-bound touches). The basis is untouched; basic
   values are adjusted and may leave their bounds, to be repaired by
   {!dual_restore}. *)
let set_var_bounds tb j ~lo ~hi =
  match tb.vmap.(j) with
  | Shifted col ->
    let old_lo = tb.shift.(j) in
    let old_hi = old_lo +. tb.upper.(col) in
    let dx =
      match tb.stat.(col) with
      | At_lower -> lo -. old_lo
      | At_upper -> hi -. old_hi
      | Basic -> 0.0
    in
    if dx <> 0.0 then begin
      (* the nonbasic variable's actual value moves by dx *)
      for i = 0 to tb.m - 1 do
        let a = tb.tab.(i).(col) in
        if a <> 0.0 then tb.beta.(i) <- tb.beta.(i) -. (a *. dx)
      done
    end;
    (match tb.stat.(col) with
     | Basic ->
       (* y = x - shift: re-shift the stored basic value *)
       let r = tb.row_of_col.(col) in
       if r >= 0 then tb.beta.(r) <- tb.beta.(r) -. (lo -. old_lo)
     | At_lower | At_upper -> ());
    tb.shift.(j) <- lo;
    tb.upper.(col) <- hi -. lo
  | Fixed | Flipped _ | Split _ ->
    invalid_arg "Simplex_core.set_var_bounds: variable is not Shifted"

let var_bounds_of tb j =
  match tb.vmap.(j) with
  | Shifted col -> (tb.shift.(j), tb.shift.(j) +. tb.upper.(col))
  | Fixed -> (tb.shift.(j), tb.shift.(j))
  | Flipped col ->
    ignore col;
    (neg_infinity, tb.shift.(j))
  | Split _ -> (neg_infinity, infinity)

(* Bounded dual simplex: repair primal feasibility after bound changes
   while the reduced costs (unchanged by bound moves) stay dual feasible.
   On success the basis is optimal again. The entering scan walks the
   leaving row's nonzero support instead of every active column.

   Repeated dense row updates drift the basic values by ~1e-6 over a few
   hundred pivots; a leftover violation of that size routinely has no
   eligible entering column (the drift is noise, not geometry). Declaring
   [`Infeasible] there would discard the whole warm solve, so violations
   up to [drop_eps] are snapped onto their bound instead — the same
   magnitude of error the cold path's solutions already carry. *)
let drop_eps = 1.0e-5

let dual_restore tb ~max_iters ~deadline =
  let start_iters = tb.iters in
  let reperturbed = ref false in
  let rec loop () =
    let done_iters = tb.iters - start_iters in
    if done_iters > max_iters then `Limit
    else if tb.iters land 127 = 0 && Clock.now () > deadline then `Limit
    else begin
      (* after a long stall, refresh the anti-degeneracy perturbation once,
         then fall back to smallest-index selections *)
      let stalled = done_iters > 2 * tb.m in
      if stalled && not !reperturbed then begin
        reperturbed := true;
        perturb_costs tb
      end;
      (* violated basic variable: most violated, or smallest row index when
         stalled (the leaving-row choice is free; correctness is preserved) *)
      let r = ref (-1) in
      let worst = ref feas_eps in
      let over_upper = ref false in
      (try
         for i = 0 to tb.m - 1 do
           let b = tb.beta.(i) in
           if -.b > !worst then begin
             worst := -.b;
             r := i;
             over_upper := false;
             if stalled then raise Exit
           end;
           let u = tb.upper.(tb.basis.(i)) in
           if u < infinity && b -. u > !worst then begin
             worst := b -. u;
             r := i;
             over_upper := true;
             if stalled then raise Exit
           end
         done
       with Exit -> ());
      if !r < 0 then `Feasible
      else begin
        let r = !r in
        let row = tb.tab.(r) in
        (* eligible entering columns from the row's nonzero support; the
           dual ratio test (minimal |cost/a|, ties to the smallest index)
           must be respected even when stalled — entering on a non-minimal
           ratio would break dual feasibility and hence the optimality of
           the repaired basis. Columns fixed at width 0 (e.g.
           branching-fixed binaries) can never usefully enter. *)
        let entering = ref (-1) in
        let best_ratio = ref infinity in
        let sup = tb.rsup.(r) in
        let act = tb.act in
        for ki = 0 to tb.rsup_len.(r) - 1 do
          let j = Array.unsafe_get sup ki in
          if
            j < act && tb.enterable.(j) && tb.stat.(j) <> Basic
            && tb.upper.(j) > 0.0
          then begin
            let a = row.(j) in
            if Float.abs a > pivot_eps then begin
              let eligible =
                if not !over_upper then
                  (* beta_r below lower: raise it *)
                  match tb.stat.(j) with
                  | At_lower -> a < 0.0
                  | At_upper -> a > 0.0
                  | Basic -> false
                else
                  match tb.stat.(j) with
                  | At_lower -> a > 0.0
                  | At_upper -> a < 0.0
                  | Basic -> false
              in
              if eligible then begin
                let ratio = Float.abs (tb.cost.(j) /. a) in
                if
                  ratio < !best_ratio -. 1.0e-12
                  || (ratio <= !best_ratio +. 1.0e-12
                      && (!entering < 0 || j < !entering))
                then begin
                  if ratio < !best_ratio then best_ratio := ratio;
                  entering := j
                end
              end
            end
          end
        done;
        if !entering < 0 then
          if !worst <= drop_eps then begin
            (* numerical drift, not structural infeasibility: no pivot can
               remove it, so absorb it into the bound and keep repairing *)
            tb.beta.(r) <-
              (if !over_upper then tb.upper.(tb.basis.(r)) else 0.0);
            loop ()
          end
          else `Infeasible
        else begin
          let j = !entering in
          let target = if !over_upper then tb.upper.(tb.basis.(r)) else 0.0 in
          let t = (tb.beta.(r) -. target) /. row.(j) in
          tb.iters <- tb.iters + 1;
          (* the leaving variable rests at the violated bound *)
          let leaving = tb.basis.(r) in
          let entering_bound_value =
            match tb.stat.(j) with
            | At_lower -> 0.0
            | At_upper -> tb.upper.(j)
            | Basic -> assert false
          in
          for i = 0 to tb.m - 1 do
            if i <> r then begin
              let a = tb.tab.(i).(j) in
              if a <> 0.0 then tb.beta.(i) <- tb.beta.(i) -. (a *. t)
            end
          done;
          tb.stat.(leaving) <- (if !over_upper then At_upper else At_lower);
          tb.stat.(j) <- Basic;
          tb.basis.(r) <- j;
          tb.row_of_col.(leaving) <- -1;
          tb.row_of_col.(j) <- r;
          pivot tb [ tb.cost ] r j;
          tb.cnt.dual_pivots <- tb.cnt.dual_pivots + 1;
          tb.beta.(r) <- entering_bound_value +. t;
          loop ()
        end
      end
    end
  in
  loop ()

(* Composite phase I: primal simplex on the piecewise-linear total
   infeasibility  w = sum max(0, -beta_i) + sum max(0, beta_i - u_i).
   Unlike the artificial phase I it starts from ANY basis, and unlike
   {!dual_restore} its steering does not depend on the problem's reduced
   costs — on the mostly-zero objectives of this MILP family the dual
   repair is completely dual-degenerate (every ratio ~0) and wanders,
   while w's gradient always points at feasibility. Used by {!restore}
   when the budgeted dual repair stalls.

   Each iteration prices the infeasibility objective over the violated
   rows' supports, enters the best improving column (Dantzig; smallest
   index after a stall), and stops at the first breakpoint: a feasible
   basic reaching a bound, a violated basic reaching the bound it
   violates (it becomes feasible there), or the entering column's own
   width (a bound flip — no pivot). The phase-2 cost row is carried
   through every pivot, so a successful repair continues straight into
   {!phase2}. *)
let primal_repair tb ~max_iters ~deadline =
  let m = tb.m in
  let d = Array.make tb.act 0.0 in
  let start_iters = tb.iters in
  let best_w = ref infinity in
  let last_gain = ref 0 in
  let rec loop () =
    let done_iters = tb.iters - start_iters in
    if done_iters > max_iters then `Limit
    else if tb.iters land 127 = 0 && Clock.now () > deadline then `Limit
    else begin
      (* total infeasibility and the violated-row gradient *)
      Array.fill d 0 tb.act 0.0;
      let w = ref 0.0 and worst = ref 0.0 and nviol = ref 0 in
      for i = 0 to m - 1 do
        let b = tb.beta.(i) in
        let u = tb.upper.(tb.basis.(i)) in
        let viol = if -.b > feas_eps then -.b
                   else if u < infinity && b -. u > feas_eps then b -. u
                   else 0.0
        in
        if viol > 0.0 then begin
          incr nviol;
          w := !w +. viol;
          if viol > !worst then worst := viol;
          let sgn = if b < 0.0 then 1.0 else -1.0 in
          let row = tb.tab.(i) in
          let sup = tb.rsup.(i) in
          for ki = 0 to tb.rsup_len.(i) - 1 do
            let k = Array.unsafe_get sup ki in
            if k < tb.act then
              d.(k) <- d.(k) +. (sgn *. Array.unsafe_get row k)
          done
        end
      done;
      if !nviol = 0 then `Feasible
      else if !worst <= drop_eps then begin
        (* only drift-sized violations remain: absorb them *)
        for i = 0 to m - 1 do
          let b = tb.beta.(i) in
          if b < 0.0 then tb.beta.(i) <- 0.0
          else begin
            let u = tb.upper.(tb.basis.(i)) in
            if u < infinity && b > u then tb.beta.(i) <- u
          end
        done;
        `Feasible
      end
      else begin
        if !w < !best_w -. feas_eps then begin
          best_w := !w;
          last_gain := done_iters
        end;
        let stalled = done_iters - !last_gain > 2 * m in
        (* entering: largest |d| improving column (smallest index when
           stalled, Bland-style) *)
        let j = ref (-1) and best = ref cost_eps in
        (try
           for k = 0 to tb.act - 1 do
             if tb.enterable.(k) && tb.upper.(k) > 0.0 then begin
               let improving =
                 match tb.stat.(k) with
                 | At_lower -> -.d.(k) > !best
                 | At_upper -> d.(k) > !best
                 | Basic -> false
               in
               if improving then begin
                 j := k;
                 if stalled then raise Exit;
                 best := Float.abs d.(k)
               end
             end
           done
         with Exit -> ());
        if !j < 0 then `Infeasible
        else begin
          let j = !j in
          (* s = +1: x_j rises off its lower bound; -1: falls off its
             upper. Basic values move at rate -c_i per unit step. *)
          let s = if tb.stat.(j) = At_lower then 1.0 else -1.0 in
          let col = Array.init m (fun i -> tb.tab.(i).(j)) in
          let step = ref infinity and block = ref (-1) in
          let block_at_upper = ref false in
          for i = 0 to m - 1 do
            let c = s *. col.(i) in
            if Float.abs c > pivot_eps then begin
              let b = tb.beta.(i) in
              let u = tb.upper.(tb.basis.(i)) in
              if -.b > feas_eps then begin
                (* below lower: blocks where it becomes feasible *)
                if c < 0.0 then begin
                  let t = b /. c in
                  if t < !step then begin
                    step := t; block := i; block_at_upper := false
                  end
                end
              end
              else if u < infinity && b -. u > feas_eps then begin
                if c > 0.0 then begin
                  let t = (b -. u) /. c in
                  if t < !step then begin
                    step := t; block := i; block_at_upper := true
                  end
                end
              end
              else if c > 0.0 then begin
                (* feasible, moving down: blocks at its lower bound *)
                let t = Float.max 0.0 b /. c in
                if t < !step then begin
                  step := t; block := i; block_at_upper := false
                end
              end
              else if u < infinity then begin
                (* feasible, moving up: blocks at its upper bound *)
                let t = Float.max 0.0 (u -. b) /. -.c in
                if t < !step then begin
                  step := t; block := i; block_at_upper := true
                end
              end
            end
          done;
          if tb.upper.(j) < !step then begin
            (* the entering column hits its own far bound first: flip it
               across, no basis change *)
            let t = tb.upper.(j) in
            for i = 0 to m - 1 do
              let c = s *. col.(i) in
              if c <> 0.0 then tb.beta.(i) <- tb.beta.(i) -. (c *. t)
            done;
            tb.stat.(j) <- (if s > 0.0 then At_upper else At_lower);
            tb.iters <- tb.iters + 1;
            tb.cnt.pivots <- tb.cnt.pivots + 1;
            loop ()
          end
          else if !block < 0 then `Infeasible (* w unbounded: numerical *)
          else begin
            let r = !block in
            let t = !step in
            for i = 0 to m - 1 do
              if i <> r then begin
                let c = s *. col.(i) in
                if c <> 0.0 then tb.beta.(i) <- tb.beta.(i) -. (c *. t)
              end
            done;
            let leaving = tb.basis.(r) in
            let entry_value = if s > 0.0 then 0.0 else tb.upper.(j) in
            tb.stat.(leaving) <-
              (if !block_at_upper then At_upper else At_lower);
            tb.stat.(j) <- Basic;
            tb.basis.(r) <- j;
            tb.row_of_col.(leaving) <- -1;
            tb.row_of_col.(j) <- r;
            pivot tb [ tb.cost ] r j;
            tb.iters <- tb.iters + 1;
            tb.cnt.pivots <- tb.cnt.pivots + 1;
            tb.beta.(r) <- entry_value +. (s *. t);
            loop ()
          end
        end
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Basis snapshots: compact warm-start state across solves             *)
(* ------------------------------------------------------------------ *)

(* A basis snapshot is combinatorial, not numerical: which entity each
   tableau row holds basic plus which nonbasic variables rest at their
   upper bound. It deliberately excludes the dense tableau — [restore]
   refactorizes from the original rows, so numerical drift accumulated in
   the donor tableau never transfers. Basic structural columns are
   recorded by their original variable id (column indices shift when
   branching fixes a variable and [build] eliminates its column); slack
   columns by their OWNING ROW, not their column offset: [build]
   normalizes each row to a nonnegative RHS, and branching bounds shift
   the RHS, so the slack/artificial column layout is different between a
   parent and its children — but "the slack of row r" names the same
   mathematical variable under either orientation (a.x + s = b and
   -a.x - s = -b share s). Basic artificials are recorded as [Bnone]:
   the restored tableau keeps the fresh basic for those rows and the
   dual repair drives out any residual infeasibility. *)
module Basis = struct
  type entry =
    | Bvar of int    (* structural column, by original variable id *)
    | Bslack of int  (* slack column, by owning row *)
    | Bnone          (* not restorable (Split column / artificial); keep
                        the fresh basic *)

  type t = {
    rows : entry array;    (* basic entity per tableau row *)
    at_upper : int array;  (* variable ids nonbasic at their upper bound *)
    bm : int;              (* donor row count *)
    bn : int;              (* donor variable count *)
    bsig : int;            (* donor original-sense fingerprint *)
  }

  (* Approximate heap words held by a snapshot (for pool sizing). *)
  let size_words b = Array.length b.rows + Array.length b.at_upper + 8
end

(* Inverse of [vmap] restricted to single-column maps: the variable owning
   each structural column ([Split] halves stay -1). *)
let var_of_col tb =
  let inv = Array.make tb.nstruct (-1) in
  for v = 0 to tb.n - 1 do
    match tb.vmap.(v) with
    | Shifted c | Flipped c -> inv.(c) <- v
    | Fixed | Split _ -> ()
  done;
  inv

let snapshot tb : Basis.t =
  let inv = var_of_col tb in
  (* owning row of each slack column *)
  let slack_row = Array.make tb.ncols (-1) in
  Array.iteri
    (fun r c -> if c >= 0 then slack_row.(c) <- r)
    tb.row_slack;
  let rows =
    Array.init tb.m (fun r ->
        let col = tb.basis.(r) in
        if col >= tb.nstruct then
          match slack_row.(col) with
          | -1 -> Basis.Bnone (* artificial *)
          | r' -> Basis.Bslack r'
        else
          match inv.(col) with
          | -1 -> Basis.Bnone
          | v -> Basis.Bvar v)
  in
  let ups = ref [] in
  for c = tb.nstruct - 1 downto 0 do
    if tb.stat.(c) = At_upper && inv.(c) >= 0 then ups := inv.(c) :: !ups
  done;
  {
    Basis.rows;
    at_upper = Array.of_list !ups;
    bm = tb.m;
    bn = tb.n;
    bsig = tb.sense_sig;
  }

(* Crash pivots tolerate less than regular ratio-tested pivots: a small
   pivot element here only degrades the warm start (the row keeps its
   fresh slack/artificial basic), never correctness. *)
let crash_eps = 1.0e-6

(* Force the saved basis into a freshly built tableau. [beta] is carried
   through each elimination as an extra column, so the basic values stay
   exact for the partial basis installed so far.

   The snapshot is used as a column SET, not as the donor's row-column
   matching: the LP vertex is determined by which columns are basic, and
   the row a column occupies is internal bookkeeping. Reproducing the
   donor's matching would force structurally-zero pivots (a slack basic
   in a foreign row starts as a 0 entry and only fills in), so instead
   each wanted column is eliminated into the free row with the LARGEST
   pivot element — ordinary Gaussian elimination with partial pivoting,
   one column at a time. Columns whose best remaining pivot is still
   tiny (column gone, duplicate, or a numerically dependent tail) are
   left nonbasic; their rows keep the fresh slack/artificial basic and
   the repair phases deal with the residual. *)
let crash_basis tb (b : Basis.t) =
  let used = Array.make tb.m false in
  let wanted = ref [] in
  for r = tb.m - 1 downto 0 do
    let c =
      match b.Basis.rows.(r) with
      | Basis.Bnone -> -1
      | Basis.Bslack r' -> if r' < tb.m then tb.row_slack.(r') else -1
      | Basis.Bvar v -> (
        match tb.vmap.(v) with
        | Shifted c | Flipped c -> c
        | Fixed | Split _ -> -1)
    in
    if c >= 0 then
      if tb.stat.(c) = Basic then begin
        (* already basic (e.g. the fresh slack the donor also kept):
           pin its row *)
        let i = tb.row_of_col.(c) in
        if i >= 0 then used.(i) <- true
      end
      else wanted := c :: !wanted
  done;
  List.iter
    (fun c ->
      if tb.stat.(c) <> Basic then begin
        (* best free row for this column (partial pivoting) *)
        let best = ref crash_eps and br = ref (-1) in
        for i = 0 to tb.m - 1 do
          if not used.(i) then begin
            let p = Float.abs tb.tab.(i).(c) in
            if p > !best then begin
              best := p;
              br := i
            end
          end
        done;
        if !br >= 0 then begin
          let r = !br in
          used.(r) <- true;
          let p = tb.tab.(r).(c) in
          let brv = tb.beta.(r) /. p in
          for i = 0 to tb.m - 1 do
            if i <> r then begin
              let a = tb.tab.(i).(c) in
              if a <> 0.0 then tb.beta.(i) <- tb.beta.(i) -. (a *. brv)
            end
          done;
          tb.beta.(r) <- brv;
          let leaving = tb.basis.(r) in
          tb.stat.(leaving) <- At_lower;
          tb.stat.(c) <- Basic;
          tb.basis.(r) <- c;
          tb.row_of_col.(leaving) <- -1;
          tb.row_of_col.(c) <- r;
          pivot tb [] r c
        end
      end)
    !wanted

(* Reoptimize [p] starting from the saved basis [b]: build the start
   tableau under the (possibly changed) bounds, crash the basis in,
   restore the nonbasic at-upper rests, skip phase I entirely (artificial
   bounds are pinned to 0 and any residual infeasibility is the dual
   simplex's job), then repair primal feasibility with the bounded dual
   simplex and polish with a primal phase II — which certifies optimality
   by the same full-refresh scan as a cold solve, so a warm [`Optimal] is
   exactly as trustworthy. [`Cold_needed] means the basis did not carry
   over (structure mismatch, or the dual repair stalled/claimed
   infeasibility it cannot certify — a restored cost row need not be
   exactly dual feasible): callers fall back to the cold path. *)
let restore ?pricing ?counters ?bounds ~max_iters ~deadline (b : Basis.t)
    (p : Problem.t) =
  match build ?pricing ?counters ?bounds p with
  | None -> `Infeasible_bounds
  | Some tb ->
    if
      b.Basis.bm <> tb.m || b.Basis.bn <> tb.n
      || b.Basis.bsig <> tb.sense_sig
    then `Cold_needed
    else begin
      crash_basis tb b;
      Array.iter
        (fun v ->
          match tb.vmap.(v) with
          | Shifted c
            when tb.stat.(c) = At_lower && tb.upper.(c) < infinity ->
            let u = tb.upper.(c) in
            tb.stat.(c) <- At_upper;
            if u <> 0.0 then
              for i = 0 to tb.m - 1 do
                let a = tb.tab.(i).(c) in
                if a <> 0.0 then tb.beta.(i) <- tb.beta.(i) -. (a *. u)
              done
          | _ -> ())
        b.Basis.at_upper;
      (* phase I is skipped: pin the artificials to width 0 (the dual
         repair drives out any that sit basic at a nonzero value — they
         are not enterable, so they never come back) and shrink the
         active width when none remained basic. *)
      List.iter (fun a -> tb.upper.(a) <- 0.0) tb.artificials;
      let first_artif = List.fold_left min tb.ncols tb.artificials in
      let any_basic_artif = ref false in
      for r = 0 to tb.m - 1 do
        if tb.basis.(r) >= first_artif then any_basic_artif := true
      done;
      if not !any_basic_artif then tb.act <- first_artif;
      install_objective tb;
      let polish () =
        match phase2 tb ~max_iters ~deadline with
        | `Optimal -> `Optimal tb
        | `Unbounded -> `Unbounded
        | `Iteration_limit ->
          if Clock.now () > deadline then `Limit else `Cold_needed
      in
      (* the dual repair is ideal when few basics are violated and the
         reduced costs steer (small pivot counts, preserved optimality),
         but on near-zero objectives it is fully dual-degenerate and can
         wander — budget it by the damage, then hand a stalled repair to
         the composite primal phase I, whose gradient cannot degenerate *)
      let nviol = ref 0 in
      for i = 0 to tb.m - 1 do
        let bta = tb.beta.(i) in
        let u = tb.upper.(tb.basis.(i)) in
        if -.bta > feas_eps || (u < infinity && bta -. u > feas_eps) then
          incr nviol
      done;
      if !nviol > max 16 (tb.m / 16) then
        (* the reconstruction is too damaged to be worth repairing — on
           badly scaled models (large mixed-magnitude entries, e.g. after
           presolve's bound-shifting) the dense eliminations can leave
           hundreds of rows violated by bound-sized amounts, and pivoting
           all of them back costs more than the cold solve the caller
           falls back to *)
        `Cold_needed
      else begin
      let dual_budget = min max_iters (max 100 (8 * !nviol)) in
      match dual_restore tb ~max_iters:dual_budget ~deadline with
      | `Infeasible ->
        (* possibly genuine, but the restored cost row is not guaranteed
           dual feasible, so the infeasibility proof does not stand on its
           own — let the caller confirm with a cold solve *)
        `Cold_needed
      | `Feasible -> polish ()
      | `Limit ->
        if Clock.now () > deadline then `Limit
        else begin
          match primal_repair tb ~max_iters ~deadline with
          | `Feasible -> polish ()
          | `Infeasible -> `Cold_needed
          | `Limit ->
            if Clock.now () > deadline then `Limit else `Cold_needed
        end
      end
    end
