(* Presolve: activity-based bound tightening, redundant-row elimination
   and early infeasibility detection.

   For every row, the minimal and maximal activities implied by the
   variable bounds give three classic reductions:
   - a row whose worst-case activity already satisfies it is redundant;
   - a row whose best-case activity still violates it proves infeasibility;
   - each variable's bound can be tightened against the residual activity
     of the rest of the row (integer bounds additionally round inward).
   The pass iterates to a fixpoint (with a round cap) and produces a new,
   smaller problem over the same variable ids, so solutions transfer
   verbatim. *)

let src = Logs.Src.create "milp.presolve" ~doc:"MILP presolve"

module Log = (val Logs.src_log src : Logs.LOG)

type result =
  | Reduced of Problem.t
  | Infeasible of string  (** name of the witnessing row *)

type stats = {
  rounds : int;
  rows_dropped : int;
  bounds_tightened : int;
}

let eps = 1.0e-9

(* (min, max) activity of [expr] under the bounds in [lo]/[hi]. *)
let activity_bounds lo hi expr =
  let amin = ref 0.0 and amax = ref 0.0 in
  Linexpr.iter_terms
    (fun c j ->
      if c > 0.0 then begin
        amin := !amin +. (c *. lo.(j));
        amax := !amax +. (c *. hi.(j))
      end
      else begin
        amin := !amin +. (c *. hi.(j));
        amax := !amax +. (c *. lo.(j))
      end)
    expr;
  (!amin, !amax)

let run ?(max_rounds = 10) (p : Problem.t) : result * stats =
  let n = Problem.num_vars p in
  let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
  let kind = Array.make n Problem.Continuous in
  Problem.iter_vars
    (fun j k (l, h) ->
      kind.(j) <- k;
      lo.(j) <- l;
      hi.(j) <- h)
    p;
  let integral j =
    match kind.(j) with
    | Problem.Integer | Problem.Binary -> true
    | Problem.Continuous -> false
  in
  let tightened = ref 0 in
  let infeasible = ref None in
  let set_lo j v =
    let v = if integral j then Float.ceil (v -. eps) else v in
    if v > lo.(j) +. eps then begin
      lo.(j) <- v;
      incr tightened;
      if lo.(j) > hi.(j) +. eps then infeasible := Some "bounds"
    end
  in
  let set_hi j v =
    let v = if integral j then Float.floor (v +. eps) else v in
    if v < hi.(j) -. eps then begin
      hi.(j) <- v;
      incr tightened;
      if lo.(j) > hi.(j) +. eps then infeasible := Some "bounds"
    end
  in
  (* one pass over a row in <= form (expr <= rhs): redundancy check +
     per-variable tightening; returns `Redundant when provably slack *)
  let process_le name expr rhs =
    let amin, amax = activity_bounds lo hi expr in
    if amin > rhs +. 1.0e-7 then begin
      infeasible := Some name;
      `Keep
    end
    else if amax <= rhs +. eps then `Redundant
    else begin
      if amin > neg_infinity then
        Linexpr.iter_terms
          (fun c j ->
            (* residual minimal activity of the other terms *)
            let resid =
              amin -. (if c > 0.0 then c *. lo.(j) else c *. hi.(j))
            in
            if Float.abs c > eps && resid > neg_infinity then
              if c > 0.0 then set_hi j ((rhs -. resid) /. c)
              else set_lo j ((rhs -. resid) /. c))
          expr;
      `Keep
    end
  in
  let keep = Array.make (Problem.num_constrs p) true in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < max_rounds && !infeasible = None do
    incr rounds;
    changed := false;
    let before = !tightened in
    let i = ref 0 in
    Problem.iter_constrs
      (fun c ->
        let idx = !i in
        incr i;
        if keep.(idx) && !infeasible = None then begin
          let drop_le =
            match c.Problem.c_sense with
            | Problem.Le -> process_le c.Problem.c_name c.Problem.c_expr c.Problem.c_rhs = `Redundant
            | Problem.Ge ->
              process_le c.Problem.c_name
                (Linexpr.neg c.Problem.c_expr)
                (-.c.Problem.c_rhs)
              = `Redundant
            | Problem.Eq ->
              let r1 =
                process_le c.Problem.c_name c.Problem.c_expr c.Problem.c_rhs
              in
              let r2 =
                process_le c.Problem.c_name
                  (Linexpr.neg c.Problem.c_expr)
                  (-.c.Problem.c_rhs)
              in
              r1 = `Redundant && r2 = `Redundant
          in
          if drop_le then begin
            keep.(idx) <- false;
            changed := true
          end
        end)
      p;
    if !tightened > before then changed := true
  done;
  let rows_dropped =
    Array.fold_left (fun a k -> if k then a else a + 1) 0 keep
  in
  let stats = { rounds = !rounds; rows_dropped; bounds_tightened = !tightened } in
  match !infeasible with
  | Some name -> (Infeasible name, stats)
  | None ->
    (* rebuild: same variables (ids preserved), tightened bounds, only the
       surviving rows *)
    let q = Problem.create ~big_m:(Problem.big_m p) () in
    Problem.iter_vars
      (fun j k _ ->
        ignore
          (Problem.add_var ~name:(Problem.var_name p j) ~lo:lo.(j) ~hi:hi.(j) q
             k))
      p;
    let i = ref 0 in
    Problem.iter_constrs
      (fun c ->
        let idx = !i in
        incr i;
        if keep.(idx) then
          ignore
            (Problem.add_constr ~name:c.Problem.c_name ~id:c.Problem.c_id q
               c.Problem.c_expr c.Problem.c_sense c.Problem.c_rhs))
      p;
    let dir, obj = Problem.objective p in
    Problem.set_objective q dir obj;
    Log.debug (fun f ->
        f "presolve: %d rounds, %d rows dropped, %d bounds tightened"
          stats.rounds stats.rows_dropped stats.bounds_tightened);
    (Reduced q, stats)
