(** Depth-first branch-and-bound MILP solver with warm-started node LPs.

    One live {!Simplex_core} tableau is shared by the whole search: each
    branch tightens a variable's bounds in place and the bounded dual
    simplex repairs optimality (typically a handful of pivots instead of a
    full two-phase solve), as production MILP solvers do when diving.

    Results use the same types as {!Branch_bound} and the two solvers are
    interchangeable (and tested against each other). The DFS explores far
    more nodes per second; its proven bound on timeout is the root
    relaxation, so reported gaps can be wider. Falls back to
    {!Branch_bound} when a model has unbounded integer variables.

    Limit semantics are identical to {!Branch_bound.solve}: [deadline] is
    an absolute monotonic {!Clock.now} instant taking precedence over the
    relative [time_limit_s], and the same cooperation {!Branch_bound.hooks}
    / [branch_seed] diversification are honoured, so a portfolio can hand
    both engines the same deadline and shared incumbent cell.

    [pricing] (default [Devex]) selects the entering-variable rule, and
    [presolve] (default [true]) runs {!Presolve.run} once at the root
    exactly as in {!Branch_bound.solve}; LP work counters and presolve
    reductions are reported in [stats.lp].

    Warm starts ride the same {!Simplex_core.Basis} API as
    {!Branch_bound.solve}: [root_basis] reoptimizes the root LP from a
    structurally identical earlier solve's basis, [basis_out] receives
    the root optimum's basis for chaining, and drift-recovery rebuilds
    first refactorize the current basis (a warm hit) before paying a
    cold two-phase solve (a warm miss) — both counted in [stats.lp] and
    reported through {!Branch_bound.hooks}[.on_basis]. *)

(** Coarse checkpoint. The DFS keeps its frontier on the OCaml call
    stack, so there is no serializable open-node set (unlike
    {!Branch_bound.checkpoint}) — only the node count and the incumbent
    (objective in the problem's original sense) survive an interrupt.
    Resuming restarts the dive seeded with that incumbent: on completion
    it certifies the same objective, but it is {e not} a
    trajectory-identical continuation.

    [max_lp_iters] caps each LP solve's pivots (default 200_000); hitting
    it ends the search as a limit (never a crash), with the incumbent
    reported. [checkpoint_every]/[on_checkpoint] emit a coarse snapshot
    every that many nodes and on any inconclusive stop. [resume] seeds
    the incumbent from a prior coarse checkpoint (ignored when an
    explicit [incumbent] is also given). *)
type coarse_checkpoint = {
  dck_nodes : int;
  dck_best : (float * float array) option;
}

val solve :
  ?time_limit_s:float ->
  ?deadline:float ->
  ?node_limit:int ->
  ?int_eps:float ->
  ?incumbent:float array ->
  ?branch_seed:int ->
  ?hooks:Branch_bound.hooks ->
  ?log_every:int ->
  ?pricing:Simplex_core.pricing ->
  ?presolve:bool ->
  ?root_basis:Simplex_core.Basis.t ->
  ?basis_out:Simplex_core.Basis.t option ref ->
  ?max_lp_iters:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(coarse_checkpoint -> unit) ->
  ?resume:coarse_checkpoint ->
  Problem.t ->
  Branch_bound.solution
