(* CLOCK_MONOTONIC via a one-line C stub (mtime is not vendored; the
   stdlib only exposes the adjustable wall clock). *)

external now : unit -> float = "letdma_clock_monotonic_s"

let deadline_of ~limit_s = now () +. limit_s
let remaining ~deadline = deadline -. now ()
let expired deadline = now () > deadline
