(* Mutable MILP model builder. *)

type var_kind = Continuous | Integer | Binary

type sense = Le | Ge | Eq

type dir = Minimize | Maximize

type var_info = {
  v_name : string;
  mutable v_kind : var_kind;
  mutable v_lo : float;
  mutable v_hi : float;
}

type constr = {
  c_name : string;
  c_id : int; (* stable origin id; survives presolve row elimination *)
  c_expr : Linexpr.t; (* constant part already folded into [c_rhs] *)
  c_sense : sense;
  c_rhs : float;
}

type t = {
  vars : var_info Vec.t;
  constrs : constr Vec.t;
  mutable objective : dir * Linexpr.t;
  mutable default_big_m : float;
}

let dummy_var = { v_name = ""; v_kind = Continuous; v_lo = 0.0; v_hi = 0.0 }

let dummy_constr =
  { c_name = ""; c_id = 0; c_expr = Linexpr.zero; c_sense = Le; c_rhs = 0.0 }

let create ?(big_m = 1.0e6) () =
  {
    vars = Vec.create ~dummy:dummy_var;
    constrs = Vec.create ~dummy:dummy_constr;
    objective = (Minimize, Linexpr.zero);
    default_big_m = big_m;
  }

let big_m t = t.default_big_m
let set_big_m t m = t.default_big_m <- m

let num_vars t = Vec.length t.vars
let num_constrs t = Vec.length t.constrs

let add_var ?name ?(lo = neg_infinity) ?(hi = infinity) t kind =
  if lo > hi then invalid_arg "Problem.add_var: lo > hi";
  let lo, hi =
    match kind with
    | Binary -> (Float.max 0.0 lo, Float.min 1.0 hi)
    | Integer | Continuous -> (lo, hi)
  in
  let idx = Vec.length t.vars in
  let v_name =
    match name with Some n -> n | None -> Printf.sprintf "x%d" idx
  in
  ignore (Vec.push t.vars { v_name; v_kind = kind; v_lo = lo; v_hi = hi });
  idx

let binary ?name t = add_var ?name t Binary

let continuous ?name ?(lo = neg_infinity) ?(hi = infinity) t =
  add_var ?name ~lo ~hi t Continuous

let integer ?name ?(lo = neg_infinity) ?(hi = infinity) t =
  add_var ?name ~lo ~hi t Integer

let var_name t v = (Vec.get t.vars v).v_name
let var_kind t v = (Vec.get t.vars v).v_kind
let var_bounds t v =
  let vi = Vec.get t.vars v in
  (vi.v_lo, vi.v_hi)

(* Change a variable's kind after creation (used by the LP reader, where
   integrality sections come after the variables appear). Binary clamps
   the bounds to [0, 1]. *)
let set_kind t v kind =
  let vi = Vec.get t.vars v in
  vi.v_kind <- kind;
  match kind with
  | Binary ->
    vi.v_lo <- Float.max 0.0 vi.v_lo;
    vi.v_hi <- Float.min 1.0 vi.v_hi
  | Integer | Continuous -> ()

let set_bounds ?lo ?hi t v =
  let vi = Vec.get t.vars v in
  (match lo with Some l -> vi.v_lo <- l | None -> ());
  (match hi with Some h -> vi.v_hi <- h | None -> ());
  if vi.v_lo > vi.v_hi then invalid_arg "Problem.set_bounds: lo > hi"

let add_constr ?name ?id t expr sense rhs =
  let c_rhs = rhs -. Linexpr.constant expr in
  let c_expr = Linexpr.add_const expr (-.Linexpr.constant expr) in
  let idx = Vec.length t.constrs in
  let c_name =
    match name with Some n -> n | None -> Printf.sprintf "c%d" idx
  in
  let c_id = match id with Some i -> i | None -> idx in
  ignore (Vec.push t.constrs { c_name; c_id; c_expr; c_sense = sense; c_rhs });
  idx

let constr t i = Vec.get t.constrs i

let set_objective t dir expr = t.objective <- (dir, expr)
let objective t = t.objective

let iter_constrs f t = Vec.iter f t.constrs
let iter_vars f t = Vec.iteri (fun i vi -> f i vi.v_kind (vi.v_lo, vi.v_hi)) t.vars

(* ------------------------------------------------------------------ *)
(* Logic / big-M helpers                                               *)
(* ------------------------------------------------------------------ *)

(* z <= x_i for each i, so z = 1 forces every x_i = 1. Sufficient when z
   appears only where setting it to 1 is "advantageous" for the solver
   (e.g. on the >= side of covering constraints). *)
let add_and_upper ?name t z xs =
  List.iter
    (fun x ->
      ignore
        (add_constr ?name t
           (Linexpr.sub (Linexpr.var z) (Linexpr.var x))
           Le 0.0))
    xs

(* z >= sum x_i - (k - 1): together with [add_and_upper] makes z the exact
   conjunction of the x_i. *)
let add_and_lower ?name t z xs =
  let k = List.length xs in
  let expr =
    List.fold_left
      (fun acc x -> Linexpr.add_term acc (-1.0) x)
      (Linexpr.var z) xs
  in
  ignore (add_constr ?name t expr Ge (float_of_int (1 - k)))

let add_and_exact ?name t z xs =
  add_and_upper ?name t z xs;
  add_and_lower ?name t z xs

(* b = 1 implies expr <= rhs: encoded as expr <= rhs + M (1 - b). *)
let add_implies_le ?name ?m t b expr rhs =
  let m = match m with Some m -> m | None -> t.default_big_m in
  ignore (add_constr ?name t (Linexpr.add_term expr m b) Le (rhs +. m))

(* b = 1 implies expr >= rhs: encoded as expr >= rhs - M (1 - b). *)
let add_implies_ge ?name ?m t b expr rhs =
  let m = match m with Some m -> m | None -> t.default_big_m in
  ignore (add_constr ?name t (Linexpr.add_term expr (-.m) b) Ge (rhs -. m))

(* y >= expr_i for each i; exact max when the objective pushes y down. *)
let add_max_lower ?name t y exprs =
  List.iter
    (fun e ->
      ignore (add_constr ?name t (Linexpr.sub (Linexpr.var y) e) Ge 0.0))
    exprs

(* ------------------------------------------------------------------ *)
(* Validation and export                                               *)
(* ------------------------------------------------------------------ *)

type issue =
  | Empty_constraint of string
  | Unbounded_integer of string
  | Bad_bounds of string

let validate t =
  let issues = ref [] in
  Vec.iter
    (fun c ->
      if Linexpr.is_constant c.c_expr then
        issues := Empty_constraint c.c_name :: !issues)
    t.constrs;
  Vec.iter
    (fun vi ->
      if vi.v_lo > vi.v_hi then issues := Bad_bounds vi.v_name :: !issues;
      match vi.v_kind with
      | Integer | Binary ->
        if vi.v_lo = neg_infinity || vi.v_hi = infinity then
          issues := Unbounded_integer vi.v_name :: !issues
      | Continuous -> ())
    t.vars;
  List.rev !issues

let pp_issue ppf = function
  | Empty_constraint n -> Fmt.pf ppf "constraint %s has no variables" n
  | Unbounded_integer n -> Fmt.pf ppf "integer variable %s is unbounded" n
  | Bad_bounds n -> Fmt.pf ppf "variable %s has lo > hi" n

(* Writes the model in CPLEX LP format, readable by cplex/gurobi/glpk for
   external cross-checking of small instances. *)
let to_lp_string t =
  let buf = Buffer.create 4096 in
  let name v = (Vec.get t.vars v).v_name in
  let bprint_expr e =
    let first = ref true in
    Linexpr.iter_terms
      (fun c v ->
        if !first then begin
          first := false;
          if c < 0.0 then Buffer.add_string buf "- "
        end
        else if c < 0.0 then Buffer.add_string buf " - "
        else Buffer.add_string buf " + ";
        let a = Float.abs c in
        if a = 1.0 then Buffer.add_string buf (name v)
        else Buffer.add_string buf (Printf.sprintf "%.12g %s" a (name v)))
      e;
    if !first then Buffer.add_string buf "0"
  in
  let dir, obj = t.objective in
  Buffer.add_string buf
    (match dir with Minimize -> "Minimize\n obj: " | Maximize -> "Maximize\n obj: ");
  if Linexpr.is_constant obj then Buffer.add_string buf "0"
  else bprint_expr obj;
  Buffer.add_string buf "\nSubject To\n";
  Vec.iter
    (fun c ->
      Buffer.add_string buf (" " ^ c.c_name ^ ": ");
      bprint_expr c.c_expr;
      let op = match c.c_sense with Le -> " <= " | Ge -> " >= " | Eq -> " = " in
      Buffer.add_string buf (Printf.sprintf "%s%.12g\n" op c.c_rhs))
    t.constrs;
  Buffer.add_string buf "Bounds\n";
  Vec.iter
    (fun vi ->
      let lo, hi = (vi.v_lo, vi.v_hi) in
      if lo = neg_infinity && hi = infinity then
        Buffer.add_string buf (Printf.sprintf " %s free\n" vi.v_name)
      else begin
        let lo_s =
          if lo = neg_infinity then "-inf" else Printf.sprintf "%.12g" lo
        in
        let hi_s = if hi = infinity then "+inf" else Printf.sprintf "%.12g" hi in
        Buffer.add_string buf
          (Printf.sprintf " %s <= %s <= %s\n" lo_s vi.v_name hi_s)
      end)
    t.vars;
  let generals =
    Vec.fold_left
      (fun acc vi ->
        match vi.v_kind with Integer -> vi.v_name :: acc | _ -> acc)
      [] t.vars
  in
  let binaries =
    Vec.fold_left
      (fun acc vi ->
        match vi.v_kind with Binary -> vi.v_name :: acc | _ -> acc)
      [] t.vars
  in
  if generals <> [] then begin
    Buffer.add_string buf "Generals\n";
    List.iter
      (fun n -> Buffer.add_string buf (" " ^ n ^ "\n"))
      (List.rev generals)
  end;
  if binaries <> [] then begin
    Buffer.add_string buf "Binaries\n";
    List.iter
      (fun n -> Buffer.add_string buf (" " ^ n ^ "\n"))
      (List.rev binaries)
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

(* Residual check of a full assignment: every bound, integrality
   requirement and constraint row re-evaluated from the model data, with
   the violation magnitude. The basis for independent certification of
   solver output (a solver bug or numerical drift shows up here). *)

type residual_kind = Bad_length | Bound | Integrality | Row

type residual = {
  res_kind : residual_kind;
  res_name : string;
  res_amount : float; (* violation beyond the tolerance's reach *)
}

let residuals ?(eps = 1.0e-6) t x =
  if Array.length x <> num_vars t then
    [
      {
        res_kind = Bad_length;
        res_name =
          Printf.sprintf "assignment has %d entries, model has %d variables"
            (Array.length x) (num_vars t);
        res_amount = Float.abs (float_of_int (Array.length x - num_vars t));
      };
    ]
  else begin
    let violations = ref [] in
    let push kind name amount =
      violations := { res_kind = kind; res_name = name; res_amount = amount } :: !violations
    in
    Vec.iteri
      (fun i vi ->
        if x.(i) < vi.v_lo -. eps then push Bound vi.v_name (vi.v_lo -. x.(i))
        else if x.(i) > vi.v_hi +. eps then push Bound vi.v_name (x.(i) -. vi.v_hi);
        match vi.v_kind with
        | Integer | Binary ->
          let frac = Float.abs (x.(i) -. Float.round x.(i)) in
          if frac > eps then push Integrality vi.v_name frac
        | Continuous -> ())
      t.vars;
    Vec.iter
      (fun c ->
        let v = Linexpr.eval c.c_expr x in
        let amount =
          match c.c_sense with
          | Le -> v -. c.c_rhs
          | Ge -> c.c_rhs -. v
          | Eq -> Float.abs (v -. c.c_rhs)
        in
        if amount > eps then push Row c.c_name amount)
      t.constrs;
    List.rev !violations
  end

let pp_residual ppf r =
  match r.res_kind with
  | Bad_length -> Fmt.pf ppf "%s" r.res_name
  | Bound -> Fmt.pf ppf "bounds of %s (by %g)" r.res_name r.res_amount
  | Integrality -> Fmt.pf ppf "integrality of %s (by %g)" r.res_name r.res_amount
  | Row -> Fmt.pf ppf "%s (by %g)" r.res_name r.res_amount

(* Feasibility check of a full assignment, used for warm incumbents and
   property tests. Kept as the residual list rendered to the historical
   string form. *)
let check_solution ?eps t x =
  if Array.length x <> num_vars t then
    invalid_arg "Problem.check_solution: wrong assignment length";
  List.map
    (fun r ->
      match r.res_kind with
      | Bad_length -> r.res_name
      | Bound -> Printf.sprintf "bounds of %s" r.res_name
      | Integrality -> Printf.sprintf "integrality of %s" r.res_name
      | Row -> r.res_name)
    (residuals ?eps t x)
