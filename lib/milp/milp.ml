(** Self-contained mixed-integer linear programming toolkit.

    This library is the substrate replacing IBM CPLEX in the DAC 2021
    reproduction (no OCaml MILP bindings are available offline): a model
    builder ({!Problem} over {!Linexpr}), a dense two-phase bounded-variable
    primal simplex ({!Simplex} over the persistent {!Simplex_core}), a
    best-first branch-and-bound driver ({!Branch_bound}) and a faster
    depth-first diving solver with dual-simplex warm starts
    ({!Dfs_solver}). All deadlines are absolute instants on the
    monotonic {!Clock}, so wall-clock jumps never bend a time limit and
    one deadline value is coherent across parallel solver domains. *)

module Clock = Clock
module Linexpr = Linexpr
module Problem = Problem
module Simplex = Simplex
module Simplex_core = Simplex_core
module Branch_bound = Branch_bound
module Dfs_solver = Dfs_solver
module Lp_file = Lp_file
module Presolve = Presolve
module Vec = Vec
