(* Reader for the CPLEX LP text format (the subset produced by
   {!Problem.to_lp_string}, which covers the common hand-written cases
   too): objective, constraints, bounds, integrality sections.

   Together with the writer this gives a round-trippable external
   representation — models can be dumped, inspected, solved by an external
   solver for cross-checking, and read back. *)

type token =
  | Num of float
  | Id of string
  | Plus
  | Minus
  | Cmp of Problem.sense
  | Colon

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c =
  is_id_start c || (c >= '0' && c <= '9') || c = '.' || c = '[' || c = ']'
  || c = '!' || c = '#' || c = '$' || c = '%'

let is_num_start c = (c >= '0' && c <= '9') || c = '.'

(* Tokenize one logical section body. *)
let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let error fmt = Fmt.kstr (fun m -> Error m) fmt in
  let rec go () =
    if !i >= n then Ok (List.rev !out)
    else begin
      let c = s.[!i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        incr i;
        go ()
      end
      else if c = '+' then begin
        incr i;
        out := Plus :: !out;
        go ()
      end
      else if c = '-' then begin
        incr i;
        out := Minus :: !out;
        go ()
      end
      else if c = ':' then begin
        incr i;
        out := Colon :: !out;
        go ()
      end
      else if c = '<' || c = '>' || c = '=' then begin
        let sense =
          if c = '<' then Problem.Le else if c = '>' then Problem.Ge else Problem.Eq
        in
        incr i;
        if !i < n && s.[!i] = '=' then incr i;
        out := Cmp sense :: !out;
        go ()
      end
      else if is_num_start c then begin
        let start = !i in
        while
          !i < n
          && (is_num_start s.[!i] || s.[!i] = 'e' || s.[!i] = 'E'
             || ((s.[!i] = '+' || s.[!i] = '-')
                && !i > start
                && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
        do
          incr i
        done;
        (match float_of_string_opt (String.sub s start (!i - start)) with
         | Some v ->
           out := Num v :: !out;
           go ()
         | None -> error "bad number at offset %d" start)
      end
      else if is_id_start c then begin
        let start = !i in
        while !i < n && is_id_char s.[!i] do
          incr i
        done;
        out := Id (String.sub s start (!i - start)) :: !out;
        go ()
      end
      else error "unexpected character %C at offset %d" c !i
    end
  in
  go ()

(* Parse a linear expression prefix of a token stream; returns the
   expression (over variable names) and the remaining tokens. *)
let parse_linexpr tokens =
  let rec go acc sign coef = function
    | Plus :: rest -> go acc 1.0 None rest
    | Minus :: rest -> go acc (-1.0) None rest
    | Num v :: rest ->
      (match coef with
       | None -> go acc sign (Some v) rest
       | Some c ->
         (* two numbers in a row: constant then something else *)
         go ((sign *. c, None) :: acc) 1.0 (Some v) rest)
    | Id name :: rest ->
      let c = match coef with None -> 1.0 | Some v -> v in
      go ((sign *. c, Some name) :: acc) 1.0 None rest
    | rest ->
      let acc = match coef with None -> acc | Some v -> (sign *. v, None) :: acc in
      (List.rev acc, rest)
  in
  go [] 1.0 None tokens

type section =
  | S_objective of Problem.dir
  | S_subject_to
  | S_bounds
  | S_generals
  | S_binaries
  | S_end

let section_of_line line =
  let l = String.lowercase_ascii (String.trim line) in
  if l = "minimize" || l = "min" then Some (S_objective Problem.Minimize)
  else if l = "maximize" || l = "max" then Some (S_objective Problem.Maximize)
  else if l = "subject to" || l = "st" || l = "s.t." || l = "such that" then
    Some S_subject_to
  else if l = "bounds" then Some S_bounds
  else if l = "generals" || l = "general" || l = "integers" then Some S_generals
  else if l = "binaries" || l = "binary" then Some S_binaries
  else if l = "end" then Some S_end
  else None

let of_string text =
  let ( let* ) = Result.bind in
  (* strip comments and split into (section, body-lines) *)
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           match String.index_opt l '\\' with
           | Some i -> String.sub l 0 i
           | None -> l)
  in
  let sections = ref [] in
  let current = ref None in
  let body = Buffer.create 256 in
  let stray = ref None in
  let flush () =
    match !current with
    | Some s ->
      sections := (s, Buffer.contents body) :: !sections;
      Buffer.clear body
    | None -> ()
  in
  List.iter
    (fun line ->
      match section_of_line line with
      | Some s ->
        flush ();
        current := Some s
      | None ->
        (* content before the first section header is not LP format *)
        if !current = None && String.trim line <> "" && !stray = None then
          stray := Some (String.trim line);
        Buffer.add_string body line;
        Buffer.add_char body '\n')
    lines;
  flush ();
  let sections = List.rev !sections in
  let* () =
    match (!stray, sections) with
    | Some s, _ -> Error (Fmt.str "not an LP file: stray text %S before any section" s)
    | None, [] -> Error "not an LP file: no sections found"
    | None, _ -> Ok ()
  in
  let p = Problem.create () in
  let vars = Hashtbl.create 64 in
  let var name =
    match Hashtbl.find_opt vars name with
    | Some v -> v
    | None ->
      let v = Problem.continuous ~name ~lo:0.0 p in
      Hashtbl.replace vars name v;
      v
  in
  let expr_of terms =
    List.fold_left
      (fun acc (c, name) ->
        match name with
        | Some n -> Linexpr.add_term acc c (var n)
        | None -> Linexpr.add_const acc c)
      Linexpr.zero terms
  in
  (* label: strip a leading "name :" if present *)
  let strip_label tokens =
    match tokens with
    | Id name :: Colon :: rest -> (Some name, rest)
    | _ -> (None, tokens)
  in
  let parse_objective dir body =
    let* tokens = tokenize body in
    let _, tokens = strip_label tokens in
    let terms, rest = parse_linexpr tokens in
    if rest <> [] then Error "trailing tokens in objective"
    else begin
      Problem.set_objective p dir (expr_of terms);
      Ok ()
    end
  in
  let parse_constraints body =
    (* constraints separated by their relational operator; split on lines
       first: the writer puts one constraint per line *)
    let rec each = function
      | [] -> Ok ()
      | line :: rest ->
        if String.trim line = "" then each rest
        else begin
          let* tokens = tokenize line in
          let name, tokens = strip_label tokens in
          let lhs, after = parse_linexpr tokens in
          (match after with
           | Cmp sense :: rhs_tokens ->
             let rhs_terms, trailing = parse_linexpr rhs_tokens in
             if trailing <> [] then Error "trailing tokens in constraint"
             else if rhs_terms = [] then
               Error (Fmt.str "constraint without right-hand side: %S" line)
             else begin
               let rhs_expr = expr_of rhs_terms in
               if Linexpr.num_terms rhs_expr <> 0 then
                 Error "variables on the right-hand side are not supported"
               else begin
                 ignore
                   (Problem.add_constr ?name p (expr_of lhs) sense
                      (Linexpr.constant rhs_expr));
                 Ok ()
               end
             end
           | _ -> Error (Fmt.str "constraint without relation: %S" line))
          |> fun r -> Result.bind r (fun () -> each rest)
        end
    in
    each (String.split_on_char '\n' body)
  in
  let parse_bounds body =
    let rec each = function
      | [] -> Ok ()
      | line :: rest ->
        let line = String.trim line in
        if line = "" then each rest
        else begin
          let* tokens = tokenize line in
          let value = function
            | Num v -> Some v
            | Id ("inf" | "+inf" | "infinity") -> Some infinity
            | _ -> None
          in
          (match tokens with
           | [ Id x; Id "free" ] ->
             Problem.set_bounds ~lo:neg_infinity ~hi:infinity p (var x);
             Ok ()
           | [ lo_t; Cmp Problem.Le; Id x; Cmp Problem.Le; hi_t ] ->
             let lo =
               match lo_t with
               | Minus -> None
               | t -> value t
             in
             (* allow "-inf" tokenized as Minus Id(inf) *)
             (match (lo, tokens) with
              | Some lo, _ ->
                (match value hi_t with
                 | Some hi ->
                   Problem.set_bounds ~lo ~hi p (var x);
                   Ok ()
                 | None -> Error (Fmt.str "bad bound line %S" line))
              | None, _ -> Error (Fmt.str "bad bound line %S" line))
           | [ Minus; lo_t; Cmp Problem.Le; Id x; Cmp Problem.Le; hi_t ] ->
             (match (value lo_t, value hi_t) with
              | Some lo, Some hi ->
                Problem.set_bounds ~lo:(-.lo) ~hi p (var x);
                Ok ()
              | _ -> Error (Fmt.str "bad bound line %S" line))
           | [ Id x; Cmp Problem.Le; hi_t ] ->
             (match value hi_t with
              | Some hi ->
                Problem.set_bounds ~hi p (var x);
                Ok ()
              | None -> Error (Fmt.str "bad bound line %S" line))
           | [ Id x; Cmp Problem.Ge; lo_t ] ->
             (match value lo_t with
              | Some lo ->
                Problem.set_bounds ~lo p (var x);
                Ok ()
              | None -> Error (Fmt.str "bad bound line %S" line))
           | [ Id x; Cmp Problem.Ge; Minus; lo_t ] ->
             (match value lo_t with
              | Some lo ->
                Problem.set_bounds ~lo:(-.lo) p (var x);
                Ok ()
              | None -> Error (Fmt.str "bad bound line %S" line))
           | _ -> Error (Fmt.str "bad bound line %S" line))
          |> fun r -> Result.bind r (fun () -> each rest)
        end
    in
    each (String.split_on_char '\n' body)
  in
  let parse_kinds kind body =
    let* tokens = tokenize body in
    let rec each = function
      | [] -> Ok ()
      | Id name :: rest ->
        let v = var name in
        let lo, hi = Problem.var_bounds p v in
        ignore (lo, hi);
        Problem.set_kind p v kind;
        each rest
      | _ -> Error "expected variable names in integrality section"
    in
    each tokens
  in
  let rec run = function
    | [] -> Ok ()
    | (S_objective dir, body) :: rest ->
      let* () = parse_objective dir body in
      run rest
    | (S_subject_to, body) :: rest ->
      let* () = parse_constraints body in
      run rest
    | (S_bounds, body) :: rest ->
      let* () = parse_bounds body in
      run rest
    | (S_generals, body) :: rest ->
      let* () = parse_kinds Problem.Integer body in
      run rest
    | (S_binaries, body) :: rest ->
      let* () = parse_kinds Problem.Binary body in
      run rest
    | (S_end, _) :: rest -> run rest
  in
  let* () = run sections in
  Ok p

let to_string = Problem.to_lp_string
