(** Best-first branch-and-bound MILP solver on top of {!Simplex}.

    This is the substrate standing in for IBM CPLEX, which the paper uses
    to solve its formulation (see DESIGN.md, substitution 1). It supports
    warm incumbents, node/time limits with incumbent reporting (the
    behaviour the paper relies on for its OBJ-DMAT timeout results), and
    reports proof bounds and relative gaps.

    For parallel portfolio search (see [Parallel.Portfolio]) the solver
    additionally accepts cooperation {!hooks} — a cancellation check, an
    incumbent-publication callback and an incumbent-import poll — and a
    [branch_seed] that diversifies the branching order between workers. *)

type status =
  | Optimal     (** incumbent proven optimal *)
  | Feasible    (** limit hit with an incumbent (paper's timeout case) *)
  | Infeasible
  | Unbounded
  | Unknown     (** limit hit before any incumbent was found *)

(** LP-engine work counters aggregated over the whole search, plus the
    root presolve reductions: the machine-readable account of where the
    solve time went. *)
type lp_stats = {
  lp_pivots : int;             (** primal simplex pivots (phases I+II) *)
  lp_dual_pivots : int;        (** dual-simplex warm-restart pivots *)
  lp_pricing_scanned : int;    (** candidate columns priced *)
  lp_pricing_refreshes : int;  (** pricing candidate-list rebuild scans *)
  lp_warm_hits : int;          (** node LPs answered from a restored basis *)
  lp_warm_misses : int;        (** node LPs that wanted a basis but went cold *)
  lp_dual_pivots_saved : int;
      (** estimated pivots avoided by warm starts: for each warm hit, the
          first cold solve's pivot count minus the hit's actual spend *)
  lp_basis_evictions : int;    (** bases dropped by the bounded pool's LRU *)
  lp_time_s : float;           (** wall-clock spent inside the LP kernel *)
  presolve_rounds : int;
  presolve_rows_dropped : int;
  presolve_bounds_tightened : int;
}

val lp_zero : lp_stats
val lp_add : lp_stats -> lp_stats -> lp_stats

(** Package raw kernel counters (plus LP wall-clock and presolve
    reductions) as an [lp_stats]. Shared with {!Dfs_solver}. *)
val lp_of_counters :
  Simplex_core.counters ->
  lp_time_s:float ->
  presolve:Presolve.stats ->
  lp_stats

(** The all-zero {!Presolve.stats} reported when presolve is disabled. *)
val no_presolve_stats : Presolve.stats

type stats = {
  nodes : int;
  simplex_solves : int;
  time_s : float;
  best_bound : float;  (** proven bound on the optimum, in the problem's own sense *)
  gap : float option;  (** relative incumbent/bound gap; [Some 0.] when optimal *)
  foreign_prunes : int;
      (** subtrees pruned against a cutoff that was imported through
          {!hooks}[.get_incumbent] rather than found locally — the direct
          evidence that shared-incumbent exchange did useful work *)
  lp : lp_stats;
}

type solution = {
  status : status;
  obj : float option;
  x : float array option;
  stats : stats;
}

(** Cooperation hooks for portfolio/parallel drivers. All callbacks run
    on the solving domain and must be safe to call from it:

    - [should_stop] is polled at every node; returning [true] aborts the
      search as if the time limit had expired (the best incumbent so far
      is still reported);
    - [on_incumbent ~obj x] fires whenever the search improves its
      incumbent; [x] is a fresh copy the callee may keep, [obj] is in the
      problem's own sense;
    - [get_incumbent] is polled at every node; returning [Some (obj, x)]
      strictly better than the local incumbent tightens the cutoff (the
      array is copied before being stored);
    - [on_node] fires once per explored node, after its LP relaxation:
      [node] is the 1-based exploration index, [depth] the node's depth,
      [bound] the LP relaxation objective ([None] if the LP was
      infeasible/unbounded/cut off), [pivots] the simplex pivots (primal
      + dual) that LP solve cost. Observability taps (see [Obs]) hang
      off this callback; [no_hooks] makes it free.

    Objectives flow through the hooks in the problem's original
    (min/max) sense. *)

(** Basis-pool lifecycle events, reported through {!hooks}[.on_basis]:
    a node LP reoptimized from its parent's basis ([Warm_hit]), wanted
    one but fell back to a cold solve ([Warm_miss]), or the bounded pool
    evicted its least-recently-used basis ([Evict]). *)
type basis_event = Warm_hit | Warm_miss | Evict

type hooks = {
  should_stop : unit -> bool;
  on_incumbent : obj:float -> float array -> unit;
  get_incumbent : unit -> (float * float array) option;
  on_node : node:int -> depth:int -> bound:float option -> pivots:int -> unit;
  on_basis : node:int -> basis_event -> unit;
      (** fires on warm-start bookkeeping events; [node] is the 1-based
          index of the node being solved (for [Evict], the node whose
          pool insertion forced the eviction) *)
}

(** Inert hooks: never stop, publish nowhere, import nothing. *)
val no_hooks : hooks

(** {1 Checkpointing}

    A {!checkpoint} is a complete snapshot of the search's mutable state:
    the open-node frontier (with each node's LP bound, heap tie-breaker
    and branching decisions), the incumbent, the trajectory counters and
    the warm-basis pool. Resuming from it with the same problem and the
    same solver parameters continues the search along a bit-identical
    trajectory — same node order, same LP pivot counts, same final
    objective — because every input to the deterministic search loop is
    restored, including the basis pool (a warm and a cold LP solve can
    land on different optimal vertices of a degenerate LP, so the pool is
    part of the trajectory).

    Wall-clock fields ([ck_lp_time_s], and [stats.time_s] of the resumed
    solve) are cumulative across the interrupted segments and are the
    only fields exempt from the bit-identity claim. *)

(** One open node of the frontier. [ck_prio]/[ck_node_tie] are the heap
    key (parent LP bound in minimization sense, insertion tie-breaker);
    [ck_overrides] are the branching bound changes relative to the root,
    as [(var, lo, hi)] with one-sided infinities. *)
type ck_node = {
  ck_prio : float;
  ck_node_tie : int;
  ck_depth : int;
  ck_parent : int;
  ck_overrides : (int * float * float) list;
}

type checkpoint = {
  ck_nodes : int;  (** nodes explored so far *)
  ck_tie : int;  (** heap tie-breaker high-water mark *)
  ck_simplex_solves : int;
  ck_best : (float * float array) option;
      (** incumbent, objective in the problem's original sense *)
  ck_cutoff_foreign : bool;
  ck_foreign_prunes : int;
  ck_cold_ref_pivots : int option;
  ck_counters : Simplex_core.counters;
  ck_lp_time_s : float;
  ck_frontier : ck_node list;  (** canonical pop order *)
  ck_pool : (int * Simplex_core.Basis.t * int * int) list;
      (** warm-basis pool entries [(node_id, basis, refcount, lru_tick)],
          sorted by node id *)
  ck_pool_tick : int;
}

(** Pure feasibility problems (constant objective) with a feasible
    incumbent need no search: returns the incumbent as [Optimal].
    Shared with {!Dfs_solver}. *)
val feasibility_shortcut : Problem.t -> float array option -> solution option

(** [solve ?time_limit_s ?deadline ?node_limit ?int_eps ?incumbent
    ?branch_seed ?hooks ?log_every p] solves the MILP [p].

    - [deadline]: absolute monotonic {!Clock.now} instant after which the
      best incumbent is returned with status [Feasible]. When given it
      takes precedence over [time_limit_s]; portfolio workers all receive
      the same [deadline], which is coherent across domains because the
      clock is monotonic and machine-wide.
    - [time_limit_s] (default 60): relative convenience form, equivalent
      to [deadline = Clock.now () +. time_limit_s].
    - [incumbent]: a feasible assignment used as the initial cutoff.
    - [branch_seed] (default 0): deterministic jitter diversifying the
      branching order; 0 reproduces the classic most-fractional rule
      bit-for-bit.
    - [int_eps] (default 1e-6): integrality tolerance.
    - [log_every]: if positive, log progress every that many nodes.
    - [pricing] (default [Devex]): entering-variable rule for every
      node's LP solve (see {!Simplex.pricing}).
    - [presolve] (default [true]): run {!Presolve.run} once at the root
      and search the reduced problem. The reduction keeps every variable
      (same ids) and only tightens implied bounds / drops redundant
      rows, so the feasible set is unchanged and solutions need no
      mapping back; reductions are reported in [stats.lp].
    - [basis_pool] (default 128): capacity of the parent-basis pool, in
      bases. Each explored node snapshots its optimal basis so both
      children can dual-simplex reoptimize from it instead of solving
      cold; when the pool is full the least-recently-touched basis is
      evicted (deterministically — ties break on the lower node id) and
      its orphaned children fall back to the cold path, counted in
      [lp_basis_evictions]. [0] disables warm starts entirely (the cold
      baseline used by the WARMSTART bench).
    - [root_basis]: an optimal basis from a structurally identical
      earlier solve (e.g. the previous configuration of a sweep) used to
      warm-start the root LP.
    - [basis_out]: receives the root LP's optimal basis, for chaining
      into the next solve's [root_basis]. A resumed solve only re-solves
      the root LP if the interrupt happened before the root was explored;
      otherwise [basis_out] receives [None].
    - [max_lp_iters]: per-node LP iteration cap; a node whose LP hits it
      ends the search like a time limit (the incumbent is kept, a final
      checkpoint is emitted). Meant to be driven by the retry policy in
      [Resilience.Retry], which escalates the cap instead of crashing.
    - [checkpoint_every] (default 0 = off): emit a checkpoint through
      [on_checkpoint] every that many explored nodes.
    - [checkpoint_every_s]: additionally emit one whenever that much
      wall-clock has elapsed since the previous emission.
    - [on_checkpoint]: receives each snapshot. Regardless of cadence, a
      final checkpoint is emitted when the search stops inconclusively
      (deadline, node limit, [should_stop], LP iteration cap) — never on
      a conclusive exit (Optimal/Infeasible/Unbounded). The popped node
      being explored at interrupt time is pushed back first, so the
      serialized frontier is complete.
    - [resume]: rehydrate all mutable state from a checkpoint instead of
      starting at the root. The caller must pass the same problem and
      parameters as the interrupted solve (see [Resilience.Checkpoint]
      for the fingerprint that enforces the problem part). *)
val solve :
  ?time_limit_s:float ->
  ?deadline:float ->
  ?node_limit:int ->
  ?int_eps:float ->
  ?incumbent:float array ->
  ?branch_seed:int ->
  ?hooks:hooks ->
  ?log_every:int ->
  ?pricing:Simplex_core.pricing ->
  ?presolve:bool ->
  ?root_basis:Simplex_core.Basis.t ->
  ?basis_out:Simplex_core.Basis.t option ref ->
  ?basis_pool:int ->
  ?max_lp_iters:int ->
  ?checkpoint_every:int ->
  ?checkpoint_every_s:float ->
  ?on_checkpoint:(checkpoint -> unit) ->
  ?resume:checkpoint ->
  Problem.t ->
  solution
