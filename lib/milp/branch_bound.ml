(* Best-first branch-and-bound for mixed-integer linear programs, on top of
   the LP relaxation solver in {!Simplex}.

   Nodes store only their bound overrides relative to the root, so memory
   stays proportional to tree depth times the frontier size. A
   most-fractional branching rule is used, with a rounding heuristic tried
   at every node to obtain incumbents early. *)

let src = Logs.Src.create "milp.bb" ~doc:"MILP branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

(* LP-engine work counters aggregated over a whole search, plus the root
   presolve reductions. *)
type lp_stats = {
  lp_pivots : int;
  lp_dual_pivots : int;
  lp_pricing_scanned : int;
  lp_pricing_refreshes : int;
  lp_warm_hits : int;
  lp_warm_misses : int;
  lp_dual_pivots_saved : int;
  lp_basis_evictions : int;
  lp_time_s : float;
  presolve_rounds : int;
  presolve_rows_dropped : int;
  presolve_bounds_tightened : int;
}

let lp_zero =
  {
    lp_pivots = 0;
    lp_dual_pivots = 0;
    lp_pricing_scanned = 0;
    lp_pricing_refreshes = 0;
    lp_warm_hits = 0;
    lp_warm_misses = 0;
    lp_dual_pivots_saved = 0;
    lp_basis_evictions = 0;
    lp_time_s = 0.0;
    presolve_rounds = 0;
    presolve_rows_dropped = 0;
    presolve_bounds_tightened = 0;
  }

let lp_add a b =
  {
    lp_pivots = a.lp_pivots + b.lp_pivots;
    lp_dual_pivots = a.lp_dual_pivots + b.lp_dual_pivots;
    lp_pricing_scanned = a.lp_pricing_scanned + b.lp_pricing_scanned;
    lp_pricing_refreshes = a.lp_pricing_refreshes + b.lp_pricing_refreshes;
    lp_warm_hits = a.lp_warm_hits + b.lp_warm_hits;
    lp_warm_misses = a.lp_warm_misses + b.lp_warm_misses;
    lp_dual_pivots_saved = a.lp_dual_pivots_saved + b.lp_dual_pivots_saved;
    lp_basis_evictions = a.lp_basis_evictions + b.lp_basis_evictions;
    lp_time_s = a.lp_time_s +. b.lp_time_s;
    presolve_rounds = a.presolve_rounds + b.presolve_rounds;
    presolve_rows_dropped = a.presolve_rows_dropped + b.presolve_rows_dropped;
    presolve_bounds_tightened =
      a.presolve_bounds_tightened + b.presolve_bounds_tightened;
  }

let lp_of_counters (c : Simplex_core.counters) ~lp_time_s
    ~(presolve : Presolve.stats) =
  {
    lp_pivots = c.Simplex_core.pivots;
    lp_dual_pivots = c.Simplex_core.dual_pivots;
    lp_pricing_scanned = c.Simplex_core.pricing_scanned;
    lp_pricing_refreshes = c.Simplex_core.pricing_refreshes;
    lp_warm_hits = c.Simplex_core.warm_hits;
    lp_warm_misses = c.Simplex_core.warm_misses;
    lp_dual_pivots_saved = c.Simplex_core.dual_pivots_saved;
    lp_basis_evictions = c.Simplex_core.basis_evictions;
    lp_time_s;
    presolve_rounds = presolve.Presolve.rounds;
    presolve_rows_dropped = presolve.Presolve.rows_dropped;
    presolve_bounds_tightened = presolve.Presolve.bounds_tightened;
  }

let no_presolve_stats =
  { Presolve.rounds = 0; rows_dropped = 0; bounds_tightened = 0 }

type stats = {
  nodes : int;
  simplex_solves : int;
  time_s : float;
  best_bound : float;  (** proven bound on the optimum (minimization sense) *)
  gap : float option;  (** relative gap between incumbent and bound *)
  foreign_prunes : int;
      (** prune events whose cutoff came from an imported incumbent *)
  lp : lp_stats;  (** LP-engine work + root presolve reductions *)
}

(* Cooperation hooks for portfolio/parallel drivers. All callbacks run on
   the solving domain; objectives are in the problem's own sense and
   solution vectors are fresh copies the callee may keep. *)
(* Basis-pool lifecycle notifications, tapped by the observability layer:
   a node's LP reoptimized from its parent's basis (hit), wanted to but
   fell back to a cold solve (miss), or a pool entry was dropped under
   memory pressure (evict). *)
type basis_event = Warm_hit | Warm_miss | Evict

type hooks = {
  should_stop : unit -> bool;
  on_incumbent : obj:float -> float array -> unit;
  get_incumbent : unit -> (float * float array) option;
  on_node : node:int -> depth:int -> bound:float option -> pivots:int -> unit;
  on_basis : node:int -> basis_event -> unit;
}

let no_hooks =
  {
    should_stop = (fun () -> false);
    on_incumbent = (fun ~obj:_ _ -> ());
    get_incumbent = (fun () -> None);
    on_node = (fun ~node:_ ~depth:_ ~bound:_ ~pivots:_ -> ());
    on_basis = (fun ~node:_ _ -> ());
  }

(* Deterministic per-(variable, seed) jitter in [0, 1) used to diversify
   the branching order across portfolio workers; seed 0 = no jitter (the
   classic most-fractional rule). *)
let branch_jitter ~seed j =
  if seed = 0 then 0.0
  else
    let h = ((j + 1) * 2654435761 + (seed * 40503)) land 0xFFFF in
    float_of_int h /. 65536.0

type solution = {
  status : status;
  obj : float option;
  x : float array option;
  stats : stats;
}

type node = {
  overrides : (int * float * float) list; (* (var, lo, hi) from root *)
  depth : int;
  parent : int; (* basis-pool key of the parent's optimal basis; -1 none *)
}

(* Checkpoint: everything the best-first search mutates, captured so a
   later [solve ~resume] continues the exact same trajectory. Frontier
   nodes are kept in pop order ((prio, tie) is a total order), the basis
   pool sorted by node id — both canonical, so capturing a restored
   checkpoint reproduces it field-for-field. *)
type ck_node = {
  ck_prio : float;        (* heap priority: LP bound, minimization sense *)
  ck_node_tie : int;      (* heap insertion tie-breaker *)
  ck_depth : int;
  ck_parent : int;        (* basis-pool key of the parent basis; -1 none *)
  ck_overrides : (int * float * float) list;
}

type checkpoint = {
  ck_nodes : int;
  ck_tie : int;
  ck_simplex_solves : int;
  ck_best : (float * float array) option;
      (* incumbent, objective in the problem's own sense *)
  ck_cutoff_foreign : bool;
  ck_foreign_prunes : int;
  ck_cold_ref_pivots : int option;
  ck_counters : Simplex_core.counters;
  ck_lp_time_s : float;
  ck_frontier : ck_node list;
  ck_pool : (int * Simplex_core.Basis.t * int * int) list;
      (* (node id, basis, live refcount, LRU tick), sorted by id *)
  ck_pool_tick : int;
}

(* Minimal binary min-heap on (priority, tie, payload). *)
module Heap = struct
  type 'a t = {
    mutable data : (float * int * 'a) array;
    mutable len : int;
  }

  let create () = { data = [||]; len = 0 }
  let is_empty h = h.len = 0

  let less (p1, t1, _) (p2, t2, _) = p1 < p2 || (p1 = p2 && t1 > t2)

  let push h prio tie x =
    if h.len = Array.length h.data then begin
      let cap = max 16 (2 * h.len) in
      let data = Array.make cap (prio, tie, x) in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    h.data.(h.len) <- (prio, tie, x);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      less h.data.(!i) h.data.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
          if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            let tmp = h.data.(!i) in
            h.data.(!i) <- h.data.(!smallest);
            h.data.(!smallest) <- tmp;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end

  let fold f init h =
    let acc = ref init in
    for i = 0 to h.len - 1 do
      acc := f !acc h.data.(i)
    done;
    !acc
end


(* Pure feasibility problems (constant objective) with a feasible warm
   incumbent are already solved — no search needed. Shared with the DFS
   solver. *)
let feasibility_shortcut (p : Problem.t) incumbent =
  let _, obj_expr = Problem.objective p in
  match incumbent with
  | Some x when Linexpr.is_constant obj_expr ->
    (* stamp the certification cost: checking the warm incumbent against
       every row is the work this fast path actually performs, and the
       historical hard-coded 0.0 made per-rung --stats totals disagree
       with the drivers' wall clocks *)
    let t0 = Clock.now () in
    if Problem.check_solution ~eps:1.0e-6 p x = [] then begin
      let c = Linexpr.constant obj_expr in
      let time_s = Clock.now () -. t0 in
      Some
        {
          status = Optimal;
          obj = Some c;
          x = Some (Array.copy x);
          stats =
            {
              nodes = 0;
              simplex_solves = 0;
              time_s;
              best_bound = c;
              gap = Some 0.0;
              foreign_prunes = 0;
              lp = lp_zero;
            };
        }
    end
    else None
  | Some _ | None -> None

(* [Infeasible] result proven by presolve alone (no search ran). *)
let presolved_infeasible ~sense ~time_s ~(pre : Presolve.stats) row =
  Log.info (fun f -> f "presolve proved infeasibility (row %s)" row);
  {
    status = Infeasible;
    obj = None;
    x = None;
    stats =
      {
        nodes = 0;
        simplex_solves = 0;
        time_s;
        best_bound = (if sense > 0.0 then infinity else neg_infinity);
        gap = None;
        foreign_prunes = 0;
        lp =
          lp_of_counters (Simplex_core.fresh_counters ()) ~lp_time_s:0.0
            ~presolve:pre;
      };
  }

let solve ?(time_limit_s = 60.0) ?deadline ?(node_limit = 200_000)
    ?(int_eps = 1.0e-6) ?incumbent ?(branch_seed = 0) ?(hooks = no_hooks)
    ?(log_every = 0) ?(pricing = Simplex_core.Devex) ?(presolve = true)
    ?root_basis ?basis_out ?(basis_pool = 128) ?max_lp_iters
    ?(checkpoint_every = 0) ?checkpoint_every_s ?on_checkpoint ?resume
    (p0 : Problem.t) : solution =
  match (if resume = None then feasibility_shortcut p0 incumbent else None) with
  | Some early -> early
  | None ->
  let t0 = Clock.now () in
  let deadline = match deadline with Some d -> d | None -> t0 +. time_limit_s in
  (* Root presolve: the reduction keeps every variable (same ids, implied
     tighter bounds) and only drops redundant rows, so the feasible set —
     and hence the entire search — transfers verbatim to the reduced
     problem; solutions need no mapping back. *)
  let presolve_outcome =
    if presolve then begin
      let r, pre = Presolve.run p0 in
      if pre.Presolve.rounds > 0 then
        Log.info (fun f ->
            f "presolve: %d rounds, %d rows dropped, %d bounds tightened"
              pre.Presolve.rounds pre.Presolve.rows_dropped
              pre.Presolve.bounds_tightened);
      (r, pre)
    end
    else (Presolve.Reduced p0, no_presolve_stats)
  in
  let dir0, _ = Problem.objective p0 in
  let sense0 =
    match dir0 with Problem.Minimize -> 1.0 | Problem.Maximize -> -1.0
  in
  match presolve_outcome with
  | Presolve.Infeasible row, pre ->
    presolved_infeasible ~sense:sense0 ~time_s:(Clock.now () -. t0) ~pre row
  | Presolve.Reduced p, pre ->
  let cnt = Simplex_core.fresh_counters () in
  let lp_time = ref 0.0 in
  (* Bounded-memory pool of parent bases, keyed by the exploring node's
     1-based index. Every entry is born with refcount 2 (its two
     children) and dies when both have claimed it; above [basis_pool]
     entries the least-recently-used one is evicted (ties to the smaller
     node id — a total order, so the victim never depends on Hashtbl
     iteration order) and its orphaned children fall back to the cold
     path, counted as misses. [basis_pool = 0] disables basis reuse
     entirely (the measured cold baseline of the WARMSTART bench). *)
  let pool : (int, Simplex_core.Basis.t * int ref * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let pool_size = ref 0 in
  let pool_tick = ref 0 in
  let nodes = ref 0 in
  let pool_evict () =
    let victim =
      Hashtbl.fold
        (fun id (_, _, last) acc ->
          match acc with
          | Some (bid, blast) when !last > blast || (!last = blast && id > bid)
            ->
            acc
          | _ -> Some (id, !last))
        pool None
    in
    match victim with
    | None -> ()
    | Some (id, _) ->
      Hashtbl.remove pool id;
      decr pool_size;
      cnt.Simplex_core.basis_evictions <-
        cnt.Simplex_core.basis_evictions + 1;
      hooks.on_basis ~node:!nodes Evict
  in
  let pool_put id basis =
    if basis_pool > 0 then begin
      while !pool_size >= basis_pool do
        pool_evict ()
      done;
      incr pool_tick;
      Hashtbl.replace pool id (basis, ref 2, ref !pool_tick);
      incr pool_size
    end
  in
  let pool_take id =
    match Hashtbl.find_opt pool id with
    | None -> None
    | Some (basis, refs, last) ->
      incr pool_tick;
      last := !pool_tick;
      decr refs;
      if !refs <= 0 then begin
        Hashtbl.remove pool id;
        decr pool_size
      end;
      Some basis
  in
  let n = Problem.num_vars p in
  let dir, obj_expr = Problem.objective p in
  (* Work in minimization sense internally. *)
  let sense = match dir with Problem.Minimize -> 1.0 | Problem.Maximize -> -1.0 in
  let int_vars =
    let acc = ref [] in
    Problem.iter_vars
      (fun j kind _ ->
        match kind with
        | Problem.Integer | Problem.Binary -> acc := j :: !acc
        | Problem.Continuous -> ())
      p;
    Array.of_list (List.rev !acc)
  in
  let root_lo = Array.make n 0.0 and root_hi = Array.make n 0.0 in
  Problem.iter_vars
    (fun j _ (lo, hi) ->
      root_lo.(j) <- lo;
      root_hi.(j) <- hi)
    p;
  let best_obj = ref infinity (* minimization sense *) in
  let best_x = ref None in
  let simplex_solves = ref 0 in
  (* does the current cutoff come from an imported (foreign) incumbent? *)
  let cutoff_foreign = ref false in
  let foreign_prunes = ref 0 in
  let consider_incumbent x obj_orig =
    let obj_min = sense *. obj_orig in
    if obj_min < !best_obj -. 1.0e-9 then begin
      best_obj := obj_min;
      let kept = Array.copy x in
      best_x := Some kept;
      cutoff_foreign := false;
      hooks.on_incumbent ~obj:obj_orig kept;
      Log.info (fun f -> f "new incumbent: obj=%g (node %d)" obj_orig !nodes)
    end
  in
  let import_foreign () =
    match hooks.get_incumbent () with
    | None -> ()
    | Some (obj, x) ->
      let obj_min = sense *. obj in
      if obj_min < !best_obj -. 1.0e-9 then begin
        best_obj := obj_min;
        best_x := Some (Array.copy x);
        cutoff_foreign := true;
        Log.debug (fun f -> f "imported foreign incumbent: obj=%g" obj)
      end
  in
  let heap = Heap.create () in
  let tie = ref 0 in
  (* reference cost of a from-scratch LP solve (the root's), used to
     estimate the pivots each warm reoptimization avoided *)
  let cold_ref_pivots = ref None in
  (match resume with
   | None ->
     (match incumbent with
      | Some x ->
        if Problem.check_solution ~eps:1.0e-6 p x = [] then
          consider_incumbent x (Linexpr.eval obj_expr x)
        else Log.warn (fun f -> f "warm incumbent rejected: infeasible")
      | None -> ());
     Heap.push heap neg_infinity 0 { overrides = []; depth = 0; parent = -1 }
   | Some ck ->
     (* rehydrate: counters, incumbent, frontier and basis pool continue
        exactly where the checkpointed search stopped — no root push, no
        re-fired incumbent hook *)
     Simplex_core.set_counters ~into:cnt ck.ck_counters;
     nodes := ck.ck_nodes;
     simplex_solves := ck.ck_simplex_solves;
     foreign_prunes := ck.ck_foreign_prunes;
     cutoff_foreign := ck.ck_cutoff_foreign;
     cold_ref_pivots := ck.ck_cold_ref_pivots;
     lp_time := ck.ck_lp_time_s;
     tie := ck.ck_tie;
     (match ck.ck_best with
      | Some (obj, x) ->
        best_obj := sense *. obj;
        best_x := Some (Array.copy x)
      | None -> ());
     List.iter
       (fun cn ->
         Heap.push heap cn.ck_prio cn.ck_node_tie
           {
             overrides = cn.ck_overrides;
             depth = cn.ck_depth;
             parent = cn.ck_parent;
           })
       ck.ck_frontier;
     List.iter
       (fun (id, basis, refs, last) ->
         if not (Hashtbl.mem pool id) then begin
           Hashtbl.replace pool id (basis, ref refs, ref last);
           incr pool_size
         end)
       ck.ck_pool;
     pool_tick := ck.ck_pool_tick;
     Log.info (fun f ->
         f "resumed from checkpoint: %d nodes explored, %d open, %d bases"
           ck.ck_nodes (List.length ck.ck_frontier) (List.length ck.ck_pool)));
  let build_checkpoint () =
    let frontier =
      Heap.fold
        (fun acc (prio, t, nd) ->
          {
            ck_prio = prio;
            ck_node_tie = t;
            ck_depth = nd.depth;
            ck_parent = nd.parent;
            ck_overrides = nd.overrides;
          }
          :: acc)
        [] heap
      |> List.sort (fun a b ->
             if a.ck_prio <> b.ck_prio then Float.compare a.ck_prio b.ck_prio
             else compare b.ck_node_tie a.ck_node_tie)
    in
    let pool_entries =
      Hashtbl.fold
        (fun id (basis, refs, last) acc -> (id, basis, !refs, !last) :: acc)
        pool []
      |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
    in
    {
      ck_nodes = !nodes;
      ck_tie = !tie;
      ck_simplex_solves = !simplex_solves;
      ck_best = Option.map (fun x -> (sense *. !best_obj, Array.copy x)) !best_x;
      ck_cutoff_foreign = !cutoff_foreign;
      ck_foreign_prunes = !foreign_prunes;
      ck_cold_ref_pivots = !cold_ref_pivots;
      ck_counters = Simplex_core.copy_counters cnt;
      ck_lp_time_s = !lp_time;
      ck_frontier = frontier;
      ck_pool = pool_entries;
      ck_pool_tick = !pool_tick;
    }
  in
  let last_ck = ref (Clock.now ()) in
  let emit_checkpoint () =
    match on_checkpoint with
    | None -> ()
    | Some f ->
      last_ck := Clock.now ();
      f (build_checkpoint ())
  in
  let checkpoint_due () =
    on_checkpoint <> None
    && ((checkpoint_every > 0 && !nodes mod checkpoint_every = 0)
       ||
       match checkpoint_every_s with
       | Some s -> Clock.now () -. !last_ck >= s
       | None -> false)
  in
  let root_snapshot = ref None in
  let hit_limit = ref false in
  let root_infeasible = ref false in
  let root_unbounded = ref false in
  let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
  let rounded = Array.make n 0.0 in
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some (prio, ptie, node) ->
      import_foreign ();
      if hooks.should_stop () then begin
        (* interrupted: the popped node is still unexplored — put it back
           so a final checkpoint captures the complete frontier *)
        Heap.push heap prio ptie node;
        hit_limit := true;
        continue := false
      end
      else if prio >= !best_obj -. 1.0e-9 then begin
        (* bound-based prune; the heap is ordered so everything else is
           prunable too *)
        if !cutoff_foreign then incr foreign_prunes;
        continue := false
      end
      else if !nodes >= node_limit || Clock.now () > deadline then begin
        Heap.push heap prio ptie node;
        hit_limit := true;
        continue := false
      end
      else begin
        incr nodes;
        if log_every > 0 && !nodes mod log_every = 0 then
          Log.info (fun f ->
              f "node %d: bound=%g incumbent=%s open=%d" !nodes prio
                (if !best_obj = infinity then "-" else string_of_float (sense *. !best_obj))
                (Heap.fold (fun a _ -> a + 1) 0 heap));
        Array.blit root_lo 0 lo 0 n;
        Array.blit root_hi 0 hi 0 n;
        List.iter
          (fun (j, l, h) ->
            lo.(j) <- Float.max lo.(j) l;
            hi.(j) <- Float.min hi.(j) h)
          node.overrides;
        incr simplex_solves;
        let pivots_before = cnt.Simplex_core.pivots + cnt.Simplex_core.dual_pivots in
        let lp_t0 = Clock.now () in
        (* the parent's basis, when it survived in the pool (the root may
           be offered one by a caller chaining across adjacent solves) *)
        let offered =
          if node.depth = 0 then root_basis
          else if node.parent >= 0 then pool_take node.parent
          else None
        in
        let wanted_warm =
          if node.depth = 0 then root_basis <> None
          else basis_pool > 0 && node.parent >= 0
        in
        let wr =
          Simplex.solve_warm ~pricing ~counters:cnt ~deadline ~bounds:(lo, hi)
            ?max_iters:max_lp_iters ?basis:offered p
        in
        let lp_result = wr.Simplex.wr_result in
        lp_time := !lp_time +. (Clock.now () -. lp_t0);
        let spent =
          cnt.Simplex_core.pivots + cnt.Simplex_core.dual_pivots
          - pivots_before
        in
        (* the first from-scratch solve anchors the pivots-saved estimate *)
        if !cold_ref_pivots = None && not wr.Simplex.wr_warm then
          cold_ref_pivots := Some spent;
        if wanted_warm then begin
          if wr.Simplex.wr_warm then begin
            cnt.Simplex_core.warm_hits <- cnt.Simplex_core.warm_hits + 1;
            hooks.on_basis ~node:!nodes Warm_hit;
            match !cold_ref_pivots with
            | Some c when c > spent ->
              cnt.Simplex_core.dual_pivots_saved <-
                cnt.Simplex_core.dual_pivots_saved + (c - spent)
            | _ -> ()
          end
          else begin
            cnt.Simplex_core.warm_misses <- cnt.Simplex_core.warm_misses + 1;
            hooks.on_basis ~node:!nodes Warm_miss
          end
        end;
        if node.depth = 0 then root_snapshot := wr.Simplex.wr_basis;
        hooks.on_node ~node:!nodes ~depth:node.depth
          ~bound:
            (match lp_result with
             | Simplex.Optimal { obj; _ } -> Some obj
             | _ -> None)
          ~pivots:spent;
        (match lp_result with
         | Simplex.Infeasible ->
           if node.depth = 0 then root_infeasible := true
         | Simplex.Unbounded ->
           if node.depth = 0 then begin
             root_unbounded := true;
             continue := false
           end
         | Simplex.Iteration_limit ->
           (* the node's LP was cut short: un-count the exploration, put
              the node back in the frontier and end the search so a
              caller-side retry policy can escalate [max_lp_iters] and
              resume without losing the subtree (its parent basis was
              already consumed, so the retry re-solves it cold) *)
           decr nodes;
           decr simplex_solves;
           Heap.push heap prio ptie node;
           hit_limit := true;
           continue := false
         | Simplex.Optimal { obj; x } ->
           let bound_min = sense *. obj in
           if bound_min >= !best_obj -. 1.0e-9 then begin
             if !cutoff_foreign then incr foreign_prunes
           end
           else begin
             (* rounding heuristic *)
             Array.blit x 0 rounded 0 n;
             Array.iter
               (fun j -> rounded.(j) <- Float.round rounded.(j))
               int_vars;
             if Problem.check_solution ~eps:1.0e-6 p rounded = [] then
               consider_incumbent rounded (Linexpr.eval obj_expr rounded);
             (* branching variable: most fractional, with a per-seed
                jitter diversifying the order across portfolio workers
                (seed 0 = the classic rule, bit-for-bit) *)
             let branch_var = ref (-1) in
             let best_score = ref int_eps in
             Array.iter
               (fun j ->
                 let v = x.(j) in
                 let frac = Float.abs (v -. Float.round v) in
                 if frac > int_eps then begin
                   let score =
                     frac +. (0.5 *. branch_jitter ~seed:branch_seed j)
                   in
                   if score > !best_score then begin
                     best_score := score;
                     branch_var := j
                   end
                 end)
               int_vars;
             if !branch_var < 0 then
               (* integral LP optimum *)
               consider_incumbent x obj
             else if bound_min < !best_obj -. 1.0e-9 then begin
               let j = !branch_var in
               let v = x.(j) in
               let fl = Float.of_int (int_of_float (Float.floor v)) in
               let my_id = !nodes in
               (match wr.Simplex.wr_basis with
                | Some b when basis_pool > 0 -> pool_put my_id b
                | _ -> ());
               incr tie;
               Heap.push heap bound_min !tie
                 {
                   overrides = (j, neg_infinity, fl) :: node.overrides;
                   depth = node.depth + 1;
                   parent = my_id;
                 };
               incr tie;
               Heap.push heap bound_min !tie
                 {
                   overrides = (j, fl +. 1.0, infinity) :: node.overrides;
                   depth = node.depth + 1;
                   parent = my_id;
                 }
             end
           end);
        if checkpoint_due () then emit_checkpoint ()
      end
  done;
  (* interrupt checkpoint: deadline, node limit, should_stop or an LP
     iteration limit — anything that leaves unexplored work behind *)
  if !hit_limit then emit_checkpoint ();
  (match basis_out with
   | Some r -> r := !root_snapshot
   | None -> ());
  let time_s = Clock.now () -. t0 in
  let open_bound =
    Heap.fold (fun acc (prio, _, _) -> Float.min acc prio) infinity heap
  in
  let best_bound_min =
    if !root_unbounded then neg_infinity
    else if Heap.is_empty heap then Float.min !best_obj open_bound
    else Float.min open_bound !best_obj
  in
  let has_incumbent = !best_x <> None in
  let status =
    if !root_unbounded then Unbounded
    else if !root_infeasible && not has_incumbent then Infeasible
    else if has_incumbent && (not !hit_limit) then Optimal
    else if has_incumbent then Feasible
    else if !hit_limit then Unknown
    else Infeasible
  in
  let obj = Option.map (fun _ -> sense *. !best_obj) !best_x in
  let gap =
    match obj with
    | Some _ when status = Optimal -> Some 0.0
    | Some _ ->
      let inc = !best_obj and bnd = best_bound_min in
      if bnd = neg_infinity then None
      else Some (Float.abs (inc -. bnd) /. Float.max 1.0 (Float.abs inc))
    | None -> None
  in
  {
    status;
    obj;
    x = !best_x;
    stats =
      {
        nodes = !nodes;
        simplex_solves = !simplex_solves;
        time_s;
        best_bound = sense *. best_bound_min;
        gap;
        foreign_prunes = !foreign_prunes;
        lp = lp_of_counters cnt ~lp_time_s:!lp_time ~presolve:pre;
      };
  }
