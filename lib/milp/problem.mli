(** Mutable MILP model builder: variables, linear constraints, an objective,
    plus big-M/logic helpers, validation, solution checking, and CPLEX LP
    format export.

    Variables are dense integer ids starting at 0, as produced by
    {!add_var} and friends. *)

type var_kind = Continuous | Integer | Binary
type sense = Le | Ge | Eq
type dir = Minimize | Maximize

type constr = private {
  c_name : string;
  c_id : int;
      (** stable origin id: the row's index in the model it was first added
          to. Presolve copies it onto the reduced model's rows, so anything
          keyed on it — notably the simplex anti-degeneracy perturbation —
          is invariant under row elimination. *)
  c_expr : Linexpr.t;  (** constant part folded into [c_rhs] *)
  c_sense : sense;
  c_rhs : float;
}

type t

(** [create ?big_m ()] makes an empty model. [big_m] (default [1e6]) is the
    default constant used by the implication helpers. *)
val create : ?big_m:float -> unit -> t

val big_m : t -> float
val set_big_m : t -> float -> unit
val num_vars : t -> int
val num_constrs : t -> int

(** [add_var ?name ?lo ?hi t kind] returns the new variable's id. Binary
    variables are clamped to [0,1]. *)
val add_var : ?name:string -> ?lo:float -> ?hi:float -> t -> var_kind -> int

val binary : ?name:string -> t -> int
val continuous : ?name:string -> ?lo:float -> ?hi:float -> t -> int
val integer : ?name:string -> ?lo:float -> ?hi:float -> t -> int

val var_name : t -> int -> string
val var_kind : t -> int -> var_kind
val var_bounds : t -> int -> float * float
val set_bounds : ?lo:float -> ?hi:float -> t -> int -> unit

(** Change a variable's kind after creation; [Binary] clamps its bounds
    to [0, 1]. *)
val set_kind : t -> int -> var_kind -> unit

(** [add_constr ?name ?id t e sense rhs] adds the constraint [e sense rhs]
    (any constant term of [e] is moved to the right-hand side) and returns
    its index. [id] overrides the row's stable origin id ({!constr.c_id},
    default: the new index) — used by presolve to keep reduced rows keyed
    like the originals. *)
val add_constr : ?name:string -> ?id:int -> t -> Linexpr.t -> sense -> float -> int

val constr : t -> int -> constr
val set_objective : t -> dir -> Linexpr.t -> unit
val objective : t -> dir * Linexpr.t
val iter_constrs : (constr -> unit) -> t -> unit
val iter_vars : (int -> var_kind -> float * float -> unit) -> t -> unit

(** {1 Logic helpers}

    All take binary variable ids. *)

(** [add_and_upper t z xs] adds [z <= x_i] for each [i] — the upper half of
    [z = AND xs], sufficient when z only appears where 1 is advantageous. *)
val add_and_upper : ?name:string -> t -> int -> int list -> unit

(** [add_and_lower t z xs] adds [z >= sum x_i - (|xs| - 1)]. *)
val add_and_lower : ?name:string -> t -> int -> int list -> unit

(** Exact conjunction: both halves. *)
val add_and_exact : ?name:string -> t -> int -> int list -> unit

(** [add_implies_le t b e rhs] adds [b = 1 => e <= rhs] via big-M. *)
val add_implies_le : ?name:string -> ?m:float -> t -> int -> Linexpr.t -> float -> unit

(** [add_implies_ge t b e rhs] adds [b = 1 => e >= rhs] via big-M. *)
val add_implies_ge : ?name:string -> ?m:float -> t -> int -> Linexpr.t -> float -> unit

(** [add_max_lower t y es] adds [y >= e] for every [e]; exact max when the
    objective (or other constraints) push [y] down. *)
val add_max_lower : ?name:string -> t -> int -> Linexpr.t list -> unit

(** {1 Validation and export} *)

type issue =
  | Empty_constraint of string
  | Unbounded_integer of string
  | Bad_bounds of string

val validate : t -> issue list
val pp_issue : Format.formatter -> issue -> unit

(** CPLEX LP file format, for external cross-checking. *)
val to_lp_string : t -> string

(** {1 Residual checking}

    Independent re-verification of solver output: every bound, integrality
    requirement and constraint row is re-evaluated from the model data. *)

type residual_kind = Bad_length | Bound | Integrality | Row

type residual = {
  res_kind : residual_kind;
  res_name : string;  (** variable or constraint name *)
  res_amount : float;  (** violation magnitude beyond the tolerance *)
}

(** [residuals ?eps t x] returns every violated bound / integrality
    requirement / constraint of assignment [x], with magnitudes (empty
    list = feasible within [eps], default [1e-6]). A wrong-length
    assignment yields a single [Bad_length] residual — it never raises. *)
val residuals : ?eps:float -> t -> float array -> residual list

val pp_residual : Format.formatter -> residual -> unit

(** [check_solution ?eps t x] returns the names of violated constraints /
    bounds / integrality requirements (empty list = feasible). Raises
    [Invalid_argument] on a wrong-length assignment; {!residuals} is the
    non-raising structured form. *)
val check_solution : ?eps:float -> t -> float array -> string list
