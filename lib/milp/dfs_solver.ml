(* Depth-first branch-and-bound with a single live tableau.

   Instead of re-solving every node's LP from scratch (as the reference
   {!Branch_bound} does), the solver keeps one {!Simplex_core} state: a
   branch tightens one variable's bounds in place and the bounded dual
   simplex repairs optimality in a handful of pivots — the warm-start
   discipline of production MILP solvers. Backtracking restores the
   bounds and repairs again. On numerical trouble the tableau is rebuilt
   from scratch under the current bounds.

   Results are interchangeable with {!Branch_bound} (tested against it);
   the DFS typically explores orders of magnitude more nodes per second,
   at the price of a weaker proven bound when the time limit strikes. *)

let src = Logs.Src.create "milp.dfs" ~doc:"MILP depth-first diving solver"

module Log = (val Logs.src_log src : Logs.LOG)

exception Limit_reached

(* Coarse checkpoint: the DFS keeps its frontier on the OCaml call stack,
   so unlike {!Branch_bound.checkpoint} there is no serializable open-node
   set — only the incumbent survives an interrupt. Resuming restarts the
   dive seeded with that incumbent (same final objective on completion,
   NOT a trajectory-identical continuation). *)
type coarse_checkpoint = {
  dck_nodes : int;
  dck_best : (float * float array) option;  (* original-sense objective *)
}

type state = {
  p : Problem.t;
  mutable tb : Simplex_core.t;
  sense : float; (* +1 minimize, -1 maximize *)
  obj_expr : Linexpr.t;
  int_vars : int array;
  cur_lo : float array;
  cur_hi : float array;
  deadline : float;
  node_limit : int;
  int_eps : float;
  branch_seed : int;
  hooks : Branch_bound.hooks;
  pricing : Simplex_core.pricing;
  cnt : Simplex_core.counters;
  iter_budget : int;  (* per-LP-solve pivot cap *)
  ck_every : int;  (* coarse-checkpoint cadence in nodes; 0 = off *)
  on_ck : (coarse_checkpoint -> unit) option;
  mutable lp_time : float; (* wall-clock inside the LP kernel *)
  mutable last_pivots : int; (* counter snapshot for per-node on_node deltas *)
  mutable nodes : int;
  mutable rebuilds : int;
  mutable best_obj : float; (* minimization sense *)
  mutable best_x : float array option;
  mutable cutoff_foreign : bool; (* cutoff came from an imported incumbent *)
  mutable foreign_prunes : int;
  mutable exhausted : bool; (* completed without hitting any limit *)
  mutable dropped_vertex : bool;
      (* an integral LP vertex that would have improved the incumbent
         failed the exact feasibility re-check even on a fresh
         factorization: the search is exhaustive but not conclusive *)
}

(* Same per-(variable, seed) jitter as {!Branch_bound}: diversifies the
   branching order across portfolio workers; seed 0 = classic rule. *)
let branch_jitter ~seed j =
  if seed = 0 then 0.0
  else
    let h = ((j + 1) * 2654435761 + (seed * 40503)) land 0xFFFF in
    float_of_int h /. 65536.0

let default_lp_iter_budget = 200_000

let coarse_of st =
  { dck_nodes = st.nodes; dck_best = Option.map (fun x ->
        (st.sense *. st.best_obj, Array.copy x)) st.best_x }

let emit_coarse st =
  match st.on_ck with None -> () | Some f -> f (coarse_of st)

(* Rebuild the tableau from scratch under the current bounds (fallback on
   numerical trouble). Returns false when the node is infeasible. *)
let rebuild st =
  st.rebuilds <- st.rebuilds + 1;
  let t0 = Clock.now () in
  let finish r =
    st.lp_time <- st.lp_time +. (Clock.now () -. t0);
    match r with `Ok b -> b | `Limit -> raise Limit_reached
  in
  (* Warm rebuild first: refactorize the current basis from fresh rows
     (clearing any accumulated drift) and dual-repair under the current
     bounds — the same {!Simplex_core.Basis} path the best-first engine
     uses for node reoptimization. Everything the warm path certifies is
     exact (crash + dual repair + full-scan primal cleanup on a fresh
     factorization); anything inconclusive falls back to the cold
     two-phase build below, so infeasibility claims stay trustworthy. *)
  let warm =
    let b = Simplex_core.snapshot st.tb in
    match
      Simplex_core.restore ~pricing:st.pricing ~counters:st.cnt
        ~bounds:(st.cur_lo, st.cur_hi) ~max_iters:st.iter_budget
        ~deadline:st.deadline b st.p
    with
    | `Optimal tb ->
      st.tb <- tb;
      st.cnt.Simplex_core.warm_hits <- st.cnt.Simplex_core.warm_hits + 1;
      st.hooks.Branch_bound.on_basis ~node:st.nodes Branch_bound.Warm_hit;
      Some (`Ok true)
    | `Infeasible_bounds | `Unbounded -> Some (`Ok false)
    | `Limit -> Some `Limit
    | `Cold_needed ->
      st.cnt.Simplex_core.warm_misses <- st.cnt.Simplex_core.warm_misses + 1;
      st.hooks.Branch_bound.on_basis ~node:st.nodes Branch_bound.Warm_miss;
      None
  in
  match warm with
  | Some r -> finish r
  | None ->
  finish
    (match
       Simplex_core.build ~pricing:st.pricing ~counters:st.cnt
         ~bounds:(st.cur_lo, st.cur_hi) st.p
     with
     | None -> `Ok false
     | Some tb ->
       (match
          Simplex_core.phase1 tb ~max_iters:st.iter_budget
            ~deadline:st.deadline
        with
        | `Infeasible -> `Ok false
        | `Limit -> `Limit
        | `Feasible ->
          Simplex_core.install_objective tb;
          (match
             Simplex_core.phase2 tb ~max_iters:st.iter_budget
               ~deadline:st.deadline
           with
           | `Optimal ->
             st.tb <- tb;
             `Ok true
           | `Unbounded ->
             (* bounded integers + incumbent pruning make this
                pathological; treat as node to skip *)
             `Ok false
           | `Iteration_limit -> `Limit)))

let consider_incumbent st x =
  match Problem.check_solution ~eps:1.0e-6 st.p x with
  | [] ->
    let obj = st.sense *. Linexpr.eval st.obj_expr x in
    if obj < st.best_obj -. 1.0e-9 then begin
      st.best_obj <- obj;
      let kept = Array.copy x in
      st.best_x <- Some kept;
      st.cutoff_foreign <- false;
      st.hooks.Branch_bound.on_incumbent ~obj:(st.sense *. obj) kept;
      Log.info (fun f ->
          f "dfs: new incumbent obj=%g at node %d" (st.sense *. obj) st.nodes)
    end;
    true
  | violated ->
    Log.debug (fun f ->
        f "dfs: candidate rejected (%d violations, first: %s)"
          (List.length violated)
          (match violated with v :: _ -> v | [] -> "-"));
    false

(* Apply new bounds for [var] and restore LP optimality; false = the
   subproblem is infeasible. *)
let move_bounds st var ~lo ~hi =
  if lo > hi +. 1.0e-12 then false
  else begin
    st.cur_lo.(var) <- lo;
    st.cur_hi.(var) <- hi;
    match Simplex_core.set_var_bounds st.tb var ~lo ~hi with
    | () ->
      let t0 = Clock.now () in
      let repair =
        Simplex_core.dual_restore st.tb ~max_iters:2_500 ~deadline:st.deadline
      in
      st.lp_time <- st.lp_time +. (Clock.now () -. t0);
      (match repair with
       | `Feasible -> true
       | `Infeasible ->
         (* numerical drift in a long dive chain can fabricate
            infeasibility, and a false prune loses optimality: confirm
            with a fresh factorization (exact) before pruning *)
         rebuild st
       | `Limit ->
         if Clock.now () > st.deadline then raise Limit_reached
         else begin
           Log.debug (fun f -> f "dfs: dual repair stalled; rebuilding");
           rebuild st
         end)
    | exception Invalid_argument _ ->
      (* the variable was bound-fixed when the tableau was last rebuilt and
         its column eliminated; rebuild under the new bounds *)
      rebuild st
  end

(* The current LP is optimal; explore the subtree. [fresh] guards the
   drift-recovery rebuild against recursing forever. *)
let rec explore ?(fresh = false) ?(depth = 0) st =
  st.nodes <- st.nodes + 1;
  if st.ck_every > 0 && st.nodes mod st.ck_every = 0 then emit_coarse st;
  if st.nodes > st.node_limit || Clock.now () > st.deadline then
    raise Limit_reached;
  if st.hooks.Branch_bound.should_stop () then raise Limit_reached;
  (match st.hooks.Branch_bound.get_incumbent () with
   | None -> ()
   | Some (obj, x) ->
     let obj_min = st.sense *. obj in
     if obj_min < st.best_obj -. 1.0e-9 then begin
       st.best_obj <- obj_min;
       st.best_x <- Some (Array.copy x);
       st.cutoff_foreign <- true;
       Log.debug (fun f -> f "dfs: imported foreign incumbent obj=%g" obj)
     end);
  (* pivots charged to this node: everything spent since the previous one
     (the dual repair / rebuild that reached this node's LP optimum) *)
  let pv = st.cnt.Simplex_core.pivots + st.cnt.Simplex_core.dual_pivots in
  st.hooks.Branch_bound.on_node ~node:st.nodes ~depth
    ~bound:(Some (Simplex_core.objective_value st.tb))
    ~pivots:(pv - st.last_pivots);
  st.last_pivots <- pv;
  let obj_min = st.sense *. Simplex_core.objective_value st.tb in
  if obj_min >= st.best_obj -. 1.0e-9 then begin
    if st.cutoff_foreign then st.foreign_prunes <- st.foreign_prunes + 1
  end
  else begin
    let x = Simplex_core.solution st.tb in
    (* rounding heuristic *)
    let rounded = Array.copy x in
    Array.iter (fun j -> rounded.(j) <- Float.round rounded.(j)) st.int_vars;
    ignore (consider_incumbent st rounded);
    (* most fractional variable (seed-jittered for portfolio diversity) *)
    let branch_var = ref (-1) in
    let best_score = ref st.int_eps in
    Array.iter
      (fun j ->
        let frac = Float.abs (x.(j) -. Float.round x.(j)) in
        if frac > st.int_eps then begin
          let score =
            frac +. (0.5 *. branch_jitter ~seed:st.branch_seed j)
          in
          if score > !best_score then begin
            best_score := score;
            branch_var := j
          end
        end)
      st.int_vars;
    if !branch_var < 0 then begin
      (* an integral LP vertex that fails the exact feasibility re-check
         means the incrementally-maintained basics have drifted: rebuild
         the tableau under the current (mostly fixed, hence cheap) bounds
         and examine the fresh optimum once *)
      if not (consider_incumbent st x) then
        if fresh then begin
          (* the fresh vertex is still not certifiable: without it the
             exhausted search cannot claim Infeasible (or Optimal, if it
             beats the incumbent) *)
          if st.sense *. Linexpr.eval st.obj_expr x < st.best_obj -. 1.0e-9
          then st.dropped_vertex <- true
        end
        else begin
          st.nodes <- st.nodes - 1;
          if rebuild st then explore ~fresh:true ~depth st
        end
    end
    else begin
      let j = !branch_var in
      let v = x.(j) in
      let fl = Float.of_int (int_of_float (Float.floor v)) in
      let saved_lo = st.cur_lo.(j) and saved_hi = st.cur_hi.(j) in
      let down () = (saved_lo, fl) in
      let up () = (fl +. 1.0, saved_hi) in
      (* dive up unless the value is clearly near its floor: on the
         set-partitioning structure of assignment models (sum of binaries
         = 1), fixing variables to 1 is what completes feasible leaves *)
      let dive_threshold =
        if st.branch_seed = 0 then 0.2
        else 0.05 +. (0.5 *. branch_jitter ~seed:st.branch_seed j)
      in
      let first, second =
        if v -. fl <= dive_threshold then (down, up) else (up, down)
      in
      let visit side =
        let lo, hi = side () in
        (* prune by bound before paying the dual repair? the repair is the
           bound computation, so just do it *)
        if move_bounds st j ~lo ~hi then explore ~depth:(depth + 1) st
      in
      let restore () =
        if not (move_bounds st j ~lo:saved_lo ~hi:saved_hi) then
          (* restoring a relaxation cannot be infeasible: rebuild *)
          if not (rebuild st) then
            (* still infeasible: numerical dead end for this subtree *)
            raise Limit_reached
      in
      visit first;
      restore ();
      (* after restoring, the parent relaxation bound prunes the sibling
         only if it is itself dominated — explore checks again anyway *)
      visit second;
      restore ()
    end
  end

let fallback_reason p =
  let bad = ref None in
  Problem.iter_vars
    (fun j kind (lo, hi) ->
      match kind with
      | Problem.Integer | Problem.Binary ->
        if lo = neg_infinity || hi = infinity then
          bad := Some (Fmt.str "integer variable %s unbounded" (Problem.var_name p j))
      | Problem.Continuous -> ())
    p;
  !bad

let solve ?(time_limit_s = 60.0) ?deadline ?(node_limit = 2_000_000)
    ?(int_eps = 1.0e-6) ?incumbent ?(branch_seed = 0)
    ?(hooks = Branch_bound.no_hooks) ?log_every
    ?(pricing = Simplex_core.Devex) ?(presolve = true) ?root_basis ?basis_out
    ?max_lp_iters ?(checkpoint_every = 0) ?on_checkpoint ?resume
    (p0 : Problem.t) : Branch_bound.solution =
  ignore log_every;
  (* A coarse resume is just an incumbent seed: the dive restarts but the
     cutoff (and hence the final objective) carries over. *)
  let incumbent =
    match resume with
    | Some { dck_best = Some (_, x); _ } when incumbent = None -> Some x
    | _ -> incumbent
  in
  let lp_iter_budget =
    match max_lp_iters with Some m -> m | None -> default_lp_iter_budget
  in
  match Branch_bound.feasibility_shortcut p0 incumbent with
  | Some early -> early
  | None ->
  let t0 = Clock.now () in
  let deadline =
    match deadline with Some d -> d | None -> t0 +. time_limit_s
  in
  match fallback_reason p0 with
  | Some reason ->
    Log.warn (fun f -> f "dfs: falling back to best-first solver (%s)" reason);
    Branch_bound.solve ~deadline ~int_eps ?incumbent ~branch_seed ~hooks
      ~pricing ~presolve ?root_basis ?basis_out ?max_lp_iters p0
  | None ->
    (* Root presolve: same ids, implied-only tightening — the feasible set
       is unchanged, so the whole dive runs on the reduced problem and
       solutions transfer verbatim (see {!Branch_bound.solve}). *)
    let presolve_outcome =
      if presolve then begin
        let r, pre = Presolve.run p0 in
        if pre.Presolve.rounds > 0 then
          Log.info (fun f ->
              f "dfs presolve: %d rounds, %d rows dropped, %d bounds tightened"
                pre.Presolve.rounds pre.Presolve.rows_dropped
                pre.Presolve.bounds_tightened);
        (r, pre)
      end
      else (Presolve.Reduced p0, Branch_bound.no_presolve_stats)
    in
    let dir0, _ = Problem.objective p0 in
    let sense0 =
      match dir0 with Problem.Minimize -> 1.0 | Problem.Maximize -> -1.0
    in
    match presolve_outcome with
    | Presolve.Infeasible _row, pre ->
      {
        Branch_bound.status = Branch_bound.Infeasible;
        obj = None;
        x = None;
        stats =
          {
            Branch_bound.nodes = 0;
            simplex_solves = 0;
            time_s = Clock.now () -. t0;
            best_bound = (if sense0 > 0.0 then infinity else neg_infinity);
            gap = None;
            foreign_prunes = 0;
            lp =
              Branch_bound.lp_of_counters (Simplex_core.fresh_counters ())
                ~lp_time_s:0.0 ~presolve:pre;
          };
      }
    | Presolve.Reduced p, pre ->
    let cnt = Simplex_core.fresh_counters () in
    let n = Problem.num_vars p in
    let dir, obj_expr = Problem.objective p in
    let sense = match dir with Problem.Minimize -> 1.0 | Problem.Maximize -> -1.0 in
    let int_vars =
      let acc = ref [] in
      Problem.iter_vars
        (fun j kind _ ->
          match kind with
          | Problem.Integer | Problem.Binary -> acc := j :: !acc
          | Problem.Continuous -> ())
        p;
      Array.of_list (List.rev !acc)
    in
    let cur_lo = Array.make n 0.0 and cur_hi = Array.make n 0.0 in
    Problem.iter_vars
      (fun j _ (lo, hi) ->
        cur_lo.(j) <- lo;
        cur_hi.(j) <- hi)
      p;
    (match Simplex_core.build ~pricing ~counters:cnt p with
     | None ->
       {
         Branch_bound.status = Branch_bound.Infeasible;
         obj = None;
         x = None;
         stats =
           {
             Branch_bound.nodes = 0;
             simplex_solves = 0;
             time_s = Clock.now () -. t0;
             best_bound = (if sense > 0.0 then neg_infinity else infinity);
             gap = None;
             foreign_prunes = 0;
             lp =
               Branch_bound.lp_of_counters cnt ~lp_time_s:0.0 ~presolve:pre;
           };
       }
     | Some tb ->
       let st =
         {
           p;
           tb;
           sense;
           obj_expr;
           int_vars;
           cur_lo;
           cur_hi;
           deadline;
           node_limit;
           int_eps;
           branch_seed;
           hooks;
           pricing;
           cnt;
           iter_budget = lp_iter_budget;
           ck_every = checkpoint_every;
           on_ck = on_checkpoint;
           lp_time = 0.0;
           last_pivots = cnt.Simplex_core.pivots + cnt.Simplex_core.dual_pivots;
           nodes = 0;
           rebuilds = 0;
           best_obj = infinity;
           best_x = None;
           cutoff_foreign = false;
           foreign_prunes = 0;
           exhausted = false;
           dropped_vertex = false;
         }
       in
       (match incumbent with
        | Some x when Array.length x = n -> ignore (consider_incumbent st x)
        | Some _ | None -> ());
       let root_status =
         let lp_t0 = Clock.now () in
         (* Chained root basis (from an adjacent sweep configuration):
            reoptimize from it when compatible instead of a two-phase
            cold solve; [`Cold_needed] falls through to the cold path. *)
         let warm_root =
           match root_basis with
           | None -> `No
           | Some b -> (
             match
               Simplex_core.restore ~pricing ~counters:cnt
                 ~max_iters:lp_iter_budget ~deadline b p
             with
             | `Optimal tb' ->
               st.tb <- tb';
               cnt.Simplex_core.warm_hits <- cnt.Simplex_core.warm_hits + 1;
               hooks.Branch_bound.on_basis ~node:1 Branch_bound.Warm_hit;
               `Ok
             | `Infeasible_bounds -> `Root_infeasible
             | `Unbounded -> `Root_unbounded
             | `Limit -> `Limit
             | `Cold_needed ->
               cnt.Simplex_core.warm_misses <- cnt.Simplex_core.warm_misses + 1;
               hooks.Branch_bound.on_basis ~node:1 Branch_bound.Warm_miss;
               `No)
         in
         let r =
           match warm_root with
           | (`Ok | `Root_infeasible | `Root_unbounded | `Limit) as r -> r
           | `No -> (
             match Simplex_core.phase1 tb ~max_iters:lp_iter_budget ~deadline with
             | `Infeasible -> `Root_infeasible
             | `Limit -> `Limit
             | `Feasible ->
               Simplex_core.install_objective tb;
               (match Simplex_core.phase2 tb ~max_iters:lp_iter_budget ~deadline with
                | `Optimal -> `Ok
                | `Unbounded -> `Root_unbounded
                | `Iteration_limit -> `Limit))
         in
         st.lp_time <- st.lp_time +. (Clock.now () -. lp_t0);
         r
       in
       let root_bound =
         match root_status with
         | `Ok -> sense *. Simplex_core.objective_value st.tb
         | _ -> neg_infinity
       in
       (match root_status with
        | `Ok ->
          (match basis_out with
           | Some r -> r := Some (Simplex_core.snapshot st.tb)
           | None -> ());
          (try
             explore st;
             st.exhausted <- true
           with Limit_reached ->
             (* inconclusive stop: hand the incumbent to the supervisor *)
             emit_coarse st)
        | `Root_infeasible | `Root_unbounded | `Limit -> ());
       let time_s = Clock.now () -. t0 in
       let has_incumbent = st.best_x <> None in
       let status =
         match root_status with
         | `Root_unbounded -> Branch_bound.Unbounded
         | `Root_infeasible ->
           if has_incumbent then Branch_bound.Optimal else Branch_bound.Infeasible
         | `Limit ->
           if has_incumbent then Branch_bound.Feasible else Branch_bound.Unknown
         | `Ok ->
           if st.exhausted && not st.dropped_vertex then
             if has_incumbent then Branch_bound.Optimal
             else Branch_bound.Infeasible
           else if has_incumbent then Branch_bound.Feasible
           else Branch_bound.Unknown
       in
       let best_bound_min =
         if status = Branch_bound.Optimal then st.best_obj else root_bound
       in
       let obj = Option.map (fun _ -> sense *. st.best_obj) st.best_x in
       let gap =
         match obj with
         | Some _ when status = Branch_bound.Optimal -> Some 0.0
         | Some _ ->
           if best_bound_min = neg_infinity then None
           else
             Some
               (Float.abs (st.best_obj -. best_bound_min)
               /. Float.max 1.0 (Float.abs st.best_obj))
         | None -> None
       in
       Log.info (fun f ->
           f "dfs: %d nodes, %d rebuilds, %.2fs" st.nodes st.rebuilds time_s);
       {
         Branch_bound.status;
         obj;
         x = st.best_x;
         stats =
           {
             Branch_bound.nodes = st.nodes;
             simplex_solves = st.rebuilds + 1;
             time_s;
             best_bound = sense *. best_bound_min;
             gap;
             foreign_prunes = st.foreign_prunes;
             lp =
               Branch_bound.lp_of_counters st.cnt ~lp_time_s:st.lp_time
                 ~presolve:pre;
           };
       })
