(** Monotonic wall-clock time for solver deadlines.

    Every time limit in the solver stack is an {e absolute} instant on
    this clock: [Clock.now () +. budget]. The clock is
    [CLOCK_MONOTONIC]-backed, so NTP adjustments or administrator
    wall-clock jumps can neither blow a deadline early nor extend it —
    and, because the monotonic epoch is machine-wide, one deadline value
    is coherent across every domain of a parallel solve.

    Instants are in seconds since an arbitrary (boot-time) epoch; they
    are only meaningful relative to each other and must never be mixed
    with [Unix.gettimeofday] values. *)

(** Current monotonic instant, in seconds. *)
val now : unit -> float

(** [deadline_of ~limit_s] is [now () +. limit_s]. *)
val deadline_of : limit_s:float -> float

(** Seconds left until [deadline] (negative when expired). *)
val remaining : deadline:float -> float

(** [expired deadline] is [now () > deadline]. *)
val expired : float -> bool
