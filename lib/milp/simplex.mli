(** Dense two-phase primal simplex for linear programs with bounded
    variables.

    Integrality requirements of the {!Problem} are ignored (this is the LP
    relaxation solver used by {!Branch_bound}). Nonbasic variables may rest
    at either bound, so binary-heavy models need no extra rows for their
    upper bounds. Bland's rule is enabled automatically after a stall to
    guarantee termination on degenerate instances. *)

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

(** [solve ?bounds ?max_iters p] solves the LP relaxation of [p].

    [bounds] optionally overrides every variable's bounds (two arrays of
    length [Problem.num_vars p]) — used by branch-and-bound nodes.
    [max_iters] caps total simplex pivots across both phases (default
    200_000); [deadline] is an absolute monotonic {!Clock.now} instant
    after which the solve aborts with [Iteration_limit]. *)
val solve :
  ?bounds:float array * float array ->
  ?max_iters:int ->
  ?deadline:float ->
  Problem.t ->
  result
