(** Two-phase primal simplex for linear programs with bounded variables.

    Integrality requirements of the {!Problem} are ignored (this is the LP
    relaxation solver used by {!Branch_bound}). Nonbasic variables may rest
    at either bound, so binary-heavy models need no extra rows for their
    upper bounds. Bland's rule is enabled automatically after a stall to
    guarantee termination on degenerate instances.

    Pivot eliminations run over per-row nonzero supports, and the entering
    variable is chosen by a configurable pricing rule (devex partial
    pricing by default); see {!Simplex_core} for the kernel details. *)

(** Entering-variable pricing rule. [Devex] (the default) prices a bounded
    candidate list against reference weights; [Dantzig] is the classic
    most-negative-reduced-cost full scan; [Bland] is the smallest-index
    full scan. All three share the automatic Bland anti-cycling fallback,
    and all reach an optimal basis — only the pivot trajectory differs. *)
type pricing = Simplex_core.pricing = Dantzig | Devex | Bland

val pricing_name : pricing -> string

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

(** [solve ?pricing ?counters ?bounds ?max_iters p] solves the LP
    relaxation of [p].

    [pricing] selects the entering-variable rule (default [Devex]).
    [counters] accumulates work statistics (pivots, pricing scans, ...)
    into a caller-supplied {!Simplex_core.counters} record.
    [bounds] optionally overrides every variable's bounds (two arrays of
    length [Problem.num_vars p]) — used by branch-and-bound nodes.
    [max_iters] caps total simplex pivots across both phases (default
    200_000); [deadline] is an absolute monotonic {!Clock.now} instant
    after which the solve aborts with [Iteration_limit]. *)
val solve :
  ?pricing:pricing ->
  ?counters:Simplex_core.counters ->
  ?bounds:float array * float array ->
  ?max_iters:int ->
  ?deadline:float ->
  Problem.t ->
  result

(** Outcome of a warm-capable solve. [wr_basis] is a compact
    {!Simplex_core.Basis} snapshot of the optimal basis (present exactly
    when [wr_result] is [Optimal]) that a later [solve_warm] on the same
    or a structurally identical problem can reoptimize from. [wr_warm]
    reports whether the supplied basis actually produced the answer —
    [false] means the solve ran (or fell back to) the cold path. *)
type warm_result = {
  wr_result : result;
  wr_basis : Simplex_core.Basis.t option;
  wr_warm : bool;
}

(** [solve_warm ?basis p] is {!solve} with basis reuse: when [basis] is
    supplied and structurally compatible, the solve refactorizes the
    saved basis under the new [bounds] and reoptimizes with the bounded
    dual simplex followed by a primal cleanup — the warm claim is
    certified by the same full pricing scan as a cold solve, so results
    are interchangeable (tested). Any trouble on the warm path
    (structure mismatch, stalled or uncertifiable dual repair) falls
    back to the cold path transparently; only deadline expiry is
    surfaced as [Iteration_limit] without a retry. *)
val solve_warm :
  ?pricing:pricing ->
  ?counters:Simplex_core.counters ->
  ?bounds:float array * float array ->
  ?max_iters:int ->
  ?deadline:float ->
  ?basis:Simplex_core.Basis.t ->
  Problem.t ->
  warm_result
