#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

/* Monotonic seconds since an arbitrary epoch. CLOCK_MONOTONIC is immune
   to NTP slew/step and settimeofday, and is shared by all threads and
   domains of the process. */
CAMLprim value letdma_clock_monotonic_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}
