(* One-shot LP solving on top of the persistent state in
   {!Simplex_core}: build, Phase I, install the objective, Phase II,
   extract. See simplex_core.ml for the tableau mechanics. *)

type pricing = Simplex_core.pricing = Dantzig | Devex | Bland

let pricing_name = Simplex_core.pricing_name

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

let solve ?pricing ?counters ?bounds ?(max_iters = 200_000)
    ?(deadline = infinity) (p : Problem.t) : result =
  match Simplex_core.build ?pricing ?counters ?bounds p with
  | None -> Infeasible
  | Some tb ->
    (match Simplex_core.phase1 tb ~max_iters ~deadline with
     | `Infeasible -> Infeasible
     | `Limit -> Iteration_limit
     | `Feasible ->
       Simplex_core.install_objective tb;
       (match Simplex_core.phase2 tb ~max_iters ~deadline with
        | `Unbounded -> Unbounded
        | `Iteration_limit -> Iteration_limit
        | `Optimal ->
          let x = Simplex_core.solution tb in
          let obj = Simplex_core.objective_value tb in
          Optimal { obj; x }))
