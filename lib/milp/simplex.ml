(* One-shot LP solving on top of the persistent state in
   {!Simplex_core}: build, Phase I, install the objective, Phase II,
   extract. See simplex_core.ml for the tableau mechanics. *)

type pricing = Simplex_core.pricing = Dantzig | Devex | Bland

let pricing_name = Simplex_core.pricing_name

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

(* Cold path shared by [solve] and [solve_warm]; returns the solved core
   state alongside the result so warm callers can snapshot the basis. *)
let solve_core ?pricing ?counters ?bounds ~max_iters ~deadline
    (p : Problem.t) =
  match Simplex_core.build ?pricing ?counters ?bounds p with
  | None -> (Infeasible, None)
  | Some tb ->
    (match Simplex_core.phase1 tb ~max_iters ~deadline with
     | `Infeasible -> (Infeasible, None)
     | `Limit -> (Iteration_limit, None)
     | `Feasible ->
       Simplex_core.install_objective tb;
       (match Simplex_core.phase2 tb ~max_iters ~deadline with
        | `Unbounded -> (Unbounded, None)
        | `Iteration_limit -> (Iteration_limit, None)
        | `Optimal ->
          let x = Simplex_core.solution tb in
          let obj = Simplex_core.objective_value tb in
          (Optimal { obj; x }, Some tb)))

let solve ?pricing ?counters ?bounds ?(max_iters = 200_000)
    ?(deadline = infinity) (p : Problem.t) : result =
  fst (solve_core ?pricing ?counters ?bounds ~max_iters ~deadline p)

type warm_result = {
  wr_result : result;
  wr_basis : Simplex_core.Basis.t option;
      (* snapshot of the optimal basis, for reuse by the next solve *)
  wr_warm : bool; (* the restored basis produced the answer *)
}

let solve_warm ?pricing ?counters ?bounds ?(max_iters = 200_000)
    ?(deadline = infinity) ?basis (p : Problem.t) : warm_result =
  let cold () =
    let result, tb =
      solve_core ?pricing ?counters ?bounds ~max_iters ~deadline p
    in
    { wr_result = result;
      wr_basis = Option.map Simplex_core.snapshot tb;
      wr_warm = false }
  in
  match basis with
  | None -> cold ()
  | Some b -> (
    match
      Simplex_core.restore ?pricing ?counters ?bounds ~max_iters ~deadline b
        p
    with
    | `Infeasible_bounds ->
      (* crossed bounds are detected before any basis work: exact either
         way, and the restored basis played no part *)
      { wr_result = Infeasible; wr_basis = None; wr_warm = false }
    | `Optimal tb ->
      let x = Simplex_core.solution tb in
      let obj = Simplex_core.objective_value tb in
      {
        wr_result = Optimal { obj; x };
        wr_basis = Some (Simplex_core.snapshot tb);
        wr_warm = true;
      }
    | `Unbounded -> { wr_result = Unbounded; wr_basis = None; wr_warm = true }
    | `Limit ->
      { wr_result = Iteration_limit; wr_basis = None; wr_warm = true }
    | `Cold_needed -> cold ())
