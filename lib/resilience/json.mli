(** Shared strict-JSON machinery: one writer and one validating reader
    for every durable JSON surface in the tree.

    Historically each consumer ({!Checkpoint}, the service protocol,
    bench report writers) grew its own copy of the same helpers. They
    now live here, so the properties the test suites pin down hold
    everywhere at once:

    - {b writing} is deterministic: floats print with [%.17g] (exact for
      doubles), strings are escaped per RFC 8259, and a non-finite float
      outside an explicitly sanctioned [null] slot raises
      [Invalid_argument] instead of emitting a NaN/Infinity token that
      no strict parser would read back;
    - {b reading} goes through {!Obs.Check.parse_json} — one strict JSON
      document, NaN/Infinity rejected, object member order preserved —
      and the accessors turn structural mismatches into {!Invalid} with
      a path-qualified message, never a raw exception. *)

(** Re-export of {!Obs.Check.json}: the parsed strict-JSON value. *)
type t = Obs.Check.json =
  | Null
  | B of bool
  | N of float
  | S of string
  | A of t list
  | O of (string * t) list

val parse : string -> (t, string) result
(** [parse s] is {!Obs.Check.parse_json}[ s]: one strict JSON document,
    no trailing garbage, no NaN/Infinity tokens. *)

(** {1 Writing} *)

val add_string : Buffer.t -> string -> unit
(** Append [s] as a quoted, escaped JSON string. *)

val add_float : Buffer.t -> float -> unit
(** Append a finite float as [%.17g] (round-trips doubles exactly).
    Raises [Invalid_argument] on NaN/Infinity — non-finite values must
    be encoded positionally as [null] by the caller, never as tokens. *)

val add_int : Buffer.t -> int -> unit

val add_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
(** [add_list b add xs] appends [xs] as a JSON array using [add] per
    element. *)

val add_array : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit

val escape : string -> string
(** [escape s] is the quoted escaped form of [s] as a string (what
    {!add_string} appends). *)

(** {1 Validating accessors}

    Each accessor takes a [what] path (["state.frontier[]"]) used in the
    error message. All raise {!Invalid} on mismatch; {!Checkpoint} and
    the service protocol catch it at their document boundary and return
    [Error]. *)

exception Invalid of string

val invalid : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [invalid fmt ...] raises {!Invalid} with the formatted message. *)

val as_int : string -> t -> int
(** Accepts integral JSON numbers up to the exactly-representable
    double range. *)

val as_int_string : string -> t -> int
(** Exact 63-bit integers travel as strings (a JSON number would be
    parsed into a float and lose low bits past 2^53). *)

val as_float : string -> t -> float
val as_string : string -> t -> string
val as_bool : string -> t -> bool
val as_list : string -> t -> t list
val as_obj : string -> t -> (string * t) list

val field : string -> (string * t) list -> string -> t
(** [field what ms k] is member [k] of [ms]; {!Invalid} if missing. *)

val field_opt : (string * t) list -> string -> t option
