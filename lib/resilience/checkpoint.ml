(* Versioned, deterministic serialization of solver checkpoints.

   Design constraints:
   - byte-identical round trip: [to_string] of [of_string] of a file is
     the file again. Floats print with %.17g (exact for doubles), the
     frontier is stored in canonical pop order and the basis pool sorted
     by node id (both already canonical in the in-memory snapshot), and
     no timestamps or other environment-dependent data are stored.
   - strict loading: the parser is [Obs.Check.parse_json], which rejects
     NaN/Infinity tokens outright; on top of that every field is
     structurally validated (unknown versions, wrong types, non-integer
     ids, non-finite objectives all fail with a message, never an
     exception).
   - one-sided infinities in branching overrides ([lo = -inf] on a down
     branch, [hi = +inf] on an up branch) and the root's [-inf] heap
     priority are the only legitimate non-finite values; they are
     encoded positionally as JSON [null]. *)

let src = Logs.Src.create "resilience.ck" ~doc:"solver checkpoint files"

module Log = (val Logs.src_log src : Logs.LOG)

let version = 1

type state =
  | Best_first of Milp.Branch_bound.checkpoint
  | Dfs of Milp.Dfs_solver.coarse_checkpoint

type t = {
  ck_version : int;
  ck_fingerprint : string;
  ck_meta : (string * string) list;
  ck_state : state;
}

(* FNV-1a (64-bit) over the model's LP-format text: any change to a
   bound, coefficient, sense or objective changes the fingerprint, while
   re-building the same model reproduces it. *)
let fingerprint (p : Milp.Problem.t) =
  let s = Milp.Problem.to_lp_string p in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "fnv1a64:%016Lx" !h

let make ?(meta = []) ~fingerprint state =
  { ck_version = version; ck_fingerprint = fingerprint; ck_meta = meta;
    ck_state = state }

(* ---------- writing ---------- *)

(* The strict writer/reader primitives live in [Json] (shared with the
   service protocol); the aliases keep this file's vocabulary. *)
let add_float = Json.add_float
let add_json_string = Json.add_string
let add_list = Json.add_list
let add_array = Json.add_array
let add_int = Json.add_int

let add_basis b (basis : Milp.Simplex_core.Basis.t) =
  let open Milp.Simplex_core.Basis in
  Buffer.add_string b "{\"rows\":";
  add_array b
    (fun b e ->
      match e with
      | Bvar v -> add_json_string b ("v" ^ string_of_int v)
      | Bslack r -> add_json_string b ("s" ^ string_of_int r)
      | Bnone -> add_json_string b "-")
    basis.rows;
  Buffer.add_string b ",\"at_upper\":";
  add_array b add_int basis.at_upper;
  (* [bsig] spans the full 63-bit range: as a JSON number it would be
     read back through a float and silently lose low bits past 2^53,
     making every restored basis fail its fingerprint check — encode it
     as a string so the round trip is exact *)
  Buffer.add_string b (Printf.sprintf ",\"bm\":%d,\"bn\":%d,\"bsig\":\"%d\"}"
                         basis.bm basis.bn basis.bsig)

let add_best b best =
  match best with
  | None -> Buffer.add_string b "null"
  | Some (obj, x) ->
    Buffer.add_string b "{\"obj\":";
    add_float b obj;
    Buffer.add_string b ",\"x\":";
    add_array b add_float x;
    Buffer.add_char b '}'

let add_counters b (c : Milp.Simplex_core.counters) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"pivots\":%d,\"dual_pivots\":%d,\"pricing_scanned\":%d,\
        \"pricing_refreshes\":%d,\"warm_hits\":%d,\"warm_misses\":%d,\
        \"dual_pivots_saved\":%d,\"basis_evictions\":%d}"
       c.Milp.Simplex_core.pivots c.Milp.Simplex_core.dual_pivots
       c.Milp.Simplex_core.pricing_scanned
       c.Milp.Simplex_core.pricing_refreshes c.Milp.Simplex_core.warm_hits
       c.Milp.Simplex_core.warm_misses c.Milp.Simplex_core.dual_pivots_saved
       c.Milp.Simplex_core.basis_evictions)

let add_ck_node b (n : Milp.Branch_bound.ck_node) =
  let open Milp.Branch_bound in
  Buffer.add_string b "{\"prio\":";
  if n.ck_prio = neg_infinity then Buffer.add_string b "null"
  else add_float b n.ck_prio;
  Buffer.add_string b (Printf.sprintf ",\"tie\":%d,\"depth\":%d,\"parent\":%d,\"overrides\":"
                         n.ck_node_tie n.ck_depth n.ck_parent);
  add_list b
    (fun b (j, lo, hi) ->
      Buffer.add_char b '[';
      add_int b j;
      Buffer.add_char b ',';
      if lo = neg_infinity then Buffer.add_string b "null" else add_float b lo;
      Buffer.add_char b ',';
      if hi = infinity then Buffer.add_string b "null" else add_float b hi;
      Buffer.add_char b ']')
    n.ck_overrides;
  Buffer.add_char b '}'

let add_best_first b (ck : Milp.Branch_bound.checkpoint) =
  let open Milp.Branch_bound in
  Buffer.add_string b
    (Printf.sprintf "{\"nodes\":%d,\"tie\":%d,\"simplex_solves\":%d,\"best\":"
       ck.ck_nodes ck.ck_tie ck.ck_simplex_solves);
  add_best b ck.ck_best;
  Buffer.add_string b
    (Printf.sprintf ",\"cutoff_foreign\":%b,\"foreign_prunes\":%d,\"cold_ref_pivots\":"
       ck.ck_cutoff_foreign ck.ck_foreign_prunes);
  (match ck.ck_cold_ref_pivots with
   | None -> Buffer.add_string b "null"
   | Some n -> add_int b n);
  Buffer.add_string b ",\"counters\":";
  add_counters b ck.ck_counters;
  Buffer.add_string b ",\"lp_time_s\":";
  add_float b ck.ck_lp_time_s;
  Buffer.add_string b ",\"frontier\":";
  add_list b add_ck_node ck.ck_frontier;
  Buffer.add_string b ",\"pool\":";
  add_list b
    (fun b (id, basis, refs, last) ->
      Buffer.add_char b '[';
      add_int b id;
      Buffer.add_char b ',';
      add_basis b basis;
      Buffer.add_string b (Printf.sprintf ",%d,%d]" refs last))
    ck.ck_pool;
  Buffer.add_string b (Printf.sprintf ",\"pool_tick\":%d}" ck.ck_pool_tick)

let add_dfs b (ck : Milp.Dfs_solver.coarse_checkpoint) =
  Buffer.add_string b
    (Printf.sprintf "{\"nodes\":%d,\"best\":" ck.Milp.Dfs_solver.dck_nodes);
  add_best b ck.Milp.Dfs_solver.dck_best;
  Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"version\":%d,\"kind\":" t.ck_version);
  (match t.ck_state with
   | Best_first _ -> Buffer.add_string b "\"best_first\""
   | Dfs _ -> Buffer.add_string b "\"dfs\"");
  Buffer.add_string b ",\"fingerprint\":";
  add_json_string b t.ck_fingerprint;
  Buffer.add_string b ",\"meta\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_json_string b v)
    t.ck_meta;
  Buffer.add_string b "},\"state\":";
  (match t.ck_state with
   | Best_first ck -> add_best_first b ck
   | Dfs ck -> add_dfs b ck);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ---------- reading ---------- *)

open Json

let invalid = Json.invalid
let as_int = Json.as_int

(* Exact 63-bit integers (basis fingerprints) travel as strings: a JSON
   number would be parsed into a float and lose low bits past 2^53. *)
let as_int_string = Json.as_int_string
let as_float = Json.as_float
let as_string = Json.as_string
let as_bool = Json.as_bool
let as_list = Json.as_list
let as_obj = Json.as_obj
let field = Json.field

let best_of_json what = function
  | Null -> None
  | O ms ->
    let obj = as_float (what ^ ".obj") (field what ms "obj") in
    let x =
      as_list (what ^ ".x") (field what ms "x")
      |> List.map (as_float (what ^ ".x[]"))
      |> Array.of_list
    in
    Some (obj, x)
  | _ -> invalid "%s: expected null or an object" what

let counters_of_json what j =
  let ms = as_obj what j in
  let f k = as_int (what ^ "." ^ k) (field what ms k) in
  let c = Milp.Simplex_core.fresh_counters () in
  c.Milp.Simplex_core.pivots <- f "pivots";
  c.Milp.Simplex_core.dual_pivots <- f "dual_pivots";
  c.Milp.Simplex_core.pricing_scanned <- f "pricing_scanned";
  c.Milp.Simplex_core.pricing_refreshes <- f "pricing_refreshes";
  c.Milp.Simplex_core.warm_hits <- f "warm_hits";
  c.Milp.Simplex_core.warm_misses <- f "warm_misses";
  c.Milp.Simplex_core.dual_pivots_saved <- f "dual_pivots_saved";
  c.Milp.Simplex_core.basis_evictions <- f "basis_evictions";
  c

let basis_of_json what j =
  let open Milp.Simplex_core.Basis in
  let ms = as_obj what j in
  let rows =
    as_list (what ^ ".rows") (field what ms "rows")
    |> List.map (fun e ->
           match as_string (what ^ ".rows[]") e with
           | "-" -> Bnone
           | s when String.length s > 1 && s.[0] = 'v' -> (
             match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
             | Some v when v >= 0 -> Bvar v
             | _ -> invalid "%s.rows[]: bad entry %S" what s)
           | s when String.length s > 1 && s.[0] = 's' -> (
             match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
             | Some r when r >= 0 -> Bslack r
             | _ -> invalid "%s.rows[]: bad entry %S" what s)
           | s -> invalid "%s.rows[]: bad entry %S" what s)
    |> Array.of_list
  in
  let at_upper =
    as_list (what ^ ".at_upper") (field what ms "at_upper")
    |> List.map (as_int (what ^ ".at_upper[]"))
    |> Array.of_list
  in
  {
    rows;
    at_upper;
    bm = as_int (what ^ ".bm") (field what ms "bm");
    bn = as_int (what ^ ".bn") (field what ms "bn");
    bsig = as_int_string (what ^ ".bsig") (field what ms "bsig");
  }

let ck_node_of_json what j =
  let ms = as_obj what j in
  let prio =
    match field what ms "prio" with
    | Null -> neg_infinity
    | v -> as_float (what ^ ".prio") v
  in
  let overrides =
    as_list (what ^ ".overrides") (field what ms "overrides")
    |> List.map (fun o ->
           match as_list (what ^ ".overrides[]") o with
           | [ j'; lo; hi ] ->
             let lo =
               match lo with
               | Null -> neg_infinity
               | v -> as_float (what ^ ".overrides[].lo") v
             and hi =
               match hi with
               | Null -> infinity
               | v -> as_float (what ^ ".overrides[].hi") v
             in
             (as_int (what ^ ".overrides[].var") j', lo, hi)
           | _ -> invalid "%s.overrides[]: expected [var, lo, hi]" what)
  in
  {
    Milp.Branch_bound.ck_prio = prio;
    ck_node_tie = as_int (what ^ ".tie") (field what ms "tie");
    ck_depth = as_int (what ^ ".depth") (field what ms "depth");
    ck_parent = as_int (what ^ ".parent") (field what ms "parent");
    ck_overrides = overrides;
  }

let best_first_of_json j =
  let what = "state" in
  let ms = as_obj what j in
  let fi k = field what ms k in
  {
    Milp.Branch_bound.ck_nodes = as_int "state.nodes" (fi "nodes");
    ck_tie = as_int "state.tie" (fi "tie");
    ck_simplex_solves = as_int "state.simplex_solves" (fi "simplex_solves");
    ck_best = best_of_json "state.best" (fi "best");
    ck_cutoff_foreign = as_bool "state.cutoff_foreign" (fi "cutoff_foreign");
    ck_foreign_prunes = as_int "state.foreign_prunes" (fi "foreign_prunes");
    ck_cold_ref_pivots =
      (match fi "cold_ref_pivots" with
       | Null -> None
       | v -> Some (as_int "state.cold_ref_pivots" v));
    ck_counters = counters_of_json "state.counters" (fi "counters");
    ck_lp_time_s = as_float "state.lp_time_s" (fi "lp_time_s");
    ck_frontier =
      as_list "state.frontier" (fi "frontier")
      |> List.map (ck_node_of_json "state.frontier[]");
    ck_pool =
      as_list "state.pool" (fi "pool")
      |> List.map (fun e ->
             match as_list "state.pool[]" e with
             | [ id; basis; refs; last ] ->
               ( as_int "state.pool[].id" id,
                 basis_of_json "state.pool[].basis" basis,
                 as_int "state.pool[].refs" refs,
                 as_int "state.pool[].last" last )
             | _ -> invalid "state.pool[]: expected [id, basis, refs, last]");
    ck_pool_tick = as_int "state.pool_tick" (fi "pool_tick");
  }

let dfs_of_json j =
  let ms = as_obj "state" j in
  {
    Milp.Dfs_solver.dck_nodes = as_int "state.nodes" (field "state" ms "nodes");
    dck_best = best_of_json "state.best" (field "state" ms "best");
  }

let of_string s =
  match parse s with
  | Error m -> Error ("checkpoint: " ^ m)
  | Ok j -> (
    try
      let ms = as_obj "checkpoint" j in
      let v = as_int "version" (field "checkpoint" ms "version") in
      if v <> version then
        invalid "unsupported checkpoint version %d (this build reads %d)" v
          version;
      let kind = as_string "kind" (field "checkpoint" ms "kind") in
      let fingerprint =
        as_string "fingerprint" (field "checkpoint" ms "fingerprint")
      in
      let meta =
        as_obj "meta" (field "checkpoint" ms "meta")
        |> List.map (fun (k, v) -> (k, as_string ("meta." ^ k) v))
      in
      let state_json = field "checkpoint" ms "state" in
      let state =
        match kind with
        | "best_first" -> Best_first (best_first_of_json state_json)
        | "dfs" -> Dfs (dfs_of_json state_json)
        | k -> invalid "unknown checkpoint kind %S" k
      in
      Ok
        {
          ck_version = v;
          ck_fingerprint = fingerprint;
          ck_meta = meta;
          ck_state = state;
        }
    with Invalid m -> Error ("checkpoint: " ^ m))

(* ---------- files ---------- *)

let save path t =
  let data = to_string t in
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc data;
        flush oc);
    Sys.rename tmp path
  with
  | () ->
    Obs.point ~cat:"checkpoint" "write"
      [ ("file", Obs.Str path); ("bytes", Obs.Int (String.length data)) ];
    Log.debug (fun f -> f "checkpoint written: %s (%d bytes)" path
                  (String.length data));
    Ok ()
  | exception Sys_error m -> Error ("checkpoint: " ^ m)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error ("checkpoint: " ^ m)
  | s -> (
    match of_string s with
    | Error _ as e -> e
    | Ok t ->
      Obs.point ~cat:"checkpoint" "restore"
        [ ("file", Obs.Str path); ("bytes", Obs.Int (String.length s)) ];
      Log.info (fun f -> f "checkpoint loaded: %s" path);
      Ok t)
