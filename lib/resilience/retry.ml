(* Supervised retry with exponential backoff and parameter escalation.

   The ladder trades solve speed for robustness: attempt 0 runs exactly
   as configured; attempt 1 loosens the pricing rule (Dantzig's full
   scan is slower but numerically steadier than devex reference weights)
   and quadruples the LP iteration cap; attempt 2 and beyond also
   disable the warm-basis pool and presolve — the two subsystems that
   carry state across LPs — and raise the cap to 16x. The caller maps
   the [escalation] record onto its solver parameters, so the policy
   stays solver-agnostic. *)

let src = Logs.Src.create "resilience.retry" ~doc:"supervised solve retries"

module Log = (val Logs.src_log src : Logs.LOG)

type escalation = {
  attempt : int;
  loosen_pricing : bool;
  disable_warm : bool;
  disable_presolve : bool;
  iter_factor : int;
}

let escalate attempt =
  if attempt <= 0 then
    { attempt; loosen_pricing = false; disable_warm = false;
      disable_presolve = false; iter_factor = 1 }
  else if attempt = 1 then
    { attempt; loosen_pricing = true; disable_warm = false;
      disable_presolve = false; iter_factor = 4 }
  else
    { attempt; loosen_pricing = true; disable_warm = true;
      disable_presolve = true; iter_factor = 16 }

type policy = {
  attempts : int;
  backoff_s : float;
  backoff_factor : float;
  max_backoff_s : float;
}

let default_policy =
  { attempts = 3; backoff_s = 0.1; backoff_factor = 2.0; max_backoff_s = 5.0 }

let run ?(policy = default_policy) ?(sleep = Unix.sleepf) ?deadline ~classify f =
  if policy.attempts < 1 then invalid_arg "Retry.run: attempts < 1";
  let remaining () =
    match deadline with
    | None -> infinity
    | Some d -> d -. Milp.Clock.now ()
  in
  let rec go attempt backoff =
    let esc = escalate attempt in
    if attempt > 0 then
      Obs.point ~cat:"retry" "escalate"
        [
          ("attempt", Obs.Int attempt);
          ("loosen_pricing", Obs.Bool esc.loosen_pricing);
          ("disable_warm", Obs.Bool esc.disable_warm);
          ("disable_presolve", Obs.Bool esc.disable_presolve);
          ("iter_factor", Obs.Int esc.iter_factor);
        ];
    let outcome =
      match f esc with
      | r -> Ok r
      | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
      | exception e -> Error e
    in
    let verdict =
      match outcome with
      | Ok r -> (match classify r with `Ok -> `Done | `Retry why -> `Retry why)
      | Error e -> `Retry (Printexc.to_string e)
    in
    match verdict with
    | `Done -> (match outcome with Ok r -> r | Error _ -> assert false)
    | `Retry why ->
      let last = attempt >= policy.attempts - 1 in
      let left = remaining () in
      if last || left <= 0.0 then begin
        Log.warn (fun f ->
            f "retry: giving up after attempt %d (%s)" (attempt + 1) why);
        match outcome with Ok r -> r | Error e -> raise e
      end
      else begin
        Obs.point ~cat:"retry" "attempt"
          [ ("attempt", Obs.Int (attempt + 1)); ("reason", Obs.Str why) ];
        Log.info (fun f ->
            f "retry: attempt %d failed (%s); backing off %.2gs"
              (attempt + 1) why backoff);
        sleep (Float.min backoff (Float.max 0.0 left));
        go (attempt + 1)
          (Float.min (backoff *. policy.backoff_factor) policy.max_backoff_s)
      end
  in
  go 0 policy.backoff_s
