(** Versioned, deterministic checkpoint files for interrupted solves.

    A checkpoint wraps a solver-state snapshot — {!Milp.Branch_bound}'s
    full frontier/incumbent/basis-pool state, or {!Milp.Dfs_solver}'s
    coarse incumbent — together with a format version and a model
    fingerprint, and (de)serializes it to strict JSON.

    Properties the test suite pins down:
    - {b deterministic}: [to_string] is a pure function of the snapshot
      (floats via [%.17g], canonical frontier/pool order, no
      timestamps), so write → load → write is byte-identical;
    - {b strict}: loading uses the NaN/Infinity-rejecting parser from
      {!Obs.Check} and validates every field; unknown versions, unknown
      kinds, type mismatches and truncated files all yield [Error];
    - {b guarded}: {!fingerprint} ties a file to the exact model it was
      taken from, so a resume against a different model is refused by
      the caller (see [Letdma.Solve]).

    Saves are atomic (write to [path ^ ".tmp"], then rename) so an
    interrupt mid-write never corrupts the previous checkpoint. Save and
    load emit ["checkpoint"/"write"] and ["checkpoint"/"restore"] {!Obs}
    points. *)

val version : int
(** Current file-format version (1). {!of_string} rejects any other. *)

type state =
  | Best_first of Milp.Branch_bound.checkpoint
      (** trajectory-identical resume (see {!Milp.Branch_bound.solve}) *)
  | Dfs of Milp.Dfs_solver.coarse_checkpoint
      (** incumbent-only resume (see {!Milp.Dfs_solver.solve}) *)

type t = {
  ck_version : int;
  ck_fingerprint : string;
  ck_meta : (string * string) list;
      (** free-form provenance (objective name, solver parameters…);
          order is preserved *)
  ck_state : state;
}

val fingerprint : Milp.Problem.t -> string
(** FNV-1a hash of the model's LP-format text: stable across runs,
    changed by any bound/coefficient/objective edit. *)

val make : ?meta:(string * string) list -> fingerprint:string -> state -> t
(** Wrap a snapshot at the current {!version}. *)

val to_string : t -> string
(** One strict-JSON document, newline-terminated. Raises
    [Invalid_argument] if a float outside the sanctioned null slots is
    non-finite (cannot happen for snapshots produced by the solvers). *)

val of_string : string -> (t, string) result
(** Parse and validate. Never raises. *)

val save : string -> t -> (unit, string) result
(** Atomic write: the target file either keeps its previous content or
    holds the complete new checkpoint. *)

val load : string -> (t, string) result
