(** Supervised retry: exponential backoff plus parameter escalation.

    Wraps a solve attempt in a policy that turns inconclusive or
    crashing runs into escalated retries instead of hard failures. Each
    attempt receives an {!escalation} record describing how far up the
    robustness ladder it sits; the caller maps it onto solver
    parameters (see [Letdma.Solve.solve_supervised]):

    - attempt 0: exactly as configured;
    - attempt 1: [loosen_pricing] (switch devex to Dantzig's steadier
      full scan) and [iter_factor = 4];
    - attempt 2+: additionally [disable_warm] and [disable_presolve]
      (the two subsystems carrying state across LPs), [iter_factor = 16].

    Every retry emits ["retry"/"attempt"] (with the reason) and
    ["retry"/"escalate"] (with the ladder parameters) {!Obs} points. *)

type escalation = {
  attempt : int;  (** 0-based *)
  loosen_pricing : bool;
  disable_warm : bool;
  disable_presolve : bool;
  iter_factor : int;  (** multiply the LP iteration cap by this *)
}

val escalate : int -> escalation
(** The ladder above, clamped: [escalate 0] is the identity
    configuration, [escalate n] for [n >= 2] is the maximal rung. *)

type policy = {
  attempts : int;  (** total attempts, including the first ([>= 1]) *)
  backoff_s : float;  (** sleep before the first retry *)
  backoff_factor : float;  (** multiplier per further retry *)
  max_backoff_s : float;  (** backoff ceiling *)
}

val default_policy : policy
(** 3 attempts, 0.1 s initial backoff, doubling, capped at 5 s. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?deadline:float ->
  classify:('a -> [ `Ok | `Retry of string ]) ->
  (escalation -> 'a) ->
  'a
(** [run ~classify f] calls [f (escalate 0)], asks [classify] whether
    the result warrants a retry, and walks the ladder with exponential
    backoff until [`Ok], the attempt budget, or [deadline] (a monotonic
    {!Milp.Clock} instant — backoff sleeps never overshoot it).

    An exception from [f] counts as [`Retry] (with the exception text as
    the reason) unless it is the last attempt, in which case it is
    re-raised; [Out_of_memory]/[Stack_overflow] always propagate. When
    the budget is exhausted the last result is returned (or the last
    exception re-raised) — the caller sees exactly what the final
    attempt saw. [sleep] (default [Unix.sleepf]) is injectable for
    tests. Raises [Invalid_argument] if [policy.attempts < 1]. *)
