(* Shared strict-JSON writer + validating reader. The parser itself is
   Obs.Check.parse_json (one strict document, NaN/Infinity rejected);
   this module adds the deterministic writer and the path-qualified
   accessors that Checkpoint and the service protocol both build on. *)

type t = Obs.Check.json =
  | Null
  | B of bool
  | N of float
  | S of string
  | A of t list
  | O of (string * t) list

let parse = Obs.Check.parse_json

(* ---------- writing ---------- *)

let add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else invalid_arg "Json: non-finite float outside a null slot"

let add_int b i = Buffer.add_string b (string_of_int i)

let add_list b add xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      add b x)
    xs;
  Buffer.add_char b ']'

let add_array b add xs =
  Buffer.add_char b '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      add b x)
    xs;
  Buffer.add_char b ']'

let escape s =
  let b = Buffer.create (String.length s + 2) in
  add_string b s;
  Buffer.contents b

(* ---------- reading ---------- *)

exception Invalid of string

let invalid fmt = Fmt.kstr (fun m -> raise (Invalid m)) fmt

let as_int what = function
  | N f when Float.is_integer f && Float.abs f <= 9.007199254740992e15 ->
    int_of_float f
  | _ -> invalid "%s: expected an integer" what

let as_int_string what = function
  | S s -> (
    match int_of_string_opt s with
    | Some i -> i
    | None -> invalid "%s: expected an integer string" what)
  | _ -> invalid "%s: expected an integer string" what

let as_float what = function
  | N f -> f
  | _ -> invalid "%s: expected a finite number" what

let as_string what = function
  | S s -> s
  | _ -> invalid "%s: expected a string" what

let as_bool what = function
  | B b -> b
  | _ -> invalid "%s: expected a boolean" what

let as_list what = function
  | A xs -> xs
  | _ -> invalid "%s: expected an array" what

let as_obj what = function
  | O ms -> ms
  | _ -> invalid "%s: expected an object" what

let field what ms k =
  match List.assoc_opt k ms with
  | Some v -> v
  | None -> invalid "%s: missing field %S" what k

let field_opt ms k = List.assoc_opt k ms
