(** Batch execution core of the solver service.

    One {!process} call takes a parsed request batch (order preserved)
    and returns one rendered response line per request:

    - {b batching}: the batch's solve requests run on a supervised
      {!Parallel.Pool} through {!Parallel.Sweep.map}, which carves one
      shared absolute deadline (the latest per-request deadline in the
      batch) into fair per-item deadlines — a queued request can never
      be starved by the requests ahead of it, and each item is further
      capped by its own [deadline_s];
    - {b caching}: each MILP request is fingerprinted
      ({!Resilience.Checkpoint.fingerprint} of the built model) and
      looked up in a bounded LRU ({!Cache}). An exact hit replays the
      stored solution fields byte-for-byte (["cache":"hit"], zero
      pivots); a miss whose family (workload/seed/objective, ignoring
      the perturbable [alpha]) has a cached sibling warm-starts from
      that sibling's optimal basis (["cache":"warm"], PR-5 path);
      everything else solves cold (["cache":"miss"]);
    - {b QoS}: the request's class and the batch's load factor pick the
      solving tier through {!Qos.plan}; shed requests are answered by
      the heuristic or baseline rung instead of queueing;
    - {b supervision}: a request that kills its worker domain (the
      [crash] chaos op, or a real bug) is retried [retry_on_crash]
      times by the pool's supervisor; past the budget its response is a
      structured error — the engine and its other in-flight requests
      are unaffected.

    A [stats] request is answered from the same queue (so with a
    sequential pool it observes every earlier request of its batch)
    with a snapshot of engine counters, cache and pool state.

    Thread-safety: counters and the cache are mutex-guarded; one
    engine serves one daemon loop but its work runs on pool domains. *)

type t

val create :
  ?jobs:int -> ?cache_capacity:int -> ?retry_on_crash:int -> unit -> t
(** [jobs] sizes the worker pool (default
    [Domain.recommended_domain_count ()]); [cache_capacity] bounds the
    LRU (default 64); [retry_on_crash] (default 1) is each request's
    crash-retry budget. *)

val process :
  t -> (Protocol.request, Protocol.error) Stdlib.result list -> string list
(** Execute one batch; returns rendered response lines, one per
    request, in request order. Never raises on request content —
    malformed entries yield error lines. *)

val cache_stats : t -> Cache.stats

val pool_jobs : t -> int

val shutdown : t -> unit
(** Join the worker pool. The engine must not be used afterwards. *)
