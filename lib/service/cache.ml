(* Mutex-guarded LRU keyed by model fingerprint, with a family index
   for warm seeding. Recency is a strictly increasing tick stamped on
   every find/add, so eviction (minimum tick) is deterministic for a
   fixed operation order; capacities are small (tens), so the O(n)
   eviction scan is irrelevant next to the solves it saves. *)

type 'v entry = {
  family : string;
  payload : 'v;
  mutable last_used : int;
}

type 'v t = {
  capacity : int;
  table : (string, 'v entry) Hashtbl.t;
  m : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable warm_seeds : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  warm_seeds : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    m = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    warm_seeds = 0;
    evictions = 0;
  }

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find t fingerprint =
  Mutex.protect t.m @@ fun () ->
  match Hashtbl.find_opt t.table fingerprint with
  | Some e ->
    e.last_used <- next_tick t;
    t.hits <- t.hits + 1;
    Obs.point ~cat:"cache" "hit" [ ("fingerprint", Obs.Str fingerprint) ];
    Some e.payload
  | None ->
    t.misses <- t.misses + 1;
    Obs.point ~cat:"cache" "miss" [ ("fingerprint", Obs.Str fingerprint) ];
    None

let find_family t ~family =
  Mutex.protect t.m @@ fun () ->
  let best =
    Hashtbl.fold
      (fun fp e acc ->
        if e.family <> family then acc
        else
          match acc with
          | Some (_, e') when e'.last_used >= e.last_used -> acc
          | _ -> Some (fp, e))
      t.table None
  in
  match best with
  | None -> None
  | Some (fp, e) ->
    t.warm_seeds <- t.warm_seeds + 1;
    Obs.point ~cat:"cache" "warm_seed"
      [ ("family", Obs.Str family); ("fingerprint", Obs.Str fp) ];
    Some (fp, e.payload)

let evict_lru t =
  (* minimum tick; ticks are unique, so the victim is unambiguous *)
  let victim =
    Hashtbl.fold
      (fun fp e acc ->
        match acc with
        | Some (_, t') when t' <= e.last_used -> acc
        | _ -> Some (fp, e.last_used))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (fp, _) ->
    Hashtbl.remove t.table fp;
    t.evictions <- t.evictions + 1;
    Obs.point ~cat:"cache" "evict" [ ("fingerprint", Obs.Str fp) ]

let add t ~fingerprint ~family payload =
  Mutex.protect t.m @@ fun () ->
  (match Hashtbl.find_opt t.table fingerprint with
  | Some _ -> Hashtbl.remove t.table fingerprint
  | None -> if Hashtbl.length t.table >= t.capacity then evict_lru t);
  Hashtbl.replace t.table fingerprint
    { family; payload; last_used = next_tick t }

let size t = Mutex.protect t.m @@ fun () -> Hashtbl.length t.table

let stats t =
  Mutex.protect t.m @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    warm_seeds = t.warm_seeds;
    evictions = t.evictions;
    size = Hashtbl.length t.table;
    capacity = t.capacity;
  }
