(* Batch execution: QoS planning, fair-deadline dispatch over the
   supervised pool, and the fingerprint-keyed warm cache. *)

open Let_sem

let src = Logs.Src.create "service.engine" ~doc:"solver service engine"

module Log = (val Logs.src_log src : Logs.LOG)

(* Cached payload of one solved model: the solution's response fields
   (replayed byte-for-byte on a hit) and the optimal root basis (the
   warm seed for perturbed siblings). *)
type payload = {
  core : (string * Protocol.value) list;
  basis : Milp.Simplex_core.Basis.t option;
}

type t = {
  pool : Parallel.Pool.t;
  cache : payload Cache.t;
  retry_on_crash : int;
  started_at : float;
  m : Mutex.t;
  mutable requests : int;
  mutable solved : int;
  mutable errors : int;
  mutable shed : int;
  mutable batches : int;
  mutable max_batch : int;
  crash_counts : (string, int) Hashtbl.t;
}

let create ?jobs ?(cache_capacity = 64) ?(retry_on_crash = 1) () =
  {
    pool = Parallel.Pool.create ?jobs ();
    cache = Cache.create ~capacity:cache_capacity;
    retry_on_crash;
    started_at = Milp.Clock.now ();
    m = Mutex.create ();
    requests = 0;
    solved = 0;
    errors = 0;
    shed = 0;
    batches = 0;
    max_batch = 0;
    crash_counts = Hashtbl.create 16;
  }

let cache_stats t = Cache.stats t.cache

let pool_jobs t = Parallel.Pool.jobs t.pool

let shutdown t = Parallel.Pool.shutdown t.pool

let count t f = Mutex.protect t.m (fun () -> f t)

let status_name = function
  | Milp.Branch_bound.Optimal -> "optimal"
  | Milp.Branch_bound.Feasible -> "feasible"
  | Milp.Branch_bound.Infeasible -> "infeasible"
  | Milp.Branch_bound.Unbounded -> "unbounded"
  | Milp.Branch_bound.Unknown -> "unknown"

(* The cache family deliberately omits [alpha] (and the QoS fields):
   two requests differing only in alpha denote perturbed variants of
   one model family, and that is exactly the pair the warm-seed path
   wants to connect. *)
let family_key (s : Protocol.solve) =
  Printf.sprintf "%s|%d|%d|%s"
    (Protocol.workload_name s.Protocol.workload)
    s.Protocol.seed s.Protocol.labels_per_edge
    (Letdma.Formulation.objective_name s.Protocol.objective)

let make_workload (s : Protocol.solve) =
  match s.Protocol.workload with
  | Protocol.Waters ->
    Workload.Waters2019.make ~labels_per_edge:s.Protocol.labels_per_edge ()
  | Protocol.Random -> Workload.Generator.random ~seed:s.Protocol.seed ()
  | Protocol.Small ->
    Workload.Generator.random ~seed:s.Protocol.seed
      ~config:Workload.Generator.small_config ()

let error_response t ~id fmt =
  Fmt.kstr
    (fun m ->
      count t (fun t -> t.errors <- t.errors + 1);
      Protocol.error_line ~id m)
    fmt

(* ok-response layout: the varying per-request fields (cache verdict,
   work done, wall time) come first; the cached, byte-stable solution
   fields ([core], starting with "tier") come last, so a replayed hit
   is literally the same suffix. *)
let ok_response ~id ~klass ~cache ~pivots ~nodes ~t0 core =
  Protocol.render ~id ~status:"ok"
    ([
       ("cache", Protocol.S cache);
       ("class", Protocol.S (Qos.klass_name klass));
       ("pivots", Protocol.I pivots);
       ("nodes", Protocol.I nodes);
       ("time_s", Protocol.F (Milp.Clock.now () -. t0));
     ]
    @ core)

(* --- the MILP tier (cache-aware) ------------------------------------- *)

let solve_milp t ~id ~deadline ~t0 (s : Protocol.solve) app groups gamma =
  let inst =
    Letdma.Formulation.make ~options:Letdma.Formulation.default_options
      s.Protocol.objective app groups ~gamma
  in
  let fp = Resilience.Checkpoint.fingerprint inst.Letdma.Formulation.problem in
  let family = family_key s in
  match Cache.find t.cache fp with
  | Some payload ->
    (* exact repeat: replay the stored solution fields byte-for-byte *)
    count t (fun t -> t.solved <- t.solved + 1);
    ok_response ~id ~klass:s.Protocol.klass ~cache:"hit" ~pivots:0 ~nodes:0
      ~t0 payload.core
  | None ->
    let root_basis =
      match Cache.find_family t.cache ~family with
      | Some (_, sibling) -> sibling.basis
      | None -> None
    in
    let basis_out = ref None in
    let r =
      Letdma.Solve.solve ~deadline_s:deadline ~jobs:1 ?root_basis ~basis_out
        s.Protocol.objective app groups ~gamma
    in
    let st = r.Letdma.Solve.stats in
    (match (r.Letdma.Solve.solution, r.Letdma.Solve.x) with
    | Some sol, Some x ->
      let _, e =
        Milp.Problem.objective
          r.Letdma.Solve.instance.Letdma.Formulation.problem
      in
      let obj = Milp.Linexpr.eval e x in
      let certified =
        match r.Letdma.Solve.certificate with Some (Ok _) -> true | _ -> false
      in
      let core =
        [
          ("tier", Protocol.S "milp");
          ("solver", Protocol.S (status_name st.Letdma.Solve.status));
          ("objective", Protocol.F obj);
          ("transfers", Protocol.I (Letdma.Solution.num_transfers sol));
          ("certified", Protocol.B certified);
        ]
      in
      Cache.add t.cache ~fingerprint:fp ~family
        { core; basis = !basis_out };
      count t (fun t -> t.solved <- t.solved + 1);
      ok_response ~id ~klass:s.Protocol.klass
        ~cache:(if root_basis <> None then "warm" else "miss")
        ~pivots:st.Letdma.Solve.lp.Milp.Branch_bound.lp_pivots
        ~nodes:st.Letdma.Solve.nodes ~t0 core
    | _ ->
      error_response t ~id "no solution (%s)"
        (status_name st.Letdma.Solve.status))

(* --- shed tiers ------------------------------------------------------ *)

let solve_direct t ~id ~klass ~tier ~source ~t0 sol_opt app groups gamma =
  match sol_opt with
  | None -> error_response t ~id "%s produced no plan" tier
  | Some sol ->
    let certified =
      match Letdma.Certify.certify ~source app groups ~gamma sol with
      | Ok _ -> true
      | Error _ -> false
    in
    let core =
      [
        ("tier", Protocol.S tier);
        ("solver", Protocol.S "-");
        ("transfers", Protocol.I (Letdma.Solution.num_transfers sol));
        ("certified", Protocol.B certified);
      ]
    in
    count t (fun t -> t.solved <- t.solved + 1);
    ok_response ~id ~klass ~cache:"none" ~pivots:0 ~nodes:0 ~t0 core

let baseline_solution app groups =
  Letdma.Solution.make
    ~allocation:(Mem_layout.Allocation.identity app)
    ~slots:(Array.of_list (Giotto.singleton_transfers app (Groups.s0 groups)))

(* --- one solve request ----------------------------------------------- *)

let handle_solve t ~arrival ~load ~deadline ~id (s : Protocol.solve) =
  let t0 = Milp.Clock.now () in
  (* the request runs under the tighter of its fair batch share and its
     own absolute deadline *)
  let own = arrival +. s.Protocol.deadline_s in
  let d = Float.min deadline own in
  let budget = d -. t0 in
  if budget <= 0.0 then
    error_response t ~id
      "deadline expired before solving started (class %s)"
      (Qos.klass_name s.Protocol.klass)
  else begin
    let tier = Qos.plan s.Protocol.klass ~load ~budget_s:budget in
    if tier <> Qos.Milp then begin
      count t (fun t -> t.shed <- t.shed + 1);
      Obs.point ~cat:"service" "shed"
        [
          ("class", Obs.Str (Qos.klass_name s.Protocol.klass));
          ("tier", Obs.Str (Qos.tier_name tier));
          ("load", Obs.Float load);
        ]
    end;
    let app = make_workload s in
    let groups = Groups.compute app in
    if Comm.Set.is_empty (Groups.s0 groups) then
      error_response t ~id "no inter-core communications"
    else
      match Rt_analysis.Sensitivity.gammas app ~alpha:s.Protocol.alpha with
      | None -> error_response t ~id "task set unschedulable at zero jitter"
      | Some g when not g.Rt_analysis.Sensitivity.schedulable ->
        error_response t ~id "task set unschedulable with alpha=%.2f"
          s.Protocol.alpha
      | Some g -> (
        let gamma = g.Rt_analysis.Sensitivity.gamma in
        match tier with
        | Qos.Milp -> solve_milp t ~id ~deadline:d ~t0 s app groups gamma
        | Qos.Heuristic ->
          solve_direct t ~id ~klass:s.Protocol.klass ~tier:"heuristic"
            ~source:Letdma.Certify.Heuristic ~t0
            (Letdma.Heuristic.solve_unchecked app groups ~gamma)
            app groups gamma
        | Qos.Baseline ->
          solve_direct t ~id ~klass:s.Protocol.klass ~tier:"baseline"
            ~source:Letdma.Certify.Baseline ~t0
            (Some (baseline_solution app groups))
            app groups gamma)
  end

(* --- chaos op -------------------------------------------------------- *)

(* Crash the worker domain [times] times, then answer: with the default
   retry budget of 1, [times:1] exercises transparent recovery (the
   request survives its own worker's death) and [times:2] exercises the
   budget-exhausted path (a structured Worker_crashed error). *)
let handle_crash t ~id times =
  let seen =
    Mutex.protect t.m (fun () ->
        let c =
          Option.value ~default:0 (Hashtbl.find_opt t.crash_counts id)
        in
        Hashtbl.replace t.crash_counts id (c + 1);
        c)
  in
  if seen < times then
    raise (Parallel.Pool.Poison (Printf.sprintf "injected crash %s" id));
  count t (fun t -> t.solved <- t.solved + 1);
  Protocol.render ~id ~status:"ok"
    [
      ("op", Protocol.S "crash");
      ("recovered", Protocol.B true);
      ("crashes", Protocol.I seen);
    ]

(* --- stats op -------------------------------------------------------- *)

let handle_stats t ~id =
  let cs = Cache.stats t.cache in
  let requests, solved, errors, shed, batches, max_batch =
    Mutex.protect t.m (fun () ->
        (t.requests, t.solved, t.errors, t.shed, t.batches, t.max_batch))
  in
  Protocol.render ~id ~status:"ok"
    [
      ("op", Protocol.S "stats");
      ("uptime_s", Protocol.F (Milp.Clock.now () -. t.started_at));
      ("pool_jobs", Protocol.I (Parallel.Pool.jobs t.pool));
      ("pool_crashes", Protocol.I (Parallel.Pool.crashes t.pool));
      ("requests", Protocol.I requests);
      ("solved", Protocol.I solved);
      ("errors", Protocol.I errors);
      ("shed", Protocol.I shed);
      ("batches", Protocol.I batches);
      ("max_batch", Protocol.I max_batch);
      ("cache_size", Protocol.I cs.Cache.size);
      ("cache_capacity", Protocol.I cs.Cache.capacity);
      ("cache_hits", Protocol.I cs.Cache.hits);
      ("cache_misses", Protocol.I cs.Cache.misses);
      ("cache_warm_seeds", Protocol.I cs.Cache.warm_seeds);
      ("cache_evictions", Protocol.I cs.Cache.evictions);
      ("obs_enabled", Protocol.B (Obs.enabled ()));
      ("obs_events", Protocol.I (Obs.lines_written ()));
    ]

(* --- batch dispatch -------------------------------------------------- *)

let handle t ~arrival ~load ~deadline item =
  match item with
  | Error { Protocol.err_id; message } ->
    error_response t ~id:err_id "invalid request: %s" message
  | Ok { Protocol.id; op = Protocol.Stats } -> handle_stats t ~id
  | Ok { Protocol.id; op = Protocol.Crash { times } } ->
    handle_crash t ~id times
  | Ok { Protocol.id; op = Protocol.Solve s } ->
    handle_solve t ~arrival ~load ~deadline ~id s

let id_of = function
  | Ok r -> r.Protocol.id
  | Error e -> e.Protocol.err_id

let process t items =
  let arrival = Milp.Clock.now () in
  let n = List.length items in
  if n = 0 then []
  else begin
    let solves =
      List.length
        (List.filter
           (function Ok { Protocol.op = Protocol.Solve _; _ } -> true
                   | _ -> false)
           items)
    in
    let load =
      float_of_int solves /. float_of_int (Parallel.Pool.jobs t.pool)
    in
    count t (fun t ->
        t.requests <- t.requests + n;
        t.batches <- t.batches + 1;
        t.max_batch <- max t.max_batch n);
    Obs.point ~cat:"service" "batch"
      [ ("size", Obs.Int n); ("solves", Obs.Int solves);
        ("load", Obs.Float load) ];
    Log.debug (fun f -> f "batch: %d requests (%d solves, load %.2f)" n
                  solves load);
    (* one shared absolute deadline for the whole batch: the latest
       per-request deadline; Sweep carves it into fair per-item shares *)
    let global =
      List.fold_left
        (fun acc item ->
          match item with
          | Ok { Protocol.op = Protocol.Solve s; _ } ->
            let d = arrival +. s.Protocol.deadline_s in
            Some (match acc with None -> d | Some a -> Float.max a d)
          | _ -> acc)
        None items
    in
    let outcomes =
      Parallel.Sweep.map ~pool:t.pool ?deadline:global
        ~retry_on_crash:t.retry_on_crash
        (fun ~deadline item -> handle t ~arrival ~load ~deadline item)
        items
    in
    List.map
      (fun (o : _ Parallel.Sweep.outcome) ->
        match o.Parallel.Sweep.result with
        | Ok line -> line
        | Error (Parallel.Pool.Worker_crashed { worker; cause }) ->
          error_response t ~id:(id_of o.Parallel.Sweep.item)
            "worker %d crashed (%s); crash-retry budget exhausted" worker
            cause
        | Error e ->
          error_response t ~id:(id_of o.Parallel.Sweep.item)
            "internal error: %s" (Printexc.to_string e))
      outcomes
  end
