(** Wire protocol of the solver service: newline-delimited strict JSON,
    one request per line in, one response per line out.

    Requests are parsed with the same strict machinery as checkpoint
    files ({!Resilience.Json} over {!Obs.Check.parse_json}): NaN and
    Infinity tokens are not JSON and are rejected, every field is
    structurally validated, and {e unknown members are errors} — a
    misspelled ["objective"] must fail loudly, not silently solve the
    default model. A malformed line never kills the daemon; it yields a
    structured error response (echoing the request ["id"] when one
    could be recovered from the broken line).

    Request schema (members beyond ["id"]/["op"] are per-op):

    {v
    {"id":"r1","op":"solve","workload":"small","seed":7,
     "objective":"dmat","alpha":0.2,"deadline_s":10,"class":"gold"}
    {"id":"r2","op":"stats"}
    {"id":"r3","op":"crash","times":1}
    v}

    [solve] defaults: workload ["waters"], seed [42],
    [labels_per_edge] 1, objective ["no-obj"], alpha [0.2],
    [deadline_s] 60, class ["silver"]. [crash] raises
    {!Parallel.Pool.Poison} in the worker [times] times before
    completing — the chaos hook behind the supervision tests and the CI
    gate. *)

type workload = Waters | Random | Small

val workload_name : workload -> string

type solve = {
  workload : workload;
  seed : int;
  labels_per_edge : int;
  objective : Letdma.Formulation.objective;
  alpha : float;
  deadline_s : float;  (** relative budget; 0 = already expired *)
  klass : Qos.klass;
}

type op = Solve of solve | Stats | Crash of { times : int }

type request = { id : string; op : op }

(** Parse failure: [err_id] is the request id recovered from the broken
    line when possible (so the error response still correlates), [""]
    otherwise. *)
type error = { err_id : string; message : string }

val parse_request : string -> (request, error) result

(** {1 Responses}

    Responses are rendered, not round-tripped: a typed field list keeps
    float formatting ([%.17g]) and member order deterministic, so a
    cache hit can replay the stored solution fields byte-for-byte. *)

type value = I of int | F of float | S of string | B of bool

val render : id:string -> status:string -> (string * value) list -> string
(** [render ~id ~status fields] is
    [{"id":<id>,"status":<status>,<fields>}] followed by a newline.
    Non-finite floats render as [null] (the strict parsers reject
    NaN/Infinity tokens). *)

val error_line : id:string -> string -> string
(** [error_line ~id msg] is [render] with status ["error"] and an
    ["error"] field. *)
