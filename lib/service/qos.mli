(** Per-request quality-of-service policy: deadline classes and the
    load-shedding ladder.

    Under load a service must not queue unboundedly: a request admitted
    when the backlog is deep would blow its deadline waiting for pool
    capacity that the earlier requests already own. Instead each request
    carries a {e class}, and the planner sheds it down the PR-1
    degradation ladder — full MILP, then the greedy heuristic, then the
    identity-allocation Giotto baseline — as the instantaneous load
    factor (queued solve requests per pool worker) grows or its
    remaining budget shrinks. Shedding trades optimality for a
    guaranteed answer; the daemon never refuses a well-formed request
    for load reasons.

    The thresholds are deliberately plain constants (unit-tested): the
    policy must be predictable to operators reading the table in the
    README, not adaptive. *)

type klass =
  | Gold  (** never shed: always the full MILP, whatever the load *)
  | Silver  (** default: MILP until load 2.0, heuristic until 8.0 *)
  | Bronze  (** shed early: MILP until load 1.0, heuristic until 4.0 *)

type tier =
  | Milp  (** {!Letdma.Solve.solve} (lazy-C6 branch-and-bound) *)
  | Heuristic  (** {!Letdma.Heuristic.solve} *)
  | Baseline  (** identity allocation + singleton Giotto transfers *)

val klass_of_string : string -> klass option
(** ["gold"], ["silver"], ["bronze"]. *)

val klass_name : klass -> string
val tier_name : tier -> string

val plan : klass -> load:float -> budget_s:float -> tier
(** [plan k ~load ~budget_s] picks the solving tier for one request.
    [load] is queued solve requests in the batch divided by pool
    workers; [budget_s] the request's remaining wall-clock budget when
    planned. Silver and Bronze additionally shed MILP when [budget_s]
    is under 1 s (an LP warm-up alone can eat that), and anything when
    it is under 50 ms. Gold always gets [Milp]. *)
