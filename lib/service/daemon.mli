(** The persistent daemon loop: newline-delimited strict-JSON requests
    on stdin (and, optionally, a Unix-domain socket), responses on
    stdout (or back down each client connection).

    {b Batching.} Input is drained greedily: every request line that is
    already readable joins the current batch, and the batch is handed
    to {!Engine.process} only when the input momentarily runs dry (or
    [max_batch] is reached). A client that pipelines N requests
    therefore gets them carved through the sweep's fair-deadline
    machinery as one batch rather than solved FIFO; a client that
    trickles them gets singleton batches and FIFO behavior — both
    without any protocol-level framing.

    {b Shutdown.} EOF on the primary input, or SIGTERM, begins a
    drained shutdown: the listener closes, every already-received
    request is processed, all responses are flushed, and the loop
    returns 0. In-flight requests are never dropped.

    {b Robustness.} A malformed line yields a structured error response
    (never a crash); a worker-domain death is absorbed by the pool's
    supervisor (see {!Engine}); SIGPIPE is ignored, so a client that
    disconnects mid-response cannot kill the daemon. *)

val run :
  ?socket:string ->
  ?max_batch:int ->
  ?input:Unix.file_descr ->
  ?output:Unix.file_descr ->
  Engine.t ->
  (int, string) result
(** [run engine] serves until EOF/SIGTERM and returns [Ok 0] after a
    drained shutdown. [socket] additionally listens on a Unix-domain
    socket at that path (created, and unlinked again on shutdown);
    binding failures return [Error msg] before any request is read —
    the CLI maps this to its service-startup exit code. [max_batch]
    (default 64) caps how many requests one batch may hold. [input] /
    [output] default to stdin/stdout (tests pass pipes). *)
