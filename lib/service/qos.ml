(* Deadline classes and the deterministic shedding ladder. Thresholds
   are constants, not tunables: operators must be able to predict which
   tier a request gets from the README table alone. *)

type klass = Gold | Silver | Bronze

type tier = Milp | Heuristic | Baseline

let klass_of_string = function
  | "gold" -> Some Gold
  | "silver" -> Some Silver
  | "bronze" -> Some Bronze
  | _ -> None

let klass_name = function
  | Gold -> "gold"
  | Silver -> "silver"
  | Bronze -> "bronze"

let tier_name = function
  | Milp -> "milp"
  | Heuristic -> "heuristic"
  | Baseline -> "baseline"

(* Shedding table. [load] = queued solve requests / pool workers at
   batch admission; [budget_s] = the request's remaining budget. A MILP
   tier needs both headroom in the queue and at least a second of
   budget; the heuristic runs in milliseconds but still needs a sliver
   of wall clock. Gold is exempt by contract: it would rather time out
   inside the MILP (and report feasible/unknown) than degrade. *)
let plan klass ~load ~budget_s =
  match klass with
  | Gold -> Milp
  | Silver ->
    if load <= 2.0 && budget_s >= 1.0 then Milp
    else if load <= 8.0 && budget_s >= 0.05 then Heuristic
    else Baseline
  | Bronze ->
    if load <= 1.0 && budget_s >= 1.0 then Milp
    else if load <= 4.0 && budget_s >= 0.05 then Heuristic
    else Baseline
