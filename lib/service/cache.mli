(** Bounded, fingerprint-keyed warm cache.

    The key is {!Resilience.Checkpoint.fingerprint} of the built MILP —
    an FNV-1a hash over the model's LP-format text — so two requests
    share an entry {e iff} they denote byte-for-byte the same model; a
    fingerprint mismatch can never serve a stale solution, whatever the
    request said about itself.

    Each entry also carries a {e family} tag (workload/seed/objective,
    {e without} the perturbable parameters): a miss whose family has a
    cached sibling is a {e perturbed repeat}, and the sibling's payload
    (in practice its optimal simplex basis) seeds the warm-start path
    instead of a cold solve.

    Eviction is least-recently-used with a strictly increasing use
    tick, so it is deterministic for a fixed request order — the
    property the test suite pins with QCheck. All operations are
    mutex-guarded (entries are consulted and inserted from pool worker
    domains) and emit ["cache"/"hit"|"miss"|"warm_seed"|"evict"] {!Obs}
    points. *)

type 'v t

val create : capacity:int -> 'v t
(** [capacity] must be >= 1 (raises [Invalid_argument] otherwise). *)

val find : 'v t -> string -> 'v option
(** [find t fingerprint] returns the exact-match payload and bumps its
    recency; counts a hit or a miss. *)

val find_family : 'v t -> family:string -> (string * 'v) option
(** [find_family t ~family] is the most recently used entry of
    [family] (its fingerprint and payload), for warm seeding after
    {!find} missed. Does not bump recency; counts a warm seed when it
    returns [Some]. *)

val add : 'v t -> fingerprint:string -> family:string -> 'v -> unit
(** Insert (or replace) the entry, evicting the least recently used
    one when over capacity. *)

val size : 'v t -> int

type stats = {
  hits : int;
  misses : int;
  warm_seeds : int;
  evictions : int;
  size : int;
  capacity : int;
}

val stats : 'v t -> stats
