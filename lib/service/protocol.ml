(* NDJSON wire protocol: strict-JSON requests (shared parser with
   checkpoint files), deterministic rendered responses. *)

module Json = Resilience.Json

type workload = Waters | Random | Small

let workload_name = function
  | Waters -> "waters"
  | Random -> "random"
  | Small -> "small"

type solve = {
  workload : workload;
  seed : int;
  labels_per_edge : int;
  objective : Letdma.Formulation.objective;
  alpha : float;
  deadline_s : float;
  klass : Qos.klass;
}

type op = Solve of solve | Stats | Crash of { times : int }

type request = { id : string; op : op }

type error = { err_id : string; message : string }

(* ---------- parsing ---------- *)

(* Strictness: every member of the request object must be consumed by
   the op's schema. A misspelled field is an error, never a silently
   applied default. *)

let solve_keys =
  [
    "id"; "op"; "workload"; "seed"; "labels_per_edge"; "objective"; "alpha";
    "deadline_s"; "class";
  ]

let stats_keys = [ "id"; "op" ]

let crash_keys = [ "id"; "op"; "times" ]

let check_keys ms allowed =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        Json.invalid "request: unknown member %S" k)
    ms

let parse_workload = function
  | "waters" -> Waters
  | "random" -> Random
  | "small" -> Small
  | s -> Json.invalid "workload: expected waters/random/small, got %S" s

let parse_objective = function
  | "no-obj" -> Letdma.Formulation.No_obj
  | "dmat" -> Letdma.Formulation.Min_transfers
  | "del" -> Letdma.Formulation.Min_delay_ratio
  | s -> Json.invalid "objective: expected no-obj/dmat/del, got %S" s

let parse_klass s =
  match Qos.klass_of_string s with
  | Some k -> k
  | None -> Json.invalid "class: expected gold/silver/bronze, got %S" s

let opt_field ms k ~default f =
  match Json.field_opt ms k with None -> default | Some v -> f v

let parse_solve ms =
  check_keys ms solve_keys;
  let workload =
    opt_field ms "workload" ~default:Waters (fun v ->
        parse_workload (Json.as_string "workload" v))
  in
  let seed = opt_field ms "seed" ~default:42 (Json.as_int "seed") in
  let labels_per_edge =
    opt_field ms "labels_per_edge" ~default:1 (fun v ->
        let n = Json.as_int "labels_per_edge" v in
        if n < 1 then Json.invalid "labels_per_edge: must be >= 1, got %d" n;
        n)
  in
  let objective =
    opt_field ms "objective" ~default:Letdma.Formulation.No_obj (fun v ->
        parse_objective (Json.as_string "objective" v))
  in
  let alpha =
    opt_field ms "alpha" ~default:0.2 (fun v ->
        let a = Json.as_float "alpha" v in
        if not (a > 0.0) then Json.invalid "alpha: must be positive, got %g" a;
        a)
  in
  let deadline_s =
    opt_field ms "deadline_s" ~default:60.0 (fun v ->
        let d = Json.as_float "deadline_s" v in
        if d < 0.0 then Json.invalid "deadline_s: must be >= 0, got %g" d;
        d)
  in
  let klass =
    opt_field ms "class" ~default:Qos.Silver (fun v ->
        parse_klass (Json.as_string "class" v))
  in
  Solve { workload; seed; labels_per_edge; objective; alpha; deadline_s; klass }

let parse_crash ms =
  check_keys ms crash_keys;
  let times =
    opt_field ms "times" ~default:1 (fun v ->
        let n = Json.as_int "times" v in
        if n < 1 then Json.invalid "times: must be >= 1, got %d" n;
        n)
  in
  Crash { times }

(* Best-effort id recovery from a line that failed validation, so the
   error response still correlates with the request that caused it. *)
let recover_id = function
  | Json.O ms -> (
    match Json.field_opt ms "id" with Some (Json.S s) -> s | _ -> "")
  | _ -> ""

let parse_request line =
  match Json.parse line with
  | Error m -> Error { err_id = ""; message = "parse: " ^ m }
  | Ok j -> (
    let err_id = recover_id j in
    try
      let ms = Json.as_obj "request" j in
      let id = Json.as_string "id" (Json.field "request" ms "id") in
      if id = "" then Json.invalid "id: must be non-empty";
      let op =
        match Json.field_opt ms "op" with
        | None -> Json.invalid "request: missing field \"op\""
        | Some v -> (
          match Json.as_string "op" v with
          | "solve" -> parse_solve ms
          | "stats" ->
            check_keys ms stats_keys;
            Stats
          | "crash" -> parse_crash ms
          | s -> Json.invalid "op: expected solve/stats/crash, got %S" s)
      in
      Ok { id; op }
    with Json.Invalid m -> Error { err_id; message = m })

(* ---------- rendering ---------- *)

type value = I of int | F of float | S of string | B of bool

let render ~id ~status fields =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"id\":";
  Json.add_string b id;
  Buffer.add_string b ",\"status\":";
  Json.add_string b status;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      Json.add_string b k;
      Buffer.add_char b ':';
      match v with
      | I n -> Json.add_int b n
      | F f ->
        if Float.is_finite f then Json.add_float b f
        else Buffer.add_string b "null"
      | S s -> Json.add_string b s
      | B x -> Buffer.add_string b (if x then "true" else "false"))
    fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

let error_line ~id msg = render ~id ~status:"error" [ ("error", S msg) ]
