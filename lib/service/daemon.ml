(* select-driven serving loop. One [stream] per input source (the
   primary stdin/stdout pair plus each accepted socket client);
   requests accumulate in [pending] until the input runs momentarily
   dry (or [max_batch] is hit), then the whole batch goes through
   [Engine.process] and each response line is written back to the
   stream its request arrived on. *)

let src = Logs.Src.create "service.daemon" ~doc:"solver service daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type stream = {
  fd : Unix.file_descr;  (* read side *)
  out : Unix.file_descr; (* write side; same as [fd] for socket clients *)
  buf : Buffer.t;        (* bytes of a not-yet-complete line *)
  primary : bool;
  mutable alive : bool;  (* false once the peer vanished mid-write *)
}

let write_all st line =
  if st.alive then
    try
      let b = Bytes.unsafe_of_string line in
      let n = Bytes.length b in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write st.out b !off (n - !off)
      done
    with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
      (* the client hung up; its remaining responses have nowhere to go *)
      st.alive <- false

(* Feed [chunk] into the stream's line buffer and invoke [k] on every
   completed line (CR/LF stripped). *)
let push_lines st chunk k =
  Buffer.add_string st.buf chunk;
  let s = Buffer.contents st.buf in
  Buffer.clear st.buf;
  let n = String.length s in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       let stop = if i > !start && s.[i - 1] = '\r' then i - 1 else i in
       k (String.sub s !start (stop - !start));
       start := i + 1
     done
   with Not_found -> ());
  if !start < n then Buffer.add_substring st.buf s !start (n - !start)

let blank line = String.for_all (fun c -> c = ' ' || c = '\t') line

let run ?socket ?(max_batch = 64) ?(input = Unix.stdin)
    ?(output = Unix.stdout) engine =
  if max_batch < 1 then invalid_arg "Daemon.run: max_batch must be >= 1";
  (* a dying client must not kill the daemon via SIGPIPE; write_all
     handles the resulting EPIPE per-stream *)
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let stop = Atomic.make false in
  let old_term =
    Sys.signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let restore () =
    Sys.set_signal Sys.sigpipe old_pipe;
    Sys.set_signal Sys.sigterm old_term
  in
  let listener =
    match socket with
    | None -> Ok None
    | Some path -> (
      match
        (try if Sys.file_exists path then Unix.unlink path with _ -> ());
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        (try
           Unix.bind fd (ADDR_UNIX path);
           Unix.listen fd 16;
           Ok fd
         with e ->
           (try Unix.close fd with _ -> ());
           Error e)
      with
      | Ok fd -> Ok (Some (fd, path))
      | Error e | (exception e) ->
        Error
          (Fmt.str "cannot listen on socket %s: %s" path
             (Printexc.to_string e)))
  in
  match listener with
  | Error msg ->
    restore ();
    Error msg
  | Ok listener ->
    let primary =
      { fd = input; out = output; buf = Buffer.create 256; primary = true;
        alive = true }
    in
    let primary_eof = ref false in
    let clients = ref [] in
    let pending = Queue.create () in
    let chunk = Bytes.create 65536 in
    let enqueue st line =
      if not (blank line) then
        Queue.add (st, Protocol.parse_request line) pending
    in
    let flush_batch () =
      if not (Queue.is_empty pending) then begin
        let batch = List.of_seq (Queue.to_seq pending) in
        Queue.clear pending;
        let lines = Engine.process engine (List.map snd batch) in
        List.iter2 (fun (st, _) line -> write_all st line) batch lines
      end
    in
    let close_client st =
      (try Unix.close st.fd with _ -> ());
      clients := List.filter (fun c -> c != st) !clients
    in
    let read_stream st =
      match Unix.read st.fd chunk 0 (Bytes.length chunk) with
      | 0 | (exception Unix.Unix_error (ECONNRESET, _, _)) ->
        (* EOF: a trailing unterminated line still counts as a request *)
        let tail = Buffer.contents st.buf in
        Buffer.clear st.buf;
        if tail <> "" then enqueue st tail;
        if st.primary then primary_eof := true else close_client st
      | n -> push_lines st (Bytes.sub_string chunk 0 n) (enqueue st)
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    in
    let accept_client fd =
      match Unix.accept ~cloexec:true fd with
      | cfd, _ ->
        Log.debug (fun f -> f "client connected");
        clients :=
          { fd = cfd; out = cfd; buf = Buffer.create 256; primary = false;
            alive = true }
          :: !clients
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    let read_fds () =
      (if !primary_eof then [] else [ primary.fd ])
      @ (match listener with Some (fd, _) -> [ fd ] | None -> [])
      @ List.map (fun c -> c.fd) !clients
    in
    let select fds timeout =
      match Unix.select fds [] [] timeout with
      | ready, _, _ -> ready
      | exception Unix.Unix_error (EINTR, _, _) -> []
    in
    let finish () =
      flush_batch ();
      (match listener with
      | Some (fd, path) ->
        (try Unix.close fd with _ -> ());
        (try Unix.unlink path with _ -> ())
      | None -> ());
      List.iter (fun c -> try Unix.close c.fd with _ -> ()) !clients;
      restore ();
      Log.info (fun f -> f "drained shutdown");
      Ok 0
    in
    let rec loop () =
      if Atomic.get stop || !primary_eof then finish ()
      else begin
        let fds = read_fds () in
        (* block only when there is nothing batched; otherwise poll, so
           an input that ran dry closes the batch *)
        let timeout = if Queue.is_empty pending then -1.0 else 0.0 in
        match select fds timeout with
        | [] ->
          flush_batch ();
          loop ()
        | ready ->
          List.iter
            (fun fd ->
              match listener with
              | Some (lfd, _) when fd == lfd -> accept_client lfd
              | _ -> (
                if fd == primary.fd then read_stream primary
                else
                  match List.find_opt (fun c -> c.fd == fd) !clients with
                  | Some c -> read_stream c
                  | None -> ()))
            ready;
          if Queue.length pending >= max_batch then flush_batch ();
          loop ()
      end
    in
    loop ()
