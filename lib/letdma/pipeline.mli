(** Hardened solve pipeline: validation, one global deadline, and a
    graceful degradation ladder.

    The paper's workflow trusts its solver and feeds it well-formed
    inputs by construction. This entry point assumes neither. It first
    validates the application model (single writer per label, positive
    periods and sizes, labels fit their memories, cores not overloaded),
    then walks a ladder of solving rungs under one shared wall-clock
    budget:

    + {b MILP} — the lazy-Constraint-6 branch-and-bound driver;
    + {b MILP, perturbed} — on timeout, numerical failure or a failed
      certificate: one retry with slightly tightened gamma bounds, the
      alternate branch-and-bound engine and no warm start (a different
      search trajectory that dodges the failure mode while any solution
      it finds is still certified against the {e original} deadlines);
    + {b heuristic} — the greedy scheduler/allocator;
    + {b baseline} — identity allocation with singleton Giotto transfers,
      which exists whenever the model is valid and communications exist.

    Every rung's output is re-verified by {!Certify} before being
    accepted; the outcome records which rung produced the accepted
    solution and why the earlier rungs were rejected. *)

open Rt_model
open Let_sem

(** Model problems found by {!validate_app} (empty list = valid). *)
val validate_app : App.t -> string list

type rung = Milp | Milp_perturbed | Heuristic | Baseline

val rung_name : rung -> string

(** One tried rung and why it was (not) accepted. *)
type attempt = { rung : rung; accepted : bool; reason : string; time_s : float }

type failure =
  | Invalid_model of string list
  | No_communications  (** nothing for the DMA to do *)
  | Unschedulable of float  (** no gamma exists at this [alpha] *)
  | Exhausted of attempt list  (** every rung failed certification *)

val failure_to_string : failure -> string

type outcome = {
  rung : rung;  (** the rung whose solution was accepted *)
  solution : Solution.t;
  certificate : Certify.t;
  gamma : Time.t array;
  attempts : attempt list;  (** in ladder order, accepted rung last *)
  solve_stats : Solve.stats option;  (** of the accepted MILP rung *)
  total_time_s : float;
}

val pp_outcome : App.t -> Format.formatter -> outcome -> unit

(** The MILP rung, as a replaceable hook — the default wraps
    {!Solve.solve}. Tests substitute a misbehaving solver to exercise the
    certification-failure path of the ladder.

    [chain] is a basis hand-off cell shared by consecutive rungs on the
    same domain: the default solver warm-starts its root LP from the
    basis found there and deposits its own root basis for the next rung
    (see {!Milp.Simplex_core.Basis}); replacement solvers may ignore
    it. *)
type milp_solver =
  deadline_s:float ->
  engine:Solve.engine ->
  jobs:int ->
  presolve:bool ->
  cancel:Parallel.Pool.Token.t option ->
  warm:Solution.t option ->
  chain:Milp.Simplex_core.Basis.t option ref ->
  options:Formulation.options ->
  Formulation.objective ->
  App.t ->
  Groups.t ->
  gamma:Time.t array ->
  Solve.result

(** [run app] validates, computes gamma at [alpha] (default [0.2]) and
    walks the ladder under [budget_s] (default [60] s) of total wall
    time. [objective], [options], [engine] configure the MILP rungs;
    [warm_start] (default true) seeds them with the heuristic.

    [jobs] (default 1) enables multicore solving: with [jobs >= 2] the
    primary and perturbed MILP rungs race concurrently on two domains
    (the perturbed branch is cancelled once the primary's solution
    certifies), and each branch runs its own portfolio over half the
    jobs ({!Solve.solve}'s [jobs]).

    [presolve] (default [true]) is handed to every MILP rung: root
    presolve reduces the model before branch-and-bound. The reduction is
    keyed so solver trajectories match the unpresolved model exactly;
    [presolve:false] opts out for debugging or measurement.

    [retries] (default 0) supervises the MILP rungs: with [retries > 0]
    each rung runs through {!Solve.solve_supervised} with up to
    [retries] extra attempts, escalating solver parameters between them
    (Dantzig pricing, warm pool off, presolve off, scaled LP iteration
    budgets) and sleeping an exponential backoff starting at [backoff_s]
    (default 0.1 s, capped, deadline-aware). The supervised path runs
    sequentially ([jobs] is not used inside a rung) and skips the
    inter-rung basis chain. If every supervised attempt fails, the
    ladder degrades to the heuristic and baseline rungs as usual — the
    ladder itself is the final fallback. A caller-supplied [milp_solve]
    hook takes precedence: [retries] then has no effect. *)
val run :
  ?milp_solve:milp_solver ->
  ?objective:Formulation.objective ->
  ?options:Formulation.options ->
  ?engine:Solve.engine ->
  ?warm_start:bool ->
  ?budget_s:float ->
  ?alpha:float ->
  ?jobs:int ->
  ?presolve:bool ->
  ?retries:int ->
  ?backoff_s:float ->
  App.t ->
  (outcome, failure) result
