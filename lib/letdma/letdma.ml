(** Optimal memory allocation and scheduling for DMA data transfers under
    the LET paradigm — the paper's core contribution.

    - {!Formulation}: the MILP of Section VI (Constraints 1-10, objectives
      Eq. (4)/(5)), with lazy or full Constraint-6 generation;
    - {!Solve}: the branch-and-bound driver with the lazy contiguity loop;
    - {!Solution}: decoded allocations + ordered transfer slots, projected
      onto every communication instant;
    - {!Heuristic}: a greedy scheduler/allocator (warm starts, scalability
      ablations);
    - {!Baselines}: the Giotto-CPU / Giotto-DMA-A / Giotto-DMA-B baselines
      of the evaluation;
    - {!Certify}: independent re-verification of every solved
      configuration (MILP residuals, layout rules, LET Properties 1-3);
    - {!Pipeline}: the hardened entry point — model validation, one
      global deadline, and the MILP -> perturbed MILP -> heuristic ->
      baseline degradation ladder;
    - {!Experiment} and {!Report}: the Fig. 2 / Table I / alpha-sweep
      pipelines and their plain-text rendering. *)

module Certify = Certify
module Formulation = Formulation
module Pipeline = Pipeline
module Solve = Solve
module Solution = Solution
module Heuristic = Heuristic
module Baselines = Baselines
module Experiment = Experiment
module Report = Report
module Fig1 = Fig1
module Let_task = Let_task
