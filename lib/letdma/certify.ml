open Rt_model
open Let_sem
open Mem_layout

(* Re-verification of solved configurations from first principles. The
   checks deliberately bypass Solution.validate and re-derive everything
   from the raw model data (mapping rules, pattern sets, MILP rows), so a
   bug in the solver or in the shared validation path cannot vouch for
   itself. *)

let src = Logs.Src.create "letdma.certify" ~doc:"independent solution certifier"

module Log = (val Logs.src_log src : Logs.LOG)

type source = Milp_optimal | Milp_incumbent | Heuristic | Baseline

let source_name = function
  | Milp_optimal -> "milp-optimal"
  | Milp_incumbent -> "milp-incumbent"
  | Heuristic -> "heuristic"
  | Baseline -> "baseline"

type violation =
  | Missing_layout of Platform.memory
  | Bad_coverage of Platform.memory * string
  | Capacity of Platform.memory * int * int
  | Milp_residual of Milp.Problem.residual
  | Infeasible_transfer of string
  | Property of Time.t * string
  | Deadline_miss of int * Time.t * Time.t

let pp_violation app ppf = function
  | Missing_layout m -> Fmt.pf ppf "no layout for %a" Platform.pp_memory m
  | Bad_coverage (m, msg) ->
    Fmt.pf ppf "layout of %a does not match the mapping rules: %s"
      Platform.pp_memory m msg
  | Capacity (m, used, avail) ->
    Fmt.pf ppf "%a overflows: %d bytes placed, %d available"
      Platform.pp_memory m used avail
  | Milp_residual r -> Fmt.pf ppf "MILP residual: %a" Milp.Problem.pp_residual r
  | Infeasible_transfer msg -> Fmt.pf ppf "infeasible transfer: %s" msg
  | Property (t, msg) -> Fmt.pf ppf "at %a: %s" Time.pp t msg
  | Deadline_miss (i, lam, gam) ->
    Fmt.pf ppf "task %s: lambda %a exceeds gamma %a" (App.task app i).Task.name
      Time.pp lam Time.pp gam

type t = {
  source : source;
  checks : int;
  warnings : violation list;
  time_s : float;
}

let pp app ppf c =
  Fmt.pf ppf "@[<v>certificate[%s]: %d checks in %.4fs%a@]" (source_name c.source)
    c.checks c.time_s
    Fmt.(
      list ~sep:nop (fun ppf v ->
          pf ppf "@,  warning: %a" (pp_violation app) v))
    c.warnings

(* Rounding slack for deadline comparisons: the MILP works in float
   microseconds and the decoder rounds back to integer nanoseconds, so an
   exactly-tight Constraint 9 can land up to ~1 us past gamma without the
   solver being wrong. *)
let deadline_slack = Time.of_us 1

let memory_capacity (p : Platform.t) = function
  | Platform.Local _ -> p.Platform.local_mem_bytes
  | Platform.Global -> p.Platform.global_mem_bytes

let certify ?milp ~source app groups ~gamma sol =
  let t0 = Unix.gettimeofday () in
  let checks = ref 0 in
  let hard = ref [] in
  let warnings = ref [] in
  let fail v = hard := v :: !hard in
  (* Timing findings (Property 3, gamma deadlines) are hard only for MILP
     sources — the model constrains both, so a miss means the solver lied.
     The heuristic and the Giotto baseline may legitimately overrun; for
     them these surface as warnings on an otherwise-granted certificate. *)
  let timing_hard =
    match source with
    | Milp_optimal | Milp_incumbent -> true
    | Heuristic | Baseline -> false
  in
  let fail_timing v =
    if timing_hard then fail v else warnings := v :: !warnings
  in
  let check v ok = incr checks; if not ok then fail v in
  let check_result wrap r =
    incr checks;
    match r with Ok () -> () | Error msg -> fail (wrap msg)
  in
  let alloc = Solution.allocation sol in
  let platform = App.platform app in
  (* allocation coverage and capacity, memory by memory, against the
     mapping rules of Section III (not against the solution's own
     bookkeeping) *)
  List.iter
    (fun mem ->
      let expected = List.sort compare (Layout.expected_labels app mem) in
      if expected <> [] then begin
        match Allocation.layout_opt alloc mem with
        | None -> incr checks; fail (Missing_layout mem)
        | Some layout ->
          incr checks;
          let placed = List.sort compare (Layout.order layout) in
          if placed <> expected then
            fail
              (Bad_coverage
                 ( mem,
                   Fmt.str "%d labels placed, %d required" (List.length placed)
                     (List.length expected) ));
          let used = Layout.total_bytes layout in
          check (Capacity (mem, used, memory_capacity platform mem))
            (used <= memory_capacity platform mem)
      end)
    (Platform.memories platform);
  (* the solver's claimed assignment against the raw MILP rows *)
  (match milp with
   | None -> ()
   | Some (inst, x) ->
     incr checks;
     List.iter
       (fun r -> fail (Milp_residual r))
       (Milp.Problem.residuals inst.Formulation.problem x));
  (* every pattern's projected plan: partition, single class, Properties
     1-3 against the pattern's tightest cyclic gap, and contiguity of
     every transfer under the allocation. Structural breakage (foreign
     labels, unplaced labels) raises inside the projection helpers and is
     converted to a violation. *)
  (try
     List.iter
       (fun (pat : Groups.pattern) ->
         let time = List.hd pat.Groups.occurrences in
         let plan = Solution.plan_at app groups sol time in
         let prop wrap r = check_result (fun m -> wrap m) r in
         prop (fun m -> Property (time, m))
           (Properties.well_formed ~expected:pat.Groups.comms plan);
         prop (fun m -> Property (time, m)) (Properties.single_class app plan);
         prop (fun m -> Property (time, m)) (Properties.property1 plan);
         prop (fun m -> Property (time, m)) (Properties.property2 plan);
         incr checks;
         (match Properties.property3 app ~gap:pat.Groups.min_gap plan with
          | Ok () -> ()
          | Error m -> fail_timing (Property (time, m)));
         prop (fun m -> Infeasible_transfer m)
           (Allocation.plan_feasible app alloc plan))
       (Groups.patterns groups)
   with Invalid_argument msg | Failure msg ->
     incr checks;
     fail (Infeasible_transfer msg));
  (* analytic latencies against the gamma deadlines *)
  (try
     let lambda = Solution.lambda_s0 app sol in
     Array.iteri
       (fun i lam ->
         if i < Array.length gamma then begin
           incr checks;
           let gam = gamma.(i) in
           if Time.compare lam Time.(gam + deadline_slack) > 0 then
             fail_timing (Deadline_miss (i, lam, gam))
         end)
       lambda
   with Invalid_argument msg | Failure msg ->
     incr checks;
     fail (Infeasible_transfer msg));
  let time_s = Unix.gettimeofday () -. t0 in
  match List.rev !hard with
  | [] ->
    Log.debug (fun f ->
        f "certified %s solution: %d checks, %d warnings, %.4fs"
          (source_name source) !checks (List.length !warnings) time_s);
    Ok { source; checks = !checks; warnings = List.rev !warnings; time_s }
  | violations ->
    Log.warn (fun f ->
        f "@[<v>rejecting %s solution (%d violations):%a@]" (source_name source)
          (List.length violations)
          Fmt.(
            list ~sep:nop (fun ppf v -> pf ppf "@,  %a" (pp_violation app) v))
          violations);
    Error violations
