open Rt_model
open Let_sem
open Mem_layout

(* The hardened entry point: validate, then walk MILP -> perturbed MILP ->
   heuristic -> baseline under one absolute wall-clock deadline, accepting
   the first rung whose output the independent certifier vouches for. The
   pipeline re-certifies every rung itself — it never trusts a
   certificate claimed by the solver hook. *)

let src = Logs.Src.create "letdma.pipeline" ~doc:"degradation-ladder pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* --- model validation ----------------------------------------------- *)

let validate_app app =
  let problems = ref [] in
  let add fmt = Fmt.kstr (fun m -> problems := m :: !problems) fmt in
  if App.num_tasks app = 0 then add "no tasks";
  (* the model constructors enforce these; re-checked here so the pipeline
     stands on its own even if a future construction path forgets *)
  List.iter
    (fun (t : Task.t) ->
      if Time.compare t.Task.period Time.zero <= 0 then
        add "task %s: non-positive period %a" t.Task.name Time.pp t.Task.period)
    (App.tasks app);
  List.iter
    (fun (l : Label.t) ->
      if l.Label.size <= 0 then
        add "label %s: non-positive size %d" l.Label.name l.Label.size)
    (App.labels app);
  (* single-writer model at the name level: two labels sharing a name are
     two writers of one logical variable *)
  let writer_of = Hashtbl.create 16 in
  List.iter
    (fun (l : Label.t) ->
      match Hashtbl.find_opt writer_of l.Label.name with
      | None -> Hashtbl.replace writer_of l.Label.name l.Label.writer
      | Some w when w <> l.Label.writer ->
        add "label %s written by two tasks (%s and %s)" l.Label.name
          (App.task app w).Task.name
          (App.task app l.Label.writer).Task.name
      | Some _ -> add "duplicate label %s" l.Label.name)
    (App.labels app);
  Array.iteri
    (fun k u ->
      if u > 1.0 +. 1e-9 then add "core %d overloaded: utilization %.3f" k u)
    (App.total_utilization_per_core app);
  List.iter (fun m -> add "%s" m) (App.check_memory_fit app);
  List.rev !problems

(* --- ladder types ---------------------------------------------------- *)

type rung = Milp | Milp_perturbed | Heuristic | Baseline

let rung_name = function
  | Milp -> "milp"
  | Milp_perturbed -> "milp-perturbed"
  | Heuristic -> "heuristic"
  | Baseline -> "baseline"

type attempt = { rung : rung; accepted : bool; reason : string; time_s : float }

type failure =
  | Invalid_model of string list
  | No_communications
  | Unschedulable of float
  | Exhausted of attempt list

let failure_to_string = function
  | Invalid_model problems ->
    Fmt.str "invalid application model: %s" (String.concat "; " problems)
  | No_communications -> "no inter-core communications"
  | Unschedulable alpha ->
    Fmt.str "task set unschedulable with alpha=%.2f jitter bound" alpha
  | Exhausted attempts ->
    Fmt.str "every rung failed: %s"
      (String.concat "; "
         (List.map
            (fun a -> Fmt.str "%s (%s)" (rung_name a.rung) a.reason)
            attempts))

type outcome = {
  rung : rung;
  solution : Solution.t;
  certificate : Certify.t;
  gamma : Time.t array;
  attempts : attempt list;
  solve_stats : Solve.stats option;
  total_time_s : float;
}

let pp_outcome app ppf o =
  Fmt.pf ppf "@[<v>accepted %s solution in %.2fs (%d transfers)%a@,%a@]"
    (rung_name o.rung) o.total_time_s
    (Solution.num_transfers o.solution)
    Fmt.(
      list ~sep:nop (fun ppf (a : attempt) ->
          pf ppf "@,  %s: %s [%.2fs]" (rung_name a.rung) a.reason a.time_s))
    o.attempts (Certify.pp app) o.certificate

type milp_solver =
  deadline_s:float ->
  engine:Solve.engine ->
  jobs:int ->
  presolve:bool ->
  cancel:Parallel.Pool.Token.t option ->
  warm:Solution.t option ->
  chain:Milp.Simplex_core.Basis.t option ref ->
  options:Formulation.options ->
  Formulation.objective ->
  App.t ->
  Groups.t ->
  gamma:Time.t array ->
  Solve.result

let default_milp_solve ~deadline_s ~engine ~jobs ~presolve ~cancel ~warm ~chain
    ~options objective app groups ~gamma =
  (* [chain] carries the root LP basis between consecutive rungs: read it
     as this solve's warm-start offer, leave this solve's own root basis
     behind for the next rung (structure mismatches fall back cold inside
     the kernel, so a stale basis costs one fingerprint check) *)
  let root_basis = !chain in
  Solve.solve ~options ~deadline_s ~engine ~jobs ~presolve ?cancel ?warm
    ?root_basis ~basis_out:chain objective app groups ~gamma

(* Perturbed retry: tighten every gamma by 0.1% — a solution meeting the
   tightened bound meets the original a fortiori, while the shifted
   right-hand sides move the simplex away from whatever degenerate vertex
   or tolerance edge broke the first attempt. *)
let perturb_gamma =
  Array.map (fun g ->
      Time.of_ns (int_of_float (0.999 *. float_of_int (Time.to_ns g))))

let flip_engine = function
  | Solve.Dfs -> Solve.Best_first
  | Solve.Best_first -> Solve.Dfs

let status_name = function
  | Milp.Branch_bound.Optimal -> "optimal"
  | Milp.Branch_bound.Feasible -> "feasible at limit"
  | Milp.Branch_bound.Infeasible -> "infeasible"
  | Milp.Branch_bound.Unbounded -> "unbounded"
  | Milp.Branch_bound.Unknown -> "timeout/unknown"

let violations_summary app vs =
  Fmt.str "certification failed: %d violations, e.g. %a" (List.length vs)
    (Certify.pp_violation app)
    (List.hd vs)

(* --- the ladder ------------------------------------------------------ *)

(* Supervised MILP rung: route the rung through
   [Solve.solve_supervised], whose retry ladder escalates solver
   parameters (Dantzig pricing, no warm pool, no presolve, scaled
   iteration budgets) between attempts. The supervised path runs
   jobs=1 and does not thread the basis [chain] — escalations may
   disable warm starts, so a chained basis would be misleading. *)
let supervised_milp_solve ~policy ~deadline_s ~engine ~jobs:_ ~presolve ~cancel
    ~warm ~chain:_ ~options objective app groups ~gamma =
  Solve.solve_supervised ~policy ~options ~deadline_s ~engine ?cancel ~presolve
    ?warm objective app groups ~gamma

let run ?milp_solve ?(objective = Formulation.No_obj)
    ?(options = Formulation.default_options) ?(engine = Solve.Best_first)
    ?(warm_start = true) ?(budget_s = 60.0) ?(alpha = 0.2) ?(jobs = 1)
    ?(presolve = true) ?(retries = 0) ?(backoff_s = 0.1) app =
  let milp_solve =
    match milp_solve with
    | Some f -> f
    | None when retries > 0 ->
      let policy =
        {
          Resilience.Retry.default_policy with
          Resilience.Retry.attempts = retries + 1;
          backoff_s;
        }
      in
      supervised_milp_solve ~policy
    | None -> default_milp_solve
  in
  let t0 = Milp.Clock.now () in
  let deadline = t0 +. budget_s in
  match validate_app app with
  | _ :: _ as problems -> Error (Invalid_model problems)
  | [] ->
    let groups = Groups.compute app in
    if Comm.Set.is_empty (Groups.s0 groups) then Error No_communications
    else begin
      match Rt_analysis.Sensitivity.gammas app ~alpha with
      | None -> Error (Unschedulable alpha)
      | Some s when not s.Rt_analysis.Sensitivity.schedulable ->
        Error (Unschedulable alpha)
      | Some s ->
        let gamma = s.Rt_analysis.Sensitivity.gamma in
        let attempts = ref [] in
        (* the two MILP rungs may race on separate domains *)
        let attempts_m = Mutex.create () in
        let record rung accepted reason time_s =
          if not accepted then
            Log.info (fun f ->
                f "rung %s rejected: %s (%.2fs)" (rung_name rung) reason time_s);
          Obs.point ~cat:"pipeline" "rung"
            [
              ("rung", Obs.Str (rung_name rung));
              ("accepted", Obs.Bool accepted);
              ("reason", Obs.Str reason);
              ("time_s", Obs.Float time_s);
            ];
          Mutex.protect attempts_m (fun () ->
              attempts := { rung; accepted; reason; time_s } :: !attempts)
        in
        let finish rung sol cert stats time_s =
          record rung true "accepted" time_s;
          Log.info (fun f -> f "pipeline settled on rung %s" (rung_name rung));
          Ok
            {
              rung;
              solution = sol;
              certificate = cert;
              gamma;
              attempts = List.rev !attempts;
              solve_stats = stats;
              total_time_s = Milp.Clock.now () -. t0;
            }
        in
        (* one MILP rung: solve against [gamma_solve], then re-certify the
           result against the ORIGINAL gamma, never trusting the hook *)
        let try_milp rung ~engine ~jobs ~cancel ~gamma_solve ~warm ~chain =
          Obs.span ~cat:"pipeline" (rung_name rung) @@ fun () ->
          let ta = Milp.Clock.now () in
          let r =
            milp_solve ~deadline_s:deadline ~engine ~jobs ~presolve ~cancel
              ~warm ~chain ~options objective app groups ~gamma:gamma_solve
          in
          let dt = Milp.Clock.now () -. ta in
          match r.Solve.solution with
          | None ->
            record rung false
              (Fmt.str "no solution (%s)" (status_name r.Solve.stats.Solve.status))
              dt;
            None
          | Some sol ->
            let source =
              match r.Solve.stats.Solve.status with
              | Milp.Branch_bound.Optimal -> Certify.Milp_optimal
              | _ -> Certify.Milp_incumbent
            in
            let milp = Option.map (fun x -> (r.Solve.instance, x)) r.Solve.x in
            (match Certify.certify ?milp ~source app groups ~gamma sol with
             | Ok cert -> Some (sol, cert, Some r.Solve.stats, dt)
             | Error vs ->
               record rung false (violations_summary app vs) dt;
               None)
        in
        (* heuristic/baseline rung: certify a directly-constructed plan *)
        let try_direct rung source sol_opt =
          Obs.span ~cat:"pipeline" (rung_name rung) @@ fun () ->
          let ta = Milp.Clock.now () in
          match sol_opt with
          | None ->
            record rung false "no plan produced" (Milp.Clock.now () -. ta);
            None
          | Some sol ->
            let dt0 = Milp.Clock.now () in
            (match Certify.certify ~source app groups ~gamma sol with
             | Ok cert -> Some (sol, cert, None, Milp.Clock.now () -. ta)
             | Error vs ->
               record rung false (violations_summary app vs)
                 (Milp.Clock.now () -. dt0);
               None)
        in
        let warm =
          if warm_start then Heuristic.solve_unchecked app groups ~gamma
          else None
        in
        let milp_sequential () =
          (* back-to-back rungs share one basis chain: the perturbed model
             differs from the primary only in its gamma right-hand sides,
             so its root LP reoptimizes from the primary's root basis *)
          let chain = ref None in
          match
            try_milp Milp ~engine ~jobs:1 ~cancel:None ~gamma_solve:gamma ~warm
              ~chain
          with
          | Some acc -> Some (Milp, acc)
          | None ->
            if Milp.Clock.remaining ~deadline > 1.0 then begin
              match
                try_milp Milp_perturbed ~engine:(flip_engine engine) ~jobs:1
                  ~cancel:None ~gamma_solve:(perturb_gamma gamma) ~warm:None
                  ~chain
              with
              | Some acc -> Some (Milp_perturbed, acc)
              | None -> None
            end
            else begin
              record Milp_perturbed false "skipped: budget exhausted" 0.0;
              None
            end
        in
        (* With jobs >= 2, the primary and perturbed models race on two
           domains instead of running back-to-back; the perturbed branch
           is insurance, so it is cancelled as soon as the primary's
           solution certifies. Each branch keeps half the jobs for its
           own portfolio. *)
        let milp_race () =
          Parallel.Pool.with_pool ~jobs:2 @@ fun pl ->
          let branch_jobs = max 1 (jobs / 2) in
          let cancel_perturbed = Parallel.Pool.Token.create () in
          (* racing branches run on separate domains: each gets a private
             chain ref — bases are never shared across domains *)
          let primary_fut =
            Parallel.Pool.async pl (fun () ->
                try_milp Milp ~engine ~jobs:branch_jobs ~cancel:None
                  ~gamma_solve:gamma ~warm ~chain:(ref None))
          in
          let perturbed_fut =
            Parallel.Pool.async pl (fun () ->
                try_milp Milp_perturbed ~engine:(flip_engine engine)
                  ~jobs:branch_jobs ~cancel:(Some cancel_perturbed)
                  ~gamma_solve:(perturb_gamma gamma) ~warm:None
                  ~chain:(ref None))
          in
          let primary = Parallel.Pool.await primary_fut in
          (match primary with
           | Ok (Some _) -> Parallel.Pool.Token.cancel cancel_perturbed
           | Ok None | Error _ -> ());
          let perturbed = Parallel.Pool.await perturbed_fut in
          let surface = function
            | Ok r -> r
            | Error e -> raise e (* funneled solver crash *)
          in
          match surface primary with
          | Some acc ->
            (* a failed perturbed branch already recorded its own
               rejection inside try_milp; only a successful loser needs
               an attempt entry here *)
            (match surface perturbed with
             | Some _ ->
               record Milp_perturbed false "lost race: primary accepted" 0.0
             | None -> ());
            Some (Milp, acc)
          | None -> (
            match surface perturbed with
            | Some acc -> Some (Milp_perturbed, acc)
            | None -> None)
        in
        let milp_accepted =
          if jobs >= 2 then milp_race () else milp_sequential ()
        in
        (match milp_accepted with
         | Some (rung, (sol, cert, stats, dt)) -> finish rung sol cert stats dt
         | None -> (
           match
             try_direct Heuristic Certify.Heuristic
               (Heuristic.solve_unchecked app groups ~gamma)
           with
           | Some (sol, cert, stats, dt) -> finish Heuristic sol cert stats dt
           | None -> (
             let baseline =
               Solution.make
                 ~allocation:(Allocation.identity app)
                 ~slots:
                   (Array.of_list
                      (Giotto.singleton_transfers app (Groups.s0 groups)))
             in
             match try_direct Baseline Certify.Baseline (Some baseline) with
             | Some (sol, cert, stats, dt) -> finish Baseline sol cert stats dt
             | None -> Error (Exhausted (List.rev !attempts)))))
    end
