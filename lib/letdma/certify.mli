(** Independent solution certifier.

    Our simplex / branch-and-bound stack has none of a commercial solver's
    numerical hardening, and the heuristic and baselines are hand-written
    combinatorial code — so no decoded solution is trusted as-is. This
    module re-verifies a {!Solution.t} from first principles, independently
    of the code that produced it:

    - every MILP bound, integrality requirement and constraint row is
      re-evaluated against the raw model ({!Milp.Problem.residuals});
    - the memory allocation is re-checked for coverage and capacity
      against the paper's mapping rules ({!Mem_layout});
    - every pattern's projected plan is re-checked for well-formedness,
      LET Properties 1-3 and transfer contiguity ({!Let_sem.Properties});
    - the analytic latencies are compared against the gamma deadlines.

    The result is a typed certificate or a structured list of violations,
    consumed by {!Solve}, {!Pipeline}, the experiment driver and the CLI. *)

open Rt_model
open Let_sem

(** Which rung of the pipeline produced the solution. Timing findings —
    Property-3 overruns and gamma deadline misses — are hard violations
    for MILP-produced solutions (the model constrains both, so a miss
    means the solver lied) but only warnings for the heuristic and
    baselines, which may legitimately overrun. Structural findings
    (coverage, capacity, well-formedness, Properties 1-2, contiguity) are
    hard for every source. *)
type source = Milp_optimal | Milp_incumbent | Heuristic | Baseline

val source_name : source -> string

type violation =
  | Missing_layout of Platform.memory
      (** a memory the mapping rules populate has no layout *)
  | Bad_coverage of Platform.memory * string
      (** a layout's label set differs from the mapping rules' *)
  | Capacity of Platform.memory * int * int
      (** (memory, bytes used, bytes available) *)
  | Milp_residual of Milp.Problem.residual
      (** the claimed assignment violates the raw MILP model *)
  | Infeasible_transfer of string
      (** a projected transfer is not contiguous/transferable, or the
          solution is structurally broken (foreign labels, etc.) *)
  | Property of Time.t * string
      (** (pattern occurrence, failed LET property) *)
  | Deadline_miss of int * Time.t * Time.t
      (** (task id, analytic lambda, gamma bound) — beyond the decode
          tolerance of 1 us that absorbs float-microsecond rounding *)

val pp_violation : App.t -> Format.formatter -> violation -> unit

(** A granted certificate: every hard check passed. *)
type t = {
  source : source;
  checks : int;  (** individual checks evaluated *)
  warnings : violation list;
      (** soft findings — deadline misses of non-MILP sources *)
  time_s : float;  (** certification wall time *)
}

val pp : App.t -> Format.formatter -> t -> unit

(** [certify ?milp ~source app groups ~gamma sol] re-verifies [sol].
    [milp] supplies the raw model and the solver's claimed assignment for
    residual checking (only meaningful for MILP sources). Never raises:
    structural breakage inside the solution surfaces as violations. *)
val certify :
  ?milp:Formulation.instance * float array ->
  source:source ->
  App.t ->
  Groups.t ->
  gamma:Time.t array ->
  Solution.t ->
  (t, violation list) result
