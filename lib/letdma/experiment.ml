open Rt_model
open Let_sem
open Dma_sim

(* End-to-end experiment pipelines reproducing the paper's evaluation
   (Section VII): configure gamma by sensitivity analysis, solve the
   allocation/scheduling problem, simulate the four approaches, and report
   latencies, ratios and solver statistics. *)

type solver =
  | Milp of {
      objective : Formulation.objective;
      options : Formulation.options;
      time_limit_s : float;
      node_limit : int;
      warm_start : bool;
      jobs : int; (* portfolio width of each solve; 1 = sequential *)
      presolve : bool; (* MILP root presolve (default on) *)
    }
  | Heuristic

let milp ?(options = Formulation.default_options) ?(time_limit_s = 60.0)
    ?(node_limit = 200_000) ?(warm_start = true) ?(jobs = 1)
    ?(presolve = true) objective =
  Milp
    { objective; options; time_limit_s; node_limit; warm_start; jobs; presolve }

let solver_name = function
  | Milp { objective; _ } -> Formulation.objective_name objective
  | Heuristic -> "HEURISTIC"

(* Typed failure of one configuration; [error_to_string] preserves the
   historical one-line messages consumed by the reports and the CLI. *)
type error =
  | No_communications
  | Unschedulable of float option (* None: already at zero jitter *)
  | No_solution of { alpha : float; solver_name : string }
  | Uncertified of Certify.source * Certify.violation list

let error_to_string = function
  | No_communications -> "no inter-core communications"
  | Unschedulable None -> "task set unschedulable at zero jitter"
  | Unschedulable (Some alpha) ->
    Fmt.str "task set unschedulable with alpha=%.2f jitter bound" alpha
  | No_solution { alpha; solver_name } ->
    Fmt.str "solver found no feasible plan (alpha=%.2f, %s)" alpha solver_name
  | Uncertified (source, violations) ->
    Fmt.str "%s solution failed certification (%d violations)"
      (Certify.source_name source)
      (List.length violations)

type config_result = {
  alpha : float;
  solver : solver;
  gamma : Time.t array;
  solution : Solution.t;
  certificate : Certify.t; (* every accepted configuration is certified *)
  solve_stats : Solve.stats option; (* None for the heuristic *)
  num_transfers : int; (* DMA transfers at s0 — Table I's metric *)
  metrics : (Baselines.approach * Sim.metrics) list;
}

let metrics_of r approach = List.assoc approach r.metrics

(* lambda ratio of the proposed approach vs a baseline, per task: the
   quantity on Fig. 2's Y axis. *)
let ratio r approach task =
  let ours = (metrics_of r Baselines.Proposed).Sim.lambda.(task) in
  let other = (metrics_of r approach).Sim.lambda.(task) in
  if Time.compare other Time.zero = 0 then
    if Time.compare ours Time.zero = 0 then 1.0 else infinity
  else float_of_int (Time.to_ns ours) /. float_of_int (Time.to_ns other)

(* Largest improvement over a baseline across tasks (the paper's "up to
   98%" headline = 1 - min ratio). *)
let best_improvement r approach =
  let app_tasks = Array.length r.gamma in
  let best = ref 0.0 in
  for i = 0 to app_tasks - 1 do
    let rho = ratio r approach i in
    if rho < 1.0 then best := Float.max !best (1.0 -. rho)
  done;
  !best

let run_config ?(cpu_model = Sim.Parallel_phases) ?(solver = Heuristic)
    ?deadline_s ?chain app ~alpha =
  let groups = Groups.compute app in
  if Comm.Set.is_empty (Groups.s0 groups) then Error No_communications
  else
    match Rt_analysis.Sensitivity.gammas app ~alpha with
    | None -> Error (Unschedulable None)
    | Some s when not s.Rt_analysis.Sensitivity.schedulable ->
      Error (Unschedulable (Some alpha))
    | Some s ->
      let gamma = s.Rt_analysis.Sensitivity.gamma in
      let solution, solve_stats, certificate =
        match solver with
        | Heuristic ->
          let sol = Heuristic.solve_unchecked app groups ~gamma in
          let cert =
            Option.map
              (Certify.certify ~source:Certify.Heuristic app groups ~gamma)
              sol
          in
          (sol, None, cert)
        | Milp
            { objective; options; time_limit_s; node_limit; warm_start; jobs;
              presolve } ->
          let warm =
            if warm_start then
              (* warm-start with the heuristic variant matching the
                 objective: maximal grouping for OBJ-DMAT, per-task
                 latency-oriented transfers otherwise *)
              let granularity =
                match objective with
                | Formulation.Min_transfers -> Heuristic.Grouped
                | Formulation.No_obj | Formulation.Min_delay_ratio ->
                  Heuristic.Per_task
              in
              Heuristic.solve_unchecked ~granularity app groups ~gamma
            else None
          in
          (* Adjacent sweep configurations differ only in a few bounds /
             right-hand sides: hand the previous config's root basis to
             this solve and leave ours behind for the next config on this
             worker domain (see {!Parallel.Sweep.Chain}). Incompatible
             bases are rejected by a fingerprint check inside the kernel
             and simply fall back to the cold solve. *)
          let root_basis = Option.bind chain Parallel.Sweep.Chain.take in
          let basis_out = Option.map (fun _ -> ref None) chain in
          let r =
            Solve.solve ~options ~time_limit_s ?deadline_s ~node_limit ~jobs
              ~presolve ?warm ?root_basis ?basis_out objective app groups
              ~gamma
          in
          (match (chain, basis_out) with
           | Some c, Some { contents = Some b } -> Parallel.Sweep.Chain.put c b
           | _ -> ());
          (r.Solve.solution, Some r.Solve.stats, r.Solve.certificate)
      in
      (match (solution, certificate) with
       | None, _ | _, None ->
         Error (No_solution { alpha; solver_name = solver_name solver })
       | Some _, Some (Error violations) ->
         let source =
           match solver with
           | Heuristic -> Certify.Heuristic
           | Milp _ -> Certify.Milp_incumbent
         in
         Error (Uncertified (source, violations))
       | Some solution, Some (Ok certificate) ->
         let metrics =
           List.map
             (fun a ->
               (* when tracing, record the Proposed run's simulator
                  timeline and bridge it into the event sink *)
               let record_trace = Obs.enabled () && a = Baselines.Proposed in
               let m =
                 Baselines.run ~record_trace ~cpu_model app groups a
                   ~solution:(Some solution)
               in
               if record_trace then Obs_bridge.emit app m.Sim.trace;
               (a, m))
             Baselines.all_approaches
         in
         Ok
           {
             alpha;
             solver;
             gamma;
             solution;
             certificate;
             solve_stats;
             num_transfers = Solution.num_transfers solution;
             metrics;
           })

(* Sweep-parallel grid runner shared by fig2 and alpha_sweep: with
   [jobs > 1] the independent configurations are farmed over a domain
   pool; [budget_s] is carved into fair per-config deadlines by
   [Parallel.Sweep] (each config additionally keeps its [time_limit_s]
   cap, so results match the sequential run when the budget is slack). *)
let run_grid ~jobs ~budget_s ~time_limit_s run configs =
  if jobs <= 1 then List.map (fun c -> run ?deadline_s:None c) configs
  else begin
    let global =
      Option.map (fun b -> Milp.Clock.deadline_of ~limit_s:b) budget_s
    in
    Parallel.Sweep.map ~jobs ?deadline:global
      (fun ~deadline c ->
        let d = Float.min deadline (Milp.Clock.deadline_of ~limit_s:time_limit_s) in
        let deadline_s = if Float.is_finite d then Some d else None in
        run ?deadline_s c)
      configs
    |> List.map (fun (o : _ Parallel.Sweep.outcome) ->
           match o.Parallel.Sweep.result with Ok r -> r | Error e -> raise e)
  end

(* The paper's Fig. 2 grid: alphas 0.2 and 0.4, the three objectives. *)
let fig2 ?(alphas = [ 0.2; 0.4 ])
    ?(objectives = [ Formulation.No_obj; Formulation.Min_transfers; Formulation.Min_delay_ratio ])
    ?(time_limit_s = 60.0) ?cpu_model ?(jobs = 1) ?budget_s app =
  let configs =
    List.concat_map
      (fun alpha -> List.map (fun objective -> (alpha, objective)) objectives)
      alphas
  in
  let chain = Parallel.Sweep.Chain.create () in
  run_grid ~jobs ~budget_s ~time_limit_s
    (fun ?deadline_s (alpha, objective) ->
      ((alpha, objective),
       run_config ?cpu_model ?deadline_s ~chain
         ~solver:(milp ~time_limit_s objective) app ~alpha))
    configs

(* Table I: solver running time and number of DMA transfers per objective
   and alpha. *)
type table1_row = {
  objective : Formulation.objective;
  t_alpha : float;
  time_s : float option;
  transfers : int option;
  status : string;
}

(* Build Table I rows from already-computed Fig. 2 results (same
   configurations; avoids re-solving). *)
let table1_of_results results =
  List.map
    (fun ((alpha, objective), res) ->
      match res with
      | Ok r ->
        {
          objective;
          t_alpha = alpha;
          time_s = Option.map (fun s -> s.Solve.time_s) r.solve_stats;
          transfers = Some r.num_transfers;
          status =
            (match r.solve_stats with
             | Some { Solve.status = Milp.Branch_bound.Optimal; _ } -> "optimal"
             | Some { Solve.status = Milp.Branch_bound.Feasible; _ } ->
               "feasible (limit)"
             | Some _ -> "other"
             | None -> "heuristic");
        }
      | Error e ->
        { objective; t_alpha = alpha; time_s = None; transfers = None;
          status = error_to_string e })
    results

let table1 ?(alphas = [ 0.2; 0.4 ])
    ?(objectives = [ Formulation.No_obj; Formulation.Min_transfers; Formulation.Min_delay_ratio ])
    ?(time_limit_s = 60.0) ?cpu_model app =
  let chain = Parallel.Sweep.Chain.create () in
  List.concat_map
    (fun objective ->
      List.map
        (fun alpha ->
          match
            run_config ?cpu_model ~chain
              ~solver:(milp ~time_limit_s objective) app ~alpha
          with
          | Ok r ->
            {
              objective;
              t_alpha = alpha;
              time_s = Option.map (fun s -> s.Solve.time_s) r.solve_stats;
              transfers = Some r.num_transfers;
              status =
                (match r.solve_stats with
                 | Some { Solve.status = Milp.Branch_bound.Optimal; _ } -> "optimal"
                 | Some { Solve.status = Milp.Branch_bound.Feasible; _ } ->
                   "feasible (limit)"
                 | Some _ -> "other"
                 | None -> "heuristic");
            }
          | Error e ->
            { objective; t_alpha = alpha; time_s = None; transfers = None;
          status = error_to_string e })
        alphas)
    objectives

(* The alpha sweep of Section VII: feasibility for alpha in {0.1..0.5}. *)
let alpha_sweep ?(alphas = [ 0.1; 0.2; 0.3; 0.4; 0.5 ]) ?(time_limit_s = 60.0)
    ?(objective = Formulation.No_obj) ?cpu_model ?(jobs = 1) ?budget_s app =
  let chain = Parallel.Sweep.Chain.create () in
  run_grid ~jobs ~budget_s ~time_limit_s
    (fun ?deadline_s alpha ->
      (alpha,
       run_config ?cpu_model ?deadline_s ~chain
         ~solver:(milp ~time_limit_s objective) app ~alpha))
    alphas
