open Let_sem
open Mem_layout

(* Solver driver: branch-and-bound over the formulation, with Constraint 6
   generated lazily — solve, check every pattern's projected transfers for
   contiguity under the decoded allocation, add the violated Constraint 6
   blocks, re-solve. The optimum is unchanged w.r.t. the full formulation
   (cuts are only added when violated); small instances can force the full
   model upfront with [options.full_c6] (compared in an ablation bench). *)

let src = Logs.Src.create "letdma.solve" ~doc:"lazy MILP solver driver"

module Log = (val Logs.src_log src : Logs.LOG)

module Checkpoint = Resilience.Checkpoint
module Retry = Resilience.Retry

type stats = {
  rounds : int; (* lazy iterations (1 = no violation found) *)
  c6_constraints : int; (* Constraint 6 rows generated *)
  nodes : int; (* branch-and-bound nodes over all rounds *)
  time_s : float;
  status : Milp.Branch_bound.status; (* of the last round *)
  gap : float option;
  milp_vars : int;
  milp_constraints : int;
  lp : Milp.Branch_bound.lp_stats;
      (* LP-kernel work + presolve reductions, summed over all rounds *)
}

type result = {
  solution : Solution.t option;
  x : float array option; (* the accepted raw MILP assignment *)
  certificate : (Certify.t, Certify.violation list) Stdlib.result option;
      (* independent re-verification of [solution]; [None] iff no solution *)
  stats : stats;
  instance : Formulation.instance;
}

(* Which branch-and-bound engine explores the tree. Best-first (default)
   re-solves every node's LP from scratch and proved the more robust
   choice on this formulation: its fresh primal solves frequently land on
   integral vertices, which matters for the feasibility-style NO-OBJ
   models. The depth-first diving engine repairs one live tableau with the
   bounded dual simplex — far cheaper per node, but its repaired vertices
   tend to stay fractional here; it is kept as a measured alternative
   (see the ABLATION-ENGINE bench section). *)
type engine = Dfs | Best_first

(* One branch-and-bound round: sequential engine at [jobs <= 1], else a
   portfolio race over a pool of [jobs] domains (the diversified panel
   includes both engines, so [engine] only selects the sequential one).
   [cancel] lets an outer racer — the pipeline running primary and
   perturbed models concurrently — abort the round between nodes.
   [stop_after_nodes] interrupts the sequential engine after that many
   explored nodes — the controlled-interrupt half of the chaos gate
   (checkpoint, kill, resume). Checkpoint/resume arguments are
   sequential-only and engine-specific; [bb_solve] receives them
   pre-dispatched as [bf_ck] (best-first) / [dfs_ck] (coarse). *)
let bb_solve ~jobs ~cancel ~presolve ?root_basis ?basis_out ?basis_pool
    ?pricing ?max_lp_iters ?stop_after_nodes ?bf_ck ?dfs_ck engine =
  if jobs > 1 then fun ~deadline ~node_limit ?incumbent p ->
    (* portfolio workers each own a private basis pool; cross-solve basis
       chaining is a sequential-only feature (no sharing across domains) *)
    let r =
      Parallel.Portfolio.solve ~jobs ?cancel ~deadline ~node_limit ?incumbent
        ~presolve p
    in
    r.Parallel.Portfolio.solution
  else
    let base =
      match cancel with
      | None -> Milp.Branch_bound.no_hooks
      | Some tok ->
        {
          Milp.Branch_bound.no_hooks with
          should_stop = (fun () -> Parallel.Pool.Token.cancelled tok);
        }
    in
    let hooks =
      match stop_after_nodes with
      | None -> base
      | Some limit ->
        let seen = ref 0 in
        {
          base with
          should_stop =
            (fun () -> !seen >= limit || base.Milp.Branch_bound.should_stop ());
          on_node =
            (fun ~node ~depth ~bound ~pivots ->
              incr seen;
              base.Milp.Branch_bound.on_node ~node ~depth ~bound ~pivots);
        }
    in
    let hooks = Obs.Solver_hooks.wrap hooks in
    match engine with
    | Dfs -> fun ~deadline ~node_limit ?incumbent p ->
        let on_checkpoint, checkpoint_every, resume =
          match dfs_ck with
          | Some (f, every, resume) -> (Some f, every, resume)
          | None -> (None, 0, None)
        in
        Milp.Dfs_solver.solve ~deadline ~node_limit ?incumbent ~hooks ~presolve
          ?root_basis ?basis_out ?pricing ?max_lp_iters ~checkpoint_every
          ?on_checkpoint ?resume p
    | Best_first -> fun ~deadline ~node_limit ?incumbent p ->
        let on_checkpoint, checkpoint_every, checkpoint_every_s, resume =
          match bf_ck with
          | Some (f, every, every_s, resume) -> (Some f, every, every_s, resume)
          | None -> (None, 0, None, None)
        in
        Milp.Branch_bound.solve ~deadline ~node_limit ?incumbent ~hooks
          ~presolve ?root_basis ?basis_out ?basis_pool ?pricing ?max_lp_iters
          ~checkpoint_every ?checkpoint_every_s ?on_checkpoint ?resume p

(* (pattern, class) blocks whose projected transfers break contiguity. *)
let find_violations inst (sol : Solution.t) =
  let app = inst.Formulation.app in
  let alloc = Solution.allocation sol in
  let violations = ref [] in
  List.iter
    (fun (pat : Groups.pattern) ->
      let time = List.hd pat.Groups.occurrences in
      let plan = Solution.plan_at app inst.Formulation.groups sol time in
      List.iter
        (fun transfer ->
          match transfer with
          | [] -> ()
          | c :: _ ->
            let src_l = Allocation.layout alloc (Comm.src_memory app c) in
            let dst_l = Allocation.layout alloc (Comm.dst_memory app c) in
            let labels = Allocation.transfer_labels transfer in
            if not (Layout.transferable ~src:src_l ~dst:dst_l labels) then
              violations := (pat, Comm.cls app c) :: !violations)
        plan)
    (Groups.patterns inst.Formulation.groups);
  !violations

let solve ?(options = Formulation.default_options) ?(time_limit_s = 60.0)
    ?deadline_s ?(node_limit = 200_000) ?(max_rounds = 50) ?(engine = Best_first)
    ?(jobs = 1) ?cancel ?(presolve = true) ?warm ?root_basis ?basis_out
    ?basis_pool ?pricing ?max_lp_iters ?checkpoint_file ?(checkpoint_every = 64)
    ?checkpoint_every_s ?resume ?interrupt_after_nodes objective app groups
    ~gamma =
  let t0 = Milp.Clock.now () in
  (* One absolute monotonic deadline shared by every lazy round (and, via
     [deadline_s], by every rung of a degradation ladder): k rounds can
     never consume ~k times the budget. *)
  let deadline = match deadline_s with Some d -> d | None -> t0 +. time_limit_s in
  let inst = Formulation.make ~options objective app groups ~gamma in
  Log.info (fun f -> f "built %s model: %s"
               (Formulation.objective_name objective)
               (Formulation.stats_string inst));
  (* Checkpoint/resume is a sequential-only feature: a portfolio race has
     no single trajectory to serialize. *)
  let durable = checkpoint_file <> None || resume <> None in
  if durable && jobs > 1 then
    invalid_arg "Solve.solve: checkpoint/resume requires jobs = 1";
  if interrupt_after_nodes <> None && jobs > 1 then
    invalid_arg "Solve.solve: interrupt_after_nodes requires jobs = 1";
  let fp = if durable then Checkpoint.fingerprint inst.Formulation.problem
    else "" in
  (* Validate and dispatch a resume checkpoint to the matching engine. *)
  let bf_resume, dfs_resume =
    match resume with
    | None -> (None, None)
    | Some (ck : Checkpoint.t) ->
      if ck.Checkpoint.ck_fingerprint <> fp then
        invalid_arg
          (Fmt.str
             "Solve.solve: checkpoint fingerprint %s does not match the model \
              (%s) — different workload, objective, options or a later lazy \
              round"
             ck.Checkpoint.ck_fingerprint fp);
      (match (ck.Checkpoint.ck_state, engine) with
       | Checkpoint.Best_first bf, Best_first -> (Some bf, None)
       | Checkpoint.Dfs d, Dfs -> (None, Some d)
       | Checkpoint.Best_first _, Dfs | Checkpoint.Dfs _, Best_first ->
         invalid_arg
           "Solve.solve: checkpoint was taken by the other engine \
            (best-first vs dfs)")
  in
  (* Writer: wrap each engine snapshot in a versioned file. Only round 1
     checkpoints are written — later lazy rounds solve a model grown by
     Constraint-6 cuts that a fresh process cannot reproduce without
     replaying the earlier rounds, so their fingerprint would never match
     on load. (Nearly all instances finish in round 1; see EXPERIMENTS.) *)
  let write_state state =
    match checkpoint_file with
    | None -> ()
    | Some file ->
      let meta =
        [
          ("objective", Formulation.objective_name objective);
          ("engine", match engine with Best_first -> "best_first" | Dfs -> "dfs");
        ]
      in
      (match Checkpoint.save file (Checkpoint.make ~meta ~fingerprint:fp state)
       with
       | Ok () -> ()
       | Error m -> Log.err (fun f -> f "checkpoint write failed: %s" m))
  in
  (* The warm start is re-encoded at every round: lazy Constraint-6
     generation appends variables (the LG conjunctions), so a vector from
     an earlier round would no longer match the problem. *)
  let encode_warm () =
    match warm with
    | None -> None
    | Some sol ->
      (match Formulation.encode inst sol with
       | Some x ->
         (match Milp.Problem.check_solution inst.Formulation.problem x with
          | [] -> Some x
          | violated ->
            Log.debug (fun f ->
                f "warm start rejected (%d violations, e.g. %s)"
                  (List.length violated)
                  (match violated with v :: _ -> v | [] -> "-"));
            None)
       | None -> None)
  in
  let c6_total = ref 0 in
  let nodes_total = ref 0 in
  let lp_total = ref Milp.Branch_bound.lp_zero in
  let rec loop round =
    let remaining = Milp.Clock.remaining ~deadline in
    if remaining <= 0.5 || round > max_rounds then
      (None, Milp.Branch_bound.Unknown, None, round - 1)
    else begin
      let bf_ck, dfs_ck =
        if (not durable) || round > 1 then (None, None)
        else
          match engine with
          | Best_first ->
            ( Some
                ( (fun ck -> write_state (Checkpoint.Best_first ck)),
                  checkpoint_every,
                  checkpoint_every_s,
                  bf_resume ),
              None )
          | Dfs ->
            ( None,
              Some
                ( (fun ck -> write_state (Checkpoint.Dfs ck)),
                  checkpoint_every,
                  dfs_resume ) )
      in
      let bb =
        Obs.span ~cat:"solver" "round" ~fields:[ ("round", Obs.Int round) ]
        @@ fun () ->
        bb_solve ~jobs ~cancel ~presolve ?root_basis ?basis_out ?basis_pool
          ?pricing ?max_lp_iters ?stop_after_nodes:interrupt_after_nodes
          ?bf_ck ?dfs_ck engine ~deadline ~node_limit
          ?incumbent:(encode_warm ()) inst.Formulation.problem
      in
      nodes_total := !nodes_total + bb.Milp.Branch_bound.stats.Milp.Branch_bound.nodes;
      lp_total :=
        Milp.Branch_bound.lp_add !lp_total
          bb.Milp.Branch_bound.stats.Milp.Branch_bound.lp;
      match bb.Milp.Branch_bound.x with
      | None -> (None, bb.Milp.Branch_bound.status, bb.Milp.Branch_bound.stats.Milp.Branch_bound.gap, round)
      | Some x ->
        let sol = Formulation.decode inst x in
        (match find_violations inst sol with
         | [] ->
           (Some (sol, x), bb.Milp.Branch_bound.status, bb.Milp.Branch_bound.stats.Milp.Branch_bound.gap, round)
         | violations ->
           let added =
             List.fold_left
               (fun acc (pat, cls) ->
                 acc + Formulation.add_c6_for inst pat cls)
               0 violations
           in
           c6_total := !c6_total + added;
           Log.info (fun f ->
               f "round %d: %d contiguity violations, %d Constraint-6 rows added"
                 round (List.length violations) added);
           if added = 0 then
             (* the violated blocks were already generated: the solution
                should not have been violated; treat as failure *)
             (None, Milp.Branch_bound.Unknown, None, round)
           else loop (round + 1))
    end
  in
  let accepted, status, gap, rounds = loop 1 in
  (* A conclusive finish makes the checkpoint stale (resuming it would
     re-prove what is already proven): remove it so an operator loop
     "resume while a checkpoint exists" terminates. *)
  (match (checkpoint_file, status) with
   | ( Some file,
       ( Milp.Branch_bound.Optimal | Milp.Branch_bound.Infeasible
       | Milp.Branch_bound.Unbounded ) )
     when Sys.file_exists file -> (
     try
       Sys.remove file;
       Log.info (fun f -> f "solve conclusive: checkpoint %s removed" file)
     with Sys_error _ -> ())
   | _ -> ());
  let solution = Option.map fst accepted in
  let x = Option.map snd accepted in
  (* independent certification of accepted solutions: the decoded
     configuration is re-verified from first principles, including the raw
     assignment against every MILP row *)
  let certificate =
    match accepted with
    | None -> None
    | Some (sol, x) ->
      let source =
        match status with
        | Milp.Branch_bound.Optimal -> Certify.Milp_optimal
        | _ -> Certify.Milp_incumbent
      in
      let cert =
        Certify.certify ~milp:(inst, x) ~source app groups ~gamma sol
      in
      (match cert with
       | Ok c ->
         Log.info (fun f ->
             f "solution certified (%s, %d checks)" (Certify.source_name source)
               c.Certify.checks)
       | Error vs ->
         if inst.Formulation.options.Formulation.strict_property3 then
           Log.err (fun f ->
               f "solution failed certification (%d violations)" (List.length vs))
         else
           Log.warn (fun f ->
               f "solution fails strict certification (paper-mode Constraint 10): \
                  %d violations" (List.length vs)));
      Some cert
  in
  {
    solution;
    x;
    certificate;
    stats =
      {
        rounds;
        c6_constraints = !c6_total;
        nodes = !nodes_total;
        time_s = Milp.Clock.now () -. t0;
        status;
        gap;
        milp_vars = Milp.Problem.num_vars inst.Formulation.problem;
        milp_constraints = Milp.Problem.num_constrs inst.Formulation.problem;
        lp = !lp_total;
      };
    instance = inst;
  }

(* Supervised solve: wrap {!solve} in [Resilience.Retry]'s escalation
   ladder. An attempt is retried when it ends inconclusively with no
   solution (status [Unknown] — iteration-limit interrupts land here) or
   when the accepted solution fails independent certification (numerical
   trouble); escalations loosen pricing to Dantzig, disable the
   warm-basis pool and presolve, and scale [max_lp_iters]. When a
   checkpoint file is configured, retries resume from the latest
   checkpoint instead of restarting — with the serialized basis pool
   dropped if the escalation rung disables warm starts. *)
let solve_supervised ?policy ?options ?(time_limit_s = 60.0) ?deadline_s
    ?node_limit ?max_rounds ?(engine = Best_first) ?cancel ?(presolve = true)
    ?warm ?basis_pool ?pricing ?max_lp_iters ?checkpoint_file
    ?checkpoint_every ?checkpoint_every_s ?resume objective app groups ~gamma =
  let deadline =
    match deadline_s with
    | Some d -> d
    | None -> Milp.Clock.now () +. time_limit_s
  in
  let attempt (esc : Retry.escalation) =
    let pricing =
      if esc.Retry.loosen_pricing then Some Milp.Simplex_core.Dantzig
      else pricing
    in
    let basis_pool = if esc.Retry.disable_warm then Some 0 else basis_pool in
    let presolve = presolve && not esc.Retry.disable_presolve in
    let max_lp_iters =
      Option.map (fun m -> m * esc.Retry.iter_factor) max_lp_iters
    in
    (* Later attempts continue from the latest checkpoint when one is on
       disk; a fresh attempt starts over otherwise. *)
    let resume =
      if esc.Retry.attempt = 0 then resume
      else
        match checkpoint_file with
        | Some file when Sys.file_exists file -> (
          match Checkpoint.load file with
          | Ok ck ->
            let ck =
              if not esc.Retry.disable_warm then ck
              else
                match ck.Checkpoint.ck_state with
                | Checkpoint.Best_first bf ->
                  {
                    ck with
                    Checkpoint.ck_state =
                      Checkpoint.Best_first
                        { bf with Milp.Branch_bound.ck_pool = [] };
                  }
                | Checkpoint.Dfs _ -> ck
            in
            Some ck
          | Error m ->
            Log.warn (fun f ->
                f "retry: checkpoint unreadable (%s); restarting" m);
            resume)
        | Some _ | None -> resume
    in
    solve ?options ~deadline_s:deadline ?node_limit ?max_rounds ~engine
      ~jobs:1 ?cancel ~presolve ?warm ?basis_pool ?pricing ?max_lp_iters
      ?checkpoint_file ?checkpoint_every ?checkpoint_every_s ?resume objective
      app groups ~gamma
  in
  let classify (r : result) =
    match (r.stats.status, r.solution, r.certificate) with
    | Milp.Branch_bound.Unknown, None, _ -> `Retry "no solution (unknown)"
    | _, Some _, Some (Error _) -> `Retry "certification failed"
    | _ -> `Ok
  in
  Retry.run ?policy ~deadline ~classify attempt

let pp_stats ppf s =
  let lp = s.lp in
  Fmt.pf ppf
    "status=%s time=%.2fs rounds=%d nodes=%d c6=%d model=%dx%d%a@ \
     lp: pivots=%d dual-pivots=%d priced=%d refreshes=%d lp-time=%.2fs \
     warm: hits=%d misses=%d pivots-saved=%d evictions=%d \
     presolve: rounds=%d rows-dropped=%d bounds-tightened=%d"
    (match s.status with
     | Milp.Branch_bound.Optimal -> "optimal"
     | Milp.Branch_bound.Feasible -> "feasible(limit)"
     | Milp.Branch_bound.Infeasible -> "infeasible"
     | Milp.Branch_bound.Unbounded -> "unbounded"
     | Milp.Branch_bound.Unknown -> "unknown")
    s.time_s s.rounds s.nodes s.c6_constraints s.milp_vars s.milp_constraints
    Fmt.(option (fun ppf g -> pf ppf " gap=%.1f%%" (100.0 *. g)))
    s.gap lp.Milp.Branch_bound.lp_pivots lp.Milp.Branch_bound.lp_dual_pivots
    lp.Milp.Branch_bound.lp_pricing_scanned
    lp.Milp.Branch_bound.lp_pricing_refreshes lp.Milp.Branch_bound.lp_time_s
    lp.Milp.Branch_bound.lp_warm_hits lp.Milp.Branch_bound.lp_warm_misses
    lp.Milp.Branch_bound.lp_dual_pivots_saved
    lp.Milp.Branch_bound.lp_basis_evictions
    lp.Milp.Branch_bound.presolve_rounds
    lp.Milp.Branch_bound.presolve_rows_dropped
    lp.Milp.Branch_bound.presolve_bounds_tightened
