open Rt_model
open Let_sem

(* The paper's MILP (Section VI): memory allocation (adjacency AD /
   position PL variables), assignment of communications to ordered DMA
   transfer slots (CG / RG variables), LET ordering (Constraints 7-8),
   data-acquisition deadlines (Constraint 9) and Property 3 (Constraint
   10). Constraint 6 (contiguity of every transfer at every instant) can
   be generated upfront or lazily by {!Solve} (see DESIGN.md).

   Times inside the MILP are float microseconds (numerically friendlier
   than nanoseconds against big-M constants); the conversion happens only
   here. *)

module P = Milp.Problem
module L = Milp.Linexpr

type objective = No_obj | Min_transfers | Min_delay_ratio

let objective_name = function
  | No_obj -> "NO-OBJ"
  | Min_transfers -> "OBJ-DMAT"
  | Min_delay_ratio -> "OBJ-DEL"

type options = {
  g_max : int option; (* number of transfer slots; default |C(s0)| *)
  strict_property3 : bool;
      (* true (default): Constraint 10 bounds the last transfer of the
         instant; false: the paper's literal form (last LET read) *)
  compress_slots : bool; (* forbid a used slot after an empty one *)
  full_c6 : bool; (* generate every Constraint 6 instance upfront *)
}

let default_options =
  { g_max = None; strict_property3 = true; compress_slots = true; full_c6 = false }

(* Chain nodes for the adjacency encoding: two dummy labels delimit each
   memory's placement chain, as in the paper's Constraint 4. *)
type node = Bottom | Top | Lab of int

type instance = {
  app : App.t;
  groups : Groups.t;
  gamma : Time.t array;
  options : options;
  objective : objective;
  problem : P.t;
  comms : Comm.t array; (* C(s0) *)
  comm_index : int Comm.Map.t;
  classes : (int * Comm.direction) array;
  class_of : int array; (* comm index -> class index *)
  g_max : int;
  mems : Platform.memory array; (* memories holding labels *)
  mem_index : (Platform.memory, int) Hashtbl.t;
  mem_labels : int list array; (* real label ids per memory *)
  cg : int array array; (* [z].[g] binary *)
  u_slot : int array array; (* [g].[class] binary *)
  next_var : (int * node * node, int) Hashtbl.t; (* (mem, a, b): b right after a *)
  pl_var : (int * node, int) Hashtbl.t;
  ready_set : int list array; (* per task: comm indices defining readiness *)
  rg : int array array; (* [task].[g] binary; [||] when task has no comms *)
  lambda_var : int array; (* per task; -1 when absent *)
  lg_memo : (int * int * int, int) Hashtbl.t; (* (star label, z, g) -> var *)
  c6_done : (string, unit) Hashtbl.t; (* dedup of generated C6 blocks *)
  mutable vp_vars : (int * int list) list;
      (* Constraint 10 auxiliaries: (variable, relevant comm indices) *)
  lambda_o_us : float;
  omega_us_per_byte : float;
  total_bytes : int;
}

let us_of_time t = Time.to_us_float t

(* --- small accessors ------------------------------------------------ *)

let size_of inst z = Comm.size inst.app inst.comms.(z)

let cgi_expr inst z =
  L.of_list
    (List.init inst.g_max (fun g -> (float_of_int g, inst.cg.(z).(g))))

let rgi_expr inst i =
  L.of_list (List.init inst.g_max (fun g -> (float_of_int g, inst.rg.(i).(g))))

let node_name = function
  | Bottom -> "BOT"
  | Top -> "TOP"
  | Lab l -> string_of_int l

let next inst m a b =
  match Hashtbl.find_opt inst.next_var (m, a, b) with
  | Some v -> v
  | None -> invalid_arg "Formulation.next: no such adjacency variable"

let next_opt inst m a b = Hashtbl.find_opt inst.next_var (m, a, b)

let mem_idx inst m =
  match Hashtbl.find_opt inst.mem_index m with
  | Some i -> i
  | None -> invalid_arg "Formulation.mem_idx: memory holds no labels"

(* --- construction ---------------------------------------------------- *)

let find_class classes c =
  let rec go i = if classes.(i) = c then i else go (i + 1) in
  go 0

let build ?(options = default_options) objective app groups ~gamma =
  let comms = Array.of_list (Comm.Set.elements (Groups.s0 groups)) in
  let n_comms = Array.length comms in
  if n_comms = 0 then invalid_arg "Formulation.build: no inter-core communications";
  (* the encoding requires at most one reader per core for each label *)
  List.iter
    (fun (l : Label.t) ->
      let cores = List.map (App.core_of app) (App.inter_core_readers app l) in
      if List.length cores <> List.length (List.sort_uniq Int.compare cores) then
        invalid_arg
          (Fmt.str
             "Formulation.build: label %s has several readers on one core \
              (unsupported: they would share the local copy)"
             l.Label.name))
    (App.inter_core_labels app);
  let comm_index =
    Array.to_list comms
    |> List.mapi (fun i c -> (c, i))
    |> List.fold_left (fun m (c, i) -> Comm.Map.add c i m) Comm.Map.empty
  in
  let classes =
    Array.to_list comms
    |> List.map (fun c -> Comm.cls app c)
    |> List.sort_uniq compare |> Array.of_list
  in
  let class_of =
    Array.map (fun c -> find_class classes (Comm.cls app c)) comms
  in
  let g_max = match options.g_max with Some g -> g | None -> n_comms in
  if g_max < Array.length classes then
    invalid_arg "Formulation.build: g_max below the number of (memory, direction) classes";
  let platform = App.platform app in
  let lambda_o_us = us_of_time (Platform.lambda_o platform) in
  let omega_us_per_byte = platform.Platform.dma_ns_per_byte /. 1000.0 in
  let total_bytes =
    Array.to_list comms
    |> List.fold_left (fun acc c -> acc + Comm.size app c) 0
  in
  (* big-M large enough for Constraint 9's disabled branches *)
  let m9 =
    (float_of_int (g_max + 1) *. lambda_o_us)
    +. (omega_us_per_byte *. float_of_int total_bytes)
    +. 1.0
  in
  let problem = P.create ~big_m:m9 () in
  (* memories and their labels *)
  let mems =
    Platform.memories platform
    |> List.filter (fun m -> Mem_layout.Layout.expected_labels app m <> [])
    |> Array.of_list
  in
  let mem_index = Hashtbl.create 8 in
  Array.iteri (fun i m -> Hashtbl.replace mem_index m i) mems;
  let mem_labels =
    Array.map (fun m -> Mem_layout.Layout.expected_labels app m) mems
  in
  (* CG variables *)
  let cg =
    Array.init n_comms (fun z ->
        Array.init g_max (fun g ->
            P.binary ~name:(Fmt.str "CG_%d_%d" z g) problem))
  in
  (* slot-class variables *)
  let u_slot =
    Array.init g_max (fun g ->
        Array.init (Array.length classes) (fun k ->
            P.binary ~name:(Fmt.str "U_%d_%d" g k) problem))
  in
  (* adjacency and position variables per memory *)
  let next_var = Hashtbl.create 256 in
  let pl_var = Hashtbl.create 64 in
  Array.iteri
    (fun mi labels ->
      let nodes = Bottom :: Top :: List.map (fun l -> Lab l) labels in
      List.iter
        (fun a ->
          (match a with
           | Bottom ->
             ignore
               (Hashtbl.add pl_var (mi, a)
                  (P.continuous
                     ~name:(Fmt.str "PL_%d_%s" mi (node_name a))
                     ~lo:0.0 ~hi:0.0 problem))
           | Top ->
             let n = float_of_int (List.length labels + 1) in
             ignore
               (Hashtbl.add pl_var (mi, a)
                  (P.continuous
                     ~name:(Fmt.str "PL_%d_%s" mi (node_name a))
                     ~lo:n ~hi:n problem))
           | Lab _ ->
             ignore
               (Hashtbl.add pl_var (mi, a)
                  (P.continuous
                     ~name:(Fmt.str "PL_%d_%s" mi (node_name a))
                     ~lo:1.0
                     ~hi:(float_of_int (List.length labels))
                     problem)));
          List.iter
            (fun b ->
              (* b immediately after a: forbid self, into-Bottom, out-of-Top *)
              if a <> b && b <> Bottom && a <> Top
                 && not (a = Bottom && b = Top && labels <> [])
              then
                Hashtbl.add next_var (mi, a, b)
                  (P.binary
                     ~name:(Fmt.str "AD_%d_%s_%s" mi (node_name a) (node_name b))
                     problem))
            nodes)
        nodes)
    mem_labels;
  (* readiness sets: the paper's last-read when the task reads at s0, its
     writes otherwise (rule R1 makes write-only tasks wait for their own
     writes; with Constraint 7 the two coincide for tasks that read) *)
  let n_tasks = App.num_tasks app in
  let ready_set = Array.make n_tasks [] in
  let reads_of = Array.make n_tasks [] in
  let writes_of = Array.make n_tasks [] in
  Array.iteri
    (fun z (c : Comm.t) ->
      match c.Comm.kind with
      | Comm.Read -> reads_of.(c.Comm.task) <- z :: reads_of.(c.Comm.task)
      | Comm.Write -> writes_of.(c.Comm.task) <- z :: writes_of.(c.Comm.task))
    comms;
  for i = 0 to n_tasks - 1 do
    ready_set.(i) <- (if reads_of.(i) <> [] then reads_of.(i) else writes_of.(i))
  done;
  let rg =
    Array.init n_tasks (fun i ->
        if ready_set.(i) = [] then [||]
        else
          Array.init g_max (fun g ->
              P.binary ~name:(Fmt.str "RG_%d_%d" i g) problem))
  in
  let lambda_var =
    Array.init n_tasks (fun i ->
        if ready_set.(i) = [] then -1
        else
          P.continuous ~name:(Fmt.str "lambda_%d" i) ~lo:0.0
            ~hi:(us_of_time gamma.(i)) problem)
  in
  let inst =
    {
      app;
      groups;
      gamma;
      options;
      objective;
      problem;
      comms;
      comm_index;
      classes;
      class_of;
      g_max;
      mems;
      mem_index;
      mem_labels;
      cg;
      u_slot;
      next_var;
      pl_var;
      ready_set;
      rg;
      lambda_var;
      lg_memo = Hashtbl.create 256;
      c6_done = Hashtbl.create 64;
      vp_vars = [];
      lambda_o_us;
      omega_us_per_byte;
      total_bytes;
    }
  in
  inst

(* --- constraint groups ----------------------------------------------- *)

(* Constraint 1 + class consistency: each communication sits in exactly
   one slot, and a slot carries a single (memory, direction) class. *)
let add_c1_and_classes inst =
  let p = inst.problem in
  Array.iteri
    (fun z row ->
      ignore
        (P.add_constr ~name:(Fmt.str "C1_%d" z) p
           (L.of_list (Array.to_list (Array.map (fun v -> (1.0, v)) row)))
           P.Eq 1.0);
      (* CG_{z,g} <= U_{g, class(z)} *)
      Array.iteri
        (fun g v ->
          ignore
            (P.add_constr ~name:(Fmt.str "CLS_%d_%d" z g) p
               (L.sub (L.var v) (L.var inst.u_slot.(g).(inst.class_of.(z))))
               P.Le 0.0))
        row)
    inst.cg;
  Array.iteri
    (fun g urow ->
      ignore
        (P.add_constr ~name:(Fmt.str "CLS1_%d" g) p
           (L.of_list (Array.to_list (Array.map (fun v -> (1.0, v)) urow)))
           P.Le 1.0))
    inst.u_slot;
  if inst.options.compress_slots then
    (* a used slot may not follow an empty one: sum_z CG_{z,g+1} <= |C| sum_z CG_{z,g} *)
    for g = 0 to inst.g_max - 2 do
      let nc = float_of_int (Array.length inst.comms) in
      let lhs =
        L.of_list
          (Array.to_list (Array.map (fun row -> (1.0, row.(g + 1))) inst.cg))
      in
      let rhs =
        L.of_list (Array.to_list (Array.map (fun row -> (nc, row.(g))) inst.cg))
      in
      ignore
        (P.add_constr ~name:(Fmt.str "COMPRESS_%d" g) inst.problem
           (L.sub lhs rhs) P.Le 0.0)
    done

(* Constraints 2 and 3: RG is an indicator of the slot holding the last
   ready-relevant communication of each task. *)
let add_c2_c3 inst =
  let p = inst.problem in
  Array.iteri
    (fun i row ->
      if row <> [||] then begin
        ignore
          (P.add_constr ~name:(Fmt.str "C2_%d" i) p
             (L.of_list (Array.to_list (Array.map (fun v -> (1.0, v)) row)))
             P.Eq 1.0);
        (* RGI_i >= CGI_z for every ready-relevant z *)
        List.iter
          (fun z ->
            ignore
              (P.add_constr ~name:(Fmt.str "C3a_%d_%d" i z) p
                 (L.sub (rgi_expr inst i) (cgi_expr inst z))
                 P.Ge 0.0))
          inst.ready_set.(i);
        (* the chosen slot must contain at least one ready-relevant comm *)
        Array.iteri
          (fun g v ->
            let cover =
              L.of_list
                (List.map (fun z -> (1.0, inst.cg.(z).(g))) inst.ready_set.(i))
            in
            ignore
              (P.add_constr ~name:(Fmt.str "C3b_%d_%d" i g) p
                 (L.sub (L.var v) cover) P.Le 0.0))
          row
      end)
    inst.rg

(* Hash-table iteration order depends on internal layout, not on the
   model; emitting constraints (or decoding chains) in that order would
   make the constraint order — and with it the simplex trajectory and
   branch-and-bound node counts — vary between builds of the very same
   instance. Every iteration over a keyed table below goes through its
   sorted bindings instead. *)
let sorted_bindings tbl =
  List.sort
    (fun (k1, _) (k2, _) -> compare k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Constraints 4 and 5: each memory's labels form a single chain from the
   bottom dummy to the top dummy, with consistent positions. *)
let add_c4_c5 inst =
  let p = inst.problem in
  Array.iteri
    (fun mi labels ->
      let nodes = Bottom :: Top :: List.map (fun l -> Lab l) labels in
      let n = List.length labels in
      let bigm = float_of_int (n + 2) in
      (* out-degree: every node except Top has exactly one successor *)
      List.iter
        (fun a ->
          if a <> Top then begin
            let succs =
              List.filter_map (fun b -> next_opt inst mi a b) nodes
            in
            ignore
              (P.add_constr ~name:(Fmt.str "C4out_%d_%s" mi (node_name a)) p
                 (L.of_list (List.map (fun v -> (1.0, v)) succs))
                 P.Eq 1.0)
          end)
        nodes;
      (* in-degree: every node except Bottom has exactly one predecessor *)
      List.iter
        (fun b ->
          if b <> Bottom then begin
            let preds =
              List.filter_map (fun a -> next_opt inst mi a b) nodes
            in
            ignore
              (P.add_constr ~name:(Fmt.str "C4in_%d_%s" mi (node_name b)) p
                 (L.of_list (List.map (fun v -> (1.0, v)) preds))
                 P.Eq 1.0)
          end)
        nodes;
      (* position linking (MTZ): next(a,b) = 1 => PL_b = PL_a + 1 *)
      List.iter
        (fun ((mi', a, b), v) ->
          if mi' = mi then begin
            let pa = Hashtbl.find inst.pl_var (mi, a) in
            let pb = Hashtbl.find inst.pl_var (mi, b) in
            let diff = L.sub (L.var pb) (L.var pa) in
            P.add_implies_ge ~name:(Fmt.str "C5a_%d" v) ~m:bigm p v diff 1.0;
            P.add_implies_le ~name:(Fmt.str "C5b_%d" v) ~m:bigm p v diff 1.0
          end)
        (sorted_bindings inst.next_var))
    inst.mem_labels

(* Constraints 7 and 8: LET ordering at s0. *)
let add_c7_c8 inst =
  let p = inst.problem in
  let n_tasks = App.num_tasks inst.app in
  let writes = Array.make n_tasks [] and reads = Array.make n_tasks [] in
  Array.iteri
    (fun z (c : Comm.t) ->
      match c.Comm.kind with
      | Comm.Write -> writes.(c.Comm.task) <- z :: writes.(c.Comm.task)
      | Comm.Read -> reads.(c.Comm.task) <- z :: reads.(c.Comm.task))
    inst.comms;
  (* Property 1: CGI_w + 1 <= CGI_r for every write/read pair of a task *)
  for i = 0 to n_tasks - 1 do
    List.iter
      (fun w ->
        List.iter
          (fun r ->
            ignore
              (P.add_constr ~name:(Fmt.str "C7_%d_%d_%d" i w r) p
                 (L.sub (cgi_expr inst r) (cgi_expr inst w))
                 P.Ge 1.0))
          reads.(i))
      writes.(i)
  done;
  (* Property 2: per label, the write precedes every read *)
  Array.iteri
    (fun w (cw : Comm.t) ->
      if cw.Comm.kind = Comm.Write then
        Array.iteri
          (fun r (cr : Comm.t) ->
            if cr.Comm.kind = Comm.Read && cr.Comm.label = cw.Comm.label then
              ignore
                (P.add_constr ~name:(Fmt.str "C8_%d_%d" w r) p
                   (L.sub (cgi_expr inst r) (cgi_expr inst w))
                   P.Ge 1.0))
          inst.comms)
    inst.comms

(* Constraint 9: data-acquisition deadlines at s0. *)
let add_c9 inst =
  let p = inst.problem in
  let m9 = P.big_m p in
  Array.iteri
    (fun i row ->
      if row <> [||] then begin
        let lam = inst.lambda_var.(i) in
        for gbar = 0 to inst.g_max - 1 do
          (* lambda_i >= (RGI_i + 1) lambda_O
                         + omega * sum_{g<=gbar} sum_z sigma_z CG_{z,g}
                         - (1 - RG_{i,gbar}) M *)
          let copy_terms =
            List.concat
              (List.init (gbar + 1) (fun g ->
                   List.init
                     (Array.length inst.comms)
                     (fun z ->
                       ( inst.omega_us_per_byte *. float_of_int (size_of inst z),
                         inst.cg.(z).(g) ))))
          in
          let rhs =
            L.add
              (L.scale inst.lambda_o_us (L.add_const (rgi_expr inst i) 1.0))
              (L.of_list copy_terms)
          in
          let rhs = L.add_term rhs m9 row.(gbar) in
          (* lambda_i - rhs >= -M  <=>  lambda >= rhs - (1-RG) M *)
          ignore
            (P.add_constr ~name:(Fmt.str "C9_%d_%d" i gbar) p
               (L.sub (L.var lam) rhs) P.Ge (-.m9))
        done
        (* lambda_i <= gamma_i is the variable's upper bound *)
      end)
    inst.rg

(* Constraint 10 (Property 3): every pattern's burst fits in its tightest
   gap. In strict mode the last *transfer* is bounded (sound); the paper's
   literal form bounds the last LET read instead. Patterns dominated by a
   superset pattern with a smaller gap are pruned. *)
let add_c10 inst =
  let p = inst.problem in
  let patterns = Groups.patterns inst.groups in
  (* pa is implied by pb when pb covers at least pa's communications and
     must finish within at most pa's gap (patterns are distinct sets) *)
  let dominated (pa : Groups.pattern) =
    List.exists
      (fun (pb : Groups.pattern) ->
        pb != pa
        && Comm.Set.subset pa.Groups.comms pb.Groups.comms
        && Time.compare pb.Groups.min_gap pa.Groups.min_gap <= 0)
      patterns
  in
  List.iteri
    (fun pi (pat : Groups.pattern) ->
      if not (dominated pat) then begin
        let members =
          Comm.Set.elements pat.Groups.comms
          |> List.map (fun c -> Comm.Map.find c inst.comm_index)
        in
        let relevant =
          if inst.options.strict_property3 then members
          else
            List.filter
              (fun z -> inst.comms.(z).Comm.kind = Comm.Read)
              members
        in
        match relevant with
        | [] -> ()
        | _ ->
          let v =
            P.continuous ~name:(Fmt.str "VP_%d" pi) ~lo:0.0
              ~hi:(float_of_int (inst.g_max - 1))
              p
          in
          List.iter
            (fun z ->
              ignore
                (P.add_constr ~name:(Fmt.str "C10a_%d_%d" pi z) p
                   (L.sub (L.var v) (cgi_expr inst z))
                   P.Ge 0.0))
            relevant;
          let bytes =
            Comm.Set.elements pat.Groups.comms
            |> List.fold_left (fun acc c -> acc + Comm.size inst.app c) 0
          in
          let gap_us = us_of_time pat.Groups.min_gap in
          (* (V + 1) lambda_O + omega * bytes <= gap *)
          ignore
            (P.add_constr ~name:(Fmt.str "C10b_%d" pi) p
               (L.scale inst.lambda_o_us (L.add_const (L.var v) 1.0))
               P.Le
               (gap_us -. (inst.omega_us_per_byte *. float_of_int bytes)));
          inst.vp_vars <- (v, relevant) :: inst.vp_vars
      end)
    patterns

(* --- Constraint 6 ----------------------------------------------------- *)

(* LG^z_{star} at slot g: continuous in [0,1], upper-bounded by the three
   conjuncts (label(z) right below [star] in global AND in the class's
   local memory, and comm z in slot g). Appears only on >=-sides, so no
   lower bound is needed. *)
let lg_var inst ~star ~z ~g =
  match Hashtbl.find_opt inst.lg_memo (star, z, g) with
  | Some v -> v
  | None ->
    let p = inst.problem in
    let c = inst.comms.(z) in
    let lz = c.Comm.label in
    let mg = mem_idx inst Platform.Global in
    let ml =
      mem_idx inst
        (Platform.Local (Comm.local_core inst.app c))
    in
    let v =
      P.continuous ~name:(Fmt.str "LG_%d_%d_%d" star z g) ~lo:0.0 ~hi:1.0 p
    in
    (match next_opt inst mg (Lab lz) (Lab star) with
     | Some adj ->
       ignore (P.add_constr p (L.sub (L.var v) (L.var adj)) P.Le 0.0)
     | None -> P.set_bounds ~hi:0.0 p v);
    (match next_opt inst ml (Lab lz) (Lab star) with
     | Some adj ->
       ignore (P.add_constr p (L.sub (L.var v) (L.var adj)) P.Le 0.0)
     | None -> P.set_bounds ~hi:0.0 p v);
    ignore (P.add_constr p (L.sub (L.var v) (L.var inst.cg.(z).(g))) P.Le 0.0);
    Hashtbl.replace inst.lg_memo (star, z, g) v;
    v

(* Add the Constraint 6 instances for one (pattern, class): for each pair
   of same-class communications present in the pattern and every slot g,
   if both are in slot g then some pattern communication of the class must
   sit right below one of the two labels in both memories. *)
let add_c6_for inst (pat : Groups.pattern) cls =
  let key =
    Fmt.str "%d|%a" (find_class inst.classes cls)
      Fmt.(list ~sep:(any ",") Comm.pp_plain)
      (Comm.Set.elements pat.Groups.comms)
  in
  if Hashtbl.mem inst.c6_done key then 0
  else begin
    Hashtbl.replace inst.c6_done key ();
    let members =
      Comm.Set.elements pat.Groups.comms
      |> List.filter (fun c -> Comm.cls inst.app c = cls)
      |> List.map (fun c -> Comm.Map.find c inst.comm_index)
    in
    let added = ref 0 in
    let rec pairs = function
      | [] -> ()
      | zi :: rest ->
        List.iter
          (fun zj ->
            let la = inst.comms.(zi).Comm.label in
            let lb = inst.comms.(zj).Comm.label in
            for g = 0 to inst.g_max - 1 do
              let rhs_terms =
                List.concat_map
                  (fun z ->
                    let lz = inst.comms.(z).Comm.label in
                    let t1 =
                      if lz <> la then [ (1.0, lg_var inst ~star:la ~z ~g) ]
                      else []
                    in
                    let t2 =
                      if lz <> lb then [ (1.0, lg_var inst ~star:lb ~z ~g) ]
                      else []
                    in
                    t1 @ t2)
                  members
              in
              (* CG_i,g + CG_j,g - 1 <= sum LG *)
              ignore
                (P.add_constr
                   ~name:(Fmt.str "C6_%d_%d_%d" zi zj g)
                   inst.problem
                   (L.sub
                      (L.of_list [ (1.0, inst.cg.(zi).(g)); (1.0, inst.cg.(zj).(g)) ])
                      (L.of_list rhs_terms))
                   P.Le 1.0);
              incr added
            done)
          rest;
        pairs rest
    in
    pairs members;
    !added
  end

(* All Constraint 6 instances (the paper's full formulation). *)
let add_c6_full inst =
  let total = ref 0 in
  List.iter
    (fun (pat : Groups.pattern) ->
      Array.iter
        (fun cls -> total := !total + add_c6_for inst pat cls)
        inst.classes)
    (Groups.patterns inst.groups);
  !total

(* --- objective -------------------------------------------------------- *)

let set_objective inst =
  let p = inst.problem in
  match inst.objective with
  | No_obj -> P.set_objective p P.Minimize L.zero
  | Min_transfers ->
    (* Eq. (4): minimize max_i RGI_i *)
    let w =
      P.continuous ~name:"OBJ_W" ~lo:0.0 ~hi:(float_of_int (inst.g_max - 1)) p
    in
    Array.iteri
      (fun i row ->
        if row <> [||] then
          ignore
            (P.add_constr ~name:(Fmt.str "OBJ4_%d" i) p
               (L.sub (L.var w) (rgi_expr inst i))
               P.Ge 0.0))
      inst.rg;
    P.set_objective p P.Minimize (L.var w)
  | Min_delay_ratio ->
    (* Eq. (5): minimize max_i lambda_i / T_i *)
    let l = P.continuous ~name:"OBJ_L" ~lo:0.0 p in
    Array.iteri
      (fun i lam ->
        if lam >= 0 then begin
          let ti = us_of_time (App.task inst.app i).Task.period in
          ignore
            (P.add_constr ~name:(Fmt.str "OBJ5_%d" i) p
               (L.sub (L.var l) (L.var ~coeff:(1.0 /. ti) lam))
               P.Ge 0.0)
        end)
      inst.lambda_var;
    P.set_objective p P.Minimize (L.var l)

(* Build the whole model (without Constraint 6 unless [full_c6]). *)
let make ?options objective app groups ~gamma =
  let inst = build ?options objective app groups ~gamma in
  add_c1_and_classes inst;
  add_c2_c3 inst;
  add_c4_c5 inst;
  add_c7_c8 inst;
  add_c9 inst;
  add_c10 inst;
  if inst.options.full_c6 then ignore (add_c6_full inst);
  set_objective inst;
  inst

(* --- decoding --------------------------------------------------------- *)

let chain_order inst x mi =
  let bindings = sorted_bindings inst.next_var in
  let rec follow acc node =
    let nexts =
      List.filter_map
        (fun ((mi', a, b), v) ->
          if mi' = mi && a = node && x.(v) > 0.5 then Some b else None)
        bindings
    in
    match nexts with
    | [ Top ] -> List.rev acc
    | [ Lab l ] -> follow (l :: acc) (Lab l)
    | [] -> List.rev acc (* numerically degenerate: stop *)
    | _ -> List.rev acc
  in
  follow [] Bottom

let decode inst x =
  let orders =
    Array.to_list
      (Array.mapi (fun mi m -> (m, chain_order inst x mi)) inst.mems)
  in
  let allocation = Mem_layout.Allocation.make inst.app orders in
  let slots = Array.make inst.g_max [] in
  Array.iteri
    (fun z row ->
      Array.iteri
        (fun g v -> if x.(v) > 0.5 then slots.(g) <- inst.comms.(z) :: slots.(g))
        row)
    inst.cg;
  Solution.make ~allocation ~slots

(* --- encoding (warm starts, feasibility tests) ------------------------ *)

(* Build a full variable assignment from a solution; returns None when the
   solution does not fit the instance's slot count. *)
let encode inst (sol : Solution.t) =
  let x = Array.make (P.num_vars inst.problem) 0.0 in
  let alloc = Solution.allocation sol in
  (* adjacency + positions *)
  Array.iteri
    (fun mi m ->
      let layout = Mem_layout.Allocation.layout alloc m in
      let order = Mem_layout.Layout.order layout in
      let nodes = (Bottom :: List.map (fun l -> Lab l) order) @ [ Top ] in
      let rec mark = function
        | a :: (b :: _ as rest) ->
          (match next_opt inst mi a b with
           | Some v -> x.(v) <- 1.0
           | None -> ());
          mark rest
        | [ _ ] | [] -> ()
      in
      mark nodes;
      List.iteri
        (fun i l -> x.(Hashtbl.find inst.pl_var (mi, Lab l)) <- float_of_int (i + 1))
        order;
      x.(Hashtbl.find inst.pl_var (mi, Bottom)) <- 0.0;
      x.(Hashtbl.find inst.pl_var (mi, Top)) <- float_of_int (List.length order + 1))
    inst.mems;
  (* slots *)
  let plan = Solution.s0_plan inst.app sol in
  if List.length plan > inst.g_max then None
  else begin
    let slot_of_comm = Hashtbl.create 64 in
    List.iteri
      (fun g transfer ->
        List.iter
          (fun c -> Hashtbl.replace slot_of_comm (Comm.Map.find c inst.comm_index) g)
          transfer)
      plan;
    let ok = ref true in
    Array.iteri
      (fun z _ ->
        match Hashtbl.find_opt slot_of_comm z with
        | Some g ->
          x.(inst.cg.(z).(g)) <- 1.0;
          x.(inst.u_slot.(g).(inst.class_of.(z))) <- 1.0
        | None -> ok := false)
      inst.comms;
    if not !ok then None
    else begin
      (* RG / lambda *)
      let slot_sizes = Array.make inst.g_max 0 in
      List.iteri
        (fun g transfer ->
          slot_sizes.(g) <- Properties.transfer_bytes inst.app transfer)
        plan;
      Array.iteri
        (fun i row ->
          if row <> [||] then begin
            let last =
              List.fold_left
                (fun acc z -> max acc (Hashtbl.find slot_of_comm z))
                0 inst.ready_set.(i)
            in
            x.(row.(last)) <- 1.0;
            let copies = ref 0 in
            for g = 0 to last do
              copies := !copies + slot_sizes.(g)
            done;
            let lam =
              (float_of_int (last + 1) *. inst.lambda_o_us)
              +. (inst.omega_us_per_byte *. float_of_int !copies)
            in
            x.(inst.lambda_var.(i)) <- lam
          end)
        inst.rg;
      (* Constraint 6 auxiliaries (present when C6 blocks have been
         generated): LG_{star,z,g} is the exact conjunction of the two
         adjacency literals and CG_{z,g} *)
      List.iter
        (fun ((star, z, g), v) ->
          let c = inst.comms.(z) in
          let lz = c.Comm.label in
          let in_slot =
            match Hashtbl.find_opt slot_of_comm z with
            | Some g' -> g' = g
            | None -> false
          in
          if in_slot then begin
            let adj m =
              let layout = Mem_layout.Allocation.layout alloc m in
              Mem_layout.Layout.adjacent_below layout ~a:star ~b:lz
            in
            if
              adj Platform.Global
              && adj (Platform.Local (Comm.local_core inst.app c))
            then x.(v) <- 1.0
          end)
        (sorted_bindings inst.lg_memo);
      (* Constraint 10 auxiliaries: exactly the max slot index among their
         relevant communications *)
      List.iter
        (fun (v, relevant) ->
          let m =
            List.fold_left
              (fun acc z -> max acc (Hashtbl.find slot_of_comm z))
              0 relevant
          in
          x.(v) <- float_of_int m)
        inst.vp_vars;
      (* objective auxiliaries *)
      P.iter_vars
        (fun j _ _ ->
          let name = P.var_name inst.problem j in
          if name = "OBJ_W" then begin
            let w = ref 0.0 in
            Array.iter
              (fun row ->
                Array.iteri
                  (fun g v -> if row <> [||] && x.(v) > 0.5 then w := Float.max !w (float_of_int g))
                  (if row = [||] then [||] else row))
              inst.rg;
            x.(j) <- !w
          end
          else if name = "OBJ_L" then begin
            let l = ref 0.0 in
            Array.iteri
              (fun i lam ->
                if lam >= 0 then
                  l :=
                    Float.max !l
                      (x.(lam) /. us_of_time (App.task inst.app i).Task.period))
              inst.lambda_var;
            x.(j) <- !l
          end)
        inst.problem;
      Some x
    end
  end

let stats_string inst =
  Fmt.str "%d vars, %d constraints, %d slots, %d comms, %d classes"
    (P.num_vars inst.problem)
    (P.num_constrs inst.problem)
    inst.g_max (Array.length inst.comms)
    (Array.length inst.classes)
