open Rt_model
open Dma_sim

(* Plain-text rendering of the reproduced tables and figures. *)

let hr ppf width = Fmt.pf ppf "%s@," (String.make width '-')

(* Fig. 2 (one subplot): per task, the measured lambda of the proposed
   approach and its ratio against each baseline. *)
let fig2_subplot ppf app (r : Experiment.config_result) =
  let label =
    match r.Experiment.solver with
    | Experiment.Milp { objective; _ } -> Formulation.objective_name objective
    | Experiment.Heuristic -> "HEURISTIC"
  in
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "alpha=%.1f  %s  (%d DMA transfers at s0%a)@," r.Experiment.alpha
    label r.Experiment.num_transfers
    Fmt.(
      option (fun ppf s ->
          pf ppf ", solver: %.2fs %s" s.Solve.time_s
            (match s.Solve.status with
             | Milp.Branch_bound.Optimal -> "optimal"
             | Milp.Branch_bound.Feasible -> "feasible@limit"
             | _ -> "?")))
    r.Experiment.solve_stats;
  hr ppf 76;
  Fmt.pf ppf "%-6s %12s %12s %10s %10s %10s@," "task" "lambda(us)" "gamma(us)"
    "vs CPU" "vs DMA-A" "vs DMA-B";
  hr ppf 76;
  List.iter
    (fun (t : Task.t) ->
      let i = t.Task.id in
      let ours =
        (Experiment.metrics_of r Baselines.Proposed).Sim.lambda.(i)
      in
      Fmt.pf ppf "%-6s %12.1f %12.1f %10.3f %10.3f %10.3f@," t.Task.name
        (Time.to_us_float ours)
        (Time.to_us_float r.Experiment.gamma.(i))
        (Experiment.ratio r Baselines.Giotto_cpu i)
        (Experiment.ratio r Baselines.Giotto_dma_a i)
        (Experiment.ratio r Baselines.Giotto_dma_b i))
    (App.tasks app);
  hr ppf 76;
  Fmt.pf ppf "max improvement: %.1f%% vs CPU, %.1f%% vs DMA-A, %.1f%% vs DMA-B@,"
    (100.0 *. Experiment.best_improvement r Baselines.Giotto_cpu)
    (100.0 *. Experiment.best_improvement r Baselines.Giotto_dma_a)
    (100.0 *. Experiment.best_improvement r Baselines.Giotto_dma_b);
  Fmt.pf ppf "@]"

let fig2 ppf app results =
  Fmt.pf ppf "@[<v>== FIG 2: data-acquisition latency ratios (proposed / baseline) ==@,@,";
  List.iter
    (fun ((alpha, objective), res) ->
      match res with
      | Ok r -> Fmt.pf ppf "%a@," (fun ppf -> fig2_subplot ppf app) r
      | Error e ->
        Fmt.pf ppf "alpha=%.1f %s: FAILED (%s)@,@," alpha
          (Formulation.objective_name objective)
          (Experiment.error_to_string e))
    results;
  Fmt.pf ppf "@]"

let table1 ppf rows =
  Fmt.pf ppf "@[<v>== TABLE I: solver running times and DMA transfer counts ==@,";
  hr ppf 72;
  Fmt.pf ppf "%-10s %8s %14s %12s %-18s@," "objective" "alpha" "time" "#transfers"
    "status";
  hr ppf 72;
  List.iter
    (fun (row : Experiment.table1_row) ->
      Fmt.pf ppf "%-10s %8.1f %14s %12s %-18s@,"
        (Formulation.objective_name row.Experiment.objective)
        row.Experiment.t_alpha
        (match row.Experiment.time_s with
         | Some t -> Fmt.str "%.2fs" t
         | None -> "-")
        (match row.Experiment.transfers with
         | Some n -> string_of_int n
         | None -> "-")
        row.Experiment.status)
    rows;
  hr ppf 72;
  Fmt.pf ppf "@]"

(* CSV rendering of the Fig. 2 data (one row per task and configuration),
   for external plotting. *)
let fig2_csv ppf app results =
  Fmt.pf ppf
    "alpha,objective,task,period_us,gamma_us,lambda_proposed_us,lambda_cpu_us,lambda_dma_a_us,lambda_dma_b_us,ratio_cpu,ratio_dma_a,ratio_dma_b@.";
  List.iter
    (fun ((alpha, objective), res) ->
      match res with
      | Error e ->
        (* a failed cell must stay distinguishable from one never run:
           comment line, so CSV consumers skip it without guessing *)
        Fmt.pf ppf "# FAILED alpha=%.1f objective=%s reason=%s@." alpha
          (Formulation.objective_name objective)
          (Experiment.error_to_string e)
      | Ok (r : Experiment.config_result) ->
        List.iter
          (fun (t : Task.t) ->
            let i = t.Task.id in
            let lam a =
              Time.to_us_float (Experiment.metrics_of r a).Sim.lambda.(i)
            in
            Fmt.pf ppf "%.1f,%s,%s,%.1f,%.1f,%.3f,%.3f,%.3f,%.3f,%.5f,%.5f,%.5f@."
              alpha
              (Formulation.objective_name objective)
              t.Task.name
              (Time.to_us_float t.Task.period)
              (Time.to_us_float r.Experiment.gamma.(i))
              (lam Baselines.Proposed) (lam Baselines.Giotto_cpu)
              (lam Baselines.Giotto_dma_a) (lam Baselines.Giotto_dma_b)
              (Experiment.ratio r Baselines.Giotto_cpu i)
              (Experiment.ratio r Baselines.Giotto_dma_a i)
              (Experiment.ratio r Baselines.Giotto_dma_b i))
          (App.tasks app))
    results

let alpha_sweep ppf results =
  Fmt.pf ppf "@[<v>== ALPHA SWEEP: feasibility of the sensitivity-derived deadlines ==@,";
  List.iter
    (fun (alpha, res) ->
      match res with
      | Ok (r : Experiment.config_result) ->
        (* worst lambda_i / gamma_i across tasks: <= 1 means every
           data-acquisition deadline holds in simulation *)
        let m = Experiment.metrics_of r Baselines.Proposed in
        let worst = ref 0.0 in
        Array.iteri
          (fun i g ->
            if Time.compare g Time.zero > 0 then
              worst :=
                Float.max !worst
                  (float_of_int (Time.to_ns m.Sim.lambda.(i))
                  /. float_of_int (Time.to_ns g)))
          r.Experiment.gamma;
        Fmt.pf ppf "alpha=%.1f: feasible, %d transfers, max lambda/gamma %.4f@,"
          alpha r.Experiment.num_transfers !worst
      | Error e ->
        Fmt.pf ppf "alpha=%.1f: infeasible (%s)@," alpha
          (Experiment.error_to_string e))
    results;
  Fmt.pf ppf "@]"
