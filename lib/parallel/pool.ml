(* Fixed-size domain pool. One mutex/condition pair guards the queue;
   each future carries its own pair so awaiting never contends with
   submission. Worker domains exit only at shutdown, after draining the
   queue, so no submitted task is ever dropped. *)

module Token = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let cancelled t = Atomic.get t
end

type 'a state = Pending | Done of ('a, exn) result

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type task = Task : (unit -> 'a) * 'a future -> task

type t = {
  m : Mutex.t;
  c : Condition.t; (* queue became non-empty, or the pool is closing *)
  queue : task Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
  jobs : int;
}

let jobs t = t.jobs

let fulfil fut r =
  Mutex.lock fut.fm;
  fut.state <- Done r;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let run_task (Task (f, fut)) =
  let r = try Ok (f ()) with e -> Error e in
  fulfil fut r

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.c t.m
  done;
  if Queue.is_empty t.queue then begin
    (* closing and drained *)
    Mutex.unlock t.m
  end
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.m;
    run_task task;
    worker_loop t
  end

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Fmt.str "Pool.create: jobs must be >= 1, got %d" j)
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      m = Mutex.create ();
      c = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [||];
      jobs;
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let async t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  Mutex.lock t.m;
  if t.closing then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.async: pool is shut down"
  end;
  Queue.push (Task (f, fut)) t.queue;
  Condition.signal t.c;
  Mutex.unlock t.m;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
    | Done r -> r
  in
  let r = wait () in
  Mutex.unlock fut.fm;
  r

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

let map t f xs =
  let futures = List.map (fun x -> async t (fun () -> f x)) xs in
  List.map await futures

let shutdown t =
  Mutex.lock t.m;
  let first = not t.closing in
  t.closing <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  if first then Array.iter Domain.join t.workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
