(* Fixed-size supervised domain pool. One mutex/condition pair guards the
   queue; each future carries its own pair so awaiting never contends
   with submission. Worker domains exit only at shutdown, after draining
   the queue.

   Supervision: a task exception is normally funneled into the task's
   future ([Error]); an exception that escapes the funnel — [Poison] by
   construction, or anything thrown by the pool machinery itself — kills
   the worker's domain body. The spawn wrapper catches it as the domain's
   last act: the in-flight task is re-enqueued (if it has crash retries
   left) or failed with [Worker_crashed], a replacement domain is spawned
   (so the pool never silently loses capacity), and the domain exits
   normally — [Domain.join] in [shutdown] therefore never raises and
   [await] never deadlocks on a dead worker's task. *)

let src = Logs.Src.create "parallel.pool" ~doc:"supervised domain pool"

module Log = (val Logs.src_log src : Logs.LOG)

module Token = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let cancelled t = Atomic.get t
end

exception Poison of string

exception Worker_crashed of { worker : int; cause : string }

let () =
  Printexc.register_printer (function
    | Poison m -> Some (Fmt.str "Pool.Poison(%s)" m)
    | Worker_crashed { worker; cause } ->
      Some (Fmt.str "Pool.Worker_crashed(worker %d: %s)" worker cause)
    | _ -> None)

type 'a state = Pending | Done of ('a, exn) result

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type task =
  | Task : {
      f : unit -> 'a;
      fut : 'a future;
      mutable retries : int;  (* crash re-enqueues left *)
    }
      -> task

type t = {
  m : Mutex.t;
  c : Condition.t; (* queue became non-empty, or the pool is closing *)
  queue : task Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array; (* current generation, per slot *)
  mutable all : unit Domain.t list; (* every domain ever spawned *)
  inflight : task option array; (* per-slot, guarded by [m] *)
  mutable live : int; (* workers currently running *)
  mutable crashes : int;
  jobs : int;
}

let jobs t = t.jobs

let crashes t =
  Mutex.lock t.m;
  let n = t.crashes in
  Mutex.unlock t.m;
  n

let fulfil fut r =
  Mutex.lock fut.fm;
  fut.state <- Done r;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

(* The exception funnel. [Poison] deliberately escapes it — that is the
   fault-injection (and, for machinery bugs, the honest-failure) path the
   supervisor exists for. *)
let run_task (Task tk) =
  let r =
    match tk.f () with
    | v -> Ok v
    | exception (Poison _ as p) -> raise p
    | exception e -> Error e
  in
  fulfil tk.fut r

let rec worker_loop t slot =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.c t.m
  done;
  if Queue.is_empty t.queue then begin
    (* closing and drained *)
    Mutex.unlock t.m
  end
  else begin
    let task = Queue.pop t.queue in
    t.inflight.(slot) <- Some task;
    Mutex.unlock t.m;
    run_task task;
    Mutex.lock t.m;
    t.inflight.(slot) <- None;
    Mutex.unlock t.m;
    worker_loop t slot
  end

(* Fail every queued task: last-resort path when a replacement domain
   cannot be spawned and no worker remains to drain the queue. Caller
   holds [t.m]. *)
let fail_queue t slot cause =
  Queue.iter
    (fun (Task tk) ->
      fulfil tk.fut (Error (Worker_crashed { worker = slot; cause })))
    t.queue;
  Queue.clear t.queue

(* Runs on the dying domain, as its last act: settle the in-flight task,
   restore pool capacity, exit cleanly (so joins never raise). *)
let rec handle_crash t slot cause =
  let cause_s = Printexc.to_string cause in
  Mutex.lock t.m;
  t.crashes <- t.crashes + 1;
  t.live <- t.live - 1;
  (match t.inflight.(slot) with
   | None -> ()
   | Some (Task tk as task) ->
     t.inflight.(slot) <- None;
     if tk.retries > 0 then begin
       tk.retries <- tk.retries - 1;
       Queue.push task t.queue;
       Condition.signal t.c
     end
     else
       fulfil tk.fut
         (Error (Worker_crashed { worker = slot; cause = cause_s })));
  let want_respawn = (not t.closing) || not (Queue.is_empty t.queue) in
  if want_respawn then begin
    match spawn_worker t slot with
    | d ->
      t.workers.(slot) <- d;
      t.all <- d :: t.all;
      t.live <- t.live + 1
    | exception _ ->
      if t.live = 0 then fail_queue t slot cause_s
  end;
  Mutex.unlock t.m;
  Obs.point ~cat:"pool" "worker.respawn"
    [ ("worker", Obs.Int slot); ("cause", Obs.Str cause_s) ];
  Log.warn (fun f ->
      f "pool: worker %d died (%s)%s" slot cause_s
        (if want_respawn then "; respawned" else ""))

and spawn_worker t slot =
  Domain.spawn (fun () ->
      try worker_loop t slot with cause -> handle_crash t slot cause)

let validate_jobs j =
  if j >= 1 then Ok j else Error (Fmt.str "jobs must be >= 1, got %d" j)

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> (
      match validate_jobs j with
      | Ok j -> j
      | Error m -> invalid_arg ("Pool.create: " ^ m))
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      m = Mutex.create ();
      c = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [||];
      all = [];
      inflight = Array.make jobs None;
      live = 0;
      crashes = 0;
      jobs;
    }
  in
  t.workers <- Array.init jobs (fun slot -> spawn_worker t slot);
  t.all <- Array.to_list t.workers;
  t.live <- jobs;
  t

let async ?(retry_on_crash = 0) t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  Mutex.lock t.m;
  if t.closing then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.async: pool is shut down"
  end;
  Queue.push (Task { f; fut; retries = max 0 retry_on_crash }) t.queue;
  Condition.signal t.c;
  Mutex.unlock t.m;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
    | Done r -> r
  in
  let r = wait () in
  Mutex.unlock fut.fm;
  r

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

let map t f xs =
  let futures = List.map (fun x -> async t (fun () -> f x)) xs in
  List.map await futures

let shutdown t =
  Mutex.lock t.m;
  let first = not t.closing in
  t.closing <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  if first then begin
    (* Crash handlers may register replacement domains while we join, so
       iterate until the spawned set is stable. A replacement is always
       added to [t.all] before its predecessor's body finishes, hence
       before the predecessor's join returns — no new domain can appear
       after a round that found nothing left to join. *)
    let joined = ref [] in
    let rec drain () =
      Mutex.lock t.m;
      let pending =
        List.filter (fun d -> not (List.memq d !joined)) t.all
      in
      Mutex.unlock t.m;
      match pending with
      | [] -> ()
      | ds ->
        List.iter
          (fun d ->
            Domain.join d;
            joined := d :: !joined)
          ds;
        drain ()
    in
    drain ()
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
