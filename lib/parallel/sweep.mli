(** Batch sweep runner: farm independent instances over a domain pool
    under one shared absolute deadline.

    Unlike {!Portfolio}, which races many configs on {e one} problem,
    a sweep maps one function over {e many} independent instances —
    parameter sweeps ([fig2] utilisation points, [alpha] grids), batch
    experiment runs — and carves the global time budget into per-item
    deadlines so early items cannot starve late ones. *)

type ('a, 'b) outcome = {
  item : 'a;
  result : ('b, exn) result;  (** [Error e] = the item's function raised *)
  deadline : float;  (** absolute per-item deadline the item ran under *)
  time_s : float;  (** wall time the item actually took *)
}

(** Per-domain hand-off slot for chaining state between consecutive
    sweep items that run on the same worker domain — used to pass an
    optimal simplex basis ({!Milp.Simplex_core.Basis}) from one
    configuration's solve to the next so adjacent LPs warm-start.
    Values never cross domains (the slot lives in domain-local
    storage), so no synchronization is involved; with [jobs = 1] the
    chain order equals item order and sweeps stay deterministic. *)
module Chain : sig
  type 'a t

  val create : unit -> 'a t

  val take : 'a t -> 'a option
  (** [take t] consumes the calling domain's chained value, leaving the
      slot empty ([None] if nothing was put since the last take). *)

  val put : 'a t -> 'a -> unit
  (** [put t v] stores [v] in the calling domain's slot for the next
      item on this domain to {!take}. *)
end

(** [map f items] runs [f ~deadline item] for every item on a pool,
    returning outcomes in input order.

    - [jobs] (default [Domain.recommended_domain_count ()]) sizes the
      pool when [pool] is not supplied;
    - [deadline] is the shared absolute ({!Milp.Clock}) budget. Each
      item receives [min deadline (now +. remaining /. waves)], where
      [waves] is the number of pool-width batches the {e unstarted}
      items still form — so the remaining budget is split fairly among
      the work left, and slack released by fast items flows to later
      ones. Without [deadline] every item gets [infinity].

    Item exceptions are funneled into their outcome ([Error]); one
    crashing instance never aborts the sweep. The only exception that is
    {e not} funneled is {!Pool.Poison}, which keeps its pool-level
    meaning — it kills the worker domain so supervision (respawn +
    crash retry) takes over, exactly as for any other pool task. If the pool machinery
    itself fails (e.g. submission on a shut-down pool), the outcome is
    [Error] with the global deadline (or [infinity]) recorded — the
    [deadline] field is always well-defined, never NaN.

    [retry_on_crash] (default 1) is handed to {!Pool.async}: an item
    whose worker {e domain} dies is transparently re-enqueued that many
    times before its outcome becomes [Error Worker_crashed] (detect with
    {!crashed}). Note a retried item re-carves its deadline when it
    re-runs. *)
val map :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?deadline:float ->
  ?retry_on_crash:int ->
  (deadline:float -> 'a -> 'b) ->
  'a list ->
  ('a, 'b) outcome list

val crashed : ('a, 'b) outcome -> bool
(** The item's worker domain died and its crash-retry budget ran out
    ([result] is [Error Pool.Worker_crashed]). *)
