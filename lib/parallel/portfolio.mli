(** Portfolio racing for MILP solves: diversified solver configurations
    attack the {e same} problem concurrently across domains.

    Each worker runs one {!config} — an engine (best-first
    {!Milp.Branch_bound} or depth-first {!Milp.Dfs_solver}), a branching
    perturbation seed and a warm/cold start choice — against the same
    absolute monotonic deadline. Workers cooperate through a shared
    atomic incumbent cell: any worker's new incumbent immediately
    tightens every other worker's pruning cutoff (counted in {!stats} as
    incumbent exchanges, and by the engines as
    [Branch_bound.stats.foreign_prunes]), and the first worker to reach
    a {e conclusive} status — proven optimality, infeasibility or
    unboundedness — cancels the rest.

    Thread-confinement contract: each worker builds its own simplex
    state; the input [Problem.t] is shared {e read-only} (its [Vec]s and
    persistent [Linexpr]s are only mutated by model-building calls, which
    must not run while [solve] is in flight — the lazy Constraint-6
    driver in [Letdma.Solve] mutates the model strictly {e between}
    portfolio rounds).

    {b Deterministic mode} ([deterministic:true]) makes the returned
    solution bit-identical across runs at any jobs count: the config
    list is fixed (independent of the pool size), incumbent sharing and
    early cancellation are disabled so every config's search trajectory
    is exactly its sequential one, and the winner is chosen by a fixed
    tie-break (lowest-index config with status [Optimal]; see
    {!val-solve}). The guarantee holds provided the budget lets the
    designated configs finish — under a binding deadline the set of
    finished configs depends on scheduling. *)

type engine = Best_first | Depth_first

type config = {
  name : string;
  engine : engine;
  branch_seed : int;  (** branching-order perturbation; 0 = classic rule *)
  use_warm : bool;  (** receive the caller's warm incumbent at start *)
  pricing : Milp.Simplex.pricing;  (** LP entering-variable rule *)
}

(** The default diversified panel: engines alternate, seeds differ, the
    first pair starts warm and the second cold; devex pricing dominates,
    with every fourth worker on Dantzig. *)
val default_configs : jobs:int -> config list

(** Per-worker outcome, in config order. *)
type report = {
  config : config;
  status : Milp.Branch_bound.status;
  obj : float option;
  nodes : int;
  time_s : float;
  foreign_prunes : int;  (** prunes on another worker's incumbent *)
  imported : int;  (** incumbents this worker pulled from the cell *)
  published : int;  (** incumbents this worker pushed to the cell *)
  crashed : bool;
      (** this config produced no solution — its worker domain died (and
          its crash-retry budget ran out) or its task raised *)
}

type stats = {
  winner : int option;  (** index into [reports] of the accepted worker *)
  reports : report list;
  incumbents_published : int;  (** cell updates, all workers + warm seed *)
  incumbents_imported : int;  (** cell reads that reached a worker *)
  foreign_prunes : int;  (** total cross-worker prune events *)
  time_s : float;
  jobs : int;
  deterministic : bool;
  worker_crashes : int;
      (** worker-domain deaths the pool supervisor handled during this
          race (respawn + retry, see {!Pool}) — can exceed the number of
          [crashed] reports when retries succeeded *)
}

val pp_stats : Format.formatter -> stats -> unit

type result = { solution : Milp.Branch_bound.solution; stats : stats }

(** [solve p] races the configs over [p].

    - [jobs] (default [Domain.recommended_domain_count ()]) sizes the
      worker pool when [pool] is not supplied;
    - [configs] defaults to {!default_configs} over the jobs count — or
      over a {e fixed} panel of 4 in deterministic mode, so the racing
      width never changes the answer;
    - [deadline] (absolute, {!Milp.Clock}) is handed verbatim to every
      worker; [time_limit_s] (default 60) is the relative fallback;
    - [incumbent] warm-starts the [use_warm] configs and, in
      non-deterministic mode, pre-seeds the shared cell so every worker
      starts with the same cutoff;
    - [cancel] is an external abort switch: cancelling it stops every
      worker at its next node (the race's own first-conclusive
      cancellation still applies on top). In deterministic mode the
      token is still polled, but cancelling it obviously forfeits the
      bit-identity guarantee for that run;
    - [presolve] (default [true]) runs {!Milp.Presolve} once at the root
      and hands every worker the reduced problem with its own presolve
      disabled (the reduction is deterministic, so this also preserves
      deterministic-mode bit-identity); the reductions are reported in
      the winning solution's [stats.lp]. A presolve infeasibility proof
      returns [Infeasible] without launching any worker.
    - [chaos] is a fault-injection hook called with the worker's config
      index at task start, before any solving; raising {!Pool.Poison}
      from it kills that worker's domain. Each worker task is submitted
      with one crash retry, so a one-shot injection (track "already
      poisoned" in the hook) still yields a completed solve — the
      supervisor respawns the domain and re-runs the config. Test-only.

    Crash handling: a worker whose domain dies (out of retries) is
    reported with [crashed = true] and status [Unknown]; the race
    completes on the surviving workers. Only if {e every} worker
    crashed is the first exception re-raised.

    Winner selection: non-deterministic mode returns the first worker
    with a conclusive status (cancelling the rest), else the best
    incumbent in the problem's sense, ties to the lowest config index.
    Deterministic mode returns the lowest-index config reporting
    [Optimal], else best incumbent / lowest index, else the most
    informative failure status. *)
val solve :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?configs:config list ->
  ?deterministic:bool ->
  ?cancel:Pool.Token.t ->
  ?deadline:float ->
  ?time_limit_s:float ->
  ?node_limit:int ->
  ?incumbent:float array ->
  ?presolve:bool ->
  ?chaos:(int -> unit) ->
  Milp.Problem.t ->
  result
