(* Deadline carving: each item, as it starts, takes an equal share of
   the time remaining for the waves of work still unstarted. [unstarted]
   is decremented with a single atomic fetch-and-add, so the carve is
   race-free without a lock. *)

type ('a, 'b) outcome = {
  item : 'a;
  result : ('b, exn) result;
  deadline : float;
  time_s : float;
}

let carve ~global ~unstarted ~jobs =
  match global with
  | None -> infinity
  | Some g ->
    (* this item is one of [left] unstarted ones (itself included) *)
    let left = max 1 (Atomic.fetch_and_add unstarted (-1)) in
    let waves = (left + jobs - 1) / jobs in
    let now = Milp.Clock.now () in
    let remaining = Float.max 0.0 (g -. now) in
    Float.min g (now +. (remaining /. float_of_int waves))

(* Per-domain hand-off slot for chaining state (e.g. an optimal simplex
   basis) between consecutive items that happen to run on the same
   worker domain. Domain-local by construction: no cross-domain sharing,
   no synchronization, and at jobs=1 the chain order equals item order,
   so sequential sweeps stay deterministic. *)
module Chain = struct
  type 'a t = 'a option ref Domain.DLS.key

  let create () = Domain.DLS.new_key (fun () -> ref None)

  let take k =
    let r = Domain.DLS.get k in
    let v = !r in
    r := None;
    v

  let put k v = Domain.DLS.get k := Some v
end

let crashed o =
  match o.result with Error (Pool.Worker_crashed _) -> true | _ -> false

let map ?pool ?jobs ?deadline ?(retry_on_crash = 1) f items =
  let with_p g =
    match pool with Some pl -> g pl | None -> Pool.with_pool ?jobs g
  in
  with_p @@ fun pl ->
  let jobs = Pool.jobs pl in
  let unstarted = Atomic.make (List.length items) in
  (* Items that never ran (pool machinery failure: submission on a dead
     pool, a lost future) still get a well-defined deadline — the global
     one they would have carved from. A NaN here would poison downstream
     reports and serialize as invalid JSON. *)
  let fallback = match deadline with Some g -> g | None -> infinity in
  let futures =
    List.map
      (fun item ->
        try
          Ok
            (Pool.async ~retry_on_crash pl (fun () ->
                 let d = carve ~global:deadline ~unstarted ~jobs in
                 Obs.point ~cat:"sweep" "carve"
                   [
                     ("deadline_s", Obs.Float d);
                     ("budget_s", Obs.Float (d -. Milp.Clock.now ()));
                   ];
                 let t0 = Milp.Clock.now () in
                 let result =
                   Obs.span ~cat:"sweep" "item" (fun () ->
                       try Ok (f ~deadline:d item)
                       with
                       (* [Poison] must keep its pool-level meaning — kill
                          the worker domain so supervision (respawn +
                          [retry_on_crash]) takes over — not be funneled
                          into the outcome like an item failure *)
                       | Pool.Poison _ as e -> raise e
                       | e -> Error e)
                 in
                 (result, d, Milp.Clock.now () -. t0)))
        with e -> Error e)
      items
  in
  List.map2
    (fun item fut ->
      match fut with
      | Error e -> { item; result = Error e; deadline = fallback; time_s = 0.0 }
      | Ok fut -> (
        match Pool.await fut with
        | Ok (result, deadline, time_s) -> { item; result; deadline; time_s }
        | Error e ->
          (* pool machinery itself failed *)
          { item; result = Error e; deadline = fallback; time_s = 0.0 }))
    items futures
