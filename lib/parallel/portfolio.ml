(* Portfolio racing over the two branch-and-bound engines.

   Cooperation is a single lock-free cell holding the best known
   (objective, solution) pair: workers publish improvements with a CAS
   loop through Branch_bound.hooks.on_incumbent and poll it at every
   node through get_incumbent. The cell stores immutable pairs — arrays
   are copied on publish (by the engines' incumbent bookkeeping) and on
   import (by the engines), so no array is ever written by two domains.

   The input Problem.t is shared read-only; see portfolio.mli for the
   confinement contract. *)

let src = Logs.Src.create "parallel.portfolio" ~doc:"MILP portfolio racing"

module Log = (val Logs.src_log src : Logs.LOG)

type engine = Best_first | Depth_first

type config = {
  name : string;
  engine : engine;
  branch_seed : int;
  use_warm : bool;
  pricing : Milp.Simplex.pricing;
}

let engine_name = function Best_first -> "bf" | Depth_first -> "dfs"

let make_config ?(pricing = Milp.Simplex.Devex) i engine use_warm =
  {
    name =
      Fmt.str "%s-s%d-%s-%s" (engine_name engine) i
        (if use_warm then "warm" else "cold")
        (Milp.Simplex.pricing_name pricing);
    engine;
    branch_seed = i;
    use_warm;
    pricing;
  }

(* Engines alternate; the first pair starts warm (sprint from the
   heuristic incumbent), the second cold (unbiased search); beyond four,
   alternate warm/cold with fresh seeds. Devex pricing dominates the
   panel; every fourth worker runs Dantzig so a pathology of the devex
   trajectory cannot stall the whole portfolio. *)
let default_configs ~jobs =
  List.init (max 1 jobs) (fun i ->
      let engine = if i mod 2 = 0 then Best_first else Depth_first in
      let use_warm = if i < 4 then i < 2 else i mod 2 = 0 in
      let pricing =
        if i mod 4 = 3 then Milp.Simplex.Dantzig else Milp.Simplex.Devex
      in
      make_config ~pricing i engine use_warm)

type report = {
  config : config;
  status : Milp.Branch_bound.status;
  obj : float option;
  nodes : int;
  time_s : float;
  foreign_prunes : int;
  imported : int;
  published : int;
  crashed : bool;
}

type stats = {
  winner : int option;
  reports : report list;
  incumbents_published : int;
  incumbents_imported : int;
  foreign_prunes : int;
  time_s : float;
  jobs : int;
  deterministic : bool;
  worker_crashes : int;
}

type result = { solution : Milp.Branch_bound.solution; stats : stats }

let status_name = function
  | Milp.Branch_bound.Optimal -> "optimal"
  | Milp.Branch_bound.Feasible -> "feasible"
  | Milp.Branch_bound.Infeasible -> "infeasible"
  | Milp.Branch_bound.Unbounded -> "unbounded"
  | Milp.Branch_bound.Unknown -> "unknown"

let pp_stats ppf s =
  Fmt.pf ppf
    "jobs=%d%s%s time=%.2fs winner=%s exchanges=%d published/%d imported \
     foreign-prunes=%d@ [%a]"
    s.jobs
    (if s.deterministic then " (deterministic)" else "")
    (if s.worker_crashes > 0 then Fmt.str " crashes=%d" s.worker_crashes
     else "")
    s.time_s
    (match s.winner with
     | Some i -> (List.nth s.reports i).config.name
     | None -> "-")
    s.incumbents_published s.incumbents_imported s.foreign_prunes
    Fmt.(
      list ~sep:(any ";@ ") (fun ppf r ->
          pf ppf "%s:%s%a" r.config.name (status_name r.status)
            (option (fun ppf o -> pf ppf "(%g)" o))
            r.obj))
    s.reports

let conclusive = function
  | Milp.Branch_bound.Optimal | Milp.Branch_bound.Infeasible
  | Milp.Branch_bound.Unbounded ->
    true
  | Milp.Branch_bound.Feasible | Milp.Branch_bound.Unknown -> false

let solve ?pool ?jobs ?configs ?(deterministic = false) ?cancel ?deadline
    ?(time_limit_s = 60.0) ?node_limit ?incumbent ?(presolve = true) ?chaos
    (p0 : Milp.Problem.t) : result =
  let t0 = Milp.Clock.now () in
  let deadline =
    match deadline with Some d -> d | None -> t0 +. time_limit_s
  in
  let with_p f =
    match pool with Some pl -> f pl | None -> Pool.with_pool ?jobs f
  in
  with_p @@ fun pl ->
  let jobs = Pool.jobs pl in
  let configs =
    match configs with
    | Some (_ :: _ as cs) -> cs
    | Some [] | None ->
      (* deterministic mode pins the panel width so the jobs count can
         never change the answer *)
      default_configs ~jobs:(if deterministic then 4 else jobs)
  in
  let dir, obj_expr = Milp.Problem.objective p0 in
  let sense =
    match dir with Milp.Problem.Minimize -> 1.0 | Milp.Problem.Maximize -> -1.0
  in
  (* Presolve once at the root and hand every worker the reduced problem
     (same variable ids, unchanged feasible set) — running it per worker
     would only duplicate deterministic work. Workers are then launched
     with [~presolve:false]; the root reductions are re-attached to the
     winning solution's stats below. *)
  let presolve_outcome =
    if presolve then Milp.Presolve.run p0
    else (Milp.Presolve.Reduced p0, Milp.Branch_bound.no_presolve_stats)
  in
  match presolve_outcome with
  | Milp.Presolve.Infeasible row, pre ->
    Log.info (fun f -> f "portfolio: presolve proved infeasibility (%s)" row);
    let lp =
      Milp.Branch_bound.lp_of_counters (Milp.Simplex_core.fresh_counters ())
        ~lp_time_s:0.0 ~presolve:pre
    in
    let time_s = Milp.Clock.now () -. t0 in
    {
      solution =
        {
          Milp.Branch_bound.status = Milp.Branch_bound.Infeasible;
          obj = None;
          x = None;
          stats =
            {
              Milp.Branch_bound.nodes = 0;
              simplex_solves = 0;
              time_s;
              best_bound = (if sense > 0.0 then infinity else neg_infinity);
              gap = None;
              foreign_prunes = 0;
              lp;
            };
        };
      stats =
        {
          winner = None;
          reports = [];
          incumbents_published = 0;
          incumbents_imported = 0;
          foreign_prunes = 0;
          time_s;
          jobs;
          deterministic;
          worker_crashes = 0;
        };
    }
  | Milp.Presolve.Reduced p, pre ->
  let cell : (float * float array) option Atomic.t = Atomic.make None in
  let published = Atomic.make 0 in
  let imported = Atomic.make 0 in
  (* pre-seed the shared cell so every worker starts from the same
     cutoff; the warm incumbent is validated first — a portfolio must
     not launder an infeasible vector into every engine *)
  (match incumbent with
   | Some x
     when (not deterministic) && Milp.Problem.check_solution ~eps:1.0e-6 p x = []
     ->
     Atomic.set cell (Some (Milp.Linexpr.eval obj_expr x, Array.copy x));
     Atomic.incr published
   | Some _ | None -> ());
  let token = Pool.Token.create () in
  let winner = Atomic.make (-1) in
  let externally_cancelled () =
    match cancel with Some c -> Pool.Token.cancelled c | None -> false
  in
  let run_one i cfg =
    (* fault injection: a [Pool.Poison] raised here escapes the pool's
       exception funnel and kills this worker's domain, exercising the
       supervisor's respawn + re-enqueue path *)
    (match chaos with Some inject -> inject i | None -> ());
    Obs.span ~cat:"portfolio" "worker"
      ~fields:
        [
          ("name", Obs.Str cfg.name);
          ("engine", Obs.Str (engine_name cfg.engine));
          ("seed", Obs.Int cfg.branch_seed);
          ("warm", Obs.Bool cfg.use_warm);
          ("pricing", Obs.Str (Milp.Simplex.pricing_name cfg.pricing));
        ]
    @@ fun () ->
    let local_imported = ref 0 and local_published = ref 0 in
    let last = ref None in
    let hooks =
      if deterministic then
        {
          Milp.Branch_bound.no_hooks with
          should_stop = externally_cancelled;
        }
      else
        {
          Milp.Branch_bound.should_stop =
            (fun () ->
              Pool.Token.cancelled token || externally_cancelled ());
          on_incumbent =
            (fun ~obj x ->
              let rec publish () =
                let cur = Atomic.get cell in
                let better =
                  match cur with
                  | None -> true
                  | Some (o, _) -> sense *. obj < (sense *. o) -. 1.0e-9
                in
                if better then begin
                  let next = Some (obj, x) in
                  if Atomic.compare_and_set cell cur next then begin
                    last := next;
                    incr local_published;
                    Atomic.incr published;
                    Obs.point ~cat:"portfolio" "publish"
                      [ ("worker", Obs.Str cfg.name); ("obj", Obs.Float obj) ]
                  end
                  else publish ()
                end
              in
              publish ());
          get_incumbent =
            (fun () ->
              let cur = Atomic.get cell in
              if cur == !last then None
              else begin
                last := cur;
                match cur with
                | None -> None
                | Some _ as found ->
                  incr local_imported;
                  Atomic.incr imported;
                  (match found with
                   | Some (o, _) ->
                     Obs.point ~cat:"portfolio" "import"
                       [ ("worker", Obs.Str cfg.name); ("obj", Obs.Float o) ]
                   | None -> ());
                  found
              end);
          on_node = Milp.Branch_bound.no_hooks.Milp.Branch_bound.on_node;
          on_basis = Milp.Branch_bound.no_hooks.Milp.Branch_bound.on_basis;
        }
    in
    let hooks = Obs.Solver_hooks.wrap ~worker:cfg.name hooks in
    let inc = if cfg.use_warm then incumbent else None in
    let sol =
      match cfg.engine with
      | Best_first ->
        Milp.Branch_bound.solve ~deadline ?node_limit ?incumbent:inc
          ~branch_seed:cfg.branch_seed ~hooks ~pricing:cfg.pricing
          ~presolve:false p
      | Depth_first ->
        Milp.Dfs_solver.solve ~deadline ?node_limit ?incumbent:inc
          ~branch_seed:cfg.branch_seed ~hooks ~pricing:cfg.pricing
          ~presolve:false p
    in
    if (not deterministic) && conclusive sol.Milp.Branch_bound.status then begin
      if Atomic.compare_and_set winner (-1) i then begin
        Log.info (fun f ->
            f "%s finished conclusively (%s); cancelling the rest" cfg.name
              (status_name sol.Milp.Branch_bound.status));
        Obs.point ~cat:"portfolio" "cancel"
          [
            ("winner", Obs.Str cfg.name);
            ("status", Obs.Str (status_name sol.Milp.Branch_bound.status));
          ]
      end;
      Pool.Token.cancel token
    end;
    (sol, !local_imported, !local_published)
  in
  let crashes0 = Pool.crashes pl in
  (* one crash retry per worker: a transiently poisoned domain re-runs
     its config after the supervisor respawns capacity; a deterministic
     crasher fails over to [Error Worker_crashed] on its second death *)
  let futures =
    List.mapi
      (fun i cfg -> Pool.async ~retry_on_crash:1 pl (fun () -> run_one i cfg))
      configs
  in
  let raw = List.map Pool.await futures in
  let worker_crashes = Pool.crashes pl - crashes0 in
  let outcomes =
    List.map2
      (fun cfg r ->
        match r with
        | Ok (sol, imp, pub) -> (cfg, Some sol, imp, pub)
        | Error e ->
          Log.err (fun f ->
              f "worker %s died: %s" cfg.name (Printexc.to_string e));
          (cfg, None, 0, 0))
      configs raw
  in
  (* every worker crashed: funnel the first exception out *)
  if List.for_all (fun (_, s, _, _) -> s = None) outcomes then begin
    match List.find_map (function Error e -> Some e | Ok _ -> None) raw with
    | Some e -> raise e
    | None -> assert false
  end;
  let reports =
    List.map
      (fun (cfg, sol_opt, imp, pub) ->
        match sol_opt with
        | Some (s : Milp.Branch_bound.solution) ->
          {
            config = cfg;
            status = s.status;
            obj = s.obj;
            nodes = s.stats.Milp.Branch_bound.nodes;
            time_s = s.stats.Milp.Branch_bound.time_s;
            foreign_prunes = s.stats.Milp.Branch_bound.foreign_prunes;
            imported = imp;
            published = pub;
            crashed = false;
          }
        | None ->
          {
            config = cfg;
            status = Milp.Branch_bound.Unknown;
            obj = None;
            nodes = 0;
            time_s = 0.0;
            foreign_prunes = 0;
            imported = imp;
            published = pub;
            crashed = true;
          })
      outcomes
  in
  let sols =
    List.mapi (fun i (_, s, _, _) -> (i, s)) outcomes
    |> List.filter_map (fun (i, s) -> Option.map (fun s -> (i, s)) s)
  in
  let best_incumbent () =
    List.fold_left
      (fun acc (i, (s : Milp.Branch_bound.solution)) ->
        match (s.obj, acc) with
        | None, _ -> acc
        | Some o, None -> Some (i, s, sense *. o)
        | Some o, Some (_, _, best) when sense *. o < best -. 1.0e-12 ->
          Some (i, s, sense *. o)
        | Some _, Some _ -> acc)
      None sols
  in
  let most_informative () =
    let pick st =
      List.find_opt
        (fun (_, (s : Milp.Branch_bound.solution)) -> s.status = st)
        sols
    in
    match pick Milp.Branch_bound.Infeasible with
    | Some is -> is
    | None -> (
      match pick Milp.Branch_bound.Unbounded with
      | Some ub -> ub
      | None -> List.hd sols)
  in
  let chosen_i, chosen =
    if deterministic then
      match
        List.find_opt
          (fun (_, (s : Milp.Branch_bound.solution)) ->
            s.status = Milp.Branch_bound.Optimal)
          sols
      with
      | Some (i, s) -> (i, s)
      | None -> (
        match best_incumbent () with
        | Some (i, s, _) -> (i, s)
        | None -> most_informative ())
    else
      match Atomic.get winner with
      | w when w >= 0 -> (
        match List.assoc_opt w sols with
        | Some s -> (w, s)
        | None -> most_informative () (* winner crashed on return path *))
      | _ -> (
        match best_incumbent () with
        | Some (i, s, _) -> (i, s)
        | None -> most_informative ())
  in
  let stats =
    {
      winner = Some chosen_i;
      reports;
      incumbents_published = Atomic.get published;
      incumbents_imported = Atomic.get imported;
      foreign_prunes =
        List.fold_left (fun a (r : report) -> a + r.foreign_prunes) 0 reports;
      time_s = Milp.Clock.now () -. t0;
      jobs;
      deterministic;
      worker_crashes;
    }
  in
  Log.info (fun f -> f "portfolio: %a" pp_stats stats);
  (* re-attach the root presolve reductions (workers ran presolve-free) *)
  let chosen =
    {
      chosen with
      Milp.Branch_bound.stats =
        {
          chosen.Milp.Branch_bound.stats with
          Milp.Branch_bound.lp =
            Milp.Branch_bound.lp_add chosen.Milp.Branch_bound.stats.Milp.Branch_bound.lp
              (Milp.Branch_bound.lp_of_counters
                 (Milp.Simplex_core.fresh_counters ())
                 ~lp_time_s:0.0 ~presolve:pre);
        };
    }
  in
  { solution = chosen; stats }
