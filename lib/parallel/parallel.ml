(** Multicore solving on OCaml 5 domains.

    Three layers, no global state:

    - {!Pool}: fixed-size domain pool with futures, exception funneling
      and cancellation tokens — the substrate the other two build on;
    - {!Portfolio}: diversified solver configs racing the {e same} MILP
      with a shared atomic incumbent (any worker's incumbent tightens
      every other worker's pruning; first conclusive worker cancels the
      rest), plus a deterministic mode that is bit-identical at any
      jobs count;
    - {!Sweep}: batch runner farming {e independent} instances with
      per-item deadlines carved from one shared absolute deadline. *)

module Pool = Pool
module Portfolio = Portfolio
module Sweep = Sweep
