(** Fixed-size supervised domain pool: a work queue served by OCaml 5
    domains.

    The pool holds no global state — tests (and nested users such as the
    pipeline racing two portfolio solves) can spin pools up and down
    freely; every pool owns its domains and {!shutdown} joins them all.
    Exceptions raised by a task are funneled into its future and
    surfaced as [Error] by {!await} — a crashing task can neither kill a
    worker domain nor be silently lost.

    {b Supervision.} An exception that escapes the funnel ({!Poison} by
    construction, or a bug in the pool machinery) kills the worker's
    domain body. The supervisor — a wrapper around every spawned domain —
    then settles the in-flight task (re-enqueue when the submitter asked
    for crash retries, otherwise [Error Worker_crashed]), spawns a
    replacement domain so capacity is preserved, bumps {!crashes}, emits
    a ["pool"/"worker.respawn"] {!Obs} point, and exits the dead domain
    cleanly — so {!await} never hangs on a dead worker's task and
    {!shutdown}'s joins never raise.

    Tasks must not block on futures of the same pool (a task awaiting a
    task behind it in the queue of a saturated pool deadlocks); the
    intended users — portfolio racing and batch sweeps — only await from
    the submitting (non-worker) domain. *)

(** Cancellation token: a lock-free flag shared between a coordinator and
    any number of workers polling it. *)
module Token : sig
  type t

  val create : unit -> t
  val cancel : t -> unit
  val cancelled : t -> bool
end

(** [Poison msg] is the one exception the task funnel deliberately lets
    escape: raising it from a task kills the worker domain's body, which
    is exactly what chaos tests (and the supervisor's regression suite)
    need to simulate a dead worker. *)
exception Poison of string

(** Surfaced through a task's future when its worker domain died without
    completing it (and no crash retries remained): [worker] is the slot
    index, [cause] the printed escaping exception. *)
exception Worker_crashed of { worker : int; cause : string }

type t

(** Result handle of an {!async} task. *)
type 'a future

(** [validate_jobs j] is the one place a worker count is judged: [Ok j]
    when [j >= 1], otherwise [Error "jobs must be >= 1, got <j>"].
    {!create} enforces it; CLI front ends reuse it so every subcommand
    rejects a bad [--jobs] with the same message. *)
val validate_jobs : int -> (int, string) result

(** [create ?jobs ()] spawns [jobs] worker domains (default
    [Domain.recommended_domain_count ()], min 1); raises
    [Invalid_argument] when [jobs] fails {!validate_jobs}. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** Worker-domain deaths handled by the supervisor so far. *)
val crashes : t -> int

(** Submit a task; raises [Invalid_argument] after {!shutdown}.
    [retry_on_crash] (default 0) is the number of times the task is
    silently re-enqueued if the worker running it dies; when the budget
    is exhausted the future is fulfilled with [Error Worker_crashed].
    Only crash deaths consume it — an exception funneled into the future
    is never retried by the pool. *)
val async : ?retry_on_crash:int -> t -> (unit -> 'a) -> 'a future

(** Block until the task finishes. [Error e] carries the task's
    uncaught exception. Safe to call repeatedly. *)
val await : 'a future -> ('a, exn) result

(** {!await}, re-raising the task's exception. *)
val await_exn : 'a future -> 'a

(** [map t f xs] runs [f x] for every element on the pool and waits for
    them all; results are in input order. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** Drain the queue, join every worker domain. Idempotent. Tasks already
    queued are still executed before the workers exit. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] on a fresh pool and guarantees
    {!shutdown}, also on exception. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
