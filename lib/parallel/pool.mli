(** Fixed-size domain pool: a work queue served by OCaml 5 domains.

    The pool holds no global state — tests (and nested users such as the
    pipeline racing two portfolio solves) can spin pools up and down
    freely; every pool owns its domains and {!shutdown} joins them all.
    Exceptions raised by a task are funneled into its future and
    surfaced as [Error] by {!await} — a crashing task can neither kill a
    worker domain nor be silently lost.

    Tasks must not block on futures of the same pool (a task awaiting a
    task behind it in the queue of a saturated pool deadlocks); the
    intended users — portfolio racing and batch sweeps — only await from
    the submitting (non-worker) domain. *)

(** Cancellation token: a lock-free flag shared between a coordinator and
    any number of workers polling it. *)
module Token : sig
  type t

  val create : unit -> t
  val cancel : t -> unit
  val cancelled : t -> bool
end

type t

(** Result handle of an {!async} task. *)
type 'a future

(** [create ?jobs ()] spawns [jobs] worker domains (default
    [Domain.recommended_domain_count ()], min 1). *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** Submit a task; raises [Invalid_argument] after {!shutdown}. *)
val async : t -> (unit -> 'a) -> 'a future

(** Block until the task finishes. [Error e] carries the task's
    uncaught exception. Safe to call repeatedly. *)
val await : 'a future -> ('a, exn) result

(** {!await}, re-raising the task's exception. *)
val await_exn : 'a future -> 'a

(** [map t f xs] runs [f x] for every element on the pool and waits for
    them all; results are in input order. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** Drain the queue, join every worker domain. Idempotent. Tasks already
    queued are still executed before the workers exit. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] on a fresh pool and guarantees
    {!shutdown}, also on exception. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
