open Rt_model
open Let_sem

(* Discrete-event simulation of one hyperperiod of LET communications,
   under the paper's DMA protocol (rules R1-R3 of Section V.B) or under
   the Giotto baselines. The protocol is strictly sequential per resource
   (a single DMA engine; CPU copies on their cores), so the simulation
   advances per-resource time cursors across the sorted communication
   instants; bursts that overrun the next instant (possible for baselines
   that violate Property 3) queue up naturally on the busy resource. *)

type cpu_model = Parallel_phases | Serialized

type mode =
  | Dma_protocol of (Time.t -> Properties.plan)
      (* proposed protocol: a task is ready when the transfers carrying its
         own communications complete (R1/R3) *)
  | Dma_multi of int * (Time.t -> Properties.plan)
      (* extension beyond the paper: [n] parallel DMA channels; transfers
         run concurrently when their LET dependencies allow, readiness as
         in the protocol *)
  | Dma_barrier of (Time.t -> Properties.plan)
      (* Giotto-with-DMA: every task released at the instant waits for the
         whole burst *)
  | Cpu_copy of cpu_model
      (* Giotto-CPU: per-core LET tasks copy by CPU, writes phase then
         reads phase, global barrier *)

type job = { task : int; release : Time.t; ready : Time.t }

type metrics = {
  lambda : Time.t array; (* per task: max (ready - release) over the horizon *)
  jobs : job list;
  transfers_issued : int;
  bytes_moved : int;
  busy : Time.t; (* cumulated DMA or CPU copy busy time *)
  trace : Trace.event list;
  fault_stats : Faults.stats option; (* Some iff faults were injected *)
}

let lambda_of m task = m.lambda.(task)

let max_lambda_ratio app m =
  List.fold_left
    (fun acc (t : Task.t) ->
      Float.max acc
        (Time.to_s_float m.lambda.(t.Task.id) /. Time.to_s_float t.Task.period))
    0.0 (App.tasks app)

(* --- DMA burst execution ------------------------------------------- *)

(* Execute one transfer starting at [t0]: channel programming, linear
   copy, completion interrupt. Under a fault injector, each transient
   failure re-pays programming and (stretched) copy time without a
   completion interrupt, the final copy may also stretch, and a dropped
   interrupt delays the ISR by the model's timeout. Without an injector —
   or with an all-zero model, whose draws return the nominal values
   untouched — the arithmetic and emitted events are exactly the
   historical fault-free ones. Returns the completion time. *)
let exec_transfer p ~inj ~record ~core ~index ~labels ~bytes ~t0 trace =
  let nominal = Platform.dma_copy_time p bytes in
  let stretched () =
    match inj with None -> nominal | Some i -> Faults.copy_time i nominal
  in
  let n_attempts = match inj with None -> 1 | Some i -> Faults.attempts i in
  let cursor = ref t0 in
  for _ = 2 to n_attempts do
    let t1 = Time.(!cursor + p.Platform.o_dp) in
    let t2 = Time.(t1 + stretched ()) in
    if record then begin
      trace := Trace.Dma_program { core; index; start = !cursor; finish = t1 } :: !trace;
      trace := Trace.Dma_copy { index; labels; bytes; start = t1; finish = t2 } :: !trace
    end;
    cursor := t2
  done;
  let t1 = Time.(!cursor + p.Platform.o_dp) in
  let t2 = Time.(t1 + stretched ()) in
  let isr_start =
    match inj with None -> t2 | Some i -> Time.(t2 + Faults.isr_delay i)
  in
  let t3 = Time.(isr_start + p.Platform.o_isr) in
  if record then begin
    trace := Trace.Dma_program { core; index; start = !cursor; finish = t1 } :: !trace;
    trace := Trace.Dma_copy { index; labels; bytes; start = t1; finish = t2 } :: !trace;
    trace := Trace.Dma_isr { core; index; start = isr_start; finish = t3 } :: !trace
  end;
  t3

(* Executes the transfers of one instant back to back on the DMA engine,
   starting no earlier than [at] and than the engine's availability.
   Returns per-transfer completion times. *)
let run_dma_burst app ?inj ~record plan ~at ~dma_avail trace =
  let p = App.platform app in
  let cursor = ref (Time.max at !dma_avail) in
  let completions =
    List.mapi
      (fun g transfer ->
        let core =
          match transfer with
          | c :: _ -> Comm.local_core app c
          | [] -> 0
        in
        let bytes = Properties.transfer_bytes app transfer in
        let t3 =
          exec_transfer p ~inj ~record ~core ~index:g
            ~labels:(List.map (fun c -> c.Comm.label) transfer)
            ~bytes ~t0:!cursor trace
        in
        cursor := t3;
        (transfer, t3, bytes))
      plan
  in
  dma_avail := !cursor;
  completions

(* --- multi-channel DMA burst execution ------------------------------ *)

(* LET-ordering dependencies between a plan's transfers: transfer j must
   wait for an earlier transfer i when i writes a label j reads (Property
   2) or i carries a write and j a read of the same task (Property 1).
   Transfers without such a dependency may run on different channels in
   parallel. *)
let plan_dependencies (plan : Properties.plan) =
  let transfers = Array.of_list plan in
  let n = Array.length transfers in
  let deps = Array.make n [] in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      let blocking =
        List.exists
          (fun (ci : Comm.t) ->
            ci.Comm.kind = Comm.Write
            && List.exists
                 (fun (cj : Comm.t) ->
                   cj.Comm.kind = Comm.Read
                   && (cj.Comm.label = ci.Comm.label || cj.Comm.task = ci.Comm.task))
                 transfers.(j))
          transfers.(i)
      in
      if blocking then deps.(j) <- i :: deps.(j)
    done
  done;
  (transfers, deps)

(* Execute one instant's burst on [channels] parallel DMA engines:
   transfers are taken in plan order, each starting on the earliest
   available channel once its dependencies have completed. *)
let run_dma_burst_multi app ?inj ~record ~channels plan ~at ~chan_avail trace =
  let p = App.platform app in
  let transfers, deps = plan_dependencies plan in
  let n = Array.length transfers in
  let completion = Array.make n Time.zero in
  let out = ref [] in
  for g = 0 to n - 1 do
    let deps_done =
      List.fold_left (fun acc i -> Time.max acc completion.(i)) at deps.(g)
    in
    (* earliest-available channel *)
    let ch = ref 0 in
    for c = 1 to channels - 1 do
      if Time.compare chan_avail.(c) chan_avail.(!ch) < 0 then ch := c
    done;
    let t0 = Time.max deps_done chan_avail.(!ch) in
    let core =
      match transfers.(g) with c :: _ -> Comm.local_core app c | [] -> 0
    in
    let bytes = Properties.transfer_bytes app transfers.(g) in
    let t3 =
      exec_transfer p ~inj ~record ~core ~index:g
        ~labels:(List.map (fun c -> c.Comm.label) transfers.(g))
        ~bytes ~t0 trace
    in
    chan_avail.(!ch) <- t3;
    completion.(g) <- t3;
    out := (transfers.(g), t3, bytes) :: !out
  done;
  List.rev !out

(* --- CPU burst execution ------------------------------------------- *)

let run_cpu_burst app model ~record comms ~at ~core_avail trace =
  let p = App.platform app in
  match model with
  | Serialized ->
    (* all copies serialized on the contended global memory, Giotto order *)
    let ordered = Giotto.order app comms in
    let start =
      Array.fold_left Time.max at core_avail
    in
    let cursor = ref start in
    let bytes = ref 0 in
    List.iter
      (fun c ->
        let d = Platform.cpu_copy_time p (Comm.size app c) in
        let t1 = Time.(!cursor + d) in
        if record then
          trace :=
            Trace.Cpu_copy
              { core = Comm.local_core app c; comm = c; start = !cursor; finish = t1 }
            :: !trace;
        bytes := !bytes + Comm.size app c;
        cursor := t1)
      ordered;
    Array.iteri (fun k _ -> core_avail.(k) <- !cursor) core_avail;
    (!cursor, !bytes, Time.( - ) !cursor start)
  | Parallel_phases ->
    (* cores copy their own writes in parallel, a global barrier, then
       their reads in parallel (contention-free best case for Giotto-CPU) *)
    let seqs = Giotto.per_core_sequences app comms in
    let bytes = ref 0 in
    let busy = ref Time.zero in
    let phase pred start_of_phase =
      List.mapi
        (fun k seq ->
          let cursor = ref (Time.max start_of_phase core_avail.(k)) in
          List.iter
            (fun c ->
              if pred c then begin
                let d = Platform.cpu_copy_time p (Comm.size app c) in
                let t1 = Time.(!cursor + d) in
                if record then
                  trace :=
                    Trace.Cpu_copy { core = k; comm = c; start = !cursor; finish = t1 }
                    :: !trace;
                bytes := !bytes + Comm.size app c;
                busy := Time.(!busy + d);
                cursor := t1
              end)
            seq;
          !cursor)
        seqs
    in
    let write_ends = phase (fun c -> c.Comm.kind = Comm.Write) at in
    let barrier = List.fold_left Time.max at write_ends in
    let read_ends = phase (fun c -> c.Comm.kind = Comm.Read) barrier in
    let finish = List.fold_left Time.max barrier read_ends in
    Array.iteri (fun k _ -> core_avail.(k) <- finish) core_avail;
    (finish, !bytes, !busy)

(* --- main loop ------------------------------------------------------ *)

let run ?(record_trace = false) ?horizon ?faults app groups mode =
  let h = App.hyperperiod app in
  let horizon = match horizon with Some x -> x | None -> h in
  let n = App.num_tasks app in
  let inj = Option.map Faults.create faults in
  let trace = ref [] in
  let dma_avail = ref Time.zero in
  let core_avail = Array.make (App.platform app).Platform.n_cores Time.zero in
  let chan_avail =
    match mode with
    | Dma_multi (channels, _) ->
      if channels < 1 then invalid_arg "Sim.run: need at least one DMA channel";
      Array.make channels Time.zero
    | Dma_protocol _ | Dma_barrier _ | Cpu_copy _ -> [||]
  in
  let transfers = ref 0 in
  let bytes_total = ref 0 in
  let busy_total = ref Time.zero in
  let p = App.platform app in
  let account_dma completions =
    transfers := !transfers + List.length completions;
    List.iter
      (fun (_, _, b) ->
        bytes_total := !bytes_total + b;
        busy_total :=
          Time.(!busy_total + Platform.lambda_o p + Platform.dma_copy_time p b))
      completions
  in
  (* Execute the burst at instant [t]; the result maps a released task to
     its ready time. *)
  let run_instant t =
    let comms = Groups.comms_at groups t in
    if Comm.Set.is_empty comms then fun _ -> t
    else
      match mode with
      | Dma_protocol schedule ->
        let completions =
          run_dma_burst app ?inj ~record:record_trace (schedule t) ~at:t
            ~dma_avail trace
        in
        account_dma completions;
        fun task ->
          (* R1/R3: ready when the transfers carrying this task's own
             communications have completed *)
          List.fold_left
            (fun acc (g, fin, _) ->
              if List.exists (fun c -> c.Comm.task = task) g then
                Time.max acc fin
              else acc)
            t completions
      | Dma_multi (channels, schedule) ->
        let completions =
          run_dma_burst_multi app ?inj ~record:record_trace ~channels
            (schedule t) ~at:t ~chan_avail trace
        in
        account_dma completions;
        fun task ->
          List.fold_left
            (fun acc (g, fin, _) ->
              if List.exists (fun c -> c.Comm.task = task) g then
                Time.max acc fin
              else acc)
            t completions
      | Dma_barrier schedule ->
        let completions =
          run_dma_burst app ?inj ~record:record_trace (schedule t) ~at:t
            ~dma_avail trace
        in
        account_dma completions;
        let burst_end =
          List.fold_left (fun acc (_, fin, _) -> Time.max acc fin) t completions
        in
        fun _ -> burst_end
      | Cpu_copy model ->
        let finish, b, busy =
          run_cpu_burst app model ~record:record_trace comms ~at:t ~core_avail
            trace
        in
        bytes_total := !bytes_total + b;
        busy_total := Time.(!busy_total + busy);
        fun _ -> finish
  in
  (* walk the communication instants in order, recording each burst's
     readiness function *)
  let ready_fns = Hashtbl.create 1024 in
  List.iter
    (fun t -> if t < horizon then Hashtbl.replace ready_fns t (run_instant t))
    (Groups.instants groups);
  let lambda = Array.make n Time.zero in
  let jobs = ref [] in
  List.iter
    (fun (task : Task.t) ->
      let i = task.Task.id in
      let rec releases t =
        if t >= horizon then ()
        else begin
          let ready =
            match Hashtbl.find_opt ready_fns t with Some f -> f i | None -> t
          in
          if record_trace then
            trace := Trace.Task_ready { task = i; time = ready } :: !trace;
          lambda.(i) <- Time.max lambda.(i) Time.(ready - t);
          jobs := { task = i; release = t; ready } :: !jobs;
          releases Time.(t + task.Task.period)
        end
      in
      releases Time.zero)
    (App.tasks app);
  {
    lambda;
    jobs = List.rev !jobs;
    transfers_issued = !transfers;
    bytes_moved = !bytes_total;
    busy = !busy_total;
    trace = Trace.sort_events !trace;
    fault_stats = Option.map Faults.stats inj;
  }

let pp_metrics app ppf m =
  Fmt.pf ppf "@[<v>%a@,transfers=%d bytes=%d busy=%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (t : Task.t) ->
          pf ppf "  lambda(%s) = %a" t.Task.name Time.pp m.lambda.(t.Task.id)))
    (App.tasks app) m.transfers_issued m.bytes_moved Time.pp m.busy
