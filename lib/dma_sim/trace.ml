open Rt_model
open Let_sem

(* Timeline events recorded by the simulator, and an ASCII rendering used
   to reproduce the shape of the paper's Fig. 1 schedule. *)

type event =
  | Dma_program of { core : int; index : int; start : Time.t; finish : Time.t }
  | Dma_copy of {
      index : int;
      labels : int list;
      bytes : int;
      start : Time.t;
      finish : Time.t;
    }
  | Dma_isr of { core : int; index : int; start : Time.t; finish : Time.t }
  | Cpu_copy of { core : int; comm : Comm.t; start : Time.t; finish : Time.t }
  | Task_ready of { task : int; time : Time.t }

let start_of = function
  | Dma_program { start; _ }
  | Dma_copy { start; _ }
  | Dma_isr { start; _ }
  | Cpu_copy { start; _ } -> start
  | Task_ready { time; _ } -> time

let sort_events events =
  List.stable_sort (fun a b -> Time.compare (start_of a) (start_of b)) events

let pp_event app ppf = function
  | Dma_program { core; index; start; finish } ->
    Fmt.pf ppf "%-9s LET_%d programs DMA transfer #%d (until %a)" (Time.to_string start)
      (core + 1) index Time.pp finish
  | Dma_copy { index; labels; bytes; start; finish } ->
    Fmt.pf ppf "%-9s DMA copies transfer #%d [%a] (%dB, until %a)" (Time.to_string start)
      index
      Fmt.(list ~sep:(any ",") (fun ppf l -> string ppf (App.label app l).Label.name))
      labels bytes Time.pp finish
  | Dma_isr { core; index; start; finish } ->
    Fmt.pf ppf "%-9s ISR on core %d for transfer #%d (until %a)" (Time.to_string start)
      (core + 1) index Time.pp finish
  | Cpu_copy { core; comm; start; finish } ->
    Fmt.pf ppf "%-9s core %d copies %a (until %a)" (Time.to_string start) (core + 1)
      (Comm.pp app) comm Time.pp finish
  | Task_ready { task; time } ->
    Fmt.pf ppf "%-9s %s READY" (Time.to_string time) (App.task app task).Task.name

let pp_log app ppf events =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut (pp_event app)) (sort_events events)

(* Scaled ASCII Gantt chart: one lane for the DMA engine, one per core
   (CPU copies + readiness marks). *)
let render_gantt ?(width = 100) app events =
  let events = sort_events events in
  match events with
  | [] -> "(empty trace)"
  | _ ->
    let t_min =
      List.fold_left (fun acc e -> Time.min acc (start_of e)) max_int events
    in
    let t_max =
      List.fold_left
        (fun acc e ->
          let f =
            match e with
            | Dma_program { finish; _ }
            | Dma_copy { finish; _ }
            | Dma_isr { finish; _ }
            | Cpu_copy { finish; _ } -> finish
            | Task_ready { time; _ } -> time
          in
          Time.max acc f)
        0 events
    in
    let span = max 1 Time.(t_max - t_min) in
    let col t = (Time.( - ) t t_min) * (width - 1) / span in
    let n_cores = (App.platform app).Platform.n_cores in
    let lanes = Array.init (n_cores + 1) (fun _ -> Bytes.make width ' ') in
    let paint lane c0 c1 ch =
      (* empty when c1 < c0: zero-width spans paint nothing *)
      for c = max 0 c0 to min (width - 1) c1 do
        Bytes.set lanes.(lane) c ch
      done
    in
    (* [start, finish) half-open: a span never paints the cell holding its
       finish instant, so back-to-back transfers don't visually overlap. A
       zero-duration span (instantaneous DMA program) paints nothing; a
       nonzero one shorter than a cell still shows its one cell. *)
    let paint_span lane s f ch =
      if Time.compare f s > 0 then
        paint lane (col s) (max (col s) (col f - 1)) ch
    in
    List.iter
      (fun e ->
        match e with
        | Dma_program { start; finish; _ } -> paint_span 0 start finish 'p'
        | Dma_copy { start; finish; _ } -> paint_span 0 start finish '='
        | Dma_isr { start; finish; _ } -> paint_span 0 start finish 'i'
        | Cpu_copy { core; start; finish; _ } ->
          paint_span (core + 1) start finish '='
        | Task_ready { task; time } ->
          let lane = App.core_of app task + 1 in
          paint lane (col time) (col time) '^')
      events;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Fmt.str "time: %a .. %a  (p=DMA programming, ==copy, i=ISR, ^=task ready)\n"
         Time.pp t_min Time.pp t_max);
    Buffer.add_string buf (Fmt.str "%-6s|%s|\n" "DMA" (Bytes.to_string lanes.(0)));
    for k = 0 to n_cores - 1 do
      Buffer.add_string buf
        (Fmt.str "%-6s|%s|\n" (Fmt.str "P%d" (k + 1)) (Bytes.to_string lanes.(k + 1)))
    done;
    Buffer.contents buf
