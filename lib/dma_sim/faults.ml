open Rt_model

(* Seeded fault model for the DMA engine. The design constraint that
   shapes everything here: a model whose rates are all zero must leave
   the simulation bit-for-bit identical to a fault-free run. Hence every
   draw function short-circuits before touching the generator when its
   rate is zero — the generator state then never diverges, and neither
   do any computed times. *)

type model = {
  seed : int;
  latency_stretch : float;
  transient_fail_rate : float;
  max_retries : int;
  drop_isr_rate : float;
  isr_timeout : Time.t;
}

let none =
  {
    seed = 0;
    latency_stretch = 0.0;
    transient_fail_rate = 0.0;
    max_retries = 0;
    drop_isr_rate = 0.0;
    isr_timeout = Time.zero;
  }

let make ?(latency_stretch = 0.0) ?(transient_fail_rate = 0.0)
    ?(max_retries = 3) ?(drop_isr_rate = 0.0)
    ?(isr_timeout = Time.of_us 10) ~seed () =
  let check_rate what r =
    if not (r >= 0.0 && r < 1.0) then
      invalid_arg (Printf.sprintf "Faults.make: %s %g not in [0, 1)" what r)
  in
  if not (latency_stretch >= 0.0) then
    invalid_arg
      (Printf.sprintf "Faults.make: latency stretch %g negative" latency_stretch);
  check_rate "transient failure rate" transient_fail_rate;
  check_rate "dropped-interrupt rate" drop_isr_rate;
  if max_retries < 0 then
    invalid_arg (Printf.sprintf "Faults.make: max retries %d negative" max_retries);
  if Time.compare isr_timeout Time.zero < 0 then
    invalid_arg "Faults.make: negative interrupt timeout";
  { seed; latency_stretch; transient_fail_rate; max_retries; drop_isr_rate; isr_timeout }

let at_intensity ?(seed = 42) x =
  if not (x >= 0.0) then
    invalid_arg (Printf.sprintf "Faults.at_intensity: intensity %g negative" x);
  make ~latency_stretch:x
    ~transient_fail_rate:(Float.min 0.9 (0.5 *. x))
    ~drop_isr_rate:(Float.min 0.9 (0.25 *. x))
    ~isr_timeout:(Time.of_us 10) ~seed ()

let is_zero m =
  m.latency_stretch = 0.0 && m.transient_fail_rate = 0.0
  && m.drop_isr_rate = 0.0

let pp_model ppf m =
  Fmt.pf ppf
    "@[<h>faults{seed=%d stretch=%g fail=%g retries<=%d drop_isr=%g timeout=%a}@]"
    m.seed m.latency_stretch m.transient_fail_rate m.max_retries
    m.drop_isr_rate Time.pp m.isr_timeout

type stats = {
  mutable retries : int;
  mutable dropped_isrs : int;
  mutable stretch_total : Time.t;
  mutable faulty_transfers : int;
}

type t = { model : model; rng : Random.State.t; st : stats }

let create model =
  {
    model;
    rng = Random.State.make [| model.seed; 0x5e3d |];
    st =
      { retries = 0; dropped_isrs = 0; stretch_total = Time.zero; faulty_transfers = 0 };
  }

let model t = t.model
let stats t = t.st

let copy_time t nominal =
  if t.model.latency_stretch <= 0.0 then nominal
  else begin
    let u = Random.State.float t.rng 1.0 in
    let extra_ns =
      int_of_float
        (Float.round (u *. t.model.latency_stretch *. float_of_int (Time.to_ns nominal)))
    in
    if extra_ns > 0 then begin
      t.st.stretch_total <- Time.(t.st.stretch_total + Time.of_ns extra_ns);
      t.st.faulty_transfers <- t.st.faulty_transfers + 1
    end;
    Time.(nominal + Time.of_ns extra_ns)
  end

let attempts t =
  if t.model.transient_fail_rate <= 0.0 then 1
  else begin
    let n = ref 1 in
    while
      !n <= t.model.max_retries
      && Random.State.float t.rng 1.0 < t.model.transient_fail_rate
    do
      incr n
    done;
    if !n > 1 then begin
      t.st.retries <- t.st.retries + (!n - 1);
      t.st.faulty_transfers <- t.st.faulty_transfers + 1
    end;
    !n
  end

let isr_delay t =
  if t.model.drop_isr_rate <= 0.0 then Time.zero
  else if Random.State.float t.rng 1.0 < t.model.drop_isr_rate then begin
    t.st.dropped_isrs <- t.st.dropped_isrs + 1;
    t.st.faulty_transfers <- t.st.faulty_transfers + 1;
    t.model.isr_timeout
  end
  else Time.zero
