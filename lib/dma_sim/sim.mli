(** Simulation of LET communications over one hyperperiod.

    This replaces the paper's AURIX testbed (see DESIGN.md, substitution
    2): it executes the communication bursts at every necessary instant on
    a single DMA engine (or on the cores, for the Giotto-CPU baseline) and
    measures the data-acquisition latency lambda_i of every task — the
    quantity compared across approaches in the paper's Fig. 2.

    Burst execution is exact for the protocol's cost model: per transfer,
    o_DP programming + linear copy + o_ISR, strictly sequential on the
    engine. Bursts that overrun the next instant (baselines may violate
    Property 3) queue on the busy resource. *)

open Rt_model
open Let_sem

type cpu_model =
  | Parallel_phases
      (** per-core write sequences in parallel, global barrier, then reads —
          the contention-free best case for CPU-driven copies *)
  | Serialized
      (** every copy serialized on the contended global memory *)

type mode =
  | Dma_protocol of (Time.t -> Properties.plan)
      (** the paper's protocol (rules R1-R3): a task becomes ready when the
          transfers carrying its own communications complete *)
  | Dma_multi of int * (Time.t -> Properties.plan)
      (** extension beyond the paper: [n] parallel DMA channels; transfers
          without LET-ordering dependencies (Properties 1-2) overlap, and
          readiness follows the protocol's per-task rule *)
  | Dma_barrier of (Time.t -> Properties.plan)
      (** Giotto order with a DMA: every task released at the instant waits
          for the whole burst (baselines Giotto-DMA-A/B) *)
  | Cpu_copy of cpu_model  (** Giotto-CPU baseline *)

type job = { task : int; release : Time.t; ready : Time.t }

type metrics = {
  lambda : Time.t array;  (** per task: max (ready - release) *)
  jobs : job list;  (** every job within the horizon, in release order *)
  transfers_issued : int;
  bytes_moved : int;
  busy : Time.t;  (** cumulated DMA/CPU communication busy time *)
  trace : Trace.event list;  (** time-sorted; empty unless requested *)
  fault_stats : Faults.stats option;
      (** injection counters; [Some] iff [run] was given a fault model *)
}

val lambda_of : metrics -> int -> Time.t

(** max_i lambda_i / T_i — the paper's Eq. (5) objective, measured. *)
val max_lambda_ratio : App.t -> metrics -> float

(** [run app groups mode] simulates [0, horizon) (default one
    hyperperiod). The schedule functions receive each communication
    instant and must return the ordered transfer plan for that instant.
    [faults] injects the given seeded fault model into every DMA transfer
    (see {!Faults}); an all-zero model reproduces the fault-free run
    exactly. *)
val run :
  ?record_trace:bool ->
  ?horizon:Time.t ->
  ?faults:Faults.model ->
  App.t ->
  Groups.t ->
  mode ->
  metrics

val pp_metrics : App.t -> Format.formatter -> metrics -> unit
