open Rt_model

(* Bridge the simulator's {!Trace.event} stream into the structured
   observability sink, so one JSONL file covers solve -> schedule ->
   simulation. Events are bridged after the (deterministic) simulation
   run, in simulated-time order; the wall-clock "ts" stamps when the
   bridge ran, while the simulated instants travel in "args" as
   nanoseconds. *)

let span_fields start finish =
  [
    ("start_ns", Obs.Int (Time.to_ns start));
    ("finish_ns", Obs.Int (Time.to_ns finish));
  ]

let emit app events =
  if Obs.enabled () then
    List.iter
      (fun e ->
        match e with
        | Trace.Dma_program { core; index; start; finish } ->
          Obs.point ~cat:"sim" "dma_program"
            (("core", Obs.Int core) :: ("index", Obs.Int index)
            :: span_fields start finish)
        | Trace.Dma_copy { index; labels; bytes; start; finish } ->
          Obs.point ~cat:"sim" "dma_copy"
            (("index", Obs.Int index)
            :: ("labels", Obs.Int (List.length labels))
            :: ("bytes", Obs.Int bytes)
            :: span_fields start finish)
        | Trace.Dma_isr { core; index; start; finish } ->
          Obs.point ~cat:"sim" "dma_isr"
            (("core", Obs.Int core) :: ("index", Obs.Int index)
            :: span_fields start finish)
        | Trace.Cpu_copy { core; comm = _; start; finish } ->
          Obs.point ~cat:"sim" "cpu_copy"
            (("core", Obs.Int core) :: span_fields start finish)
        | Trace.Task_ready { task; time } ->
          Obs.point ~cat:"sim" "task_ready"
            [
              ("task", Obs.Str (App.task app task).Task.name);
              ("time_ns", Obs.Int (Time.to_ns time));
            ])
      (Trace.sort_events events)
