(** Seeded DMA fault model.

    The paper assumes the platform meets its nominal cost model exactly:
    every transfer takes o_DP + copy + o_ISR. Deployed DMA engines do not
    — bus contention stretches copies, transient errors force the driver
    to re-program a channel, and completion interrupts occasionally get
    lost and are only recovered by a timeout. This module captures those
    three deviations as a seeded stochastic model that {!Sim.run} can
    inject, so certified schedules can be stress-tested (see
    {!Robustness}).

    All randomness comes from a private [Random.State] derived from
    [seed]: two runs with the same model produce identical fault
    sequences, and a model whose rates are all zero never consults the
    generator at all — the simulation is then byte-identical to a
    fault-free run. *)

open Rt_model

type model = private {
  seed : int;
  latency_stretch : float;
      (** each copy is stretched by a uniform factor in
          [1, 1 + latency_stretch]; must be >= 0 *)
  transient_fail_rate : float;
      (** probability in [0, 1) that a transfer attempt fails and must be
          re-programmed from scratch *)
  max_retries : int;
      (** bound on re-programming attempts per transfer; after this many
          failures the transfer is forced through (>= 0) *)
  drop_isr_rate : float;
      (** probability in [0, 1) that the completion interrupt is lost and
          completion is only observed after [isr_timeout] *)
  isr_timeout : Time.t;  (** recovery delay for a lost interrupt *)
}

(** The fault-free model: all rates zero. Injecting it is guaranteed to
    reproduce the unfaulted simulation exactly. *)
val none : model

(** [make ()] validates every field (rates in range, nonnegative stretch
    and retries). Raises [Invalid_argument] otherwise. *)
val make :
  ?latency_stretch:float ->
  ?transient_fail_rate:float ->
  ?max_retries:int ->
  ?drop_isr_rate:float ->
  ?isr_timeout:Time.t ->
  seed:int ->
  unit ->
  model

(** [at_intensity ?seed x] maps a scalar intensity [x >= 0] onto a model:
    stretch [x], transient failures at [min 0.9 (0.5 x)], dropped
    interrupts at [min 0.9 (0.25 x)] with a 10 us timeout. [x = 0] yields
    a model equivalent to {!none}. Used by the {!Robustness} sweeps. *)
val at_intensity : ?seed:int -> float -> model

(** True when every rate is zero — injection cannot alter the schedule. *)
val is_zero : model -> bool

val pp_model : Format.formatter -> model -> unit

(** Cumulative injection counters, filled in while a simulation runs. *)
type stats = {
  mutable retries : int;  (** failed attempts that were re-programmed *)
  mutable dropped_isrs : int;
  mutable stretch_total : Time.t;
      (** total extra copy time from latency stretching *)
  mutable faulty_transfers : int;
      (** transfers hit by at least one fault *)
}

(** A live injector: the model plus its private generator and counters.
    Create one per simulation run. *)
type t

val create : model -> t
val model : t -> model
val stats : t -> stats

(** {1 Draws}

    Each returns the perturbed quantity and updates {!stats}. When the
    relevant rate is zero the generator is not consulted and the nominal
    value is returned unchanged. *)

(** [copy_time t nominal] is the stretched copy duration. *)
val copy_time : t -> Time.t -> Time.t

(** [attempts t] is the number of programming attempts for the next
    transfer: 1 plus at most [max_retries] transient failures. *)
val attempts : t -> int

(** [isr_delay t] is the extra completion delay: [isr_timeout] when the
    interrupt is dropped, zero otherwise. *)
val isr_delay : t -> Time.t
