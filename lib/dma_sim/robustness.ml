open Rt_model
open Let_sem

type report = {
  intensity : float;
  ordering_ok : bool;
  property3_ok : bool;
  deadlines_ok : bool;
  max_overrun : Time.t;
  worst_ratio : float;
  retries : int;
  dropped_isrs : int;
}

let survives r = r.ordering_ok && r.property3_ok && r.deadlines_ok

(* Cyclic gap from each communication instant to the next one — the bound
   Property 3 must meet at runtime. *)
let gaps groups =
  let h = App.hyperperiod (Groups.app groups) in
  let instants = Groups.instants groups in
  match instants with
  | [] -> []
  | first :: _ ->
    let rec go = function
      | [] -> []
      | [ last ] -> [ (last, Time.(h - last + first)) ]
      | t :: (next :: _ as rest) -> (t, Time.(next - t)) :: go rest
    in
    go instants

let evaluate ?(seed = 42) ~intensity app groups schedule =
  let faults = Faults.at_intensity ~seed intensity in
  let m = Sim.run ~faults app groups (Sim.Dma_protocol schedule) in
  (* ordering: structural Properties 1/2 of each instant's plan — the
     engine executes transfers in plan order even under retries, so the
     runtime order equals the plan order *)
  let ordering_ok =
    List.for_all
      (fun t ->
        let plan = schedule t in
        Result.is_ok (Properties.property1 plan)
        && Result.is_ok (Properties.property2 plan))
      (Groups.instants groups)
  in
  (* Property 3 at runtime: the burst released at each instant must end
     before the (cyclic) next instant. The burst end is the latest ready
     time among the jobs released at that instant — under the protocol
     every transfer carries some released task's communication. *)
  let burst_end = Hashtbl.create 64 in
  List.iter
    (fun (j : Sim.job) ->
      let cur =
        match Hashtbl.find_opt burst_end j.Sim.release with
        | Some x -> x
        | None -> j.Sim.release
      in
      Hashtbl.replace burst_end j.Sim.release (Time.max cur j.Sim.ready))
    m.Sim.jobs;
  let max_overrun =
    List.fold_left
      (fun acc (t, gap) ->
        match Hashtbl.find_opt burst_end t with
        | None -> acc
        | Some fin -> Time.max acc Time.(fin - (t + gap)))
      Time.zero (gaps groups)
  in
  let property3_ok = Time.compare max_overrun Time.zero <= 0 in
  let deadlines_ok =
    List.for_all
      (fun (task : Task.t) ->
        Time.compare m.Sim.lambda.(task.Task.id) task.Task.period <= 0)
      (App.tasks app)
  in
  let retries, dropped_isrs =
    match m.Sim.fault_stats with
    | Some s -> (s.Faults.retries, s.Faults.dropped_isrs)
    | None -> (0, 0)
  in
  {
    intensity;
    ordering_ok;
    property3_ok;
    deadlines_ok;
    max_overrun = Time.max max_overrun Time.zero;
    worst_ratio = Sim.max_lambda_ratio app m;
    retries;
    dropped_isrs;
  }

let sweep ?seed ~intensities app groups schedule =
  List.map (fun x -> evaluate ?seed ~intensity:x app groups schedule) intensities

let first_break ?seed ~intensities app groups schedule =
  List.find_map
    (fun x ->
      let r = evaluate ?seed ~intensity:x app groups schedule in
      if survives r then None else Some (x, r))
    intensities

let pp_report ppf r =
  let mark ok = if ok then "ok" else "BROKEN" in
  Fmt.pf ppf
    "@[<h>intensity=%g ordering=%s property3=%s deadlines=%s overrun=%a \
     worst-ratio=%.3f retries=%d dropped-isrs=%d@]"
    r.intensity (mark r.ordering_ok) (mark r.property3_ok)
    (mark r.deadlines_ok) Time.pp r.max_overrun r.worst_ratio r.retries
    r.dropped_isrs
