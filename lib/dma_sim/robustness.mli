(** Fault-injection harness: which LET properties survive, and at what
    intensity they first break.

    A certified schedule guarantees Properties 1-3 under the nominal DMA
    cost model. This harness re-runs the simulator with a seeded
    {!Faults} model and checks what actually survives at runtime:

    - {e ordering} (Properties 1 and 2): transfer order is preserved even
      when transfers retry or stretch, so these are re-checked
      structurally per instant and should survive any intensity;
    - {e Property 3}: each burst must still complete within the gap to
      the next communication instant — latency faults break this first;
    - {e deadlines}: every job's data must be ready within its task's
      period (lambda_i <= T_i), the condition for the LET schedule to
      remain meaningful at runtime.

    All runs are deterministic under a fixed seed. *)

open Rt_model
open Let_sem

type report = {
  intensity : float;  (** the {!Faults.at_intensity} scalar *)
  ordering_ok : bool;  (** Properties 1 and 2 on every instant's plan *)
  property3_ok : bool;  (** no burst overran its cyclic gap *)
  deadlines_ok : bool;  (** lambda_i <= T_i for every task *)
  max_overrun : Time.t;
      (** worst burst overrun beyond its gap (zero when [property3_ok]) *)
  worst_ratio : float;  (** max_i lambda_i / T_i, the paper's objective *)
  retries : int;  (** injected transient failures *)
  dropped_isrs : int;  (** injected lost completion interrupts *)
}

(** [survives r] — the properties that must hold for the schedule to be
    trusted at this intensity: ordering, Property 3, and deadlines. *)
val survives : report -> bool

(** [evaluate ?seed ~intensity app groups schedule] runs one hyperperiod
    of the DMA protocol under [Faults.at_intensity intensity] and grades
    the outcome. *)
val evaluate :
  ?seed:int ->
  intensity:float ->
  App.t ->
  Groups.t ->
  (Time.t -> Properties.plan) ->
  report

(** One {!evaluate} per intensity, in order. *)
val sweep :
  ?seed:int ->
  intensities:float list ->
  App.t ->
  Groups.t ->
  (Time.t -> Properties.plan) ->
  report list

(** First intensity of the sweep whose report fails {!survives}, with the
    report; [None] when every intensity survives. *)
val first_break :
  ?seed:int ->
  intensities:float list ->
  App.t ->
  Groups.t ->
  (Time.t -> Properties.plan) ->
  (float * report) option

val pp_report : Format.formatter -> report -> unit
