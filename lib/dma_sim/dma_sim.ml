(** Discrete-event simulator of the DMA-based LET communication protocol
    (Section V.B) and of the Giotto baselines, with timeline traces and
    VCD waveform export. *)

module Faults = Faults
module Obs_bridge = Obs_bridge
module Robustness = Robustness
module Sim = Sim
module Trace = Trace
module Vcd = Vcd
