(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VII) plus the ablations listed in DESIGN.md, then
   runs Bechamel micro-benchmarks of the pipeline's kernels.

   Sections:
     FIG1          — the protocol-vs-Giotto example schedule (Fig. 1)
     FIG2          — latency ratios for {alpha 0.2, 0.4} x {NO-OBJ,
                     OBJ-DMAT, OBJ-DEL} (Fig. 2 (a)-(f))
     TABLE1        — solver time and #DMA transfers (Table I)
     ALPHA         — the alpha in {0.1..0.5} sensitivity sweep (Sec. VII)
     ABLATION-C6   — lazy vs full Constraint-6 generation
     ABLATION-HEUR — greedy heuristic vs MILP on random workloads
     ABLATION-ENGINE — best-first vs depth-first diving branch-and-bound
     PARALLEL      — portfolio racing and batch-sweep speedup vs jobs
     ABLATION-P3   — paper's Constraint 10 vs the strict Property-3 bound
     EXT-MULTIDMA  — the protocol on 1/2/4 parallel DMA channels
     EXT-AUTOMOTIVE — signal-heavy workloads (WATERS 2015 statistics)
     SCALING       — MILP size vs WATERS label-table granularity
     PRICING       — Dantzig vs devex vs Bland pricing on the TABLE1 /
                     SCALING LP relaxations and whole searches, plus
                     presolve-on/off end-to-end deltas
     WARMSTART     — cold vs warm-basis branch-and-bound node
                     reoptimization (the ci.sh pivot-reduction guard)
     ROBUSTNESS    — certifier overhead per solve, fault-injection sweep,
                     and the degradation ladder end to end
     MICRO         — Bechamel timings of the pipeline kernels

   The MILP time limit defaults to 30s per solve (the paper allowed 1h on
   a 40-core Xeon with CPLEX); override with LETDMA_BENCH_TIME_LIMIT.

   --smoke runs a fast subset (FIG1 + a trimmed PARALLEL section) meant
   to finish well under 30s — the CI gate in ci.sh. --parallel runs only
   the full PARALLEL section (the EXPERIMENTS.md speedup table).
   --pricing runs only the PRICING ablation (Dantzig vs devex vs Bland,
   presolve on/off). --json PREFIX additionally writes one
   PREFIX_<SECTION>.json per executed section with its wall-clock and any
   section-specific measurements, so the perf trajectory is machine-
   readable across PRs (ci.sh keeps BENCH_FIG1.json as its smoke guard). *)

open Rt_model
open Let_sem

let time_limit =
  match Sys.getenv_opt "LETDMA_BENCH_TIME_LIMIT" with
  | Some s -> (try float_of_string s with _ -> 30.0)
  | None -> 30.0

let section name =
  Fmt.pr "@.%s@.== %s ==@.%s@.@." (String.make 72 '=') name (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* Machine-readable results: a dependency-free JSON emitter             *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Num of float
    | Int of int
    | Str of string
    | Bool of bool
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Num f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          write b (Str k);
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    write b t;
    Buffer.contents b
end

(* [--json PREFIX]: each executed section writes PREFIX_<NAME>.json with
   its wall-clock plus whatever fields the section {!emit}ted. *)
let json_prefix = ref None

let emitted : (string * Json.t) list ref = ref []

let emit key v = emitted := (key, v) :: !emitted

let run_section name f =
  emitted := [];
  let t0 = Unix.gettimeofday () in
  f ();
  let time_s = Unix.gettimeofday () -. t0 in
  match !json_prefix with
  | None -> ()
  | Some prefix ->
    let path = Printf.sprintf "%s_%s.json" prefix name in
    let doc =
      Json.Obj
        (("section", Json.Str name)
        :: ("time_s", Json.Num time_s)
        :: List.rev !emitted)
    in
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Fmt.pr "@.[json] wrote %s@." path

(* ------------------------------------------------------------------ *)
(* FIG 1                                                               *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "FIG1: protocol schedule vs Giotto ordering (Fig. 1)";
  print_endline (Letdma.Fig1.render ())

(* Structured JSONL event trace of the FIG1 instance: a MILP solve
   (solver node/incumbent events) plus the protocol simulation (bridged
   simulator events), written next to the JSON baselines. Runs outside
   the timed FIG1 section so the committed FIG1 wall-clock stays
   trace-free — ci.sh compares fresh smoke runs against it. *)
let fig1_trace prefix =
  let path = Printf.sprintf "%s_FIG1_TRACE.jsonl" prefix in
  Obs.with_trace ~file:path (fun () ->
      let app = Letdma.Fig1.app () in
      let groups = Groups.compute app in
      let gamma = Letdma.Fig1.gamma app in
      let warm = Letdma.Heuristic.solve_unchecked app groups ~gamma in
      let r =
        Letdma.Solve.solve ~time_limit_s:10.0 ?warm
          Letdma.Formulation.Min_transfers app groups ~gamma
      in
      match r.Letdma.Solve.solution with
      | None -> ()
      | Some solution ->
        let m =
          Letdma.Baselines.run ~record_trace:true app groups
            Letdma.Baselines.Proposed ~solution:(Some solution)
        in
        Dma_sim.Obs_bridge.emit app m.Dma_sim.Sim.trace);
  Fmt.pr "[json] wrote %s (%d events)@." path (Obs.lines_written ())

(* ------------------------------------------------------------------ *)
(* FIG 2 + TABLE I (same six configurations)                           *)
(* ------------------------------------------------------------------ *)

let fig2_and_table1 app =
  section "FIG2: latency ratios on the WATERS 2019 case study (Fig. 2)";
  Fmt.pr "MILP time limit per solve: %.0fs@.@." time_limit;
  let results = Letdma.Experiment.fig2 ~time_limit_s:time_limit app in
  Fmt.pr "%a@." (fun ppf -> Letdma.Report.fig2 ppf app) results;
  section "TABLE1: solver running times and #DMA transfers (Table I)";
  Fmt.pr "%a@." Letdma.Report.table1
    (Letdma.Experiment.table1_of_results results)

(* ------------------------------------------------------------------ *)
(* ALPHA sweep                                                         *)
(* ------------------------------------------------------------------ *)

let alpha app =
  section "ALPHA: sensitivity sweep, alpha in {0.1 .. 0.5} (Sec. VII)";
  let results = Letdma.Experiment.alpha_sweep ~time_limit_s:time_limit app in
  Fmt.pr "%a@." Letdma.Report.alpha_sweep results

(* ------------------------------------------------------------------ *)
(* ABLATION: lazy vs full Constraint 6                                 *)
(* ------------------------------------------------------------------ *)

let ablation_c6 () =
  section "ABLATION-C6: lazy vs upfront Constraint-6 generation";
  (* small instances, solved cold: the search must converge for the model
     sizes and lazy rounds to show in honest end-to-end times *)
  let config =
    {
      Workload.Generator.default_config with
      Workload.Generator.n_tasks = 4;
      n_edges = 2;
      max_labels_per_edge = 2;
    }
  in
  List.iter
    (fun seed ->
      let app = Workload.Generator.random ~seed ~config () in
      let groups = Groups.compute app in
      match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
      | None -> Fmt.pr "seed %d: unschedulable@." seed
      | Some s ->
        let gamma = s.Rt_analysis.Sensitivity.gamma in
        (* no warm start: the solver must search, so the model-size and
           lazy-round differences actually show in the running times *)
        let run name options =
          let r =
            Letdma.Solve.solve ~options ~time_limit_s:time_limit
              Letdma.Formulation.No_obj app groups ~gamma
          in
          Fmt.pr "  seed %3d %-6s: %a (solution: %s)@." seed name
            Letdma.Solve.pp_stats r.Letdma.Solve.stats
            (match r.Letdma.Solve.solution with
             | Some sol ->
               Fmt.str "%d transfers" (Letdma.Solution.num_transfers sol)
             | None -> "none")
        in
        run "lazy" Letdma.Formulation.default_options;
        run "full"
          {
            Letdma.Formulation.default_options with
            Letdma.Formulation.full_c6 = true;
          })
    [ 1; 7; 42 ]

(* ------------------------------------------------------------------ *)
(* ABLATION: heuristic vs MILP                                         *)
(* ------------------------------------------------------------------ *)

let ablation_heuristic () =
  section "ABLATION-HEUR: greedy heuristic vs MILP on random workloads";
  List.iter
    (fun seed ->
      let app = Workload.Generator.random ~seed () in
      List.iter
        (fun (name, solver) ->
          let t0 = Unix.gettimeofday () in
          match Letdma.Experiment.run_config ~solver app ~alpha:0.3 with
          | Ok r ->
            let m = Letdma.Experiment.metrics_of r Letdma.Baselines.Proposed in
            let worst = ref 0.0 in
            Array.iteri
              (fun i g ->
                if Time.compare g Time.zero > 0 then
                  worst :=
                    Float.max !worst
                      (float_of_int (Time.to_ns m.Dma_sim.Sim.lambda.(i))
                      /. float_of_int (Time.to_ns g)))
              r.Letdma.Experiment.gamma;
            Fmt.pr
              "  seed %3d %-10s: %2d transfers, worst lambda/gamma %.4f, %.2fs@."
              seed name r.Letdma.Experiment.num_transfers !worst
              (Unix.gettimeofday () -. t0)
          | Error e ->
            Fmt.pr "  seed %3d %-10s: failed (%s)@." seed name
              (Letdma.Experiment.error_to_string e))
        [
          ("heuristic", Letdma.Experiment.Heuristic);
          ( "milp-del",
            Letdma.Experiment.milp ~time_limit_s:time_limit
              Letdma.Formulation.Min_delay_ratio );
        ])
    [ 1; 7; 42 ]

(* ------------------------------------------------------------------ *)
(* ABLATION: branch-and-bound engine (best-first vs DFS diving)        *)
(* ------------------------------------------------------------------ *)

let ablation_engine app =
  section "ABLATION-ENGINE: best-first vs depth-first diving branch-and-bound";
  let groups = Groups.compute app in
  match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
  | None -> Fmt.pr "unschedulable@."
  | Some s ->
    let gamma = s.Rt_analysis.Sensitivity.gamma in
    let warm = Letdma.Heuristic.solve_unchecked app groups ~gamma in
    (* NO-OBJ runs cold (can the engine synthesize a feasible plan?);
       OBJ-DEL runs warm (can it improve the heuristic incumbent?) *)
    List.iter
      (fun (oname, objective, warm) ->
        List.iter
          (fun (ename, engine) ->
            let r =
              Letdma.Solve.solve ~engine ~time_limit_s:time_limit ?warm
                objective app groups ~gamma
            in
            Fmt.pr "  %-12s %-10s: %a@." oname ename Letdma.Solve.pp_stats
              r.Letdma.Solve.stats)
          [
            ("best-first", Letdma.Solve.Best_first); ("dfs", Letdma.Solve.Dfs);
          ])
      [
        ("NO-OBJ/cold", Letdma.Formulation.No_obj, None);
        ("OBJ-DEL/warm", Letdma.Formulation.Min_delay_ratio, warm);
      ]

(* ------------------------------------------------------------------ *)
(* ABLATION: paper's Constraint 10 vs strict Property 3                *)
(* ------------------------------------------------------------------ *)

let ablation_p3 app =
  section
    "ABLATION-P3: Constraint 10 as written (last read) vs strict (last transfer)";
  let groups = Groups.compute app in
  match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
  | None -> Fmt.pr "unschedulable@."
  | Some s ->
    let gamma = s.Rt_analysis.Sensitivity.gamma in
    let warm = Letdma.Heuristic.solve_unchecked app groups ~gamma in
    List.iter
      (fun (name, strict) ->
        let options =
          {
            Letdma.Formulation.default_options with
            Letdma.Formulation.strict_property3 = strict;
          }
        in
        let r =
          Letdma.Solve.solve ~options ~time_limit_s:time_limit ?warm
            Letdma.Formulation.No_obj app groups ~gamma
        in
        match r.Letdma.Solve.solution with
        | Some sol ->
          let valid =
            match Letdma.Solution.validate app groups sol with
            | Ok () -> "passes strict validation"
            | Error e -> Fmt.str "FAILS strict validation: %s" e
          in
          Fmt.pr "  %-18s: %d transfers, %s@." name
            (Letdma.Solution.num_transfers sol)
            valid
        | None -> Fmt.pr "  %-18s: no solution@." name)
      [ ("strict (default)", true); ("paper (last read)", false) ]

(* ------------------------------------------------------------------ *)
(* EXTENSION: multiple DMA channels                                    *)
(* ------------------------------------------------------------------ *)

let extension_multi_dma app =
  section
    "EXT-MULTIDMA: parallel DMA channels (extension beyond the paper's single engine)";
  let groups = Groups.compute app in
  match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
  | None -> Fmt.pr "unschedulable@."
  | Some s ->
    let gamma = s.Rt_analysis.Sensitivity.gamma in
    (match Letdma.Heuristic.solve_unchecked app groups ~gamma with
     | None -> Fmt.pr "no plan@."
     | Some sol ->
       let schedule = Letdma.Solution.schedule app groups sol in
       Fmt.pr "%-10s" "channels:";
       List.iter (fun c -> Fmt.pr " %12d" c) [ 1; 2; 4 ];
       Fmt.pr "@.";
       let metrics =
         List.map
           (fun c ->
             (c, Dma_sim.Sim.run app groups (Dma_sim.Sim.Dma_multi (c, schedule))))
           [ 1; 2; 4 ]
       in
       List.iter
         (fun (t : Task.t) ->
           Fmt.pr "%-10s" t.Task.name;
           List.iter
             (fun (_, m) ->
               Fmt.pr " %10.1fus"
                 (Time.to_us_float m.Dma_sim.Sim.lambda.(t.Task.id)))
             metrics;
           Fmt.pr "@.")
         (App.tasks app))

(* ------------------------------------------------------------------ *)
(* EXTENSION: automotive signal-heavy workloads (WATERS 2015 stats)    *)
(* ------------------------------------------------------------------ *)

let extension_automotive () =
  section
    "EXT-AUTOMOTIVE: signal-heavy workloads (WATERS 2015 benchmark statistics)";
  List.iter
    (fun seed ->
      let app = Workload.Automotive.generate ~seed () in
      let groups = Groups.compute app in
      let n_comms = Comm.Set.cardinal (Groups.s0 groups) in
      match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
      | None -> Fmt.pr "  seed %d: unschedulable@." seed
      | Some s ->
        (match
           Letdma.Heuristic.solve_unchecked app groups
             ~gamma:s.Rt_analysis.Sensitivity.gamma
         with
         | None -> Fmt.pr "  seed %d: no communications@." seed
         | Some sol ->
           let worst approach =
             let m =
               Letdma.Baselines.run app groups approach ~solution:(Some sol)
             in
             Dma_sim.Sim.max_lambda_ratio app m
           in
           Fmt.pr
             "  seed %4d: %3d comms -> %2d transfers; max lambda/T: proposed \
              %.5f, CPU %.5f, DMA-A %.5f@."
             seed n_comms
             (Letdma.Solution.num_transfers sol)
             (worst Letdma.Baselines.Proposed)
             (worst Letdma.Baselines.Giotto_cpu)
             (worst Letdma.Baselines.Giotto_dma_a))
        |> ignore)
    [ 2015; 2019; 2021 ]

(* ------------------------------------------------------------------ *)
(* SCALING: instance size sweep                                        *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section "SCALING: WATERS instance size sweep (labels per data flow)";
  List.iter
    (fun labels_per_edge ->
      let app = Workload.Waters2019.make ~labels_per_edge () in
      let groups = Groups.compute app in
      match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
      | None -> Fmt.pr "  x%d: unschedulable@." labels_per_edge
      | Some s ->
        let gamma = s.Rt_analysis.Sensitivity.gamma in
        let t0 = Unix.gettimeofday () in
        let warm = Letdma.Heuristic.solve_unchecked app groups ~gamma in
        let t_heur = Unix.gettimeofday () -. t0 in
        let r =
          Letdma.Solve.solve ~time_limit_s:time_limit ?warm
            Letdma.Formulation.No_obj app groups ~gamma
        in
        Fmt.pr
          "  x%d: %2d comms, heuristic %5.3fs (%s), NO-OBJ MILP: %a@."
          labels_per_edge
          (Comm.Set.cardinal (Groups.s0 groups))
          t_heur
          (match warm with
           | Some sol -> Fmt.str "%d transfers" (Letdma.Solution.num_transfers sol)
           | None -> "-")
          Letdma.Solve.pp_stats r.Letdma.Solve.stats)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* PRICING: entering-rule ablation + presolve on/off                   *)
(* ------------------------------------------------------------------ *)

let pricing_section () =
  section
    "PRICING: Dantzig vs devex vs Bland entering rules, presolve on/off";
  let rules =
    [
      ("dantzig", Milp.Simplex.Dantzig);
      ("devex", Milp.Simplex.Devex);
      ("bland", Milp.Simplex.Bland);
    ]
  in
  let status_name = function
    | Milp.Branch_bound.Optimal -> "optimal"
    | Milp.Branch_bound.Feasible -> "feasible(limit)"
    | Milp.Branch_bound.Infeasible -> "infeasible"
    | Milp.Branch_bound.Unbounded -> "unbounded"
    | Milp.Branch_bound.Unknown -> "unknown"
  in
  (* 1. LP relaxations of the WATERS models: TABLE1 granularity (x1)
     under all three paper objectives, SCALING granularity (x2) under the
     two cheap ones (Bland is skipped at x2 — it needs minutes to go
     nowhere). NO-OBJ is a pure phase-I feasibility solve, where devex
     deliberately prices with the Dantzig scan; the objective-bearing
     models exercise the devex phase-II candidate list. *)
  let lp_rows = ref [] in
  Fmt.pr "  LP relaxations (one root solve per rule, %.0fs deadline):@."
    time_limit;
  List.iter
    (fun (labels_per_edge, objective, oname, rule_names) ->
      let app = Workload.Waters2019.make ~labels_per_edge () in
      let groups = Groups.compute app in
      match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
      | None -> Fmt.pr "    waters-x%d: unschedulable@." labels_per_edge
      | Some s ->
        let gamma = s.Rt_analysis.Sensitivity.gamma in
        let inst = Letdma.Formulation.make objective app groups ~gamma in
        let p = inst.Letdma.Formulation.problem in
        let iname = Fmt.str "waters-x%d/%s" labels_per_edge oname in
        Fmt.pr "    %s (%d vars x %d rows):@." iname
          (Milp.Problem.num_vars p) (Milp.Problem.num_constrs p);
        List.iter
          (fun (rname, rule) ->
            if List.mem rname rule_names then begin
              let cnt = Milp.Simplex_core.fresh_counters () in
              let t0 = Unix.gettimeofday () in
              let r =
                Milp.Simplex.solve ~pricing:rule ~counters:cnt
                  ~deadline:(Milp.Clock.now () +. time_limit)
                  p
              in
              let dt = Unix.gettimeofday () -. t0 in
              let status =
                match r with
                | Milp.Simplex.Optimal _ -> "optimal"
                | Milp.Simplex.Infeasible -> "infeasible"
                | Milp.Simplex.Unbounded -> "unbounded"
                | Milp.Simplex.Iteration_limit -> "limit"
              in
              let pv = cnt.Milp.Simplex_core.pivots in
              Fmt.pr
                "      %-8s: %-9s %6d pivots  %9d priced  %5d refreshes  \
                 %7.3fs@."
                rname status pv cnt.Milp.Simplex_core.pricing_scanned
                cnt.Milp.Simplex_core.pricing_refreshes dt;
              lp_rows :=
                Json.Obj
                  [
                    ("instance", Json.Str iname);
                    ("rule", Json.Str rname);
                    ("status", Json.Str status);
                    ("pivots", Json.Int pv);
                    ("priced", Json.Int cnt.Milp.Simplex_core.pricing_scanned);
                    ( "refreshes",
                      Json.Int cnt.Milp.Simplex_core.pricing_refreshes );
                    ("time_s", Json.Num dt);
                  ]
                :: !lp_rows
            end)
          rules)
    (let all = [ "dantzig"; "devex"; "bland" ] in
     let cheap = [ "dantzig"; "devex" ] in
     [
       (1, Letdma.Formulation.No_obj, "NO-OBJ", all);
       (1, Letdma.Formulation.Min_transfers, "OBJ-DMAT", all);
       (1, Letdma.Formulation.Min_delay_ratio, "OBJ-DEL", all);
       (2, Letdma.Formulation.No_obj, "NO-OBJ", cheap);
       (2, Letdma.Formulation.Min_transfers, "OBJ-DMAT", cheap);
     ]);
  emit "lp" (Json.List (List.rev !lp_rows));
  (* 2. Full branch-and-bound under each rule on small random instances
     the cold solver finishes: rule choice vs whole-search work. *)
  let milp_rows = ref [] in
  let config =
    {
      Workload.Generator.default_config with
      Workload.Generator.n_tasks = 4;
      n_edges = 2;
      max_labels_per_edge = 2;
    }
  in
  Fmt.pr "@.  branch-and-bound under each rule (cold, random instances):@.";
  List.iter
    (fun seed ->
      let app = Workload.Generator.random ~seed ~config () in
      let groups = Groups.compute app in
      match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
      | None -> Fmt.pr "    seed %d: unschedulable@." seed
      | Some s ->
        let gamma = s.Rt_analysis.Sensitivity.gamma in
        let inst =
          Letdma.Formulation.make Letdma.Formulation.No_obj app groups ~gamma
        in
        List.iter
          (fun (rname, rule) ->
            let t0 = Unix.gettimeofday () in
            let bb =
              Milp.Branch_bound.solve ~pricing:rule
                ~deadline:(Milp.Clock.now () +. time_limit)
                inst.Letdma.Formulation.problem
            in
            let dt = Unix.gettimeofday () -. t0 in
            let st = bb.Milp.Branch_bound.stats in
            let lp = st.Milp.Branch_bound.lp in
            Fmt.pr
              "    seed %3d %-8s: %-9s %5d nodes  %7d pivots  %7.3fs@."
              seed rname
              (status_name bb.Milp.Branch_bound.status)
              st.Milp.Branch_bound.nodes lp.Milp.Branch_bound.lp_pivots dt;
            milp_rows :=
              Json.Obj
                [
                  ("instance", Json.Str (Fmt.str "random-%d" seed));
                  ("rule", Json.Str rname);
                  ( "status",
                    Json.Str (status_name bb.Milp.Branch_bound.status) );
                  ("nodes", Json.Int st.Milp.Branch_bound.nodes);
                  ("pivots", Json.Int lp.Milp.Branch_bound.lp_pivots);
                  ( "dual_pivots",
                    Json.Int lp.Milp.Branch_bound.lp_dual_pivots );
                  ("time_s", Json.Num dt);
                ]
              :: !milp_rows)
          rules)
    [ 1; 7; 42 ];
  emit "milp" (Json.List (List.rev !milp_rows));
  (* 3. Presolve on/off, end to end through the lazy-C6 driver: the
     default must not be slower than opting out. *)
  let pre_rows = ref [] in
  Fmt.pr "@.  presolve on/off, end to end (cold NO-OBJ solves):@.";
  let run_presolve iname solve_it =
    List.iter
      (fun presolve ->
        let r : Letdma.Solve.result = solve_it ~presolve in
        let st = r.Letdma.Solve.stats in
        let lp = st.Letdma.Solve.lp in
        Fmt.pr
          "    %-12s presolve=%-5b: %-15s %5d nodes  %7.3fs  \
           (rows dropped %d, bounds tightened %d)@."
          iname presolve
          (status_name st.Letdma.Solve.status)
          st.Letdma.Solve.nodes st.Letdma.Solve.time_s
          lp.Milp.Branch_bound.presolve_rows_dropped
          lp.Milp.Branch_bound.presolve_bounds_tightened;
        pre_rows :=
          Json.Obj
            [
              ("instance", Json.Str iname);
              ("presolve", Json.Bool presolve);
              ("status", Json.Str (status_name st.Letdma.Solve.status));
              ("nodes", Json.Int st.Letdma.Solve.nodes);
              ( "rows_dropped",
                Json.Int lp.Milp.Branch_bound.presolve_rows_dropped );
              ( "bounds_tightened",
                Json.Int lp.Milp.Branch_bound.presolve_bounds_tightened );
              ("time_s", Json.Num st.Letdma.Solve.time_s);
            ]
          :: !pre_rows)
      [ true; false ]
  in
  List.iter
    (fun seed ->
      let app = Workload.Generator.random ~seed ~config () in
      let groups = Groups.compute app in
      match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
      | None -> Fmt.pr "    seed %d: unschedulable@." seed
      | Some s ->
        let gamma = s.Rt_analysis.Sensitivity.gamma in
        run_presolve
          (Fmt.str "random-%d" seed)
          (fun ~presolve ->
            Letdma.Solve.solve ~presolve ~time_limit_s:time_limit
              Letdma.Formulation.No_obj app groups ~gamma))
    [ 1; 7; 42 ];
  (let app = Workload.Waters2019.make () in
   let groups = Groups.compute app in
   match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
   | None -> Fmt.pr "    waters-x1: unschedulable@."
   | Some s ->
     let gamma = s.Rt_analysis.Sensitivity.gamma in
     run_presolve "waters-x1"
       (fun ~presolve ->
         Letdma.Solve.solve ~presolve ~time_limit_s:time_limit
           Letdma.Formulation.No_obj app groups ~gamma));
  emit "presolve" (Json.List (List.rev !pre_rows))

(* ------------------------------------------------------------------ *)
(* WARMSTART: cold vs warm-basis node reoptimization                   *)
(* ------------------------------------------------------------------ *)

(* Cold ([basis_pool:0]) vs warm (default pool) best-first branch-and-
   bound at jobs=1 on the WATERS OBJ-DMAT model — each of its node LPs
   costs seconds from scratch, so this is exactly where parent-basis
   dual reoptimization pays. Both runs receive the same heuristic warm
   incumbent and the same node budget, so they are comparable point for
   point; ci.sh asserts identical final objectives with >= 25% fewer
   total pivots (primal + dual) for the warm run. A small random
   instance the solver finishes rides along for the optimal-vs-optimal
   comparison. *)
let warmstart_section () =
  section "WARMSTART: cold vs warm-basis B&B node reoptimization (jobs=1)";
  let rows = ref [] in
  let status_name = function
    | Milp.Branch_bound.Optimal -> "optimal"
    | Milp.Branch_bound.Feasible -> "feasible(limit)"
    | Milp.Branch_bound.Infeasible -> "infeasible"
    | Milp.Branch_bound.Unbounded -> "unbounded"
    | Milp.Branch_bound.Unknown -> "unknown"
  in
  let compare_runs iname ?incumbent ?(node_limit = 200_000) ?(presolve = true)
      ~limit_s p =
    Fmt.pr "    %s (%d vars x %d rows, node budget %d):@." iname
      (Milp.Problem.num_vars p) (Milp.Problem.num_constrs p) node_limit;
    let run mode ~basis_pool =
      let t0 = Unix.gettimeofday () in
      let r =
        Milp.Branch_bound.solve ~time_limit_s:limit_s ~node_limit ?incumbent
          ~presolve ~basis_pool p
      in
      let dt = Unix.gettimeofday () -. t0 in
      let st = r.Milp.Branch_bound.stats in
      let lp = st.Milp.Branch_bound.lp in
      let total =
        lp.Milp.Branch_bound.lp_pivots + lp.Milp.Branch_bound.lp_dual_pivots
      in
      Fmt.pr
        "      %-4s: %-15s %4d nodes  %7d pivots (%d dual)  hits=%d \
         misses=%d saved=%d evicted=%d  %7.3fs@."
        mode
        (status_name r.Milp.Branch_bound.status)
        st.Milp.Branch_bound.nodes total lp.Milp.Branch_bound.lp_dual_pivots
        lp.Milp.Branch_bound.lp_warm_hits lp.Milp.Branch_bound.lp_warm_misses
        lp.Milp.Branch_bound.lp_dual_pivots_saved
        lp.Milp.Branch_bound.lp_basis_evictions dt;
      rows :=
        Json.Obj
          [
            ("instance", Json.Str iname);
            ("mode", Json.Str mode);
            ("status", Json.Str (status_name r.Milp.Branch_bound.status));
            ("nodes", Json.Int st.Milp.Branch_bound.nodes);
            ("pivots", Json.Int total);
            ("dual_pivots", Json.Int lp.Milp.Branch_bound.lp_dual_pivots);
            ("warm_hits", Json.Int lp.Milp.Branch_bound.lp_warm_hits);
            ("warm_misses", Json.Int lp.Milp.Branch_bound.lp_warm_misses);
            ( "pivots_saved",
              Json.Int lp.Milp.Branch_bound.lp_dual_pivots_saved );
            ("evictions", Json.Int lp.Milp.Branch_bound.lp_basis_evictions);
            ( "obj",
              match r.Milp.Branch_bound.obj with
              | Some o -> Json.Num o
              | None -> Json.Str "none" );
            ("time_s", Json.Num dt);
          ]
        :: !rows;
      total
    in
    let cold = run "cold" ~basis_pool:0 in
    let warm = run "warm" ~basis_pool:128 in
    if cold > 0 then
      Fmt.pr "      warm/cold pivot ratio: %.2f (%.0f%% reduction)@."
        (float_of_int warm /. float_of_int cold)
        (100.0 *. (1.0 -. (float_of_int warm /. float_of_int cold)))
  in
  Fmt.pr "  WATERS OBJ-DMAT, node-limited (the acceptance instance):@.";
  (let app = Workload.Waters2019.make ~labels_per_edge:1 () in
   let groups = Groups.compute app in
   match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
   | None -> Fmt.pr "    waters-x1: unschedulable@."
   | Some s ->
     let gamma = s.Rt_analysis.Sensitivity.gamma in
     let inst =
       Letdma.Formulation.make Letdma.Formulation.Min_transfers app groups
         ~gamma
     in
     let incumbent =
       Option.bind
         (Letdma.Heuristic.solve_unchecked
            ~granularity:Letdma.Heuristic.Grouped app groups ~gamma)
         (Letdma.Formulation.encode inst)
     in
     (* presolve off for BOTH arms: its bound-shifting rescales this
        instance so badly that basis reconstruction aborts (see the
        damage guard in Simplex_core.restore), which would measure the
        fallback, not the warm start. random-1 below keeps the default
        presolve to show the two compose. *)
     compare_runs "waters-x1/OBJ-DMAT" ?incumbent ~node_limit:5
       ~presolve:false ~limit_s:120.0 inst.Letdma.Formulation.problem);
  Fmt.pr "@.  random instance solved to optimality (full search):@.";
  (let config =
     {
       Workload.Generator.default_config with
       Workload.Generator.n_tasks = 4;
       n_edges = 2;
       max_labels_per_edge = 2;
     }
   in
   let app = Workload.Generator.random ~seed:1 ~config () in
   let groups = Groups.compute app in
   match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
   | None -> Fmt.pr "    random-1: unschedulable@."
   | Some s ->
     let gamma = s.Rt_analysis.Sensitivity.gamma in
     let inst =
       Letdma.Formulation.make Letdma.Formulation.No_obj app groups ~gamma
     in
     compare_runs "random-1" ~limit_s:time_limit
       inst.Letdma.Formulation.problem);
  emit "warmstart" (Json.List (List.rev !rows))

(* ------------------------------------------------------------------ *)
(* ROBUSTNESS: certifier overhead + fault-injection sweep              *)
(* ------------------------------------------------------------------ *)

let robustness app =
  section
    "ROBUSTNESS: certifier overhead, fault-injection sweep, degradation ladder";
  let groups = Groups.compute app in
  match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
  | None -> Fmt.pr "unschedulable@."
  | Some s ->
    let gamma = s.Rt_analysis.Sensitivity.gamma in
    (* certifier overhead per solve: full independent re-verification
       (MILP residuals + layouts + Properties 1-3 + deadlines) relative
       to the MILP solve it vouches for; the budget is <5% *)
    let warm = Letdma.Heuristic.solve_unchecked app groups ~gamma in
    let r =
      Letdma.Solve.solve ~time_limit_s:time_limit ?warm
        Letdma.Formulation.No_obj app groups ~gamma
    in
    (match (r.Letdma.Solve.solution, r.Letdma.Solve.x) with
     | Some sol, Some x ->
       let n = 25 in
       let t0 = Unix.gettimeofday () in
       for _ = 1 to n do
         ignore
           (Letdma.Certify.certify
              ~milp:(r.Letdma.Solve.instance, x)
              ~source:Letdma.Certify.Milp_optimal app groups ~gamma sol)
       done;
       let cert_s = (Unix.gettimeofday () -. t0) /. float_of_int n in
       let solve_s = r.Letdma.Solve.stats.Letdma.Solve.time_s in
       Fmt.pr
         "  certifier: %.3fms per certification vs %.3fs MILP solve \
          (overhead %.3f%%)@."
         (1000.0 *. cert_s) solve_s
         (100.0 *. cert_s /. solve_s)
     | _ -> Fmt.pr "  no MILP solution to certify@.");
    (* fault sweep on the certified heuristic schedule *)
    (match warm with
     | None -> ()
     | Some sol ->
       let schedule = Letdma.Solution.schedule app groups sol in
       Fmt.pr "  fault sweep (seed 42):@.";
       List.iter
         (fun rep -> Fmt.pr "    %a@." Dma_sim.Robustness.pp_report rep)
         (Dma_sim.Robustness.sweep ~seed:42
            ~intensities:[ 0.0; 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 ]
            app groups schedule));
    (* the degradation ladder end to end *)
    (match Letdma.Pipeline.run ~budget_s:time_limit app with
     | Ok o ->
       Fmt.pr "  pipeline: accepted rung %s in %.2fs (%d certificate checks)@."
         (Letdma.Pipeline.rung_name o.Letdma.Pipeline.rung)
         o.Letdma.Pipeline.total_time_s
         o.Letdma.Pipeline.certificate.Letdma.Certify.checks
     | Error f -> Fmt.pr "  pipeline: %s@." (Letdma.Pipeline.failure_to_string f))

(* ------------------------------------------------------------------ *)
(* RESILIENCE: checkpoint/interrupt/resume + supervised retry smoke    *)
(* ------------------------------------------------------------------ *)

(* The crash-resilience spine end to end on a small generator instance:
   a durable baseline solve (checkpoint cadence on, file auto-removed on
   the conclusive exit), a controlled mid-tree interrupt leaving a
   checkpoint on disk, a resume that must land on the same objective
   with the same cumulative node count, and a supervised solve that
   recovers from an undersized LP iteration cap via the escalation
   ladder. ci.sh drives the same flow through the CLI (chaos gate); this
   section keeps the library-level numbers machine-readable. *)
let resilience_section () =
  section "RESILIENCE: checkpoint/resume round trip and supervised retry";
  (* first small_config instance that is schedulable and explores a
     real tree (same selection rule as test_resilience) *)
  let picked = ref None in
  let seed = ref 1 in
  while !picked = None && !seed <= 60 do
    let app =
      Workload.Generator.random ~seed:!seed
        ~config:Workload.Generator.small_config ()
    in
    let groups = Groups.compute app in
    (if not (Comm.Set.is_empty (Groups.s0 groups)) then
       match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
       | Some s when s.Rt_analysis.Sensitivity.schedulable ->
         let gamma = s.Rt_analysis.Sensitivity.gamma in
         let r =
           Letdma.Solve.solve ~time_limit_s:time_limit Letdma.Formulation.No_obj
             app groups ~gamma
         in
         let n = r.Letdma.Solve.stats.Letdma.Solve.nodes in
         if
           r.Letdma.Solve.stats.Letdma.Solve.status
           = Milp.Branch_bound.Optimal
           && n >= 10 && n <= 500
         then picked := Some (!seed, app, groups, gamma, r)
       | _ -> ());
    incr seed
  done;
  match !picked with
  | None -> Fmt.pr "  no suitable generator instance in 60 seeds@."
  | Some (seed, app, groups, gamma, baseline) ->
    let stats (r : Letdma.Solve.result) = r.Letdma.Solve.stats in
    let nodes r = (stats r).Letdma.Solve.nodes in
    emit "seed" (Json.Int seed);
    emit "baseline_nodes" (Json.Int (nodes baseline));
    let file = Filename.temp_file "bench_resilience" ".json" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
      (fun () ->
        let interrupted =
          Letdma.Solve.solve ~time_limit_s:time_limit ~checkpoint_file:file
            ~checkpoint_every:8
            ~interrupt_after_nodes:(nodes baseline / 2)
            Letdma.Formulation.No_obj app groups ~gamma
        in
        let ck_bytes =
          if Sys.file_exists file then (Unix.stat file).Unix.st_size else 0
        in
        emit "interrupted_nodes" (Json.Int (nodes interrupted));
        emit "checkpoint_bytes" (Json.Int ck_bytes);
        let resumed =
          match Resilience.Checkpoint.load file with
          | Error m ->
            Fmt.pr "  checkpoint unreadable: %s@." m;
            None
          | Ok ck ->
            Some
              (Letdma.Solve.solve ~time_limit_s:time_limit
                 ~checkpoint_file:file ~resume:ck Letdma.Formulation.No_obj
                 app groups ~gamma)
        in
        match resumed with
        | None -> ()
        | Some resumed ->
          let identical =
            nodes resumed = nodes baseline
            && resumed.Letdma.Solve.x = baseline.Letdma.Solve.x
          in
          emit "resumed_nodes" (Json.Int (nodes resumed));
          emit "trajectory_identical" (Json.Bool identical);
          emit "checkpoint_removed_after_resume"
            (Json.Bool (not (Sys.file_exists file)));
          Fmt.pr
            "  seed %d: baseline %d nodes; interrupt at %d left %d bytes; \
             resume %d nodes (%s)@."
            seed (nodes baseline) (nodes interrupted) ck_bytes (nodes resumed)
            (if identical then "trajectory identical" else "DIVERGED"));
    (* the paper's instance: waters-x1 OBJ-DMAT in the WARMSTART bench
       configuration (heuristic incumbent, presolve off, 5-node budget),
       interrupted after 2 nodes and resumed to the same budget — the
       resumed run must land on the identical incumbent *)
    (let app = Workload.Waters2019.make ~labels_per_edge:1 () in
     let groups = Groups.compute app in
     match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
     | None -> Fmt.pr "  waters-x1: unschedulable@."
     | Some s ->
       let gamma = s.Rt_analysis.Sensitivity.gamma in
       let inst =
         Letdma.Formulation.make Letdma.Formulation.Min_transfers app groups
           ~gamma
       in
       let incumbent =
         Option.bind
           (Letdma.Heuristic.solve_unchecked
              ~granularity:Letdma.Heuristic.Grouped app groups ~gamma)
           (Letdma.Formulation.encode inst)
       in
       let p = inst.Letdma.Formulation.problem in
       let solve ?hooks ?on_checkpoint ?resume () =
         Milp.Branch_bound.solve ~time_limit_s:120.0 ~node_limit:5 ?incumbent
           ~presolve:false ?hooks ?on_checkpoint ?resume p
       in
       let wbase = solve () in
       let seen = ref 0 in
       let captured = ref None in
       let hooks =
         {
           Milp.Branch_bound.no_hooks with
           Milp.Branch_bound.should_stop = (fun () -> !seen >= 2);
           on_node =
             (fun ~node:_ ~depth:_ ~bound:_ ~pivots:_ -> incr seen);
         }
       in
       ignore (solve ~hooks ~on_checkpoint:(fun ck -> captured := Some ck) ());
       match !captured with
       | None -> Fmt.pr "  waters-x1: interrupt emitted no checkpoint@."
       | Some ck ->
         (* through the on-disk format, as a real resume would go *)
         let doc =
           Resilience.Checkpoint.make
             ~fingerprint:(Resilience.Checkpoint.fingerprint p)
             (Resilience.Checkpoint.Best_first ck)
         in
         let bytes = String.length (Resilience.Checkpoint.to_string doc) in
         let ck =
           match
             Resilience.Checkpoint.of_string
               (Resilience.Checkpoint.to_string doc)
           with
           | Ok { Resilience.Checkpoint.ck_state = Best_first bf; _ } -> bf
           | _ -> ck
         in
         let wres = solve ~resume:ck () in
         let identical =
           wres.Milp.Branch_bound.obj = wbase.Milp.Branch_bound.obj
           && wres.Milp.Branch_bound.x = wbase.Milp.Branch_bound.x
           && wres.Milp.Branch_bound.stats.Milp.Branch_bound.nodes
              = wbase.Milp.Branch_bound.stats.Milp.Branch_bound.nodes
         in
         emit "waters_checkpoint_bytes" (Json.Int bytes);
         emit "waters_identical" (Json.Bool identical);
         (match wbase.Milp.Branch_bound.obj with
          | Some o -> emit "waters_obj" (Json.Num o)
          | None -> ());
         Fmt.pr
           "  waters-x1/OBJ-DMAT: interrupt at node 2 (%d-byte checkpoint), \
            resumed to the 5-node budget: %s@."
           bytes
           (if identical then "identical incumbent" else "DIVERGED"));
    (* supervised recovery: a 25-pivot LP cap is too tight for this
       formulation's root LP; the ladder's iter_factor (x4, then x16)
       must scale it back into a workable one *)
    let supervised =
      Letdma.Solve.solve_supervised
        ~policy:
          {
            Resilience.Retry.default_policy with
            Resilience.Retry.backoff_s = 0.01;
          }
        ~time_limit_s:time_limit ~max_lp_iters:25 Letdma.Formulation.No_obj app
        groups ~gamma
    in
    let recovered =
      (stats supervised).Letdma.Solve.status = Milp.Branch_bound.Optimal
    in
    emit "supervised_recovered" (Json.Bool recovered);
    Fmt.pr "  supervised solve under a 25-pivot LP cap: %s@."
      (if recovered then "recovered via escalation" else "NOT recovered")

(* ------------------------------------------------------------------ *)
(* PARALLEL: speedup vs jobs                                           *)
(* ------------------------------------------------------------------ *)

let parallel_section ~smoke app =
  section "PARALLEL: portfolio racing and batch sweeps on OCaml 5 domains";
  Fmt.pr "  Domain.recommended_domain_count = %d@.@."
    (Domain.recommended_domain_count ());
  (* batch sweep: independent random instances farmed over a pool; the
     jobs=1 run is the sequential baseline for the speedup column. The
     seeds are instances the cold solver finishes in well under a
     second, so every configuration completes and the speedup measures
     real work, not timeouts. *)
  let seeds = [ 2; 3; 4; 6; 11; 12; 15; 16 ] in
  let config =
    {
      Workload.Generator.default_config with
      Workload.Generator.n_tasks = 4;
      n_edges = 2;
      max_labels_per_edge = 2;
    }
  in
  let per_solve_limit = if smoke then 5.0 else time_limit in
  let solve_one ~deadline seed =
    let app = Workload.Generator.random ~seed ~config () in
    let groups = Groups.compute app in
    match Rt_analysis.Sensitivity.gammas app ~alpha:0.3 with
    | None -> false
    | Some s ->
      let deadline_s =
        if Float.is_finite deadline then Some deadline else None
      in
      let r =
        Letdma.Solve.solve ~time_limit_s:per_solve_limit ?deadline_s
          Letdma.Formulation.No_obj app groups
          ~gamma:s.Rt_analysis.Sensitivity.gamma
      in
      Option.is_some r.Letdma.Solve.solution
  in
  let t_seq = ref nan in
  List.iter
    (fun jobs ->
      let t0 = Milp.Clock.now () in
      let outcomes = Parallel.Sweep.map ~jobs solve_one seeds in
      let solved =
        List.length
          (List.filter
             (fun (o : _ Parallel.Sweep.outcome) -> o.result = Ok true)
             outcomes)
      in
      let dt = Milp.Clock.now () -. t0 in
      if jobs = 1 then t_seq := dt;
      Fmt.pr "  sweep %d instances  jobs=%d: %6.2fs  (%d solved, speedup x%.2f)@."
        (List.length seeds) jobs dt solved (!t_seq /. dt))
    (if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ]);
  (* portfolio racing on the WATERS NO-OBJ model, warm-started from the
     heuristic: same problem, jobs 1 vs 4, with the shared-incumbent
     exchange counters *)
  Fmt.pr "@.";
  let groups = Groups.compute app in
  match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
  | None -> Fmt.pr "  portfolio: unschedulable@."
  | Some s ->
    let gamma = s.Rt_analysis.Sensitivity.gamma in
    let inst =
      Letdma.Formulation.make Letdma.Formulation.No_obj app groups ~gamma
    in
    let incumbent =
      Option.bind
        (Letdma.Heuristic.solve_unchecked app groups ~gamma)
        (Letdma.Formulation.encode inst)
    in
    List.iter
      (fun jobs ->
        let r =
          Parallel.Portfolio.solve ~jobs ~time_limit_s:per_solve_limit
            ?incumbent inst.Letdma.Formulation.problem
        in
        Fmt.pr "  portfolio WATERS/NO-OBJ jobs=%d: @[%a@]@." jobs
          Parallel.Portfolio.pp_stats r.Parallel.Portfolio.stats)
      [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro app =
  section "MICRO: Bechamel timings of the pipeline kernels";
  let open Bechamel in
  let groups = Groups.compute app in
  let gamma =
    match Rt_analysis.Sensitivity.gammas app ~alpha:0.2 with
    | Some s -> s.Rt_analysis.Sensitivity.gamma
    | None -> Array.make (App.num_tasks app) Rt_model.Time.zero
  in
  let solution =
    match Letdma.Heuristic.solve_unchecked app groups ~gamma with
    | Some s -> s
    | None -> failwith "no heuristic solution"
  in
  let inst =
    Letdma.Formulation.make Letdma.Formulation.No_obj app groups ~gamma
  in
  let tests =
    [
      (* Fig. 2 pipeline stages *)
      Test.make ~name:"fig2/groups-compute (Algorithm 1)"
        (Staged.stage (fun () -> ignore (Groups.compute app)));
      Test.make ~name:"fig2/sensitivity-gamma"
        (Staged.stage (fun () ->
             ignore (Rt_analysis.Sensitivity.gammas app ~alpha:0.2)));
      Test.make ~name:"fig2/heuristic-solve"
        (Staged.stage (fun () ->
             ignore (Letdma.Heuristic.solve_unchecked app groups ~gamma)));
      Test.make ~name:"fig2/simulate-proposed (1 hyperperiod)"
        (Staged.stage (fun () ->
             ignore
               (Letdma.Baselines.run app groups Letdma.Baselines.Proposed
                  ~solution:(Some solution))));
      Test.make ~name:"fig2/simulate-giotto-cpu (1 hyperperiod)"
        (Staged.stage (fun () ->
             ignore
               (Letdma.Baselines.run app groups Letdma.Baselines.Giotto_cpu
                  ~solution:None)));
      (* Table I building blocks *)
      Test.make ~name:"table1/milp-model-build (Constraints 1-10)"
        (Staged.stage (fun () ->
             ignore
               (Letdma.Formulation.make Letdma.Formulation.No_obj app groups
                  ~gamma)));
      Test.make ~name:"table1/lp-relaxation (simplex)"
        (Staged.stage (fun () ->
             ignore (Milp.Simplex.solve inst.Letdma.Formulation.problem)));
      (* Fig. 1 *)
      Test.make ~name:"fig1/trace-render"
        (Staged.stage (fun () -> ignore (Letdma.Fig1.render ())));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None () in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            estimates := (name, Json.Num est) :: !estimates;
            let t, unit_ =
              if est > 1.0e9 then (est /. 1.0e9, "s")
              else if est > 1.0e6 then (est /. 1.0e6, "ms")
              else if est > 1.0e3 then (est /. 1.0e3, "us")
              else (est, "ns")
            in
            Fmt.pr "  %-45s %10.2f %s/run@." name t unit_
          | _ -> Fmt.pr "  %-45s (no estimate)@." name)
        stats)
    tests;
  emit "estimates_ns" (Json.Obj (List.rev !estimates))

(* ------------------------------------------------------------------ *)
(* SERVICE: request corpus through the daemon's batch engine           *)
(* ------------------------------------------------------------------ *)

(* A deterministic request corpus through Service.Engine — the same
   code path `letdma serve` dispatches to, minus the socket plumbing:
   cold solves, exact repeats (cache hits) and alpha-perturbed repeats
   (warm-started solves), issued as successive batches against one
   engine so the cache carries across batches. Emits hit rates and
   latency percentiles to BENCH_SERVICE.json and a per-request CSV
   snapshot (objective / pivots / cache-verdict columns) next to it. *)
let corpus_csv = "BENCH_CORPUS.csv"

let corpus_section () =
  let module P = Service.Protocol in
  let module R = Resilience.Json in
  section "SERVICE: seeded corpus through the batch engine";
  let seeds = [ 2; 4; 7; 9 ] in
  let solve ~id ~alpha seed =
    Printf.sprintf
      {|{"id":"%s","op":"solve","workload":"small","seed":%d,"alpha":%g,"deadline_s":120,"class":"gold"}|}
      id seed alpha
  in
  (* five waves over the seed set: cold, exact repeat, perturbed, exact
     repeat again, perturbed further — each wave one batch *)
  let wave tag alpha =
    List.map (fun s -> solve ~id:(Printf.sprintf "%s-%d" tag s) ~alpha s) seeds
  in
  let batches =
    [
      wave "cold" 0.2; wave "hit" 0.2; wave "warm" 0.25; wave "hit2" 0.2;
      wave "warm2" 0.3;
    ]
  in
  let engine = Service.Engine.create ~jobs:1 ~retry_on_crash:1 () in
  let lines =
    List.concat_map
      (fun batch ->
        Service.Engine.process engine (List.map P.parse_request batch))
      batches
  in
  Service.Engine.shutdown engine;
  let rows =
    List.map
      (fun line ->
        match R.parse (String.trim line) with
        | Ok (R.O ms) -> ms
        | Ok _ | Error _ -> failwith ("corpus: bad response " ^ line))
      lines
  in
  let str ms k = R.as_string k (R.field "corpus" ms k) in
  let num ms k =
    match R.field_opt ms k with
    | Some (R.N f) -> f
    | _ -> Float.nan
  in
  let oc = open_out corpus_csv in
  output_string oc "id,cache,tier,solver,objective,pivots,nodes,time_ms\n";
  List.iter
    (fun ms ->
      if str ms "status" <> "ok" then
        failwith ("corpus: request failed: " ^ str ms "error");
      Printf.fprintf oc "%s,%s,%s,%s,%.17g,%.0f,%.0f,%.3f\n" (str ms "id")
        (str ms "cache") (str ms "tier") (str ms "solver")
        (num ms "objective") (num ms "pivots") (num ms "nodes")
        (1000.0 *. num ms "time_s"))
    rows;
  close_out oc;
  Fmt.pr "  wrote %s (%d rows)@." corpus_csv (List.length rows);
  let verdict v = List.filter (fun ms -> str ms "cache" = v) rows in
  let hits = verdict "hit" and warms = verdict "warm" in
  let misses = verdict "miss" in
  let lat ms = 1000.0 *. num ms "time_s" in
  let percentile xs p =
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0.0
    else a.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let latencies group = List.map lat group in
  let pct group name =
    let xs = latencies group in
    Json.Obj
      [
        ("count", Json.Int (List.length group));
        ("p50_ms", Json.Num (percentile xs 0.50));
        ("p90_ms", Json.Num (percentile xs 0.90));
        ("p99_ms", Json.Num (percentile xs 0.99));
        ( "max_ms",
          Json.Num (List.fold_left Float.max 0.0 xs) );
      ]
    |> fun o ->
    Fmt.pr "  %-6s n=%2d p50=%6.1fms p90=%6.1fms@." name (List.length group)
      (percentile xs 0.50) (percentile xs 0.90);
    o
  in
  let n = List.length rows in
  let pivots group =
    List.fold_left (fun acc ms -> acc +. num ms "pivots") 0.0 group
  in
  emit "corpus"
    (Json.Obj
       [
         ("requests", Json.Int n);
         ("hits", Json.Int (List.length hits));
         ("warm_seeds", Json.Int (List.length warms));
         ("misses", Json.Int (List.length misses));
         ( "repeat_hit_rate",
           (* exact repeats answered from the cache, over all repeats *)
           Json.Num
             (float_of_int (List.length hits)
             /. float_of_int (List.length hits + List.length warms)) );
         ("cold_pivots", Json.Num (pivots misses));
         ("warm_pivots", Json.Num (pivots warms));
         ("latency_all", pct rows "all");
         ("latency_hit", pct hits "hit");
         ("latency_warm", pct warms "warm");
         ("latency_cold", pct misses "cold");
         ("csv", Json.Str corpus_csv);
       ])

let () =
  let log_mutex = Mutex.create () in
  Logs.set_reporter_mutex
    ~lock:(fun () -> Mutex.lock log_mutex)
    ~unlock:(fun () -> Mutex.unlock log_mutex);
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  (json_prefix :=
     let n = Array.length Sys.argv in
     let rec find i =
       if i >= n then None
       else if String.equal Sys.argv.(i) "--json" && i + 1 < n then
         Some Sys.argv.(i + 1)
       else find (i + 1)
     in
     find 1);
  let app = Workload.Waters2019.make () in
  if Array.exists (String.equal "--pricing") Sys.argv then begin
    run_section "PRICING" pricing_section;
    Fmt.pr "@.bench: pricing section completed@."
  end
  else if Array.exists (String.equal "--warmstart") Sys.argv then begin
    run_section "WARMSTART" warmstart_section;
    Fmt.pr "@.bench: warmstart section completed@."
  end
  else if Array.exists (String.equal "--parallel") Sys.argv then begin
    run_section "PARALLEL" (fun () -> parallel_section ~smoke:false app);
    Fmt.pr "@.bench: parallel section completed@."
  end
  else if Array.exists (String.equal "--corpus") Sys.argv then begin
    run_section "SERVICE" corpus_section;
    Fmt.pr "@.bench: service corpus section completed@."
  end
  else if smoke then begin
    run_section "FIG1" fig1;
    Option.iter fig1_trace !json_prefix;
    run_section "PARALLEL" (fun () -> parallel_section ~smoke:true app);
    run_section "WARMSTART" warmstart_section;
    run_section "RESILIENCE" resilience_section;
    Fmt.pr "@.bench: smoke sections completed@."
  end
  else begin
    run_section "FIG1" fig1;
    Option.iter fig1_trace !json_prefix;
    run_section "FIG2_TABLE1" (fun () -> fig2_and_table1 app);
    run_section "ALPHA" (fun () -> alpha app);
    run_section "ABLATION_C6" ablation_c6;
    run_section "ABLATION_HEUR" ablation_heuristic;
    run_section "ABLATION_ENGINE" (fun () -> ablation_engine app);
    run_section "ABLATION_P3" (fun () -> ablation_p3 app);
    run_section "EXT_MULTIDMA" (fun () -> extension_multi_dma app);
    run_section "EXT_AUTOMOTIVE" extension_automotive;
    run_section "SCALING" scaling;
    run_section "PRICING" pricing_section;
    run_section "WARMSTART" warmstart_section;
    run_section "PARALLEL" (fun () -> parallel_section ~smoke:false app);
    run_section "ROBUSTNESS" (fun () -> robustness app);
    run_section "RESILIENCE" resilience_section;
    run_section "MICRO" (fun () -> micro app);
    Fmt.pr "@.bench: all sections completed@."
  end
